(* The Dewey-order mapping (Tatarinov et al. 2002): each node's key is its
   materialized root-to-node ordinal path, e.g. "a1.a3.b12".

     dewey(doc, label, parent_label, kind, name, value, level, ordinal)

   Components use a variable-width order-preserving encoding — a digit-count
   letter ('a' = 1 digit, 'b' = 2, ...) followed by the decimal ordinal — so
   plain string order is document order at any fanout ("b10" > "a9", and no
   sibling component is a proper prefix of another). Attribute components
   carry a '!' prefix to keep them out of the element component space. Child
   steps are equality joins on [parent_label]; descendant steps are
   prefix-LIKE predicates over the label — cheap subtree extraction,
   expensive comparisons, exactly the trade-off the paper reports. *)

module Dom = Xmlkit.Dom
module Index = Xmlkit.Index
module Db = Relstore.Database
module Value = Relstore.Value
module Sb = Relstore.Sql_build
open Mapping

let id = "dewey"
let description = "Dewey order labels (Tatarinov et al.)"

let create_schema db =
  ignore
    (Db.exec db
       "CREATE TABLE IF NOT EXISTS dewey (doc INTEGER NOT NULL, label TEXT NOT NULL, \
        parent_label TEXT NOT NULL, kind TEXT NOT NULL, name TEXT, value TEXT, level INTEGER \
        NOT NULL, ordinal INTEGER NOT NULL)")

let create_indexes db =
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS dewey_label ON dewey (label)");
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS dewey_parent ON dewey (parent_label)");
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS dewey_name ON dewey (name)")

(* Order-preserving component encoding: the digit count as a letter
   ('a' + digits - 1) followed by the decimal ordinal, so "b10" sorts after
   "a9" and components of equal first letter have equal length — no sibling
   component is a proper prefix of another. Attribute components add a '!'
   prefix: '!' < 'a' in ASCII, so an element's attributes sort before its
   content children, and '!' < '.' keeps them before any descendant's
   components — plain string order stays document order. *)
let encode_ordinal ordinal =
  if ordinal < 0 then err "Dewey ordinal must be non-negative (got %d)" ordinal;
  let digits = string_of_int ordinal in
  let d = String.length digits in
  if d > 26 then err "Dewey ordinal out of range (got %d)" ordinal;
  String.make 1 (Char.chr (Char.code 'a' + d - 1)) ^ digits

let component ~attr ordinal =
  let c = encode_ordinal ordinal in
  if attr then "!" ^ c else c

(* Inverse of [component]: the ordinal of one label component. *)
let component_ordinal comp =
  let comp =
    if String.length comp > 0 && comp.[0] = '!' then String.sub comp 1 (String.length comp - 1)
    else comp
  in
  let n = String.length comp in
  if n < 2 || comp.[0] < 'a' || comp.[0] > 'z' then err "malformed Dewey component %S" comp;
  let d = Char.code comp.[0] - Char.code 'a' + 1 in
  if n <> d + 1 then err "malformed Dewey component %S" comp;
  match int_of_string_opt (String.sub comp 1 d) with
  | Some i when i >= 0 -> i
  | _ -> err "malformed Dewey component %S" comp

let shred_into emit ~doc ix =
  (* labels.(n) = Dewey label of node n *)
  let labels = Array.make (Index.count ix) "" in
  for n = 1 to Index.count ix - 1 do
    let parent = Index.parent ix n in
    let parent_label = labels.(parent) in
    let attr = Index.kind ix n = Index.Attribute in
    let comp = component ~attr (Index.ordinal ix n) in
    let label = if parent_label = "" then comp else parent_label ^ "." ^ comp in
    labels.(n) <- label;
    let name =
      match Index.kind ix n with
      | Index.Element | Index.Attribute | Index.Pi -> Value.Text (Index.name ix n)
      | _ -> Value.Null
    in
    let value =
      match Index.kind ix n with
      | Index.Element | Index.Document -> Value.Null
      | _ -> Value.Text (Index.value ix n)
    in
    emit "dewey"
      [|
        Value.Int doc;
        Value.Text label;
        Value.Text parent_label;
        Value.Text (kind_code (Index.kind ix n));
        name;
        value;
        Value.Int (Index.level ix n);
        Value.Int (Index.ordinal ix n);
      |]
  done

let shred db ~doc ix = shred_into (Db.insert_row_array db) ~doc ix
let shred_bulk session ~doc ix = shred_into (Db.session_insert session) ~doc ix

(* ------------------------------------------------------------------ *)
(* Reconstruction *)

type row = {
  r_label : string;
  r_parent : string;
  r_kind : string;
  r_name : string;
  r_value : string;
  r_ordinal : int;
}

let row_of_values a =
  {
    r_label = Value.to_string a.(0);
    r_parent = Value.to_string a.(1);
    r_kind = Value.to_string a.(2);
    r_name = (match a.(3) with Value.Null -> "" | v -> Value.to_string v);
    r_value = (match a.(4) with Value.Null -> "" | v -> Value.to_string v);
    r_ordinal = (match a.(5) with Value.Int i -> i | _ -> err "bad ordinal");
  }

let build_forest rows root_label =
  let by_parent = Hashtbl.create 256 in
  let by_label = Hashtbl.create 256 in
  List.iter
    (fun r ->
      Hashtbl.replace by_label r.r_label r;
      Hashtbl.replace by_parent r.r_parent
        (r :: Option.value ~default:[] (Hashtbl.find_opt by_parent r.r_parent)))
    rows;
  let rec build r : Dom.node =
    match r.r_kind with
    | "e" ->
      let children = Option.value ~default:[] (Hashtbl.find_opt by_parent r.r_label) in
      let attrs, content = List.partition (fun c -> c.r_kind = "a") children in
      let sorted l = List.sort (fun a b -> compare a.r_ordinal b.r_ordinal) l in
      Dom.Element
        {
          Dom.tag = r.r_name;
          attrs = List.map (fun a -> Dom.attr a.r_name a.r_value) (sorted attrs);
          children = List.map build (sorted content);
        }
    | "t" | "a" -> Dom.Text r.r_value
    | "c" -> Dom.Comment r.r_value
    | "p" -> Dom.Pi { target = r.r_name; data = r.r_value }
    | k -> err "unknown kind %s" k
  in
  match Hashtbl.find_opt by_label root_label with
  | Some r -> build r
  | None -> err "no node labelled %s" root_label

let row_projs = List.map (fun c -> Sb.proj (Sb.col c)) [ "label"; "parent_label"; "kind"; "name"; "value"; "ordinal" ]

let fetch_all db ~doc =
  let b = Sb.binder () in
  let where = [ Sb.eq (Sb.col "doc") (Sb.pint b doc) ] in
  let q = Sb.query [ Sb.select ~from:[ Sb.from "dewey" ] ~where row_projs ] in
  let r = query_built db ~params:(Sb.params b) q in
  List.map row_of_values r.Relstore.Executor.rows

let reconstruct db ~doc =
  let rows = fetch_all db ~doc in
  match List.find_opt (fun r -> r.r_parent = "") rows with
  | Some root -> (
    match build_forest rows root.r_label with
    | Dom.Element e -> Dom.document e
    | _ -> err "root is not an element")
  | None -> err "document %d is not stored" doc

(* Subtree of one label: the Dewey strength — a prefix scan over the label
   index. Two statements (exact + prefix) so each can use the index; an OR
   would force a full scan. *)
let subtree_rows db ~doc label =
  let fetch cond_of =
    let b = Sb.binder () in
    let where = [ Sb.eq (Sb.col "doc") (Sb.pint b doc); cond_of b ] in
    let q = Sb.query [ Sb.select ~from:[ Sb.from "dewey" ] ~where row_projs ] in
    let r = query_built db ~params:(Sb.params b) q in
    List.map row_of_values r.Relstore.Executor.rows
  in
  fetch (fun b -> Sb.eq (Sb.col "label") (Sb.ptext b label))
  (* descendants as an explicit label range with both ends bound as
     parameters: one cached plan for every label (a literal LIKE pattern
     would bake the label into the statement text), and the range bounds
     still drive the label index *)
  @ fetch (fun b ->
        let prefix = label ^ "." in
        let lower = Sb.ge (Sb.col "label") (Sb.ptext b prefix) in
        match Relstore.Planner.like_prefix_successor prefix with
        | Some stop ->
          Relstore.Sql_ast.Binop (Relstore.Sql_ast.And, lower, Sb.lt (Sb.col "label") (Sb.ptext b stop))
        | None -> lower)

let node_of_label db ~doc label = build_forest (subtree_rows db ~doc label) label

let string_value_of_label db ~doc label =
  let rows = subtree_rows db ~doc label in
  match List.find_opt (fun r -> r.r_label = label) rows with
  | Some r when r.r_kind <> "e" -> r.r_value
  | Some _ ->
    (* concatenate text descendants in label order *)
    rows
    |> List.filter (fun r -> r.r_kind = "t")
    |> List.sort (fun a b -> compare a.r_label b.r_label)
    |> List.map (fun r -> r.r_value)
    |> String.concat ""
  | None -> err "no node labelled %s" label

(* ------------------------------------------------------------------ *)
(* Query translation: single statement; child steps join on parent_label,
   descendant steps use label-prefix LIKE over a concatenated pattern. *)

let kind_is a k = Sb.eq (acol a "kind") (Sb.text k)
let child_of a parent = Sb.eq (acol a "parent_label") (acol parent "label")

let pred_sql ~b ~pdoc ~cur ~fresh (p : Pathquery.pred) =
  let module P = Pathquery in
  let child_conds a ~kind ~name =
    [
      Sb.eq (acol a "doc") pdoc;
      child_of a cur;
      kind_is a kind;
      Sb.eq (acol a "name") (Sb.ptext b name);
    ]
  in
  match p with
  | P.Has_child c ->
    let a = fresh () in
    ([ a ], child_conds a ~kind:"e" ~name:c)
  | P.Has_attr at ->
    let a = fresh () in
    ([ a ], child_conds a ~kind:"a" ~name:at)
  | P.Attr_value (at, op, v) ->
    let a = fresh () in
    ( [ a ],
      child_conds a ~kind:"a" ~name:at
      @ [ Sb.cmp (P.cmp_binop op) (acol a "value") (Sb.ptext b v) ] )
  | P.Attr_number (at, op, v) ->
    let a = fresh () in
    ( [ a ],
      child_conds a ~kind:"a" ~name:at
      @ [ Sb.cmp (P.cmp_binop op) (Sb.to_number (acol a "value")) (Sb.pfloat b v) ] )
  | P.Child_value (c, op, v) ->
    let a = fresh () and t = fresh () in
    ( [ a; t ],
      child_conds a ~kind:"e" ~name:c
      @ [
          Sb.eq (acol t "doc") pdoc;
          child_of t a;
          kind_is t "t";
          Sb.cmp (P.cmp_binop op) (acol t "value") (Sb.ptext b v);
        ] )
  | P.Child_number (c, op, v) ->
    let a = fresh () and t = fresh () in
    ( [ a; t ],
      child_conds a ~kind:"e" ~name:c
      @ [
          Sb.eq (acol t "doc") pdoc;
          child_of t a;
          kind_is t "t";
          Sb.cmp (P.cmp_binop op) (Sb.to_number (acol t "value")) (Sb.pfloat b v);
        ] )

let translate ~doc (simple : Pathquery.t) =
  let module P = Pathquery in
  let b = Sb.binder () in
  let pdoc = Sb.pint b doc in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "d%d" !counter
  in
  let froms = ref [] and wheres = ref [] in
  let add_from a = froms := a :: !froms in
  let add_where w = wheres := w :: !wheres in
  let prev = ref None in
  List.iter
    (fun (s : P.step) ->
      let e = fresh () in
      add_from e;
      add_where (Sb.eq (acol e "doc") pdoc);
      add_where (kind_is e "e");
      (match s.P.test with
      | P.Tag n -> add_where (Sb.eq (acol e "name") (Sb.ptext b n))
      | P.Any_tag -> ());
      (match (!prev, s.P.desc) with
      | None, false -> add_where (Sb.eq (acol e "parent_label") (Sb.text ""))
      | None, true -> ()  (* any element *)
      | Some p, false -> add_where (child_of e p)
      | Some p, true ->
        (* descendant: label extends the ancestor's label *)
        add_where (Sb.like (acol e "label") (Sb.concat (acol p "label") (Sb.text ".%"))));
      List.iter
        (fun pr ->
          let extra_from, extra_where = pred_sql ~b ~pdoc ~cur:e ~fresh pr in
          List.iter add_from extra_from;
          List.iter add_where extra_where)
        s.P.preds;
      prev := Some e)
    simple.P.steps;
  let last = match !prev with Some p -> p | None -> err "empty path" in
  let result_alias =
    match simple.P.tgt with
    | P.Elements -> last
    | P.Attr_of a ->
      let at = fresh () in
      add_from at;
      add_where (Sb.eq (acol at "doc") pdoc);
      add_where (child_of at last);
      add_where (kind_is at "a");
      add_where (Sb.eq (acol at "name") (Sb.ptext b a));
      at
    | P.Text_of ->
      let tx = fresh () in
      add_from tx;
      add_where (Sb.eq (acol tx "doc") pdoc);
      add_where (child_of tx last);
      add_where (kind_is tx "t");
      tx
  in
  let result = acol result_alias "label" in
  let q =
    Sb.query
      [
        Sb.select ~distinct:true
          ~from:(List.rev_map (fun a -> Sb.from ~alias:a "dewey") !froms)
          ~where:(List.rev !wheres)
          ~order_by:[ Sb.asc result ]
          [ Sb.proj result ];
      ]
  in
  (q, Sb.params b)

let query db ~doc (path : Xpathkit.Ast.path) : query_result =
  match Pathquery.analyze path with
  | None -> fallback_query ~reconstruct db ~doc path
  | Some simple ->
    let q, params = traced_translate ~scheme:id (fun () -> translate ~doc simple) in
    let sqls = ref [] and joins = ref 0 in
    let labels = string_column (run_built db ~joins ~sqls ~params q) in
    {
      values = List.map (string_value_of_label db ~doc) labels;
      nodes = lazy (List.map (node_of_label db ~doc) labels);
      sql = List.rev !sqls;
      joins = !joins;
      fallback = false;
    }

let mapping : Mapping.mapping =
  (module struct
    let id = id
    let description = description
    let create_schema = create_schema
    let create_indexes = create_indexes
    let shred = shred
    let shred_bulk = shred_bulk
    let reconstruct = reconstruct
    let query = query
  end)
