(* Common interface implemented by every shredding scheme. *)

module Dom = Xmlkit.Dom
module Index = Xmlkit.Index
module Db = Relstore.Database

(* Result of running a translated path query. [values] are the XPath
   string-values of the selected nodes in document order — the unit of
   comparison against the native evaluator. [nodes] reconstructs the
   selected subtrees on demand. [sql] lists every SQL statement executed;
   [fallback] is set when the path was outside the translatable subset and
   was answered by reconstructing the document and evaluating natively. *)
type query_result = {
  values : string list;
  nodes : Dom.node list Lazy.t;
  sql : string list;
  joins : int;
  fallback : bool;
}

module type MAPPING = sig
  val id : string
  val description : string

  val create_schema : Db.t -> unit
  (** Create the mapping's base tables (idempotent). *)

  val create_indexes : Db.t -> unit
  (** Create the mapping's recommended secondary indexes; kept separate so
      the benchmark harness can measure indexed vs unindexed (F3). *)

  val shred : Db.t -> doc:int -> Index.t -> unit
  (** Store one document under document id [doc], row at a time. *)

  val shred_bulk : Db.session -> doc:int -> Index.t -> unit
  (** Same rows, emitted through a bulk-load session: appends go straight
      into the table arenas and every index is built bottom-up when the
      caller finishes the session (see {!Relstore.Database.load_session}). *)

  val reconstruct : Db.t -> doc:int -> Dom.t
  (** Rebuild the full document from its relations. *)

  val query : Db.t -> doc:int -> Xpathkit.Ast.path -> query_result
  (** Evaluate an absolute XPath location path against the stored form. *)
end

type mapping = (module MAPPING)

(* ------------------------------------------------------------------ *)
(* Shared helpers *)

exception Shred_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Shred_error s)) fmt

(* Fallback evaluation used by every scheme for untranslatable paths:
   reconstruct, evaluate natively, and report it. *)
let fallback_query ~reconstruct db ~doc path =
  Obskit.Trace.with_span ~attrs:[ ("doc", string_of_int doc) ] "xpath.fallback"
  @@ fun () ->
  let dom = reconstruct db ~doc in
  let ix = Index.of_document dom in
  let nodes = Xpathkit.Eval.eval_path (Xpathkit.Eval.root_context ix) path in
  {
    values = List.map (Index.string_value ix) nodes;
    nodes = lazy (List.map (Index.to_node ix) nodes);
    sql = [];
    joins = 0;
    fallback = true;
  }

(* Ambient query capture. When a sink is installed (by [collect_captures],
   via [Store.query ~analyze:true] or an armed slow-query log) every query
   run through [run_built] — in any of the six schemes, with no change to
   their signatures — executes instrumented and pushes its statement text,
   bound parameters, plan and annotated operator tree here. Dynamically
   scoped *per domain* ([Domain.DLS]): a sink installed on one pool
   reader never captures another domain's queries. *)
type capture = {
  cap_sql : string;
  cap_params : Relstore.Value.t array;
  cap_plan : Relstore.Plan.t;
  cap_annot : Relstore.Plan.annotated;
}

let capture_sink : capture list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let collect_captures f =
  let acc = ref [] in
  let saved = Domain.DLS.get capture_sink in
  Domain.DLS.set capture_sink (Some acc);
  let finally () = Domain.DLS.set capture_sink saved in
  let r = Fun.protect ~finally f in
  (r, List.rev !acc)

let collect_analysis f =
  let r, caps = collect_captures f in
  (r, List.map (fun c -> (c.cap_sql, c.cap_annot)) caps)

(* Wrap a scheme's path→SQL translation phase in a trace span. *)
let traced_translate ~scheme f =
  Obskit.Trace.with_span ~attrs:[ ("scheme", scheme) ] "translate" f

(* Execute a builder-constructed query through the prepared-plan layer:
   the rendered statement text is the plan-cache key, so per-path queries
   whose variable parts are bound parameters plan once and execute many
   times. Records the text into [sqls] and, when [joins] is given, adds
   the plan's join count. The instrumented path (capture sink installed or
   an active trace recording) runs the analyzed executor so the operator
   tree is available for the sink and as trace child spans. *)
let run_built db ?joins ~sqls ?params q =
  Relstore.Metrics.timed "mapping.run_built" @@ fun () ->
  let p = Db.prepare_query db q in
  let text = Db.prepared_text p in
  sqls := text :: !sqls;
  let plan = Db.prepared_plan db p in
  (match joins with
  | Some j -> j := !j + Relstore.Plan.count_joins plan
  | None -> ());
  let tracing = Obskit.Trace.recording () in
  match (Domain.DLS.get capture_sink, tracing) with
  | None, false -> Relstore.Executor.run ?params (Db.catalog db) plan
  | sink, _ ->
    let run () =
      let r, annot = Relstore.Executor.run_analyzed ?params (Db.catalog db) plan in
      (match sink with
      | Some acc ->
        acc :=
          {
            cap_sql = text;
            cap_params = (match params with Some a -> a | None -> [||]);
            cap_plan = plan;
            cap_annot = annot;
          }
          :: !acc
      | None -> ());
      if tracing then Relstore.Plan.record_spans annot;
      r
    in
    if tracing then Obskit.Trace.with_span ~attrs:[ ("sql", text) ] "sql.execute" run
    else run ()

(* Same, for internal fetches (reconstruction, subtree assembly) that do
   not report statement text. *)
let query_built db ?params q = Db.query_prepared ?params db (Db.prepare_query db q)

(* Alias-qualified column, the common case in translated queries. *)
let acol a c = Relstore.Sql_build.col ~table:a c

(* Single-column int results of a SELECT. *)
let int_column (r : Relstore.Executor.result) =
  List.map
    (fun row ->
      match row.(0) with
      | Relstore.Value.Int i -> i
      | v -> err "expected an integer, got %s" (Relstore.Value.to_string v))
    r.Relstore.Executor.rows

let string_column (r : Relstore.Executor.result) =
  List.map (fun row -> Relstore.Value.to_string row.(0)) r.Relstore.Executor.rows

(* Kind codes shared by the node-table schemes. *)
let kind_code = function
  | Index.Element -> "e"
  | Index.Attribute -> "a"
  | Index.Text -> "t"
  | Index.Comment -> "c"
  | Index.Pi -> "p"
  | Index.Document -> "d"

(* Sanitize a tag into a SQL identifier fragment (Binary mapping table
   names, Universal/Inline column names). Collisions are disambiguated by
   the caller via a registry table. *)
let sanitize tag =
  let buf = Buffer.create (String.length tag) in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then
        Buffer.add_char buf (Char.lowercase_ascii c)
      else Buffer.add_char buf '_')
    tag;
  let s = Buffer.contents buf in
  if s = "" || (s.[0] >= '0' && s.[0] <= '9') then "t" ^ s else s
