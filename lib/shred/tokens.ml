(* The token-stream storage structure the tutorial devotes a section to:
   the document as its linear SAX event sequence, one relational row per
   token.

     tok(doc, seq, kind, name, value, depth)

   kind: 's' start-element, 'e' end-element, 't' text, 'a' attribute
   (attributes follow their start token), 'c' comment, 'p' PI.

   Loading is a single append-only pass and reconstruction replays the
   stream in seq order — the strengths the tutorial lists. Navigation is
   the weakness: like the blob, path queries fall back to rebuilding the
   tree, but unlike the blob the engine can still answer token-level SQL
   (tag histograms, text search) without parsing. *)

module Dom = Xmlkit.Dom
module Index = Xmlkit.Index
module Sax = Xmlkit.Sax
module Db = Relstore.Database
module Value = Relstore.Value
module Sb = Relstore.Sql_build
open Mapping

let id = "tokens"
let description = "linear token stream, one row per SAX event"

let create_schema db =
  ignore
    (Db.exec db
       "CREATE TABLE IF NOT EXISTS tok (doc INTEGER NOT NULL, seq INTEGER NOT NULL, kind TEXT \
        NOT NULL, name TEXT, value TEXT, depth INTEGER NOT NULL)")

let create_indexes db =
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS tok_seq ON tok (seq)");
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS tok_name ON tok (name)")

let shred_into sink ~doc ix =
  let seq = ref 0 in
  let depth = ref 0 in
  let emit ~kind ~name ~value =
    sink "tok"
      [|
        Value.Int doc;
        Value.Int !seq;
        Value.Text kind;
        (match name with Some n -> Value.Text n | None -> Value.Null);
        (match value with Some v -> Value.Text v | None -> Value.Null);
        Value.Int !depth;
      |];
    incr seq
  in
  Sax.iter
    (fun event ->
      match event with
      | Sax.Start_element { tag; attrs } ->
        incr depth;
        emit ~kind:"s" ~name:(Some tag) ~value:None;
        List.iter
          (fun { Dom.attr_name; attr_value } ->
            emit ~kind:"a" ~name:(Some attr_name) ~value:(Some attr_value))
          attrs
      | Sax.End_element tag ->
        emit ~kind:"e" ~name:(Some tag) ~value:None;
        decr depth
      | Sax.Characters s -> emit ~kind:"t" ~name:None ~value:(Some s)
      | Sax.Comment_event s -> emit ~kind:"c" ~name:None ~value:(Some s)
      | Sax.Pi_event { target; data } -> emit ~kind:"p" ~name:(Some target) ~value:(Some data))
    (Index.to_document ix)

let shred db ~doc ix = shred_into (Db.insert_row_array db) ~doc ix
let shred_bulk session ~doc ix = shred_into (Db.session_insert session) ~doc ix

let stream_query ~doc =
  let b = Sb.binder () in
  let q =
    Sb.query
      [
        Sb.select
          ~from:[ Sb.from "tok" ]
          ~where:[ Sb.eq (Sb.col "doc") (Sb.pint b doc) ]
          ~order_by:[ Sb.asc (Sb.col "seq") ]
          (List.map (fun c -> Sb.proj (Sb.col c)) [ "kind"; "name"; "value" ]);
      ]
  in
  (q, Sb.params b)

let reconstruct db ~doc =
  let q, params = stream_query ~doc in
  let r = query_built db ~params q in
  if r.Relstore.Executor.rows = [] then err "document %d is not stored" doc;
  (* rebuild the event list; attribute tokens fold into their start event *)
  let events = ref [] in
  List.iter
    (fun row ->
      let name = match row.(1) with Value.Null -> "" | v -> Value.to_string v in
      let value = match row.(2) with Value.Null -> "" | v -> Value.to_string v in
      match Value.to_string row.(0) with
      | "s" -> events := Sax.Start_element { tag = name; attrs = [] } :: !events
      | "a" -> (
        match !events with
        | Sax.Start_element { tag; attrs } :: rest ->
          events := Sax.Start_element { tag; attrs = attrs @ [ Dom.attr name value ] } :: rest
        | _ -> err "attribute token outside a start tag")
      | "e" -> events := Sax.End_element name :: !events
      | "t" -> events := Sax.Characters value :: !events
      | "c" -> events := Sax.Comment_event value :: !events
      | "p" -> events := Sax.Pi_event { target = name; data = value } :: !events
      | k -> err "unknown token kind %s" k)
    r.Relstore.Executor.rows;
  Sax.of_list (List.rev !events)

let query db ~doc path =
  let r = fallback_query ~reconstruct db ~doc path in
  let q, _ = stream_query ~doc in
  { r with sql = [ Relstore.Sql_ast.query_to_string q ] }

let mapping : Mapping.mapping =
  (module struct
    let id = id
    let description = description
    let create_schema = create_schema
    let create_indexes = create_indexes
    let shred = shred
    let shred_bulk = shred_bulk
    let reconstruct = reconstruct
    let query = query
  end)
