(* The Edge mapping (Florescu & Kossmann 1999): the whole document forest in
   one table, one row per parent-to-child edge.

     edge(doc, source, ordinal, kind, name, target, value)

   - [source]/[target] are node ids (the pre-order ids of Xmlkit.Index; the
     document node is 0, so the root element's edge has source 0).
   - [kind] is 'e' element, 'a' attribute, 't' text, 'c' comment, 'p' PI.
   - [name] is the tag / attribute name / PI target, NULL for text.
   - [value] is the text content / attribute value, NULL for elements.

   Path queries over named child chains become a single self-join chain —
   one join per step. '//' has no bounded-length SQL equivalent, so it runs
   as iterative frontier expansion, one query per tree level: exactly the
   weakness the literature reports for Edge.

   Queries are built as Sql_ast values (see Sql_build): document ids, node
   ids, names, and comparison values are bound parameters, so every query
   family here plans once and its cached plan is reused across documents
   and nodes. Kind codes stay inline — they are part of the query shape. *)

module Dom = Xmlkit.Dom
module Index = Xmlkit.Index
module Db = Relstore.Database
module Value = Relstore.Value
module Sb = Relstore.Sql_build
open Mapping

let id = "edge"
let description = "single edge table (Florescu & Kossmann)"

let create_schema db =
  ignore
    (Db.exec db
       "CREATE TABLE IF NOT EXISTS edge (doc INTEGER NOT NULL, source INTEGER NOT NULL, \
        ordinal INTEGER NOT NULL, kind TEXT NOT NULL, name TEXT, target INTEGER NOT NULL, \
        value TEXT)")

let create_indexes db =
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS edge_source ON edge (source)");
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS edge_name ON edge (name)");
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS edge_target ON edge (target)")

(* The traversal is written against an [emit] sink so the same loop serves
   the row-at-a-time path and a bulk-load session. *)
let shred_into emit ~doc ix =
  let insert ~source ~ordinal ~kind ~name ~target ~value =
    emit "edge"
      [|
        Value.Int doc;
        Value.Int source;
        Value.Int ordinal;
        Value.Text kind;
        (match name with Some n -> Value.Text n | None -> Value.Null);
        Value.Int target;
        (match value with Some v -> Value.Text v | None -> Value.Null);
      |]
  in
  for n = 1 to Index.count ix - 1 do
    let source = Index.parent ix n in
    let ordinal = Index.ordinal ix n in
    match Index.kind ix n with
    | Index.Element -> insert ~source ~ordinal ~kind:"e" ~name:(Some (Index.name ix n)) ~target:n ~value:None
    | Index.Attribute ->
      insert ~source ~ordinal ~kind:"a" ~name:(Some (Index.name ix n)) ~target:n
        ~value:(Some (Index.value ix n))
    | Index.Text -> insert ~source ~ordinal ~kind:"t" ~name:None ~target:n ~value:(Some (Index.value ix n))
    | Index.Comment ->
      insert ~source ~ordinal ~kind:"c" ~name:None ~target:n ~value:(Some (Index.value ix n))
    | Index.Pi ->
      insert ~source ~ordinal ~kind:"p" ~name:(Some (Index.name ix n)) ~target:n
        ~value:(Some (Index.value ix n))
    | Index.Document -> ()
  done

let shred db ~doc ix = shred_into (Db.insert_row_array db) ~doc ix
let shred_bulk session ~doc ix = shred_into (Db.session_insert session) ~doc ix

(* ------------------------------------------------------------------ *)
(* Reconstruction *)

type row = { r_source : int; r_ordinal : int; r_kind : string; r_name : string; r_target : int; r_value : string }

let fetch_all_edges db ~doc =
  let b = Sb.binder () in
  let q =
    Sb.query
      [
        Sb.select ~from:[ Sb.from "edge" ]
          ~where:[ Sb.eq (Sb.col "doc") (Sb.pint b doc) ]
          (List.map
             (fun c -> Sb.proj (Sb.col c))
             [ "source"; "ordinal"; "kind"; "name"; "target"; "value" ]);
      ]
  in
  let r = query_built db ~params:(Sb.params b) q in
  List.map
    (fun row ->
      {
        r_source = (match row.(0) with Value.Int i -> i | _ -> err "bad source");
        r_ordinal = (match row.(1) with Value.Int i -> i | _ -> err "bad ordinal");
        r_kind = Value.to_string row.(2);
        r_name = (match row.(3) with Value.Null -> "" | v -> Value.to_string v);
        r_target = (match row.(4) with Value.Int i -> i | _ -> err "bad target");
        r_value = (match row.(5) with Value.Null -> "" | v -> Value.to_string v);
      })
    r.Relstore.Executor.rows

let build_tree rows_by_source target_row =
  let rec build (r : row) : Dom.node =
    match r.r_kind with
    | "e" ->
      let children = Option.value ~default:[] (Hashtbl.find_opt rows_by_source r.r_target) in
      let children = List.sort (fun a b -> compare a.r_ordinal b.r_ordinal) children in
      let attrs, content = List.partition (fun c -> c.r_kind = "a") children in
      Dom.Element
        {
          Dom.tag = r.r_name;
          attrs = List.map (fun a -> Dom.attr a.r_name a.r_value) attrs;
          children = List.map build content;
        }
    | "t" -> Dom.Text r.r_value
    | "c" -> Dom.Comment r.r_value
    | "p" -> Dom.Pi { target = r.r_name; data = r.r_value }
    | "a" -> Dom.Text r.r_value
    | k -> err "unknown edge kind %s" k
  in
  build target_row

let group_by_source rows =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun r ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt tbl r.r_source) in
      Hashtbl.replace tbl r.r_source (r :: existing))
    rows;
  tbl

let reconstruct db ~doc =
  let rows = fetch_all_edges db ~doc in
  let by_source = group_by_source rows in
  match Option.value ~default:[] (Hashtbl.find_opt by_source 0) with
  | [ root_row ] -> (
    match build_tree by_source root_row with
    | Dom.Element e -> Dom.document e
    | _ -> err "root edge is not an element")
  | [] -> err "document %d is not stored" doc
  | _ -> err "document %d has multiple roots" doc

(* Subtree reconstruction for query results: per-node recursive fetch. The
   two query shapes are constant, so both plans cache after the first node. *)
let rec node_of_target db ~doc target =
  let b = Sb.binder () in
  let q =
    Sb.query
      [
        Sb.select ~from:[ Sb.from "edge" ]
          ~where:
            [ Sb.eq (Sb.col "doc") (Sb.pint b doc); Sb.eq (Sb.col "target") (Sb.pint b target) ]
          [ Sb.proj (Sb.col "kind"); Sb.proj (Sb.col "name"); Sb.proj (Sb.col "value") ];
      ]
  in
  let r = query_built db ~params:(Sb.params b) q in
  match r.Relstore.Executor.rows with
  | [ [| kind; name; value |] ] -> (
    let name = match name with Value.Null -> "" | v -> Value.to_string v in
    let value = match value with Value.Null -> "" | v -> Value.to_string v in
    match Value.to_string kind with
    | "e" ->
      let b = Sb.binder () in
      let q =
        Sb.query
          [
            Sb.select ~from:[ Sb.from "edge" ]
              ~where:
                [
                  Sb.eq (Sb.col "doc") (Sb.pint b doc);
                  Sb.eq (Sb.col "source") (Sb.pint b target);
                ]
              ~order_by:[ Sb.asc (Sb.col "ordinal") ]
              [
                Sb.proj (Sb.col "target"); Sb.proj (Sb.col "kind"); Sb.proj (Sb.col "name");
                Sb.proj (Sb.col "value");
              ];
          ]
      in
      let kids = query_built db ~params:(Sb.params b) q in
      let attrs = ref [] and content = ref [] in
      List.iter
        (fun row ->
          let t = match row.(0) with Value.Int i -> i | _ -> err "bad target" in
          match Value.to_string row.(1) with
          | "a" ->
            attrs :=
              Dom.attr (Value.to_string row.(2))
                (match row.(3) with Value.Null -> "" | v -> Value.to_string v)
              :: !attrs
          | _ -> content := node_of_target db ~doc t :: !content)
        kids.Relstore.Executor.rows;
      Dom.Element { Dom.tag = name; attrs = List.rev !attrs; children = List.rev !content }
    | "t" -> Dom.Text value
    | "c" -> Dom.Comment value
    | "p" -> Dom.Pi { target = name; data = value }
    | "a" -> Dom.Text value
    | k -> err "unknown edge kind %s" k)
  | [] -> err "no edge with target %d" target
  | _ -> err "multiple edges with target %d" target

let string_value_of_target db ~doc target =
  (* attribute/text targets carry their value inline; elements concatenate
     descendant text *)
  let node = node_of_target db ~doc target in
  Dom.string_value node

(* ------------------------------------------------------------------ *)
(* Query translation *)

(* Condition shorthands over the edge table. *)
let kind_is a k = Sb.eq (acol a "kind") (Sb.text k)
let child_of a parent = Sb.eq (acol a "source") (acol parent "target")

(* Conditions for one step's predicates. [cur] is the alias whose .target
   is the context element; [fresh] mints auxiliary aliases; [b] collects
   parameter bindings; [pdoc] is the already-bound document id. Returns
   (extra FROM aliases, extra WHERE conjuncts). *)
let pred_sql ~b ~pdoc ~cur ~fresh (p : Pathquery.pred) =
  let module P = Pathquery in
  let on_doc a = Sb.eq (acol a "doc") pdoc in
  let name_is a n = Sb.eq (acol a "name") (Sb.ptext b n) in
  match p with
  | P.Has_child c ->
    let a = fresh () in
    ([ a ], [ on_doc a; child_of a cur; kind_is a "e"; name_is a c ])
  | P.Has_attr at ->
    let a = fresh () in
    ([ a ], [ on_doc a; child_of a cur; kind_is a "a"; name_is a at ])
  | P.Attr_value (at, op, v) ->
    let a = fresh () in
    ( [ a ],
      [
        on_doc a; child_of a cur; kind_is a "a"; name_is a at;
        Sb.cmp (P.cmp_binop op) (acol a "value") (Sb.ptext b v);
      ] )
  | P.Attr_number (at, op, v) ->
    let a = fresh () in
    ( [ a ],
      [
        on_doc a; child_of a cur; kind_is a "a"; name_is a at;
        Sb.cmp (P.cmp_binop op) (Sb.to_number (acol a "value")) (Sb.pfloat b v);
      ] )
  | P.Child_value (c, op, v) ->
    let a = fresh () and t = fresh () in
    ( [ a; t ],
      [
        on_doc a; child_of a cur; kind_is a "e"; name_is a c;
        on_doc t; child_of t a; kind_is t "t";
        Sb.cmp (P.cmp_binop op) (acol t "value") (Sb.ptext b v);
      ] )
  | P.Child_number (c, op, v) ->
    let a = fresh () and t = fresh () in
    ( [ a; t ],
      [
        on_doc a; child_of a cur; kind_is a "e"; name_is a c;
        on_doc t; child_of t a; kind_is t "t";
        Sb.cmp (P.cmp_binop op) (Sb.to_number (acol t "value")) (Sb.pfloat b v);
      ] )

(* A pure named/wildcard child chain becomes a single join-chain SELECT.
   Returns the query and its parameter bindings. *)
let chain_query ~doc (simple : Pathquery.t) =
  let module P = Pathquery in
  let b = Sb.binder () in
  let pdoc = Sb.pint b doc in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "x%d" !counter
  in
  let froms = ref [] and wheres = ref [] in
  let add_from a = froms := a :: !froms in
  let add_where w = wheres := w :: !wheres in
  let prev = ref None in
  List.iter
    (fun (s : P.step) ->
      assert (not s.P.desc);
      let e = fresh () in
      add_from e;
      add_where (Sb.eq (acol e "doc") pdoc);
      add_where (kind_is e "e");
      (match s.P.test with
      | P.Tag n -> add_where (Sb.eq (acol e "name") (Sb.ptext b n))
      | P.Any_tag -> ());
      (match !prev with
      | None -> add_where (Sb.eq (acol e "source") (Sb.int 0))
      | Some p -> add_where (child_of e p));
      List.iter
        (fun pr ->
          let extra_from, extra_where = pred_sql ~b ~pdoc ~cur:e ~fresh pr in
          List.iter add_from extra_from;
          List.iter add_where extra_where)
        s.P.preds;
      prev := Some e)
    simple.P.steps;
  let last = match !prev with Some p -> p | None -> err "empty path" in
  let result_alias =
    match simple.P.tgt with
    | P.Elements -> last
    | P.Attr_of a ->
      let at = fresh () in
      add_from at;
      add_where (Sb.eq (acol at "doc") pdoc);
      add_where (child_of at last);
      add_where (kind_is at "a");
      add_where (Sb.eq (acol at "name") (Sb.ptext b a));
      at
    | P.Text_of ->
      let tx = fresh () in
      add_from tx;
      add_where (Sb.eq (acol tx "doc") pdoc);
      add_where (child_of tx last);
      add_where (kind_is tx "t");
      tx
  in
  let result = acol result_alias "target" in
  let q =
    Sb.query
      [
        Sb.select ~distinct:true
          ~from:(List.rev_map (fun a -> Sb.from ~alias:a "edge") !froms)
          ~where:(List.rev !wheres)
          ~order_by:[ Sb.asc result ]
          [ Sb.proj result ];
      ]
  in
  (q, Sb.params b)

(* Stepwise evaluation: frontier of element ids, one SQL per step (and one
   per level for '//'). Used whenever the path contains '//' or a wildcard
   where the single-statement chain would not apply. *)
let batched ids f =
  let rec chunks acc = function
    | [] -> List.rev acc
    | ids ->
      let rec take n acc = function
        | [] -> (List.rev acc, [])
        | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let chunk, rest = take 100 [] ids in
      chunks (chunk :: acc) rest
  in
  List.concat_map f (chunks [] ids)

(* Does element [target] satisfy a predicate? One small probe query; each
   predicate shape is one cached plan regardless of node or value. *)
let check_pred db ~doc ~sqls target (p : Pathquery.pred) =
  let module P = Pathquery in
  let b = Sb.binder () in
  let pdoc = Sb.pint b doc and ptarget = Sb.pint b target in
  let probe ~from ~where proj_col =
    let q =
      Sb.query [ Sb.select ~from ~where ~limit:1 [ Sb.proj proj_col ] ]
    in
    int_column (run_built db ~sqls ~params:(Sb.params b) q) <> []
  in
  let base = [ Sb.eq (Sb.col "doc") pdoc; Sb.eq (Sb.col "source") ptarget ] in
  let child_pair c extra =
    (* e: named child element of the context; t: its text node *)
    probe
      ~from:[ Sb.from ~alias:"e" "edge"; Sb.from ~alias:"t" "edge" ]
      ~where:
        ([
           Sb.eq (acol "e" "doc") pdoc;
           Sb.eq (acol "e" "source") ptarget;
           kind_is "e" "e";
           Sb.eq (acol "e" "name") (Sb.ptext b c);
           Sb.eq (acol "t" "doc") pdoc;
           child_of "t" "e";
           kind_is "t" "t";
         ]
        @ extra)
      (acol "t" "target")
  in
  match p with
  | P.Has_child c ->
    probe ~from:[ Sb.from "edge" ]
      ~where:
        (base
        @ [ Sb.eq (Sb.col "kind") (Sb.text "e"); Sb.eq (Sb.col "name") (Sb.ptext b c) ])
      (Sb.col "target")
  | P.Has_attr a ->
    probe ~from:[ Sb.from "edge" ]
      ~where:
        (base
        @ [ Sb.eq (Sb.col "kind") (Sb.text "a"); Sb.eq (Sb.col "name") (Sb.ptext b a) ])
      (Sb.col "target")
  | P.Attr_value (a, op, v) ->
    probe ~from:[ Sb.from "edge" ]
      ~where:
        (base
        @ [
            Sb.eq (Sb.col "kind") (Sb.text "a");
            Sb.eq (Sb.col "name") (Sb.ptext b a);
            Sb.cmp (P.cmp_binop op) (Sb.col "value") (Sb.ptext b v);
          ])
      (Sb.col "target")
  | P.Attr_number (a, op, v) ->
    probe ~from:[ Sb.from "edge" ]
      ~where:
        (base
        @ [
            Sb.eq (Sb.col "kind") (Sb.text "a");
            Sb.eq (Sb.col "name") (Sb.ptext b a);
            Sb.cmp (P.cmp_binop op) (Sb.to_number (Sb.col "value")) (Sb.pfloat b v);
          ])
      (Sb.col "target")
  | P.Child_value (c, op, v) ->
    child_pair c [ Sb.cmp (P.cmp_binop op) (acol "t" "value") (Sb.ptext b v) ]
  | P.Child_number (c, op, v) ->
    child_pair c [ Sb.cmp (P.cmp_binop op) (Sb.to_number (acol "t" "value")) (Sb.pfloat b v) ]

(* SELECT target FROM edge WHERE doc = ? AND kind = k AND source IN (...)
   [AND name = ?], the workhorse of frontier expansion. *)
let frontier_query db ~sqls ~doc ~kind ?name ids =
  batched ids (fun chunk ->
      let b = Sb.binder () in
      let pdoc = Sb.pint b doc in
      let where =
        [
          Sb.eq (Sb.col "doc") pdoc;
          Sb.eq (Sb.col "kind") (Sb.text kind);
          Sb.in_list (Sb.col "source") (List.map (Sb.pint b) chunk);
        ]
        @ (match name with Some n -> [ Sb.eq (Sb.col "name") (Sb.ptext b n) ] | None -> [])
      in
      let q = Sb.query [ Sb.select ~from:[ Sb.from "edge" ] ~where [ Sb.proj (Sb.col "target") ] ] in
      int_column (run_built db ~sqls ~params:(Sb.params b) q))

let stepwise db ~doc (simple : Pathquery.t) =
  let module P = Pathquery in
  let sqls = ref [] in
  let children_of ids ~name_filter =
    frontier_query db ~sqls ~doc ~kind:"e" ?name:name_filter ids
  in
  let step_frontier frontier (s : P.step) =
    let matches =
      if s.P.desc then begin
        (* level-by-level expansion collecting matches at every depth *)
        let acc = ref [] in
        let current = ref frontier in
        while !current <> [] do
          let all_children = children_of !current ~name_filter:None in
          let hits =
            match s.P.test with
            | P.Any_tag -> all_children
            | P.Tag n ->
              (* re-filter by name with one query per chunk *)
              frontier_query db ~sqls ~doc ~kind:"e" ~name:n !current
          in
          acc := hits @ !acc;
          current := all_children
        done;
        List.sort_uniq compare !acc
      end
      else
        children_of frontier
          ~name_filter:(match s.P.test with P.Tag n -> Some n | P.Any_tag -> None)
    in
    List.filter (fun t -> List.for_all (check_pred db ~doc ~sqls t) s.P.preds) matches
  in
  let final = List.fold_left step_frontier [ 0 ] simple.P.steps in
  let targets =
    match simple.P.tgt with
    | P.Elements -> List.sort_uniq compare final
    | P.Attr_of a ->
      frontier_query db ~sqls ~doc ~kind:"a" ~name:a final |> List.sort_uniq compare
    | P.Text_of -> frontier_query db ~sqls ~doc ~kind:"t" final |> List.sort_uniq compare
  in
  (targets, List.rev !sqls)

let is_pure_chain (simple : Pathquery.t) =
  List.for_all (fun (s : Pathquery.step) -> not s.Pathquery.desc) simple.Pathquery.steps

let query db ~doc (path : Xpathkit.Ast.path) : query_result =
  match Pathquery.analyze path with
  | None -> fallback_query ~reconstruct db ~doc path
  | Some simple ->
    let targets, sqls, joins =
      if is_pure_chain simple then begin
        let q, params = traced_translate ~scheme:id (fun () -> chain_query ~doc simple) in
        let sqls = ref [] and joins = ref 0 in
        let r = run_built db ~joins ~sqls ~params q in
        (int_column r, List.rev !sqls, !joins)
      end
      else begin
        let targets, sqls = stepwise db ~doc simple in
        (targets, sqls, 0)
      end
    in
    {
      values = List.map (string_value_of_target db ~doc) targets;
      nodes = lazy (List.map (node_of_target db ~doc) targets);
      sql = sqls;
      joins;
      fallback = false;
    }

let mapping : Mapping.mapping =
  (module struct
    let id = id
    let description = description
    let create_schema = create_schema
    let create_indexes = create_indexes
    let shred = shred
    let shred_bulk = shred_bulk
    let reconstruct = reconstruct
    let query = query
  end)
