(* The Binary mapping: the Edge table horizontally partitioned by label —
   one table per element tag, one per attribute name, one for character
   data. A registry table maps labels to their (sanitized, uniquified)
   table names.

     bt_<tag>  (doc, source, ordinal, target)          element edges
     ba_<name> (doc, source, ordinal, target, value)   attribute edges
     b_cdata   (doc, source, ordinal, target, value)   text nodes
     b_misc    (doc, source, ordinal, kind, name, target, value)
     b_labels  (kind, label, tbl)                      registry

   Named child chains join small per-tag tables (the Binary win); wildcard
   and '//' steps must consult every element table (the Binary pain), which
   this implementation does stepwise, one query per table per frontier. *)

module Dom = Xmlkit.Dom
module Index = Xmlkit.Index
module Db = Relstore.Database
module Value = Relstore.Value
module Sb = Relstore.Sql_build
open Mapping

let id = "binary"
let description = "one table per element/attribute label (partitioned edge)"

let create_schema db =
  ignore
    (Db.exec db
       "CREATE TABLE IF NOT EXISTS b_labels (kind TEXT NOT NULL, label TEXT NOT NULL, tbl \
        TEXT NOT NULL)");
  ignore
    (Db.exec db
       "CREATE TABLE IF NOT EXISTS b_cdata (doc INTEGER NOT NULL, source INTEGER NOT NULL, \
        ordinal INTEGER NOT NULL, target INTEGER NOT NULL, value TEXT)");
  ignore
    (Db.exec db
       "CREATE TABLE IF NOT EXISTS b_misc (doc INTEGER NOT NULL, source INTEGER NOT NULL, \
        ordinal INTEGER NOT NULL, kind TEXT NOT NULL, name TEXT, target INTEGER NOT NULL, \
        value TEXT)")

(* Registry access. [kind] is "e" or "a". *)
let label_table db ~kind label =
  let b = Sb.binder () in
  let q =
    Sb.query
      [
        Sb.select ~from:[ Sb.from "b_labels" ]
          ~where:
            [ Sb.eq (Sb.col "kind") (Sb.ptext b kind); Sb.eq (Sb.col "label") (Sb.ptext b label) ]
          [ Sb.proj (Sb.col "tbl") ];
      ]
  in
  let r = query_built db ~params:(Sb.params b) q in
  match string_column r with [ t ] -> Some t | [] -> None | _ -> err "duplicate label %s" label

let all_label_tables db ~kind =
  let b = Sb.binder () in
  let q =
    Sb.query
      [
        Sb.select ~from:[ Sb.from "b_labels" ]
          ~where:[ Sb.eq (Sb.col "kind") (Sb.ptext b kind) ]
          ~order_by:[ Sb.asc (Sb.col "label") ]
          [ Sb.proj (Sb.col "label"); Sb.proj (Sb.col "tbl") ];
      ]
  in
  let r = query_built db ~params:(Sb.params b) q in
  List.map
    (fun row -> (Value.to_string row.(0), Value.to_string row.(1)))
    r.Relstore.Executor.rows

let ensure_label_table db ~kind label =
  match label_table db ~kind label with
  | Some t -> t
  | None ->
    (* uniquify sanitized names: hat and h_t would collide *)
    let base = Printf.sprintf "b%s_%s" kind (sanitize label) in
    let existing = List.map snd (all_label_tables db ~kind:"e") @ List.map snd (all_label_tables db ~kind:"a") in
    let rec unique candidate n =
      if List.mem candidate existing then unique (Printf.sprintf "%s_%d" base n) (n + 1)
      else candidate
    in
    let tbl = unique base 1 in
    (match kind with
    | "e" ->
      ignore
        (Db.exec db
           (Printf.sprintf
              "CREATE TABLE %s (doc INTEGER NOT NULL, source INTEGER NOT NULL, ordinal \
               INTEGER NOT NULL, target INTEGER NOT NULL)"
              tbl))
    | "a" ->
      ignore
        (Db.exec db
           (Printf.sprintf
              "CREATE TABLE %s (doc INTEGER NOT NULL, source INTEGER NOT NULL, ordinal \
               INTEGER NOT NULL, target INTEGER NOT NULL, value TEXT)"
              tbl))
    | k -> err "bad label kind %s" k);
    Db.insert_row_array db "b_labels" [| Value.Text kind; Value.Text label; Value.Text tbl |];
    tbl

let create_indexes db =
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS b_cdata_source ON b_cdata (source)");
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS b_misc_source ON b_misc (source)");
  List.iter
    (fun kind ->
      List.iter
        (fun (_, tbl) ->
          ignore
            (Db.exec db
               (Printf.sprintf "CREATE INDEX IF NOT EXISTS %s_source ON %s (source)" tbl tbl));
          ignore
            (Db.exec db
               (Printf.sprintf "CREATE INDEX IF NOT EXISTS %s_target ON %s (target)" tbl tbl)))
        (all_label_tables db ~kind))
    [ "e"; "a" ]

(* Per-node rows go through the [emit] sink (row-at-a-time or bulk
   session); the label registry and its DDL stay on [db] — mid-shred
   lookups read b_labels by sequential scan, which sees appended rows
   either way. *)
let shred_into emit db ~doc ix =
  for n = 1 to Index.count ix - 1 do
    let source = Index.parent ix n in
    let ordinal = Index.ordinal ix n in
    match Index.kind ix n with
    | Index.Element ->
      let tbl = ensure_label_table db ~kind:"e" (Index.name ix n) in
      emit tbl [| Value.Int doc; Value.Int source; Value.Int ordinal; Value.Int n |]
    | Index.Attribute ->
      let tbl = ensure_label_table db ~kind:"a" (Index.name ix n) in
      emit tbl
        [| Value.Int doc; Value.Int source; Value.Int ordinal; Value.Int n; Value.Text (Index.value ix n) |]
    | Index.Text ->
      emit "b_cdata"
        [| Value.Int doc; Value.Int source; Value.Int ordinal; Value.Int n; Value.Text (Index.value ix n) |]
    | Index.Comment ->
      emit "b_misc"
        [|
          Value.Int doc; Value.Int source; Value.Int ordinal; Value.Text "c"; Value.Null;
          Value.Int n; Value.Text (Index.value ix n);
        |]
    | Index.Pi ->
      emit "b_misc"
        [|
          Value.Int doc; Value.Int source; Value.Int ordinal; Value.Text "p";
          Value.Text (Index.name ix n); Value.Int n; Value.Text (Index.value ix n);
        |]
    | Index.Document -> ()
  done

let shred db ~doc ix = shred_into (Db.insert_row_array db) db ~doc ix
let shred_bulk session ~doc ix =
  shred_into (Db.session_insert session) (Db.session_db session) ~doc ix

(* ------------------------------------------------------------------ *)
(* Reconstruction: merge all partitions back into edge rows. *)

type row = {
  r_source : int;
  r_ordinal : int;
  r_kind : string;
  r_name : string;
  r_target : int;
  r_value : string;
}

(* SELECT [cols] FROM tbl WHERE doc = ? [AND source = ?] [AND target = ?].
   One statement shape per partition table; ids are bound parameters. *)
let fetch_cols db ~doc ?source ?target tbl cols =
  let b = Sb.binder () in
  let where =
    [ Sb.eq (Sb.col "doc") (Sb.pint b doc) ]
    @ (match source with Some s -> [ Sb.eq (Sb.col "source") (Sb.pint b s) ] | None -> [])
    @ (match target with Some t -> [ Sb.eq (Sb.col "target") (Sb.pint b t) ] | None -> [])
  in
  let q =
    Sb.query
      [ Sb.select ~from:[ Sb.from tbl ] ~where (List.map (fun c -> Sb.proj (Sb.col c)) cols) ]
  in
  (query_built db ~params:(Sb.params b) q).Relstore.Executor.rows

let fetch_all db ~doc =
  let rows = ref [] in
  List.iter
    (fun (label, tbl) ->
      List.iter
        (fun a ->
          rows :=
            {
              r_source = (match a.(0) with Value.Int i -> i | _ -> err "bad source");
              r_ordinal = (match a.(1) with Value.Int i -> i | _ -> err "bad ordinal");
              r_kind = "e";
              r_name = label;
              r_target = (match a.(2) with Value.Int i -> i | _ -> err "bad target");
              r_value = "";
            }
            :: !rows)
        (fetch_cols db ~doc tbl [ "source"; "ordinal"; "target" ]))
    (all_label_tables db ~kind:"e");
  List.iter
    (fun (label, tbl) ->
      List.iter
        (fun a ->
          rows :=
            {
              r_source = (match a.(0) with Value.Int i -> i | _ -> err "bad source");
              r_ordinal = (match a.(1) with Value.Int i -> i | _ -> err "bad ordinal");
              r_kind = "a";
              r_name = label;
              r_target = (match a.(2) with Value.Int i -> i | _ -> err "bad target");
              r_value = Value.to_string a.(3);
            }
            :: !rows)
        (fetch_cols db ~doc tbl [ "source"; "ordinal"; "target"; "value" ]))
    (all_label_tables db ~kind:"a");
  List.iter
    (fun a ->
      rows :=
        {
          r_source = (match a.(0) with Value.Int i -> i | _ -> err "bad source");
          r_ordinal = (match a.(1) with Value.Int i -> i | _ -> err "bad ordinal");
          r_kind = "t";
          r_name = "";
          r_target = (match a.(2) with Value.Int i -> i | _ -> err "bad target");
          r_value = Value.to_string a.(3);
        }
        :: !rows)
    (fetch_cols db ~doc "b_cdata" [ "source"; "ordinal"; "target"; "value" ]);
  List.iter
    (fun a ->
      rows :=
        {
          r_source = (match a.(0) with Value.Int i -> i | _ -> err "bad source");
          r_ordinal = (match a.(1) with Value.Int i -> i | _ -> err "bad ordinal");
          r_kind = Value.to_string a.(2);
          r_name = (match a.(3) with Value.Null -> "" | v -> Value.to_string v);
          r_target = (match a.(4) with Value.Int i -> i | _ -> err "bad target");
          r_value = Value.to_string a.(5);
        }
        :: !rows)
    (fetch_cols db ~doc "b_misc" [ "source"; "ordinal"; "kind"; "name"; "target"; "value" ]);
  !rows

let build_tree by_source (r : row) =
  let rec build (r : row) : Dom.node =
    match r.r_kind with
    | "e" ->
      let children = Option.value ~default:[] (Hashtbl.find_opt by_source r.r_target) in
      let children = List.sort (fun a b -> compare a.r_ordinal b.r_ordinal) children in
      let attrs, content = List.partition (fun c -> c.r_kind = "a") children in
      Dom.Element
        {
          Dom.tag = r.r_name;
          attrs = List.map (fun a -> Dom.attr a.r_name a.r_value) attrs;
          children = List.map build content;
        }
    | "t" -> Dom.Text r.r_value
    | "c" -> Dom.Comment r.r_value
    | "p" -> Dom.Pi { target = r.r_name; data = r.r_value }
    | "a" -> Dom.Text r.r_value
    | k -> err "unknown kind %s" k
  in
  build r

let reconstruct db ~doc =
  let rows = fetch_all db ~doc in
  let by_source = Hashtbl.create 256 in
  List.iter
    (fun r ->
      Hashtbl.replace by_source r.r_source
        (r :: Option.value ~default:[] (Hashtbl.find_opt by_source r.r_source)))
    rows;
  match Option.value ~default:[] (Hashtbl.find_opt by_source 0) with
  | [ root ] -> (
    match build_tree by_source root with
    | Dom.Element e -> Dom.document e
    | _ -> err "root is not an element")
  | [] -> err "document %d is not stored" doc
  | _ -> err "document %d has multiple roots" doc

(* Subtree of one node, via repeated per-source fetches. *)
let rec node_of_target db ~doc ~kind ~name ~value target : Dom.node =
  match kind with
  | "t" | "a" -> if kind = "t" then Dom.Text value else Dom.Text value
  | "c" -> Dom.Comment value
  | "p" -> Dom.Pi { target = name; data = value }
  | "e" ->
    let attrs = ref [] and content = ref [] in
    List.iter
      (fun (label, tbl) ->
        List.iter
          (fun a ->
            let t = match a.(0) with Value.Int i -> i | _ -> err "bad target" in
            let o = match a.(1) with Value.Int i -> i | _ -> err "bad ordinal" in
            content := (o, node_of_target db ~doc ~kind:"e" ~name:label ~value:"" t) :: !content)
          (fetch_cols db ~doc ~source:target tbl [ "target"; "ordinal" ]))
      (all_label_tables db ~kind:"e");
    List.iter
      (fun (label, tbl) ->
        List.iter
          (fun a ->
            let o = match a.(0) with Value.Int i -> i | _ -> err "bad ordinal" in
            attrs := (o, Dom.attr label (Value.to_string a.(1))) :: !attrs)
          (fetch_cols db ~doc ~source:target tbl [ "ordinal"; "value" ]))
      (all_label_tables db ~kind:"a");
    List.iter
      (fun a ->
        let o = match a.(0) with Value.Int i -> i | _ -> err "bad ordinal" in
        content := (o, Dom.Text (Value.to_string a.(1))) :: !content)
      (fetch_cols db ~doc ~source:target "b_cdata" [ "ordinal"; "value" ]);
    List.iter
      (fun a ->
        let o = match a.(0) with Value.Int i -> i | _ -> err "bad ordinal" in
        let node =
          match Value.to_string a.(1) with
          | "c" -> Dom.Comment (Value.to_string a.(3))
          | _ -> Dom.Pi { target = Value.to_string a.(2); data = Value.to_string a.(3) }
        in
        content := (o, node) :: !content)
      (fetch_cols db ~doc ~source:target "b_misc" [ "ordinal"; "kind"; "name"; "value" ]);
    Dom.Element
      {
        Dom.tag = name;
        attrs = List.map snd (List.sort compare !attrs);
        children = List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) !content);
      }
  | k -> err "unknown kind %s" k

(* Locate a node's (kind, name, value) by target id — scans partitions. *)
let describe_target db ~doc target =
  let find_in tbl cols = fetch_cols db ~doc ~target tbl cols in
  let rec try_elements = function
    | [] -> None
    | (label, tbl) :: rest ->
      if find_in tbl [ "target" ] <> [] then Some ("e", label, "") else try_elements rest
  in
  let rec try_attrs = function
    | [] -> None
    | (label, tbl) :: rest -> (
      match find_in tbl [ "value" ] with
      | [ [| v |] ] -> Some ("a", label, Value.to_string v)
      | _ -> try_attrs rest)
  in
  match try_elements (all_label_tables db ~kind:"e") with
  | Some d -> d
  | None -> (
    match try_attrs (all_label_tables db ~kind:"a") with
    | Some d -> d
    | None -> (
      match find_in "b_cdata" [ "value" ] with
      | [ [| v |] ] -> ("t", "", Value.to_string v)
      | _ -> (
        match find_in "b_misc" [ "kind"; "name"; "value" ] with
        | [ [| k; n; v |] ] ->
          ( Value.to_string k,
            (match n with Value.Null -> "" | n -> Value.to_string n),
            Value.to_string v )
        | _ -> err "no node with target %d" target)))

(* ------------------------------------------------------------------ *)
(* Query translation *)

(* Edges here live in per-label tables, so [child_of] links alias.source to
   the parent alias's target; kind/name conditions are implied by the table. *)
let child_of a parent = Sb.eq (acol a "source") (acol parent "target")

let pred_sql db ~b ~pdoc ~cur ~fresh (p : Pathquery.pred) =
  let module P = Pathquery in
  let on_doc a = Sb.eq (acol a "doc") pdoc in
  (* Missing label tables mean the predicate can never hold. *)
  let need_table kind label k =
    match label_table db ~kind label with None -> None | Some tbl -> Some (k tbl)
  in
  match p with
  | P.Has_child c ->
    need_table "e" c (fun tbl ->
        let a = fresh () in
        ([ (tbl, a) ], [ on_doc a; child_of a cur ]))
  | P.Has_attr at ->
    need_table "a" at (fun tbl ->
        let a = fresh () in
        ([ (tbl, a) ], [ on_doc a; child_of a cur ]))
  | P.Attr_value (at, op, v) ->
    need_table "a" at (fun tbl ->
        let a = fresh () in
        ( [ (tbl, a) ],
          [
            on_doc a; child_of a cur;
            Sb.cmp (P.cmp_binop op) (acol a "value") (Sb.ptext b v);
          ] ))
  | P.Attr_number (at, op, v) ->
    need_table "a" at (fun tbl ->
        let a = fresh () in
        ( [ (tbl, a) ],
          [
            on_doc a; child_of a cur;
            Sb.cmp (P.cmp_binop op) (Sb.to_number (acol a "value")) (Sb.pfloat b v);
          ] ))
  | P.Child_value (c, op, v) ->
    need_table "e" c (fun tbl ->
        let a = fresh () and t = fresh () in
        ( [ (tbl, a); ("b_cdata", t) ],
          [
            on_doc a; child_of a cur; on_doc t; child_of t a;
            Sb.cmp (P.cmp_binop op) (acol t "value") (Sb.ptext b v);
          ] ))
  | P.Child_number (c, op, v) ->
    need_table "e" c (fun tbl ->
        let a = fresh () and t = fresh () in
        ( [ (tbl, a); ("b_cdata", t) ],
          [
            on_doc a; child_of a cur; on_doc t; child_of t a;
            Sb.cmp (P.cmp_binop op) (Sb.to_number (acol t "value")) (Sb.pfloat b v);
          ] ))

exception Empty_result

(* Single-statement chain translation for named child paths. Returns the
   query and its parameter bindings; raises [Empty_result] when a
   referenced label does not exist in the store. *)
let chain_query db ~doc (simple : Pathquery.t) =
  let module P = Pathquery in
  let b = Sb.binder () in
  let pdoc = Sb.pint b doc in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "x%d" !counter
  in
  let froms = ref [] and wheres = ref [] in
  let add_from tbl a = froms := (tbl, a) :: !froms in
  let add_where w = wheres := w :: !wheres in
  let prev = ref None in
  List.iter
    (fun (s : P.step) ->
      assert (not s.P.desc);
      let tag = match s.P.test with P.Tag n -> n | P.Any_tag -> err "wildcard in chain" in
      let tbl = match label_table db ~kind:"e" tag with Some t -> t | None -> raise Empty_result in
      let e = fresh () in
      add_from tbl e;
      add_where (Sb.eq (acol e "doc") pdoc);
      (match !prev with
      | None -> add_where (Sb.eq (acol e "source") (Sb.int 0))
      | Some p -> add_where (child_of e p));
      List.iter
        (fun pr ->
          match pred_sql db ~b ~pdoc ~cur:e ~fresh pr with
          | None -> raise Empty_result
          | Some (extra_from, extra_where) ->
            List.iter (fun (t, a) -> add_from t a) extra_from;
            List.iter add_where extra_where)
        s.P.preds;
      prev := Some e)
    simple.P.steps;
  let last = match !prev with Some p -> p | None -> err "empty path" in
  let result_alias =
    match simple.P.tgt with
    | P.Elements -> last
    | P.Attr_of a -> (
      match label_table db ~kind:"a" a with
      | None -> raise Empty_result
      | Some tbl ->
        let at = fresh () in
        add_from tbl at;
        add_where (Sb.eq (acol at "doc") pdoc);
        add_where (child_of at last);
        at)
    | P.Text_of ->
      let tx = fresh () in
      add_from "b_cdata" tx;
      add_where (Sb.eq (acol tx "doc") pdoc);
      add_where (child_of tx last);
      tx
  in
  let result = acol result_alias "target" in
  let q =
    Sb.query
      [
        Sb.select ~distinct:true
          ~from:(List.rev_map (fun (t, a) -> Sb.from ~alias:a t) !froms)
          ~where:(List.rev !wheres)
          ~order_by:[ Sb.asc result ]
          [ Sb.proj result ];
      ]
  in
  (q, Sb.params b)

(* Stepwise evaluation for '//' and wildcards: each step consults one table
   per candidate tag — the partitioning tax. *)
let stepwise db ~doc (simple : Pathquery.t) =
  let module P = Pathquery in
  let sqls = ref [] in
  (* SELECT target FROM partition WHERE doc = ? AND source IN (?...) *)
  let sources_in tbl ids =
    Edge.batched ids (fun chunk ->
        let b = Sb.binder () in
        let where =
          [
            Sb.eq (Sb.col "doc") (Sb.pint b doc);
            Sb.in_list (Sb.col "source") (List.map (Sb.pint b) chunk);
          ]
        in
        let q =
          Sb.query [ Sb.select ~from:[ Sb.from tbl ] ~where [ Sb.proj (Sb.col "target") ] ]
        in
        int_column (run_built db ~sqls ~params:(Sb.params b) q))
  in
  let children_of ids ~tag_filter =
    let tables =
      match tag_filter with
      | Some n -> ( match label_table db ~kind:"e" n with Some t -> [ (n, t) ] | None -> [])
      | None -> all_label_tables db ~kind:"e"
    in
    List.concat_map (fun (_, tbl) -> sources_in tbl ids) tables
  in
  let check_pred target (p : P.pred) =
    let probe ~b ~from ~where proj =
      let q = Sb.query [ Sb.select ~from ~where ~limit:1 [ Sb.proj proj ] ] in
      int_column (run_built db ~sqls ~params:(Sb.params b) q) <> []
    in
    (* one-table probe on (doc, source) plus branch-specific conditions *)
    let simple_probe tbl extra =
      let b = Sb.binder () in
      let base =
        [ Sb.eq (Sb.col "doc") (Sb.pint b doc); Sb.eq (Sb.col "source") (Sb.pint b target) ]
      in
      probe ~b ~from:[ Sb.from tbl ] ~where:(base @ extra b) (Sb.col "target")
    in
    let child_text_probe tbl extra =
      let b = Sb.binder () in
      let where =
        [
          Sb.eq (acol "e" "doc") (Sb.pint b doc);
          Sb.eq (acol "e" "source") (Sb.pint b target);
          Sb.eq (acol "t" "doc") (Sb.pint b doc);
          child_of "t" "e";
        ]
        @ extra b
      in
      probe ~b
        ~from:[ Sb.from ~alias:"e" tbl; Sb.from ~alias:"t" "b_cdata" ]
        ~where (acol "t" "target")
    in
    match p with
    | P.Has_child c -> (
      match label_table db ~kind:"e" c with
      | None -> false
      | Some tbl -> simple_probe tbl (fun _ -> []))
    | P.Has_attr a -> (
      match label_table db ~kind:"a" a with
      | None -> false
      | Some tbl -> simple_probe tbl (fun _ -> []))
    | P.Attr_value (a, op, v) -> (
      match label_table db ~kind:"a" a with
      | None -> false
      | Some tbl ->
        simple_probe tbl (fun b -> [ Sb.cmp (P.cmp_binop op) (Sb.col "value") (Sb.ptext b v) ]))
    | P.Attr_number (a, op, v) -> (
      match label_table db ~kind:"a" a with
      | None -> false
      | Some tbl ->
        simple_probe tbl (fun b ->
            [ Sb.cmp (P.cmp_binop op) (Sb.to_number (Sb.col "value")) (Sb.pfloat b v) ]))
    | P.Child_value (c, op, v) -> (
      match label_table db ~kind:"e" c with
      | None -> false
      | Some tbl ->
        child_text_probe tbl (fun b ->
            [ Sb.cmp (P.cmp_binop op) (acol "t" "value") (Sb.ptext b v) ]))
    | P.Child_number (c, op, v) -> (
      match label_table db ~kind:"e" c with
      | None -> false
      | Some tbl ->
        child_text_probe tbl (fun b ->
            [ Sb.cmp (P.cmp_binop op) (Sb.to_number (acol "t" "value")) (Sb.pfloat b v) ]))
  in
  let step_frontier frontier (s : P.step) =
    let matches =
      if s.P.desc then begin
        let acc = ref [] in
        let current = ref frontier in
        while !current <> [] do
          let all_children = children_of !current ~tag_filter:None in
          let hits =
            match s.P.test with
            | P.Any_tag -> all_children
            | P.Tag n -> children_of !current ~tag_filter:(Some n)
          in
          acc := hits @ !acc;
          current := all_children
        done;
        List.sort_uniq compare !acc
      end
      else
        children_of frontier
          ~tag_filter:(match s.P.test with P.Tag n -> Some n | P.Any_tag -> None)
        |> List.sort_uniq compare
    in
    List.filter (fun t -> List.for_all (check_pred t) s.P.preds) matches
  in
  let final = List.fold_left step_frontier [ 0 ] simple.P.steps in
  let targets =
    match simple.P.tgt with
    | P.Elements -> List.sort_uniq compare final
    | P.Attr_of a -> (
      match label_table db ~kind:"a" a with
      | None -> []
      | Some tbl -> List.sort_uniq compare (sources_in tbl final))
    | P.Text_of -> List.sort_uniq compare (sources_in "b_cdata" final)
  in
  (targets, List.rev !sqls)

let is_named_chain (simple : Pathquery.t) =
  List.for_all
    (fun (s : Pathquery.step) ->
      (not s.Pathquery.desc) && match s.Pathquery.test with Pathquery.Tag _ -> true | _ -> false)
    simple.Pathquery.steps

let materialize db ~doc targets sqls joins =
  let node_of t =
    let kind, name, value = describe_target db ~doc t in
    node_of_target db ~doc ~kind ~name ~value t
  in
  {
    values =
      List.map
        (fun t ->
          let kind, name, value = describe_target db ~doc t in
          match kind with
          | "e" -> Dom.string_value (node_of_target db ~doc ~kind ~name ~value t)
          | _ -> value)
        targets;
    nodes = lazy (List.map node_of targets);
    sql = sqls;
    joins;
    fallback = false;
  }

let query db ~doc (path : Xpathkit.Ast.path) : query_result =
  match Pathquery.analyze path with
  | None -> fallback_query ~reconstruct db ~doc path
  | Some simple ->
    if is_named_chain simple then begin
      match traced_translate ~scheme:id (fun () -> chain_query db ~doc simple) with
      | q, params ->
        let sqls = ref [] and joins = ref 0 in
        let targets = int_column (run_built db ~joins ~sqls ~params q) in
        materialize db ~doc targets (List.rev !sqls) !joins
      | exception Empty_result ->
        { values = []; nodes = lazy []; sql = []; joins = 0; fallback = false }
    end
    else begin
      let targets, sqls = stepwise db ~doc simple in
      materialize db ~doc targets sqls 0
    end

let mapping : Mapping.mapping =
  (module struct
    let id = id
    let description = description
    let create_schema = create_schema
    let create_indexes = create_indexes
    let shred = shred
    let shred_bulk = shred_bulk
    let reconstruct = reconstruct
    let query = query
  end)
