(* In-place update operations on stored documents, for the schemes where
   the literature defines them:

   - edge:     append/delete touch only the subtree (node ids are opaque);
   - dewey:    append labels a new sibling, delete removes a label prefix —
               the cheap-update design goal of Tatarinov et al.;
   - interval: any structural update must renumber every following node's
               [pre] (and ancestors' sizes) — the known weakness of
               pre/post encodings that ORDPath-style labels fix.

   Both operations report how many rows they inserted / updated / deleted,
   which experiment F5 uses as the machine-independent cost measure. *)

module Value = Relstore.Value
module Sb = Relstore.Sql_build
open Mapping

type cost = { inserted : int; updated : int; deleted : int }

let zero = { inserted = 0; updated = 0; deleted = 0 }

let cost_total c = c.inserted + c.updated + c.deleted

module type UPDATER = sig
  val id : string

  val append_child : Db.t -> doc:int -> parent:Xpathkit.Ast.path -> Dom.node -> cost
  (** Append [node] as the last child of the single element selected by
      [parent]. Fails if the path selects zero or several elements. *)

  val delete_matching : Db.t -> doc:int -> Xpathkit.Ast.path -> cost
  (** Delete every element (subtree included) selected by the path. *)
end

let err_target n =
  err "update target must select exactly one element (selected %d)" n

let simple_of path =
  match Pathquery.analyze path with
  | Some s when s.Pathquery.tgt = Pathquery.Elements -> s
  | Some _ -> err "update paths must select elements"
  | None -> err "update paths must be within the translatable subset"

(* Index a detached fragment rooted at an element node. *)
let index_fragment (node : Dom.node) =
  match node with
  | Dom.Element e -> Index.of_document (Dom.document e)
  | _ -> err "only element subtrees can be appended"

(* ------------------------------------------------------------------ *)
(* Edge *)

module Edge_updater : UPDATER = struct
  let id = "edge"

  let targets db ~doc path =
    let t, _ = Edge.stepwise db ~doc (simple_of path) in
    t

  let scalar_int db ~params sql =
    match (Db.query ~params db sql).Relstore.Executor.rows with
    | [ [| Value.Int i |] ] -> i
    | [ [| Value.Null |] ] -> 0
    | _ -> err "expected one integer from %s" sql

  let append_child db ~doc ~parent node =
    match targets db ~doc parent with
    | [ target ] ->
      let fragment = index_fragment node in
      let base =
        scalar_int db ~params:[| Value.Int doc |] "SELECT max(target) FROM edge WHERE doc = ?1"
      in
      let next_ord =
        1
        + scalar_int db
            ~params:[| Value.Int doc; Value.Int target |]
            "SELECT max(ordinal) FROM edge WHERE doc = ?1 AND source = ?2 AND kind <> 'a'"
      in
      (* fragment node 0 is its document node; node ids shift by [base] *)
      let inserted = ref 0 in
      for n = 1 to Index.count fragment - 1 do
        let source = Index.parent fragment n in
        let is_frag_root = n = Index.root_element fragment in
        let source_id = if source = 0 then target else base + source in
        let target_id = base + n in
        let ordinal = if is_frag_root then next_ord else Index.ordinal fragment n in
        let kind, name, value =
          match Index.kind fragment n with
          | Index.Element -> ("e", Some (Index.name fragment n), None)
          | Index.Attribute -> ("a", Some (Index.name fragment n), Some (Index.value fragment n))
          | Index.Text -> ("t", None, Some (Index.value fragment n))
          | Index.Comment -> ("c", None, Some (Index.value fragment n))
          | Index.Pi -> ("p", Some (Index.name fragment n), Some (Index.value fragment n))
          | Index.Document -> ("d", None, None)
        in
        if kind <> "d" then begin
          Db.insert_row_array db "edge"
            [|
              Value.Int doc; Value.Int source_id; Value.Int ordinal; Value.Text kind;
              (match name with Some n -> Value.Text n | None -> Value.Null);
              Value.Int target_id;
              (match value with Some v -> Value.Text v | None -> Value.Null);
            |];
          incr inserted
        end
      done;
      { zero with inserted = !inserted }
    | ts -> err_target (List.length ts)

  let delete_matching db ~doc path =
    let roots = targets db ~doc path in
    let deleted = ref 0 in
    let delete_one root =
      (* BFS over the subtree, deleting edges bottom-up is unnecessary:
         collect ids first, then delete by target and by source *)
      let all = ref [ root ] in
      let frontier = ref [ root ] in
      while !frontier <> [] do
        let next =
          Edge.batched !frontier (fun chunk ->
              let b = Sb.binder () in
              let q =
                Sb.query
                  [
                    Sb.select
                      ~from:[ Sb.from "edge" ]
                      ~where:
                        [
                          Sb.eq (Sb.col "doc") (Sb.pint b doc);
                          Sb.in_list (Sb.col "source") (List.map (Sb.pint b) chunk);
                        ]
                      [ Sb.proj (Sb.col "target") ];
                  ]
              in
              int_column (query_built db ~params:(Sb.params b) q))
        in
        all := next @ !all;
        frontier := next
      done;
      (* every subtree row is addressed by its target id, the incoming edge
         of the root included *)
      ignore
        (Edge.batched !all (fun chunk ->
             let params =
               Array.of_list (Value.Int doc :: List.map (fun i -> Value.Int i) chunk)
             in
             let holes =
               String.concat ", " (List.mapi (fun i _ -> Printf.sprintf "?%d" (i + 2)) chunk)
             in
             (match
                Db.exec ~params db
                  (Printf.sprintf "DELETE FROM edge WHERE doc = ?1 AND target IN (%s)" holes)
              with
             | Db.Affected n -> deleted := !deleted + n
             | _ -> ());
             []))
    in
    List.iter delete_one roots;
    { zero with deleted = !deleted }
end

(* ------------------------------------------------------------------ *)
(* Dewey *)

module Dewey_updater : UPDATER = struct
  let id = "dewey"

  let labels db ~doc path =
    let q, params = Dewey.translate ~doc (simple_of path) in
    string_column (query_built db ~params q)

  let append_child db ~doc ~parent node =
    match labels db ~doc parent with
    | [ parent_label ] ->
      let fragment = index_fragment node in
      (* next free child ordinal under the parent *)
      let r =
        Db.query
          ~params:[| Value.Int doc; Value.Text parent_label |]
          db "SELECT max(ordinal) FROM dewey WHERE doc = ?1 AND parent_label = ?2 AND kind <> 'a'"
      in
      let next_ord =
        1
        + (match r.Relstore.Executor.rows with
          | [ [| Value.Int i |] ] -> i
          | _ -> 0)
      in
      (* relabel the fragment under parent_label.next_ord *)
      let frag_labels = Array.make (Index.count fragment) "" in
      let parent_level =
        match
          (Db.query
             ~params:[| Value.Int doc; Value.Text parent_label |]
             db "SELECT level FROM dewey WHERE doc = ?1 AND label = ?2")
            .Relstore.Executor.rows
        with
        | [ [| Value.Int l |] ] -> l
        | _ -> err "parent label %s not found" parent_label
      in
      let inserted = ref 0 in
      for n = 1 to Index.count fragment - 1 do
        let p = Index.parent fragment n in
        let attr = Index.kind fragment n = Index.Attribute in
        let ordinal =
          if n = Index.root_element fragment then next_ord else Index.ordinal fragment n
        in
        let comp = Dewey.component ~attr ordinal in
        let parent_lab = if p = 0 then parent_label else frag_labels.(p) in
        let label = parent_lab ^ "." ^ comp in
        frag_labels.(n) <- label;
        let name =
          match Index.kind fragment n with
          | Index.Element | Index.Attribute | Index.Pi -> Value.Text (Index.name fragment n)
          | _ -> Value.Null
        in
        let value =
          match Index.kind fragment n with
          | Index.Element | Index.Document -> Value.Null
          | _ -> Value.Text (Index.value fragment n)
        in
        Db.insert_row_array db "dewey"
          [|
            Value.Int doc;
            Value.Text label;
            Value.Text parent_lab;
            Value.Text (kind_code (Index.kind fragment n));
            name;
            value;
            Value.Int (parent_level + Index.level fragment n);
            Value.Int ordinal;
          |];
        incr inserted
      done;
      { zero with inserted = !inserted }
    | ls -> err_target (List.length ls)

  let delete_matching db ~doc path =
    let victims = labels db ~doc path in
    let deleted = ref 0 in
    List.iter
      (fun label ->
        List.iter
          (fun (sql, params) ->
            match Db.exec ~params db sql with
            | Db.Affected n -> deleted := !deleted + n
            | _ -> ())
          [
            ( "DELETE FROM dewey WHERE doc = ?1 AND label = ?2",
              [| Value.Int doc; Value.Text label |] );
            ( "DELETE FROM dewey WHERE doc = ?1 AND label LIKE ?2",
              [| Value.Int doc; Value.Text (label ^ ".%") |] );
          ])
      victims;
    { zero with deleted = !deleted }
end

(* ------------------------------------------------------------------ *)
(* Interval *)

module Interval_updater : UPDATER = struct
  let id = "interval"

  let pres db ~doc path =
    let q, params = Interval.translate ~doc (simple_of path) in
    int_column (query_built db ~params q)

  let node_row db ~doc pre =
    match
      (Db.query
         ~params:[| Value.Int doc; Value.Int pre |]
         db "SELECT size, level, parent, ordinal FROM accel WHERE doc = ?1 AND pre = ?2")
        .Relstore.Executor.rows
    with
    | [ [| Value.Int size; Value.Int level; Value.Int parent; Value.Int ordinal |] ] ->
      (size, level, parent, ordinal)
    | _ -> err "node %d not stored" pre

  let affected db ~params sql =
    match Db.exec ~params db sql with Db.Affected n -> n | _ -> 0

  (* ancestors of a pre (walking parent pointers) *)
  let rec ancestors db ~doc pre acc =
    if pre = 0 then acc
    else
      let _, _, parent, _ = node_row db ~doc pre in
      if parent = 0 then acc else ancestors db ~doc parent (parent :: acc)

  let append_child db ~doc ~parent node =
    match pres db ~doc parent with
    | [ target ] ->
      let fragment = index_fragment node in
      let k = Index.count fragment - 1 in
      let size, level, _, _ = node_row db ~doc target in
      (* new nodes occupy pres (insert_at, insert_at + k] *)
      let insert_at = target + size in
      let updated = ref 0 in
      (* shift every following node (and parent pointers) — the O(document)
         renumbering this scheme is known for *)
      updated :=
        !updated
        + affected db
            ~params:[| Value.Int k; Value.Int doc; Value.Int insert_at |]
            "UPDATE accel SET pre = pre + ?1 WHERE doc = ?2 AND pre > ?3";
      updated :=
        !updated
        + affected db
            ~params:[| Value.Int k; Value.Int doc; Value.Int insert_at |]
            "UPDATE accel SET parent = parent + ?1 WHERE doc = ?2 AND parent > ?3";
      (* grow the ancestors' subtree sizes (the target included) *)
      let anc = target :: ancestors db ~doc target [] in
      List.iter
        (fun a ->
          updated :=
            !updated
            + affected db
                ~params:[| Value.Int k; Value.Int doc; Value.Int a |]
                "UPDATE accel SET size = size + ?1 WHERE doc = ?2 AND pre = ?3")
        anc;
      (* ordinal for the appended child *)
      let next_ord =
        let r =
          Db.query
            ~params:[| Value.Int doc; Value.Int target |]
            db "SELECT max(ordinal) FROM accel WHERE doc = ?1 AND parent = ?2 AND kind <> 'a'"
        in
        match r.Relstore.Executor.rows with [ [| Value.Int i |] ] -> 1 + i | _ -> 1
      in
      let inserted = ref 0 in
      for n = 1 to Index.count fragment - 1 do
        let p = Index.parent fragment n in
        let pre = insert_at + n in
        let parent_pre = if p = 0 then target else insert_at + p in
        let ordinal =
          if n = Index.root_element fragment then next_ord else Index.ordinal fragment n
        in
        let name =
          match Index.kind fragment n with
          | Index.Element | Index.Attribute | Index.Pi -> Value.Text (Index.name fragment n)
          | _ -> Value.Null
        in
        let value =
          match Index.kind fragment n with
          | Index.Element | Index.Document -> Value.Null
          | _ -> Value.Text (Index.value fragment n)
        in
        Db.insert_row_array db "accel"
          [|
            Value.Int doc;
            Value.Int pre;
            Value.Int (Index.size fragment n);
            Value.Int (level + Index.level fragment n);
            Value.Text (kind_code (Index.kind fragment n));
            name;
            value;
            Value.Int parent_pre;
            Value.Int ordinal;
          |];
        incr inserted
      done;
      { zero with inserted = !inserted; updated = !updated }
    | ts -> err_target (List.length ts)

  let delete_matching db ~doc path =
    let victims = pres db ~doc path in
    (* delete deepest-first so earlier renumbering does not move later
       victims: descending pre order is enough because a later victim can
       never contain an earlier one *)
    let victims = List.sort (fun a b -> compare b a) victims in
    let deleted = ref 0 and updated = ref 0 in
    List.iter
      (fun pre ->
        let size, _, _, _ = node_row db ~doc pre in
        let k = size + 1 in
        let anc = ancestors db ~doc pre [] in
        deleted :=
          !deleted
          + affected db
              ~params:[| Value.Int doc; Value.Int pre; Value.Int (pre + size) |]
              "DELETE FROM accel WHERE doc = ?1 AND pre >= ?2 AND pre <= ?3";
        List.iter
          (fun a ->
            updated :=
              !updated
              + affected db
                  ~params:[| Value.Int k; Value.Int doc; Value.Int a |]
                  "UPDATE accel SET size = size - ?1 WHERE doc = ?2 AND pre = ?3")
          anc;
        updated :=
          !updated
          + affected db
              ~params:[| Value.Int k; Value.Int doc; Value.Int (pre + size) |]
              "UPDATE accel SET pre = pre - ?1 WHERE doc = ?2 AND pre > ?3";
        updated :=
          !updated
          + affected db
              ~params:[| Value.Int k; Value.Int doc; Value.Int (pre + size) |]
              "UPDATE accel SET parent = parent - ?1 WHERE doc = ?2 AND parent > ?3")
      victims;
    { zero with deleted = !deleted; updated = !updated }
end

(* ------------------------------------------------------------------ *)

let all : (module UPDATER) list =
  [ (module Edge_updater); (module Dewey_updater); (module Interval_updater) ]

let find scheme =
  List.find_opt
    (fun m ->
      let module U = (val m : UPDATER) in
      String.equal U.id scheme)
    all
