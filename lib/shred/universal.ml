(* The Universal-table mapping: one wide relation equivalent to the full
   outer join of all Binary tables — the straw-man baseline. One row per
   edge, with a column group per label, only the owning label's group
   non-NULL:

     univ(doc, source, ordinal,
          e_<tag>_t,  e_<tag>_v,   ... per element tag
          a_<name>_t, a_<name>_v,  ... per attribute name)
     u_labels(kind, label, col)    label registry

   An element edge fills (e_<tag>_t = child id, e_<tag>_v = the child's
   text when it is a text-only leaf); an attribute edge fills its a_ pair.
   The scheme targets data-centric XML: mixed content, comments, and
   processing instructions are rejected at shred time (the documented
   lossiness of the universal relation). New labels in later documents
   widen the table (rebuild + copy).

   The experiments show what the literature shows: tuple count equals
   Edge's, but bytes balloon with the NULL padding. *)

module Dom = Xmlkit.Dom
module Index = Xmlkit.Index
module Db = Relstore.Database
module Value = Relstore.Value
module Sb = Relstore.Sql_build
open Mapping

let id = "universal"
let description = "single wide universal table (outer join of all binary tables)"

let create_schema db =
  ignore
    (Db.exec db
       "CREATE TABLE IF NOT EXISTS u_labels (kind TEXT NOT NULL, label TEXT NOT NULL, col \
        TEXT NOT NULL)");
  ignore
    (Db.exec db
       "CREATE TABLE IF NOT EXISTS univ (doc INTEGER NOT NULL, source INTEGER NOT NULL, \
        ordinal INTEGER NOT NULL)")

let create_indexes db =
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS univ_source ON univ (source)")

(* Registry: labels and their column bases. *)
let labels db =
  let q =
    Sb.query
      [
        Sb.select ~from:[ Sb.from "u_labels" ]
          [ Sb.proj (Sb.col "kind"); Sb.proj (Sb.col "label"); Sb.proj (Sb.col "col") ];
      ]
  in
  let r = query_built db q in
  List.map
    (fun a -> (Value.to_string a.(0), Value.to_string a.(1), Value.to_string a.(2)))
    r.Relstore.Executor.rows

let col_of db ~kind label =
  List.find_map
    (fun (k, l, c) -> if k = kind && l = label then Some c else None)
    (labels db)

let id_col ~kind col = Printf.sprintf "%s_%s_t" kind col
let val_col ~kind col = Printf.sprintf "%s_%s_v" kind col

(* Widen the table for any labels not yet registered: rebuild + copy. *)
let ensure_labels db new_labels =
  let existing = labels db in
  let missing =
    List.filter
      (fun (k, l) -> not (List.exists (fun (k', l', _) -> k = k' && l = l') existing))
      new_labels
  in
  if missing <> [] then begin
    let taken = ref (List.map (fun (_, _, c) -> c) existing) in
    let fresh label =
      let base = sanitize label in
      let rec unique candidate n =
        if List.mem candidate !taken then unique (Printf.sprintf "%s_%d" base n) (n + 1)
        else candidate
      in
      let c = unique base 1 in
      taken := c :: !taken;
      c
    in
    let added = List.map (fun (k, l) -> (k, l, fresh l)) missing in
    List.iter
      (fun (k, l, c) ->
        Db.insert_row_array db "u_labels" [| Value.Text k; Value.Text l; Value.Text c |])
      added;
    (* rebuild univ with the wider schema, copying old rows *)
    let all = existing @ added in
    let old_cols =
      [ "doc"; "source"; "ordinal" ]
      @ List.concat_map (fun (k, _, c) -> [ id_col ~kind:k c; val_col ~kind:k c ]) existing
    in
    let old_rows =
      let q =
        Sb.query
          [
            Sb.select ~from:[ Sb.from "univ" ] (List.map (fun c -> Sb.proj (Sb.col c)) old_cols);
          ]
      in
      (query_built db q).Relstore.Executor.rows
    in
    ignore (Db.exec db "DROP TABLE univ");
    let col_defs =
      [ "doc INTEGER NOT NULL"; "source INTEGER NOT NULL"; "ordinal INTEGER NOT NULL" ]
      @ List.concat_map
          (fun (k, _, c) ->
            [ id_col ~kind:k c ^ " INTEGER"; val_col ~kind:k c ^ " TEXT" ])
          all
    in
    ignore (Db.exec db (Printf.sprintf "CREATE TABLE univ (%s)" (String.concat ", " col_defs)));
    let pad = 2 * List.length added in
    List.iter
      (fun row ->
        Db.insert_row_array db "univ" (Array.append row (Array.make pad Value.Null)))
      old_rows;
    create_indexes db
  end

(* Width of the current univ row and position of each column. *)
let univ_columns db =
  [ "doc"; "source"; "ordinal" ]
  @ List.concat_map (fun (k, _, c) -> [ id_col ~kind:k c; val_col ~kind:k c ]) (labels db)

(* Text-only leaf content of an element, or None when it has element
   children. Raises on mixed content. *)
let leaf_text ix n =
  let kids = Index.children ix n in
  let texts = List.filter (fun c -> Index.kind ix c = Index.Text) kids in
  let elems = List.filter (fun c -> Index.kind ix c = Index.Element) kids in
  if List.exists (fun c -> match Index.kind ix c with Index.Comment | Index.Pi -> true | _ -> false) kids
  then err "universal mapping does not support comments or processing instructions";
  match (texts, elems) with
  | [], [] -> Some ""
  | _, [] -> Some (String.concat "" (List.map (Index.value ix) texts))
  | [], _ -> None
  | _, _ -> err "universal mapping does not support mixed content"

(* [ensure_labels] (registry + possible univ rebuild, all DDL and copies)
   runs on [db] before the first row is emitted, so a bulk session never
   holds an append range on a table that gets dropped under it. *)
let shred_into emit db ~doc ix =
  (* collect labels *)
  let labs = ref [] in
  for n = 1 to Index.count ix - 1 do
    match Index.kind ix n with
    | Index.Element ->
      let l = ("e", Index.name ix n) in
      if not (List.mem l !labs) then labs := l :: !labs
    | Index.Attribute ->
      let l = ("a", Index.name ix n) in
      if not (List.mem l !labs) then labs := l :: !labs
    | _ -> ()
  done;
  ensure_labels db (List.rev !labs);
  let all = labels db in
  let cols = univ_columns db in
  let width = List.length cols in
  let pos =
    let tbl = Hashtbl.create 32 in
    List.iteri (fun i c -> Hashtbl.add tbl c i) cols;
    fun c -> Hashtbl.find tbl c
  in
  let col_for kind label =
    match List.find_opt (fun (k, l, _) -> k = kind && l = label) all with
    | Some (_, _, c) -> c
    | None -> err "label %s not registered" label
  in
  let insert_edge ~source ~ordinal ~kind ~label ~target ~value =
    let row = Array.make width Value.Null in
    row.(0) <- Value.Int doc;
    row.(1) <- Value.Int source;
    row.(2) <- Value.Int ordinal;
    let c = col_for kind label in
    row.(pos (id_col ~kind c)) <- Value.Int target;
    (match value with Some v -> row.(pos (val_col ~kind c)) <- Value.Text v | None -> ());
    emit "univ" row
  in
  for n = 1 to Index.count ix - 1 do
    match Index.kind ix n with
    | Index.Element ->
      insert_edge ~source:(Index.parent ix n) ~ordinal:(Index.ordinal ix n) ~kind:"e"
        ~label:(Index.name ix n) ~target:n ~value:(leaf_text ix n)
    | Index.Attribute ->
      insert_edge ~source:(Index.parent ix n) ~ordinal:(Index.ordinal ix n) ~kind:"a"
        ~label:(Index.name ix n) ~target:n ~value:(Some (Index.value ix n))
    | Index.Text | Index.Comment | Index.Pi | Index.Document -> ()
  done

let shred db ~doc ix = shred_into (Db.insert_row_array db) db ~doc ix
let shred_bulk session ~doc ix =
  shred_into (Db.session_insert session) (Db.session_db session) ~doc ix

(* ------------------------------------------------------------------ *)
(* Reconstruction *)

(* A decoded edge: which label the row carries, plus ids. *)
type edge = {
  g_source : int;
  g_ordinal : int;
  g_kind : string;
  g_label : string;
  g_target : int;
  g_value : string option;
}

let decode_rows db rows =
  let all = labels db in
  let cols = univ_columns db in
  List.filter_map
    (fun (row : Value.t array) ->
      let get name =
        let rec go i = function
          | [] -> err "missing column %s" name
          | c :: _ when c = name -> row.(i)
          | _ :: rest -> go (i + 1) rest
        in
        go 0 cols
      in
      let source = match get "source" with Value.Int i -> i | _ -> err "bad source" in
      let ordinal = match get "ordinal" with Value.Int i -> i | _ -> err "bad ordinal" in
      List.find_map
        (fun (k, l, c) ->
          match get (id_col ~kind:k c) with
          | Value.Int t ->
            Some
              {
                g_source = source;
                g_ordinal = ordinal;
                g_kind = k;
                g_label = l;
                g_target = t;
                g_value =
                  (match get (val_col ~kind:k c) with
                  | Value.Null -> None
                  | v -> Some (Value.to_string v));
              }
          | _ -> None)
        all)
    rows

(* Fetch the full column group of matching rows and decode. [cond] builds
   the extra WHERE conjuncts against a fresh binder; [sqls], when given,
   records the executed statement (stepwise reporting). *)
let fetch_edges db ?sqls ~doc cond =
  let b = Sb.binder () in
  let where = Sb.eq (Sb.col "doc") (Sb.pint b doc) :: cond b in
  let projs = List.map (fun c -> Sb.proj (Sb.col c)) (univ_columns db) in
  let q = Sb.query [ Sb.select ~from:[ Sb.from "univ" ] ~where projs ] in
  let r =
    match sqls with
    | Some sqls -> run_built db ~sqls ~params:(Sb.params b) q
    | None -> query_built db ~params:(Sb.params b) q
  in
  decode_rows db r.Relstore.Executor.rows

let build_tree by_source (e : edge) =
  let rec build (e : edge) : Dom.node =
    let children = Option.value ~default:[] (Hashtbl.find_opt by_source e.g_target) in
    let attrs, elems = List.partition (fun c -> c.g_kind = "a") children in
    let sorted l = List.sort (fun a b -> compare a.g_ordinal b.g_ordinal) l in
    let content =
      match (elems, e.g_value) with
      | [], Some "" -> []
      | [], Some v -> [ Dom.Text v ]
      | [], None -> []
      | es, _ -> List.map build (sorted es)
    in
    Dom.Element
      {
        Dom.tag = e.g_label;
        attrs =
          List.map (fun a -> Dom.attr a.g_label (Option.value ~default:"" a.g_value)) (sorted attrs);
        children = content;
      }
  in
  build e

let group_by_source edges =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun e ->
      Hashtbl.replace tbl e.g_source
        (e :: Option.value ~default:[] (Hashtbl.find_opt tbl e.g_source)))
    edges;
  tbl

let reconstruct db ~doc =
  let edges = fetch_edges db ~doc (fun _ -> []) in
  let by_source = group_by_source edges in
  match Option.value ~default:[] (Hashtbl.find_opt by_source 0) with
  | [ root ] -> (
    match build_tree by_source root with
    | Dom.Element e -> Dom.document e
    | _ -> err "root is not an element")
  | [] -> err "document %d is not stored" doc
  | _ -> err "document %d has multiple roots" doc

(* Subtree by node id: repeated source fetches. *)
let rec node_of_target db ~doc (e : edge) : Dom.node =
  let children =
    fetch_edges db ~doc (fun b -> [ Sb.eq (Sb.col "source") (Sb.pint b e.g_target) ])
  in
  let attrs, elems = List.partition (fun c -> c.g_kind = "a") children in
  let sorted l = List.sort (fun a b -> compare a.g_ordinal b.g_ordinal) l in
  let content =
    match (elems, e.g_value) with
    | [], Some "" | [], None -> []
    | [], Some v -> [ Dom.Text v ]
    | es, _ -> List.map (node_of_target db ~doc) (sorted es)
  in
  Dom.Element
    {
      Dom.tag = e.g_label;
      attrs =
        List.map (fun a -> Dom.attr a.g_label (Option.value ~default:"" a.g_value)) (sorted attrs);
      children = content;
    }

(* Find the edge row pointing at a given node id. *)
let edge_of_target db ~doc ~kind ~label target =
  match col_of db ~kind label with
  | None -> err "unknown label %s" label
  | Some c -> (
    let edges =
      fetch_edges db ~doc (fun b -> [ Sb.eq (Sb.col (id_col ~kind c)) (Sb.pint b target) ])
    in
    match edges with
    | [ e ] -> e
    | [] -> err "no edge with target %d" target
    | _ -> err "multiple edges with target %d" target)

(* ------------------------------------------------------------------ *)
(* Query translation *)

exception Empty_result

(* Named child chains in one statement; target values selected directly.
   Returns ((query, params), shape). *)
let chain_query db ~doc (simple : Pathquery.t) =
  let module P = Pathquery in
  let ecol tag = match col_of db ~kind:"e" tag with Some c -> c | None -> raise Empty_result in
  let attcol at = match col_of db ~kind:"a" at with Some c -> c | None -> raise Empty_result in
  let b = Sb.binder () in
  let pdoc = Sb.pint b doc in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "u%d" !counter
  in
  let froms = ref [] and wheres = ref [] in
  let add_from a = froms := a :: !froms in
  let add_where w = wheres := w :: !wheres in
  (* current element id expression and its tag column *)
  let prev = ref None in
  List.iter
    (fun (s : P.step) ->
      assert (not s.P.desc);
      let tag = match s.P.test with P.Tag n -> n | P.Any_tag -> err "wildcard in chain" in
      let c = ecol tag in
      let u = fresh () in
      add_from u;
      add_where (Sb.eq (acol u "doc") pdoc);
      add_where (Sb.is_not_null (acol u (id_col ~kind:"e" c)));
      (match !prev with
      | None -> add_where (Sb.eq (acol u "source") (Sb.int 0))
      | Some (p, pc) -> add_where (Sb.eq (acol u "source") (acol p (id_col ~kind:"e" pc))));
      let cur_id = acol u (id_col ~kind:"e" c) in
      (* auxiliary row joined on source = current element id *)
      let aux_on_cur () =
        let a = fresh () in
        add_from a;
        add_where (Sb.eq (acol a "doc") pdoc);
        add_where (Sb.eq (acol a "source") cur_id);
        a
      in
      List.iter
        (fun pr ->
          match pr with
          | P.Has_child ch ->
            let cc = ecol ch in
            let a = aux_on_cur () in
            add_where (Sb.is_not_null (acol a (id_col ~kind:"e" cc)))
          | P.Has_attr at ->
            let ac = attcol at in
            let a = aux_on_cur () in
            add_where (Sb.is_not_null (acol a (id_col ~kind:"a" ac)))
          | P.Attr_value (at, op, v) ->
            let ac = attcol at in
            let a = aux_on_cur () in
            add_where (Sb.cmp (P.cmp_binop op) (acol a (val_col ~kind:"a" ac)) (Sb.ptext b v))
          | P.Attr_number (at, op, v) ->
            let ac = attcol at in
            let a = aux_on_cur () in
            add_where
              (Sb.cmp (P.cmp_binop op)
                 (Sb.to_number (acol a (val_col ~kind:"a" ac)))
                 (Sb.pfloat b v))
          | P.Child_value (ch, op, v) ->
            let cc = ecol ch in
            let a = aux_on_cur () in
            add_where (Sb.cmp (P.cmp_binop op) (acol a (val_col ~kind:"e" cc)) (Sb.ptext b v))
          | P.Child_number (ch, op, v) ->
            let cc = ecol ch in
            let a = aux_on_cur () in
            add_where
              (Sb.cmp (P.cmp_binop op)
                 (Sb.to_number (acol a (val_col ~kind:"e" cc)))
                 (Sb.pfloat b v)))
        s.P.preds;
      prev := Some (u, c))
    simple.P.steps;
  let last, lc = match !prev with Some p -> p | None -> err "empty path" in
  let last_id = acol last (id_col ~kind:"e" lc) in
  let projs, order, shape =
    match simple.P.tgt with
    | P.Elements ->
      ( [ Sb.proj last_id ],
        last_id,
        `Element
          (List.rev simple.P.steps |> List.hd |> fun s ->
           match s.P.test with P.Tag n -> n | P.Any_tag -> assert false) )
    | P.Attr_of a ->
      let ac = attcol a in
      let at = fresh () in
      add_from at;
      add_where (Sb.eq (acol at "doc") pdoc);
      add_where (Sb.eq (acol at "source") last_id);
      add_where (Sb.is_not_null (acol at (id_col ~kind:"a" ac)));
      ( [ Sb.proj (acol at (id_col ~kind:"a" ac)); Sb.proj (acol at (val_col ~kind:"a" ac)) ],
        acol at (id_col ~kind:"a" ac),
        `Value )
    | P.Text_of ->
      add_where (Sb.is_not_null (acol last (val_col ~kind:"e" lc)));
      ([ Sb.proj last_id; Sb.proj (acol last (val_col ~kind:"e" lc)) ], last_id, `Value)
  in
  let q =
    Sb.query
      [
        Sb.select ~distinct:true
          ~from:(List.rev_map (fun a -> Sb.from ~alias:a "univ") !froms)
          ~where:(List.rev !wheres)
          ~order_by:[ Sb.asc order ]
          projs;
      ]
  in
  ((q, Sb.params b), shape)

(* Stepwise evaluation for '//' and wildcards: fetch the full column group
   of each frontier batch and decode in OCaml — the universal table makes
   every navigation touch the whole wide row. *)
let stepwise db ~doc (simple : Pathquery.t) =
  let module P = Pathquery in
  let sqls = ref [] in
  let fetch cond = fetch_edges db ~sqls ~doc cond in
  let children_of ids =
    Edge.batched ids (fun chunk ->
        fetch (fun b -> [ Sb.in_list (Sb.col "source") (List.map (Sb.pint b) chunk) ]))
  in
  let check_pred (e : edge) (p : P.pred) =
    let kids = fetch (fun b -> [ Sb.eq (Sb.col "source") (Sb.pint b e.g_target) ]) in
    match p with
    | P.Has_child c -> List.exists (fun k -> k.g_kind = "e" && k.g_label = c) kids
    | P.Has_attr a -> List.exists (fun k -> k.g_kind = "a" && k.g_label = a) kids
    | P.Attr_value (a, op, v) ->
      List.exists
        (fun k ->
          k.g_kind = "a" && k.g_label = a
          &&
          let kv = Option.value ~default:"" k.g_value in
          let c = compare kv v in
          match op with
          | P.Ceq -> c = 0
          | P.Cneq -> c <> 0
          | P.Clt -> c < 0
          | P.Cle -> c <= 0
          | P.Cgt -> c > 0
          | P.Cge -> c >= 0)
        kids
    | P.Attr_number (a, op, v) ->
      List.exists
        (fun k ->
          k.g_kind = "a" && k.g_label = a
          &&
          match float_of_string_opt (Option.value ~default:"" k.g_value) with
          | None -> false
          | Some f -> (
            match op with
            | P.Ceq -> f = v
            | P.Cneq -> f <> v
            | P.Clt -> f < v
            | P.Cle -> f <= v
            | P.Cgt -> f > v
            | P.Cge -> f >= v))
        kids
    | P.Child_value (c, op, v) ->
      List.exists
        (fun k ->
          k.g_kind = "e" && k.g_label = c
          &&
          let kv = Option.value ~default:"" k.g_value in
          let cr = compare kv v in
          match op with
          | P.Ceq -> cr = 0
          | P.Cneq -> cr <> 0
          | P.Clt -> cr < 0
          | P.Cle -> cr <= 0
          | P.Cgt -> cr > 0
          | P.Cge -> cr >= 0)
        kids
    | P.Child_number (c, op, v) ->
      List.exists
        (fun k ->
          k.g_kind = "e" && k.g_label = c
          &&
          match float_of_string_opt (Option.value ~default:"" k.g_value) with
          | None -> false
          | Some f -> (
            match op with
            | P.Ceq -> f = v
            | P.Cneq -> f <> v
            | P.Clt -> f < v
            | P.Cle -> f <= v
            | P.Cgt -> f > v
            | P.Cge -> f >= v))
        kids
  in
  let matches_test (e : edge) = function
    | P.Tag n -> e.g_kind = "e" && e.g_label = n
    | P.Any_tag -> e.g_kind = "e"
  in
  let step_frontier frontier (s : P.step) =
    let matched =
      if s.P.desc then begin
        let acc = ref [] in
        let current = ref frontier in
        while !current <> [] do
          let kids =
            children_of (List.map (fun e -> e.g_target) !current)
            |> List.filter (fun e -> e.g_kind = "e")
          in
          acc := List.filter (fun e -> matches_test e s.P.test) kids @ !acc;
          current := kids
        done;
        List.sort_uniq (fun a b -> compare a.g_target b.g_target) !acc
      end
      else
        children_of (List.map (fun e -> e.g_target) frontier)
        |> List.filter (fun e -> matches_test e s.P.test)
        |> List.sort_uniq (fun a b -> compare a.g_target b.g_target)
    in
    List.filter (fun e -> List.for_all (check_pred e) s.P.preds) matched
  in
  (* pseudo-edge for the document node *)
  let start = { g_source = -1; g_ordinal = 0; g_kind = "e"; g_label = ""; g_target = 0; g_value = None } in
  let final = List.fold_left step_frontier [ start ] simple.P.steps in
  let result =
    match simple.P.tgt with
    | P.Elements -> `Edges final
    | P.Attr_of a ->
      `Values
        (List.concat_map
           (fun e ->
             fetch (fun b -> [ Sb.eq (Sb.col "source") (Sb.pint b e.g_target) ])
             |> List.filter (fun k -> k.g_kind = "a" && k.g_label = a)
             |> List.map (fun k -> (k.g_target, Option.value ~default:"" k.g_value)))
           final
        |> List.sort_uniq compare)
    | P.Text_of ->
      `Values
        (List.filter_map
           (fun e -> match e.g_value with Some v when v <> "" -> Some (e.g_target, v) | _ -> None)
           final
        |> List.sort_uniq compare)
  in
  (result, List.rev !sqls)

let is_named_chain (simple : Pathquery.t) =
  List.for_all
    (fun (s : Pathquery.step) ->
      (not s.Pathquery.desc) && match s.Pathquery.test with Pathquery.Tag _ -> true | _ -> false)
    simple.Pathquery.steps

let result_of_edges db ~doc edges sqls joins =
  let edges = List.sort (fun a b -> compare a.g_target b.g_target) edges in
  {
    values = List.map (fun e -> Dom.string_value (node_of_target db ~doc e)) edges;
    nodes = lazy (List.map (node_of_target db ~doc) edges);
    sql = sqls;
    joins;
    fallback = false;
  }

let result_of_values values sqls joins =
  let values = List.sort compare values in
  {
    values = List.map snd values;
    nodes = lazy (List.map (fun (_, v) -> Dom.Text v) values);
    sql = sqls;
    joins;
    fallback = false;
  }

let query db ~doc (path : Xpathkit.Ast.path) : query_result =
  match Pathquery.analyze path with
  | None -> fallback_query ~reconstruct db ~doc path
  | Some simple ->
    if is_named_chain simple then begin
      match traced_translate ~scheme:id (fun () -> chain_query db ~doc simple) with
      | (q, params), shape -> (
        let sqls = ref [] and joins = ref 0 in
        let rows = (run_built db ~joins ~sqls ~params q).Relstore.Executor.rows in
        let sql = List.rev !sqls and joins = !joins in
        match shape with
        | `Element tag ->
          let ids = List.map (fun r -> match r.(0) with Value.Int i -> i | _ -> err "bad id") rows in
          result_of_edges db ~doc
            (List.map (fun t -> edge_of_target db ~doc ~kind:"e" ~label:tag t) ids)
            sql joins
        | `Value ->
          result_of_values
            (List.map
               (fun r ->
                 ( (match r.(0) with Value.Int i -> i | _ -> err "bad id"),
                   match r.(1) with Value.Null -> "" | v -> Value.to_string v ))
               rows)
            sql joins)
      | exception Empty_result ->
        { values = []; nodes = lazy []; sql = []; joins = 0; fallback = false }
    end
    else begin
      let result, sqls = stepwise db ~doc simple in
      match result with
      | `Edges edges -> result_of_edges db ~doc edges sqls 0
      | `Values vs -> result_of_values vs sqls 0
    end

let mapping : Mapping.mapping =
  (module struct
    let id = id
    let description = description
    let create_schema = create_schema
    let create_indexes = create_indexes
    let shred = shred
    let shred_bulk = shred_bulk
    let reconstruct = reconstruct
    let query = query
  end)
