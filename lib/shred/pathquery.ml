(* Shared path analysis for the SQL translators.

   Every mapping scheme translates the same "simple path" intermediate form:
   downward navigation (child / descendant steps) with name or wildcard
   tests, simple value predicates, and an element, attribute, or text
   target. [analyze] lowers an XPath AST into this form; paths outside the
   form (positional predicates, upward axes, arithmetic in predicates, ...)
   return [None] and the caller falls back to reconstructing the document
   and evaluating natively — the honest cost of an untranslatable query. *)

module Ast = Xpathkit.Ast

type cmp = Ceq | Cneq | Clt | Cle | Cgt | Cge

let cmp_to_sql = function
  | Ceq -> "="
  | Cneq -> "<>"
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="

(* The SQL AST operator for a comparison; translators build conditions with
   this instead of splicing operator text. *)
let cmp_binop : cmp -> Relstore.Sql_ast.binop = function
  | Ceq -> Relstore.Sql_ast.Eq
  | Cneq -> Relstore.Sql_ast.Neq
  | Clt -> Relstore.Sql_ast.Lt
  | Cle -> Relstore.Sql_ast.Le
  | Cgt -> Relstore.Sql_ast.Gt
  | Cge -> Relstore.Sql_ast.Ge

(* Predicates against the step's context element. [target] is a direct
   child element name or an attribute name. *)
type pred =
  | Child_value of string * cmp * string  (* [b = 'v'] : child b's text *)
  | Child_number of string * cmp * float  (* [b > 3] *)
  | Attr_value of string * cmp * string  (* [@a = 'v'] *)
  | Attr_number of string * cmp * float
  | Has_child of string  (* [b] *)
  | Has_attr of string  (* [@a] *)

type test = Tag of string | Any_tag

type step = {
  desc : bool;  (* reached via //: any depth below the previous node *)
  test : test;
  preds : pred list;
}

(* What the path finally selects. *)
type target =
  | Elements  (* the last step's elements *)
  | Attr_of of string  (* .../@name: attribute of the previous element *)
  | Text_of  (* .../text() *)

type t = { steps : step list; tgt : target }

let test_to_string = function Tag s -> s | Any_tag -> "*"

let pred_to_string = function
  | Child_value (c, op, v) -> Printf.sprintf "[%s %s '%s']" c (cmp_to_sql op) v
  | Child_number (c, op, v) -> Printf.sprintf "[%s %s %g]" c (cmp_to_sql op) v
  | Attr_value (a, op, v) -> Printf.sprintf "[@%s %s '%s']" a (cmp_to_sql op) v
  | Attr_number (a, op, v) -> Printf.sprintf "[@%s %s %g]" a (cmp_to_sql op) v
  | Has_child c -> Printf.sprintf "[%s]" c
  | Has_attr a -> Printf.sprintf "[@%s]" a

let to_string t =
  String.concat ""
    (List.map
       (fun s ->
         (if s.desc then "//" else "/")
         ^ test_to_string s.test
         ^ String.concat "" (List.map pred_to_string s.preds))
       t.steps)
  ^ (match t.tgt with Elements -> "" | Attr_of a -> "/@" ^ a | Text_of -> "/text()")

(* ------------------------------------------------------------------ *)
(* Lowering *)

let cmp_of_binary = function
  | Ast.Eq -> Some Ceq
  | Ast.Neq -> Some Cneq
  | Ast.Lt -> Some Clt
  | Ast.Le -> Some Cle
  | Ast.Gt -> Some Cgt
  | Ast.Ge -> Some Cge
  | _ -> None

(* A one-step relative child path with a name test and no predicates. *)
let as_child_name (e : Ast.expr) =
  match e with
  | Ast.Path { absolute = false; steps = [ { axis = Ast.Child; test = Ast.Name n; predicates = [] } ] } ->
    Some (`Child n)
  | Ast.Path
      { absolute = false; steps = [ { axis = Ast.Attribute; test = Ast.Name n; predicates = [] } ] } ->
    Some (`Attr n)
  | _ -> None

let lower_pred (e : Ast.expr) : pred option =
  match e with
  | Ast.Path _ -> (
    match as_child_name e with
    | Some (`Child n) -> Some (Has_child n)
    | Some (`Attr n) -> Some (Has_attr n)
    | None -> None)
  | Ast.Binary (op, lhs, rhs) -> (
    match cmp_of_binary op with
    | None -> None
    (* XPath converts <,<=,>,>= operands to numbers; only =/!= compare
       strings, so ordered comparisons against string literals are left to
       the fallback evaluator *)
    | Some ((Clt | Cle | Cgt | Cge) as c)
      when (match rhs with Ast.Literal _ -> true | _ -> false)
           || (match lhs with Ast.Literal _ -> true | _ -> false) ->
      ignore c;
      None
    | Some c -> (
      match (as_child_name lhs, rhs) with
      | Some (`Child n), Ast.Literal v -> Some (Child_value (n, c, v))
      | Some (`Child n), Ast.Number v -> Some (Child_number (n, c, v))
      | Some (`Attr n), Ast.Literal v -> Some (Attr_value (n, c, v))
      | Some (`Attr n), Ast.Number v -> Some (Attr_number (n, c, v))
      | _ -> (
        (* literal on the left: flip *)
        match (as_child_name rhs, lhs) with
        | Some (`Child n), Ast.Literal v -> Some (Child_value (n, c, v))
        | Some (`Child n), Ast.Number v ->
          let flip = function Clt -> Cgt | Cle -> Cge | Cgt -> Clt | Cge -> Cle | c -> c in
          Some (Child_number (n, flip c, v))
        | Some (`Attr n), Ast.Literal v -> Some (Attr_value (n, c, v))
        | Some (`Attr n), Ast.Number v ->
          let flip = function Clt -> Cgt | Cle -> Cge | Cgt -> Clt | Cge -> Cle | c -> c in
          Some (Attr_number (n, flip c, v))
        | _ -> None)))
  | _ -> None

let lower_preds preds =
  let lowered = List.map lower_pred preds in
  if List.exists Option.is_none lowered then None else Some (List.filter_map Fun.id lowered)

(* [analyze path] requires an absolute path. *)
let analyze (p : Ast.path) : t option =
  if not p.Ast.absolute then None
  else begin
    let rec go pending_desc acc (steps : Ast.step list) =
      match steps with
      | [] -> Some (List.rev acc, Elements)
      | { axis = Ast.Descendant_or_self; test = Ast.Node_test; predicates = [] } :: rest ->
        (* the '//' marker step *)
        go true acc rest
      | [ { axis = Ast.Attribute; test = Ast.Name n; predicates = [] } ] when not pending_desc ->
        Some (List.rev acc, Attr_of n)
      | [ { axis = Ast.Child; test = Ast.Text_test; predicates = [] } ] when not pending_desc ->
        Some (List.rev acc, Text_of)
      | { axis = Ast.Child; test; predicates } :: rest -> (
        let tst =
          match test with
          | Ast.Name n -> Some (Tag n)
          | Ast.Wildcard -> Some Any_tag
          | _ -> None
        in
        match (tst, lower_preds predicates) with
        | Some test, Some preds -> go false ({ desc = pending_desc; test; preds } :: acc) rest
        | _ -> None)
      | { axis = Ast.Descendant; test; predicates } :: rest -> (
        (* descendant::t behaves as //t *)
        let tst =
          match test with
          | Ast.Name n -> Some (Tag n)
          | Ast.Wildcard -> Some Any_tag
          | _ -> None
        in
        match (tst, lower_preds predicates) with
        | Some test, Some preds -> go false ({ desc = true; test; preds } :: acc) rest
        | _ -> None)
      | _ -> None
    in
    match go false [] p.Ast.steps with
    | Some (steps, tgt) when steps <> [] -> Some { steps; tgt }
    | Some _ | None -> None
  end

(* Join-count estimate of a simple path: one join per step plus one per
   value predicate (used for experiment T4 reporting by translators that
   produce a single statement). *)
let pred_join_cost = function
  | Child_value _ | Child_number _ -> 2  (* child element + its text *)
  | Attr_value _ | Attr_number _ | Has_child _ | Has_attr _ -> 1

let base_join_count t =
  let steps = List.length t.steps in
  let preds =
    List.fold_left (fun acc s -> List.fold_left (fun a p -> a + pred_join_cost p) acc s.preds) 0 t.steps
  in
  steps - 1 + preds
  + (match t.tgt with Elements -> 0 | Attr_of _ | Text_of -> 1)
