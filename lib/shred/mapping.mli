(** Common interface implemented by every shredding scheme. *)

module Dom = Xmlkit.Dom
module Index = Xmlkit.Index
module Db = Relstore.Database

exception Shred_error of string

(** Result of a translated path query. [values] are XPath string-values in
    document order — the unit of comparison against the native evaluator.
    [fallback] marks paths outside the translatable subset, answered by
    reconstructing the document and evaluating natively. *)
type query_result = {
  values : string list;
  nodes : Dom.node list Lazy.t;  (** reconstructed result subtrees *)
  sql : string list;  (** every SQL statement executed *)
  joins : int;
  fallback : bool;
}

module type MAPPING = sig
  val id : string
  val description : string

  val create_schema : Db.t -> unit
  (** Create the mapping's base tables (idempotent). *)

  val create_indexes : Db.t -> unit
  (** Recommended secondary indexes; separate so benchmark F3 can measure
      indexed vs unindexed. *)

  val shred : Db.t -> doc:int -> Index.t -> unit

  val shred_bulk : Db.session -> doc:int -> Index.t -> unit
  (** Same rows as {!shred}, emitted through a bulk-load session (deferred
      bottom-up index builds; see {!Relstore.Database.load_session}). *)

  val reconstruct : Db.t -> doc:int -> Dom.t
  val query : Db.t -> doc:int -> Xpathkit.Ast.path -> query_result
end

type mapping = (module MAPPING)

(** {1 Helpers shared by the scheme implementations} *)

val err : ('a, unit, string, 'b) format4 -> 'a
(** @raise Shred_error *)

val fallback_query :
  reconstruct:(Db.t -> doc:int -> Dom.t) -> Db.t -> doc:int -> Xpathkit.Ast.path -> query_result
(** Reconstruct, evaluate natively, flag the result. *)

val traced_translate : scheme:string -> (unit -> 'a) -> 'a
(** Run a scheme's path→SQL translation phase under a ["translate"] trace
    span carrying a [scheme] attribute. Exceptions propagate. *)

val run_built :
  Db.t ->
  ?joins:int ref ->
  sqls:string list ref ->
  ?params:Relstore.Value.t array ->
  Relstore.Sql_ast.query ->
  Relstore.Executor.result
(** Execute a builder-constructed query through the prepared-plan layer.
    Records the rendered statement text into [sqls] and, when [joins] is
    given, adds the plan's join count. The text doubles as the plan-cache
    key, so queries whose variable parts are bound parameters plan once. *)

val query_built :
  Db.t -> ?params:Relstore.Value.t array -> Relstore.Sql_ast.query -> Relstore.Executor.result
(** Same, for internal fetches that do not report statement text. *)

(** One instrumented statement execution, as observed by {!run_built}
    under an active capture sink. *)
type capture = {
  cap_sql : string;  (** rendered statement text (plan-cache key) *)
  cap_params : Relstore.Value.t array;  (** bound parameters, [[||]] if none *)
  cap_plan : Relstore.Plan.t;
  cap_annot : Relstore.Plan.annotated;  (** EXPLAIN ANALYZE operator tree *)
}

val collect_captures : (unit -> 'a) -> 'a * capture list
(** Run [f] with an ambient capture sink installed: every query the schemes
    execute through {!run_built} during [f] runs instrumented, and the
    captures are returned in execution order alongside [f]'s result. Nests
    (the outer sink is restored on exit); not thread-safe. *)

val collect_analysis : (unit -> 'a) -> 'a * (string * Relstore.Plan.annotated) list
(** {!collect_captures} restricted to [(statement text, operator tree)]
    pairs — the EXPLAIN ANALYZE view. *)

val acol : string -> string -> Relstore.Sql_ast.expr
(** [acol alias column] — alias-qualified column reference. *)

val int_column : Relstore.Executor.result -> int list
val string_column : Relstore.Executor.result -> string list

val kind_code : Index.kind -> string
(** 'e' element, 'a' attribute, 't' text, 'c' comment, 'p' PI, 'd'
    document. *)

val sanitize : string -> string
(** Tag name to SQL identifier fragment; callers uniquify collisions. *)
