(* The Interval mapping (Grust 2002/2004 "accelerating XPath"): one row per
   node carrying its pre-order rank, subtree size, level, and parent.

     accel(doc, pre, size, level, kind, name, value, parent, ordinal)

   The descendant axis is a range predicate —
   [d.pre > a.pre AND d.pre <= a.pre + a.size] — so '//' costs a single
   self-join instead of Edge's per-level iteration. Every translated path is
   one SQL statement. The planner recognizes this containment pair and runs
   it as a [Plan.Staircase_join] — one ordered merge over the (pre, size)
   intervals instead of a nested-loop filter — so '//' steps stay
   sort-plus-output-linear even when both sides are large. *)

module Dom = Xmlkit.Dom
module Index = Xmlkit.Index
module Db = Relstore.Database
module Value = Relstore.Value
module Sb = Relstore.Sql_build
open Mapping

let id = "interval"
let description = "pre/size/level interval encoding (Grust)"

let create_schema db =
  ignore
    (Db.exec db
       "CREATE TABLE IF NOT EXISTS accel (doc INTEGER NOT NULL, pre INTEGER NOT NULL, size \
        INTEGER NOT NULL, level INTEGER NOT NULL, kind TEXT NOT NULL, name TEXT, value TEXT, \
        parent INTEGER NOT NULL, ordinal INTEGER NOT NULL)")

let create_indexes db =
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS accel_pre ON accel (pre)");
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS accel_name ON accel (name)");
  ignore (Db.exec db "CREATE INDEX IF NOT EXISTS accel_parent ON accel (parent)")

let shred_into emit ~doc ix =
  for n = 1 to Index.count ix - 1 do
    let kind = kind_code (Index.kind ix n) in
    let name =
      match Index.kind ix n with
      | Index.Element | Index.Attribute | Index.Pi -> Value.Text (Index.name ix n)
      | _ -> Value.Null
    in
    let value =
      match Index.kind ix n with
      | Index.Element | Index.Document -> Value.Null
      | _ -> Value.Text (Index.value ix n)
    in
    emit "accel"
      [|
        Value.Int doc;
        Value.Int n;
        Value.Int (Index.size ix n);
        Value.Int (Index.level ix n);
        Value.Text kind;
        name;
        value;
        Value.Int (Index.parent ix n);
        Value.Int (Index.ordinal ix n);
      |]
  done

let shred db ~doc ix = shred_into (Db.insert_row_array db) ~doc ix
let shred_bulk session ~doc ix = shred_into (Db.session_insert session) ~doc ix

(* ------------------------------------------------------------------ *)
(* Reconstruction *)

type row = {
  r_pre : int;
  r_kind : string;
  r_name : string;
  r_value : string;
  r_parent : int;
  r_ordinal : int;
}

let row_of_values a =
  {
    r_pre = (match a.(0) with Value.Int i -> i | _ -> err "bad pre");
    r_kind = Value.to_string a.(1);
    r_name = (match a.(2) with Value.Null -> "" | v -> Value.to_string v);
    r_value = (match a.(3) with Value.Null -> "" | v -> Value.to_string v);
    r_parent = (match a.(4) with Value.Int i -> i | _ -> err "bad parent");
    r_ordinal = (match a.(5) with Value.Int i -> i | _ -> err "bad ordinal");
  }

let build_forest rows root_pre =
  let by_parent = Hashtbl.create 256 in
  let by_pre = Hashtbl.create 256 in
  List.iter
    (fun r ->
      Hashtbl.replace by_pre r.r_pre r;
      Hashtbl.replace by_parent r.r_parent
        (r :: Option.value ~default:[] (Hashtbl.find_opt by_parent r.r_parent)))
    rows;
  let rec build (r : row) : Dom.node =
    match r.r_kind with
    | "e" ->
      let children = Option.value ~default:[] (Hashtbl.find_opt by_parent r.r_pre) in
      let attrs, content = List.partition (fun c -> c.r_kind = "a") children in
      let sorted l = List.sort (fun a b -> compare a.r_ordinal b.r_ordinal) l in
      Dom.Element
        {
          Dom.tag = r.r_name;
          attrs = List.map (fun a -> Dom.attr a.r_name a.r_value) (sorted attrs);
          children = List.map build (sorted content);
        }
    | "t" | "a" -> Dom.Text r.r_value
    | "c" -> Dom.Comment r.r_value
    | "p" -> Dom.Pi { target = r.r_name; data = r.r_value }
    | k -> err "unknown kind %s" k
  in
  match Hashtbl.find_opt by_pre root_pre with
  | Some r -> build r
  | None -> err "node %d is not stored" root_pre

let fetch_range db ~doc ~lo ~hi =
  let b = Sb.binder () in
  let q =
    Sb.query
      [
        Sb.select ~from:[ Sb.from "accel" ]
          ~where:
            [
              Sb.eq (Sb.col "doc") (Sb.pint b doc);
              Sb.ge (Sb.col "pre") (Sb.pint b lo);
              Sb.le (Sb.col "pre") (Sb.pint b hi);
            ]
          (List.map
             (fun c -> Sb.proj (Sb.col c))
             [ "pre"; "kind"; "name"; "value"; "parent"; "ordinal" ]);
      ]
  in
  let r = query_built db ~params:(Sb.params b) q in
  List.map row_of_values r.Relstore.Executor.rows

let reconstruct db ~doc =
  let rows = fetch_range db ~doc ~lo:1 ~hi:max_int in
  match List.find_opt (fun r -> r.r_parent = 0) rows with
  | Some root -> (
    match build_forest rows root.r_pre with
    | Dom.Element e -> Dom.document e
    | _ -> err "root is not an element")
  | None -> err "document %d is not stored" doc

let node_of_pre db ~doc pre =
  let b = Sb.binder () in
  let q =
    Sb.query
      [
        Sb.select ~from:[ Sb.from "accel" ]
          ~where:[ Sb.eq (Sb.col "doc") (Sb.pint b doc); Sb.eq (Sb.col "pre") (Sb.pint b pre) ]
          [ Sb.proj (Sb.col "size") ];
      ]
  in
  let r = query_built db ~params:(Sb.params b) q in
  match int_column r with
  | [ size ] -> build_forest (fetch_range db ~doc ~lo:pre ~hi:(pre + size)) pre
  | _ -> err "node %d is not stored" pre

let string_value_of_pre db ~doc pre =
  let b = Sb.binder () in
  let q =
    Sb.query
      [
        Sb.select ~from:[ Sb.from "accel" ]
          ~where:[ Sb.eq (Sb.col "doc") (Sb.pint b doc); Sb.eq (Sb.col "pre") (Sb.pint b pre) ]
          [ Sb.proj (Sb.col "size"); Sb.proj (Sb.col "kind"); Sb.proj (Sb.col "value") ];
      ]
  in
  let r = query_built db ~params:(Sb.params b) q in
  match r.Relstore.Executor.rows with
  | [ [| size; kind; value |] ] -> (
    match Value.to_string kind with
    | "e" ->
      let size = match size with Value.Int i -> i | _ -> err "bad size" in
      let b = Sb.binder () in
      let q =
        Sb.query
          [
            Sb.select ~from:[ Sb.from "accel" ]
              ~where:
                [
                  Sb.eq (Sb.col "doc") (Sb.pint b doc);
                  Sb.gt (Sb.col "pre") (Sb.pint b pre);
                  Sb.le (Sb.col "pre") (Sb.pint b (pre + size));
                  Sb.eq (Sb.col "kind") (Sb.text "t");
                ]
              ~order_by:[ Sb.asc (Sb.col "pre") ]
              [ Sb.proj (Sb.col "value") ];
          ]
      in
      let texts = query_built db ~params:(Sb.params b) q in
      String.concat "" (string_column texts)
    | _ -> ( match value with Value.Null -> "" | v -> Value.to_string v))
  | _ -> err "node %d is not stored" pre

(* ------------------------------------------------------------------ *)
(* Query translation: always a single statement. *)

let kind_is a k = Sb.eq (acol a "kind") (Sb.text k)
let child_of a parent = Sb.eq (acol a "parent") (acol parent "pre")

let pred_sql ~b ~pdoc ~cur ~fresh (p : Pathquery.pred) =
  let module P = Pathquery in
  let on_doc a = Sb.eq (acol a "doc") pdoc in
  let name_is a n = Sb.eq (acol a "name") (Sb.ptext b n) in
  match p with
  | P.Has_child c ->
    let a = fresh () in
    ([ a ], [ on_doc a; child_of a cur; kind_is a "e"; name_is a c ])
  | P.Has_attr at ->
    let a = fresh () in
    ([ a ], [ on_doc a; child_of a cur; kind_is a "a"; name_is a at ])
  | P.Attr_value (at, op, v) ->
    let a = fresh () in
    ( [ a ],
      [
        on_doc a; child_of a cur; kind_is a "a"; name_is a at;
        Sb.cmp (P.cmp_binop op) (acol a "value") (Sb.ptext b v);
      ] )
  | P.Attr_number (at, op, v) ->
    let a = fresh () in
    ( [ a ],
      [
        on_doc a; child_of a cur; kind_is a "a"; name_is a at;
        Sb.cmp (P.cmp_binop op) (Sb.to_number (acol a "value")) (Sb.pfloat b v);
      ] )
  | P.Child_value (c, op, v) ->
    let a = fresh () and t = fresh () in
    ( [ a; t ],
      [
        on_doc a; child_of a cur; kind_is a "e"; name_is a c;
        on_doc t; child_of t a; kind_is t "t";
        Sb.cmp (P.cmp_binop op) (acol t "value") (Sb.ptext b v);
      ] )
  | P.Child_number (c, op, v) ->
    let a = fresh () and t = fresh () in
    ( [ a; t ],
      [
        on_doc a; child_of a cur; kind_is a "e"; name_is a c;
        on_doc t; child_of t a; kind_is t "t";
        Sb.cmp (P.cmp_binop op) (Sb.to_number (acol t "value")) (Sb.pfloat b v);
      ] )

let translate ~doc (simple : Pathquery.t) =
  let module P = Pathquery in
  let b = Sb.binder () in
  let pdoc = Sb.pint b doc in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "v%d" !counter
  in
  let froms = ref [] and wheres = ref [] in
  let add_from a = froms := a :: !froms in
  let add_where w = wheres := w :: !wheres in
  let prev = ref None in
  List.iter
    (fun (s : P.step) ->
      let e = fresh () in
      add_from e;
      add_where (Sb.eq (acol e "doc") pdoc);
      add_where (kind_is e "e");
      (match s.P.test with
      | P.Tag n -> add_where (Sb.eq (acol e "name") (Sb.ptext b n))
      | P.Any_tag -> ());
      (match (!prev, s.P.desc) with
      | None, false -> add_where (Sb.eq (acol e "parent") (Sb.int 0))
      | None, true -> ()  (* any element in the document *)
      | Some p, false -> add_where (child_of e p)
      | Some p, true ->
        (* the interval containment test: the whole point of this scheme *)
        add_where (Sb.gt (acol e "pre") (acol p "pre"));
        add_where (Sb.le (acol e "pre") (Sb.add (acol p "pre") (acol p "size"))));
      List.iter
        (fun pr ->
          let extra_from, extra_where = pred_sql ~b ~pdoc ~cur:e ~fresh pr in
          List.iter add_from extra_from;
          List.iter add_where extra_where)
        s.P.preds;
      prev := Some e)
    simple.P.steps;
  let last = match !prev with Some p -> p | None -> err "empty path" in
  let result_alias =
    match simple.P.tgt with
    | P.Elements -> last
    | P.Attr_of a ->
      let at = fresh () in
      add_from at;
      add_where (Sb.eq (acol at "doc") pdoc);
      add_where (child_of at last);
      add_where (kind_is at "a");
      add_where (Sb.eq (acol at "name") (Sb.ptext b a));
      at
    | P.Text_of ->
      let tx = fresh () in
      add_from tx;
      add_where (Sb.eq (acol tx "doc") pdoc);
      add_where (child_of tx last);
      add_where (kind_is tx "t");
      tx
  in
  let result = acol result_alias "pre" in
  let q =
    Sb.query
      [
        Sb.select ~distinct:true
          ~from:(List.rev_map (fun a -> Sb.from ~alias:a "accel") !froms)
          ~where:(List.rev !wheres)
          ~order_by:[ Sb.asc result ]
          [ Sb.proj result ];
      ]
  in
  (q, Sb.params b)

let query db ~doc (path : Xpathkit.Ast.path) : query_result =
  match Pathquery.analyze path with
  | None -> fallback_query ~reconstruct db ~doc path
  | Some simple ->
    let q, params = traced_translate ~scheme:id (fun () -> translate ~doc simple) in
    let sqls = ref [] and joins = ref 0 in
    let pres = int_column (run_built db ~joins ~sqls ~params q) in
    {
      values = List.map (string_value_of_pre db ~doc) pres;
      nodes = lazy (List.map (node_of_pre db ~doc) pres);
      sql = List.rev !sqls;
      joins = !joins;
      fallback = false;
    }

let mapping : Mapping.mapping =
  (module struct
    let id = id
    let description = description
    let create_schema = create_schema
    let create_indexes = create_indexes
    let shred = shred
    let shred_bulk = shred_bulk
    let reconstruct = reconstruct
    let query = query
  end)
