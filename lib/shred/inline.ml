(* The DTD-inlining mapping (Shanmugasundaram et al. 1999, "shared
   inlining"). The DTD's element-type graph decides the relational schema:

   - an element type gets its own table when it is the root, has in-degree
     >= 2 (shared), is set-valued anywhere (a '*' edge after content-model
     simplification), or is recursive;
   - every other type is inlined into its nearest tabled ancestor as a
     group of columns (id / ordinal / pcdata / attributes), recursively.

   Unlike the generic mappings this one is parameterized by a DTD, so it is
   constructed with [make dtd] rather than registered statically. Documents
   must conform to the DTD (data-centric: no mixed content). *)

module Dtd = Xmlkit.Dtd
module Value = Relstore.Value
module Sb = Relstore.Sql_build
open Mapping

(* ------------------------------------------------------------------ *)
(* Schema derivation *)

type inline_node = {
  in_type : string;  (* element type *)
  in_tag : string;  (* tag that reaches it (= in_type) *)
  in_quant : Dtd.quant;  (* relative to its parent *)
  col_id : string;  (* id column, "id" for the table's own node *)
  col_ord : string;
  col_pcdata : string option;
  col_attrs : (string * string) list;  (* attribute name -> column *)
  children : child_spec list;  (* in DTD field order *)
}

and child_spec = Inlined of inline_node | Tabled of string  (* type name *)

type table_info = { t_type : string; t_name : string; root_node : inline_node }

type layout = {
  dtd : Dtd.t;
  tables : table_info list;  (* root type first *)
  root_type : string;
}

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let table_of layout ty =
  match List.find_opt (fun t -> String.equal t.t_type ty) layout.tables with
  | Some t -> t
  | None -> err "no table for element type %s" ty

(* Which element types require their own table. *)
let shared_types (dtd : Dtd.t) root_type =
  let names = Dtd.element_names dtd in
  let edges = Dtd.edges dtd in
  let in_parents ty =
    List.sort_uniq compare (List.filter_map (fun (p, c, _) -> if c = ty then Some p else None) edges)
  in
  let starred ty = List.exists (fun (_, c, q) -> c = ty && q = Dtd.QStar) edges in
  (* recursive: ty reachable from ty *)
  let successors ty = List.filter_map (fun (p, c, _) -> if p = ty then Some c else None) edges in
  let reachable_from ty =
    let seen = Hashtbl.create 16 in
    let rec go t =
      List.iter
        (fun s ->
          if not (Hashtbl.mem seen s) then begin
            Hashtbl.add seen s ();
            go s
          end)
        (successors t)
    in
    go ty;
    seen
  in
  List.filter
    (fun ty ->
      String.equal ty root_type
      || List.length (in_parents ty) >= 2
      || List.length (in_parents ty) = 0
      || starred ty
      || Hashtbl.mem (reachable_from ty) ty)
    names

let derive_layout (dtd : Dtd.t) : layout =
  let root_type =
    match dtd.Dtd.root with
    | Some r -> r
    | None -> err "the DTD declares no elements"
  in
  let shared = shared_types dtd root_type in
  let is_shared ty = List.mem ty shared in
  let decl ty =
    match Dtd.find_element dtd ty with
    | Some d -> d
    | None -> err "element type %s is referenced but not declared" ty
  in
  (* per-table unique column names *)
  let build_table ty =
    let used = Hashtbl.create 32 in
    let unique base =
      let rec go candidate n =
        if Hashtbl.mem used candidate then go (Printf.sprintf "%s_%d" base n) (n + 1)
        else begin
          Hashtbl.add used candidate ();
          candidate
        end
      in
      go base 1
    in
    List.iter (fun c -> Hashtbl.add used c ()) [ "doc"; "id"; "parent_id"; "ordinal" ];
    let rec build_node ~prefix ~tag ~quant node_ty : inline_node =
      let simple = Dtd.simplify (decl node_ty).Dtd.content in
      let col_id = if prefix = "" then "id" else unique (prefix ^ "id") in
      let col_ord = if prefix = "" then "ordinal" else unique (prefix ^ "ord") in
      let col_pcdata =
        if simple.Dtd.has_pcdata then Some (unique (if prefix = "" then "v" else prefix ^ "v"))
        else None
      in
      let col_attrs =
        List.map
          (fun (a : Dtd.attribute) -> (a.Dtd.att_name, unique (prefix ^ "a_" ^ sanitize a.Dtd.att_name)))
          (Dtd.find_attributes dtd node_ty)
      in
      let children =
        List.map
          (fun (child_ty, q) ->
            if is_shared child_ty then Tabled child_ty
            else
              Inlined
                (build_node
                   ~prefix:(prefix ^ "c_" ^ sanitize child_ty ^ "_")
                   ~tag:child_ty ~quant:q child_ty))
          simple.Dtd.fields
      in
      { in_type = node_ty; in_tag = tag; in_quant = quant; col_id; col_ord; col_pcdata; col_attrs; children }
    in
    build_node ~prefix:"" ~tag:ty ~quant:Dtd.One ty
  in
  let taken = ref [] in
  let tables =
    List.map
      (fun ty ->
        let base = "inl_" ^ sanitize ty in
        let rec unique candidate n =
          if List.mem candidate !taken then unique (Printf.sprintf "%s_%d" base n) (n + 1)
          else candidate
        in
        let name = unique base 1 in
        taken := name :: !taken;
        { t_type = ty; t_name = name; root_node = build_table ty })
      (root_type :: List.filter (fun t -> not (String.equal t root_type)) shared)
  in
  { dtd; tables; root_type }

(* All columns of a table, in a stable order. *)
let rec node_columns (n : inline_node) =
  (if n.col_id = "id" then [] else [ (n.col_id, "INTEGER"); (n.col_ord, "INTEGER") ])
  @ (match n.col_pcdata with Some c -> [ (c, "TEXT") ] | None -> [])
  @ List.map (fun (_, c) -> (c, "TEXT")) n.col_attrs
  @ List.concat_map (function Inlined i -> node_columns i | Tabled _ -> []) n.children

let table_columns t =
  [ ("doc", "INTEGER NOT NULL"); ("id", "INTEGER NOT NULL"); ("parent_id", "INTEGER");
    ("ordinal", "INTEGER NOT NULL") ]
  @ node_columns t.root_node

(* ------------------------------------------------------------------ *)

let make (dtd : Dtd.t) : Mapping.mapping =
  let layout = derive_layout dtd in
  (module struct
    let id = "inline"
    let description = "DTD-driven shared inlining (Shanmugasundaram et al.)"

    let create_schema db =
      List.iter
        (fun t ->
          let cols = table_columns t in
          ignore
            (Db.exec db
               (Printf.sprintf "CREATE TABLE IF NOT EXISTS %s (%s)" t.t_name
                  (String.concat ", " (List.map (fun (c, ty) -> c ^ " " ^ ty) cols)))))
        layout.tables

    let create_indexes db =
      List.iter
        (fun t ->
          ignore
            (Db.exec db
               (Printf.sprintf "CREATE INDEX IF NOT EXISTS %s_id ON %s (id)" t.t_name t.t_name));
          ignore
            (Db.exec db
               (Printf.sprintf "CREATE INDEX IF NOT EXISTS %s_parent ON %s (parent_id)" t.t_name
                  t.t_name)))
        layout.tables

    (* -------------------------------------------------------------- *)
    (* Shredding *)

    let shred_into emit ~doc ix =
      let rec shred_tabled ~parent_id ~ordinal n tinfo =
        let cols = table_columns tinfo in
        let row = Hashtbl.create 16 in
        Hashtbl.replace row "doc" (Value.Int doc);
        Hashtbl.replace row "id" (Value.Int n);
        Hashtbl.replace row "parent_id"
          (match parent_id with Some p -> Value.Int p | None -> Value.Null);
        Hashtbl.replace row "ordinal" (Value.Int ordinal);
        fill row tinfo.root_node n;
        emit tinfo.t_name
          (Array.of_list
             (List.map
                (fun (c, _) -> Option.value ~default:Value.Null (Hashtbl.find_opt row c))
                cols))
      and fill row node n =
        if not (String.equal (Index.name ix n) node.in_type) then
          unsupported "element <%s> where the DTD expects <%s>" (Index.name ix n) node.in_type;
        if node.col_id <> "id" then begin
          Hashtbl.replace row node.col_id (Value.Int n);
          Hashtbl.replace row node.col_ord (Value.Int (Index.ordinal ix n))
        end;
        List.iter
          (fun a ->
            match List.assoc_opt (Index.name ix a) node.col_attrs with
            | Some col -> Hashtbl.replace row col (Value.Text (Index.value ix a))
            | None ->
              unsupported "attribute %s of <%s> is not declared in the DTD" (Index.name ix a)
                node.in_type)
          (Index.attributes ix n);
        let texts = ref [] in
        List.iter
          (fun c ->
            match Index.kind ix c with
            | Index.Text -> texts := Index.value ix c :: !texts
            | Index.Comment | Index.Pi ->
              unsupported "the inline mapping does not store comments or processing instructions"
            | Index.Element -> (
              let tag = Index.name ix c in
              let spec =
                List.find_opt
                  (fun s ->
                    match s with
                    | Inlined i -> String.equal i.in_tag tag
                    | Tabled ty -> String.equal ty tag)
                  node.children
              in
              match spec with
              | Some (Inlined inode) ->
                if Hashtbl.mem row inode.col_id then
                  unsupported
                    "<%s> repeats child <%s> that the DTD declares singleton under <%s>"
                    node.in_type tag node.in_type;
                fill row inode c
              | Some (Tabled ty) ->
                shred_tabled ~parent_id:(Some n) ~ordinal:(Index.ordinal ix c) c
                  (table_of layout ty)
              | None ->
                unsupported "child <%s> of <%s> is not declared in the DTD" tag node.in_type)
            | Index.Attribute | Index.Document -> ())
          (Index.children ix n);
        (match (!texts, node.col_pcdata) with
        | [], _ -> ()
        | ts, Some col -> Hashtbl.replace row col (Value.Text (String.concat "" (List.rev ts)))
        | _ :: _, None ->
          unsupported "<%s> contains text but its DTD content model has no #PCDATA" node.in_type)
      in
      let root = Index.root_element ix in
      if not (String.equal (Index.name ix root) layout.root_type) then
        unsupported "root element <%s> does not match the DTD root <%s>" (Index.name ix root)
          layout.root_type;
      shred_tabled ~parent_id:None ~ordinal:1 root (table_of layout layout.root_type)

    let shred db ~doc ix = shred_into (Db.insert_row_array db) ~doc ix
    let shred_bulk session ~doc ix = shred_into (Db.session_insert session) ~doc ix

    (* -------------------------------------------------------------- *)
    (* Reconstruction *)

    (* A fetched row as a column->value lookup. *)
    let assoc_of result row =
      let tbl = Hashtbl.create 16 in
      List.iteri (fun i c -> Hashtbl.replace tbl c row.(i)) result.Relstore.Executor.columns;
      tbl

    let get_int assoc col =
      match Hashtbl.find_opt assoc col with
      | Some (Value.Int i) -> Some i
      | _ -> None

    let get_text assoc col =
      match Hashtbl.find_opt assoc col with
      | Some (Value.Text s) -> Some s
      | Some (Value.Int i) -> Some (string_of_int i)
      | _ -> None

    let rec build_element db ~doc tinfo (node : inline_node) assoc : Dom.element =
      let my_id =
        match get_int assoc node.col_id with
        | Some i -> i
        | None -> err "row lacks id column %s" node.col_id
      in
      let attrs =
        List.filter_map
          (fun (name, col) -> Option.map (fun v -> Dom.attr name v) (get_text assoc col))
          node.col_attrs
      in
      (* gather ordered children: inlined (present) + tabled rows *)
      let inlined =
        List.filter_map
          (function
            | Inlined i -> (
              match get_int assoc i.col_id with
              | Some _ ->
                let ord = Option.value ~default:0 (get_int assoc i.col_ord) in
                Some (ord, Dom.Element (build_element db ~doc tinfo i assoc))
              | None -> None)
            | Tabled _ -> None)
          node.children
      in
      let tabled =
        List.concat_map
          (function
            | Tabled ty ->
              let child_t = table_of layout ty in
              let b = Sb.binder () in
              let q =
                Sb.query
                  [
                    Sb.select ~from:[ Sb.from child_t.t_name ]
                      ~where:
                        [
                          Sb.eq (Sb.col "doc") (Sb.pint b doc);
                          Sb.eq (Sb.col "parent_id") (Sb.pint b my_id);
                        ]
                      [ Sb.star ];
                  ]
              in
              let r = query_built db ~params:(Sb.params b) q in
              List.map
                (fun row ->
                  let a = assoc_of r row in
                  let ord = Option.value ~default:0 (get_int a "ordinal") in
                  (ord, Dom.Element (build_element db ~doc child_t child_t.root_node a)))
                r.Relstore.Executor.rows
            | Inlined _ -> [])
          node.children
      in
      let element_children =
        List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) (inlined @ tabled))
      in
      let children =
        match (element_children, node.col_pcdata) with
        | [], Some col -> (
          match get_text assoc col with Some v when v <> "" -> [ Dom.Text v ] | _ -> [])
        | kids, _ -> kids
      in
      { Dom.tag = node.in_tag; attrs; children }

    let reconstruct db ~doc =
      let root_t = table_of layout layout.root_type in
      let b = Sb.binder () in
      let q =
        Sb.query
          [
            Sb.select ~from:[ Sb.from root_t.t_name ]
              ~where:
                [ Sb.eq (Sb.col "doc") (Sb.pint b doc); Sb.is_null (Sb.col "parent_id") ]
              [ Sb.star ];
          ]
      in
      let r = query_built db ~params:(Sb.params b) q in
      match r.Relstore.Executor.rows with
      | [ row ] ->
        Dom.document (build_element db ~doc root_t root_t.root_node (assoc_of r row))
      | [] -> err "document %d is not stored" doc
      | _ -> err "document %d has multiple roots" doc

    (* Subtree of one result node: locate its row by the node's id column. *)
    let element_by_id db ~doc tinfo (node : inline_node) nid =
      let b = Sb.binder () in
      let q =
        Sb.query
          [
            Sb.select ~from:[ Sb.from tinfo.t_name ]
              ~where:
                [
                  Sb.eq (Sb.col "doc") (Sb.pint b doc);
                  Sb.eq (Sb.col node.col_id) (Sb.pint b nid);
                ]
              [ Sb.star ];
          ]
      in
      let r = query_built db ~params:(Sb.params b) q in
      match r.Relstore.Executor.rows with
      | [ row ] -> build_element db ~doc tinfo node (assoc_of r row)
      | [] -> err "no row with %s = %d" node.col_id nid
      | _ -> err "multiple rows with %s = %d" node.col_id nid

    (* -------------------------------------------------------------- *)
    (* Query translation *)

    (* A route is one concrete way the path may thread through the table
       graph: FROM aliases, WHERE conditions, and the current location
       (alias + table + inline node). Conditions are deferred as closures
       over the route's eventual binder so bound values (doc id, compared
       literals) become parameters of the per-route statement. *)
    type route = {
      rt_froms : (string * string) list;  (* table, alias — reverse order *)
      rt_conds : (Sb.binder -> Relstore.Sql_ast.expr) list;  (* reverse order *)
      rt_alias : string;
      rt_table : table_info;
      rt_node : inline_node;
      rt_depth : int;  (* hops taken, recursion cap *)
    }

    let max_routes = 64
    let max_desc_depth = 12

    (* Reset per translation so equal paths render equal statement text —
       the plan-cache key. *)
    let alias_counter = ref 0

    let fresh_alias () =
      incr alias_counter;
      Printf.sprintf "q%d" !alias_counter

    let test_matches ty = function
      | Pathquery.Tag n -> String.equal ty n
      | Pathquery.Any_tag -> true

    (* One child move from a route. *)
    let child_moves db ~doc route test =
      ignore db;
      List.filter_map
        (fun spec ->
          match spec with
          | Inlined i when test_matches i.in_type test ->
            let cur = route.rt_alias in
            Some
              {
                route with
                rt_node = i;
                rt_conds = (fun _ -> Sb.is_not_null (acol cur i.col_id)) :: route.rt_conds;
                rt_depth = route.rt_depth + 1;
              }
          | Inlined _ -> None
          | Tabled ty when test_matches ty test ->
            let t = table_of layout ty in
            let a = fresh_alias () in
            (* the virtual document location (alias "") has no row: its
               child anchors on parent_id IS NULL *)
            let link =
              if route.rt_alias = "" then fun _ -> Sb.is_null (acol a "parent_id")
              else
                let cur = route.rt_alias and cid = route.rt_node.col_id in
                fun _ -> Sb.eq (acol a "parent_id") (acol cur cid)
            in
            Some
              {
                rt_froms = (t.t_name, a) :: route.rt_froms;
                rt_conds =
                  link
                  :: (fun b -> Sb.eq (acol a "doc") (Sb.pint b doc))
                  :: route.rt_conds;
                rt_alias = a;
                rt_table = t;
                rt_node = t.root_node;
                rt_depth = route.rt_depth + 1;
              }
          | Tabled _ -> None)
        route.rt_node.children

    (* All child moves regardless of the test (for '//' expansion). *)
    let all_child_moves db ~doc route = child_moves db ~doc route Pathquery.Any_tag

    exception Too_many_routes

    let desc_moves db ~doc route test =
      (* BFS over the mapping graph, collecting every matching location at
         any depth; recursion is bounded by [max_desc_depth]. *)
      let results = ref [] in
      let frontier = ref [ route ] in
      while !frontier <> [] do
        let next =
          List.concat_map
            (fun r ->
              if r.rt_depth - route.rt_depth >= max_desc_depth then []
              else all_child_moves db ~doc r)
            !frontier
        in
        List.iter
          (fun r -> if test_matches r.rt_node.in_type test then results := r :: !results)
          next;
        if List.length !results > max_routes then raise Too_many_routes;
        frontier := next
      done;
      List.rev !results

    (* Predicate conditions at a route's current location; None = the
       predicate can never hold there (route dies). *)
    let pred_conds db ~doc route (p : Pathquery.pred) =
      ignore db;
      let module P = Pathquery in
      let cur = route.rt_alias and node = route.rt_node in
      let find_child c =
        List.find_opt
          (fun s ->
            match s with
            | Inlined i -> String.equal i.in_type c
            | Tabled ty -> String.equal ty c)
          node.children
      in
      (* [render] maps the pcdata column expr + binder to the comparison *)
      let child_value_cond c ~render =
        match find_child c with
        | Some (Inlined i) -> (
          match i.col_pcdata with
          | Some col -> Some ([], [ (fun b -> render (acol cur col) b) ])
          | None -> None)
        | Some (Tabled ty) -> (
          let t = table_of layout ty in
          match t.root_node.col_pcdata with
          | Some col ->
            let a = fresh_alias () in
            let cid = node.col_id in
            Some
              ( [ (t.t_name, a) ],
                [
                  (fun b -> Sb.eq (acol a "doc") (Sb.pint b doc));
                  (fun _ -> Sb.eq (acol a "parent_id") (acol cur cid));
                  (fun b -> render (acol a col) b);
                ] )
          | None -> None)
        | None -> None
      in
      match p with
      | P.Has_child c -> (
        match find_child c with
        | Some (Inlined i) -> Some ([], [ (fun _ -> Sb.is_not_null (acol cur i.col_id)) ])
        | Some (Tabled ty) ->
          let t = table_of layout ty in
          let a = fresh_alias () in
          let cid = node.col_id in
          Some
            ( [ (t.t_name, a) ],
              [
                (fun b -> Sb.eq (acol a "doc") (Sb.pint b doc));
                (fun _ -> Sb.eq (acol a "parent_id") (acol cur cid));
              ] )
        | None -> None)
      | P.Has_attr at -> (
        match List.assoc_opt at node.col_attrs with
        | Some col -> Some ([], [ (fun _ -> Sb.is_not_null (acol cur col)) ])
        | None -> None)
      | P.Attr_value (at, op, v) -> (
        match List.assoc_opt at node.col_attrs with
        | Some col ->
          Some ([], [ (fun b -> Sb.cmp (P.cmp_binop op) (acol cur col) (Sb.ptext b v)) ])
        | None -> None)
      | P.Attr_number (at, op, v) -> (
        match List.assoc_opt at node.col_attrs with
        | Some col ->
          Some
            ( [],
              [
                (fun b ->
                  Sb.cmp (P.cmp_binop op) (Sb.to_number (acol cur col)) (Sb.pfloat b v));
              ] )
        | None -> None)
      | P.Child_value (c, op, v) ->
        child_value_cond c ~render:(fun e b -> Sb.cmp (P.cmp_binop op) e (Sb.ptext b v))
      | P.Child_number (c, op, v) ->
        child_value_cond c ~render:(fun e b ->
            Sb.cmp (P.cmp_binop op) (Sb.to_number e) (Sb.pfloat b v))

    let apply_preds db ~doc route preds =
      List.fold_left
        (fun acc p ->
          match acc with
          | None -> None
          | Some r -> (
            match pred_conds db ~doc r p with
            | None -> None
            | Some (extra_from, extra_cond) ->
              Some
                {
                  r with
                  rt_froms = List.rev extra_from @ r.rt_froms;
                  rt_conds = List.rev extra_cond @ r.rt_conds;
                }))
        (Some route) preds

    let translate db ~doc (simple : Pathquery.t) =
      let module P = Pathquery in
      alias_counter := 0;
      (* virtual starting route: the document node, whose only child is the
         root table *)
      let start =
        let doc_node =
          { in_type = "#doc"; in_tag = "#doc"; in_quant = Dtd.One; col_id = ""; col_ord = "";
            col_pcdata = None; col_attrs = []; children = [ Tabled layout.root_type ] }
        in
        {
          rt_froms = [];
          rt_conds = [];
          rt_alias = "";
          rt_table = { t_type = "#doc"; t_name = "#doc"; root_node = doc_node };
          rt_node = doc_node;
          rt_depth = 0;
        }
      in
      let step routes (s : P.step) =
        let moved =
          List.concat_map
            (fun r ->
              if s.P.desc then desc_moves db ~doc r s.P.test else child_moves db ~doc r s.P.test)
            routes
        in
        if List.length moved > max_routes then raise Too_many_routes;
        List.filter_map (fun r -> apply_preds db ~doc r s.P.preds) moved
      in
      let routes = List.fold_left step [ start ] simple.P.steps in
      (* one SELECT per surviving route *)
      List.filter_map
        (fun r ->
          let rid = acol r.rt_alias r.rt_node.col_id in
          let select =
            match simple.P.tgt with
            | P.Elements -> Some ([ Sb.proj rid ], [], `Element (r.rt_table, r.rt_node))
            | P.Attr_of a -> (
              match List.assoc_opt a r.rt_node.col_attrs with
              | Some col ->
                Some
                  ( [ Sb.proj rid; Sb.proj (acol r.rt_alias col) ],
                    [ (fun _ -> Sb.is_not_null (acol r.rt_alias col)) ],
                    `Value )
              | None -> None)
            | P.Text_of -> (
              match r.rt_node.col_pcdata with
              | Some col ->
                Some
                  ( [ Sb.proj rid; Sb.proj (acol r.rt_alias col) ],
                    [ (fun _ -> Sb.is_not_null (acol r.rt_alias col)) ],
                    `Value )
              | None -> None)
          in
          Option.map
            (fun (projs, extra_conds, shape) ->
              let froms = List.rev r.rt_froms in
              let b = Sb.binder () in
              let conds = List.map (fun f -> f b) (List.rev r.rt_conds @ extra_conds) in
              let q =
                Sb.query
                  [
                    Sb.select ~distinct:true
                      ~from:(List.map (fun (t, a) -> Sb.from ~alias:a t) froms)
                      ~where:conds projs;
                  ]
              in
              ((q, Sb.params b), shape))
            select)
        routes

    let query db ~doc (path : Xpathkit.Ast.path) : query_result =
      match Pathquery.analyze path with
      | None -> fallback_query ~reconstruct db ~doc path
      | Some simple -> (
        match traced_translate ~scheme:id (fun () -> translate db ~doc simple) with
        | exception Too_many_routes -> fallback_query ~reconstruct db ~doc path
        | selects ->
          let results = ref [] in
          let sqls = ref [] in
          let joins = ref 0 in
          List.iter
            (fun ((q, params), shape) ->
              let r = run_built db ~joins ~sqls ~params q in
              List.iter
                (fun row ->
                  let nid = match row.(0) with Value.Int i -> i | _ -> err "bad id" in
                  match shape with
                  | `Element (t, n) -> results := (nid, `Element (t, n)) :: !results
                  | `Value ->
                    let v = match row.(1) with Value.Null -> "" | v -> Value.to_string v in
                    results := (nid, `Value v) :: !results)
                r.Relstore.Executor.rows)
            selects;
          let sorted =
            List.sort_uniq (fun (a, _) (b, _) -> compare a b) !results
          in
          {
            values =
              List.map
                (fun (nid, shape) ->
                  match shape with
                  | `Element (t, n) ->
                    Dom.string_value_of_element (element_by_id db ~doc t n nid)
                  | `Value v -> v)
                sorted;
            nodes =
              lazy
                (List.map
                   (fun (nid, shape) ->
                     match shape with
                     | `Element (t, n) -> Dom.Element (element_by_id db ~doc t n nid)
                     | `Value v -> Dom.Text v)
                   sorted);
            sql = List.rev !sqls;
            joins = !joins;
            fallback = false;
          })
  end)
