(* The "smart file system" baseline the tutorial lists first: store each
   document as one serialized text blob. Loading is a single insert and
   reconstruction is a parse, but the relational engine can see nothing
   inside the blob — every query re-parses the document and evaluates
   natively. This is the strawman the shredding schemes justify themselves
   against. *)

module Dom = Xmlkit.Dom
module Index = Xmlkit.Index
module Db = Relstore.Database
module Value = Relstore.Value
module Sb = Relstore.Sql_build
open Mapping

let id = "textblob"
let description = "whole document as one text blob (parse on every query)"

let create_schema db =
  ignore
    (Db.exec db
       "CREATE TABLE IF NOT EXISTS blob (doc INTEGER NOT NULL, xml TEXT NOT NULL)")

let create_indexes _db = ()

let shred_into emit ~doc ix =
  let text = Xmlkit.Serializer.to_string (Index.to_document ix) in
  emit "blob" [| Value.Int doc; Value.Text text |]

let shred db ~doc ix = shred_into (Db.insert_row_array db) ~doc ix
let shred_bulk session ~doc ix = shred_into (Db.session_insert session) ~doc ix

let blob_query ~doc =
  let b = Sb.binder () in
  let q =
    Sb.query
      [
        Sb.select
          ~from:[ Sb.from "blob" ]
          ~where:[ Sb.eq (Sb.col "doc") (Sb.pint b doc) ]
          [ Sb.proj (Sb.col "xml") ];
      ]
  in
  (q, Sb.params b)

let reconstruct db ~doc =
  let q, params = blob_query ~doc in
  let r = query_built db ~params q in
  match string_column r with
  | [ text ] -> Xmlkit.Parser.parse text
  | [] -> err "document %d is not stored" doc
  | _ -> err "document %d has multiple blobs" doc

let query db ~doc path =
  (* always a fallback by construction, but record the one SQL statement
     that fetched the blob *)
  let r = fallback_query ~reconstruct db ~doc path in
  let q, _ = blob_query ~doc in
  { r with sql = [ Relstore.Sql_ast.query_to_string q ] }

let mapping : Mapping.mapping =
  (module struct
    let id = id
    let description = description
    let create_schema = create_schema
    let create_indexes = create_indexes
    let shred = shred
    let shred_bulk = shred_bulk
    let reconstruct = reconstruct
    let query = query
  end)
