(** Shared diagnostics core for the static analyzer.

    Passes report findings as {!t} values: a stable code, a severity, a
    one-line message, and an optional source location. Renderers here are
    the single output path for the CLI, the CI gate, and tests. *)

type severity = Info | Warning | Error

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val severity_rank : severity -> int
(** [Info] = 0, [Warning] = 1, [Error] = 2. *)

type location = {
  loc_scheme : string option;  (** mapping scheme under lint *)
  loc_query : string option;  (** workload query id or XPath *)
  loc_statement : string option;  (** SQL statement text (plan-cache key) *)
  loc_file : string option;  (** source file (srclint findings) *)
  loc_line : int option;  (** 1-based line in [loc_file] *)
}

val no_location : location

val at :
  ?scheme:string ->
  ?query:string ->
  ?statement:string ->
  ?file:string ->
  ?line:int ->
  unit ->
  location

type t = {
  code : string;  (** stable diagnostic code, e.g. ["SQL002"] *)
  severity : severity;
  message : string;
  location : location;
}

val make : ?location:location -> code:string -> severity -> string -> t
val with_location : t -> location -> t

val registry : (string * severity * string) list
(** Every code a pass can emit: (code, default severity, description). *)

val describe : string -> string option
val default_severity : string -> severity

val sort : t list -> t list
(** Most severe first, then by code (stable). *)

val max_severity : t list -> severity option
val count_at_least : severity -> t list -> int

val location_to_string : location -> string
val to_string : t -> string
val render_text : t list -> string

val to_json : t -> Obskit.Json.t
val list_to_json : t list -> Obskit.Json.t
val of_json : Obskit.Json.t -> (t, string) result
val list_of_json : Obskit.Json.t -> (t list, string) result
