(** Physical-plan lints (codes PLAN001–PLAN003).

    Checks a {!Relstore.Plan.t} with catalog and statistics in hand:
    sequential scans under filters whose column has a usable index,
    selections left above joins, and nested-loop joins whose estimated
    row product explodes. *)

val default_explosion_threshold : int
(** 100_000 estimated intermediate rows. *)

val estimate : Relstore.Planner.catalog -> Relstore.Plan.t -> int
(** Coarse Stats-driven output-cardinality estimate for a plan node. *)

val lint_plan :
  ?explosion_threshold:int -> Relstore.Planner.catalog -> Relstore.Plan.t -> Diag.t list
