(** XPath-vs-schema lints (codes XP001/XP002) and the provably-empty
    check backing the Store fast path.

    A path is simulated over a structural summary — a Strong DataGuide
    (exact for the stored data) or a DTD element graph (exact for valid
    documents). Constructs outside the tracked subset (reverse axes,
    [text()] tests, position predicates) degrade to an unknown state that
    proves nothing, so the analysis never produces a false "empty". *)

type oracle

val of_dataguide : Xmlkit.Dataguide.t -> oracle
val of_dtd : Xmlkit.Dtd.t -> oracle

val lint_path : oracle -> Xpathkit.Ast.path -> Diag.t list
val lint_expr : oracle -> Xpathkit.Ast.expr -> Diag.t list

val provably_empty : oracle -> Xpathkit.Ast.path -> bool
(** Sound: [true] only when no document matching the summary can yield a
    result. With a DataGuide of the stored documents this licenses
    answering the query with an empty result without touching the
    database. *)

val provably_empty_expr : oracle -> Xpathkit.Ast.expr -> bool
(** [provably_empty] when the expression is a bare location path, else
    [false]. *)
