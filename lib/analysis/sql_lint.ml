(* SQL AST lints.

   Operates on [Sql_ast] values (the typed form every scheme emits since
   the builder refactor), optionally consulting table schemas for type
   checks. The checks target the silent query regressions the storage
   literature blames for most scheme slowdowns: lost join predicates,
   non-sargable shapes, plan-cache-hostile inline literals, and predicates
   a constant fold proves empty. *)

module Ast = Relstore.Sql_ast
module Value = Relstore.Value
module Schema = Relstore.Schema

type env = { find_schema : string -> Schema.t option }

let env_of_schemas schemas =
  {
    find_schema =
      (fun name ->
        List.find_map
          (fun (s : Schema.t) ->
            if String.equal (String.lowercase_ascii s.Schema.table_name) (String.lowercase_ascii name)
            then Some s
            else None)
          schemas);
  }

let env_of_catalog find_table =
  { find_schema = (fun name -> Option.map Relstore.Table.schema (find_table name)) }

let empty_env = { find_schema = (fun _ -> None) }

(* ------------------------------------------------------------------ *)
(* Shared expression utilities *)

let diag = Diag.make

let contains_col e =
  Ast.fold_expr (fun acc sub -> acc || match sub with Ast.Col _ -> true | _ -> false) false e

let is_constant e = not (contains_col e)

(* Literal-only: constant and free of parameters and function calls, so the
   value is known at lint time. *)
let is_literal_expr e =
  Ast.fold_expr
    (fun acc sub ->
      acc && match sub with Ast.Col _ | Ast.Param _ | Ast.Call _ -> false | _ -> true)
    true e

let eval_const e =
  if not (is_literal_expr e) then None
  else
    try Some (Relstore.Expr_eval.compile [||] e [||])
    with Relstore.Expr_eval.Eval_error _ | Division_by_zero -> None

let rec split_and = function
  | Ast.Binop (Ast.And, a, b) -> split_and a @ split_and b
  | e -> [ e ]

(* Aliases a qualified expression refers to; column refs left unqualified
   count as referring to the sole FROM alias when there is exactly one. *)
let aliases_of ~bindings e =
  let quals = Ast.referenced_tables e in
  let unqualified =
    Ast.fold_expr
      (fun acc sub -> acc || match sub with Ast.Col { table = None; _ } -> true | _ -> false)
      false e
  in
  match (unqualified, bindings) with
  | true, [ (only, _) ] -> if List.mem only quals then quals else only :: quals
  | _ -> quals

let is_cmp = function
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* SQL001: cartesian product — FROM aliases not all connected by
   predicates that mention at least two of them. *)

let lint_cartesian ~bindings ~conjuncts =
  match bindings with
  | [] | [ _ ] -> []
  | _ ->
    let aliases = List.map fst bindings in
    let parent = Hashtbl.create 8 in
    List.iter (fun a -> Hashtbl.replace parent a a) aliases;
    let rec find a = let p = Hashtbl.find parent a in if String.equal p a then a else find p in
    let union a b =
      let ra = find a and rb = find b in
      if not (String.equal ra rb) then Hashtbl.replace parent ra rb
    in
    List.iter
      (fun c ->
        match List.filter (fun a -> List.mem a aliases) (aliases_of ~bindings c) with
        | first :: rest -> List.iter (fun other -> union first other) rest
        | [] -> ())
      conjuncts;
    let roots = List.sort_uniq compare (List.map find aliases) in
    if List.length roots > 1 then
      [
        diag ~code:"SQL001" Warning
          (Printf.sprintf
             "cartesian product: FROM has %d tables but no predicate connects {%s}"
             (List.length aliases) (String.concat "} {" roots));
      ]
    else []

(* ------------------------------------------------------------------ *)
(* SQL002 / SQL003 / SQL004: sargability and parameterization, found by a
   full walk over an expression. *)

(* The literal prefix a leading-wildcard check needs: the leftmost leaf of
   a concat chain, else the literal itself. *)
let rec pattern_head = function
  | Ast.Lit (Value.Text p) -> Some p
  | Ast.Binop (Ast.Concat, a, _) -> pattern_head a
  | _ -> None

let leading_wildcard p = String.length p > 0 && (p.[0] = '%' || p.[0] = '_')

(* Data-like literal: long enough that it is almost certainly a value, not
   a statement-shape code (kind codes 'e'/'a'/'t' and similar short tags
   are legitimately part of the cached statement text). *)
let data_literal = function
  | Value.Text s -> String.length s > 2
  | _ -> false

let lint_predicate_shapes e =
  let out = ref [] in
  let add d = out := d :: !out in
  let check_operand_pair a b =
    (* function-wrapped column vs constant (SQL003) *)
    let wrapped x other =
      (match x with
      | Ast.Call _ when (not (Ast.is_aggregate_call x)) && contains_col x -> true
      | _ -> false)
      && is_constant other
    in
    if wrapped a b || wrapped b a then
      add
        (diag ~code:"SQL003" Warning
           (Printf.sprintf "function-wrapped column defeats index use: %s"
              (Ast.expr_to_string (if wrapped a b then a else b))));
    (* inline data literal vs column (SQL004) *)
    let inline_lit x other =
      match x with Ast.Lit v when data_literal v && contains_col other -> true | _ -> false
    in
    if inline_lit a b || inline_lit b a then
      let v = match (if inline_lit a b then a else b) with Ast.Lit v -> v | _ -> assert false in
      add
        (diag ~code:"SQL004" Warning
           (Printf.sprintf "inline literal %s should be a bound ?N parameter (plan-cache miss risk)"
              (Value.to_sql_literal v)))
  in
  let rec walk e =
    (match e with
    | Ast.Like { negated = false; arg; pattern } -> (
      match pattern_head pattern with
      | Some p when leading_wildcard p ->
        add
          (diag ~code:"SQL002" Warning
             (Printf.sprintf "LIKE pattern %s starts with a wildcard: no index range possible"
                (Value.to_sql_literal (Value.Text p))));
        ignore arg
      | _ -> ())
    | Ast.Binop (op, a, b) when is_cmp op -> check_operand_pair a b
    | Ast.Between { arg; low; high } ->
      check_operand_pair arg low;
      check_operand_pair arg high
    | Ast.In_list { arg; items; _ } when contains_col arg ->
      List.iter
        (fun item ->
          match item with
          | Ast.Lit v when data_literal v ->
            add
              (diag ~code:"SQL004" Warning
                 (Printf.sprintf
                    "inline literal %s in IN list should be a bound ?N parameter"
                    (Value.to_sql_literal v)))
          | _ -> ())
        items
    | _ -> ());
    match e with
    | Ast.Lit _ | Ast.Param _ | Ast.Col _ -> ()
    | Ast.Binop (_, a, b) -> walk a; walk b
    | Ast.Unop (_, a) -> walk a
    | Ast.Is_null { arg; _ } -> walk arg
    | Ast.Like { arg; pattern; _ } -> walk arg; walk pattern
    | Ast.In_list { arg; items; _ } -> walk arg; List.iter walk items
    | Ast.Between { arg; low; high } -> walk arg; walk low; walk high
    | Ast.Call { args; _ } -> List.iter walk args
  in
  walk e;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* SQL005 / SQL006: contradiction folding and tautologies over the WHERE
   conjunction. Bounds are collected per column from literal comparisons
   and intersected; an empty intersection is a provably-empty predicate
   (NULL semantics reject too, so the proof is sound). *)

type bound = { lo : (Value.t * bool) option; hi : (Value.t * bool) option; neqs : Value.t list }

let no_bound = { lo = None; hi = None; neqs = [] }

let ty_class v =
  match Value.type_of v with
  | Some (Value.TInt | Value.TFloat) -> Some `Num
  | Some Value.TText -> Some `Text
  | Some Value.TBool -> Some `Bool
  | None -> None

let compatible a b = match (ty_class a, ty_class b) with
  | Some ca, Some cb -> ca = cb
  | _ -> false

(* Merge a new constraint into a column's bound; [None] marks the column
   untrackable (mixed literal types: comparisons there follow the engine's
   cross-type total order, so stay conservative and prove nothing). *)
let merge_bound b ~op v =
  let ok_with existing = match existing with
    | Some (w, _) -> compatible w v
    | None -> true
  in
  if Value.is_null v || not (ok_with b.lo && ok_with b.hi) then None
  else
    let tighter_lo (nv, nincl) = match b.lo with
      | Some (ov, oincl) ->
        let c = Value.compare nv ov in
        if c > 0 || (c = 0 && not nincl && oincl) then Some (nv, nincl) else b.lo
      | None -> Some (nv, nincl)
    in
    let tighter_hi (nv, nincl) = match b.hi with
      | Some (ov, oincl) ->
        let c = Value.compare nv ov in
        if c < 0 || (c = 0 && not nincl && oincl) then Some (nv, nincl) else b.hi
      | None -> Some (nv, nincl)
    in
    match op with
    | `Eq -> Some { b with lo = tighter_lo (v, true); hi = tighter_hi (v, true) }
    | `Lt -> Some { b with hi = tighter_hi (v, false) }
    | `Le -> Some { b with hi = tighter_hi (v, true) }
    | `Gt -> Some { b with lo = tighter_lo (v, false) }
    | `Ge -> Some { b with lo = tighter_lo (v, true) }
    | `Neq ->
      if List.for_all (fun w -> compatible w v) b.neqs then Some { b with neqs = v :: b.neqs }
      else None

let bound_empty b =
  (match (b.lo, b.hi) with
  | Some (lo, lo_incl), Some (hi, hi_incl) ->
    let c = Value.compare lo hi in
    c > 0 || (c = 0 && not (lo_incl && hi_incl))
  | _ -> false)
  ||
  (* a point bound excluded by a <> literal *)
  match (b.lo, b.hi) with
  | Some (lo, true), Some (hi, true) when Value.compare lo hi = 0 ->
    List.exists (fun v -> compatible v lo && Value.compare v lo = 0) b.neqs
  | _ -> false

let col_key = function
  | Ast.Col { table; column } ->
    Some
      (String.lowercase_ascii
         ((match table with Some t -> t ^ "." | None -> "") ^ column))
  | _ -> None

let lint_conjunction conjuncts =
  let out = ref [] in
  let add d = out := d :: !out in
  (* 1. constant conjuncts fold to a known truth value *)
  List.iter
    (fun c ->
      match eval_const c with
      | Some v -> (
        match v with
        | Value.Bool false ->
          add
            (diag ~code:"SQL005" Warning
               (Printf.sprintf "conjunct %s is always false: the result is provably empty"
                  (Ast.expr_to_string c)))
        | Value.Bool true ->
          add
            (diag ~code:"SQL006" Warning
               (Printf.sprintf "conjunct %s is always true" (Ast.expr_to_string c)))
        | _ -> ())
      | None -> ())
    conjuncts;
  (* 2. self-comparison tautologies *)
  List.iter
    (fun c ->
      match c with
      | Ast.Binop (Ast.Eq, a, b) when col_key a <> None && col_key a = col_key b ->
        add
          (diag ~code:"SQL006" Warning
             (Printf.sprintf "conjunct %s compares a column to itself" (Ast.expr_to_string c)))
      | _ -> ())
    conjuncts;
  (* 3. per-column range folding *)
  let bounds : (string, bound option) Hashtbl.t = Hashtbl.create 8 in
  let constrain key ~op v =
    match Hashtbl.find_opt bounds key with
    | Some None -> ()  (* poisoned: mixed types *)
    | prior ->
      let b = match prior with Some (Some b) -> b | _ -> no_bound in
      Hashtbl.replace bounds key (merge_bound b ~op v)
  in
  List.iter
    (fun c ->
      match c with
      | Ast.Binop (op, a, b) when is_cmp op -> (
        let with_sides col lit ~flipped =
          match (col_key col, lit) with
          | Some key, Ast.Lit v when not (Value.is_null v) ->
            let dir =
              match (op, flipped) with
              | Ast.Eq, _ -> Some `Eq
              | Ast.Neq, _ -> Some `Neq
              | Ast.Lt, false -> Some `Lt
              | Ast.Le, false -> Some `Le
              | Ast.Gt, false -> Some `Gt
              | Ast.Ge, false -> Some `Ge
              | Ast.Lt, true -> Some `Gt
              | Ast.Le, true -> Some `Ge
              | Ast.Gt, true -> Some `Lt
              | Ast.Ge, true -> Some `Le
              | _ -> None
            in
            (match dir with Some d -> constrain key ~op:d v | None -> ())
          | _ -> ()
        in
        match (a, b) with
        | Ast.Col _, _ -> with_sides a b ~flipped:false
        | _, Ast.Col _ -> with_sides b a ~flipped:true
        | _ -> ())
      | Ast.Between { arg = Ast.Col _ as col; low = Ast.Lit lo; high = Ast.Lit hi } ->
        if not (Value.is_null lo) then
          (match col_key col with Some k -> constrain k ~op:`Ge lo | None -> ());
        if not (Value.is_null hi) then
          (match col_key col with Some k -> constrain k ~op:`Le hi | None -> ())
      | _ -> ())
    conjuncts;
  Hashtbl.iter
    (fun key b ->
      match b with
      | Some b when bound_empty b ->
        add
          (diag ~code:"SQL005" Warning
             (Printf.sprintf "predicates on %s fold to an empty range: the result is provably empty"
                key))
      | _ -> ())
    bounds;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* SQL007: duplicate projections *)

let lint_projections (s : Ast.select) =
  let exprs =
    List.filter_map
      (function Ast.Proj (e, _) -> Some (Ast.expr_to_string e) | Ast.All | Ast.Table_all _ -> None)
      s.Ast.projections
  in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun e ->
      if Hashtbl.mem seen e then
        Some
          (diag ~code:"SQL007" Warning
             (Printf.sprintf "expression %s is projected more than once" e))
      else begin
        Hashtbl.add seen e ();
        None
      end)
    exprs

(* ------------------------------------------------------------------ *)
(* SQL008: implicit type coercions against the schema *)

let class_of_ty = function
  | Value.TInt | Value.TFloat -> `Num
  | Value.TText -> `Text
  | Value.TBool -> `Bool

let class_name = function `Num -> "numeric" | `Text -> "text" | `Bool -> "boolean"

let col_ty ~bindings = function
  | Ast.Col { table; column } -> (
    let of_schema (schema : Schema.t) =
      Option.map
        (fun i -> schema.Schema.columns.(i).Schema.col_ty)
        (Schema.find_column schema column)
    in
    match table with
    | Some t ->
      Option.bind
        (List.find_map
           (fun (alias, schema) ->
             if String.equal (String.lowercase_ascii alias) (String.lowercase_ascii t) then
               Some schema
             else None)
           bindings)
        (fun s -> Option.bind s of_schema)
    | None -> (
      match bindings with
      | [ (_, Some schema) ] -> of_schema schema
      | _ -> None))
  | _ -> None

let lint_coercions ~bindings e =
  let out = ref [] in
  let add d = out := d :: !out in
  let mismatch a b =
    (* column vs literal of another class, or two columns of different
       classes: the engine coerces at runtime and the index order no longer
       matches the comparison order *)
    let cls_of x =
      match col_ty ~bindings x with
      | Some ty -> Some (class_of_ty ty)
      | None -> (
        match x with
        | Ast.Lit v -> Option.map class_of_ty (Value.type_of v)
        | _ -> None)
    in
    let comparable x = match x with Ast.Col _ | Ast.Lit _ -> true | _ -> false in
    if comparable a && comparable b && (match (a, b) with Ast.Lit _, Ast.Lit _ -> false | _ -> true)
    then
      match (cls_of a, cls_of b) with
      | Some ca, Some cb when ca <> cb ->
        add
          (diag ~code:"SQL008" Warning
             (Printf.sprintf "implicit coercion: %s (%s) compared with %s (%s)"
                (Ast.expr_to_string a) (class_name ca) (Ast.expr_to_string b) (class_name cb)))
      | _ -> ()
  in
  let rec walk e =
    (match e with
    | Ast.Binop (op, a, b) when is_cmp op -> mismatch a b
    | Ast.Between { arg; low; high } -> mismatch arg low; mismatch arg high
    | Ast.In_list { arg; items; _ } -> List.iter (mismatch arg) items
    | Ast.Like { arg; pattern; _ } -> (
      (match col_ty ~bindings arg with
      | Some ty when class_of_ty ty <> `Text ->
        add
          (diag ~code:"SQL008" Warning
             (Printf.sprintf "LIKE over non-text column %s" (Ast.expr_to_string arg)))
      | _ -> ());
      match pattern with
      | Ast.Lit v when ty_class v <> None && ty_class v <> Some `Text ->
        add
          (diag ~code:"SQL008" Warning
             (Printf.sprintf "LIKE pattern %s is not text" (Ast.expr_to_string pattern)))
      | _ -> ())
    | _ -> ());
    match e with
    | Ast.Lit _ | Ast.Param _ | Ast.Col _ -> ()
    | Ast.Binop (_, a, b) -> walk a; walk b
    | Ast.Unop (_, a) -> walk a
    | Ast.Is_null { arg; _ } -> walk arg
    | Ast.Like { arg; pattern; _ } -> walk arg; walk pattern
    | Ast.In_list { arg; items; _ } -> walk arg; List.iter walk items
    | Ast.Between { arg; low; high } -> walk arg; walk low; walk high
    | Ast.Call { args; _ } -> List.iter walk args
  in
  walk e;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Entry points *)

let bindings_of env (from : Ast.table_ref list) =
  List.map
    (fun { Ast.table; alias } ->
      (Option.value ~default:table alias, env.find_schema table))
    from

let lint_select env (s : Ast.select) =
  let bindings = bindings_of env s.Ast.from in
  let conjuncts = match s.Ast.where with None -> [] | Some w -> split_and w in
  let where_exprs = Option.to_list s.Ast.where in
  let all_exprs =
    where_exprs @ Option.to_list s.Ast.having
    @ List.filter_map (function Ast.Proj (e, _) -> Some e | _ -> None) s.Ast.projections
  in
  lint_cartesian ~bindings ~conjuncts
  @ List.concat_map lint_predicate_shapes all_exprs
  @ lint_conjunction conjuncts
  @ (match s.Ast.having with Some h -> lint_conjunction (split_and h) | None -> [])
  @ lint_projections s
  @ List.concat_map (lint_coercions ~bindings) (where_exprs @ Option.to_list s.Ast.having)

let lint_query env (q : Ast.query) = List.concat_map (lint_select env) q

let lint_where_only env ~table where =
  match where with
  | None -> []
  | Some w ->
    let bindings = [ (table, env.find_schema table) ] in
    let conjuncts = split_and w in
    lint_predicate_shapes w @ lint_conjunction conjuncts @ lint_coercions ~bindings w

let lint_insert env ~table ~columns rows =
  match env.find_schema table with
  | None -> []
  | Some schema ->
    let positions =
      match columns with
      | Some cols -> List.map (Schema.find_column schema) cols
      | None -> List.mapi (fun i _ -> Some i) (Array.to_list schema.Schema.columns)
    in
    let rec zip ps es =
      match (ps, es) with p :: ps', e :: es' -> (p, e) :: zip ps' es' | _ -> []
    in
    List.concat_map
      (fun row ->
        List.concat_map
          (fun (pos, e) ->
            match (pos, e) with
            | Some i, Ast.Lit v when i < Array.length schema.Schema.columns -> (
              match Value.type_of v with
              | Some ty
                when class_of_ty ty <> class_of_ty schema.Schema.columns.(i).Schema.col_ty ->
                [
                  diag ~code:"SQL008" Warning
                    (Printf.sprintf "INSERT coerces %s into %s column %s"
                       (Value.to_sql_literal v)
                       (class_name (class_of_ty schema.Schema.columns.(i).Schema.col_ty))
                       schema.Schema.columns.(i).Schema.col_name);
                ]
              | _ -> [])
            | _ -> [])
          (zip positions row))
      rows

let lint_statement env (stmt : Ast.statement) =
  match stmt with
  | Ast.Select_stmt q -> lint_query env q
  | Ast.Update { table; where; _ } | Ast.Delete { table; where } ->
    lint_where_only env ~table where
  | Ast.Insert { table; columns; rows } -> lint_insert env ~table ~columns rows
  | Ast.Create_table _ | Ast.Create_index _ | Ast.Drop_table _ | Ast.Drop_index _ -> []
