(* Shared diagnostics core for the static analyzer (lintkit).

   Every pass reports findings as [t] values: a stable code (SQL001, ...),
   a severity, a one-line message, and an optional source location — the
   statement text, plan line, or XPath the finding is anchored to. The
   renderers (text and JSON) are the single output path for the CLI, CI
   gate, and tests, so a code's meaning lives here and nowhere else. *)

type severity = Info | Warning | Error

let severity_to_string = function Info -> "info" | Warning -> "warning" | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

type location = {
  loc_scheme : string option;  (* mapping scheme under lint *)
  loc_query : string option;  (* workload query id or XPath *)
  loc_statement : string option;  (* SQL statement text (plan-cache key) *)
  loc_file : string option;  (* source file (srclint findings) *)
  loc_line : int option;  (* 1-based line in loc_file *)
}

let no_location =
  { loc_scheme = None; loc_query = None; loc_statement = None; loc_file = None; loc_line = None }

type t = {
  code : string;  (* stable diagnostic code, e.g. "SQL002" *)
  severity : severity;
  message : string;
  location : location;
}

let make ?(location = no_location) ~code severity message =
  { code; severity; message; location }

let at ?scheme ?query ?statement ?file ?line () =
  { loc_scheme = scheme; loc_query = query; loc_statement = statement; loc_file = file;
    loc_line = line }

let with_location d location = { d with location }

(* ------------------------------------------------------------------ *)
(* The code registry: every code a pass can emit, with its default
   severity and the one-line description shown by `xmlstore lint --codes`
   and tabled in DESIGN.md. *)

let registry =
  [
    ("SQL000", Error, "generated SQL does not parse back (builder/renderer bug)");
    ("SQL001", Warning, "cartesian product: FROM tables not connected by any join predicate");
    ("SQL002", Warning, "non-sargable LIKE: literal pattern starts with a wildcard");
    ("SQL003", Warning, "non-sargable predicate: function-wrapped column compared to a constant");
    ("SQL004", Warning, "inline data literal in a predicate; bind it as a ?N parameter");
    ("SQL005", Warning, "contradictory predicate: the WHERE clause is provably empty");
    ("SQL006", Warning, "tautological predicate: conjunct is always true");
    ("SQL007", Warning, "duplicate projection: the same expression is projected twice");
    ("SQL008", Warning, "implicit type coercion: comparison against a differently-typed column");
    ("PLAN001", Warning, "sequential scan although an index covers the filtered column");
    ("PLAN002", Warning, "selection not pushed below a join");
    ("PLAN003", Warning, "join order risks row explosion (cross product of large inputs)");
    ("XP001", Warning, "statically-empty step: the path can never match the stored structure");
    ("XP002", Warning, "statically-empty predicate: the tested child/attribute never occurs");
    ("XP100", Info, "path is outside the SQL-translatable subset (native fallback)");
    (* srclint: source-level checks over the repo's own OCaml tree *)
    ("SL000", Error, "source file or allowlist does not parse (srclint cannot analyze it)");
    ("DS001", Info, "module-level mutable state, allowlisted with a domain: annotation (multicore worklist)");
    ("DS002", Error, "module-level mutable state outside srclint_allow.sexp (or its entry lacks domain:)");
    ("DS003", Warning, "stale srclint_allow.sexp entry: no matching module-level state exists");
    ("RD001", Error, "acquired file descriptor not closed on all paths (want Fun.protect or a closing handler)");
    ("RD002", Error, "catch-all exception handler can swallow Out_of_memory/Stack_overflow");
    ("RD003", Warning, "Unix read/write/fsync in a loop without EINTR retry");
    ("TM001", Error, "telemetry name emitted but absent from the declared series catalog");
    ("TM002", Warning, "declared series catalog entry is never emitted by any source file");
  ]

let describe code =
  List.find_map (fun (c, _, d) -> if String.equal c code then Some d else None) registry

let default_severity code =
  match List.find_map (fun (c, s, _) -> if String.equal c code then Some s else None) registry with
  | Some s -> s
  | None -> Warning

(* ------------------------------------------------------------------ *)
(* Aggregation *)

let sort diags =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank b.severity) (severity_rank a.severity) with
      | 0 -> compare a.code b.code
      | c -> c)
    diags

let max_severity = function
  | [] -> None
  | d :: rest ->
    Some
      (List.fold_left
         (fun acc x -> if severity_rank x.severity > severity_rank acc then x.severity else acc)
         d.severity rest)

let count_at_least sev diags =
  List.length (List.filter (fun d -> severity_rank d.severity >= severity_rank sev) diags)

(* ------------------------------------------------------------------ *)
(* Text rendering *)

let location_to_string loc =
  let file_part =
    match (loc.loc_file, loc.loc_line) with
    | Some f, Some l -> Some (Printf.sprintf "%s:%d" f l)
    | Some f, None -> Some f
    | None, _ -> None
  in
  let parts =
    List.filter_map Fun.id
      [
        file_part;
        Option.map (fun s -> "scheme=" ^ s) loc.loc_scheme;
        Option.map (fun q -> "query=" ^ q) loc.loc_query;
        Option.map (fun s -> "sql=" ^ s) loc.loc_statement;
      ]
  in
  String.concat " " parts

let to_string d =
  let loc = location_to_string d.location in
  Printf.sprintf "%s %s: %s%s" (severity_to_string d.severity) d.code d.message
    (if String.equal loc "" then "" else "\n    at " ^ loc)

let render_text diags = String.concat "\n" (List.map to_string (sort diags))

(* ------------------------------------------------------------------ *)
(* JSON rendering and parsing (round-trips through Obskit.Json) *)

module J = Obskit.Json

let location_to_json loc =
  J.Obj
    (List.filter_map Fun.id
       [
         Option.map (fun s -> ("scheme", J.Str s)) loc.loc_scheme;
         Option.map (fun q -> ("query", J.Str q)) loc.loc_query;
         Option.map (fun s -> ("statement", J.Str s)) loc.loc_statement;
         Option.map (fun f -> ("file", J.Str f)) loc.loc_file;
         Option.map (fun l -> ("line", J.Num (float_of_int l))) loc.loc_line;
       ])

let to_json d =
  J.Obj
    [
      ("code", J.Str d.code);
      ("severity", J.Str (severity_to_string d.severity));
      ("message", J.Str d.message);
      ("location", location_to_json d.location);
    ]

let list_to_json diags = J.List (List.map to_json diags)

let of_json j =
  let str field = Option.bind (J.member field j) J.to_str in
  match (str "code", str "severity", str "message") with
  | Some code, Some sev, Some message -> (
    match severity_of_string sev with
    | None -> Stdlib.Error (Printf.sprintf "unknown severity %S" sev)
    | Some severity ->
      let location =
        match J.member "location" j with
        | None -> no_location
        | Some loc ->
          let lstr f = Option.bind (J.member f loc) J.to_str in
          let lint f =
            Option.map int_of_float (Option.bind (J.member f loc) J.to_float)
          in
          { loc_scheme = lstr "scheme"; loc_query = lstr "query";
            loc_statement = lstr "statement"; loc_file = lstr "file"; loc_line = lint "line" }
      in
      Ok { code; severity; message; location })
  | _ -> Stdlib.Error "diagnostic object needs code, severity, and message fields"

let list_of_json j =
  match J.to_list j with
  | None -> Stdlib.Error "expected a JSON array of diagnostics"
  | Some items ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> ( match of_json x with Ok d -> go (d :: acc) rest | Stdlib.Error e -> Stdlib.Error e)
    in
    go [] items
