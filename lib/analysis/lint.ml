(* The lint driver: runs a query through a mapping scheme with the capture
   sink armed, then feeds everything that actually executed to the passes —
   each captured statement re-parsed into [Sql_ast] for the SQL pass, its
   physical plan to the plan pass — plus the XPath itself to the schema
   pass. This lints precisely what the scheme emits, not what we assume it
   emits. *)

module Db = Relstore.Database
module Mapping = Xmlshred.Mapping

type report = {
  rep_scheme : string;
  rep_query : string;
  rep_fallback : bool;
  rep_diags : Diag.t list;
}

let report_ok r = Diag.count_at_least Diag.Warning r.rep_diags = 0

(* ------------------------------------------------------------------ *)
(* Pieces *)

let env_of_db db = Sql_lint.env_of_catalog (Db.find_table db)

let lint_sql_text env text =
  match Relstore.Sql_parser.parse_script text with
  | exception (Relstore.Sql_parser.Parse_error _ as e) ->
    [
      Diag.make ~code:"SQL000" Diag.Error
        (Printf.sprintf "statement does not parse: %s" (Printexc.to_string e));
    ]
  | stmts -> List.concat_map (Sql_lint.lint_statement env) stmts

let lint_capture ~env ~catalog (c : Mapping.capture) =
  let locate d = Diag.with_location d (Diag.at ~statement:c.Mapping.cap_sql ()) in
  let sql_diags =
    match Relstore.Sql_parser.parse_statement c.Mapping.cap_sql with
    | exception (Relstore.Sql_parser.Parse_error _ as e) ->
      [
        Diag.make ~code:"SQL000" Diag.Error
          (Printf.sprintf "captured statement does not re-parse: %s" (Printexc.to_string e));
      ]
    | stmt -> Sql_lint.lint_statement env stmt
  in
  List.map locate (sql_diags @ Plan_lint.lint_plan catalog c.Mapping.cap_plan)

(* ------------------------------------------------------------------ *)
(* One query through one scheme *)

let lint_mapping_query ?oracle ~db ~doc ~mapping ~xpath () =
  let (module M : Mapping.MAPPING) = mapping in
  let path = Xpathkit.Parser.parse_path xpath in
  let xp_diags = match oracle with None -> [] | Some o -> Xpath_lint.lint_path o path in
  let result, captures = Mapping.collect_captures (fun () -> M.query db ~doc path) in
  let env = env_of_db db in
  let catalog = Db.catalog db in
  let exec_diags = List.concat_map (lint_capture ~env ~catalog) captures in
  let fallback_diags =
    if result.Mapping.fallback then
      [
        Diag.make ~code:"XP100" Diag.Info
          "path is outside the SQL-translatable subset; answered by native fallback";
      ]
    else []
  in
  let locate d =
    let loc = d.Diag.location in
    Diag.with_location d
      { loc with Diag.loc_scheme = Some M.id; loc_query = Some xpath }
  in
  {
    rep_scheme = M.id;
    rep_query = xpath;
    rep_fallback = result.Mapping.fallback;
    rep_diags = Diag.sort (List.map locate (xp_diags @ exec_diags @ fallback_diags));
  }

let lint_workload ?oracle ~db ~doc ~mapping queries =
  List.map (fun xpath -> lint_mapping_query ?oracle ~db ~doc ~mapping ~xpath ()) queries

(* ------------------------------------------------------------------ *)
(* Rendering *)

module J = Obskit.Json

let report_to_json r =
  J.Obj
    [
      ("scheme", J.Str r.rep_scheme);
      ("query", J.Str r.rep_query);
      ("fallback", J.Bool r.rep_fallback);
      ("diagnostics", Diag.list_to_json r.rep_diags);
    ]

let reports_to_json rs = J.List (List.map report_to_json rs)

let report_to_string r =
  let header =
    Printf.sprintf "%s %s [%s]%s" (if report_ok r then "ok " else "FAIL") r.rep_query r.rep_scheme
      (if r.rep_fallback then " (fallback)" else "")
  in
  match r.rep_diags with
  | [] -> header
  | ds -> header ^ "\n" ^ Diag.render_text ds

let reports_to_string rs = String.concat "\n" (List.map report_to_string rs)

let reports_max_severity rs = Diag.max_severity (List.concat_map (fun r -> r.rep_diags) rs)

let reports_failing rs = List.filter (fun r -> not (report_ok r)) rs
