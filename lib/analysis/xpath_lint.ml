(* XPath-vs-schema lints.

   Simulates a path, step by step, over a structural summary of the data —
   either a Strong DataGuide built from a stored document (exact: a label
   path is absent from the guide iff it is absent from the data) or a DTD
   element graph (exact for valid documents). A step whose result set is
   provably empty can never match anything; the whole query returns no
   rows no matter what the database holds. The analysis is conservative:
   any construct it cannot track (reverse axes, text()/comment() tests,
   position predicates) degrades to Unknown, which proves nothing.

   [provably_empty] over a DataGuide oracle is sound enough to act on: the
   Store uses it to short-circuit such queries to an empty result without
   touching the database. *)

module Dg = Xmlkit.Dataguide
module Dtd = Xmlkit.Dtd
module Xast = Xpathkit.Ast

let diag = Diag.make

(* ------------------------------------------------------------------ *)
(* Oracles *)

type schema_oracle = { dtd : Dtd.t; edges : (string * string * Dtd.quant) list }

type oracle = Guide of Dg.t | Schema of schema_oracle

let of_dataguide g = Guide g
let of_dtd dtd = Schema { dtd; edges = Dtd.edges dtd }

(* The abstract node-set a path prefix can reach. [Unknown] means the
   analysis gave up; it proves nothing from there on. *)
type state =
  | G_nodes of Dg.node list  (* positions in the dataguide trie *)
  | D_set of { doc : bool; elems : string list }  (* DTD: doc root and/or element types *)
  | Unknown

let is_attr_label l = String.length l > 0 && l.[0] = '@'

let g_children n = List.map snd n.Dg.dg_children

let g_elem_children n = List.filter (fun c -> not (is_attr_label c.Dg.dg_label)) (g_children n)

let rec g_descendants n =
  let kids = g_elem_children n in
  kids @ List.concat_map g_descendants kids

let dedup xs = List.sort_uniq compare xs

(* DTD: element types that can appear as a child of [e], honouring ANY
   content (simplify drops its edges, but ANY admits every declared
   element). *)
let d_children sch e =
  match Dtd.find_element sch.dtd e with
  | Some { Dtd.content = Dtd.Any; _ } -> Dtd.element_names sch.dtd
  | _ -> List.filter_map (fun (p, c, _) -> if String.equal p e then Some c else None) sch.edges

(* Child-transitive closure below a set of element types (strict). *)
let d_closure sch roots =
  let seen = Hashtbl.create 16 in
  let rec go e =
    List.iter
      (fun c ->
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.add seen c ();
          go c
        end)
      (d_children sch e)
  in
  List.iter go roots;
  Hashtbl.fold (fun e () acc -> e :: acc) seen []

let d_roots sch =
  match sch.dtd.Dtd.root with Some r -> [ r ] | None -> Dtd.element_names sch.dtd

(* ------------------------------------------------------------------ *)
(* One step of the simulation *)

let test_matches test label =
  match test with
  | Xast.Name n -> String.equal n label
  | Xast.Wildcard -> true
  | Xast.Text_test | Xast.Comment_test | Xast.Node_test -> false  (* handled by callers *)

let step_guide nodes (s : Xast.step) =
  let collect f = dedup (List.concat_map f nodes) in
  match (s.Xast.axis, s.Xast.test) with
  | Xast.Child, (Xast.Name _ | Xast.Wildcard) ->
    G_nodes
      (collect (fun n ->
           List.filter (fun c -> test_matches s.Xast.test c.Dg.dg_label) (g_elem_children n)))
  | Xast.Attribute, Xast.Name a ->
    let want = "@" ^ a in
    G_nodes
      (collect (fun n -> List.filter (fun c -> String.equal c.Dg.dg_label want) (g_children n)))
  | Xast.Attribute, Xast.Wildcard ->
    G_nodes (collect (fun n -> List.filter (fun c -> is_attr_label c.Dg.dg_label) (g_children n)))
  | Xast.Descendant, (Xast.Name _ | Xast.Wildcard) ->
    G_nodes
      (collect (fun n ->
           List.filter (fun c -> test_matches s.Xast.test c.Dg.dg_label) (g_descendants n)))
  | Xast.Descendant_or_self, Xast.Node_test ->
    G_nodes (dedup (nodes @ List.concat_map g_descendants nodes))
  | Xast.Descendant_or_self, (Xast.Name _ | Xast.Wildcard) ->
    G_nodes
      (List.filter
         (fun n -> test_matches s.Xast.test n.Dg.dg_label)
         (dedup (nodes @ List.concat_map g_descendants nodes)))
  | Xast.Self, Xast.Node_test -> G_nodes nodes
  | Xast.Self, (Xast.Name _ | Xast.Wildcard) ->
    G_nodes (List.filter (fun n -> test_matches s.Xast.test n.Dg.dg_label) nodes)
  | _ -> Unknown

let step_dtd sch ~doc ~elems (s : Xast.step) =
  (* element types one child step away from the current abstract set *)
  let child_types =
    dedup ((if doc then d_roots sch else []) @ List.concat_map (d_children sch) elems)
  in
  (* every element type strictly below the current set *)
  let strict_desc = dedup (child_types @ d_closure sch child_types) in
  let elems_only es = D_set { doc = false; elems = es } in
  match (s.Xast.axis, s.Xast.test) with
  | Xast.Child, (Xast.Name _ | Xast.Wildcard) ->
    elems_only (List.filter (test_matches s.Xast.test) child_types)
  | Xast.Attribute, Xast.Name a ->
    if
      List.exists
        (fun e ->
          List.exists (fun at -> String.equal at.Dtd.att_name a) (Dtd.find_attributes sch.dtd e))
        elems
    then Unknown  (* attributes are terminal: known nonempty, untracked *)
    else elems_only []
  | Xast.Attribute, Xast.Wildcard ->
    if List.exists (fun e -> Dtd.find_attributes sch.dtd e <> []) elems then Unknown
    else elems_only []
  | Xast.Descendant, (Xast.Name _ | Xast.Wildcard) ->
    elems_only (List.filter (test_matches s.Xast.test) strict_desc)
  | Xast.Descendant_or_self, Xast.Node_test ->
    D_set { doc; elems = dedup (elems @ strict_desc) }
  | Xast.Descendant_or_self, (Xast.Name _ | Xast.Wildcard) ->
    elems_only (List.filter (test_matches s.Xast.test) (dedup (elems @ strict_desc)))
  | Xast.Self, Xast.Node_test -> D_set { doc; elems }
  | Xast.Self, (Xast.Name _ | Xast.Wildcard) ->
    elems_only (List.filter (test_matches s.Xast.test) elems)
  | _ -> Unknown

let apply_step oracle state (s : Xast.step) =
  match (oracle, state) with
  | _, Unknown -> Unknown
  | Guide _, G_nodes nodes -> step_guide nodes s
  | Schema sch, D_set { doc; elems } -> step_dtd sch ~doc ~elems s
  | Guide _, D_set _ | Schema _, G_nodes _ -> Unknown

let state_is_empty = function
  | G_nodes [] | D_set { doc = false; elems = [] } -> true
  | G_nodes _ | D_set _ | Unknown -> false

let empty_like = function G_nodes _ -> G_nodes [] | _ -> D_set { doc = false; elems = [] }

(* ------------------------------------------------------------------ *)
(* Predicates: relative paths the predicate needs nonempty to ever hold *)

let required_paths (e : Xast.expr) =
  let rec go e =
    match e with
    | Xast.Path p when not p.Xast.absolute -> [ p ]
    | Xast.Binary (Xast.And, a, b) -> go a @ go b
    | Xast.Binary ((Xast.Eq | Xast.Neq | Xast.Lt | Xast.Le | Xast.Gt | Xast.Ge), a, b) ->
      (* a comparison against an empty node-set is false *)
      let side = function Xast.Path p when not p.Xast.absolute -> [ p ] | _ -> [] in
      side a @ side b
    | _ -> []
  in
  go e

let rec run_path oracle state steps =
  match steps with
  | [] -> state
  | s :: rest ->
    let state' = apply_step oracle state s in
    if state_is_empty state' then state'
    else
      let pred_kills =
        List.exists
          (fun pred ->
            List.exists
              (fun p -> state_is_empty (run_path oracle state' p.Xast.steps))
              (required_paths pred))
          s.Xast.predicates
      in
      run_path oracle (if pred_kills then empty_like state' else state') rest

let start_state = function
  | Guide g -> G_nodes [ g.Dg.dg_root ]
  | Schema _ -> D_set { doc = true; elems = [] }

(* ------------------------------------------------------------------ *)
(* Entry points *)

let oracle_name = function Guide _ -> "dataguide" | Schema _ -> "DTD"

let lint_path oracle (p : Xast.path) =
  (* Relative paths are checked from the root context too: Store queries
     always evaluate there. *)
  let rec go state prefix steps =
    match steps with
    | [] -> []
    | s :: rest -> (
      let shown = prefix ^ (if String.equal prefix "" then "" else "/") ^ Xast.step_to_string s in
      let state' = apply_step oracle state s in
      if state_is_empty state' then
        [
          diag ~code:"XP001" Warning
            (Printf.sprintf "step %s matches nothing in the %s: the result is statically empty"
               shown (oracle_name oracle));
        ]
      else
        let killed =
          List.filter
            (fun pred ->
              List.exists
                (fun rp -> state_is_empty (run_path oracle state' rp.Xast.steps))
                (required_paths pred))
            s.Xast.predicates
        in
        match killed with
        | pred :: _ ->
          [
            diag ~code:"XP002" Warning
              (Printf.sprintf
                 "predicate [%s] at %s tests a child/attribute that never occurs in the %s"
                 (Xast.expr_to_string pred) shown (oracle_name oracle));
          ]
        | [] -> go state' shown rest)
  in
  go (start_state oracle) "" p.Xast.steps

(* Every location path inside an expression, for whole-expression lint. *)
let rec paths_of_expr (e : Xast.expr) =
  match e with
  | Xast.Path p -> [ p ]
  | Xast.Binary (_, a, b) -> paths_of_expr a @ paths_of_expr b
  | Xast.Negate a | Xast.Filtered (a, _) -> paths_of_expr a
  | Xast.Fun_call (_, args) -> List.concat_map paths_of_expr args
  | Xast.Literal _ | Xast.Number _ | Xast.Var_path _ -> []

let lint_expr oracle (e : Xast.expr) =
  match e with
  | Xast.Path p -> lint_path oracle p
  | _ ->
    (* Inside a general expression, only absolute paths are root-anchored;
       relative ones depend on a context we do not model. *)
    List.concat_map
      (fun p -> if p.Xast.absolute then lint_path oracle p else [])
      (paths_of_expr e)

let provably_empty oracle (p : Xast.path) =
  state_is_empty (run_path oracle (start_state oracle) p.Xast.steps)

let provably_empty_expr oracle (e : Xast.expr) =
  match e with Xast.Path p -> provably_empty oracle p | _ -> false
