(* Physical-plan lints.

   Operates on the [Plan.t] trees the planner emits, with the catalog and
   [Stats] available for index and cardinality questions. These checks
   catch the regressions the SQL pass cannot see: a predicate that is
   sargable in the AST but still executed as a filter over a sequential
   scan, a selection left above a join, or a join order whose estimated
   intermediate result explodes. *)

module Ast = Relstore.Sql_ast
module Plan = Relstore.Plan
module Table = Relstore.Table
module Schema = Relstore.Schema
module Planner = Relstore.Planner

let diag = Diag.make

let default_explosion_threshold = 100_000

(* ------------------------------------------------------------------ *)
(* Helpers over plans *)

let rec aliases_of_plan = function
  | Plan.Seq_scan { alias; _ } | Plan.Index_scan { alias; _ } | Plan.Index_probes { alias; _ } ->
    [ alias ]
  | Plan.Filter (_, p) | Plan.Project (_, p) | Plan.Sort (_, p) | Plan.Distinct p
  | Plan.Limit (_, p) ->
    aliases_of_plan p
  | Plan.Aggregate { input; _ } -> aliases_of_plan input
  | Plan.Nl_join (a, b) | Plan.Staircase_join { left = a; right = b; _ } ->
    aliases_of_plan a @ aliases_of_plan b
  | Plan.Hash_join { build; probe; _ } -> aliases_of_plan build @ aliases_of_plan probe
  | Plan.Union_all ps -> List.concat_map aliases_of_plan ps

let is_constant e =
  Ast.fold_expr (fun acc sub -> acc || match sub with Ast.Col _ -> true | _ -> false) false e
  |> not

(* Columns of [alias] that a conjunct constrains in an index-usable way:
   comparison against a constant, an all-constant IN list, or a LIKE whose
   literal pattern yields a non-empty prefix. *)
let sargable_columns ~alias conjunct =
  let col_of = function
    | Ast.Col { table = None; column } -> Some column
    | Ast.Col { table = Some t; column } when String.equal t alias -> Some column
    | _ -> None
  in
  let is_cmp = function Ast.Eq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true | _ -> false in
  match conjunct with
  | Ast.Binop (op, a, b) when is_cmp op -> (
    match (col_of a, col_of b) with
    | Some c, None when is_constant b -> [ c ]
    | None, Some c when is_constant a -> [ c ]
    | _ -> [])
  | Ast.Between { arg; low; high } -> (
    match col_of arg with
    | Some c when is_constant low && is_constant high -> [ c ]
    | _ -> [])
  | Ast.In_list { negated = false; arg; items } -> (
    match col_of arg with
    | Some c when List.for_all is_constant items -> [ c ]
    | _ -> [])
  | Ast.Like { negated = false; arg; pattern = Ast.Lit (Relstore.Value.Text p) } -> (
    match col_of arg with
    | Some c when String.length p > 0 && p.[0] <> '%' && p.[0] <> '_' -> [ c ]
    | _ -> [])
  | _ -> []

let leading_index_exists table column =
  match Schema.find_column (Table.schema table) column with
  | None -> false
  | Some pos ->
    List.exists
      (fun ix -> Array.length ix.Table.key_columns > 0 && ix.Table.key_columns.(0) = pos)
      (Table.indexes table)

(* ------------------------------------------------------------------ *)
(* Cardinality estimation: the planner's statistics-backed plan estimator
   (histograms for literal-bounded index ranges, distinct counts for point
   lookups), shared so the lint's numbers match EXPLAIN ANALYZE's [est=]. *)

let estimate (cat : Planner.catalog) plan = Planner.estimate_plan cat plan

(* ------------------------------------------------------------------ *)
(* The pass *)

let lint_plan ?(explosion_threshold = default_explosion_threshold) (cat : Planner.catalog) plan =
  let out = ref [] in
  let add d = out := d :: !out in
  let rec walk = function
    | Plan.Seq_scan _ | Plan.Index_scan _ | Plan.Index_probes _ -> ()
    | Plan.Filter (e, child) ->
      (match child with
      | Plan.Seq_scan { table; alias } -> (
        (* PLAN001: the filter holds a sargable conjunct on an indexed
           column, yet the scan below is sequential *)
        match cat.Planner.find_table table with
        | None -> ()
        | Some t ->
          let missed =
            List.concat_map (sargable_columns ~alias) (Sql_lint.split_and e)
            |> List.filter (leading_index_exists t)
            |> List.sort_uniq compare
          in
          if missed <> [] then
            add
              (diag ~code:"PLAN001" Warning
                 (Printf.sprintf
                    "sequential scan of %s although an index covers %s (predicate %s)" table
                    (String.concat ", " missed) (Ast.expr_to_string e))))
      | Plan.Nl_join (a, b)
      | Plan.Hash_join { build = a; probe = b; _ }
      | Plan.Staircase_join { left = a; right = b; _ } ->
        (* PLAN002: every alias the filter mentions lives on one join
           side, so the selection could run below the join *)
        let quals = Ast.referenced_tables e in
        let side p = List.for_all (fun q -> List.mem q (aliases_of_plan p)) quals in
        if quals <> [] && (side a || side b) then
          add
            (diag ~code:"PLAN002" Warning
               (Printf.sprintf "selection %s not pushed below the join (touches only one side)"
                  (Ast.expr_to_string e)))
      | _ -> ());
      walk child
    | Plan.Project (_, p) | Plan.Sort (_, p) | Plan.Distinct p | Plan.Limit (_, p) -> walk p
    | Plan.Aggregate { input; _ } -> walk input
    | Plan.Nl_join (a, b) as j ->
      (* PLAN003: an unconstrained cross product of non-trivial inputs *)
      let la = estimate cat a and lb = estimate cat b in
      if la > 1 && lb > 1 && la * lb > explosion_threshold then
        add
          (diag ~code:"PLAN003" Warning
             (Printf.sprintf
                "nested-loop join multiplies ~%d x ~%d rows (threshold %d): %s" la lb
                explosion_threshold (Plan.node_line j)));
      walk a;
      walk b
    | Plan.Hash_join { build; probe; _ } -> walk build; walk probe
    | Plan.Staircase_join { left; right; _ } ->
      (* the structural join is the fix for PLAN003, never a trigger *)
      walk left;
      walk right
    | Plan.Union_all ps -> List.iter walk ps
  in
  walk plan;
  List.rev !out
