(** SQL AST lints (codes SQL001–SQL008).

    Static checks over {!Relstore.Sql_ast} statements: cartesian products,
    non-sargable predicate shapes, inline data literals that bypass [?N]
    binding, contradiction/tautology folding, duplicate projections, and
    implicit type coercions against the schema. *)

type env = { find_schema : string -> Relstore.Schema.t option }

val env_of_schemas : Relstore.Schema.t list -> env
val env_of_catalog : (string -> Relstore.Table.t option) -> env
val empty_env : env

val lint_select : env -> Relstore.Sql_ast.select -> Diag.t list
val lint_query : env -> Relstore.Sql_ast.query -> Diag.t list
val lint_statement : env -> Relstore.Sql_ast.statement -> Diag.t list

val split_and : Relstore.Sql_ast.expr -> Relstore.Sql_ast.expr list
(** The WHERE conjunction, flattened. *)

val lint_conjunction : Relstore.Sql_ast.expr list -> Diag.t list
(** Just the contradiction/tautology pass (SQL005/SQL006) over a
    conjunction — exposed for the qcheck soundness property. *)
