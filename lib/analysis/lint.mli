(** The lint driver.

    Executes a query through a mapping scheme with the capture sink armed
    and lints what actually ran: every captured statement is re-parsed
    into {!Relstore.Sql_ast} for the SQL pass and its physical plan goes
    to the plan pass; the XPath itself is checked against the schema
    oracle. Untranslatable paths get an [XP100] info diagnostic. *)

type report = {
  rep_scheme : string;
  rep_query : string;
  rep_fallback : bool;
  rep_diags : Diag.t list;
}

val report_ok : report -> bool
(** No diagnostic at warning severity or above. *)

val env_of_db : Relstore.Database.t -> Sql_lint.env

val lint_sql_text : Sql_lint.env -> string -> Diag.t list
(** Parse and lint a raw SQL script ([SQL000] error if it does not
    parse). *)

val lint_capture :
  env:Sql_lint.env ->
  catalog:Relstore.Planner.catalog ->
  Xmlshred.Mapping.capture ->
  Diag.t list

val lint_mapping_query :
  ?oracle:Xpath_lint.oracle ->
  db:Relstore.Database.t ->
  doc:int ->
  mapping:Xmlshred.Mapping.mapping ->
  xpath:string ->
  unit ->
  report

val lint_workload :
  ?oracle:Xpath_lint.oracle ->
  db:Relstore.Database.t ->
  doc:int ->
  mapping:Xmlshred.Mapping.mapping ->
  string list ->
  report list

val report_to_json : report -> Obskit.Json.t
val reports_to_json : report list -> Obskit.Json.t
val report_to_string : report -> string
val reports_to_string : report list -> string
val reports_max_severity : report list -> Diag.severity option
val reports_failing : report list -> report list
