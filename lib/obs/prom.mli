(** Prometheus text exposition (format 0.0.4): renderer and linter. *)

type series = { s_labels : (string * string) list; s_value : float }

type histo_series = {
  h_labels : (string * string) list;
  h_buckets : (float * int) list;  (** le upper bound, cumulative count *)
  h_sum : float;
  h_count : int;
}

type metric =
  | Counter of { m_name : string; m_help : string; m_series : series list }
  | Gauge of { m_name : string; m_help : string; m_series : series list }
  | Histogram of { m_name : string; m_help : string; m_histos : histo_series list }

val sanitize_name : string -> string
(** Map an internal metric name (dots, dashes) onto the Prometheus name
    grammar. *)

val render : metric list -> string
(** One HELP/TYPE block per metric followed by its samples; histogram
    series get [_bucket]/[_sum]/[_count] with a terminal [+Inf] bucket. *)

val lint : string -> (unit, string list) result
(** Check an exposition: every sample announced by a preceding TYPE, HELP
    present, no duplicate HELP/TYPE, no duplicate series, numeric values. *)
