(* Prometheus text exposition format (version 0.0.4): render a metric
   list as HELP/TYPE blocks with label-qualified samples, and lint an
   exposition back (check.sh gates on the linter). *)

type series = { s_labels : (string * string) list; s_value : float }

type histo_series = {
  h_labels : (string * string) list;
  h_buckets : (float * int) list;  (* le upper bound, cumulative count *)
  h_sum : float;
  h_count : int;
}

type metric =
  | Counter of { m_name : string; m_help : string; m_series : series list }
  | Gauge of { m_name : string; m_help : string; m_series : series list }
  | Histogram of { m_name : string; m_help : string; m_histos : histo_series list }

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

(* Map an internal metric name (dots, dashes) onto the Prometheus grammar
   [a-zA-Z_:][a-zA-Z0-9_:]*. *)
let sanitize_name s =
  if s = "" then "_"
  else begin
    let buf = Buffer.create (String.length s) in
    String.iteri
      (fun i c ->
        if (if i = 0 then is_name_start c else is_name_char c) then Buffer.add_char buf c
        else Buffer.add_char buf '_')
      s;
    Buffer.contents buf
  end

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help h =
  let buf = Buffer.create (String.length h) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    h;
  Buffer.contents buf

let labels_to_string = function
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value v)) kvs)
    ^ "}"

let value_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let le_to_string le =
  if le = infinity then "+Inf" else value_to_string le

let render metrics =
  let buf = Buffer.create 2048 in
  let header name help ty =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name ty)
  in
  let sample name labels v =
    Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name (labels_to_string labels) (value_to_string v))
  in
  List.iter
    (fun m ->
      match m with
      | Counter { m_name; m_help; m_series } ->
        let name = sanitize_name m_name in
        header name m_help "counter";
        List.iter (fun s -> sample name s.s_labels s.s_value) m_series
      | Gauge { m_name; m_help; m_series } ->
        let name = sanitize_name m_name in
        header name m_help "gauge";
        List.iter (fun s -> sample name s.s_labels s.s_value) m_series
      | Histogram { m_name; m_help; m_histos } ->
        let name = sanitize_name m_name in
        header name m_help "histogram";
        List.iter
          (fun h ->
            List.iter
              (fun (le, cum) ->
                sample (name ^ "_bucket")
                  (h.h_labels @ [ ("le", le_to_string le) ])
                  (float_of_int cum))
              h.h_buckets;
            sample (name ^ "_bucket")
              (h.h_labels @ [ ("le", "+Inf") ])
              (float_of_int h.h_count);
            sample (name ^ "_sum") h.h_labels h.h_sum;
            sample (name ^ "_count") h.h_labels (float_of_int h.h_count))
          m_histos)
    metrics;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Linter: the checks check.sh gates on.
   - every sample belongs to a metric announced by a preceding TYPE line
     (histogram samples may use the _bucket/_sum/_count suffixes);
   - every TYPE has a HELP, and neither is repeated;
   - no duplicate series (same name + label set);
   - sample values are numbers. *)

let strip_suffix name =
  let try_suffix suf =
    let n = String.length name and m = String.length suf in
    if n > m && String.sub name (n - m) m = suf then Some (String.sub name 0 (n - m)) else None
  in
  match try_suffix "_bucket" with
  | Some base -> base
  | None -> (
    match try_suffix "_sum" with
    | Some base -> base
    | None -> ( match try_suffix "_count" with Some base -> base | None -> name))

let lint exposition =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let helps = Hashtbl.create 16 in
  let types = Hashtbl.create 16 in
  let seen_series = Hashtbl.create 64 in
  let lines = String.split_on_char '\n' exposition in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
        match String.index_from_opt line 7 ' ' with
        | None -> err "line %d: HELP without text" lineno
        | Some sp ->
          let name = String.sub line 7 (sp - 7) in
          if Hashtbl.mem helps name then err "line %d: duplicate HELP for %s" lineno name;
          Hashtbl.replace helps name ()
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.index_from_opt line 7 ' ' with
        | None -> err "line %d: TYPE without a type" lineno
        | Some sp ->
          let name = String.sub line 7 (sp - 7) in
          let ty = String.sub line (sp + 1) (String.length line - sp - 1) in
          if not (List.mem ty [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]) then
            err "line %d: unknown type %s" lineno ty;
          if Hashtbl.mem types name then err "line %d: duplicate TYPE for %s" lineno name;
          if not (Hashtbl.mem helps name) then err "line %d: TYPE %s without preceding HELP" lineno name;
          Hashtbl.replace types name ()
      end
      else if line.[0] = '#' then ()  (* free-form comment *)
      else begin
        (* sample line: name[{labels}] value *)
        let name_end = ref 0 in
        while !name_end < String.length line && is_name_char line.[!name_end] do
          incr name_end
        done;
        if !name_end = 0 then err "line %d: malformed sample %S" lineno line
        else begin
          let name = String.sub line 0 !name_end in
          let base = strip_suffix name in
          if not (Hashtbl.mem types name || Hashtbl.mem types base) then
            err "line %d: sample %s has no preceding TYPE" lineno name;
          (* split off the value: the substring after the last space *)
          match String.rindex_opt line ' ' with
          | None -> err "line %d: sample without a value" lineno
          | Some sp ->
            let series = String.sub line 0 sp in
            let value = String.sub line (sp + 1) (String.length line - sp - 1) in
            if value <> "+Inf" && value <> "-Inf" && value <> "NaN"
               && float_of_string_opt value = None then
              err "line %d: non-numeric value %S" lineno value;
            if Hashtbl.mem seen_series series then
              err "line %d: duplicate series %s" lineno series;
            Hashtbl.replace seen_series series ()
        end
      end)
    lines;
  match List.rev !errors with [] -> Ok () | es -> Error es
