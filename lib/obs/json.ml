(* Minimal JSON: enough to render exporter output and to parse it back for
   validation (check.sh round-trips every exported trace through this
   parser). Not a general-purpose library: no streaming, strings are
   OCaml strings (escapes are decoded, \uXXXX to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Rendering *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f
  (* 12 significant digits keep sub-microsecond precision for timestamps
     up to ~1e9 us (a quarter hour of uptime) without decorating every
     integer with trailing zeros *)

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        render buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        render buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Bad of string

let parse (src : string) : (t, string) result =
  let pos = ref 0 in
  let n = String.length src in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "%s at offset %d" m !pos))) fmt in
  let peek () = if !pos >= n then '\000' else src.[!pos] in
  let skip_ws () =
    while !pos < n && (match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if peek () = c then incr pos else fail "expected %C, found %C" c (peek ())
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub src !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match src.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (if !pos >= n then fail "unterminated escape";
         match src.[!pos] with
         | '"' -> Buffer.add_char buf '"'; incr pos
         | '\\' -> Buffer.add_char buf '\\'; incr pos
         | '/' -> Buffer.add_char buf '/'; incr pos
         | 'n' -> Buffer.add_char buf '\n'; incr pos
         | 't' -> Buffer.add_char buf '\t'; incr pos
         | 'r' -> Buffer.add_char buf '\r'; incr pos
         | 'b' -> Buffer.add_char buf '\b'; incr pos
         | 'f' -> Buffer.add_char buf '\012'; incr pos
         | 'u' ->
           if !pos + 4 >= n then fail "bad \\u escape";
           let hex = String.sub src (!pos + 1) 4 in
           let code = try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape" in
           (* UTF-8 encode the BMP code point *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end;
           pos := !pos + 5
         | c -> fail "bad escape \\%C" c);
        go ()
      | c -> Buffer.add_char buf c; incr pos; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char src.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub src start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin incr pos; Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> incr pos; members ((k, v) :: acc)
          | '}' -> incr pos; Obj (List.rev ((k, v) :: acc))
          | c -> fail "expected ',' or '}', found %C" c
        in
        members []
      end
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin incr pos; List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> incr pos; items (v :: acc)
          | ']' -> incr pos; List (List.rev (v :: acc))
          | c -> fail "expected ',' or ']', found %C" c
        in
        items []
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing content at offset %d" !pos)
    else Ok v
  with Bad m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors used by the validators *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
