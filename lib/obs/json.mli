(** Minimal JSON renderer and parser — just enough to emit exporter output
    and to parse it back for validation. Strings are OCaml strings; escapes
    are decoded ([\uXXXX] to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val parse : string -> (t, string) result

(** {1 Accessors} *)

val member : string -> t -> t option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
