(* Span exporters: Chrome trace_event JSON (loadable in chrome://tracing
   and Perfetto), a human-readable span tree, and the validators check.sh
   and the property tests run over exporter output. *)

let us_of_ns ns = float_of_int ns /. 1e3

(* ------------------------------------------------------------------ *)
(* Chrome trace_event format: one complete ("ph":"X") event per span.
   Timestamps are microseconds; each trace becomes one thread id so
   Perfetto lays traces out as parallel tracks. *)

let chrome_event (s : Trace.span) =
  let args =
    List.map (fun (k, v) -> (k, Json.Str v)) s.Trace.attrs
    @ [ ("span_id", Json.Num (float_of_int s.Trace.span_id)) ]
    @
    match s.Trace.parent_id with
    | Some p -> [ ("parent_id", Json.Num (float_of_int p)) ]
    | None -> []
  in
  Json.Obj
    [
      ("name", Json.Str s.Trace.name);
      ("cat", Json.Str "xmlstore");
      ("ph", Json.Str "X");
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int s.Trace.trace_id));
      ("ts", Json.Num (us_of_ns s.Trace.start_ns));
      ("dur", Json.Num (us_of_ns (max 0 s.Trace.dur_ns)));
      ("args", Json.Obj args);
    ]

let to_chrome_json spans =
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map chrome_event spans));
         ("displayTimeUnit", Json.Str "ms");
       ])

(* ------------------------------------------------------------------ *)
(* Pretty printer: spans grouped by trace, indented by parent link, with
   durations in ms and attributes inline. *)

let pretty spans =
  let buf = Buffer.create 1024 in
  let traces =
    List.fold_left
      (fun acc (s : Trace.span) ->
        match acc with
        | (tid, ss) :: rest when tid = s.Trace.trace_id -> (tid, s :: ss) :: rest
        | _ -> (s.Trace.trace_id, [ s ]) :: acc)
      [] spans
    |> List.rev_map (fun (tid, ss) -> (tid, List.rev ss))
  in
  List.iter
    (fun (tid, ss) ->
      Buffer.add_string buf (Printf.sprintf "trace %d (%d span%s)\n" tid (List.length ss)
                               (if List.length ss = 1 then "" else "s"));
      let children parent =
        List.filter (fun (s : Trace.span) -> s.Trace.parent_id = parent) ss
      in
      let rec walk indent (s : Trace.span) =
        let attrs =
          match s.Trace.attrs with
          | [] -> ""
          | kvs ->
            " "
            ^ String.concat " "
                (List.map
                   (fun (k, v) ->
                     let v =
                       if String.length v > 60 then String.sub v 0 57 ^ "..." else v
                     in
                     Printf.sprintf "%s=%s" k v)
                   kvs)
        in
        Buffer.add_string buf
          (Printf.sprintf "%s%-28s %8.3f ms%s\n"
             (String.make indent ' ')
             s.Trace.name
             (float_of_int (max 0 s.Trace.dur_ns) /. 1e6)
             attrs);
        List.iter (walk (indent + 2)) (children (Some s.Trace.span_id))
      in
      (* roots: no parent, or parent fell out of the ring buffer *)
      let ids = List.map (fun (s : Trace.span) -> s.Trace.span_id) ss in
      List.iter
        (fun (s : Trace.span) ->
          match s.Trace.parent_id with
          | None -> walk 2 s
          | Some p when not (List.mem p ids) -> walk 2 s
          | Some _ -> ())
        ss)
    traces;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Validators *)

(* Every finished span must nest inside its parent's interval. *)
let check_well_nested spans =
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace.span) -> Hashtbl.replace by_id (s.Trace.trace_id, s.Trace.span_id) s)
    spans;
  let bad =
    List.find_opt
      (fun (s : Trace.span) ->
        match s.Trace.parent_id with
        | None -> false
        | Some pid -> (
          match Hashtbl.find_opt by_id (s.Trace.trace_id, pid) with
          | None -> false  (* parent fell out of the ring buffer *)
          | Some p ->
            s.Trace.start_ns < p.Trace.start_ns
            || s.Trace.start_ns + s.Trace.dur_ns > p.Trace.start_ns + p.Trace.dur_ns))
      spans
  in
  match bad with
  | None -> Ok ()
  | Some s ->
    Error
      (Printf.sprintf "span %d (%s) escapes its parent %d's interval" s.Trace.span_id
         s.Trace.name
         (Option.value ~default:(-1) s.Trace.parent_id))

(* Parse an exported file and check that, per thread, event intervals are
   properly nested (no partial overlap). Returns the event count. *)
let validate_chrome_json src =
  match Json.parse src with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok root -> (
    match Option.bind (Json.member "traceEvents" root) Json.to_list with
    | None -> Error "missing traceEvents array"
    | Some events ->
      let parsed =
        List.map
          (fun ev ->
            let field name conv =
              match Option.bind (Json.member name ev) conv with
              | Some v -> Ok v
              | None -> Error (Printf.sprintf "event missing %s" name)
            in
            match
              (field "name" Json.to_str, field "ts" Json.to_float, field "dur" Json.to_float,
               field "tid" Json.to_float, field "ph" Json.to_str)
            with
            | Ok name, Ok ts, Ok dur, Ok tid, Ok ph -> Ok (name, ts, dur, int_of_float tid, ph)
            | (Error _ as e), _, _, _, _
            | _, (Error _ as e), _, _, _
            | _, _, (Error _ as e), _, _
            | _, _, _, (Error _ as e), _
            | _, _, _, _, (Error _ as e) -> e)
          events
      in
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | Ok ev :: rest -> collect (ev :: acc) rest
        | Error e :: _ -> Error e
      in
      match collect [] parsed with
      | Error e -> Error e
      | Ok evs ->
        if List.exists (fun (_, _, _, _, ph) -> ph <> "X") evs then
          Error "unexpected event phase (only complete 'X' events are emitted)"
        else begin
          let tids = List.sort_uniq compare (List.map (fun (_, _, _, tid, _) -> tid) evs) in
          let eps = 0.0015 (* us; one rounding step of the %.3f timestamps *) in
          let check_tid tid =
            let mine =
              List.filter (fun (_, _, _, t, _) -> t = tid) evs
              |> List.sort (fun (_, ts1, d1, _, _) (_, ts2, d2, _, _) ->
                     if ts1 <> ts2 then compare ts1 ts2 else compare d2 d1)
            in
            (* sweep with an open-interval stack: each event must fit inside
               the innermost still-open interval *)
            let stack = ref [] in
            List.fold_left
              (fun acc (name, ts, dur, _, _) ->
                match acc with
                | Error _ as e -> e
                | Ok () ->
                  let rec popped () =
                    match !stack with
                    | (_, e) :: rest when e <= ts +. eps -> stack := rest; popped ()
                    | _ -> ()
                  in
                  popped ();
                  let fits =
                    match !stack with
                    | [] -> true
                    | (_, e) :: _ -> ts +. dur <= e +. eps
                  in
                  if not fits then
                    Error (Printf.sprintf "event %S on tid %d overlaps its enclosing span" name tid)
                  else begin
                    stack := (ts, ts +. dur) :: !stack;
                    Ok ()
                  end)
              (Ok ()) mine
          in
          let rec all = function
            | [] -> Ok (List.length evs)
            | tid :: rest -> ( match check_tid tid with Ok () -> all rest | Error e -> Error e)
          in
          all tids
        end)
