(** Span exporters and the validators run over their output. *)

val to_chrome_json : Trace.span list -> string
(** Chrome [trace_event] JSON (one complete ["ph":"X"] event per span,
    microsecond timestamps, one thread id per trace). Loadable in
    chrome://tracing and Perfetto. *)

val pretty : Trace.span list -> string
(** Human-readable span trees, grouped by trace, durations in ms. *)

val check_well_nested : Trace.span list -> (unit, string) result
(** Every span whose parent is present must lie inside the parent's
    interval. *)

val validate_chrome_json : string -> (int, string) result
(** Parse an exported file with {!Json.parse} and check per-thread proper
    nesting of event intervals. Returns the event count. *)
