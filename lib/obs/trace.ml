(* Hierarchical spans over the monotonic clock, collected into a bounded
   ring buffer. The ambient open-span stack is dynamically scoped *per
   domain* ([Domain.DLS]), so instrumented layers nest without threading
   a context value through every signature and pool reader domains trace
   independently; the ring of retained spans is the one shared structure
   and sits behind [ring_mutex]. Trace/span ids come from atomics so ids
   stay unique across domains.

   Sampling is decided once per trace, at the root span:
     - Off:       with_span is a single branch and a tail call; no
                  allocation, no clock read.
     - Always:    every trace is retained.
     - Ratio p:   a deterministic xorshift PRNG (per-domain state) keeps
                  roughly p of the traces; unsampled traces pay only
                  depth bookkeeping.
     - Slow_only t: every trace is recorded, but only those whose root
                  span lasts at least t ns are retained at the end.

   Spans of a trace are buffered domain-locally until the root finishes
   (required by Slow_only) and then flushed to the ring under the mutex;
   a crashed operation still flushes because with_span finishes spans in
   a finalizer. *)

type span = {
  trace_id : int;
  span_id : int;
  parent_id : int option;
  name : string;
  mutable attrs : (string * string) list;
  start_ns : int;
  mutable dur_ns : int;  (* -1 while open *)
}

type sampling = Off | Always | Ratio of float | Slow_only of int

let sampling_mode = Atomic.make Off

(* ring buffer of retained spans, guarded by [ring_mutex] *)
let ring_mutex = Mutex.create ()
let capacity = Atomic.make 8192
let ring : span option array ref = ref (Array.make (Atomic.get capacity) None)
let ring_pos = ref 0
let ring_count = ref 0
let dropped = Atomic.make 0

(* Per-domain trace state: with_span nesting, the open-span stack, and
   the finished-span buffer of the in-flight trace. *)
type tls = {
  mutable depth : int;  (* with_span nesting, counted even when not recording *)
  mutable recording_now : bool;
  mutable cur_trace_id : int;
  mutable stack : span list;  (* open spans, innermost first *)
  mutable trace_buf : span list;  (* finished spans, reverse order *)
  mutable trace_len : int;
  mutable rng : int;  (* xorshift64* state for Ratio sampling *)
}

let tls : tls Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        depth = 0;
        recording_now = false;
        cur_trace_id = 0;
        stack = [];
        trace_buf = [];
        trace_len = 0;
        (* decorrelate sampling across domains while keeping the main
           domain's sequence deterministic (its id is 0) *)
        rng = 0x1E3779B97F4A7C15 lxor ((Domain.self () :> int) * 0x9E3779B9);
      })

let next_trace = Atomic.make 0
let next_span = Atomic.make 0

(* xorshift64*: cheap, deterministic, good enough for trace sampling *)
let rng_float () =
  let t = Domain.DLS.get tls in
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  t.rng <- x;
  float_of_int (x land max_int) /. float_of_int max_int

let enabled () = Atomic.get sampling_mode <> Off
let recording () = (Domain.DLS.get tls).recording_now
let sampling () = Atomic.get sampling_mode
let set_sampling m = Atomic.set sampling_mode m

let set_capacity n =
  let n = max 1 n in
  Mutex.protect ring_mutex (fun () ->
      Atomic.set capacity n;
      ring := Array.make n None;
      ring_pos := 0;
      ring_count := 0)

(* caller holds ring_mutex *)
let push_ring s =
  let cap = Atomic.get capacity in
  !ring.(!ring_pos) <- Some s;
  ring_pos := (!ring_pos + 1) mod cap;
  if !ring_count < cap then incr ring_count

let buffer_span t s =
  if t.trace_len < Atomic.get capacity then begin
    t.trace_buf <- s :: t.trace_buf;
    t.trace_len <- t.trace_len + 1
  end
  else Atomic.incr dropped

let begin_span t name attrs =
  let span_id = Atomic.fetch_and_add next_span 1 + 1 in
  let parent_id = match t.stack with [] -> None | p :: _ -> Some p.span_id in
  let s =
    { trace_id = t.cur_trace_id; span_id; parent_id; name; attrs;
      start_ns = Clock.now_ns (); dur_ns = -1 }
  in
  t.stack <- s :: t.stack;
  s

let finish_span t s =
  s.dur_ns <- Clock.now_ns () - s.start_ns;
  (match t.stack with _ :: rest -> t.stack <- rest | [] -> ());
  buffer_span t s

let finish_trace t root =
  let keep =
    match Atomic.get sampling_mode with Slow_only thr -> root.dur_ns >= thr | _ -> true
  in
  if keep then begin
    let spans = List.rev t.trace_buf in
    Mutex.protect ring_mutex (fun () -> List.iter push_ring spans)
  end;
  t.trace_buf <- [];
  t.trace_len <- 0;
  t.stack <- [];
  t.recording_now <- false

let sample_decision () =
  match Atomic.get sampling_mode with
  | Off -> false
  | Always | Slow_only _ -> true
  | Ratio p -> rng_float () < p

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else
    let t = Domain.DLS.get tls in
    if t.depth = 0 then begin
      (* root span: decide whether this trace records at all *)
      t.recording_now <- sample_decision ();
      if t.recording_now then begin
        t.cur_trace_id <- Atomic.fetch_and_add next_trace 1 + 1;
        let s = begin_span t name attrs in
        t.depth <- t.depth + 1;
        Fun.protect
          ~finally:(fun () ->
            t.depth <- t.depth - 1;
            finish_span t s;
            finish_trace t s)
          f
      end
      else begin
        t.depth <- t.depth + 1;
        Fun.protect
          ~finally:(fun () ->
            t.depth <- t.depth - 1;
            t.recording_now <- false)
          f
      end
    end
    else if t.recording_now then begin
      let s = begin_span t name attrs in
      t.depth <- t.depth + 1;
      Fun.protect
        ~finally:(fun () ->
          t.depth <- t.depth - 1;
          finish_span t s)
        f
    end
    else begin
      t.depth <- t.depth + 1;
      Fun.protect ~finally:(fun () -> t.depth <- t.depth - 1) f
    end

let current () = match (Domain.DLS.get tls).stack with [] -> None | s :: _ -> Some s

let add_attr key value =
  match (Domain.DLS.get tls).stack with
  | [] -> ()
  | s :: _ -> s.attrs <- s.attrs @ [ (key, value) ]

(* Record an already-measured interval as a finished span (used to bridge
   the EXPLAIN ANALYZE operator tree into the trace). Returns the span id
   so callers can parent further synthesized spans under it. *)
let emit ?(attrs = []) ?parent ~start_ns ~dur_ns name =
  let t = Domain.DLS.get tls in
  let span_id = Atomic.fetch_and_add next_span 1 + 1 in
  if t.recording_now then begin
    let parent_id =
      match parent with
      | Some _ -> parent
      | None -> ( match t.stack with [] -> None | p :: _ -> Some p.span_id)
    in
    buffer_span t
      { trace_id = t.cur_trace_id; span_id; parent_id; name; attrs;
        start_ns; dur_ns = max 0 dur_ns }
  end;
  span_id

let spans () =
  Mutex.protect ring_mutex (fun () ->
      let cap = Atomic.get capacity in
      let start = (!ring_pos - !ring_count + cap * 2) mod cap in
      List.init !ring_count (fun i ->
          match !ring.((start + i) mod cap) with
          | Some s -> s
          | None -> assert false))

let dropped_count () = Atomic.get dropped

let clear () =
  Mutex.protect ring_mutex (fun () ->
      Array.fill !ring 0 (Atomic.get capacity) None;
      ring_pos := 0;
      ring_count := 0;
      Atomic.set dropped 0)
