(* Hierarchical spans over the monotonic clock, collected into a bounded
   ring buffer. Ambient and single-threaded, like the engine itself: the
   current open-span stack is dynamically scoped, so instrumented layers
   nest without threading a context value through every signature.

   Sampling is decided once per trace, at the root span:
     - Off:       with_span is a single branch and a tail call; no
                  allocation, no clock read.
     - Always:    every trace is retained.
     - Ratio p:   a deterministic xorshift PRNG keeps roughly p of the
                  traces; unsampled traces pay only depth bookkeeping.
     - Slow_only t: every trace is recorded, but only those whose root
                  span lasts at least t ns are retained at the end.

   Spans of a trace are buffered until the root finishes (required by
   Slow_only) and then flushed to the ring; a crashed operation still
   flushes because with_span finishes spans in a finalizer. *)

type span = {
  trace_id : int;
  span_id : int;
  parent_id : int option;
  name : string;
  mutable attrs : (string * string) list;
  start_ns : int;
  mutable dur_ns : int;  (* -1 while open *)
}

type sampling = Off | Always | Ratio of float | Slow_only of int

let sampling_mode = ref Off

(* ring buffer of retained spans *)
let capacity = ref 8192
let ring : span option array ref = ref (Array.make !capacity None)
let ring_pos = ref 0
let ring_count = ref 0
let dropped = ref 0

(* current trace *)
let depth = ref 0  (* with_span nesting, counted even when not recording *)
let recording_now = ref false
let cur_trace_id = ref 0
let stack : span list ref = ref []  (* open spans, innermost first *)
let trace_buf : span list ref = ref []  (* finished spans, reverse order *)
let trace_len = ref 0

let next_trace = ref 0
let next_span = ref 0

(* xorshift64*: cheap, deterministic, good enough for trace sampling *)
let rng = ref 0x1E3779B97F4A7C15
let rng_float () =
  let x = !rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  rng := x;
  float_of_int (x land max_int) /. float_of_int max_int

let enabled () = !sampling_mode <> Off
let recording () = !recording_now
let sampling () = !sampling_mode
let set_sampling m = sampling_mode := m

let set_capacity n =
  let n = max 1 n in
  capacity := n;
  ring := Array.make n None;
  ring_pos := 0;
  ring_count := 0

let push_ring s =
  !ring.(!ring_pos) <- Some s;
  ring_pos := (!ring_pos + 1) mod !capacity;
  if !ring_count < !capacity then incr ring_count

let buffer_span s =
  if !trace_len < !capacity then begin
    trace_buf := s :: !trace_buf;
    incr trace_len
  end
  else incr dropped

let begin_span name attrs =
  incr next_span;
  let parent_id = match !stack with [] -> None | p :: _ -> Some p.span_id in
  let s =
    { trace_id = !cur_trace_id; span_id = !next_span; parent_id; name; attrs;
      start_ns = Clock.now_ns (); dur_ns = -1 }
  in
  stack := s :: !stack;
  s

let finish_span s =
  s.dur_ns <- Clock.now_ns () - s.start_ns;
  (match !stack with _ :: rest -> stack := rest | [] -> ());
  buffer_span s

let finish_trace root =
  let keep =
    match !sampling_mode with Slow_only t -> root.dur_ns >= t | _ -> true
  in
  if keep then List.iter push_ring (List.rev !trace_buf);
  trace_buf := [];
  trace_len := 0;
  stack := [];
  recording_now := false

let sample_decision () =
  match !sampling_mode with
  | Off -> false
  | Always | Slow_only _ -> true
  | Ratio p -> rng_float () < p

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else if !depth = 0 then begin
    (* root span: decide whether this trace records at all *)
    recording_now := sample_decision ();
    if !recording_now then begin
      incr next_trace;
      cur_trace_id := !next_trace;
      let s = begin_span name attrs in
      incr depth;
      Fun.protect
        ~finally:(fun () ->
          decr depth;
          finish_span s;
          finish_trace s)
        f
    end
    else begin
      incr depth;
      Fun.protect ~finally:(fun () -> decr depth; recording_now := false) f
    end
  end
  else if !recording_now then begin
    let s = begin_span name attrs in
    incr depth;
    Fun.protect ~finally:(fun () -> decr depth; finish_span s) f
  end
  else begin
    incr depth;
    Fun.protect ~finally:(fun () -> decr depth) f
  end

let current () = match !stack with [] -> None | s :: _ -> Some s

let add_attr key value =
  match !stack with [] -> () | s :: _ -> s.attrs <- s.attrs @ [ (key, value) ]

(* Record an already-measured interval as a finished span (used to bridge
   the EXPLAIN ANALYZE operator tree into the trace). Returns the span id
   so callers can parent further synthesized spans under it. *)
let emit ?(attrs = []) ?parent ~start_ns ~dur_ns name =
  incr next_span;
  if !recording_now then begin
    let parent_id =
      match parent with
      | Some _ -> parent
      | None -> ( match !stack with [] -> None | p :: _ -> Some p.span_id)
    in
    buffer_span
      { trace_id = !cur_trace_id; span_id = !next_span; parent_id; name; attrs;
        start_ns; dur_ns = max 0 dur_ns }
  end;
  !next_span

let spans () =
  let cap = !capacity in
  let start = (!ring_pos - !ring_count + cap * 2) mod cap in
  List.init !ring_count (fun i ->
      match !ring.((start + i) mod cap) with
      | Some s -> s
      | None -> assert false)

let dropped_count () = !dropped

let clear () =
  Array.fill !ring 0 !capacity None;
  ring_pos := 0;
  ring_count := 0;
  dropped := 0
