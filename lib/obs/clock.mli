(** Monotonic integer-nanosecond clock (CLOCK_MONOTONIC), the single
    timestamp source for spans and metrics. *)

val now_ns : unit -> int
(** Nanoseconds since process start. Exact (no float rounding) and
    non-decreasing even when the wall clock is adjusted. *)
