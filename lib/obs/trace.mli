(** Hierarchical spans on the monotonic clock, collected into a bounded
    ring buffer with per-trace sampling. Ambient and single-threaded: the
    open-span stack is dynamically scoped, so instrumented layers nest
    without plumbing a context through every signature. *)

type span = {
  trace_id : int;
  span_id : int;
  parent_id : int option;  (** [None] for a trace's root span *)
  name : string;
  mutable attrs : (string * string) list;
  start_ns : int;  (** {!Clock.now_ns} at open *)
  mutable dur_ns : int;  (** -1 while open *)
}

type sampling =
  | Off  (** tracing disabled; [with_span] is a single branch *)
  | Always
  | Ratio of float  (** keep roughly this fraction of traces *)
  | Slow_only of int  (** keep traces whose root span lasts >= this many ns *)

val set_sampling : sampling -> unit
val sampling : unit -> sampling

val enabled : unit -> bool
(** [sampling () <> Off]. *)

val recording : unit -> bool
(** True inside a trace that is being recorded — instrumentation can use
    this to decide whether to do extra work (e.g. run the instrumented
    executor) that only pays off when spans are kept. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span. The first [with_span] of a nest roots a
    new trace and applies the sampling decision; nested calls attach child
    spans. The span is finished (and the trace flushed) even when the
    thunk raises. *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span, if any. *)

val current : unit -> span option
(** The innermost open span (its [dur_ns] is still -1). *)

val emit :
  ?attrs:(string * string) list ->
  ?parent:int ->
  start_ns:int ->
  dur_ns:int ->
  string ->
  int
(** Record an already-measured interval as a finished child span of
    [?parent] (default: the innermost open span) and return its span id.
    Used to bridge the EXPLAIN ANALYZE operator tree into the trace. *)

val set_capacity : int -> unit
(** Resize (and clear) the ring buffer; also bounds the number of spans
    one trace may record. Default 8192. *)

val spans : unit -> span list
(** Retained spans, oldest first. *)

val dropped_count : unit -> int
(** Spans discarded because a trace overflowed the buffer. *)

val clear : unit -> unit
(** Drop retained spans and reset the drop counter. *)
