(* The one timestamp source shared by the tracer and the metrics registry.

   CLOCK_MONOTONIC through bechamel's C stub, reported as integer
   nanoseconds since process start. Wall-clock time through a float (the
   previous Metrics.now_ns) loses precision (~256 ns granularity at the
   current epoch) and goes backwards under clock adjustment; this clock is
   exact and non-decreasing by construction. *)

let origin = Monotonic_clock.now ()

let now_ns () = Int64.to_int (Int64.sub (Monotonic_clock.now ()) origin)
