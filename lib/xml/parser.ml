(* Hand-rolled recursive-descent XML 1.0 parser.

   Supports: prolog, DOCTYPE with internal subset (captured as raw text so
   that [Dtd.parse] can process it), elements, attributes with single or
   double quotes, character data, predefined and numeric entity references,
   CDATA sections, comments, and processing instructions.

   Unsupported by design (documented in README): external DTD subsets,
   user-defined general entities. *)

type error = { line : int; col : int; message : string }

exception Parse_error of error

let error_to_string e = Printf.sprintf "XML parse error at %d:%d: %s" e.line e.col e.message

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  keep_whitespace : bool;
}

let fail st message = raise (Parse_error { line = st.line; col = st.col; message })

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    (if st.src.[st.pos] = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 1
     end
     else st.col <- st.col + 1);
    st.pos <- st.pos + 1
  end

let expect st c =
  if peek st = c then advance st
  else fail st (Printf.sprintf "expected %C, found %C" c (peek st))

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip_string st s =
  if looking_at st s then String.iter (fun _ -> advance st) s
  else fail st (Printf.sprintf "expected %S" s)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then
    fail st (Printf.sprintf "expected a name, found %C" (peek st));
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Decode one &...; reference into [buf]. The leading '&' has not been
   consumed yet. *)
let parse_reference st buf =
  expect st '&';
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' in
    if hex then advance st;
    let start = st.pos in
    let is_digit c =
      if hex then
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      else c >= '0' && c <= '9'
    in
    while is_digit (peek st) do
      advance st
    done;
    if st.pos = start then fail st "empty character reference";
    let digits = String.sub st.src start (st.pos - start) in
    expect st ';';
    let code =
      try int_of_string ((if hex then "0x" else "") ^ digits)
      with Failure _ -> fail st "invalid character reference"
    in
    if code < 0 || code > 0x10FFFF then fail st "character reference out of range";
    (* UTF-8 encode the code point. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  end
  else begin
    let name = parse_name st in
    expect st ';';
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "apos" -> Buffer.add_char buf '\''
    | "quot" -> Buffer.add_char buf '"'
    | other -> fail st (Printf.sprintf "unknown entity &%s;" other)
  end

let parse_attribute_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | c when c = quote -> advance st
    | '\000' -> fail st "unterminated attribute value"
    | '<' -> fail st "'<' is not allowed in attribute values"
    | '&' ->
      parse_reference st buf;
      go ()
    | c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_attributes st =
  let rec go acc =
    skip_ws st;
    if is_name_start (peek st) then begin
      let name = parse_name st in
      skip_ws st;
      expect st '=';
      skip_ws st;
      let value = parse_attribute_value st in
      if List.exists (fun a -> String.equal a.Dom.attr_name name) acc then
        fail st (Printf.sprintf "duplicate attribute %s" name);
      go (Dom.attr name value :: acc)
    end
    else List.rev acc
  in
  go []

let parse_comment st =
  skip_string st "<!--";
  let start = st.pos in
  let rec go () =
    if eof st then fail st "unterminated comment"
    else if looking_at st "-->" then begin
      let s = String.sub st.src start (st.pos - start) in
      skip_string st "-->";
      s
    end
    else begin
      advance st;
      go ()
    end
  in
  go ()

let parse_cdata st =
  skip_string st "<![CDATA[";
  let start = st.pos in
  let rec go () =
    if eof st then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then begin
      let s = String.sub st.src start (st.pos - start) in
      skip_string st "]]>";
      s
    end
    else begin
      advance st;
      go ()
    end
  in
  go ()

let parse_pi st =
  skip_string st "<?";
  let target = parse_name st in
  skip_ws st;
  let start = st.pos in
  let rec go () =
    if eof st then fail st "unterminated processing instruction"
    else if looking_at st "?>" then begin
      let data = String.sub st.src start (st.pos - start) in
      skip_string st "?>";
      (target, data)
    end
    else begin
      advance st;
      go ()
    end
  in
  go ()

(* Raw character data up to the next '<'. Entity references are decoded. *)
let parse_chardata st =
  let buf = Buffer.create 32 in
  let rec go () =
    match peek st with
    | '<' | '\000' -> ()
    | '&' ->
      parse_reference st buf;
      go ()
    | c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let is_all_whitespace s =
  let rec go i = i >= String.length s || (is_space s.[i] && go (i + 1)) in
  go 0

let rec parse_content st tag acc =
  if eof st then fail st (Printf.sprintf "unterminated element <%s>" tag)
  else if looking_at st "</" then begin
    skip_string st "</";
    let name = parse_name st in
    if not (String.equal name tag) then
      fail st (Printf.sprintf "mismatched end tag: expected </%s>, found </%s>" tag name);
    skip_ws st;
    expect st '>';
    List.rev acc
  end
  else if looking_at st "<!--" then begin
    let c = parse_comment st in
    parse_content st tag (Dom.comment c :: acc)
  end
  else if looking_at st "<![CDATA[" then begin
    let c = parse_cdata st in
    parse_content st tag (Dom.cdata c :: acc)
  end
  else if looking_at st "<?" then begin
    let target, data = parse_pi st in
    parse_content st tag (Dom.pi target data :: acc)
  end
  else if peek st = '<' then begin
    let e = parse_element st in
    parse_content st tag (Dom.Element e :: acc)
  end
  else begin
    let s = parse_chardata st in
    let acc =
      if (not st.keep_whitespace) && is_all_whitespace s then acc
      else if String.equal s "" then acc
      else Dom.text s :: acc
    in
    parse_content st tag acc
  end

and parse_element st =
  expect st '<';
  let tag = parse_name st in
  let attrs = parse_attributes st in
  skip_ws st;
  if looking_at st "/>" then begin
    skip_string st "/>";
    Dom.elem ~attrs tag []
  end
  else begin
    expect st '>';
    let children = parse_content st tag [] in
    Dom.elem ~attrs tag children
  end

let parse_xml_decl st =
  if looking_at st "<?xml" && is_space st.src.[st.pos + 5] then begin
    skip_string st "<?xml";
    let attrs = parse_attributes st in
    skip_ws st;
    skip_string st "?>";
    let find name = List.find_opt (fun a -> String.equal a.Dom.attr_name name) attrs in
    let version = match find "version" with Some a -> a.attr_value | None -> "1.0" in
    let encoding = Option.map (fun a -> a.Dom.attr_value) (find "encoding") in
    let standalone =
      match find "standalone" with
      | Some { attr_value = "yes"; _ } -> Some true
      | Some { attr_value = "no"; _ } -> Some false
      | Some _ | None -> None
    in
    Some { Dom.version; encoding; standalone }
  end
  else None

(* Capture the DOCTYPE declaration. Returns the document-type name and the
   raw text of the internal subset (between '[' and ']'), if present. *)
let parse_doctype st =
  skip_string st "<!DOCTYPE";
  skip_ws st;
  let name = parse_name st in
  skip_ws st;
  (* Skip an external id (SYSTEM/PUBLIC ...) without fetching it. *)
  let rec skip_external () =
    match peek st with
    | '[' | '>' | '\000' -> ()
    | '"' | '\'' ->
      let q = peek st in
      advance st;
      while (not (eof st)) && peek st <> q do
        advance st
      done;
      expect st q;
      skip_external ()
    | _ ->
      advance st;
      skip_external ()
  in
  skip_external ();
  let subset =
    if peek st = '[' then begin
      advance st;
      let start = st.pos in
      let depth = ref 0 in
      let rec go () =
        if eof st then fail st "unterminated DOCTYPE internal subset"
        else
          match peek st with
          | ']' when !depth = 0 -> String.sub st.src start (st.pos - start)
          | '<' ->
            incr depth;
            advance st;
            go ()
          | '>' ->
            decr depth;
            advance st;
            go ()
          | _ ->
            advance st;
            go ()
      in
      let s = go () in
      expect st ']';
      Some s
    end
    else None
  in
  skip_ws st;
  expect st '>';
  (name, subset)

type parsed = { document : Dom.t; internal_subset : string option }

let parse_full ?(keep_whitespace = false) src =
  Obskit.Trace.with_span ~attrs:[ ("bytes", string_of_int (String.length src)) ]
    "xml.parse"
  @@ fun () ->
  let st = { src; pos = 0; line = 1; col = 1; keep_whitespace } in
  (* UTF-8 byte-order mark *)
  if looking_at st "\xEF\xBB\xBF" then skip_string st "\xEF\xBB\xBF";
  skip_ws st;
  let decl = parse_xml_decl st in
  let doctype = ref None in
  let subset = ref None in
  let rec skip_misc () =
    skip_ws st;
    if looking_at st "<!--" then begin
      ignore (parse_comment st);
      skip_misc ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      let name, sub = parse_doctype st in
      doctype := Some name;
      subset := sub;
      skip_misc ()
    end
    else if looking_at st "<?" && not (looking_at st "<?xml ") then begin
      ignore (parse_pi st);
      skip_misc ()
    end
  in
  skip_misc ();
  if eof st then fail st "document has no root element";
  let root = parse_element st in
  (* Trailing misc *)
  let rec trailing () =
    skip_ws st;
    if looking_at st "<!--" then begin
      ignore (parse_comment st);
      trailing ()
    end
    else if looking_at st "<?" then begin
      ignore (parse_pi st);
      trailing ()
    end
    else if not (eof st) then fail st "content after the root element"
  in
  trailing ();
  { document = { Dom.decl; doctype = !doctype; root }; internal_subset = !subset }

let parse ?keep_whitespace src = (parse_full ?keep_whitespace src).document

let parse_element_string src =
  let st = { src; pos = 0; line = 1; col = 1; keep_whitespace = false } in
  skip_ws st;
  parse_element st

let parse_file ?keep_whitespace path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse ?keep_whitespace s
