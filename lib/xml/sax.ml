(* SAX-style event stream over a parsed tree: the linear "token stream"
   representation. Shredders that want a single pass over the document in
   document order fold over this stream instead of recursing over [Dom]. *)

type event =
  | Start_element of { tag : string; attrs : Dom.attribute list }
  | End_element of string
  | Characters of string
  | Comment_event of string
  | Pi_event of { target : string; data : string }

let event_to_string = function
  | Start_element { tag; _ } -> Printf.sprintf "<%s>" tag
  | End_element tag -> Printf.sprintf "</%s>" tag
  | Characters s -> Printf.sprintf "text(%S)" s
  | Comment_event s -> Printf.sprintf "comment(%S)" s
  | Pi_event { target; _ } -> Printf.sprintf "pi(%s)" target

let fold f init (doc : Dom.t) =
  Obskit.Trace.with_span "xml.sax" @@ fun () ->
  let rec node acc = function
    | Dom.Element e ->
      let acc = f acc (Start_element { tag = e.tag; attrs = e.attrs }) in
      let acc = List.fold_left node acc e.children in
      f acc (End_element e.tag)
    | Dom.Text s | Dom.Cdata s -> f acc (Characters s)
    | Dom.Comment s -> f acc (Comment_event s)
    | Dom.Pi { target; data } -> f acc (Pi_event { target; data })
  in
  node init (Dom.Element doc.Dom.root)

let iter f doc = fold (fun () e -> f e) () doc

let to_list doc = List.rev (fold (fun acc e -> e :: acc) [] doc)

(* Rebuild a document from a well-formed event stream; inverse of
   [to_list]. *)
exception Invalid_stream of string

let of_list events =
  let rec build stack events =
    match events with
    | [] -> (
      match stack with
      | [ (("", []), children) ] -> (
        match List.rev children with
        | [ Dom.Element root ] -> Dom.document root
        | _ -> raise (Invalid_stream "stream must contain exactly one root element"))
      | _ -> raise (Invalid_stream "unbalanced start/end events"))
    | Start_element { tag; attrs } :: rest -> build (((tag, attrs), []) :: stack) rest
    | End_element tag :: rest -> (
      match stack with
      | ((open_tag, attrs), children) :: ((ptag, pattrs), pchildren) :: outer ->
        if not (String.equal open_tag tag) then
          raise (Invalid_stream (Printf.sprintf "end tag %s does not match %s" tag open_tag));
        let e = Dom.Element { Dom.tag; attrs; children = List.rev children } in
        build (((ptag, pattrs), e :: pchildren) :: outer) rest
      | _ -> raise (Invalid_stream "end event without a matching start"))
    | Characters s :: rest -> add (Dom.Text s) stack rest
    | Comment_event s :: rest -> add (Dom.Comment s) stack rest
    | Pi_event { target; data } :: rest -> add (Dom.Pi { target; data }) stack rest
  and add node stack rest =
    match stack with
    | (hdr, children) :: outer -> build ((hdr, node :: children) :: outer) rest
    | [] -> raise (Invalid_stream "content outside the root element")
  in
  build [ (("", []), []) ] events
