(* TM: telemetry drift. Three sources of truth must stay in sync:

   1. what the code emits — string literals passed to Metrics.incr /
      set_gauge / timed / observe_ns and Trace.with_span / emit;
   2. the storage-series catalog `declare_storage_series` pre-registers
      so a fresh store's /metrics scrape already lists every series;
   3. the series table in DESIGN.md.

   The pass is scoped to the catalog's own namespaces (the first dotted
   segment of each catalog entry — db, buffer_pool): outside those,
   series are store-scoped and documented in prose. Computed names with a
   literal prefix (`"db.wal.records." ^ kind`) participate as wildcards;
   `db.wal.records.<kind>` in DESIGN.md declares the matching wildcard. *)

module P = Parsetree
module Diag = Lintkit.Diag

type kind = Counter | Gauge | Histogram | Span

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"
  | Span -> "span"

type emission = {
  em_name : string;
  em_wildcard : bool;  (* em_name is a literal prefix of a computed name *)
  em_kind : kind;
  em_file : string;
  em_line : int;
}

(* ------------------------------------------------------------------ *)
(* Collecting emissions *)

let emit_kind names =
  let rec last2 = function
    | [ a; b ] -> Some (a, b)
    | _ :: rest -> last2 rest
    | [] -> None
  in
  match last2 names with
  | Some ("Metrics", "incr") -> Some Counter
  | Some ("Metrics", "set_gauge") -> Some Gauge
  | Some ("Metrics", "timed") | Some ("Metrics", "observe_ns") -> Some Histogram
  | Some ("Trace", "with_span") | Some ("Trace", "emit") -> Some Span
  | _ -> None

(* The series names an argument can evaluate to: a string literal, the
   literal left operand of a ^-concatenation (a wildcard emission), or
   every literal arm of a match/if choosing between names. *)
let rec names_of_expr (e : P.expression) : (string * bool) list =
  match Checks.string_const e with
  | Some s -> [ (s, false) ]
  | None -> (
    match e.P.pexp_desc with
    | P.Pexp_apply
        ( { P.pexp_desc = P.Pexp_ident { txt = Longident.Lident "^"; _ }; _ },
          (Asttypes.Nolabel, l) :: _ ) -> (
      match Checks.string_const l with Some s -> [ (s, true) ] | None -> [])
    | P.Pexp_match (_, cases) -> List.concat_map (fun c -> names_of_expr c.P.pc_rhs) cases
    | P.Pexp_ifthenelse (_, t, f) ->
      names_of_expr t @ (match f with Some f -> names_of_expr f | None -> [])
    | P.Pexp_constraint (inner, _) | P.Pexp_open (_, inner) -> names_of_expr inner
    | _ -> [])

(* The name argument: the first anonymous argument yielding any names. *)
let name_args args =
  let anon =
    List.filter_map (fun (lbl, a) -> match lbl with Asttypes.Nolabel -> Some a | _ -> None) args
  in
  match List.find_map (fun a -> match names_of_expr a with [] -> None | ns -> Some ns) anon with
  | Some ns -> ns
  | None -> []

let emissions_of_source (src : Source.t) : emission list =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.P.pexp_desc with
          | P.Pexp_apply ({ P.pexp_desc = P.Pexp_ident { txt; _ }; _ }, args) -> (
            match emit_kind (Checks.path_of_lident txt) with
            | None -> ()
            | Some k ->
              List.iter
                (fun (name, wildcard) ->
                  out :=
                    {
                      em_name = name;
                      em_wildcard = wildcard;
                      em_kind = k;
                      em_file = src.Source.src_path;
                      em_line = Source.line_of ex.P.pexp_loc;
                    }
                    :: !out)
                (name_args args))
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  List.iter (it.structure_item it) src.Source.src_structure;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* The code catalog: string literals under `declare_storage_series` *)

let catalog_binding = "declare_storage_series"

let catalog_of_source (src : Source.t) : string list =
  let out = ref [] in
  let collect (e : P.expression) =
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self ex ->
            (match Checks.string_const ex with
            | Some s when not (String.equal s "") -> out := s :: !out
            | _ -> ());
            Ast_iterator.default_iterator.expr self ex);
      }
    in
    it.expr it e
  in
  let it =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun self si ->
          (match si.P.pstr_desc with
          | P.Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match Checks.binding_name vb.P.pvb_pat with
                | Some n when String.equal n catalog_binding -> collect vb.P.pvb_expr
                | _ -> ())
              vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item self si);
    }
  in
  List.iter (it.structure_item it) src.Source.src_structure;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* The documented catalog: backticked series names in DESIGN.md *)

(* Backticked filenames (`buffer_pool.ml`, `check.sh`) would otherwise
   pass the shape test; their final segment is a file extension. *)
let file_extensions = [ "ml"; "mli"; "md"; "sexp"; "sh"; "exe"; "json"; "txt"; "xml"; "log" ]

let series_shaped token =
  String.length token > 0
  && (match token.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && String.contains token '.'
  && String.for_all
       (fun c -> match c with 'a' .. 'z' | '0' .. '9' | '_' | '.' | '<' | '>' -> true | _ -> false)
       token
  && (match String.rindex_opt token '.' with
     | Some i ->
       not (List.mem (String.sub token (i + 1) (String.length token - i - 1)) file_extensions)
     | None -> true)

let first_segment name = match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

(* (exact names, wildcard prefixes) *)
let doc_names text : string list * string list =
  let exact = ref [] and prefixes = ref [] in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = '`' then begin
      let j = ref (!i + 1) in
      while !j < n && text.[!j] <> '`' && text.[!j] <> '\n' do
        incr j
      done;
      if !j < n && text.[!j] = '`' then begin
        let token = String.sub text (!i + 1) (!j - !i - 1) in
        if series_shaped token then begin
          match String.index_opt token '<' with
          | Some k -> prefixes := String.sub token 0 k :: !prefixes
          | None -> exact := token :: !exact
        end;
        i := !j + 1
      end
      else i := !i + 1
    end
    else incr i
  done;
  (List.rev !exact, List.rev !prefixes)

(* ------------------------------------------------------------------ *)
(* The drift check *)

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.equal (String.sub s 0 (String.length prefix)) prefix

let check ~catalog ~doc:(doc_exact, doc_prefixes) ~(emissions : emission list) : Diag.t list =
  let covered_segments =
    List.sort_uniq compare (List.map first_segment (List.filter series_shaped catalog))
  in
  let covered name = List.mem (first_segment name) covered_segments in
  let catalog = List.filter (fun s -> series_shaped s && covered s) catalog in
  let doc_exact = List.filter covered doc_exact in
  let doc_prefixes = List.filter covered doc_prefixes in
  let have_docs = doc_exact <> [] || doc_prefixes <> [] in
  let diag ~file ?line sev msg =
    Diag.make ~location:(Diag.at ~file ?line ()) ~code:(match sev with Diag.Warning -> "TM002" | _ -> "TM001") sev msg
  in
  let diags = ref [] in
  let emitted = List.filter (fun e -> covered e.em_name) emissions in
  (* emissions must be declared *)
  List.iter
    (fun e ->
      if e.em_wildcard then begin
        if
          have_docs
          && (not (List.exists (fun p -> String.equal p e.em_name) doc_prefixes))
          && not (List.exists (fun d -> starts_with ~prefix:e.em_name d) doc_exact)
        then
          diags :=
            diag ~file:e.em_file ~line:e.em_line Diag.Error
              (Printf.sprintf
                 "computed %s name %S* has no matching entry in the DESIGN.md series table"
                 (kind_to_string e.em_kind) e.em_name)
            :: !diags
      end
      else begin
        (match e.em_kind with
        | Counter | Gauge ->
          if not (List.mem e.em_name catalog) then
            diags :=
              diag ~file:e.em_file ~line:e.em_line Diag.Error
                (Printf.sprintf
                   "%s %S is emitted but not pre-declared in %s; a fresh store's /metrics scrape \
                    would not list it"
                   (kind_to_string e.em_kind) e.em_name catalog_binding)
              :: !diags
        | Histogram | Span -> ());
        if
          have_docs
          && (not (List.mem e.em_name doc_exact))
          && not (List.exists (fun p -> starts_with ~prefix:p e.em_name) doc_prefixes)
        then
          diags :=
            diag ~file:e.em_file ~line:e.em_line Diag.Error
              (Printf.sprintf "%s %S is emitted but absent from the DESIGN.md series table"
                 (kind_to_string e.em_kind) e.em_name)
            :: !diags
      end)
    emitted;
  (* declared entries must be emitted *)
  let emits_exact name =
    List.exists
      (fun e -> (not e.em_wildcard) && String.equal e.em_name name)
      emitted
  in
  let emits_under name =
    emits_exact name
    || List.exists (fun e -> e.em_wildcard && starts_with ~prefix:e.em_name name) emitted
  in
  List.iter
    (fun name ->
      if not (emits_under name) then
        diags :=
          diag ~file:"lib/core/store.ml" Diag.Warning
            (Printf.sprintf "%s pre-declares %S but no source file emits it" catalog_binding name)
          :: !diags)
    (List.sort_uniq compare catalog);
  List.iter
    (fun name ->
      if not (emits_under name) then
        diags :=
          diag ~file:"DESIGN.md" Diag.Warning
            (Printf.sprintf "DESIGN.md series table lists %S but no source file emits it" name)
          :: !diags)
    (List.sort_uniq compare doc_exact);
  List.iter
    (fun prefix ->
      if
        not
          (List.exists
             (fun e ->
               (e.em_wildcard && String.equal e.em_name prefix)
               || ((not e.em_wildcard) && starts_with ~prefix e.em_name))
             emitted)
      then
        diags :=
          diag ~file:"DESIGN.md" Diag.Warning
            (Printf.sprintf "DESIGN.md series table lists %S* but no source file emits under it"
               prefix)
          :: !diags)
    (List.sort_uniq compare doc_prefixes);
  List.rev !diags
