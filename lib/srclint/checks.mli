(** Domain-safety (DS) and resource-discipline (RD) passes over one
    parsed source file. Waiver filtering happens in {!Engine}. *)

val path_of_lident : Longident.t -> string list
val string_const : Parsetree.expression -> string option
val binding_name : Parsetree.pattern -> string option

type state_site = {
  st_name : string;  (** qualified binding name, ["Sub.name"] in a submodule *)
  st_kind : string;  (** ref / Hashtbl.create / array literal / ... *)
  st_line : int;
}

val module_state : Source.t -> state_site list
(** Every top-level binding holding mutable state (DS input). *)

val assigned_fields : Source.t -> string list
(** Field names the file mutates with [e.f <- v] (exposed for tests). *)

val fd_leaks : Source.t -> Lintkit.Diag.t list
(** RD001: Unix fd acquisitions not closed on all paths. *)

val catchalls : Source.t -> Lintkit.Diag.t list
(** RD002: handlers that swallow every exception. *)

val eintr_in_loops : Source.t -> Lintkit.Diag.t list
(** RD003: Unix read/write/fsync in loops without EINTR retry. *)
