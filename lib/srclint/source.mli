(** A parsed source file plus its srclint waiver comments. *)

type t = {
  src_path : string;  (** repo-relative, '/'-separated *)
  src_text : string;
  src_structure : Parsetree.structure;
  src_waivers : (int * string) list;  (** 1-based line, tag ("catchall", ...) *)
}

val waiver_tag_of_code : string -> string option
(** The [(* srclint: allow-TAG *)] tag that waives a code, if any. *)

val waived : t -> code:string -> line:int -> bool
(** True when a matching waiver comment sits on [line] or [line - 1]. *)

val parse : path:string -> string -> (t, string) result
val load : root:string -> path:string -> (t, string) result
val read_file : string -> string

val line_of : Location.t -> int
val diag_at : t -> code:string -> line:int -> Lintkit.Diag.severity -> string -> Lintkit.Diag.t
