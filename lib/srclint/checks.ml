(* Domain-safety (DS) and resource-discipline (RD) passes over one
   parsed source file.

   These are deliberately repo-shaped heuristics, not a soundness proof:
   they encode the idioms this codebase actually uses (Fun.protect with a
   closing finalizer, try-handlers that close-and-reraise, ownership
   transfer into a record/field) and flag everything else. A finding that
   is a false positive for a reason the checker cannot see is waived
   inline ([(* srclint: allow-... *)], RD codes) or through the
   domain-safety allowlist (DS codes) — either way the exception is
   recorded in the tree, which is the point. *)

module P = Parsetree
module Diag = Lintkit.Diag

(* ------------------------------------------------------------------ *)
(* Parsetree helpers *)

let path_of_lident (l : Longident.t) : string list =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply (_, l) -> go acc l
  in
  go [] l

let last_name = function [] -> "" | names -> List.nth names (List.length names - 1)

let app_head (e : P.expression) =
  match e.P.pexp_desc with
  | P.Pexp_apply ({ P.pexp_desc = P.Pexp_ident { txt; _ }; _ }, args) ->
    Some (path_of_lident txt, args)
  | _ -> None

let string_const (e : P.expression) =
  match e.P.pexp_desc with
  | P.Pexp_constant (P.Pconst_string (s, _, _)) -> Some s
  | _ -> None

exception Found

let exists_expr pred e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          if pred ex then raise Found;
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  (try it.expr it e; false with Found -> true)

let exists_pat pred p =
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self px ->
          if pred px then raise Found;
          Ast_iterator.default_iterator.pat self px);
    }
  in
  (try it.pat it p; false with Found -> true)

let mentions_var x e =
  exists_expr
    (fun ex ->
      match ex.P.pexp_desc with
      | P.Pexp_ident { txt = Longident.Lident v; _ } -> String.equal v x
      | _ -> false)
    e

(* ------------------------------------------------------------------ *)
(* DS: module-level mutable state *)

(* Field names the file assigns with [e.f <- v]: a top-level record
   literal carrying one of these fields is shared mutable state even
   though the Parsetree has no mutability info. *)
let assigned_fields (src : Source.t) =
  let fields = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.P.pexp_desc with
          | P.Pexp_setfield (_, { txt; _ }, _) ->
            let f = last_name (path_of_lident txt) in
            if not (List.mem f !fields) then fields := f :: !fields
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  List.iter (it.structure_item it) src.Source.src_structure;
  !fields

(* What kind of mutable state an expression evaluates to, if the checker
   can tell. Descends through data constructors, lets, lazies — but not
   into function bodies (state created per call is not module-level). *)
let rec mutable_kind ~mutfields (e : P.expression) : string option =
  let first_some l = List.find_map (mutable_kind ~mutfields) l in
  match e.P.pexp_desc with
  | P.Pexp_apply ({ P.pexp_desc = P.Pexp_ident { txt; _ }; _ }, args) -> (
    let kind =
      match path_of_lident txt with
      | [ "ref" ] -> Some "ref"
      | [ "Hashtbl"; "create" ] -> Some "Hashtbl.create"
      | [ "Buffer"; "create" ] -> Some "Buffer.create"
      | [ "Queue"; "create" ] -> Some "Queue.create"
      | [ "Stack"; "create" ] -> Some "Stack.create"
      | [ "Atomic"; "make" ] -> Some "Atomic.make"
      | [ "Mutex"; "create" ] -> Some "Mutex.create"
      | [ "Condition"; "create" ] -> Some "Condition.create"
      | [ "Domain"; "DLS"; "new_key" ] | [ "DLS"; "new_key" ] -> Some "Domain.DLS.new_key"
      | [ "Array"; "make" ] | [ "Array"; "init" ] | [ "Array"; "create_float" ] -> Some "Array.make"
      | [ "Bytes"; "create" ] | [ "Bytes"; "make" ] -> Some "Bytes.create"
      | [ "Weak"; "create" ] -> Some "Weak.create"
      | _ -> None
    in
    match kind with Some _ -> kind | None -> first_some (List.map snd args))
  | P.Pexp_array (_ :: _) -> Some "array literal"
  | P.Pexp_record (fields, base) ->
    let field_names = List.map (fun ({ Location.txt; _ }, _) -> last_name (path_of_lident txt)) fields in
    if List.exists (fun f -> List.mem f mutfields) field_names then Some "mutable-field record"
    else first_some (List.map snd fields @ Option.to_list base)
  | P.Pexp_tuple l -> first_some l
  | P.Pexp_construct (_, Some arg) | P.Pexp_variant (_, Some arg) -> mutable_kind ~mutfields arg
  | P.Pexp_let (_, vbs, body) -> first_some (List.map (fun vb -> vb.P.pvb_expr) vbs @ [ body ])
  | P.Pexp_sequence (a, b) -> first_some [ a; b ]
  | P.Pexp_ifthenelse (_, t, f) -> first_some (t :: Option.to_list f)
  | P.Pexp_constraint (e, _) | P.Pexp_coerce (e, _, _) | P.Pexp_lazy e | P.Pexp_open (_, e) ->
    mutable_kind ~mutfields e
  | P.Pexp_match (_, cases) -> first_some (List.map (fun c -> c.P.pc_rhs) cases)
  | P.Pexp_fun _ | P.Pexp_function _ -> None
  | _ -> None

let rec binding_name (p : P.pattern) =
  match p.P.ppat_desc with
  | P.Ppat_var { txt; _ } -> Some txt
  | P.Ppat_constraint (p, _) -> binding_name p
  | _ -> None

type state_site = { st_name : string; st_kind : string; st_line : int }

(* Every top-level binding (recursing into named submodules) that holds
   mutable state. *)
let module_state (src : Source.t) : state_site list =
  let mutfields = assigned_fields src in
  let sites = ref [] in
  let rec structure prefix items = List.iter (item prefix) items
  and item prefix (si : P.structure_item) =
    match si.P.pstr_desc with
    | P.Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match binding_name vb.P.pvb_pat with
          | None -> ()
          | Some name -> (
            match mutable_kind ~mutfields vb.P.pvb_expr with
            | None -> ()
            | Some kind ->
              let qname = String.concat "." (prefix @ [ name ]) in
              sites :=
                { st_name = qname; st_kind = kind; st_line = Source.line_of vb.P.pvb_loc }
                :: !sites))
        vbs
    | P.Pstr_module mb -> module_binding prefix mb
    | P.Pstr_recmodule mbs -> List.iter (module_binding prefix) mbs
    | P.Pstr_include { P.pincl_mod = { P.pmod_desc = P.Pmod_structure st; _ }; _ } ->
      structure prefix st
    | _ -> ()
  and module_binding prefix (mb : P.module_binding) =
    match mb.P.pmb_name.Location.txt with
    | Some name -> module_expr (prefix @ [ name ]) mb.P.pmb_expr
    | None -> ()
  and module_expr prefix (me : P.module_expr) =
    match me.P.pmod_desc with
    | P.Pmod_structure st -> structure prefix st
    | P.Pmod_constraint (me, _) -> module_expr prefix me
    | _ -> ()  (* functor bodies create state per application *)
  in
  structure [] src.Source.src_structure;
  List.rev !sites

(* ------------------------------------------------------------------ *)
(* RD001: acquired fds closed on every path *)

let acquire_fns = [ "openfile"; "socket"; "accept"; "opendir"; "socketpair" ]

let acquisition (e : P.expression) =
  match app_head e with
  | Some ([ "Unix"; f ], _) when List.mem f acquire_fns -> Some ("Unix." ^ f)
  | _ -> None

let close_names = [ "close"; "closedir"; "shutdown"; "close_in"; "close_out"; "close_in_noerr"; "close_out_noerr" ]

let contains_close x e =
  exists_expr
    (fun ex ->
      match app_head ex with
      | Some (names, args) ->
        List.mem (last_name names) close_names && List.exists (fun (_, a) -> mentions_var x a) args
      | None -> false)
    e

(* A Fun.protect whose ~finally mentions (and therefore can close) x. *)
let contains_protect_closing x e =
  exists_expr
    (fun ex ->
      match app_head ex with
      | Some (names, args) ->
        String.equal (last_name names) "protect"
        && List.exists
             (fun (lbl, a) ->
               match lbl with Asttypes.Labelled "finally" -> mentions_var x a | _ -> false)
             args
      | None -> false)
    e

let try_handlers_close x (e : P.expression) =
  match e.P.pexp_desc with
  | P.Pexp_try (_, cases) -> List.exists (fun c -> contains_close x c.P.pc_rhs) cases
  | _ -> false

let is_try (e : P.expression) = match e.P.pexp_desc with P.Pexp_try _ -> true | _ -> false

(* x used as an argument of an application that is neither a close nor a
   protect: the call can raise while this frame still owns the fd. *)
let risky_app_mention x e =
  exists_expr
    (fun ex ->
      match app_head ex with
      | Some (names, args) ->
        let n = last_name names in
        (not (List.mem n close_names))
        && (not (String.equal n "protect"))
        && List.exists (fun (_, a) -> match a.P.pexp_desc with
             | P.Pexp_ident { txt = Longident.Lident v; _ } -> String.equal v x
             | _ -> false)
             args
      | None -> false)
    e

(* Decompose a let/sequence spine into the statements evaluated in order
   plus the terminal expression. *)
let rec spine (e : P.expression) acc =
  match e.P.pexp_desc with
  | P.Pexp_sequence (a, b) -> spine b (a :: acc)
  | P.Pexp_let (_, vbs, b) -> spine b (List.rev_append (List.map (fun vb -> vb.P.pvb_expr) vbs) acc)
  | P.Pexp_open (_, b) | P.Pexp_constraint (b, _) -> spine b acc
  | _ -> (List.rev acc, e)

type verdict = Discharged | Leak of int * string

let analyze_continuation x (body : P.expression) : verdict =
  let steps, terminal = spine body [] in
  let rec scan = function
    | [] ->
      if contains_protect_closing x terminal then Discharged
      else if is_try terminal && try_handlers_close x terminal then Discharged
      else if contains_close x terminal then Discharged
      else if risky_app_mention x terminal then
        Leak
          ( Source.line_of terminal.P.pexp_loc,
            Printf.sprintf "%s is passed to a call that can raise while this frame still owns it" x )
      else if mentions_var x terminal then Discharged (* ownership escapes with the result *)
      else
        Leak
          ( Source.line_of terminal.P.pexp_loc,
            Printf.sprintf "%s is never closed on this path" x )
    | s :: rest ->
      if contains_protect_closing x s then Discharged
      else if is_try s then if try_handlers_close x s then Discharged else scan rest
      else if contains_close x s then Discharged
      else if mentions_var x s then
        Leak
          ( Source.line_of s.P.pexp_loc,
            Printf.sprintf "%s is used before any Fun.protect/close guards it" x )
      else scan rest
  in
  scan steps

let rec pattern_first_var (p : P.pattern) =
  match p.P.ppat_desc with
  | P.Ppat_var { txt; _ } -> Some txt
  | P.Ppat_alias (p, { txt; _ }) -> ( match pattern_first_var p with Some v -> Some v | None -> Some txt)
  | P.Ppat_constraint (p, _) -> pattern_first_var p
  | P.Ppat_tuple (p :: _) -> pattern_first_var p
  | _ -> None

let fd_leaks (src : Source.t) : Diag.t list =
  let diags = ref [] in
  let handled : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let mark (e : P.expression) = Hashtbl.replace handled e.P.pexp_loc.Location.loc_start.Lexing.pos_cnum () in
  let report ~line fn detail =
    diags :=
      Source.diag_at src ~code:"RD001" ~line Diag.Error
        (Printf.sprintf "%s: %s (wrap the continuation in Fun.protect with a closing finalizer)" fn
           detail)
      :: !diags
  in
  let analyze fn x body ~line =
    match analyze_continuation x body with
    | Discharged -> ()
    | Leak (leak_line, detail) ->
      ignore line;
      report ~line:leak_line fn detail
  in
  (* pass A: bindings, matches, and ownership transfers *)
  let pass_a =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.P.pexp_desc with
          | P.Pexp_let (_, vbs, body) ->
            List.iter
              (fun vb ->
                match acquisition vb.P.pvb_expr with
                | None -> ()
                | Some fn -> (
                  mark vb.P.pvb_expr;
                  let line = Source.line_of vb.P.pvb_loc in
                  match pattern_first_var vb.P.pvb_pat with
                  | Some x -> analyze fn x body ~line
                  | None -> report ~line fn "result is not bound, the descriptor is dropped"))
              vbs
          | P.Pexp_match (scrut, cases) when acquisition scrut <> None ->
            let fn = Option.get (acquisition scrut) in
            mark scrut;
            List.iter
              (fun c ->
                match c.P.pc_lhs.P.ppat_desc with
                | P.Ppat_exception _ -> ()
                | _ -> (
                  let line = Source.line_of c.P.pc_lhs.P.ppat_loc in
                  match pattern_first_var c.P.pc_lhs with
                  | Some x -> analyze fn x c.P.pc_rhs ~line
                  | None -> report ~line fn "result is not bound, the descriptor is dropped"))
              cases
          | P.Pexp_construct (_, Some arg) | P.Pexp_setfield (_, _, arg) ->
            (* direct transfer into a data structure owns the fd there *)
            if acquisition arg <> None then mark arg
          | P.Pexp_record (fields, _) ->
            List.iter (fun (_, v) -> if acquisition v <> None then mark v) fields
          | P.Pexp_tuple elts -> List.iter (fun v -> if acquisition v <> None then mark v) elts
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  List.iter (pass_a.structure_item pass_a) src.Source.src_structure;
  (* pass B: acquisitions in any other position are unmanaged *)
  let pass_b =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match acquisition ex with
          | Some fn when not (Hashtbl.mem handled ex.P.pexp_loc.Location.loc_start.Lexing.pos_cnum)
            ->
            report ~line:(Source.line_of ex.P.pexp_loc) fn
              "descriptor is consumed anonymously; bind it so its lifetime is checkable"
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  List.iter (pass_b.structure_item pass_b) src.Source.src_structure;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* RD002: catch-all exception handlers *)

(* Some v when the pattern catches everything and binds v, Some "" when it
   catches everything anonymously, None when it is selective. *)
let rec pat_catchall (p : P.pattern) =
  match p.P.ppat_desc with
  | P.Ppat_any -> Some ""
  | P.Ppat_var { txt; _ } -> Some txt
  | P.Ppat_alias (p, { txt; _ }) -> ( match pat_catchall p with Some _ -> Some txt | None -> None)
  | P.Ppat_or (a, b) -> ( match pat_catchall a with Some v -> Some v | None -> pat_catchall b)
  | P.Ppat_constraint (p, _) -> pat_catchall p
  | _ -> None

let reraises v body =
  (not (String.equal v ""))
  && exists_expr
       (fun ex ->
         match app_head ex with
         | Some (names, args) ->
           List.mem (last_name names) [ "raise"; "raise_notrace"; "raise_with_backtrace" ]
           && List.exists
                (fun (_, a) ->
                  match a.P.pexp_desc with
                  | P.Pexp_ident { txt = Longident.Lident x; _ } -> String.equal x v
                  | _ -> false)
                args
         | None -> false)
       body

let catchalls (src : Source.t) : Diag.t list =
  let diags = ref [] in
  let flag (c : P.case) =
    match pat_catchall c.P.pc_lhs with
    | None -> ()
    | Some v ->
      if not (reraises v c.P.pc_rhs) then
        diags :=
          Source.diag_at src ~code:"RD002"
            ~line:(Source.line_of c.P.pc_lhs.P.ppat_loc)
            Diag.Error
            "catch-all handler can swallow Out_of_memory/Stack_overflow; match an explicit \
             exception set, re-raise, or waive with (* srclint: allow-catchall *)"
          :: !diags
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.P.pexp_desc with
          | P.Pexp_try (_, cases) -> List.iter flag cases
          | P.Pexp_match (_, cases) ->
            List.iter
              (fun c ->
                match c.P.pc_lhs.P.ppat_desc with
                | P.Ppat_exception p -> flag { c with P.pc_lhs = p }
                | _ -> ())
              cases
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  List.iter (it.structure_item it) src.Source.src_structure;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* RD003: EINTR discipline in IO loops *)

let unix_io_fns = [ "read"; "write"; "write_substring"; "single_write"; "fsync"; "fdatasync" ]

let pat_mentions_eintr p =
  exists_pat
    (fun px ->
      match px.P.ppat_desc with
      | P.Ppat_construct ({ txt; _ }, _) -> String.equal (last_name (path_of_lident txt)) "EINTR"
      | _ -> false)
    p

let eintr_in_loops (src : Source.t) : Diag.t list =
  let diags = ref [] in
  let in_loop = ref false in
  let guarded = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          match ex.P.pexp_desc with
          | P.Pexp_while _ | P.Pexp_for _ ->
            let saved = !in_loop in
            in_loop := true;
            Ast_iterator.default_iterator.expr self ex;
            in_loop := saved
          | P.Pexp_try (_, cases) when List.exists (fun c -> pat_mentions_eintr c.P.pc_lhs) cases ->
            let saved = !guarded in
            guarded := true;
            Ast_iterator.default_iterator.expr self ex;
            guarded := saved
          | P.Pexp_apply ({ P.pexp_desc = P.Pexp_ident { txt; _ }; _ }, _)
            when (match path_of_lident txt with
                 | [ "Unix"; f ] -> List.mem f unix_io_fns
                 | _ -> false)
                 && !in_loop
                 && not !guarded ->
            diags :=
              Source.diag_at src ~code:"RD003"
                ~line:(Source.line_of ex.P.pexp_loc)
                Diag.Warning
                (Printf.sprintf
                   "%s inside a loop without an EINTR retry; a signal mid-transfer turns into a \
                    spurious failure (wrap the syscall in a retry helper)"
                   (String.concat "." (path_of_lident txt)))
              :: !diags;
            Ast_iterator.default_iterator.expr self ex
          | _ -> Ast_iterator.default_iterator.expr self ex);
    }
  in
  List.iter (it.structure_item it) src.Source.src_structure;
  List.rev !diags
