(* One analyzed source file: raw text, its Parsetree (compiler-libs
   [Parse.implementation] — the exact grammar the compiler uses, no
   external dependency), and the waiver comments srclint honours.

   A waiver is a comment of the form [(* srclint: allow-TAG *)] on the
   flagged line or the line directly above it. Comments do not survive
   into the Parsetree, so they are scanned from the raw text. *)

type t = {
  src_path : string;  (* repo-relative, '/'-separated *)
  src_text : string;
  src_structure : Parsetree.structure;
  src_waivers : (int * string) list;  (* 1-based line, tag ("catchall", ...) *)
}

(* Tag accepted for each waivable code. DS002 is deliberately absent:
   domain-safety exceptions live in srclint_allow.sexp only, so the
   allowlist stays the single migration worklist. *)
let waiver_tag_of_code = function
  | "RD001" -> Some "fd"
  | "RD002" -> Some "catchall"
  | "RD003" -> Some "eintr"
  | "TM001" -> Some "metric"
  | _ -> None

let scan_waivers text =
  let marker = "srclint: allow-" in
  let waivers = ref [] in
  let line = ref 1 in
  let mlen = String.length marker in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    (if !i + mlen <= n && String.equal (String.sub text !i mlen) marker then begin
       let j = ref (!i + mlen) in
       while !j < n && (match text.[!j] with 'a' .. 'z' | '-' -> true | _ -> false) do
         incr j
       done;
       let tag = String.sub text (!i + mlen) (!j - !i - mlen) in
       if not (String.equal tag "") then waivers := (!line, tag) :: !waivers
     end);
    if text.[!i] = '\n' then incr line;
    incr i
  done;
  List.rev !waivers

let waived t ~code ~line =
  match waiver_tag_of_code code with
  | None -> false
  | Some tag ->
    List.exists (fun (l, tg) -> String.equal tg tag && (l = line || l = line - 1)) t.src_waivers

let parse ~path text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure ->
    Ok { src_path = path; src_text = text; src_structure = structure; src_waivers = scan_waivers text }
  | exception Syntaxerr.Error _ ->
    Error (Printf.sprintf "%s: syntax error at line %d" path lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum)
  | exception Lexer.Error (_, loc) ->
    Error (Printf.sprintf "%s: lexer error at line %d" path loc.Location.loc_start.Lexing.pos_lnum)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~root ~path =
  let full = if Filename.is_relative path then Filename.concat root path else path in
  match read_file full with
  | text -> parse ~path text
  | exception Sys_error msg -> Error msg

(* Location helpers shared by the check passes. *)

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let diag_at t ~code ~line severity message =
  Lintkit.Diag.make
    ~location:(Lintkit.Diag.at ~file:t.src_path ~line ())
    ~code severity message
