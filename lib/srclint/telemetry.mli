(** TM: telemetry drift between emitted series names, the pre-declared
    storage catalog ([declare_storage_series]), and DESIGN.md's series
    table. Scoped to the catalog's own namespaces (db, buffer_pool). *)

type kind = Counter | Gauge | Histogram | Span

val kind_to_string : kind -> string

type emission = {
  em_name : string;
  em_wildcard : bool;  (** [em_name] is a literal prefix of a computed name *)
  em_kind : kind;
  em_file : string;
  em_line : int;
}

val emissions_of_source : Source.t -> emission list
val catalog_of_source : Source.t -> string list

val doc_names : string -> string list * string list
(** Backticked series-shaped tokens in markdown: (exact, wildcard prefixes —
    [`db.wal.records.<kind>`] declares the prefix ["db.wal.records."]). *)

val check :
  catalog:string list ->
  doc:string list * string list ->
  emissions:emission list ->
  Lintkit.Diag.t list
