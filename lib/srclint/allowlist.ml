(* The checked-in inventory of module-level mutable state, and therefore
   the migration worklist for the multicore (domain-parallel store pool)
   PR: every entry names one top-level binding that holds shared mutable
   state and carries a [domain:] annotation saying how that state will be
   made domain-safe:

     confined        stays single-domain (per-store / per-session state,
                     or read-only after initialization)
     lock-planned    will be guarded by a mutex when domains arrive
     atomic-planned  will become Atomic.t / a lock-free structure
     locked          landed: guarded by a mutex (the entry names it)
     atomic          landed: an Atomic.t
     domain-local    landed: one value per domain (Domain.DLS)

   Entries are keyed by (file, qualified binding name). DS001 reports
   allowlisted state (the worklist view), DS002 fails CI for state with
   no valid entry, DS003 flags stale entries. *)

type domain = Confined | Lock_planned | Atomic_planned | Locked | Atomic | Domain_local

let domain_to_string = function
  | Confined -> "confined"
  | Lock_planned -> "lock-planned"
  | Atomic_planned -> "atomic-planned"
  | Locked -> "locked"
  | Atomic -> "atomic"
  | Domain_local -> "domain-local"

let domain_of_string = function
  | "confined" -> Some Confined
  | "lock-planned" -> Some Lock_planned
  | "atomic-planned" -> Some Atomic_planned
  | "locked" -> Some Locked
  | "atomic" -> Some Atomic
  | "domain-local" -> Some Domain_local
  | _ -> None

type entry = {
  al_file : string;  (* repo-relative path, '/'-separated *)
  al_name : string;  (* binding name, "Sub.name" inside a submodule *)
  al_kind : string option;  (* ref / Hashtbl.create / ... (informational) *)
  al_domain : domain option;  (* None = invalid entry, DS002 *)
  al_note : string option;
}

type t = entry list

(* ------------------------------------------------------------------ *)
(* Sexp round trip. Each entry is an association list:
   ((file lib/obs/trace.ml) (name ring) (kind ref) (domain confined)
    (note "...")) *)

let entry_of_sexp sexp =
  match sexp with
  | Sexp.List fields ->
    let assoc key =
      List.find_map
        (function
          | Sexp.List [ Sexp.Atom k; Sexp.Atom v ] when String.equal k key -> Some v
          | _ -> None)
        fields
    in
    let bad = List.exists (function Sexp.List [ Sexp.Atom _; Sexp.Atom _ ] -> false | _ -> true) fields in
    if bad then Error ("malformed allowlist entry: " ^ Sexp.to_string sexp)
    else (
      match (assoc "file", assoc "name") with
      | Some file, Some name ->
        Ok
          {
            al_file = file;
            al_name = name;
            al_kind = assoc "kind";
            al_domain = Option.bind (assoc "domain") domain_of_string;
            al_note = assoc "note";
          }
      | _ -> Error ("allowlist entry needs (file ...) and (name ...): " ^ Sexp.to_string sexp))
  | Sexp.Atom a -> Error ("expected an allowlist entry list, got atom " ^ a)

let entry_to_sexp e =
  let field k v = Sexp.List [ Sexp.Atom k; Sexp.Atom v ] in
  Sexp.List
    (List.filter_map Fun.id
       [
         Some (field "file" e.al_file);
         Some (field "name" e.al_name);
         Option.map (field "kind") e.al_kind;
         Option.map (fun d -> field "domain" (domain_to_string d)) e.al_domain;
         Option.map (field "note") e.al_note;
       ])

let parse src =
  match Sexp.parse src with
  | Error e -> Error e
  | Ok sexps ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest -> ( match entry_of_sexp s with Ok e -> go (e :: acc) rest | Error e -> Error e)
    in
    go [] sexps

let render entries =
  let header =
    "; srclint domain-safety allowlist: every module-level mutable binding in\n\
     ; the tree, annotated with its multicore migration plan. DS002 fails the\n\
     ; build for state missing from this file or missing its domain: field.\n\
     ; domains: confined | lock-planned | atomic-planned (plans) and\n\
     ; locked | atomic | domain-local (landed mechanisms)\n"
  in
  header ^ String.concat "\n" (List.map (fun e -> Sexp.to_string (entry_to_sexp e)) entries) ^ "\n"

let find entries ~file ~name =
  List.find_opt (fun e -> String.equal e.al_file file && String.equal e.al_name name) entries
