(* The srclint driver: enumerate .ml files under the requested
   directories, parse each with compiler-libs, run the DS/RD passes per
   file and the TM pass across the whole set, apply inline waivers, and
   fold the allowlist into DS verdicts. *)

module Diag = Lintkit.Diag

type options = {
  opt_root : string;  (* repo root; dirs and catalog paths are relative to it *)
  opt_dirs : string list;
  opt_allowlist : string;
  opt_design : string option;
}

let default_options ?(root = ".") () =
  { opt_root = root; opt_dirs = [ "lib"; "bin" ]; opt_allowlist = "srclint_allow.sexp";
    opt_design = Some "DESIGN.md" }

type run = {
  run_diags : Diag.t list;
  run_files : string list;  (* repo-relative paths actually analyzed *)
}

(* ------------------------------------------------------------------ *)
(* File discovery *)

let normalize path =
  let path = String.concat "/" (String.split_on_char '\\' path) in
  let parts = List.filter (fun p -> p <> "" && p <> ".") (String.split_on_char '/' path) in
  String.concat "/" parts

let rec find_ml_files root rel acc =
  let full = if rel = "" then root else Filename.concat root rel in
  match Sys.is_directory full with
  | exception Sys_error _ -> acc
  | false -> if Filename.check_suffix rel ".ml" then rel :: acc else acc
  | true ->
    let entries = Sys.readdir full in
    Array.sort compare entries;
    Array.fold_left
      (fun acc name ->
        if String.length name > 0 && (name.[0] = '.' || name.[0] = '_') then acc
        else find_ml_files root (if rel = "" then name else rel ^ "/" ^ name) acc)
      acc entries

(* ------------------------------------------------------------------ *)

let ds_diags ~allowlist ~sources =
  let matched = ref [] in
  let diags = ref [] in
  List.iter
    (fun (src : Source.t) ->
      List.iter
        (fun (s : Checks.state_site) ->
          let file = src.Source.src_path in
          match Allowlist.find allowlist ~file ~name:s.Checks.st_name with
          | Some { Allowlist.al_domain = Some d; _ } ->
            matched := (file, s.Checks.st_name) :: !matched;
            diags :=
              Source.diag_at src ~code:"DS001" ~line:s.Checks.st_line Diag.Info
                (Printf.sprintf "module-level mutable state `%s` (%s) — allowlisted, domain: %s"
                   s.Checks.st_name s.Checks.st_kind (Allowlist.domain_to_string d))
              :: !diags
          | Some { Allowlist.al_domain = None; _ } ->
            matched := (file, s.Checks.st_name) :: !matched;
            diags :=
              Source.diag_at src ~code:"DS002" ~line:s.Checks.st_line Diag.Error
                (Printf.sprintf
                   "module-level mutable state `%s` (%s): its srclint_allow.sexp entry lacks the \
                    required domain: annotation (confined | lock-planned | atomic-planned | \
                    locked | atomic | domain-local)"
                   s.Checks.st_name s.Checks.st_kind)
              :: !diags
          | None ->
            diags :=
              Source.diag_at src ~code:"DS002" ~line:s.Checks.st_line Diag.Error
                (Printf.sprintf
                   "module-level mutable state `%s` (%s) is not in srclint_allow.sexp; two domains \
                    running queries would race on it — add an entry with a domain: plan"
                   s.Checks.st_name s.Checks.st_kind)
              :: !diags)
        (Checks.module_state src))
    sources;
  let scanned = List.map (fun (s : Source.t) -> s.Source.src_path) sources in
  let stale =
    List.filter_map
      (fun (e : Allowlist.entry) ->
        if
          List.mem e.Allowlist.al_file scanned
          && not
               (List.exists
                  (fun (f, n) -> String.equal f e.Allowlist.al_file && String.equal n e.Allowlist.al_name)
                  !matched)
        then
          Some
            (Diag.make
               ~location:(Diag.at ~file:e.Allowlist.al_file ())
               ~code:"DS003" Diag.Warning
               (Printf.sprintf
                  "stale allowlist entry: no module-level mutable binding `%s` exists in %s"
                  e.Allowlist.al_name e.Allowlist.al_file))
        else None)
      allowlist
  in
  (List.rev !diags, stale)

let run (opts : options) : run =
  let root = opts.opt_root in
  let files =
    List.concat_map (fun dir -> List.rev (find_ml_files root (normalize dir) [])) opts.opt_dirs
  in
  let parse_failures = ref [] in
  let sources =
    List.filter_map
      (fun rel ->
        match Source.load ~root ~path:rel with
        | Ok src -> Some src
        | Error msg ->
          parse_failures :=
            Diag.make ~location:(Diag.at ~file:rel ()) ~code:"SL000" Diag.Error msg
            :: !parse_failures;
          None)
      files
  in
  let in_root path = if Filename.is_relative path then Filename.concat root path else path in
  let allowlist_file = in_root opts.opt_allowlist in
  let allowlist, allowlist_diags =
    if Sys.file_exists allowlist_file then (
      match Allowlist.parse (Source.read_file allowlist_file) with
      | Ok entries -> (entries, [])
      | Error msg ->
        ( [],
          [
            Diag.make
              ~location:(Diag.at ~file:opts.opt_allowlist ())
              ~code:"SL000" Diag.Error
              (Printf.sprintf "allowlist does not parse: %s" msg);
          ] ))
    else ([], [])
  in
  let ds, stale = ds_diags ~allowlist ~sources in
  let rd =
    List.concat_map
      (fun src -> Checks.fd_leaks src @ Checks.catchalls src @ Checks.eintr_in_loops src)
      sources
  in
  let tm =
    let catalog = List.concat_map Telemetry.catalog_of_source sources in
    if catalog = [] then []
    else
      let doc =
        match opts.opt_design with
        | None -> ([], [])
        | Some rel ->
          let path = in_root rel in
          if Sys.file_exists path then Telemetry.doc_names (Source.read_file path) else ([], [])
      in
      let emissions = List.concat_map Telemetry.emissions_of_source sources in
      Telemetry.check ~catalog ~doc ~emissions
  in
  let source_for path =
    List.find_opt (fun (s : Source.t) -> String.equal s.Source.src_path path) sources
  in
  let waived (d : Diag.t) =
    match (d.Diag.location.Diag.loc_file, d.Diag.location.Diag.loc_line) with
    | Some f, Some l -> (
      match source_for f with
      | Some src -> Source.waived src ~code:d.Diag.code ~line:l
      | None -> false)
    | _ -> false
  in
  let all =
    List.filter
      (fun d -> not (waived d))
      (List.rev !parse_failures @ allowlist_diags @ ds @ stale @ rd @ tm)
  in
  let by_site =
    List.stable_sort
      (fun a b ->
        compare
          (a.Diag.location.Diag.loc_file, a.Diag.location.Diag.loc_line)
          (b.Diag.location.Diag.loc_file, b.Diag.location.Diag.loc_line))
      all
  in
  { run_diags = Diag.sort by_site; run_files = files }

let errors diags = Diag.count_at_least Diag.Error diags
let strict_failures diags = Diag.count_at_least Diag.Warning diags
