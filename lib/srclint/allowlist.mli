(** The checked-in allowlist of module-level mutable state
    ([srclint_allow.sexp]) — the multicore migration worklist. *)

type domain =
  | Confined  (** stays single-domain (per-store / per-session, or read-only) *)
  | Lock_planned  (** plan: guard with a mutex when domains arrive *)
  | Atomic_planned  (** plan: become Atomic.t / lock-free *)
  | Locked  (** landed: guarded by a mutex (the note names it) *)
  | Atomic  (** landed: an Atomic.t *)
  | Domain_local  (** landed: one value per domain (Domain.DLS) *)

val domain_to_string : domain -> string
val domain_of_string : string -> domain option

type entry = {
  al_file : string;  (** repo-relative path, '/'-separated *)
  al_name : string;  (** binding name, ["Sub.name"] inside a submodule *)
  al_kind : string option;  (** ref / Hashtbl.create / ... (informational) *)
  al_domain : domain option;  (** [None] = invalid entry (DS002) *)
  al_note : string option;
}

type t = entry list

val entry_of_sexp : Sexp.t -> (entry, string) result
val entry_to_sexp : entry -> Sexp.t
val parse : string -> (t, string) result
val render : t -> string
val find : t -> file:string -> name:string -> entry option
