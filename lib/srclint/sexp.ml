(* Minimal s-expression reader/printer for srclint_allow.sexp. No external
   dependency (same zero-dependency posture as servekit): atoms are bare
   tokens or double-quoted strings with backslash escapes, `;` comments
   run to end of line. The printer quotes exactly the atoms the reader
   could not read back bare, so parse -> render -> parse is the identity
   (asserted in test_srclint). *)

type t = Atom of string | List of t list

let is_bare_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '-' | '_' | '.' | '/' | ':' | '+' | '*' | '<' | '>' | '?' | '=' | '!' | '#' | '%' | '&' -> true
  | _ -> false

let needs_quoting s =
  String.length s = 0 || not (String.for_all is_bare_char s)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_buf buf = function
  | Atom s -> if needs_quoting s then (Buffer.add_char buf '"'; Buffer.add_string buf (escape s); Buffer.add_char buf '"') else Buffer.add_string buf s
  | List items ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ' ';
        to_buf buf item)
      items;
    Buffer.add_char buf ')'

let to_string sexp =
  let buf = Buffer.create 128 in
  to_buf buf sexp;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader *)

exception Parse_error of string

let parse_many src =
  let n = String.length src in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let rec skip_ws () =
    if !pos < n then
      match src.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
      | ';' ->
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done;
        skip_ws ()
      | _ -> ()
  in
  let quoted_atom () =
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string at end of input";
      match src.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape at end of input";
        (match src.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | c -> fail "bad escape \\%c" c);
        incr pos;
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let bare_atom () =
    let start = !pos in
    while !pos < n && is_bare_char src.[!pos] do
      incr pos
    done;
    if !pos = start then fail "unexpected character %C at offset %d" src.[!pos] start;
    Atom (String.sub src start (!pos - start))
  in
  let rec sexp () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input";
    match src.[!pos] with
    | '(' ->
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        if !pos >= n then fail "unclosed list";
        if src.[!pos] = ')' then incr pos
        else begin
          items := sexp () :: !items;
          loop ()
        end
      in
      loop ();
      List (List.rev !items)
    | ')' -> fail "unexpected ) at offset %d" !pos
    | '"' -> quoted_atom ()
    | _ -> bare_atom ()
  in
  let out = ref [] in
  let rec all () =
    skip_ws ();
    if !pos < n then begin
      out := sexp () :: !out;
      all ()
    end
  in
  all ();
  List.rev !out

let parse src =
  match parse_many src with
  | sexps -> Ok sexps
  | exception Parse_error msg -> Error msg
