(** Minimal s-expressions for [srclint_allow.sexp]: bare or quoted atoms,
    [;] line comments. [parse] of [to_string] output is the identity. *)

type t = Atom of string | List of t list

exception Parse_error of string

val to_string : t -> string

val parse_many : string -> t list
(** All toplevel sexps in the input. Raises {!Parse_error}. *)

val parse : string -> (t list, string) result
