(** The srclint driver: file discovery, per-file DS/RD passes, the
    whole-tree TM pass, allowlist application, and waiver filtering. *)

type options = {
  opt_root : string;
  opt_dirs : string list;
  opt_allowlist : string;  (** repo-relative path to srclint_allow.sexp *)
  opt_design : string option;  (** repo-relative path to DESIGN.md, if any *)
}

val default_options : ?root:string -> unit -> options

type run = {
  run_diags : Lintkit.Diag.t list;
  run_files : string list;  (** repo-relative paths analyzed *)
}

val run : options -> run

val errors : Lintkit.Diag.t list -> int
(** Findings at Error — the non-strict failure count. *)

val strict_failures : Lintkit.Diag.t list -> int
(** Findings at Warning or above — the [--strict] failure count. *)
