(* Blocking accept-loop HTTP server. One domain runs [run]; the pool's
   data plane runs [run_parallel], which spawns extra domains that all
   block in accept(2) on the same listening socket — the kernel wakes
   exactly one per connection, so no user-space dispatch is needed. The
   handler must be domain-safe when more than one domain serves (the
   store pool's is; the single-store observability handler stays on one
   domain). SO_RCVTIMEO/SO_SNDTIMEO bound a stalled peer; a parse error
   answers a clean 4xx; a handler exception answers 500 rather than
   killing the loop.

   Connections are persistent when the request allows it (HTTP/1.1
   keep-alive), bounded by [max_keepalive_requests] so one peer cannot
   hold a serving domain forever. *)

type handler = Http.request -> Http.response

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  handler : handler;
  running : bool Atomic.t;  (* read by every serving domain, cleared by stop *)
}

let io_timeout = 5.0 (* seconds a peer may stall a read or write *)
let max_keepalive_requests = 100

let create ?(host = "127.0.0.1") ?(port = 0) handler =
  (* A peer that resets or closes before reading the response would
     otherwise deliver SIGPIPE on write, whose default action kills the
     whole host process; ignoring it turns the write into a catchable
     EPIPE Unix_error. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let addr = Unix.inet_addr_of_string host in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (addr, port));
     Unix.listen sock 64
   with e ->
     Unix.close sock;
     raise e);
  let bound_port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
  in
  { sock; bound_port; handler; running = Atomic.make true }

let port t = t.bound_port

(* A signal landing mid-transfer makes write/read return EINTR; retry
   instead of surfacing a spurious failure to the peer. *)
let rec write_retry fd s off len =
  try Unix.write_substring fd s off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd s off len

let rec read_retry fd buf off len =
  try Unix.read fd buf off len with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf off len

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + write_retry fd s !off (n - !off)
  done

let serve_conn t conn =
  (try
     Unix.setsockopt_float conn Unix.SO_RCVTIMEO io_timeout;
     Unix.setsockopt_float conn Unix.SO_SNDTIMEO io_timeout
   with Unix.Unix_error _ -> ());
  (* The parser maps timeouts to a typed error, but other socket
     errors (ECONNRESET from an abortive close, EPIPE on the
     response write) surface as Unix_error here; a broken peer
     must never take down the accept loop. *)
  (try
     (* Keep-alive loop: serve requests off this connection until the
        peer closes, asks to close, errors, or hits the reuse bound. *)
     let remaining = ref max_keepalive_requests in
     let continue = ref true in
     while !continue && !remaining > 0 do
       decr remaining;
       match Http.parse_request (read_retry conn) with
       | Error e ->
         (* any parse error ends the connection: framing is suspect *)
         (match Http.response_of_error e with
         | Some resp -> write_all conn (Http.render resp)
         | None -> ());
         continue := false
       | Ok req ->
         let resp =
           match t.handler req with
           | resp -> resp
           (* the handler boundary: any handler failure must answer 500,
              never kill the accept loop — srclint: allow-catchall *)
           | exception _ ->
             { Http.status = 500; content_type = "text/plain"; body = "internal error\n" }
         in
         let ka = Http.keep_alive req && !remaining > 0 && Atomic.get t.running in
         write_all conn (Http.render ~keep_alive:ka resp);
         continue := ka
     done
   with Unix.Unix_error _ -> ());
  try Unix.shutdown conn Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let handle_one t =
  if not (Atomic.get t.running) then false
  else
    match Unix.accept t.sock with
    | conn, _ ->
      (* Close at the accept site: the connection fd is owned here, and
         Fun.protect covers everything serve_conn does with it. *)
      Fun.protect
        ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
        (fun () -> serve_conn t conn);
      true
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      (* stop closed the listener under us *)
      Atomic.set t.running false;
      false
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
      (* signal, or the peer aborted before we accepted — keep serving *)
      Atomic.get t.running
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE | Unix.ENOBUFS | Unix.ENOMEM), _, _)
      ->
      (* fd / buffer exhaustion: back off briefly and retry rather than
         letting the error terminate the run loop *)
      (try Unix.sleepf 0.05 with Unix.Unix_error _ -> ());
      Atomic.get t.running

let run t = while handle_one t do () done

(* [domains] total serving domains: the calling one plus (domains - 1)
   spawned. They all block in accept on the shared listener; stop wakes
   every one (closing the fd fails their accepts with EBADF). *)
let run_parallel ?(domains = 1) t =
  let extra = max 0 (domains - 1) in
  let spawned = List.init extra (fun _ -> Domain.spawn (fun () -> run t)) in
  Fun.protect ~finally:(fun () -> List.iter Domain.join spawned) (fun () -> run t)

let stop t =
  if Atomic.compare_and_set t.running true false then begin
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Client (tests, health checks) *)

let request ?(host = "127.0.0.1") ~port ?(meth = "GET") ?body path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.setsockopt_float sock Unix.SO_RCVTIMEO io_timeout;
      Unix.setsockopt_float sock Unix.SO_SNDTIMEO io_timeout;
      let body_part =
        match body with
        | None -> ""
        | Some b -> Printf.sprintf "Content-Length: %d\r\n" (String.length b)
      in
      write_all sock
        (Printf.sprintf "%s %s HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n%s\r\n%s" meth
           path host port body_part
           (match body with Some b -> b | None -> ""));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let eof = ref false in
      while not !eof do
        let n = read_retry sock chunk 0 (Bytes.length chunk) in
        if n = 0 then eof := true else Buffer.add_subbytes buf chunk 0 n
      done;
      let raw = Buffer.contents buf in
      (* split status line + headers from the body at the blank line *)
      let header_end =
        let rec find i =
          if i + 3 < String.length raw then
            if String.sub raw i 4 = "\r\n\r\n" then i + 4
            else if raw.[i] = '\n' && raw.[i + 1] = '\n' then i + 2
            else find (i + 1)
          else failwith "malformed HTTP response: no header terminator"
        in
        find 0
      in
      let status =
        match String.split_on_char ' ' (String.sub raw 0 (String.index raw '\r')) with
        | _ :: code :: _ -> int_of_string code
        | _ -> failwith "malformed HTTP status line"
      in
      (status, String.sub raw header_end (String.length raw - header_end)))

let get ?host ~port path = request ?host ~port path
