(** Minimal HTTP/1.1 request parsing and response rendering for the
    embedded observability and data-plane servers. Stdlib-only;
    Content-Length bodies but no chunked encoding. Connection reuse is
    the caller's decision: {!keep_alive} reads the request's intent and
    {!render} stamps the matching [Connection:] header (close by
    default).

    The parser is deliberately paranoid: hard limits on the request
    line, header count, total header bytes, and body size, and every
    malformed input maps onto a typed error (rendered as a 4xx) rather
    than an exception. The fuzz tests feed it truncated lines, oversized
    headers, and pipelined junk and assert exactly that. *)

type request = {
  meth : string;  (** verb as sent, e.g. "GET" *)
  target : string;  (** raw request target, e.g. "/slowlog?limit=5" *)
  path : string;  (** target up to the first '?' *)
  query : (string * string) list;  (** decoded k=v pairs after '?' *)
  version : string;  (** "HTTP/1.0" or "HTTP/1.1" *)
  headers : (string * string) list;  (** names lowercased, in order *)
  body : string;  (** Content-Length body; [""] when none was sent *)
}

type error =
  | Bad_request of string  (** malformed syntax: render as 400 *)
  | Too_large of string  (** a header limit tripped: render as 431 *)
  | Body_too_large of string  (** body over budget: render as 413 *)
  | Timeout  (** the peer stalled: render as 408 *)
  | Closed  (** EOF before a full request: no response possible *)

val max_request_line : int
(** Longest accepted request line, bytes (8 KiB). *)

val max_header_count : int
(** Most headers accepted in one request (128). *)

val max_header_bytes : int
(** Total header-section byte budget (64 KiB). *)

val max_body_bytes : int
(** Largest accepted Content-Length body (16 MiB). *)

val parse_request : (bytes -> int -> int -> int) -> (request, error) result
(** Parse one request from a [read buf off len -> n] feed function
    (returning 0 signals EOF; raising [Unix.Unix_error (EAGAIN | …)]
    after a socket timeout maps to [Timeout]). Reads byte-at-a-time up
    to the blank line, then the declared Content-Length body in bounded
    chunks. Exactly one request's bytes are consumed, so a keep-alive
    loop can call it again on the same feed. *)

val parse_string : string -> (request, error) result
(** [parse_request] over an in-memory string (tests, fuzzing). Trailing
    bytes past the first request are ignored, like a closed pipeline. *)

val query_param : request -> string -> string option
(** First value of a query parameter, if present. *)

type response = { status : int; content_type : string; body : string }

val response_of_error : error -> response option
(** The 4xx a parse error maps to; [None] for [Closed]. *)

val keep_alive : request -> bool
(** Whether the request permits reusing the connection: HTTP/1.1 unless
    [Connection: close], HTTP/1.0 only with [Connection: keep-alive]. *)

val render : ?keep_alive:bool -> response -> string
(** Serialize status line, minimal headers (content type, length,
    [Connection: keep-alive] or [close] — close by default), and
    body. *)

val reason : int -> string
(** Reason phrase for the status codes the server emits. *)
