(** Minimal HTTP/1.1 request parsing and response rendering for the
    embedded observability server. Stdlib-only; no keep-alive, no
    chunked bodies — every exchange is one request, one response,
    connection closed.

    The parser is deliberately paranoid: hard limits on the request
    line, header count, and total header bytes, and every malformed
    input maps onto a typed error (rendered as a 4xx) rather than an
    exception. The fuzz tests feed it truncated lines, oversized
    headers, and pipelined junk and assert exactly that. *)

type request = {
  meth : string;  (** verb as sent, e.g. "GET" *)
  target : string;  (** raw request target, e.g. "/slowlog?limit=5" *)
  path : string;  (** target up to the first '?' *)
  query : (string * string) list;  (** decoded k=v pairs after '?' *)
  version : string;  (** "HTTP/1.0" or "HTTP/1.1" *)
  headers : (string * string) list;  (** names lowercased, in order *)
}

type error =
  | Bad_request of string  (** malformed syntax: render as 400 *)
  | Too_large of string  (** a limit tripped: render as 431 *)
  | Timeout  (** the peer stalled: render as 408 *)
  | Closed  (** EOF before a full request: no response possible *)

val max_request_line : int
(** Longest accepted request line, bytes (8 KiB). *)

val max_header_count : int
(** Most headers accepted in one request (128). *)

val max_header_bytes : int
(** Total header-section byte budget (64 KiB). *)

val parse_request : (bytes -> int -> int -> int) -> (request, error) result
(** Parse one request from a [read buf off len -> n] feed function
    (returning 0 signals EOF; raising [Unix.Unix_error (EAGAIN | …)]
    after a socket timeout maps to [Timeout]). Reads byte-at-a-time up
    to the blank line; request bodies are not consumed (the server only
    answers bodyless GETs). *)

val parse_string : string -> (request, error) result
(** [parse_request] over an in-memory string (tests, fuzzing). Trailing
    bytes past the first request are ignored, like a closed pipeline. *)

val query_param : request -> string -> string option
(** First value of a query parameter, if present. *)

type response = { status : int; content_type : string; body : string }

val response_of_error : error -> response option
(** The 4xx a parse error maps to; [None] for [Closed]. *)

val render : response -> string
(** Serialize status line, minimal headers (content type, length,
    [Connection: close]), and body. *)

val reason : int -> string
(** Reason phrase for the status codes the server emits. *)
