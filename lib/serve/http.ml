(* HTTP/1.1 request parsing and response rendering — the narrow slice
   the observability and data-plane servers need. Content-Length bodies
   (the data plane POSTs queries and documents) but no chunked encoding;
   keep-alive is the caller's choice via [keep_alive]/[render].

   Parsing reads from an abstract feed function: the header section one
   byte at a time until the blank line, then the declared body length in
   bounded chunks, so a malicious or broken peer can never make us
   buffer more than the hard limits below. Every malformed input becomes
   a typed [error]; exceptions other than the socket-timeout family
   propagate (there are none in this code path by construction). *)

type request = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
}

type error =
  | Bad_request of string
  | Too_large of string
  | Body_too_large of string
  | Timeout
  | Closed

let max_request_line = 8 * 1024
let max_header_count = 128
let max_header_bytes = 64 * 1024
let max_body_bytes = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Reading the header block *)

exception Fail of error

let is_timeout = function
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT -> true
  | _ -> false

(* Accumulate bytes until the header-terminating blank line. Accepts
   both CRLF and bare-LF line endings. *)
let read_head feed =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let fst_line_done = ref false in
  let blank = ref false in
  (try
     while not !blank do
       let n = try feed one 0 1 with Unix.Unix_error (e, _, _) when is_timeout e -> raise (Fail Timeout) in
       if n = 0 then raise (Fail Closed);
       Buffer.add_char buf (Bytes.get one 0);
       let len = Buffer.length buf in
       if (not !fst_line_done) && Bytes.get one 0 = '\n' then fst_line_done := true;
       if (not !fst_line_done) && len > max_request_line then
         raise (Fail (Too_large "request line too long"));
       if len > max_header_bytes then raise (Fail (Too_large "header section too large"));
       if Bytes.get one 0 = '\n' then begin
         (* blank line = "\n" or "\r\n" directly after the previous newline *)
         let s = Buffer.contents buf in
         let l = String.length s in
         if l >= 2 && s.[l - 2] = '\n' then blank := true
         else if l >= 3 && s.[l - 2] = '\r' && s.[l - 3] = '\n' then blank := true
         else if l = 1 || (l = 2 && s.[0] = '\r') then blank := true
       end
     done;
     Ok (Buffer.contents buf)
   with Fail e -> Error e)

let split_lines s =
  (* split on '\n', dropping a trailing '\r' per line and the final
     empty line from the blank terminator *)
  String.split_on_char '\n' s
  |> List.map (fun l ->
         let n = String.length l in
         if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
  |> List.filter (fun l -> l <> "")

(* ------------------------------------------------------------------ *)
(* Request line and headers *)

let hexval c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let pct_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n && hexval s.[!i + 1] >= 0 && hexval s.[!i + 2] >= 0 ->
      Buffer.add_char b (Char.chr ((hexval s.[!i + 1] * 16) + hexval s.[!i + 2]));
      i := !i + 2
    | '+' -> Buffer.add_char b ' '
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query q =
  String.split_on_char '&' q
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           match String.index_opt kv '=' with
           | None -> Some (pct_decode kv, "")
           | Some i ->
             Some
               ( pct_decode (String.sub kv 0 i),
                 pct_decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))

let parse_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
    ( String.sub target 0 i,
      parse_query (String.sub target (i + 1) (String.length target - i - 1)) )

let token_ok s =
  s <> ""
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '!' | '#' | '$' | '%' | '&' | '\'' | '*'
         | '+' | '-' | '.' | '^' | '_' | '`' | '|' | '~' ->
           true
         | _ -> false)
       s

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when token_ok meth
         && target <> ""
         && (String.equal version "HTTP/1.1" || String.equal version "HTTP/1.0") ->
    let path, query = parse_target target in
    Ok (meth, target, path, query, version)
  | _ -> Error (Bad_request (Printf.sprintf "malformed request line %S" line))

let parse_header line =
  match String.index_opt line ':' with
  | None | Some 0 -> Error (Bad_request (Printf.sprintf "malformed header %S" line))
  | Some i ->
    let name = String.lowercase_ascii (String.sub line 0 i) in
    if not (token_ok name) then Error (Bad_request (Printf.sprintf "malformed header name %S" name))
    else
      let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      Ok (name, value)

(* The declared Content-Length body, read in bounded chunks. No header
   means no body (chunked transfer encoding is rejected up front). *)
let read_body feed headers =
  match List.assoc_opt "transfer-encoding" headers with
  | Some _ -> Error (Bad_request "transfer encodings are not supported")
  | None -> (
    match List.assoc_opt "content-length" headers with
    | None -> Ok ""
    | Some v -> (
      match int_of_string_opt (String.trim v) with
      | None -> Error (Bad_request (Printf.sprintf "malformed Content-Length %S" v))
      | Some n when n < 0 -> Error (Bad_request (Printf.sprintf "malformed Content-Length %S" v))
      | Some n when n > max_body_bytes ->
        Error (Body_too_large (Printf.sprintf "body of %d bytes exceeds the %d-byte limit" n max_body_bytes))
      | Some n -> (
        let buf = Bytes.create (min n 65536) in
        let out = Buffer.create n in
        try
          while Buffer.length out < n do
            let want = min (Bytes.length buf) (n - Buffer.length out) in
            let got =
              try feed buf 0 want
              with Unix.Unix_error (e, _, _) when is_timeout e -> raise (Fail Timeout)
            in
            if got = 0 then raise (Fail Closed);
            Buffer.add_subbytes out buf 0 got
          done;
          Ok (Buffer.contents out)
        with Fail e -> Error e)))

let parse_request feed =
  match read_head feed with
  | Error e -> Error e
  | Ok head -> (
    match split_lines head with
    | [] -> Error (Bad_request "empty request")
    | first :: header_lines -> (
      if List.length header_lines > max_header_count then
        Error (Too_large "too many headers")
      else
        match parse_request_line first with
        | Error e -> Error e
        | Ok (meth, target, path, query, version) ->
          let rec headers acc = function
            | [] -> Ok (List.rev acc)
            | l :: rest -> (
              match parse_header l with Error e -> Error e | Ok h -> headers (h :: acc) rest)
          in
          (match headers [] header_lines with
          | Error e -> Error e
          | Ok headers -> (
            match read_body feed headers with
            | Error e -> Error e
            | Ok body -> Ok { meth; target; path; query; version; headers; body }))))

let parse_string s =
  let pos = ref 0 in
  let feed buf off len =
    let n = min len (String.length s - !pos) in
    if n > 0 then begin
      Bytes.blit_string s !pos buf off n;
      pos := !pos + n
    end;
    n
  in
  parse_request feed

let query_param r name = List.assoc_opt name r.query

(* ------------------------------------------------------------------ *)
(* Responses *)

type response = { status : int; content_type : string; body : string }

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let response_of_error = function
  | Bad_request msg -> Some { status = 400; content_type = "text/plain"; body = msg ^ "\n" }
  | Too_large msg -> Some { status = 431; content_type = "text/plain"; body = msg ^ "\n" }
  | Body_too_large msg -> Some { status = 413; content_type = "text/plain"; body = msg ^ "\n" }
  | Timeout -> Some { status = 408; content_type = "text/plain"; body = "request timeout\n" }
  | Closed -> None

(* Does this request permit reusing the connection? HTTP/1.1 defaults to
   persistent unless the peer says close; HTTP/1.0 only opts in with an
   explicit keep-alive. *)
let keep_alive r =
  let connection =
    Option.map String.lowercase_ascii (List.assoc_opt "connection" r.headers)
  in
  match r.version with
  | "HTTP/1.1" -> connection <> Some "close"
  | _ -> connection = Some "keep-alive"

let render ?(keep_alive = false) { status; content_type; body } =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n%s"
    status (reason status) content_type (String.length body)
    (if keep_alive then "keep-alive" else "close")
    body
