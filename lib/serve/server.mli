(** Blocking single-threaded HTTP server over stdlib [Unix] sockets:
    the embedded observability endpoint. One connection at a time, one
    request per connection — the handler answers [/metrics]-style reads
    in microseconds, so an accept queue is all the concurrency needed.

    The listener binds eagerly in {!create} (so an ephemeral port is
    known before {!run}), and {!run} loops accept → parse → handle →
    close until {!stop} or thread/process exit. Per-connection receive
    and send timeouts bound how long a stalled peer can hold the
    loop. *)

type handler = Http.request -> Http.response

type t

val create : ?host:string -> ?port:int -> handler -> t
(** Bind a listening socket ([host] defaults to "127.0.0.1", [port] to
    0 = ephemeral) and return the server. Raises [Unix.Unix_error] if
    the bind fails. *)

val port : t -> int
(** The bound port (useful after an ephemeral bind). *)

val handle_one : t -> bool
(** Accept and serve exactly one connection; [false] once the server
    has been stopped. Handler exceptions are caught and answered with
    a 500. *)

val run : t -> unit
(** Serve connections until {!stop} closes the listener. *)

val stop : t -> unit
(** Close the listening socket; a blocked accept returns and {!run}
    exits. Idempotent. *)

val get : ?host:string -> port:int -> string -> int * string
(** Minimal blocking HTTP client for tests and health checks:
    [get ~port "/metrics"] connects, sends one GET, and returns
    (status code, body). Raises on connection failure or a malformed
    response. *)
