(** Blocking HTTP server over stdlib [Unix] sockets: the embedded
    observability endpoint and the store pool's data plane. {!run}
    serves on the calling domain; {!run_parallel} adds serving domains
    that share the one listening socket (the kernel hands each
    connection to exactly one blocked accept). Connections persist
    across requests when the peer allows it (HTTP/1.1 keep-alive),
    bounded per connection so a peer cannot pin a serving domain.

    The listener binds eagerly in {!create} (so an ephemeral port is
    known before {!run}), and {!run} loops accept → parse → handle →
    respond until {!stop} or thread/process exit. Per-connection receive
    and send timeouts bound how long a stalled peer can hold a serving
    domain. *)

type handler = Http.request -> Http.response

type t

val create : ?host:string -> ?port:int -> handler -> t
(** Bind a listening socket ([host] defaults to "127.0.0.1", [port] to
    0 = ephemeral) and return the server. Raises [Unix.Unix_error] if
    the bind fails. *)

val port : t -> int
(** The bound port (useful after an ephemeral bind). *)

val handle_one : t -> bool
(** Accept and serve exactly one connection (which may carry many
    keep-alive requests); [false] once the server has been stopped.
    Handler exceptions are caught and answered with a 500. *)

val run : t -> unit
(** Serve connections until {!stop} closes the listener. *)

val run_parallel : ?domains:int -> t -> unit
(** Like {!run} but serving on [domains] total domains (the calling one
    plus [domains - 1] spawned); returns when {!stop} closes the
    listener and every domain has drained. The handler runs concurrently
    on several domains and must be domain-safe. [~domains:1] is exactly
    {!run}. *)

val max_keepalive_requests : int
(** Most requests served over one connection before the server closes
    it (100). *)

val stop : t -> unit
(** Close the listening socket; a blocked accept returns and {!run}
    exits. Idempotent. *)

val request :
  ?host:string -> port:int -> ?meth:string -> ?body:string -> string -> int * string
(** Minimal blocking HTTP client for tests and health checks: connect,
    send one request ([meth] defaults to GET; [body] adds a
    Content-Length payload), return (status code, body). Raises on
    connection failure or a malformed response. *)

val get : ?host:string -> port:int -> string -> int * string
(** [request] with defaults: [get ~port "/metrics"]. *)
