(** HTTP data plane over a {!Pool}: parallel query serving with the
    observability endpoints delegated to the primary.

    {v
    POST /query    {"doc": N, "xpath": "..."} (or ?doc=N&xpath=...)
                   JSON answer: count, values, fallback, epoch
    POST /load     XML document body (?name=... optional); commits a
                   new pool epoch
    GET  /pool     pool occupancy and epoch
    GET  <other>   the store's observability endpoints (/metrics,
                   /healthz, /slowlog, /traces, /stats) on the primary
    v}

    The handler is domain-safe: serve it with
    {!Servekit.Server.run_parallel} and queries execute concurrently on
    pool replicas while loads serialize through the writer path. *)

val handler : Pool.t -> Servekit.Http.request -> Servekit.Http.response

val serve : ?host:string -> ?port:int -> Pool.t -> Servekit.Server.t
(** Bind a listener for {!handler} ([host] defaults to "127.0.0.1",
    [port] to 0 = ephemeral) and return it without serving — run it
    with {!Servekit.Server.run_parallel}. Pre-registers the storage and
    [pool.*] telemetry series. *)
