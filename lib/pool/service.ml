(* The pool's HTTP data plane: query and load dispatch onto the store
   pool, plus the store's observability endpoints delegated to the
   primary. Designed to be served by several domains at once
   (Servekit.Server.run_parallel): queries run on pool replicas, loads
   serialize through the pool's writer path, and everything the
   observability handler touches runs under the primary's write lock.

     POST /query   {"doc": N, "xpath": "..."}  (or ?doc=N&xpath=...)
                   -> {"doc", "xpath", "count", "values", "fallback",
                       "epoch"}
     POST /load    XML document body, ?name=... optional
                   -> {"doc", "epoch"}
     GET  /pool    pool occupancy and epoch
     GET  <other>  Store.handle on the primary (/metrics /healthz
                   /slowlog /traces /stats) *)

module Store = Xmlstore.Store
module Http = Servekit.Http
module Json = Obskit.Json

let json_response status json =
  { Http.status; content_type = "application/json"; body = Json.to_string json ^ "\n" }

let text_response status body = { Http.status; content_type = "text/plain"; body }

let bad_request fmt = Printf.ksprintf (fun msg -> json_response 400 (Json.Obj [ ("error", Json.Str msg) ])) fmt

(* The query target: the JSON body when one is sent, query parameters
   otherwise (handy for curl smoke tests). *)
let query_args (req : Http.request) =
  if String.length req.Http.body > 0 then
    match Json.parse req.Http.body with
    | Error e -> Error (Printf.sprintf "body is not JSON: %s" e)
    | Ok json -> (
      match (Json.member "doc" json, Json.member "xpath" json) with
      | Some doc, Some xpath -> (
        match (Json.to_float doc, Json.to_str xpath) with
        | Some d, Some x -> Ok (int_of_float d, x)
        | _ -> Error "doc must be a number and xpath a string")
      | _ -> Error "body must carry doc and xpath fields")
  else
    match (Http.query_param req "doc", Http.query_param req "xpath") with
    | Some d, Some x -> (
      match int_of_string_opt d with
      | Some d -> Ok (d, x)
      | None -> Error (Printf.sprintf "doc %S is not an integer" d))
    | _ -> Error "pass a JSON body {\"doc\": N, \"xpath\": \"...\"} or ?doc=N&xpath=..."

let query_response pool doc xpath =
  match Pool.query pool doc xpath with
  | r ->
    json_response 200
      (Json.Obj
         [
           ("doc", Json.Num (float_of_int doc));
           ("xpath", Json.Str xpath);
           ("count", Json.Num (float_of_int (List.length r.Store.values)));
           ("values", Json.List (List.map (fun v -> Json.Str v) r.Store.values));
           ("fallback", Json.Bool r.Store.fallback);
           ("epoch", Json.Num (float_of_int (Pool.epoch pool)));
         ])
  | exception Store.Store_error msg -> bad_request "%s" msg
  | exception Xpathkit.Parser.Parse_error msg -> bad_request "bad xpath: %s" msg

let load_response pool ?name body =
  if String.length body = 0 then bad_request "POST an XML document as the request body"
  else
    match Pool.load_string ?name pool body with
    | doc ->
      json_response 200
        (Json.Obj
           [
             ("doc", Json.Num (float_of_int doc));
             ("epoch", Json.Num (float_of_int (Pool.epoch pool)));
           ])
    | exception Store.Store_error msg -> bad_request "%s" msg
    | exception Xmlkit.Parser.Parse_error e ->
      bad_request "bad XML: %s" (Xmlkit.Parser.error_to_string e)

let pool_json pool =
  Json.Obj
    [
      ("scheme", Json.Str (Pool.scheme pool));
      ("readers", Json.Num (float_of_int (Pool.size pool)));
      ("outstanding", Json.Num (float_of_int (Pool.outstanding pool)));
      ("idle_replicas", Json.Num (float_of_int (Pool.idle_replicas pool)));
      ("epoch", Json.Num (float_of_int (Pool.epoch pool)));
    ]

let handler pool (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/query" -> (
    match query_args req with
    | Error msg -> bad_request "%s" msg
    | Ok (doc, xpath) -> query_response pool doc xpath)
  | "POST", "/load" -> load_response pool ?name:(Http.query_param req "name") req.Http.body
  | "GET", "/pool" -> json_response 200 (pool_json pool)
  | "GET", "/" ->
    text_response 200
      "xmlstore data plane: POST /query /load; GET /pool /metrics /healthz /slowlog /traces \
       /stats\n"
  | "GET", _ -> Pool.with_primary pool (fun store -> Store.handle store req)
  | _, _ -> text_response 405 "only GET, and POST on /query and /load, are supported\n"

let serve ?host ?port pool =
  Store.declare_storage_series ();
  Pool.declare_series ();
  Servekit.Server.create ?host ?port (handler pool)
