(** Single-writer / many-reader store pool: snapshot-isolated parallel
    query execution on OCaml 5 domains.

    One primary {!Xmlstore.Store.t} takes every mutation (serialized by
    a write lock); reader domains {!acquire} private replicas rebuilt
    from the primary's latest committed snapshot (scheme header +
    relational dump, which round-trips byte-exactly), so queries run
    with no shared mutable store state at all and answer byte-identically
    to the primary. {!apply} publishes each mutation as a new epoch:
    readers see either the pre-mutation or post-mutation image, never a
    torn one.

    The replica lifecycle follows the engine-pool
    provision/acquire/release/validate shape: permits bound live
    replicas, {!release} returns a healthy replica to the cache
    (revalidated against the current epoch on next acquire), and a
    reader failure {!discard}s the replica but always returns the
    permit — slots cannot leak.

    Telemetry (process-wide label): [pool.acquire.reuse/refresh/build],
    [pool.discard], [pool.commit] counters; [pool.query],
    [pool.replica_build], [pool.snapshot] histograms; [pool.readers],
    [pool.outstanding], [pool.idle_replicas] gauges. *)

type t

type replica
(** A private store replica plus the epoch it serves. *)

val create : ?readers:int -> ?dtd:Xmlkit.Dtd.t -> Xmlstore.Store.t -> t
(** [create store] wraps [store] as the pool's primary. [readers]
    (default 4, must be >= 1) bounds concurrently-held replicas. Pass
    [dtd] when the store uses the inline scheme (replicas need it to
    rebuild). The primary must afterwards only be touched through
    {!apply} / {!with_primary}. *)

val size : t -> int
(** The reader-permit bound. *)

val epoch : t -> int
(** Epoch of the latest committed snapshot (0 at create; +1 per
    {!apply}). *)

val idle_replicas : t -> int
val outstanding : t -> int
val scheme : t -> string

val acquire : t -> replica
(** Take a permit and a replica at the current epoch, rebuilding from
    the snapshot if no fresh cached replica exists. Blocks while all
    permits are out. Pair with {!release} or {!discard}. *)

val release : t -> replica -> unit
(** Return a healthy replica (and its permit) to the pool. *)

val discard : t -> unit
(** Return only the permit, dropping the replica (used after a reader
    failure left it suspect). *)

val with_reader : t -> (Xmlstore.Store.t -> 'a) -> 'a
(** [with_reader t f] = acquire; run [f] on the replica; release on
    success, discard on exception (re-raised). The permit is returned on
    every path. *)

val query : ?analyze:bool -> t -> Xmlstore.Store.doc_id -> string -> Xmlstore.Store.result
(** {!with_reader} around {!Xmlstore.Store.query}. *)

val with_primary : t -> (Xmlstore.Store.t -> 'a) -> 'a
(** Run [f] on the primary under the write lock {e without} publishing a
    new snapshot — for reads of primary state (stats, slow log,
    observability endpoints). Mutations made here stay invisible to
    readers until the next {!apply}. *)

val apply : t -> (Xmlstore.Store.t -> 'a) -> 'a
(** The writer path: run the mutation on the primary under the write
    lock, then atomically publish the committed image as a new epoch. *)

val load_string : ?name:string -> t -> string -> Xmlstore.Store.doc_id
(** {!apply} around {!Xmlstore.Store.add_string}. *)

val declare_series : unit -> unit
(** Pre-register the [pool.*] counter series at zero so scrapes of an
    idle pool already list them. *)
