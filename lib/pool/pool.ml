(* Single-writer / many-reader store pool over OCaml 5 domains.

   Isolation is by replica, not by sharing: the primary store is only
   ever touched under [write_lock] (writers and observability handlers),
   and each reader domain acquires a whole private [Store.t] replica
   rebuilt from the primary's latest snapshot — the scheme header +
   relational dump, which round-trips byte-exactly (PR 7) — so queries
   on a replica answer identically to the primary at the epoch the
   snapshot was taken. Readers therefore run with NO shared mutable
   state below the (already domain-safe) Metrics/Trace registries:
   there is nothing to race on.

   Epochs give snapshot isolation: [apply] runs the mutation on the
   primary under the write lock, re-dumps it, and atomically installs
   (snapshot, epoch+1). A replica acquired afterwards is rebuilt from
   the new snapshot; one acquired before keeps answering from the old
   image. A reader never observes a half-applied bulk load, because the
   snapshot string is only ever replaced whole, after the load
   committed.

   The free list is permit-counted: [acquire] blocks while [capacity]
   replicas are out. A replica returned by [release] is cached with the
   epoch it serves; [discard] (used when a reader fails) returns only
   the permit, so a possibly-poisoned store is dropped on the floor and
   the next acquire builds a fresh one from the snapshot. Either way
   the permit always comes back — acquire/release/validate cannot leak
   a slot. *)

module Store = Xmlstore.Store
module Metrics = Relstore.Metrics

type replica = { r_store : Store.t; r_epoch : int }

type t = {
  capacity : int;  (* reader permits = max replicas alive at once *)
  dtd : Xmlkit.Dtd.t option;  (* replicas of an inline-scheme store need it *)
  primary : Store.t;
  write_lock : Mutex.t;  (* serializes apply/with_primary on the primary *)
  lock : Mutex.t;  (* guards snapshot/epoch/free/outstanding *)
  cond : Condition.t;  (* signaled when a permit returns *)
  mutable snapshot : string;  (* latest committed image *)
  mutable epoch : int;
  mutable free : replica list;  (* idle replicas, newest first, maybe stale *)
  mutable outstanding : int;  (* permits currently held by readers *)
}

let gauge_state t =
  (* caller holds t.lock *)
  Metrics.set_gauge "pool.readers" t.capacity;
  Metrics.set_gauge "pool.outstanding" t.outstanding;
  Metrics.set_gauge "pool.idle_replicas" (List.length t.free)

let create ?(readers = 4) ?dtd primary =
  if readers < 1 then invalid_arg "Pool.create: readers must be >= 1";
  let t =
    {
      capacity = readers;
      dtd;
      primary;
      write_lock = Mutex.create ();
      lock = Mutex.create ();
      cond = Condition.create ();
      snapshot = Store.snapshot primary;
      epoch = 0;
      free = [];
      outstanding = 0;
    }
  in
  Mutex.protect t.lock (fun () -> gauge_state t);
  t

let size t = t.capacity
let epoch t = Mutex.protect t.lock (fun () -> t.epoch)
let idle_replicas t = Mutex.protect t.lock (fun () -> List.length t.free)
let outstanding t = Mutex.protect t.lock (fun () -> t.outstanding)
let scheme t = Store.scheme t.primary

(* ------------------------------------------------------------------ *)
(* Reader side *)

let replica_label t = Store.metrics_label t.primary ^ "/replica"

(* Take a permit and the freshest idle replica (if any), plus the
   snapshot to rebuild from if it is stale. Blocks while all permits
   are out. *)
let acquire t =
  let cached, snap, ep =
    Mutex.protect t.lock (fun () ->
        while t.outstanding >= t.capacity do
          Condition.wait t.cond t.lock
        done;
        t.outstanding <- t.outstanding + 1;
        let cached =
          match t.free with
          | r :: rest ->
            t.free <- rest;
            Some r
          | [] -> None
        in
        gauge_state t;
        (cached, t.snapshot, t.epoch))
  in
  match cached with
  | Some r when r.r_epoch = ep ->
    Metrics.incr "pool.acquire.reuse";
    r
  | stale ->
    (* Rebuild outside the pool lock: parsing the dump is the expensive
       part and must not serialize other readers. *)
    (match stale with
    | Some _ -> Metrics.incr "pool.acquire.refresh"
    | None -> Metrics.incr "pool.acquire.build");
    Metrics.timed "pool.replica_build" (fun () ->
        { r_store = Store.of_snapshot ?dtd:t.dtd ~metrics_label:(replica_label t) snap;
          r_epoch = ep })

let release t r =
  Mutex.protect t.lock (fun () ->
      t.outstanding <- t.outstanding - 1;
      (* cache at most [capacity] idle replicas; drop the rest *)
      if List.length t.free < t.capacity then t.free <- r :: t.free;
      gauge_state t;
      Condition.signal t.cond)

(* Return only the permit: the replica may be mid-mutation after a
   reader exception, so it is dropped rather than cached. *)
let discard t =
  Metrics.incr "pool.discard";
  Mutex.protect t.lock (fun () ->
      t.outstanding <- t.outstanding - 1;
      gauge_state t;
      Condition.signal t.cond)

let with_reader t f =
  let r = acquire t in
  match f r.r_store with
  | v ->
    release t r;
    v
  | exception e ->
    discard t;
    raise e

let query ?analyze t doc xpath =
  Metrics.timed "pool.query" (fun () ->
      with_reader t (fun store -> Store.query ?analyze store doc xpath))

(* ------------------------------------------------------------------ *)
(* Writer side *)

(* Run [f] on the primary under the write lock without publishing a new
   snapshot: for reads of primary state (stats, slow log, metrics
   endpoints) and for mutations that must stay invisible to the pool
   until a later [apply]. *)
let with_primary t f = Mutex.protect t.write_lock (fun () -> f t.primary)

(* The writer path: mutate the primary, then publish the committed image
   as a new epoch. The snapshot is taken while still holding the write
   lock (no writer can interleave), and installed under the pool lock as
   one assignment — readers see either the old epoch or the new one,
   never a partial image. *)
let apply t f =
  Mutex.protect t.write_lock (fun () ->
      let v = f t.primary in
      let snap = Metrics.timed "pool.snapshot" (fun () -> Store.snapshot t.primary) in
      Mutex.protect t.lock (fun () ->
          t.snapshot <- snap;
          t.epoch <- t.epoch + 1);
      Metrics.incr "pool.commit";
      v)

let load_string ?name t xml = apply t (fun store -> Store.add_string ?name store xml)

(* Pre-register the pool's telemetry series so a scrape of an idle pool
   already lists them. *)
let declare_series () =
  Metrics.with_label "" (fun () ->
      List.iter
        (fun name -> Metrics.incr ~by:0 name)
        [
          "pool.acquire.reuse"; "pool.acquire.refresh"; "pool.acquire.build";
          "pool.discard"; "pool.commit";
        ])
