(* The public facade: an XML store backed by a relational database through a
   chosen shredding scheme. This is the API a downstream application uses;
   everything below it (relational engine, mappings, translators) is
   implementation. *)

module Dom = Xmlkit.Dom
module Index = Xmlkit.Index
module Db = Relstore.Database

exception Store_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Store_error s)) fmt

type doc_id = int

(* One retained slow query: everything needed to diagnose it offline. *)
type slow_statement = {
  ss_sql : string;
  ss_params : Relstore.Value.t array;
  ss_plan : string;  (* rendered plan tree (EXPLAIN) *)
  ss_annot : Relstore.Plan.annotated;  (* executed operator tree (ANALYZE) *)
}

type slow_entry = {
  se_xpath : string;
  se_doc : doc_id;
  se_scheme : string;
  se_total_ns : int;
  se_fallback : bool;
  se_minor_bytes : int;
  se_major_bytes : int;
  se_statements : slow_statement list;
}

let default_slow_log_capacity = 32

type t = {
  db : Db.t;
  mapping : Xmlshred.Mapping.mapping;
  scheme : string;
  dtd : Xmlkit.Dtd.t option;
  validate : bool;
  indexes : bool;
  mutable bulk : bool;  (* shred through a bulk-load session (deferred index builds) *)
  metrics_label : string;
  mutable next_doc : int;
  mutable slow_threshold_ns : int option;
  mutable slow_capacity : int;  (* retained slow-log entries; oldest evicted *)
  mutable slow_entries : slow_entry list;  (* most recent first, bounded *)
  (* Per-document Strong DataGuides, registered lazily at shred time (the
     load path never pays for a guide nobody consults) and invalidated by
     in-place updates. [query] consults them to short-circuit provably-empty
     paths; the linter uses them as its XPath-vs-schema oracle. *)
  guides : (doc_id, Xmlkit.Dataguide.t Lazy.t) Hashtbl.t;
  mutable empty_fastpath : bool;
}

let schemes () = Xmlshred.Registry.ids () @ [ "inline" ]

let resolve_mapping ~scheme ~dtd =
  if String.equal scheme "inline" then
    match dtd with
    | Some d -> Xmlshred.Inline.make d
    | None -> err "the inline scheme requires a DTD (pass ~dtd)"
  else
    match Xmlshred.Registry.find scheme with
    | Some m -> m
    | None ->
      err "unknown scheme %s (available: %s)" scheme (String.concat ", " (schemes ()))

(* Metrics-registry label distinguishing this instance's series from
   other live stores'. Auto-generated scheme#N unless overridden. *)
let instance_counter = Atomic.make 0

let fresh_label ?metrics_label scheme =
  match metrics_label with
  | Some l -> l
  | None -> Printf.sprintf "%s#%d" scheme (Atomic.fetch_and_add instance_counter 1 + 1)

(* Durable stores keep a one-line "scheme" file next to the page files,
   so [open_durable] needs no scheme argument from the caller. *)
let scheme_file dir = Filename.concat dir "scheme"

let write_scheme_file dir scheme =
  let oc = open_out_bin (scheme_file dir) in
  output_string oc (scheme ^ "\n");
  close_out oc

let read_scheme_file dir =
  match open_in_bin (scheme_file dir) with
  | exception Sys_error _ -> err "%s has no scheme file (not a durable store?)" dir
  | ic ->
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    String.trim line

(* [validate] (only meaningful with a DTD) checks documents against the DTD
   before storing them. [durable] roots the store in a directory (paged
   checkpoints + WAL; see Database.open_durable) instead of memory. *)
let create ?dtd ?(validate = false) ?(indexes = true) ?(bulk = true) ?metrics_label ?durable
    scheme =
  let mapping = resolve_mapping ~scheme ~dtd in
  let db =
    match durable with
    | None -> Db.create ()
    | Some dir ->
      if
        Sys.file_exists (Filename.concat dir "CURRENT")
        || Sys.file_exists (Filename.concat dir "wal.log")
      then err "%s already holds a durable store (reopen it with open_durable)" dir;
      let db = Db.open_durable dir in
      write_scheme_file dir scheme;
      db
  in
  ignore
    (Db.exec db
       "CREATE TABLE IF NOT EXISTS documents (doc INTEGER NOT NULL, name TEXT, root_tag TEXT \
        NOT NULL, nodes INTEGER NOT NULL, depth INTEGER NOT NULL)");
  let module M = (val mapping : Xmlshred.Mapping.MAPPING) in
  M.create_schema db;
  if indexes then M.create_indexes db;
  {
    db;
    mapping;
    scheme;
    dtd;
    validate;
    indexes;
    bulk;
    metrics_label = fresh_label ?metrics_label scheme;
    next_doc = 0;
    slow_threshold_ns = None;
    slow_capacity = default_slow_log_capacity;
    slow_entries = [];
    guides = Hashtbl.create 8;
    empty_fastpath = true;
  }

let scheme t = t.scheme
let database t = t.db
let metrics_label t = t.metrics_label
let set_bulk_load t enabled = t.bulk <- enabled
let bulk_load t = t.bulk
let is_durable t = Db.is_durable t.db
let durable_dir t = Db.durable_dir t.db
let last_recovery t = Db.last_recovery t.db

(* Every public operation runs under the store's metrics label (so two
   live stores don't interleave series) and a root trace span naming the
   operation, with the scheme attached. *)
let with_op t ?(attrs = []) name f =
  Relstore.Metrics.with_label t.metrics_label @@ fun () ->
  Obskit.Trace.with_span ~attrs:(("scheme", t.scheme) :: attrs) name f

let registry_row ?name doc (dom : Dom.t) =
  [|
    Relstore.Value.Int doc;
    (match name with Some n -> Relstore.Value.Text n | None -> Relstore.Value.Null);
    Relstore.Value.Text dom.Dom.root.Dom.tag;
    Relstore.Value.Int (Dom.count_nodes dom);
    Relstore.Value.Int (Dom.depth dom);
  |]

let add_dom ?name t (dom : Dom.t) : doc_id =
  (match (t.validate, t.dtd) with
  | true, Some dtd ->
    let violations = Xmlkit.Dtd.validate dtd dom in
    if violations <> [] then
      err "document is not valid against the DTD: %s"
        (String.concat "; " (List.map Xmlkit.Dtd.violation_to_string violations))
  | _ -> ());
  let ix = Index.of_document dom in
  let doc = t.next_doc in
  let module M = (val t.mapping : Xmlshred.Mapping.MAPPING) in
  Relstore.Metrics.timed ("store.shred." ^ t.scheme) (fun () ->
      Obskit.Trace.with_span
        ~attrs:
          [ ("scheme", t.scheme); ("doc", string_of_int doc); ("bulk", string_of_bool t.bulk) ]
        "shred"
        (fun () ->
          if t.bulk then begin
            (* emit through a load session: rows go straight into the table
               arenas, every touched index is built bottom-up at finish
               (index.build spans), and a failed shred drains cleanly *)
            let t0 = Obskit.Clock.now_ns () in
            let session = Db.load_session t.db in
            (try
               Obskit.Trace.with_span "shred.bulk" (fun () -> M.shred_bulk session ~doc ix);
               (* the registry row rides the same session, so on a durable
                  store it commits atomically with the document's rows —
                  recovery never sees a registered document without its
                  data, or shredded rows without their registration *)
               Db.session_insert session "documents" (registry_row ?name doc dom)
             with e ->
               Db.abort_session session;
               raise e);
            let rows = Db.finish_session session in
            let dur_ns = Obskit.Clock.now_ns () - t0 in
            Relstore.Metrics.incr ~by:rows "store.load.rows";
            Obskit.Trace.add_attr "rows" (string_of_int rows);
            Obskit.Trace.add_attr "rows_per_sec"
              (Printf.sprintf "%.0f" (float_of_int rows *. 1e9 /. float_of_int (max 1 dur_ns)))
          end
          else begin
            M.shred t.db ~doc ix;
            Db.insert_row_array t.db "documents" (registry_row ?name doc dom)
          end));
  (* schemes with data-dependent tables (binary, universal) may have created
     new tables during the shred; index creation is idempotent *)
  if t.indexes then M.create_indexes t.db;
  Hashtbl.replace t.guides doc (lazy (Xmlkit.Dataguide.of_index ix));
  t.next_doc <- doc + 1;
  doc

(* The string/file entries parse inside the root span, so the xml.parse
   span nests under store.add_document in the trace. *)
let add_document ?name t dom =
  with_op t "store.add_document" @@ fun () -> add_dom ?name t dom

let add_string ?name t src =
  with_op t "store.add_document" @@ fun () -> add_dom ?name t (Xmlkit.Parser.parse src)

let add_file ?name t path =
  with_op t "store.add_document" @@ fun () -> add_dom ?name t (Xmlkit.Parser.parse_file path)

type doc_info = { doc : doc_id; doc_name : string option; root_tag : string; nodes : int; depth : int }

let documents t =
  let r = Db.query t.db "SELECT doc, name, root_tag, nodes, depth FROM documents ORDER BY doc" in
  List.map
    (fun row ->
      {
        doc = (match row.(0) with Relstore.Value.Int i -> i | _ -> err "bad doc id");
        doc_name =
          (match row.(1) with Relstore.Value.Null -> None | v -> Some (Relstore.Value.to_string v));
        root_tag = Relstore.Value.to_string row.(2);
        nodes = (match row.(3) with Relstore.Value.Int i -> i | _ -> 0);
        depth = (match row.(4) with Relstore.Value.Int i -> i | _ -> 0);
      })
    r.Relstore.Executor.rows

let check_doc t doc =
  if not (List.exists (fun d -> d.doc = doc) (documents t)) then
    err "no document with id %d" doc

let get_document t doc =
  with_op t ~attrs:[ ("doc", string_of_int doc) ] "store.get_document" @@ fun () ->
  check_doc t doc;
  let module M = (val t.mapping : Xmlshred.Mapping.MAPPING) in
  Relstore.Metrics.timed ("store.reconstruct." ^ t.scheme) (fun () ->
      Obskit.Trace.with_span
        ~attrs:[ ("scheme", t.scheme); ("doc", string_of_int doc) ]
        "reconstruct"
        (fun () -> M.reconstruct t.db ~doc))

(* ------------------------------------------------------------------ *)
(* Queries *)

type result = {
  values : string list;  (* XPath string-values in document order *)
  nodes : Dom.node list Lazy.t;  (* reconstructed result subtrees *)
  sql : string list;  (* SQL statements executed *)
  joins : int;
  fallback : bool;  (* answered by reconstruction + native evaluation *)
  analyzed : (string * Relstore.Plan.annotated) list;
      (* with ~analyze:true, one executed operator tree per statement *)
  gc_minor_bytes : int;  (* bytes allocated young while answering *)
  gc_major_bytes : int;  (* bytes promoted or allocated old *)
}

let take n l = List.filteri (fun i _ -> i < n) l

(* The statically-empty fast path: when the document's registered DataGuide
   proves the path can match nothing (the guide is exact for reachability),
   answer with an empty result without planning or executing any SQL. Only
   registered guides are consulted — the hot path never reconstructs; the
   first consultation forces the guide from the shred-time index and later
   ones reuse it. *)
let provably_empty_here t doc path =
  t.empty_fastpath
  &&
  match Hashtbl.find_opt t.guides doc with
  | None -> false
  | Some g ->
    Lintkit.Xpath_lint.provably_empty (Lintkit.Xpath_lint.of_dataguide (Lazy.force g)) path

let empty_result =
  {
    values = [];
    nodes = lazy [];
    sql = [];
    joins = 0;
    fallback = false;
    analyzed = [];
    gc_minor_bytes = 0;
    gc_major_bytes = 0;
  }

let query ?(analyze = false) t doc (xpath : string) : result =
  with_op t ~attrs:[ ("doc", string_of_int doc); ("xpath", xpath) ] "store.query"
  @@ fun () ->
  check_doc t doc;
  let path = Xpathkit.Parser.parse_path xpath in
  if provably_empty_here t doc path then begin
    Relstore.Metrics.incr "store.query.fastpath_empty";
    empty_result
  end
  else
  let module M = (val t.mapping : Xmlshred.Mapping.MAPPING) in
  let run () =
    Relstore.Metrics.timed ("store.query." ^ t.scheme) (fun () -> M.query t.db ~doc path)
  in
  (* The slow log needs per-statement captures even when the caller did not
     ask for ANALYZE, so an armed threshold also installs the sink. *)
  let capturing = analyze || t.slow_threshold_ns <> None in
  (* allocation attributed to this query: words deltas, in bytes (minor =
     everything allocated young; major = promoted + allocated old).
     [Gc.minor_words] reads the allocation pointer, so the minor delta is
     exact — [Gc.quick_stat]'s copy only refreshes at collection points
     and reads 0 across a small query. *)
  let minor0 = Gc.minor_words () in
  let _, _, major0 = Gc.counters () in
  let t0 = Obskit.Clock.now_ns () in
  let r, captures =
    if capturing then Xmlshred.Mapping.collect_captures run else (run (), [])
  in
  let total_ns = Obskit.Clock.now_ns () - t0 in
  let minor1 = Gc.minor_words () in
  let _, _, major1 = Gc.counters () in
  let word = Sys.word_size / 8 in
  let minor_bytes = int_of_float (minor1 -. minor0) * word in
  let major_bytes = int_of_float (major1 -. major0) * word in
  Relstore.Metrics.incr ~by:(max 0 minor_bytes) "store.query.minor_bytes";
  Relstore.Metrics.incr ~by:(max 0 major_bytes) "store.query.major_bytes";
  if Obskit.Trace.recording () then begin
    Obskit.Trace.add_attr "minor_bytes" (string_of_int minor_bytes);
    Obskit.Trace.add_attr "major_bytes" (string_of_int major_bytes)
  end;
  (match t.slow_threshold_ns with
  | Some thr when total_ns >= thr && t.slow_capacity > 0 ->
    let statements =
      List.map
        (fun (c : Xmlshred.Mapping.capture) ->
          {
            ss_sql = c.cap_sql;
            ss_params = c.cap_params;
            ss_plan = Relstore.Plan.to_string c.cap_plan;
            ss_annot = c.cap_annot;
          })
        captures
    in
    Relstore.Metrics.incr "store.slow_queries";
    t.slow_entries <-
      {
        se_xpath = xpath;
        se_doc = doc;
        se_scheme = t.scheme;
        se_total_ns = total_ns;
        se_fallback = r.Xmlshred.Mapping.fallback;
        se_minor_bytes = minor_bytes;
        se_major_bytes = major_bytes;
        se_statements = statements;
      }
      :: take (t.slow_capacity - 1) t.slow_entries
  | _ -> ());
  {
    values = r.Xmlshred.Mapping.values;
    nodes = r.Xmlshred.Mapping.nodes;
    sql = r.Xmlshred.Mapping.sql;
    joins = r.Xmlshred.Mapping.joins;
    fallback = r.Xmlshred.Mapping.fallback;
    analyzed =
      (if analyze then
         List.map (fun (c : Xmlshred.Mapping.capture) -> (c.cap_sql, c.cap_annot)) captures
       else []);
    gc_minor_bytes = minor_bytes;
    gc_major_bytes = major_bytes;
  }

(* ------------------------------------------------------------------ *)
(* Slow-query log *)

let set_slow_threshold t ms =
  t.slow_threshold_ns <-
    Option.map (fun m -> int_of_float (m *. 1e6)) ms

let slow_threshold_ms t = Option.map (fun ns -> float_of_int ns /. 1e6) t.slow_threshold_ns
let slow_log t = t.slow_entries
let clear_slow_log t = t.slow_entries <- []

let set_slow_log_capacity t n =
  if n < 0 then err "slow-log capacity must be non-negative (got %d)" n;
  t.slow_capacity <- n;
  (* shrinking evicts the oldest retained entries immediately *)
  t.slow_entries <- take n t.slow_entries

let slow_log_capacity t = t.slow_capacity

(* ------------------------------------------------------------------ *)
(* Static analysis *)

let set_empty_fastpath t enabled = t.empty_fastpath <- enabled
let empty_fastpath t = t.empty_fastpath

let dataguide t doc =
  check_doc t doc;
  match Hashtbl.find_opt t.guides doc with
  | Some g -> Lazy.force g
  | None ->
    (* loaded stores and updated documents rebuild from the relations *)
    let module M = (val t.mapping : Xmlshred.Mapping.MAPPING) in
    let g = Xmlkit.Dataguide.of_document (M.reconstruct t.db ~doc) in
    Hashtbl.replace t.guides doc (Lazy.from_val g);
    g

let lint_query ?(schema_check = true) t doc xpath =
  with_op t ~attrs:[ ("doc", string_of_int doc); ("xpath", xpath) ] "store.lint"
  @@ fun () ->
  check_doc t doc;
  let oracle =
    if schema_check then Some (Lintkit.Xpath_lint.of_dataguide (dataguide t doc)) else None
  in
  Lintkit.Lint.lint_mapping_query ?oracle ~db:t.db ~doc ~mapping:t.mapping ~xpath ()

let lint_workload ?schema_check t doc xpaths =
  List.map (fun xpath -> lint_query ?schema_check t doc xpath) xpaths

let query_values t doc xpath = (query t doc xpath).values
let query_nodes t doc xpath = Lazy.force (query t doc xpath).nodes
let query_count t doc xpath = List.length (query t doc xpath).values

(* Evaluate one path against every stored document. *)
let query_all t xpath =
  List.map (fun info -> (info.doc, query t info.doc xpath)) (documents t)

let translate_sql t doc xpath =
  (* the SQL a query would run, without materializing values *)
  (query t doc xpath).sql

(* ------------------------------------------------------------------ *)
(* Updates (supported by the edge, dewey, and interval schemes) *)

type update_cost = { rows_inserted : int; rows_updated : int; rows_deleted : int }

let updater t =
  match Xmlshred.Updates.find t.scheme with
  | Some u -> u
  | None -> err "scheme %s does not support in-place updates" t.scheme

let cost_of (c : Xmlshred.Updates.cost) =
  {
    rows_inserted = c.Xmlshred.Updates.inserted;
    rows_updated = c.Xmlshred.Updates.updated;
    rows_deleted = c.Xmlshred.Updates.deleted;
  }

let append_child t doc ~parent node =
  with_op t ~attrs:[ ("doc", string_of_int doc) ] "store.append_child" @@ fun () ->
  check_doc t doc;
  let module U = (val updater t : Xmlshred.Updates.UPDATER) in
  let cost =
    cost_of (U.append_child t.db ~doc ~parent:(Xpathkit.Parser.parse_path parent) node)
  in
  (* the stored structure changed; a stale guide could wrongly prove paths
     into the new subtree empty *)
  Hashtbl.remove t.guides doc;
  cost

let delete_matching t doc xpath =
  with_op t ~attrs:[ ("doc", string_of_int doc) ] "store.delete_matching" @@ fun () ->
  check_doc t doc;
  let module U = (val updater t : Xmlshred.Updates.UPDATER) in
  let cost = cost_of (U.delete_matching t.db ~doc (Xpathkit.Parser.parse_path xpath)) in
  Hashtbl.remove t.guides doc;
  cost

(* ------------------------------------------------------------------ *)
(* Statistics *)

type stats = {
  scheme_id : string;
  document_count : int;
  tables : Relstore.Database.table_stats list;
  total_rows : int;
  total_bytes : int;
  total_index_entries : int;
}

let stats t =
  let tables =
    List.filter
      (fun s -> not (String.equal s.Relstore.Database.st_table "documents"))
      (Db.stats t.db)
  in
  {
    scheme_id = t.scheme;
    document_count = List.length (documents t);
    tables;
    total_rows = List.fold_left (fun a s -> a + s.Relstore.Database.st_rows) 0 tables;
    total_bytes = List.fold_left (fun a s -> a + s.Relstore.Database.st_bytes) 0 tables;
    total_index_entries =
      List.fold_left (fun a s -> a + s.Relstore.Database.st_index_entries) 0 tables;
  }

(* Raw SQL access for power users and the CLI. *)
let sql t statement = Db.exec t.db statement
let explain t select = Db.explain t.db select

(* Plan-cache visibility. Translated queries bind their variable parts
   (doc ids, tag names, literals) as parameters, so repeated queries — and
   [query_all] across documents — reuse one cached plan per statement
   shape. *)
let cache_stats t = Db.cache_stats t.db
let reset_cache_stats t = Db.reset_cache_stats t.db
let set_plan_cache t enabled = Db.set_plan_cache t.db enabled

(* ------------------------------------------------------------------ *)
(* Durability: checkpoint / reopen a directory-rooted store. *)

let checkpoint t =
  with_op t "store.checkpoint" @@ fun () -> Db.checkpoint t.db

let close t = with_op t "store.close" @@ fun () -> Db.close t.db

let open_durable ?dtd ?(validate = false) ?metrics_label dir =
  let scheme = read_scheme_file dir in
  let mapping = resolve_mapping ~scheme ~dtd in
  let db = Db.open_durable dir in
  if Option.is_none (Db.find_table db "documents") then begin
    Db.close db;
    err "%s does not contain a document registry (not a store directory?)" dir
  end;
  (* heal anything a crash before the first flush lost: schema and index
     creation are both IF NOT EXISTS across the schemes *)
  let module M = (val mapping : Xmlshred.Mapping.MAPPING) in
  M.create_schema db;
  M.create_indexes db;
  let next_doc =
    match (Db.query db "SELECT max(doc) FROM documents").Relstore.Executor.rows with
    | [ [| Relstore.Value.Int m |] ] -> m + 1
    | _ -> 0
  in
  {
    db;
    mapping;
    scheme;
    dtd;
    validate;
    indexes = true;
    bulk = true;
    metrics_label = fresh_label ?metrics_label scheme;
    next_doc;
    slow_threshold_ns = None;
    slow_capacity = default_slow_log_capacity;
    slow_entries = [];
    guides = Hashtbl.create 8;
    empty_fastpath = true;
  }

(* ------------------------------------------------------------------ *)
(* Persistence: the store round-trips through the relational dump. *)

let save t path = Db.dump_to_file t.db path

(* In-memory snapshot of the whole store (the relational dump prefixed by
   a scheme header line), and its inverse. The pool uses these to hand
   each reader domain a private replica of the writer's state: dump →
   restore round-trips every scheme byte-exactly (PR 7), so a replica
   answers Q1–Q12 identically to the store it was taken from. *)
let snapshot t = t.scheme ^ "\n" ^ Db.dump t.db

let of_snapshot ?dtd ?metrics_label snap =
  let nl = try String.index snap '\n' with Not_found -> err "snapshot has no scheme header" in
  let scheme = String.sub snap 0 nl in
  let body = String.sub snap (nl + 1) (String.length snap - nl - 1) in
  let mapping = resolve_mapping ~scheme ~dtd in
  let db = Db.restore body in
  if Option.is_none (Db.find_table db "documents") then
    err "snapshot does not contain a document registry";
  let next_doc =
    match (Db.query db "SELECT max(doc) FROM documents").Relstore.Executor.rows with
    | [ [| Relstore.Value.Int m |] ] -> m + 1
    | _ -> 0
  in
  {
    db;
    mapping;
    scheme;
    dtd;
    validate = false;
    indexes = true;
    bulk = true;
    metrics_label = fresh_label ?metrics_label scheme;
    next_doc;
    slow_threshold_ns = None;
    slow_capacity = default_slow_log_capacity;
    slow_entries = [];
    guides = Hashtbl.create 8;
    empty_fastpath = true;
  }

(* ------------------------------------------------------------------ *)
(* Embedded observability server: GET /metrics /healthz /slowlog
   /traces /stats over servekit's blocking listener. The handlers only
   render in-memory state, so they are safe to run between any two
   store operations (the server is single-threaded like the store). *)

module Json = Obskit.Json

(* The storage-telemetry series the endpoint advertises even before the
   first load or crash touches them: create each counter at zero (an
   existing value is preserved — incr by 0) under the process-wide
   label, so a scrape of a freshly opened store already shows the full
   catalog. *)
let declare_storage_series () =
  Relstore.Metrics.with_label "" (fun () ->
      List.iter
        (fun name -> Relstore.Metrics.incr ~by:0 name)
        [
          "db.wal.append"; "db.wal.fsync"; "db.wal.bytes"; "db.wal.commit";
          "db.wal.truncate"; "db.wal.torn_tail"; "db.wal.torn_bytes";
          "db.checkpoint"; "db.recovery.redo_records"; "db.recovery.undone_rows";
          "db.recovery.losers"; "db.recovery.torn_bytes"; "buffer_pool.read";
          "buffer_pool.write"; "buffer_pool.hit"; "buffer_pool.miss";
          "buffer_pool.evict"; "buffer_pool.crc_fail"; "db.btree.leaf_split";
          "db.btree.internal_split"; "db.btree.bulk_build"; "db.btree.bulk_merge";
          "db.page.read"; "db.page.write"; "db.page.fsync"; "db.page.hit";
          "db.page.miss"; "db.page.evict"; "db.page.checkpoint_pages";
          "db.bulk.rows"; "db.bulk.aborted_rows"; "db.bulk.group_int";
          "db.bulk.group_text"; "db.bulk.group_hash"; "db.cache.hit"; "db.cache.miss";
        ];
      List.iter
        (fun name -> Relstore.Metrics.set_gauge name (Relstore.Metrics.gauge name))
        [ "buffer_pool.resident_pages"; "buffer_pool.resident_bytes" ])

let json_response status json =
  { Servekit.Http.status; content_type = "application/json"; body = Json.to_string json ^ "\n" }

let text_response status body = { Servekit.Http.status; content_type = "text/plain"; body }

let metrics_response () =
  let body = Relstore.Metrics.prometheus () in
  match Obskit.Prom.lint body with
  | Ok () ->
    { Servekit.Http.status = 200; content_type = "text/plain; version=0.0.4"; body }
  | Error problems ->
    text_response 500 ("exposition failed lint:\n" ^ String.concat "\n" problems ^ "\n")

let healthz t =
  let wal_writable =
    match durable_dir t with
    | None -> true
    | Some dir -> (
      match Unix.access (Filename.concat dir "wal.log") [ Unix.W_OK ] with
      | () -> true
      | exception Unix.Unix_error _ -> false)
  in
  let checkpoint_age =
    match durable_dir t with
    | None -> None
    | Some dir -> (
      match Unix.stat (Filename.concat dir "CURRENT") with
      | st -> Some (Unix.gettimeofday () -. st.Unix.st_mtime)
      | exception Unix.Unix_error _ -> None)
  in
  let docs =
    try Some (List.length (documents t))
    with Store_error _ | Db.Db_error _ | Relstore.Sql_parser.Parse_error _ | Not_found -> None
  in
  let ok = wal_writable && docs <> None in
  let fields =
    [
      ("ok", Json.Bool ok);
      ("scheme", Json.Str t.scheme);
      ("durable", Json.Bool (is_durable t));
      ("wal_writable", Json.Bool wal_writable);
      ("documents", match docs with Some n -> Json.Num (float_of_int n) | None -> Json.Null);
    ]
    @ (match durable_dir t with Some dir -> [ ("dir", Json.Str dir) ] | None -> [])
    @
    match checkpoint_age with
    | Some age -> [ ("last_checkpoint_age_seconds", Json.Num age) ]
    | None -> []
  in
  json_response (if ok then 200 else 503) (Json.Obj fields)

let slowlog_json t limit =
  let entries = match limit with Some n -> take n t.slow_entries | None -> t.slow_entries in
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("xpath", Json.Str e.se_xpath);
             ("doc", Json.Num (float_of_int e.se_doc));
             ("scheme", Json.Str e.se_scheme);
             ("total_ms", Json.Num (float_of_int e.se_total_ns /. 1e6));
             ("fallback", Json.Bool e.se_fallback);
             ("minor_bytes", Json.Num (float_of_int e.se_minor_bytes));
             ("major_bytes", Json.Num (float_of_int e.se_major_bytes));
             ( "statements",
               Json.List
                 (List.map
                    (fun s ->
                      Json.Obj
                        [
                          ("sql", Json.Str s.ss_sql);
                          ( "params",
                            Json.List
                              (List.map
                                 (fun v -> Json.Str (Relstore.Value.to_string v))
                                 (Array.to_list s.ss_params)) );
                          ("plan", Json.Str s.ss_plan);
                        ])
                    e.se_statements) );
           ])
       entries)

let stats_json t =
  let s = stats t in
  let hits, misses, invalidations, evictions = cache_stats t in
  Json.Obj
    [
      ("scheme", Json.Str s.scheme_id);
      ("documents", Json.Num (float_of_int s.document_count));
      ("total_rows", Json.Num (float_of_int s.total_rows));
      ("total_bytes", Json.Num (float_of_int s.total_bytes));
      ("total_index_entries", Json.Num (float_of_int s.total_index_entries));
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Num (float_of_int hits));
            ("misses", Json.Num (float_of_int misses));
            ("invalidations", Json.Num (float_of_int invalidations));
            ("evictions", Json.Num (float_of_int evictions));
          ] );
      ( "tables",
        Json.List
          (List.map
             (fun ts ->
               Json.Obj
                 [
                   ("table", Json.Str ts.Relstore.Database.st_table);
                   ("rows", Json.Num (float_of_int ts.Relstore.Database.st_rows));
                   ("bytes", Json.Num (float_of_int ts.Relstore.Database.st_bytes));
                   ( "index_entries",
                     Json.Num (float_of_int ts.Relstore.Database.st_index_entries) );
                 ])
             s.tables) );
    ]

let handle t (req : Servekit.Http.request) =
  Relstore.Metrics.with_label t.metrics_label (fun () ->
      Relstore.Metrics.incr "store.serve.requests");
  if not (String.equal req.Servekit.Http.meth "GET") then
    text_response 405 "only GET is supported\n"
  else
    match req.Servekit.Http.path with
    | "/metrics" -> metrics_response ()
    | "/healthz" -> healthz t
    | "/slowlog" ->
      let limit =
        Option.bind (Servekit.Http.query_param req "limit") int_of_string_opt
      in
      json_response 200 (slowlog_json t limit)
    | "/traces" ->
      {
        Servekit.Http.status = 200;
        content_type = "application/json";
        body = Obskit.Export.to_chrome_json (Obskit.Trace.spans ());
      }
    | "/stats" -> json_response 200 (stats_json t)
    | "/" ->
      text_response 200
        "xmlstore observability endpoints: /metrics /healthz /slowlog /traces /stats\n"
    | p -> text_response 404 (Printf.sprintf "no such endpoint %s\n" p)

let serve ?host ?port t =
  declare_storage_series ();
  Servekit.Server.create ?host ?port (handle t)

let load ?dtd ?(validate = false) ?metrics_label ~scheme path =
  let mapping = resolve_mapping ~scheme ~dtd in
  let db = Db.restore_from_file path in
  if Option.is_none (Db.find_table db "documents") then
    err "%s does not contain a document registry (not a store dump?)" path;
  let next_doc =
    match (Db.query db "SELECT max(doc) FROM documents").Relstore.Executor.rows with
    | [ [| Relstore.Value.Int m |] ] -> m + 1
    | _ -> 0
  in
  {
    db;
    mapping;
    scheme;
    dtd;
    validate;
    indexes = true;
    bulk = true;
    metrics_label = fresh_label ?metrics_label scheme;
    next_doc;
    slow_threshold_ns = None;
    slow_capacity = default_slow_log_capacity;
    slow_entries = [];
    guides = Hashtbl.create 8;
    empty_fastpath = true;
  }
