(** An XML store backed by a relational database through a chosen shredding
    scheme.

    {[
      let store = Store.create "edge" in
      let doc = Store.add_string store "<site>...</site>" in
      Store.query_values store doc "/site/people/person/name"
    ]} *)

exception Store_error of string

type t
type doc_id = int

val schemes : unit -> string list
(** Available scheme ids: ["edge"; "binary"; "interval"; "dewey";
    "universal"; "inline"]. *)

val create : ?dtd:Xmlkit.Dtd.t -> ?validate:bool -> ?indexes:bool -> string -> t
(** [create scheme] builds an empty store. The ["inline"] scheme requires
    [~dtd]. [~validate:true] checks each document against the DTD before
    storing. [~indexes:false] skips the scheme's recommended secondary
    indexes (benchmark F3 measures the difference). *)

val scheme : t -> string
val database : t -> Relstore.Database.t
(** The underlying relational database (inspection, raw SQL). *)

(** {1 Documents} *)

val add_document : ?name:string -> t -> Xmlkit.Dom.t -> doc_id
val add_string : ?name:string -> t -> string -> doc_id
val add_file : ?name:string -> t -> string -> doc_id

type doc_info = {
  doc : doc_id;
  doc_name : string option;
  root_tag : string;
  nodes : int;
  depth : int;
}

val documents : t -> doc_info list
val get_document : t -> doc_id -> Xmlkit.Dom.t
(** Reconstruct the full document from its relations. *)

(** {1 Queries} *)

type result = {
  values : string list;  (** XPath string-values, document order *)
  nodes : Xmlkit.Dom.node list Lazy.t;  (** reconstructed result subtrees *)
  sql : string list;  (** SQL statements executed *)
  joins : int;
  fallback : bool;
      (** true when the path was outside the translatable subset and was
          answered by reconstructing the document and evaluating natively *)
  analyzed : (string * Relstore.Plan.annotated) list;
      (** with [~analyze:true], one [(statement text, executed operator
          tree)] pair per SQL statement, in execution order (EXPLAIN
          ANALYZE); empty otherwise *)
}

val query : ?analyze:bool -> t -> doc_id -> string -> result
(** [query t doc xpath] evaluates an absolute XPath location path.
    [~analyze:true] additionally instruments every SQL statement the
    translation executes and fills [analyzed] with per-operator actual
    rows, next-calls, and wall-clock. *)

val query_values : t -> doc_id -> string -> string list
val query_nodes : t -> doc_id -> string -> Xmlkit.Dom.node list
val query_count : t -> doc_id -> string -> int
val query_all : t -> string -> (doc_id * result) list
(** Evaluate one path against every stored document. *)

val translate_sql : t -> doc_id -> string -> string list

(** {1 In-place updates}

    Supported by the [edge], [dewey], and [interval] schemes; the cost
    record exposes how many rows each scheme had to touch — the
    machine-independent measure behind experiment F5 (Dewey appends touch
    only the new subtree; Interval renumbers every following node). *)

type update_cost = { rows_inserted : int; rows_updated : int; rows_deleted : int }

val append_child : t -> doc_id -> parent:string -> Xmlkit.Dom.node -> update_cost
(** [append_child t doc ~parent node] appends [node] (an element subtree)
    as the last child of the single element selected by the XPath
    [parent]. *)

val delete_matching : t -> doc_id -> string -> update_cost
(** Delete every element (subtree included) selected by the path. *)

(** {1 Statistics and raw SQL} *)

type stats = {
  scheme_id : string;
  document_count : int;
  tables : Relstore.Database.table_stats list;
  total_rows : int;
  total_bytes : int;
  total_index_entries : int;
}

val stats : t -> stats
val sql : t -> string -> Relstore.Database.exec_result
val explain : t -> string -> string

val cache_stats : t -> int * int * int * int
(** Prepared-plan cache [(hits, misses, invalidations, evictions)].
    Translated queries
    bind their variable parts as parameters, so repeated queries and
    {!query_all} across documents reuse one cached plan per statement
    shape. *)

val reset_cache_stats : t -> unit

val set_plan_cache : t -> bool -> unit
(** Disable (and empty) or re-enable the plan cache; query results are
    identical either way. *)

(** {1 Persistence} *)

val save : t -> string -> unit
(** Write the whole store (all tables, data, and index definitions) as a
    SQL script. *)

val load : ?dtd:Xmlkit.Dtd.t -> ?validate:bool -> scheme:string -> string -> t
(** Reopen a store saved with {!save}. The scheme must match the one the
    dump was produced with ([inline] additionally needs the same DTD). *)
