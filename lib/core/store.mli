(** An XML store backed by a relational database through a chosen shredding
    scheme.

    {[
      let store = Store.create "edge" in
      let doc = Store.add_string store "<site>...</site>" in
      Store.query_values store doc "/site/people/person/name"
    ]} *)

exception Store_error of string

type t
type doc_id = int

val schemes : unit -> string list
(** Available scheme ids: ["edge"; "binary"; "interval"; "dewey";
    "universal"; "inline"]. *)

val create :
  ?dtd:Xmlkit.Dtd.t ->
  ?validate:bool ->
  ?indexes:bool ->
  ?bulk:bool ->
  ?metrics_label:string ->
  ?durable:string ->
  string ->
  t
(** [create scheme] builds an empty store. The ["inline"] scheme requires
    [~dtd]. [~validate:true] checks each document against the DTD before
    storing. [~indexes:false] skips the scheme's recommended secondary
    indexes (benchmark F3 measures the difference). [~bulk:false] shreds
    row-at-a-time instead of through a bulk-load session with deferred
    bottom-up index builds (default on; results are identical either way —
    benchmark F11 measures the difference). [~metrics_label] overrides the
    auto-generated ["scheme#N"] label that keeps this instance's metrics
    series separate from other live stores'. [~durable:dir] roots the
    store in a fresh directory (paged checkpoints + write-ahead log):
    each document load commits as one WAL transaction, {!checkpoint}
    writes a page image, and {!open_durable} reopens the directory with
    crash recovery. Fails if [dir] already holds a store. *)

val scheme : t -> string
val database : t -> Relstore.Database.t
(** The underlying relational database (inspection, raw SQL). *)

val metrics_label : t -> string
(** The label this store's operations record metrics under; pass it to
    [Relstore.Metrics.report ~label] (or [counter]/[histogram_list]) to
    read only this instance's series. *)

val set_bulk_load : t -> bool -> unit
(** Toggle bulk loading (on by default, also for {!load}ed stores):
    documents shred through a {!Relstore.Database.load_session} — appends
    with deferred index maintenance, each B+-tree built bottom-up when the
    document finishes — instead of maintaining every index per row. Stored
    contents and query results are identical either way. *)

val bulk_load : t -> bool

(** {1 Documents} *)

val add_document : ?name:string -> t -> Xmlkit.Dom.t -> doc_id
val add_string : ?name:string -> t -> string -> doc_id
val add_file : ?name:string -> t -> string -> doc_id

type doc_info = {
  doc : doc_id;
  doc_name : string option;
  root_tag : string;
  nodes : int;
  depth : int;
}

val documents : t -> doc_info list
val get_document : t -> doc_id -> Xmlkit.Dom.t
(** Reconstruct the full document from its relations. *)

(** {1 Queries} *)

type result = {
  values : string list;  (** XPath string-values, document order *)
  nodes : Xmlkit.Dom.node list Lazy.t;  (** reconstructed result subtrees *)
  sql : string list;  (** SQL statements executed *)
  joins : int;
  fallback : bool;
      (** true when the path was outside the translatable subset and was
          answered by reconstructing the document and evaluating natively *)
  analyzed : (string * Relstore.Plan.annotated) list;
      (** with [~analyze:true], one [(statement text, executed operator
          tree)] pair per SQL statement, in execution order (EXPLAIN
          ANALYZE); empty otherwise *)
  gc_minor_bytes : int;
      (** bytes allocated in the minor heap while answering
          ([Gc.quick_stat] delta; also recorded as the
          [store.query.minor_bytes] counter) *)
  gc_major_bytes : int;
      (** bytes promoted to or allocated in the major heap
          ([store.query.major_bytes]) *)
}

val query : ?analyze:bool -> t -> doc_id -> string -> result
(** [query t doc xpath] evaluates an absolute XPath location path.
    [~analyze:true] additionally instruments every SQL statement the
    translation executes and fills [analyzed] with per-operator actual
    rows, next-calls, and wall-clock. *)

(** {1 Static analysis}

    Each stored document carries a Strong DataGuide, built at shred time
    and invalidated by in-place updates. {!query} consults it to
    short-circuit provably-empty paths to an empty result without
    executing any SQL (counted by the [store.query.fastpath_empty]
    metric); the linter uses it as the XPath-vs-schema oracle. *)

val set_empty_fastpath : t -> bool -> unit
(** Toggle the statically-empty short-circuit (on by default); results
    are identical either way — the benchmark measures the difference. *)

val empty_fastpath : t -> bool

val dataguide : t -> doc_id -> Xmlkit.Dataguide.t
(** The document's DataGuide; rebuilt by reconstruction when no cached
    guide survives (loaded stores, updated documents). *)

val lint_query : ?schema_check:bool -> t -> doc_id -> string -> Lintkit.Lint.report
(** Run the query through the scheme with the capture sink armed and lint
    everything that executed: each statement re-parsed into the SQL pass,
    its physical plan through the plan pass, and (unless
    [~schema_check:false]) the XPath against the document's DataGuide. *)

val lint_workload : ?schema_check:bool -> t -> doc_id -> string list -> Lintkit.Lint.report list

val query_values : t -> doc_id -> string -> string list
val query_nodes : t -> doc_id -> string -> Xmlkit.Dom.node list
val query_count : t -> doc_id -> string -> int
val query_all : t -> string -> (doc_id * result) list
(** Evaluate one path against every stored document. *)

val translate_sql : t -> doc_id -> string -> string list

(** {1 Slow-query log}

    When a threshold is armed, every {!query} whose wall-clock meets it is
    retained (most recent first, bounded — 32 entries by default, see
    {!set_slow_log_capacity}) with its statement texts, bound parameters,
    plans, executed operator trees, and GC allocation deltas. *)

type slow_statement = {
  ss_sql : string;  (** statement text (plan-cache key) *)
  ss_params : Relstore.Value.t array;  (** bound parameters *)
  ss_plan : string;  (** rendered plan tree (EXPLAIN) *)
  ss_annot : Relstore.Plan.annotated;  (** executed operator tree (ANALYZE) *)
}

type slow_entry = {
  se_xpath : string;
  se_doc : doc_id;
  se_scheme : string;
  se_total_ns : int;  (** whole-query wall-clock *)
  se_fallback : bool;
  se_minor_bytes : int;  (** GC allocation attributed to the query *)
  se_major_bytes : int;
  se_statements : slow_statement list;
}

val set_slow_threshold : t -> float option -> unit
(** [set_slow_threshold t (Some ms)] arms the log for queries taking at
    least [ms] milliseconds; [None] disarms it (entries are kept). *)

val set_slow_log_capacity : t -> int -> unit
(** Resize the retention bound (default 32). Shrinking evicts the oldest
    entries immediately; 0 retains nothing. Negative raises
    {!Store_error}. *)

val slow_log_capacity : t -> int

val slow_threshold_ms : t -> float option
val slow_log : t -> slow_entry list
(** Retained entries, most recent first. *)

val clear_slow_log : t -> unit

(** {1 In-place updates}

    Supported by the [edge], [dewey], and [interval] schemes; the cost
    record exposes how many rows each scheme had to touch — the
    machine-independent measure behind experiment F5 (Dewey appends touch
    only the new subtree; Interval renumbers every following node). *)

type update_cost = { rows_inserted : int; rows_updated : int; rows_deleted : int }

val append_child : t -> doc_id -> parent:string -> Xmlkit.Dom.node -> update_cost
(** [append_child t doc ~parent node] appends [node] (an element subtree)
    as the last child of the single element selected by the XPath
    [parent]. *)

val delete_matching : t -> doc_id -> string -> update_cost
(** Delete every element (subtree included) selected by the path. *)

(** {1 Statistics and raw SQL} *)

type stats = {
  scheme_id : string;
  document_count : int;
  tables : Relstore.Database.table_stats list;
  total_rows : int;
  total_bytes : int;
  total_index_entries : int;
}

val stats : t -> stats
val sql : t -> string -> Relstore.Database.exec_result
val explain : t -> string -> string

val cache_stats : t -> int * int * int * int
(** Prepared-plan cache [(hits, misses, invalidations, evictions)].
    Translated queries
    bind their variable parts as parameters, so repeated queries and
    {!query_all} across documents reuse one cached plan per statement
    shape. *)

val reset_cache_stats : t -> unit

val set_plan_cache : t -> bool -> unit
(** Disable (and empty) or re-enable the plan cache; query results are
    identical either way. *)

(** {1 Durability}

    A store created with [~durable:dir] lives on disk: every mutation is
    written ahead to [dir/wal.log], a document load is one transaction
    committed (fsync) when the shred finishes, and {!checkpoint} folds
    everything into a double-buffered page image. {!open_durable} reopens
    the directory, replaying the log — a load interrupted mid-document is
    rolled back whole, one that reached its commit is replayed whole. *)

val open_durable : ?dtd:Xmlkit.Dtd.t -> ?validate:bool -> ?metrics_label:string -> string -> t
(** Reopen a durable store directory, running crash recovery as needed.
    The scheme is read from the directory ([inline] still needs its
    DTD passed). *)

val is_durable : t -> bool
val durable_dir : t -> string option

val last_recovery : t -> Relstore.Database.recovery option
(** What recovery did when this store was opened ([None] for in-memory
    stores). *)

val checkpoint : t -> unit
(** Write a full page image and truncate the WAL. No-op in memory. *)

val close : t -> unit
(** {!checkpoint}, then release the directory. No-op in memory. *)

(** {1 Persistence} *)

val save : t -> string -> unit
(** Write the whole store (all tables, data, and index definitions) as a
    SQL script. *)

val load :
  ?dtd:Xmlkit.Dtd.t -> ?validate:bool -> ?metrics_label:string -> scheme:string -> string -> t
(** Reopen a store saved with {!save}. The scheme must match the one the
    dump was produced with ([inline] additionally needs the same DTD). *)

val snapshot : t -> string
(** The whole store as one string: a scheme header line followed by the
    relational dump ({!save}'s format). Dump → restore round-trips every
    scheme byte-exactly, so a store rebuilt from the snapshot answers
    queries identically. This is the store pool's isolation mechanism
    ({!Storepool.Pool}): each reader domain executes against a private
    replica built from the writer's latest snapshot. *)

val of_snapshot : ?dtd:Xmlkit.Dtd.t -> ?metrics_label:string -> string -> t
(** Rebuild an in-memory store from {!snapshot} output ([inline] needs
    the same DTD the original was created with). *)

(** {1 Observability server}

    An embedded single-threaded HTTP endpoint over the store's in-memory
    observability state:

    {v
    GET /metrics   Prometheus text exposition (lint-checked before serving)
    GET /healthz   JSON health: store open, WAL writable, checkpoint age
    GET /slowlog   JSON slow-query log (?limit=N caps the entries)
    GET /traces    Chrome trace JSON of the span ring buffer
    GET /stats     JSON table, cache, and document statistics
    v} *)

val handle : t -> Servekit.Http.request -> Servekit.Http.response
(** The observability request handler behind {!serve}, exposed so other
    front doors (the store pool's data-plane service) can delegate
    GET endpoints to it. *)

val serve : ?host:string -> ?port:int -> t -> Servekit.Server.t
(** Bind the observability listener ([host] defaults to "127.0.0.1",
    [port] to 0 = ephemeral; read the bound port back with
    {!Servekit.Server.port}) and return it without serving — call
    {!Servekit.Server.run} (blocking) or {!Servekit.Server.handle_one}.
    Also pre-registers the storage-telemetry series catalog
    ([db.wal.*], [db.checkpoint.*], [db.recovery.*], [buffer_pool.*],
    [db.btree.*]) so a scrape of an idle store already lists them. *)

val declare_storage_series : unit -> unit
(** The pre-registration {!serve} performs, exposed for callers that
    render {!Relstore.Metrics.prometheus} without a server. *)
