(* Native XPath evaluator over the id-addressed document view
   (Xmlkit.Index). This is the in-memory baseline the relational mapping
   schemes are compared against, and the reference implementation the
   property tests use to validate every XPath-to-SQL translator. *)

module Index = Xmlkit.Index

exception Eval_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

type value =
  | Nodes of int list  (* distinct, in document order *)
  | Num of float
  | Str of string
  | Boolean of bool

(* ------------------------------------------------------------------ *)
(* XPath 1.0 type conversions *)

let number_of_string s =
  match float_of_string_opt (String.trim s) with Some f -> f | None -> Float.nan

let string_of_number f =
  if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
  else Printf.sprintf "%.12g" f

let to_string doc = function
  | Str s -> s
  | Num f -> string_of_number f
  | Boolean b -> if b then "true" else "false"
  | Nodes [] -> ""
  | Nodes (n :: _) -> Index.string_value doc n

let to_number doc = function
  | Num f -> f
  | Str s -> number_of_string s
  | Boolean b -> if b then 1.0 else 0.0
  | Nodes _ as v -> number_of_string (to_string doc v)

let to_boolean = function
  | Boolean b -> b
  | Num f -> (not (Float.is_nan f)) && f <> 0.0
  | Str s -> String.length s > 0
  | Nodes ns -> ns <> []

(* ------------------------------------------------------------------ *)
(* Axes and node tests *)

let axis_nodes doc axis n =
  match axis with
  | Ast.Child -> Index.children doc n
  | Ast.Descendant -> Index.descendants doc n
  | Ast.Descendant_or_self -> Index.descendants_or_self doc n
  | Ast.Attribute -> Index.attributes doc n
  | Ast.Parent -> ( match Index.parent doc n with -1 -> [] | p -> [ p ])
  | Ast.Ancestor -> Index.ancestors doc n
  | Ast.Ancestor_or_self -> n :: Index.ancestors doc n
  | Ast.Self -> [ n ]
  | Ast.Following_sibling -> Index.following_siblings doc n
  | Ast.Preceding_sibling -> Index.preceding_siblings doc n
  | Ast.Following ->
    (* everything after n in document order, minus its descendants and all
       attribute nodes *)
    let start = n + Index.size doc n + 1 in
    let rec go i acc =
      if i >= Index.count doc then List.rev acc
      else if Index.kind doc i = Index.Attribute then go (i + 1) acc
      else go (i + 1) (i :: acc)
    in
    go start []
  | Ast.Preceding ->
    (* everything before n in document order, minus its ancestors, the
       document node, and attributes; reverse order (nearest first) *)
    let ancestors = Index.ancestors doc n in
    let rec go i acc =
      if i >= n then acc
      else if
        Index.kind doc i = Index.Attribute
        || Index.kind doc i = Index.Document
        || List.mem i ancestors
      then go (i + 1) acc
      else go (i + 1) (i :: acc)
    in
    go 0 []

let test_matches doc axis test n =
  match test with
  | Ast.Node_test -> true
  | Ast.Text_test -> Index.kind doc n = Index.Text
  | Ast.Comment_test -> Index.kind doc n = Index.Comment
  | Ast.Wildcard | Ast.Name _ -> (
    (* Name/wildcard tests match the axis's principal node type. *)
    let principal =
      match axis with Ast.Attribute -> Index.Attribute | _ -> Index.Element
    in
    Index.kind doc n = principal
    &&
    match test with
    | Ast.Wildcard -> true
    | Ast.Name name -> String.equal (Index.name doc n) name
    | _ -> assert false)

let sort_doc_order ns = List.sort_uniq compare ns

(* ------------------------------------------------------------------ *)
(* Evaluation *)

type context = {
  doc : Index.t;
  node : int;
  position : int;
  size : int;
  bindings : (string * value) list;  (* in-scope $variables, innermost first *)
}

let rec eval_expr ctx (e : Ast.expr) : value =
  match e with
  | Ast.Literal s -> Str s
  | Ast.Number f -> Num f
  | Ast.Negate e -> Num (-.to_number ctx.doc (eval_expr ctx e))
  | Ast.Path p -> Nodes (eval_path ctx p)
  | Ast.Binary (Ast.Union, a, b) -> (
    match (eval_expr ctx a, eval_expr ctx b) with
    | Nodes x, Nodes y -> Nodes (sort_doc_order (x @ y))
    | _ -> err "| requires node-sets on both sides")
  | Ast.Binary (Ast.Or, a, b) ->
    Boolean (to_boolean (eval_expr ctx a) || to_boolean (eval_expr ctx b))
  | Ast.Binary (Ast.And, a, b) ->
    Boolean (to_boolean (eval_expr ctx a) && to_boolean (eval_expr ctx b))
  | Ast.Binary (((Ast.Eq | Ast.Neq) as op), a, b) ->
    Boolean (eval_equality ctx op (eval_expr ctx a) (eval_expr ctx b))
  | Ast.Binary (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b) ->
    Boolean (eval_relational ctx op (eval_expr ctx a) (eval_expr ctx b))
  | Ast.Binary (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), a, b) ->
    let x = to_number ctx.doc (eval_expr ctx a) and y = to_number ctx.doc (eval_expr ctx b) in
    Num
      (match op with
      | Ast.Add -> x +. y
      | Ast.Sub -> x -. y
      | Ast.Mul -> x *. y
      | Ast.Div -> x /. y
      | Ast.Mod -> Float.rem x y
      | _ -> assert false)
  | Ast.Fun_call (f, args) -> eval_function ctx f args
  | Ast.Filtered (e, preds) -> (
    match eval_expr ctx e with
    | Nodes ns ->
      let filtered =
        List.fold_left (fun ns pred -> filter_predicate ctx ~reverse:false ns pred) ns preds
      in
      Nodes filtered
    | _ -> err "predicates apply only to node-sets")
  | Ast.Var_path (v, rel) -> (
    match List.assoc_opt v ctx.bindings with
    | None -> err "unbound variable $%s" v
    | Some bound -> (
      match (bound, rel.Ast.steps) with
      | value, [] -> value
      | Nodes ns, _ -> Nodes (eval_steps ctx rel.Ast.steps (sort_doc_order ns))
      | _, _ -> err "$%s is not a node-set; cannot navigate from it" v))

(* Existential comparison semantics of XPath 1.0. *)
and eval_equality ctx op va vb =
  let cmp_atomic x y =
    (* if either is boolean: boolean compare; elif number: numeric; else string *)
    match (x, y) with
    | Boolean _, _ | _, Boolean _ -> to_boolean x = to_boolean y
    | Num _, _ | _, Num _ -> to_number ctx.doc x = to_number ctx.doc y
    | _ -> String.equal (to_string ctx.doc x) (to_string ctx.doc y)
  in
  let result =
    match (va, vb) with
    | Nodes xs, Nodes ys ->
      let ys_vals = List.map (fun y -> Index.string_value ctx.doc y) ys in
      List.exists
        (fun x ->
          let xv = Index.string_value ctx.doc x in
          List.exists (fun yv -> String.equal xv yv) ys_vals)
        xs
    | Nodes xs, other | other, Nodes xs ->
      List.exists (fun x -> cmp_atomic (Str (Index.string_value ctx.doc x)) other) xs
    | a, b -> cmp_atomic a b
  in
  match op with Ast.Eq -> result | Ast.Neq -> eval_neq ctx va vb | _ -> assert false

and eval_neq ctx va vb =
  (* != is existential too, not the negation of = *)
  let cmp_atomic x y =
    match (x, y) with
    | Boolean _, _ | _, Boolean _ -> to_boolean x <> to_boolean y
    | Num _, _ | _, Num _ -> to_number ctx.doc x <> to_number ctx.doc y
    | _ -> not (String.equal (to_string ctx.doc x) (to_string ctx.doc y))
  in
  match (va, vb) with
  | Nodes xs, Nodes ys ->
    List.exists
      (fun x ->
        List.exists
          (fun y ->
            not
              (String.equal (Index.string_value ctx.doc x) (Index.string_value ctx.doc y)))
          ys)
      xs
  | Nodes xs, other | other, Nodes xs ->
    List.exists (fun x -> cmp_atomic (Str (Index.string_value ctx.doc x)) other) xs
  | a, b -> cmp_atomic a b

and eval_relational ctx op va vb =
  let num v = to_number ctx.doc v in
  let cmp x y =
    match op with
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
    | _ -> assert false
  in
  match (va, vb) with
  | Nodes xs, Nodes ys ->
    List.exists
      (fun x ->
        List.exists
          (fun y ->
            cmp
              (number_of_string (Index.string_value ctx.doc x))
              (number_of_string (Index.string_value ctx.doc y)))
          ys)
      xs
  | Nodes xs, other ->
    let yv = num other in
    List.exists (fun x -> cmp (number_of_string (Index.string_value ctx.doc x)) yv) xs
  | other, Nodes ys ->
    let xv = num other in
    List.exists (fun y -> cmp xv (number_of_string (Index.string_value ctx.doc y))) ys
  | a, b -> cmp (num a) (num b)

and filter_predicate ctx ~reverse ns pred =
  (* position() counts along the axis direction: for reverse axes the
     nearest node is position 1. [ns] arrives in axis order. *)
  ignore reverse;
  let size = List.length ns in
  List.filteri
    (fun i n ->
      let pctx = { ctx with node = n; position = i + 1; size } in
      match eval_expr pctx pred with
      | Num f -> Float.equal f (float_of_int (i + 1))
      | v -> to_boolean v)
    ns

and eval_step ctx step n =
  let candidates = axis_nodes ctx.doc step.Ast.axis n in
  let tested = List.filter (test_matches ctx.doc step.Ast.axis step.Ast.test) candidates in
  let filtered =
    List.fold_left
      (fun ns pred ->
        filter_predicate ctx ~reverse:(not (Ast.is_forward_axis step.Ast.axis)) ns pred)
      tested step.Ast.predicates
  in
  filtered

and eval_steps ctx steps nodes =
  match steps with
  | [] -> nodes
  | step :: rest ->
    let results = List.concat_map (fun n -> eval_step ctx step n) nodes in
    eval_steps ctx rest (sort_doc_order results)

and eval_path ctx (p : Ast.path) =
  let start = if p.Ast.absolute then [ 0 ] else [ ctx.node ] in
  eval_steps ctx p.Ast.steps start

and eval_function ctx f args =
  let arg i = List.nth args i in
  let nargs = List.length args in
  let stringv v = to_string ctx.doc v in
  let ctx_string () =
    if nargs = 0 then Index.string_value ctx.doc ctx.node else stringv (eval_expr ctx (arg 0))
  in
  match (String.lowercase_ascii f, nargs) with
  | "position", 0 -> Num (float_of_int ctx.position)
  | "last", 0 -> Num (float_of_int ctx.size)
  | "count", 1 -> (
    match eval_expr ctx (arg 0) with
    | Nodes ns -> Num (float_of_int (List.length ns))
    | _ -> err "count() requires a node-set")
  | "not", 1 -> Boolean (not (to_boolean (eval_expr ctx (arg 0))))
  | "true", 0 -> Boolean true
  | "false", 0 -> Boolean false
  | "boolean", 1 -> Boolean (to_boolean (eval_expr ctx (arg 0)))
  | "number", (0 | 1) ->
    if nargs = 0 then Num (number_of_string (Index.string_value ctx.doc ctx.node))
    else Num (to_number ctx.doc (eval_expr ctx (arg 0)))
  | "string", (0 | 1) -> Str (ctx_string ())
  | "string-length", (0 | 1) -> Num (float_of_int (String.length (ctx_string ())))
  | "concat", _ when nargs >= 2 ->
    Str (String.concat "" (List.map (fun a -> stringv (eval_expr ctx a)) args))
  | "contains", 2 ->
    let s = stringv (eval_expr ctx (arg 0)) and sub = stringv (eval_expr ctx (arg 1)) in
    let n = String.length s and m = String.length sub in
    let rec find i = i + m <= n && (String.sub s i m = sub || find (i + 1)) in
    Boolean (m = 0 || find 0)
  | "starts-with", 2 ->
    let s = stringv (eval_expr ctx (arg 0)) and p = stringv (eval_expr ctx (arg 1)) in
    Boolean (String.length p <= String.length s && String.sub s 0 (String.length p) = p)
  | "substring-before", 2 | "substring-after", 2 ->
    let s = stringv (eval_expr ctx (arg 0)) and sep = stringv (eval_expr ctx (arg 1)) in
    let n = String.length s and m = String.length sep in
    let rec find i = if i + m > n then None else if String.sub s i m = sep then Some i else find (i + 1) in
    (match find 0 with
    | None -> Str ""
    | Some i ->
      if String.lowercase_ascii f = "substring-before" then Str (String.sub s 0 i)
      else Str (String.sub s (i + m) (n - i - m)))
  | "substring", (2 | 3) ->
    (* XPath rounding rules: position is 1-based, arguments are rounded *)
    let s = stringv (eval_expr ctx (arg 0)) in
    let start = Float.round (to_number ctx.doc (eval_expr ctx (arg 1))) in
    let len =
      if nargs = 3 then Float.round (to_number ctx.doc (eval_expr ctx (arg 2)))
      else Float.infinity
    in
    if Float.is_nan start || Float.is_nan len then Str ""
    else begin
      let first = int_of_float (max 1.0 start) in
      let stop =
        if Float.is_integer (start +. len) || len = Float.infinity then
          if len = Float.infinity then String.length s + 1
          else int_of_float (start +. len)
        else int_of_float (start +. len)
      in
      let first_i = first - 1 and stop_i = min (String.length s) (stop - 1) in
      if first_i >= String.length s || stop_i <= first_i then Str ""
      else Str (String.sub s first_i (stop_i - first_i))
    end
  | "translate", 3 ->
    let s = stringv (eval_expr ctx (arg 0)) in
    let from = stringv (eval_expr ctx (arg 1)) in
    let into = stringv (eval_expr ctx (arg 2)) in
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match String.index_opt from c with
        | None -> Buffer.add_char buf c
        | Some i -> if i < String.length into then Buffer.add_char buf into.[i])
      s;
    Str (Buffer.contents buf)
  | "normalize-space", (0 | 1) ->
    let s = ctx_string () in
    let words =
      String.split_on_char ' ' (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
      |> List.filter (fun w -> w <> "")
    in
    Str (String.concat " " words)
  | "name", 0 | "local-name", 0 -> Str (Index.name ctx.doc ctx.node)
  | "name", 1 | "local-name", 1 -> (
    match eval_expr ctx (arg 0) with
    | Nodes [] -> Str ""
    | Nodes (n :: _) -> Str (Index.name ctx.doc n)
    | _ -> err "name() requires a node-set")
  | "sum", 1 -> (
    match eval_expr ctx (arg 0) with
    | Nodes ns ->
      Num
        (List.fold_left
           (fun acc n -> acc +. number_of_string (Index.string_value ctx.doc n))
           0.0 ns)
    | _ -> err "sum() requires a node-set")
  | "floor", 1 -> Num (Float.floor (to_number ctx.doc (eval_expr ctx (arg 0))))
  | "ceiling", 1 -> Num (Float.ceil (to_number ctx.doc (eval_expr ctx (arg 0))))
  | "round", 1 -> Num (Float.round (to_number ctx.doc (eval_expr ctx (arg 0))))
  | f, n -> err "unknown function %s/%d" f n

(* ------------------------------------------------------------------ *)
(* Entry points *)

let root_context doc = { doc; node = 0; position = 1; size = 1; bindings = [] }

let bind ctx name value = { ctx with bindings = (name, value) :: ctx.bindings }

let eval doc expr =
  Obskit.Trace.with_span "xpath.eval" @@ fun () -> eval_expr (root_context doc) expr

let eval_string doc src = eval doc (Parser.parse src)

let select_nodes doc src =
  match eval_string doc src with
  | Nodes ns -> ns
  | _ -> err "expression %s does not yield a node-set" src

let select_strings doc src =
  List.map (Index.string_value doc) (select_nodes doc src)

let value_to_string doc v = to_string doc v

let value_equal doc a b =
  match (a, b) with
  | Nodes x, Nodes y -> x = y
  | _ -> String.equal (to_string doc a) (to_string doc b)
