(* FLWOR-lite: the for/where/order by/return core of XQuery, evaluated
   natively over the document index — the "XML transformation language" use
   case of the tutorial.

     for $a in //open_auction, $b in $a/bidder
     where $b/increase > 10
     order by $b/increase descending
     return <bid auction="{$a/@id}">{$b/increase}</bid>

   The return template is ordinary XML whose attribute values and text may
   contain {expr} holes. A node-set hole splices deep copies of the nodes;
   any other value splices its string form. Clauses may nest additional
   [for] variables (a comma-separated list); tuples stream in document
   order before [order by] applies. *)

exception Flwor_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Flwor_error s)) fmt

module Dom = Xmlkit.Dom
module Index = Xmlkit.Index

type clause = { var : string; source : Ast.expr }

type t = {
  clauses : clause list;  (* for $v in e, $v2 in e2, ... *)
  where : Ast.expr option;
  order_by : (Ast.expr * bool) option;  (* expr, descending *)
  template : Dom.node list;  (* parsed return template with {…} still in text *)
}

(* ------------------------------------------------------------------ *)
(* Parsing *)

(* Split the source into the clause header and the return template by
   finding the top-level "return" keyword. *)
let split_return src =
  let n = String.length src in
  let rec find i depth_quote =
    if i + 6 > n then err "missing 'return' clause"
    else
      match depth_quote with
      | Some q -> if src.[i] = q then find (i + 1) None else find (i + 1) depth_quote
      | None ->
        if src.[i] = '\'' || src.[i] = '"' then find (i + 1) (Some src.[i])
        else if
          String.sub src i 6 = "return"
          && (i = 0 || src.[i - 1] = ' ' || src.[i - 1] = '\n' || src.[i - 1] = '\t')
          && i + 6 < n
          && (src.[i + 6] = ' ' || src.[i + 6] = '\n' || src.[i + 6] = '\t' || src.[i + 6] = '<')
        then i
        else find (i + 1) None
  in
  let at = find 0 None in
  (String.sub src 0 at, String.sub src (at + 6) (n - at - 6))

let is_word c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '-'

(* Find a top-level keyword in the header (not inside quotes). *)
let find_keyword src kw =
  let n = String.length src and k = String.length kw in
  let rec go i quote =
    if i >= n then None
    else
      match quote with
      | Some q -> if src.[i] = q then go (i + 1) None else go (i + 1) quote
      | None ->
        if src.[i] = '\'' || src.[i] = '"' then go (i + 1) (Some src.[i])
        else if
          i + k <= n
          && String.sub src i k = kw
          && (i = 0 || not (is_word src.[i - 1]))
          && (i + k = n || not (is_word src.[i + k]))
        then Some i
        else go (i + 1) None
  in
  go 0 None

let trim = String.trim

(* "for $a in e1, $b in e2" -> clauses. Commas inside parentheses or
   brackets belong to the expressions, so split at depth 0 only. *)
let parse_clauses src =
  let src = trim src in
  if not (String.length src > 4 && String.sub src 0 4 = "for ") then
    err "a FLWOR expression starts with 'for'";
  let body = String.sub src 4 (String.length src - 4) in
  let parts = ref [] in
  let buf = Buffer.create 32 in
  let depth = ref 0 and quote = ref None in
  String.iter
    (fun c ->
      match !quote with
      | Some q ->
        Buffer.add_char buf c;
        if c = q then quote := None
      | None -> (
        match c with
        | '\'' | '"' ->
          quote := Some c;
          Buffer.add_char buf c
        | '(' | '[' ->
          incr depth;
          Buffer.add_char buf c
        | ')' | ']' ->
          decr depth;
          Buffer.add_char buf c
        | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
        | c -> Buffer.add_char buf c))
    body;
  parts := Buffer.contents buf :: !parts;
  List.rev_map
    (fun part ->
      let part = trim part in
      if not (String.length part > 1 && part.[0] = '$') then
        err "clause %S must start with a $variable" part;
      match find_keyword part "in" with
      | None -> err "clause %S lacks 'in'" part
      | Some i ->
        let var = trim (String.sub part 1 (i - 1)) in
        let source = Parser.parse (String.sub part (i + 2) (String.length part - i - 2)) in
        { var; source })
    !parts

let parse (src : string) : t =
  let header, template_src = split_return src in
  let header = trim header in
  let where_at = find_keyword header "where" in
  let order_at = find_keyword header "order" in
  let clause_end =
    match (where_at, order_at) with
    | Some w, Some o -> min w o
    | Some w, None -> w
    | None, Some o -> o
    | None, None -> String.length header
  in
  let clauses = parse_clauses (String.sub header 0 clause_end) in
  let where =
    Option.map
      (fun w ->
        let stop = match order_at with Some o when o > w -> o | _ -> String.length header in
        Parser.parse (String.sub header (w + 5) (stop - w - 5)))
      where_at
  in
  let order_by =
    Option.map
      (fun o ->
        let rest = trim (String.sub header o (String.length header - o)) in
        if not (String.length rest > 8 && String.sub rest 0 8 = "order by") then
          err "expected 'order by'";
        let expr_src = trim (String.sub rest 8 (String.length rest - 8)) in
        let descending =
          String.length expr_src > 10
          && String.sub expr_src (String.length expr_src - 10) 10 = "descending"
        in
        let expr_src =
          if descending then trim (String.sub expr_src 0 (String.length expr_src - 10))
          else if
            String.length expr_src > 9
            && String.sub expr_src (String.length expr_src - 9) 9 = "ascending"
          then trim (String.sub expr_src 0 (String.length expr_src - 9))
          else expr_src
        in
        (Parser.parse expr_src, descending))
      order_at
  in
  (* the template is XML: braces are plain characters to the XML parser *)
  let template_src = trim template_src in
  let template =
    if template_src = "" then err "empty return template"
    else if template_src.[0] = '<' then
      [ Dom.Element (Xmlkit.Parser.parse_element_string template_src) ]
    else [ Dom.Text template_src ]
  in
  { clauses; where; order_by; template }

(* ------------------------------------------------------------------ *)
(* Evaluation *)

(* Split "text {expr} more {expr2}" into parts. *)
let split_holes s =
  let parts = ref [] in
  let buf = Buffer.create 32 in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if s.[!i] = '{' then begin
      if Buffer.length buf > 0 then parts := `Text (Buffer.contents buf) :: !parts;
      Buffer.clear buf;
      let stop =
        match String.index_from_opt s !i '}' with
        | Some j -> j
        | None -> err "unterminated { in template"
      in
      parts := `Hole (String.sub s (!i + 1) (stop - !i - 1)) :: !parts;
      i := stop + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  if Buffer.length buf > 0 then parts := `Text (Buffer.contents buf) :: !parts;
  List.rev !parts

let eval_hole ctx src =
  Eval.eval_expr ctx (Parser.parse src)

let instantiate ctx (template : Dom.node list) : Dom.node list =
  let rec node (t : Dom.node) : Dom.node list =
    match t with
    | Dom.Text s ->
      List.concat_map
        (function
          | `Text txt -> [ Dom.Text txt ]
          | `Hole h -> (
            match eval_hole ctx h with
            | Eval.Nodes ns -> List.map (Index.to_node ctx.Eval.doc) ns
            | v -> [ Dom.Text (Eval.to_string ctx.Eval.doc v) ]))
        (split_holes s)
    | Dom.Cdata s -> [ Dom.Cdata s ]
    | Dom.Comment s -> [ Dom.Comment s ]
    | Dom.Pi p -> [ Dom.Pi p ]
    | Dom.Element e ->
      let attrs =
        List.map
          (fun { Dom.attr_name; attr_value } ->
            let value =
              String.concat ""
                (List.map
                   (function
                     | `Text txt -> txt
                     | `Hole h -> Eval.to_string ctx.Eval.doc (eval_hole ctx h))
                   (split_holes attr_value))
            in
            Dom.attr attr_name value)
          e.Dom.attrs
      in
      [ Dom.Element { Dom.tag = e.Dom.tag; attrs; children = List.concat_map node e.Dom.children } ]
  in
  List.concat_map node template

let eval (doc : Index.t) (q : t) : Dom.node list =
  let base_ctx = Eval.root_context doc in
  (* expand the clause list into binding tuples, leftmost varying slowest *)
  let rec tuples ctx = function
    | [] -> [ ctx ]
    | { var; source } :: rest ->
      let nodes =
        match Eval.eval_expr ctx source with
        | Eval.Nodes ns -> ns
        | _ -> err "for $%s must iterate a node-set" var
      in
      List.concat_map (fun n -> tuples (Eval.bind ctx var (Eval.Nodes [ n ])) rest) nodes
  in
  let all = tuples base_ctx q.clauses in
  let kept =
    match q.where with
    | None -> all
    | Some cond -> List.filter (fun ctx -> Eval.to_boolean (Eval.eval_expr ctx cond)) all
  in
  let ordered =
    match q.order_by with
    | None -> kept
    | Some (key, descending) ->
      let keyed =
        List.map
          (fun ctx ->
            let v = Eval.eval_expr ctx key in
            (* numeric order when both sides are numeric, else string *)
            (Eval.to_number doc v, Eval.to_string doc v, ctx))
          kept
      in
      let cmp (n1, s1, _) (n2, s2, _) =
        let c =
          if Float.is_nan n1 || Float.is_nan n2 then compare s1 s2 else compare n1 n2
        in
        if descending then -c else c
      in
      List.map (fun (_, _, ctx) -> ctx) (List.stable_sort cmp keyed)
  in
  List.concat_map (fun ctx -> instantiate ctx q.template) ordered

let run doc src = eval doc (parse src)

let run_to_string doc src =
  String.concat "" (List.map (fun n -> Xmlkit.Serializer.node_to_string n) (run doc src))
