(* XPath 1.0 (subset) parser: tokenizer + recursive descent.

   Implements the XPath lexical disambiguation rule: a name is an operator
   (and/or/div/mod) and '*' is multiplication exactly when the preceding
   token could end an operand. *)

exception Parse_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type token =
  | Tname of string  (* NCName or QName *)
  | Tnum of float
  | Tstr of string
  | Tslash | Tdslash
  | Tlbracket | Trbracket | Tlparen | Trparen
  | Tat | Tdot | Tddot | Tcomma | Taxis_sep  (* :: *)
  | Tstar
  | Tvar of string  (* $name *)
  | Tpipe
  | Top of string  (* = != < <= > >= + - and or div mod *)
  | Teof

let token_to_string = function
  | Tname s -> s
  | Tnum f -> string_of_float f
  | Tstr s -> "'" ^ s ^ "'"
  | Tslash -> "/"
  | Tdslash -> "//"
  | Tlbracket -> "["
  | Trbracket -> "]"
  | Tlparen -> "("
  | Trparen -> ")"
  | Tat -> "@"
  | Tdot -> "."
  | Tddot -> ".."
  | Tcomma -> ","
  | Taxis_sep -> "::"
  | Tstar -> "*"
  | Tvar v -> "$" ^ v
  | Tpipe -> "|"
  | Top s -> s
  | Teof -> "<eof>"

(* Can the previous token end an operand? If so, a following name/star is an
   operator (XPath 1.0, section 3.7). *)
let ends_operand = function
  | Tname _ | Tnum _ | Tstr _ | Trbracket | Trparen | Tdot | Tddot | Tstar | Tvar _ -> true
  | _ -> false

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let toks = ref [] in
  let prev () = match !toks with t :: _ -> Some t | [] -> None in
  let push t = toks := t :: !toks in
  let is_name_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_name_char c =
    is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'
  in
  let is_digit c = c >= '0' && c <= '9' in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '/' then
      if !pos + 1 < n && src.[!pos + 1] = '/' then begin
        push Tdslash;
        pos := !pos + 2
      end
      else begin
        push Tslash;
        incr pos
      end
    else if c = '[' then (push Tlbracket; incr pos)
    else if c = ']' then (push Trbracket; incr pos)
    else if c = '(' then (push Tlparen; incr pos)
    else if c = ')' then (push Trparen; incr pos)
    else if c = '@' then (push Tat; incr pos)
    else if c = '$' then begin
      incr pos;
      let start = !pos in
      while !pos < n && is_name_char src.[!pos] do incr pos done;
      if !pos = start then err "expected a variable name after $";
      push (Tvar (String.sub src start (!pos - start)))
    end
    else if c = ',' then (push Tcomma; incr pos)
    else if c = '|' then (push Tpipe; incr pos)
    else if c = ':' && !pos + 1 < n && src.[!pos + 1] = ':' then begin
      push Taxis_sep;
      pos := !pos + 2
    end
    else if c = '.' then
      if !pos + 1 < n && src.[!pos + 1] = '.' then begin
        push Tddot;
        pos := !pos + 2
      end
      else if !pos + 1 < n && is_digit src.[!pos + 1] then begin
        (* .5 style number *)
        let start = !pos in
        incr pos;
        while !pos < n && is_digit src.[!pos] do incr pos done;
        push (Tnum (float_of_string (String.sub src start (!pos - start))))
      end
      else begin
        push Tdot;
        incr pos
      end
    else if c = '\'' || c = '"' then begin
      let q = c in
      incr pos;
      let start = !pos in
      while !pos < n && src.[!pos] <> q do incr pos done;
      if !pos >= n then err "unterminated string literal";
      push (Tstr (String.sub src start (!pos - start)));
      incr pos
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do incr pos done;
      if !pos < n && src.[!pos] = '.' && not (!pos + 1 < n && src.[!pos + 1] = '.') then begin
        incr pos;
        while !pos < n && is_digit src.[!pos] do incr pos done
      end;
      push (Tnum (float_of_string (String.sub src start (!pos - start))))
    end
    else if c = '*' then begin
      (match prev () with
      | Some p when ends_operand p -> push (Top "*")
      | _ -> push Tstar);
      incr pos
    end
    else if c = '=' then (push (Top "="); incr pos)
    else if c = '!' && !pos + 1 < n && src.[!pos + 1] = '=' then begin
      push (Top "!=");
      pos := !pos + 2
    end
    else if c = '<' then
      if !pos + 1 < n && src.[!pos + 1] = '=' then (push (Top "<="); pos := !pos + 2)
      else (push (Top "<"); incr pos)
    else if c = '>' then
      if !pos + 1 < n && src.[!pos + 1] = '=' then (push (Top ">="); pos := !pos + 2)
      else (push (Top ">"); incr pos)
    else if c = '+' then (push (Top "+"); incr pos)
    else if c = '-' then (push (Top "-"); incr pos)
    else if is_name_start c then begin
      let start = !pos in
      while !pos < n && is_name_char src.[!pos] do incr pos done;
      (* one optional QName colon (prefix:local), never the '::' separator *)
      if
        !pos + 1 < n && src.[!pos] = ':' && src.[!pos + 1] <> ':'
        && is_name_start src.[!pos + 1]
      then begin
        incr pos;
        while !pos < n && is_name_char src.[!pos] do incr pos done
      end;
      let name = String.sub src start (!pos - start) in
      match name with
      | ("and" | "or" | "div" | "mod")
        when (match prev () with Some p -> ends_operand p | None -> false) ->
        push (Top name)
      | _ -> push (Tname name)
    end
    else err "unexpected character %C in XPath expression" c
  done;
  push Teof;
  List.rev !toks

(* ------------------------------------------------------------------ *)

type state = { tokens : token array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.tokens then st.tokens.(st.pos + 1) else Teof
let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let accept st t =
  if peek st = t then begin
    advance st;
    true
  end
  else false

let expect st t =
  if not (accept st t) then
    err "expected %s, found %s" (token_to_string t) (token_to_string (peek st))

let node_test_of_name st name =
  (* name '(' ')' forms: text(), node(), comment() *)
  if peek st = Tlparen then begin
    advance st;
    expect st Trparen;
    match name with
    | "text" -> Ast.Text_test
    | "node" -> Ast.Node_test
    | "comment" -> Ast.Comment_test
    | f -> err "unknown node-type test %s()" f
  end
  else Ast.Name name

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if accept st (Top "or") then Ast.Binary (Ast.Or, left, parse_or st) else left

and parse_and st =
  let left = parse_equality st in
  if accept st (Top "and") then Ast.Binary (Ast.And, left, parse_and st) else left

and parse_equality st =
  let left = ref (parse_relational st) in
  let continue_ = ref true in
  while !continue_ do
    if accept st (Top "=") then left := Ast.Binary (Ast.Eq, !left, parse_relational st)
    else if accept st (Top "!=") then left := Ast.Binary (Ast.Neq, !left, parse_relational st)
    else continue_ := false
  done;
  !left

and parse_relational st =
  let left = ref (parse_additive st) in
  let continue_ = ref true in
  while !continue_ do
    if accept st (Top "<") then left := Ast.Binary (Ast.Lt, !left, parse_additive st)
    else if accept st (Top "<=") then left := Ast.Binary (Ast.Le, !left, parse_additive st)
    else if accept st (Top ">") then left := Ast.Binary (Ast.Gt, !left, parse_additive st)
    else if accept st (Top ">=") then left := Ast.Binary (Ast.Ge, !left, parse_additive st)
    else continue_ := false
  done;
  !left

and parse_additive st =
  let left = ref (parse_multiplicative st) in
  let continue_ = ref true in
  while !continue_ do
    if accept st (Top "+") then left := Ast.Binary (Ast.Add, !left, parse_multiplicative st)
    else if accept st (Top "-") then left := Ast.Binary (Ast.Sub, !left, parse_multiplicative st)
    else continue_ := false
  done;
  !left

and parse_multiplicative st =
  let left = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    if accept st (Top "*") then left := Ast.Binary (Ast.Mul, !left, parse_unary st)
    else if accept st (Top "div") then left := Ast.Binary (Ast.Div, !left, parse_unary st)
    else if accept st (Top "mod") then left := Ast.Binary (Ast.Mod, !left, parse_unary st)
    else continue_ := false
  done;
  !left

and parse_unary st =
  if accept st (Top "-") then Ast.Negate (parse_unary st) else parse_union st

and parse_union st =
  let left = parse_path_expr st in
  if accept st Tpipe then Ast.Binary (Ast.Union, left, parse_union st) else left

and parse_path_expr st =
  match peek st with
  | Tnum f ->
    advance st;
    Ast.Number f
  | Tstr s ->
    advance st;
    Ast.Literal s
  | Tvar v ->
    advance st;
    let rel =
      if accept st Tslash then { Ast.absolute = false; steps = parse_relative_steps st }
      else if accept st Tdslash then
        {
          Ast.absolute = false;
          steps =
            { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_test; predicates = [] }
            :: parse_relative_steps st;
        }
      else { Ast.absolute = false; steps = [] }
    in
    Ast.Var_path (v, rel)
  | Tlparen ->
    advance st;
    let e = parse_expr st in
    expect st Trparen;
    let preds = parse_predicates st in
    let e = if preds = [] then e else Ast.Filtered (e, preds) in
    continue_path st e
  | Tname f when peek2 st = Tlparen && (match f with "text" | "node" | "comment" -> false | _ -> true) ->
    (* function call *)
    advance st;
    advance st;
    let args =
      if peek st = Trparen then []
      else begin
        let first = parse_expr st in
        let rec go acc = if accept st Tcomma then go (parse_expr st :: acc) else List.rev acc in
        go [ first ]
      end
    in
    expect st Trparen;
    let call = Ast.Fun_call (f, args) in
    let preds = parse_predicates st in
    let call = if preds = [] then call else Ast.Filtered (call, preds) in
    continue_path st call
  | _ -> Ast.Path (parse_location_path st)

(* After a parenthesized/function primary, allow /path and //path. *)
and continue_path st primary =
  if peek st = Tslash || peek st = Tdslash then begin
    let steps = ref [] in
    (if accept st Tdslash then
       steps := [ { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_test; predicates = [] } ]
     else ignore (accept st Tslash));
    let rest = parse_relative_steps st in
    match primary with
    | Ast.Path p -> Ast.Path { p with steps = p.Ast.steps @ !steps @ rest }
    | other ->
      (* Represent primary/path as Filtered wrapped: the evaluator handles
         Filtered followed by steps via a dedicated constructor; the subset
         encodes it as a Path on a Filtered base, which we do not support —
         reject cleanly. *)
      ignore other;
      err "a path may only follow a parenthesized node-set in this subset"
  end
  else primary

and parse_predicates st =
  let rec go acc =
    if accept st Tlbracket then begin
      let e = parse_expr st in
      expect st Trbracket;
      go (e :: acc)
    end
    else List.rev acc
  in
  go []

and parse_step st =
  match peek st with
  | Tdot ->
    advance st;
    { Ast.axis = Ast.Self; test = Ast.Node_test; predicates = parse_predicates st }
  | Tddot ->
    advance st;
    { Ast.axis = Ast.Parent; test = Ast.Node_test; predicates = parse_predicates st }
  | Tat ->
    advance st;
    let test =
      match peek st with
      | Tstar ->
        advance st;
        Ast.Wildcard
      | Tname n ->
        advance st;
        Ast.Name n
      | t -> err "expected an attribute name after @, found %s" (token_to_string t)
    in
    { Ast.axis = Ast.Attribute; test; predicates = parse_predicates st }
  | Tstar ->
    advance st;
    { Ast.axis = Ast.Child; test = Ast.Wildcard; predicates = parse_predicates st }
  | Tname name -> (
    if peek2 st = Taxis_sep then begin
      advance st;
      advance st;
      match Ast.axis_of_string name with
      | None -> err "unknown axis %s" name
      | Some axis ->
        let test =
          match peek st with
          | Tstar ->
            advance st;
            Ast.Wildcard
          | Tname n ->
            advance st;
            node_test_of_name st n
          | t -> err "expected a node test after %s::, found %s" name (token_to_string t)
        in
        { Ast.axis; test; predicates = parse_predicates st }
    end
    else begin
      advance st;
      let test = node_test_of_name st name in
      { Ast.axis = Ast.Child; test; predicates = parse_predicates st }
    end)
  | t -> err "expected a step, found %s" (token_to_string t)

and parse_relative_steps st =
  let first = parse_step st in
  let rec go acc =
    if accept st Tdslash then
      let s = parse_step st in
      go (s :: { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_test; predicates = [] } :: acc)
    else if accept st Tslash then go (parse_step st :: acc)
    else List.rev acc
  in
  go [ first ]

and parse_location_path st =
  match peek st with
  | Tslash ->
    advance st;
    (* bare "/" selects the document root *)
    (match peek st with
    | Teof | Trbracket | Trparen | Tcomma | Top _ | Tpipe -> { Ast.absolute = true; steps = [] }
    | _ -> { Ast.absolute = true; steps = parse_relative_steps st })
  | Tdslash ->
    advance st;
    let rest = parse_relative_steps st in
    {
      Ast.absolute = true;
      steps = { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_test; predicates = [] } :: rest;
    }
  | _ -> { Ast.absolute = false; steps = parse_relative_steps st }

let parse src =
  Obskit.Trace.with_span ~attrs:[ ("xpath", src) ] "xpath.parse" @@ fun () ->
  let tokens = Array.of_list (tokenize src) in
  if Array.length tokens = 1 then err "empty XPath expression";
  let st = { tokens; pos = 0 } in
  let e = parse_expr st in
  (match peek st with
  | Teof -> ()
  | t -> err "trailing input after expression: %s" (token_to_string t));
  e

let parse_path src =
  match parse src with
  | Ast.Path p -> p
  | _ -> err "expected a location path, got a general expression: %s" src
