(* SQL tokenizer. Keywords are case-insensitive; identifiers keep their
   case and may be double-quoted to escape reserved words. *)

type token =
  | Ident of string
  | Keyword of string  (* uppercased *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Param_tok of int  (* ?N positional placeholder, 1-based *)
  | Symbol of string  (* punctuation and operators *)
  | Eof

exception Lex_error of string

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER";
    "ASC"; "DESC"; "LIMIT"; "AS"; "AND"; "OR"; "NOT"; "NULL"; "TRUE"; "FALSE";
    "LIKE"; "IN"; "BETWEEN"; "IS"; "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET";
    "DELETE"; "CREATE"; "TABLE"; "INDEX"; "DROP"; "ON"; "JOIN"; "INNER"; "LEFT";
    "OUTER"; "UNION"; "ALL"; "IF"; "EXISTS"; "PRIMARY"; "KEY"; "UNIQUE";
    "NAN"; "INF";  (* non-finite float literals, emitted by Value.to_sql_literal *)
  ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let peek () = if !pos < n then src.[!pos] else '\000' in
  let peek2 () = if !pos + 1 < n then src.[!pos + 1] else '\000' in
  let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') in
  let is_digit c = c >= '0' && c <= '9' in
  while !pos < n do
    let c = peek () in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && peek2 () = '-' then begin
      (* line comment *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      if is_keyword word then push (Keyword (String.uppercase_ascii word)) else push (Ident word)
    end
    else if c = '"' then begin
      (* quoted identifier *)
      incr pos;
      let start = !pos in
      while !pos < n && src.[!pos] <> '"' do
        incr pos
      done;
      if !pos >= n then raise (Lex_error "unterminated quoted identifier");
      push (Ident (String.sub src start (!pos - start)));
      incr pos
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Lex_error "unterminated string literal")
        else if src.[!pos] = '\'' then
          if !pos + 1 < n && src.[!pos + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2;
            go ()
          end
          else incr pos
        else begin
          Buffer.add_char buf src.[!pos];
          incr pos;
          go ()
        end
      in
      go ();
      push (String_lit (Buffer.contents buf))
    end
    else if is_digit c || (c = '.' && is_digit (peek2 ())) then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      let is_float = ref false in
      if !pos < n && src.[!pos] = '.' then begin
        is_float := true;
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done
      end;
      if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
        is_float := true;
        incr pos;
        if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done
      end;
      let text = String.sub src start (!pos - start) in
      if !is_float then push (Float_lit (float_of_string text))
      else push (Int_lit (int_of_string text))
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      match two with
      | "<>" | "!=" | "<=" | ">=" | "||" ->
        push (Symbol (if two = "!=" then "<>" else two));
        pos := !pos + 2
      | _ -> (
        match c with
        | '=' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '(' | ')' | ',' | '.' | ';' ->
          push (Symbol (String.make 1 c));
          incr pos
        | '?' ->
          incr pos;
          let start = !pos in
          while !pos < n && is_digit src.[!pos] do
            incr pos
          done;
          if !pos = start then raise (Lex_error "expected a digit after ? placeholder");
          push (Param_tok (int_of_string (String.sub src start (!pos - start))))
        | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c)))
    end
  done;
  push Eof;
  List.rev !tokens

let token_to_string = function
  | Ident s -> s
  | Keyword s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | String_lit s -> Printf.sprintf "'%s'" s
  | Param_tok n -> "?" ^ string_of_int n
  | Symbol s -> s
  | Eof -> "<eof>"
