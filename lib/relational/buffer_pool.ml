(* Buffer pool over one page file: fixed-size frames keyed by page id,
   pin/unpin around every access, LRU writeback of dirty frames when the
   pool is full. Reads past end-of-file yield zero pages — that is how
   fresh pages are allocated (the checkpointer writes into them through
   [with_page_w] and [flush] extends the file).

   Single-writer use: the checkpointer and the recovery reader are the
   only clients, both single-threaded, so a pin only protects a frame
   from eviction by a nested access. *)

type frame = {
  data : Bytes.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable last_used : int;
}

type t = {
  page_size : int;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  mutable fd : Unix.file_descr option;
  mutable tick : int;
}

exception Pool_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Pool_error s)) fmt

let create ~page_size ~capacity =
  {
    page_size;
    capacity = max 4 capacity;
    frames = Hashtbl.create 64;
    fd = None;
    tick = 0;
  }

let page_size t = t.page_size

let fd t = match t.fd with Some fd -> fd | None -> err "buffer pool is not attached"

(* A signal mid-transfer makes read/write return EINTR; retry so a page
   IO never fails spuriously. *)
let rec write_retry fd buf off len =
  try Unix.write fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd buf off len

let rec read_retry fd buf off len =
  try Unix.read fd buf off len with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf off len

let write_frame t page_id fr =
  let fd = fd t in
  ignore (Unix.lseek fd (page_id * t.page_size) Unix.SEEK_SET);
  let off = ref 0 in
  while !off < t.page_size do
    off := !off + write_retry fd fr.data !off (t.page_size - !off)
  done;
  fr.dirty <- false;
  Metrics.incr "db.page.write";
  Metrics.incr "buffer_pool.write"

let flush t =
  Hashtbl.iter (fun page_id fr -> if fr.dirty then write_frame t page_id fr) t.frames

let sync t =
  flush t;
  Unix.fsync (fd t);
  Metrics.incr "db.page.fsync"

let detach t =
  match t.fd with
  | None -> ()
  | Some fd ->
    Unix.close fd;
    t.fd <- None;
    Hashtbl.reset t.frames;
    Metrics.set_gauge "buffer_pool.resident_pages" 0;
    Metrics.set_gauge "buffer_pool.resident_bytes" 0

(* Attach to a page file, dropping whatever the pool held. [reset] starts
   the file over (checkpointing into the inactive generation). *)
let attach t path ~reset =
  detach t;
  let flags =
    if reset then [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] else [ Unix.O_RDWR; Unix.O_CREAT ]
  in
  t.fd <- Some (Unix.openfile path flags 0o644)

let attached t = t.fd <> None

let page_count t =
  let st = Unix.fstat (fd t) in
  (st.Unix.st_size + t.page_size - 1) / t.page_size

let read_frame t page_id =
  let fd = fd t in
  let data = Bytes.make t.page_size '\000' in
  ignore (Unix.lseek fd (page_id * t.page_size) Unix.SEEK_SET);
  (* short reads (end of file) leave the rest zeroed: a fresh page *)
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < t.page_size do
    let n = read_retry fd data !off (t.page_size - !off) in
    if n = 0 then eof := true else off := !off + n
  done;
  Metrics.incr "db.page.read";
  Metrics.incr "buffer_pool.read";
  { data; dirty = false; pins = 0; last_used = 0 }

(* Instantaneous occupancy, refreshed whenever frames come or go. *)
let update_residency t =
  let pages = Hashtbl.length t.frames in
  Metrics.set_gauge "buffer_pool.resident_pages" pages;
  Metrics.set_gauge "buffer_pool.resident_bytes" (pages * t.page_size)

let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun page_id fr ->
      if fr.pins = 0 then
        match !victim with
        | Some (_, lu) when lu <= fr.last_used -> ()
        | _ -> victim := Some (page_id, fr.last_used))
    t.frames;
  match !victim with
  | None -> ()  (* everything pinned: grow past capacity rather than fail *)
  | Some (page_id, _) ->
    let fr = Hashtbl.find t.frames page_id in
    if fr.dirty then write_frame t page_id fr;
    Hashtbl.remove t.frames page_id;
    Metrics.incr "db.page.evict";
    Metrics.incr "buffer_pool.evict";
    update_residency t

let pin t page_id =
  let fr =
    match Hashtbl.find_opt t.frames page_id with
    | Some fr ->
      Metrics.incr "db.page.hit";
      Metrics.incr "buffer_pool.hit";
      fr
    | None ->
      Metrics.incr "db.page.miss";
      Metrics.incr "buffer_pool.miss";
      if Hashtbl.length t.frames >= t.capacity then evict_one t;
      let fr = read_frame t page_id in
      Hashtbl.add t.frames page_id fr;
      update_residency t;
      fr
  in
  t.tick <- t.tick + 1;
  fr.last_used <- t.tick;
  fr.pins <- fr.pins + 1;
  fr

let with_page t page_id f =
  let fr = pin t page_id in
  Fun.protect ~finally:(fun () -> fr.pins <- fr.pins - 1) (fun () -> f fr.data)

let with_page_w t page_id f =
  let fr = pin t page_id in
  fr.dirty <- true;
  Fun.protect ~finally:(fun () -> fr.pins <- fr.pins - 1) (fun () -> f fr.data)
