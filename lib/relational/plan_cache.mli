(** LRU cache of compiled SELECT plans, keyed by statement text.

    A hit skips lexing, parsing, and planning entirely. Entries remember
    the row count of every referenced table at plan time and are dropped
    when any of them drifts by more than ~20% (the freshness rule Stats
    uses), since join order and access-path choices depend on those
    counts. Any DDL clears the whole cache: index changes alter which
    plans are even executable. *)

type t

val create : ?capacity:int -> unit -> t
(** LRU capacity defaults to 128 entries. *)

val set_enabled : t -> bool -> unit
(** Disabling empties the cache (counted as one invalidation when it
    held entries) and makes {!find}/{!add} no-ops; results are identical
    either way. *)

val clear : t -> unit
(** Drop every entry — the DDL / statistics-change hook. Counted as one
    invalidation when the cache held entries. *)

val find : t -> row_count:(string -> int option) -> string -> Plan.t option
(** Look up a plan by statement text, revalidating the entry's
    remembered row counts through [row_count] ([None] = table dropped).
    A stale entry is removed and the lookup returns [None]. *)

val add : t -> string -> tables:(string * int) list -> Plan.t -> unit
(** Remember a plan under its statement text, fingerprinted with the
    [(table, row count)] pairs the planner saw. *)

val stats : t -> int * int * int * int
(** [(hits, misses, invalidations, evictions)]. The categories are
    mutually exclusive: each {!find} outcome counts as exactly one hit
    (fresh entry), one miss (no entry), or one invalidation (stale entry
    dropped — not also a miss); evictions are capacity-driven LRU
    removals from {!add}; and each {!clear} or disabling {!set_enabled}
    of a non-empty cache is one invalidation. So [hits + misses +
    invalidations] from {!find} sums to the number of lookups, and hit
    rate is well-defined as [hits / lookups]. *)

val reset_stats : t -> unit

val size : t -> int
(** Entries currently cached. *)
