(* Abstract syntax for the SQL subset.

   Grammar summary:
     SELECT [DISTINCT] proj, ... FROM t [alias], ... [JOIN t [alias] ON e]*
       [WHERE e] [GROUP BY e, ...] [HAVING e] [ORDER BY e [ASC|DESC], ...]
       [LIMIT n]  { UNION ALL <select> }*
     INSERT INTO t [(cols)] VALUES (v, ...), ...
     UPDATE t SET c = e, ... [WHERE e]
     DELETE FROM t [WHERE e]
     CREATE TABLE [IF NOT EXISTS] t (c TYPE [NOT NULL], ...)
     CREATE INDEX [IF NOT EXISTS] i ON t (c, ...)
     DROP TABLE t / DROP INDEX i ON t
   Expressions: literals, [table.]column, arithmetic, ||, comparisons,
   LIKE, BETWEEN, IN (list), IS [NOT] NULL, AND/OR/NOT, scalar and
   aggregate function calls. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Concat
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr =
  | Lit of Value.t
  | Param of int  (* 1-based placeholder, rendered as ?N *)
  | Col of { table : string option; column : string }
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Is_null of { negated : bool; arg : expr }
  | Like of { negated : bool; arg : expr; pattern : expr }
  | In_list of { negated : bool; arg : expr; items : expr list }
  | Between of { arg : expr; low : expr; high : expr }
  | Call of { func : string; star : bool; distinct : bool; args : expr list }

type projection =
  | All  (* SELECT * *)
  | Table_all of string  (* SELECT t.* *)
  | Proj of expr * string option  (* expr [AS alias] *)

type table_ref = { table : string; alias : string option }

type order_item = { order_expr : expr; descending : bool }

type select = {
  distinct : bool;
  projections : projection list;
  from : table_ref list;  (* cross product; JOIN..ON folds its condition into where *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  limit : int option;
}

type query = select list
(* UNION ALL of the member selects; results are concatenated. *)

type column_def = { def_name : string; def_ty : Value.ty; def_not_null : bool }

type statement =
  | Select_stmt of query
  | Insert of { table : string; columns : string list option; rows : expr list list }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of { table : string; defs : column_def list; if_not_exists : bool }
  | Create_index of { index : string; table : string; columns : string list; if_not_exists : bool }
  | Drop_table of { table : string; if_exists : bool }
  | Drop_index of { index : string; table : string }

(* ------------------------------------------------------------------ *)
(* Printing (also used by EXPLAIN and by tests that round-trip SQL) *)

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Concat -> "||"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR"

let precedence = function
  | Or -> 1
  | And -> 2
  | Eq | Neq | Lt | Le | Gt | Ge -> 3
  | Add | Sub | Concat -> 4
  | Mul | Div | Mod -> 5

let rec expr_to_string ?(prec = 0) e =
  let s =
    match e with
    | Lit v -> Value.to_sql_literal v
    | Param n -> "?" ^ string_of_int n
    | Col { table = None; column } -> column
    | Col { table = Some t; column } -> t ^ "." ^ column
    | Binop (op, a, b) ->
      let p = precedence op in
      Printf.sprintf "%s %s %s" (expr_to_string ~prec:p a) (binop_to_string op)
        (expr_to_string ~prec:(p + 1) b)
    | Unop (Neg, a) -> "-" ^ expr_to_string ~prec:6 a
    | Unop (Not, a) -> "NOT " ^ expr_to_string ~prec:6 a
    | Is_null { negated; arg } ->
      Printf.sprintf "%s IS %sNULL" (expr_to_string ~prec:6 arg) (if negated then "NOT " else "")
    | Like { negated; arg; pattern } ->
      Printf.sprintf "%s %sLIKE %s" (expr_to_string ~prec:4 arg)
        (if negated then "NOT " else "")
        (expr_to_string ~prec:4 pattern)
    | In_list { negated; arg; items } ->
      Printf.sprintf "%s %sIN (%s)" (expr_to_string ~prec:4 arg)
        (if negated then "NOT " else "")
        (String.concat ", " (List.map (fun i -> expr_to_string i) items))
    | Between { arg; low; high } ->
      Printf.sprintf "%s BETWEEN %s AND %s" (expr_to_string ~prec:4 arg)
        (expr_to_string ~prec:4 low) (expr_to_string ~prec:4 high)
    | Call { func; star = true; _ } -> Printf.sprintf "%s(*)" func
    | Call { func; distinct; args; _ } ->
      Printf.sprintf "%s(%s%s)" func
        (if distinct then "DISTINCT " else "")
        (String.concat ", " (List.map (fun a -> expr_to_string a) args))
  in
  let needs_parens = match e with Binop (op, _, _) -> precedence op < prec | _ -> false in
  if needs_parens then "(" ^ s ^ ")" else s

let expr_to_string e = expr_to_string ~prec:0 e

let projection_to_string = function
  | All -> "*"
  | Table_all t -> t ^ ".*"
  | Proj (e, None) -> expr_to_string e
  | Proj (e, Some a) -> expr_to_string e ^ " AS " ^ a

let select_to_string (s : select) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map projection_to_string s.projections));
  Buffer.add_string buf " FROM ";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun { table; alias } ->
            match alias with None -> table | Some a -> table ^ " " ^ a)
          s.from));
  (match s.where with
  | Some w ->
    Buffer.add_string buf " WHERE ";
    Buffer.add_string buf (expr_to_string w)
  | None -> ());
  (match s.group_by with
  | [] -> ()
  | gs ->
    Buffer.add_string buf " GROUP BY ";
    Buffer.add_string buf (String.concat ", " (List.map expr_to_string gs)));
  (match s.having with
  | Some h ->
    Buffer.add_string buf " HAVING ";
    Buffer.add_string buf (expr_to_string h)
  | None -> ());
  (match s.order_by with
  | [] -> ()
  | os ->
    Buffer.add_string buf " ORDER BY ";
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun { order_expr; descending } ->
              expr_to_string order_expr ^ if descending then " DESC" else "")
            os)));
  (match s.limit with
  | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)
  | None -> ());
  Buffer.contents buf

let query_to_string q = String.concat " UNION ALL " (List.map select_to_string q)

let statement_to_string = function
  | Select_stmt q -> query_to_string q
  | Insert { table; columns; rows } ->
    Printf.sprintf "INSERT INTO %s%s VALUES %s" table
      (match columns with
      | None -> ""
      | Some cs -> " (" ^ String.concat ", " cs ^ ")")
      (String.concat ", "
         (List.map (fun r -> "(" ^ String.concat ", " (List.map expr_to_string r) ^ ")") rows))
  | Update { table; sets; where } ->
    Printf.sprintf "UPDATE %s SET %s%s" table
      (String.concat ", " (List.map (fun (c, e) -> c ^ " = " ^ expr_to_string e) sets))
      (match where with None -> "" | Some w -> " WHERE " ^ expr_to_string w)
  | Delete { table; where } ->
    Printf.sprintf "DELETE FROM %s%s" table
      (match where with None -> "" | Some w -> " WHERE " ^ expr_to_string w)
  | Create_table { table; defs; if_not_exists } ->
    Printf.sprintf "CREATE TABLE %s%s (%s)"
      (if if_not_exists then "IF NOT EXISTS " else "")
      table
      (String.concat ", "
         (List.map
            (fun d ->
              Printf.sprintf "%s %s%s" d.def_name (Value.ty_to_string d.def_ty)
                (if d.def_not_null then " NOT NULL" else ""))
            defs))
  | Create_index { index; table; columns; if_not_exists } ->
    Printf.sprintf "CREATE INDEX %s%s ON %s (%s)"
      (if if_not_exists then "IF NOT EXISTS " else "")
      index table (String.concat ", " columns)
  | Drop_table { table; if_exists } ->
    Printf.sprintf "DROP TABLE %s%s" (if if_exists then "IF EXISTS " else "") table
  | Drop_index { index; table } -> Printf.sprintf "DROP INDEX %s ON %s" index table

(* Structural helpers used by the planner *)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Lit _ | Param _ | Col _ -> acc
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Unop (_, a) -> fold_expr f acc a
  | Is_null { arg; _ } -> fold_expr f acc arg
  | Like { arg; pattern; _ } -> fold_expr f (fold_expr f acc arg) pattern
  | In_list { arg; items; _ } -> List.fold_left (fold_expr f) (fold_expr f acc arg) items
  | Between { arg; low; high } -> fold_expr f (fold_expr f (fold_expr f acc arg) low) high
  | Call { args; _ } -> List.fold_left (fold_expr f) acc args

let aggregate_functions = [ "count"; "sum"; "avg"; "min"; "max" ]

let is_aggregate_call = function
  | Call { func; _ } -> List.mem (String.lowercase_ascii func) aggregate_functions
  | _ -> false

let contains_aggregate e =
  fold_expr (fun acc sub -> acc || is_aggregate_call sub) false e

(* Tables (or aliases) an expression refers to. *)
let referenced_tables e =
  fold_expr
    (fun acc sub ->
      match sub with
      | Col { table = Some t; _ } -> if List.mem t acc then acc else t :: acc
      | _ -> acc)
    [] e
