(* SQL values. The engine is dynamically typed at the row level but
   statically typed at the schema level; [coerce] enforces column types on
   insert. *)

type ty = TInt | TFloat | TBool | TText

type t = Null | Int of int | Float of float | Bool of bool | Text of string

let ty_to_string = function
  | TInt -> "INTEGER"
  | TFloat -> "REAL"
  | TBool -> "BOOLEAN"
  | TText -> "TEXT"

let ty_of_string s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" -> Some TInt
  | "REAL" | "FLOAT" | "DOUBLE" -> Some TFloat
  | "BOOL" | "BOOLEAN" -> Some TBool
  | "TEXT" | "VARCHAR" | "CHAR" | "STRING" | "CLOB" -> Some TText
  | _ -> None

let type_of = function
  | Null -> None
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Bool _ -> Some TBool
  | Text _ -> Some TText

let is_null = function Null -> true | Int _ | Float _ | Bool _ | Text _ -> false

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f ->
    (* Keep integral floats readable but unambiguous. *)
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f
  | Bool b -> if b then "TRUE" else "FALSE"
  | Text s -> s

(* Shortest decimal string that parses back to exactly this float.
   %.17g always round-trips but prints noise ("0.30000000000000004"
   styles for values that have shorter exact forms), so try 15 and 16
   significant digits first. *)
let float_to_sql_literal f =
  if f <> f then "NAN"
  else if f = infinity then "INF"
  else if f = neg_infinity then "-INF"
  else begin
    let shortest =
      let s15 = Printf.sprintf "%.15g" f in
      if float_of_string s15 = f then s15
      else
        let s16 = Printf.sprintf "%.16g" f in
        if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
    in
    (* keep the literal lexing as a float: "3" -> "3.0", "-0" -> "-0.0"
       (the sign would be lost in an INTEGER literal) *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') shortest then shortest
    else shortest ^ ".0"
  end

let to_sql_literal = function
  | Text s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | Float f -> float_to_sql_literal f
  | v -> to_string v

(* Total order used by ORDER BY, B+-trees, and grouping: NULL sorts first,
   then bools, ints/floats mixed numerically, then text. *)
let compare a b =
  let rank = function Null -> 0 | Bool _ -> 1 | Int _ | Float _ -> 2 | Text _ -> 3 in
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Text x, Text y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* SQL comparison semantics: any comparison with NULL is unknown. *)
let sql_compare a b = if is_null a || is_null b then None else Some (compare a b)

(* Coerce a value into a column type; used on INSERT. *)
let coerce ty v =
  match (ty, v) with
  | _, Null -> Null
  | TInt, Int _ | TFloat, Float _ | TBool, Bool _ | TText, Text _ -> v
  | TFloat, Int i -> Float (float_of_int i)
  | TInt, Float f when Float.is_integer f -> Int (int_of_float f)
  | TText, Int i -> Text (string_of_int i)
  | TText, Float f -> Text (to_string (Float f))
  | TText, Bool b -> Text (to_string (Bool b))
  | TInt, Text s -> (
    match int_of_string_opt (String.trim s) with
    | Some i -> Int i
    | None -> type_error "cannot store %S in an INTEGER column" s)
  | TFloat, Text s -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> Float f
    | None -> type_error "cannot store %S in a REAL column" s)
  | TBool, Text s -> (
    match String.uppercase_ascii (String.trim s) with
    | "TRUE" | "T" | "1" -> Bool true
    | "FALSE" | "F" | "0" -> Bool false
    | _ -> type_error "cannot store %S in a BOOLEAN column" s)
  | (TBool | TInt | TFloat), (Int _ | Float _ | Bool _) ->
    type_error "cannot store %s in a %s column" (to_string v) (ty_to_string ty)

(* Numeric view used by arithmetic and numeric aggregates. *)
let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool _ | Text _ | Null -> None

let hash = Hashtbl.hash
