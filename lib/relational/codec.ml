(* Little-endian binary codec shared by the WAL, the page checkpointer,
   and the statistics serializer, plus the CRC-32 the WAL frames records
   with to find the valid prefix of a torn log. Floats travel as their
   IEEE-754 bit pattern, so every value — NaN payloads, negative zero,
   subnormals — round-trips bit-exactly. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* ------------------------------------------------------------------ *)
(* Writers (into a Buffer) *)

let add_u8 b v = Buffer.add_uint8 b (v land 0xff)
let add_u16 b v = Buffer.add_uint16_le b v
let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_u64 b v = Buffer.add_int64_le b (Int64.of_int v)
let add_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let add_string b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_value b (v : Value.t) =
  match v with
  | Value.Null -> add_u8 b 0
  | Value.Int i ->
    add_u8 b 1;
    add_u64 b i
  | Value.Float f ->
    add_u8 b 2;
    add_float b f
  | Value.Bool false -> add_u8 b 3
  | Value.Bool true -> add_u8 b 4
  | Value.Text s ->
    add_u8 b 5;
    add_string b s

let add_row b row =
  add_u16 b (Array.length row);
  Array.iter (add_value b) row

(* ------------------------------------------------------------------ *)
(* Readers (over a string) *)

type reader = { src : string; mutable pos : int }

let reader ?(pos = 0) src = { src; pos }
let reader_pos r = r.pos
let at_end r = r.pos >= String.length r.src

let need r n =
  if r.pos + n > String.length r.src then
    corrupt "truncated input: need %d bytes at offset %d of %d" n r.pos (String.length r.src)

let get_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  need r 2;
  let v = String.get_uint16_le r.src r.pos in
  r.pos <- r.pos + 2;
  v

let get_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.src r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let get_u64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_float r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_string r =
  let n = get_u32 r in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_value r : Value.t =
  match get_u8 r with
  | 0 -> Value.Null
  | 1 -> Value.Int (get_u64 r)
  | 2 -> Value.Float (get_float r)
  | 3 -> Value.Bool false
  | 4 -> Value.Bool true
  | 5 -> Value.Text (get_string r)
  | tag -> corrupt "unknown value tag %d at offset %d" tag (r.pos - 1)

let get_row r =
  let n = get_u16 r in
  Array.init n (fun _ -> get_value r)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3 polynomial, table-driven) *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF
