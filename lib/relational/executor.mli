(** Plan interpreter: the iterator (open/next/close) model with cursors as
    closures. Pipelining operators (scan, filter, project, limit) stream;
    blocking operators (sort, hash-join build, aggregate) materialize their
    input when opened. *)

exception Exec_error of string

type cursor = unit -> Value.t array option

val of_list : Value.t array list -> cursor
val to_list : cursor -> Value.t array list

(** {1 Batch protocol}

    The vectorized interpreter exchanges batches of ~1024 rows instead of
    one row per virtual call. Ownership of a batch transfers to the
    consumer: Filter compacts [b_rows] in place and Project overwrites its
    slots, so a producer must not retain a batch it has handed out. *)

val batch_size : int

type batch = {
  mutable b_rows : Value.t array array;  (** only [[0, b_len)] is valid *)
  mutable b_len : int;
}

type batched = unit -> batch option

val rows_of_batches : batched -> cursor
(** Row-iterator adapter over a batched stream (row order preserved). *)

val batches_of_rows : cursor -> batched
(** Chunk a row stream into full batches. *)

val set_batched : bool -> unit
(** Choose the interpreter {!run} uses (batched by default) — benchmark
    hook for measuring vectorized against row-at-a-time execution. *)

val batched_on : unit -> bool

val layout_of : Planner.catalog -> Plan.t -> Expr_eval.layout
(** The output row layout of a plan node. *)

val open_plan : Value.t array -> Planner.catalog -> Plan.t -> cursor
(** Compile and open a plan against the given parameter bindings; pull rows
    with the returned cursor (row-at-a-time interpreter). *)

val open_batched : Value.t array -> Planner.catalog -> Plan.t -> batched
(** Vectorized interpreter: scans, filter, project, hash join, aggregate,
    staircase join and limit move whole batches per call; sort, distinct,
    union and nested loop fall back to the iterator implementation with
    their children still opened batched. Row order is identical to
    {!open_plan} for every operator. *)

val open_annotated : Value.t array -> Planner.catalog -> Plan.t -> cursor * Plan.annotated
(** Like {!open_plan}, but every operator is wrapped in a counting cursor
    feeding the returned {!Plan.annotated} tree (rows produced, next calls,
    inclusive wall-clock). The tree's counters are live: they fill in as
    the cursor is drained. *)

type result = { columns : string list; rows : Value.t array list }

val run : ?params:Value.t array -> Planner.catalog -> Plan.t -> result
(** [open_plan] + drain. *)

val run_analyzed : ?params:Value.t array -> Planner.catalog -> Plan.t -> result * Plan.annotated
(** [open_annotated] + drain: the result rows plus the executed plan with
    per-operator actuals (EXPLAIN ANALYZE). *)
