(** Plan interpreter: the iterator (open/next/close) model with cursors as
    closures. Pipelining operators (scan, filter, project, limit) stream;
    blocking operators (sort, hash-join build, aggregate) materialize their
    input when opened. *)

exception Exec_error of string

type cursor = unit -> Value.t array option

val of_list : Value.t array list -> cursor
val to_list : cursor -> Value.t array list

val layout_of : Planner.catalog -> Plan.t -> Expr_eval.layout
(** The output row layout of a plan node. *)

val open_plan : Value.t array -> Planner.catalog -> Plan.t -> cursor
(** Compile and open a plan against the given parameter bindings; pull rows
    with the returned cursor. *)

val open_annotated : Value.t array -> Planner.catalog -> Plan.t -> cursor * Plan.annotated
(** Like {!open_plan}, but every operator is wrapped in a counting cursor
    feeding the returned {!Plan.annotated} tree (rows produced, next calls,
    inclusive wall-clock). The tree's counters are live: they fill in as
    the cursor is drained. *)

type result = { columns : string list; rows : Value.t array list }

val run : ?params:Value.t array -> Planner.catalog -> Plan.t -> result
(** [open_plan] + drain. *)

val run_analyzed : ?params:Value.t array -> Planner.catalog -> Plan.t -> result * Plan.annotated
(** [open_annotated] + drain: the result rows plus the executed plan with
    per-operator actuals (EXPLAIN ANALYZE). *)
