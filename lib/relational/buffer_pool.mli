(** Buffer pool over one page file: fixed-size frames keyed by page id,
    pin/unpin around every access, LRU writeback of dirty frames when
    the pool is full. Reads past end-of-file yield zero pages (fresh
    page allocation); {!flush}/{!sync} write dirty frames back. *)

type t

exception Pool_error of string

val create : page_size:int -> capacity:int -> t
(** [capacity] is the frame count ceiling (floor 4). *)

val page_size : t -> int

val attach : t -> string -> reset:bool -> unit
(** Open a page file, dropping whatever the pool held. [~reset:true]
    truncates it first (checkpointing into the inactive generation). *)

val attached : t -> bool
val detach : t -> unit

val page_count : t -> int
(** Pages currently in the file (not counting unwritten dirty frames). *)

val with_page : t -> int -> (Bytes.t -> 'a) -> 'a
(** Pin page [id], run [f] on its bytes, unpin. Do not retain the bytes
    past [f]. *)

val with_page_w : t -> int -> (Bytes.t -> 'a) -> 'a
(** {!with_page} plus marking the frame dirty. *)

val flush : t -> unit
(** Write every dirty frame back (no fsync). *)

val sync : t -> unit
(** {!flush} then [fsync]. *)
