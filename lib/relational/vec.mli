(** Growable array (OCaml 5.1 predates [Dynarray]); capacity never
    shrinks. *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** Returns the index of the new element. *)

val truncate : 'a t -> int -> unit
(** Drop elements from the given length on (bulk-load abort); capacity is
    kept. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
