(* Durable paged storage for one database directory:

     <dir>/CURRENT    — the active checkpoint generation ("0" or "1")
     <dir>/pages.0    — page file, generation 0
     <dir>/pages.1    — page file, generation 1
     <dir>/wal.log    — write-ahead log since the active checkpoint

   A checkpoint writes the whole database image — table heaps, catalog,
   statistics — into the *inactive* generation through the buffer pool,
   fsyncs it, atomically renames a fresh CURRENT over the old one, and
   only then truncates the WAL. A crash at any point leaves either the
   old generation + full WAL or the new generation (+ a WAL whose records
   are all at or below the checkpoint LSN and are skipped on replay), so
   open always finds a consistent image.

   Page format (fixed size, default 4096 bytes; 24-byte header):

     [0]      u8  kind        0 meta / 1 catalog / 2 heap / 3 overflow
     [2..3]   u16 nslots      heap pages
     [4..7]   u32 next        chain link (0 = end; page 0 is the meta page)
     [8..15]  u64 lsn         checkpoint LSN stamp
     [16..19] u32 used        payload bytes (catalog / overflow)

   Heap pages are slotted: the slot directory grows forward from the
   header (u16 cell offset per slot, 0 = tombstone — deleted rows keep
   their slot so row ids survive the round trip), cells grow backward
   from the page end. A cell is [u16 len][bytes]; len 0xFFFF marks an
   overflow cell [u16 0xFFFF][u32 first_page][u32 total_len] whose row
   lives in a chain of overflow pages. The catalog is a byte stream
   (schemas, index definitions, heap chain heads, serialized statistics)
   chunked into catalog pages. *)

type t = {
  dir : string;
  pool : Buffer_pool.t;
  wal : Wal.t;
  mutable gen : int option;  (* active generation; None before the first checkpoint *)
  mutable ckpt_lsn : int;  (* highest LSN absorbed into the active generation *)
}

type table_src = {
  src_schema : Schema.t;
  src_indexes : (string * string list) list;  (* index name, column names *)
  src_iter : (Value.t array option -> unit) -> unit;  (* slots in rowid order; None = tombstone *)
}

type table_image = {
  ti_schema : Schema.t;
  ti_indexes : (string * string list) list;
  ti_slots : Value.t array option array;
}

type image = { im_tables : table_image list; im_stats : string }

exception Durable_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Durable_error s)) fmt

let magic = 0x4D505258 (* "XRPM" *)

(* Version 2 added the per-page CRC32 in header bytes [20..23]; version-1
   files have those bytes zeroed, so reading them under CRC verification
   would misreport corruption — reject them with the version error
   instead. *)
let version = 2
let header_bytes = 24
let overflow_marker = 0xFFFF

let wal t = t.wal
let dir t = t.dir
let checkpoint_lsn t = t.ckpt_lsn
let page_count t = if Buffer_pool.attached t.pool then Buffer_pool.page_count t.pool else 0

let current_path dir = Filename.concat dir "CURRENT"
let wal_path dir = Filename.concat dir "wal.log"
let pages_path dir gen = Filename.concat dir (Printf.sprintf "pages.%d" gen)

let rec mkdirs path =
  if not (Sys.file_exists path) then begin
    mkdirs (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Page writing *)

type pager = { pg_pool : Buffer_pool.t; mutable pg_next : int }

let alloc pg =
  let id = pg.pg_next in
  pg.pg_next <- id + 1;
  id

let store_page pg id buf =
  Buffer_pool.with_page_w pg.pg_pool id (fun page ->
      Bytes.blit buf 0 page 0 (Bytes.length buf))

(* Page integrity: chain and heap pages carry a CRC32 of the whole page,
   computed with the CRC field zeroed, in header bytes [20..23] (the meta
   page keeps its checkpoint LSN there and is covered by its magic).
   Verification failures count under buffer_pool.crc_fail before the
   error propagates. *)
let crc_off = 20

let stamp_page_crc buf =
  Bytes.set_int32_le buf crc_off 0l;
  let crc = Codec.crc32 (Bytes.unsafe_to_string buf) in
  Bytes.set_int32_le buf crc_off (Int32.of_int crc)

let verify_page_crc id page =
  let stored = Int32.to_int (Bytes.get_int32_le page crc_off) land 0xFFFFFFFF in
  let tmp = Bytes.copy page in
  Bytes.set_int32_le tmp crc_off 0l;
  let crc = Codec.crc32 (Bytes.unsafe_to_string tmp) in
  if crc <> stored then begin
    Metrics.incr "buffer_pool.crc_fail";
    err "page %d: CRC mismatch (stored %08lx, computed %08x)"
      id (Bytes.get_int32_le page crc_off) crc
  end

(* Write a byte stream into a chain of pages of the given kind; returns
   the first page id (0 when the stream is empty). *)
let write_chain pg ~kind ~lsn data =
  let ps = Buffer_pool.page_size pg.pg_pool in
  let chunk = ps - header_bytes in
  let total = String.length data in
  if total = 0 then 0
  else begin
    let npages = (total + chunk - 1) / chunk in
    let ids = Array.init npages (fun _ -> alloc pg) in
    Array.iteri
      (fun i id ->
        let off = i * chunk in
        let used = min chunk (total - off) in
        let buf = Bytes.make ps '\000' in
        Bytes.set_uint8 buf 0 kind;
        Bytes.set_int32_le buf 4
          (Int32.of_int (if i + 1 < npages then ids.(i + 1) else 0));
        Bytes.set_int64_le buf 8 (Int64.of_int lsn);
        Bytes.set_int32_le buf 16 (Int32.of_int used);
        Bytes.blit_string data off buf header_bytes used;
        stamp_page_crc buf;
        store_page pg id buf)
      ids;
    ids.(0)
  end

let write_overflow pg ~lsn data = write_chain pg ~kind:3 ~lsn data

(* Write one table's slots into a chain of slotted heap pages. *)
let write_heap pg ~lsn iter_slots =
  let ps = Buffer_pool.page_size pg.pg_pool in
  let max_inline = min (ps - header_bytes - 4) (overflow_marker - 1) in
  let buf = Bytes.make ps '\000' in
  let first = ref 0 in
  let cur_id = ref 0 in
  let page_open = ref false in
  let nslots = ref 0 in
  let cell_top = ref ps in
  let open_page id =
    Bytes.fill buf 0 ps '\000';
    cur_id := id;
    page_open := true;
    nslots := 0;
    cell_top := ps
  in
  let close_page ~next =
    Bytes.set_uint8 buf 0 2;
    Bytes.set_uint16_le buf 2 !nslots;
    Bytes.set_int32_le buf 4 (Int32.of_int next);
    Bytes.set_int64_le buf 8 (Int64.of_int lsn);
    stamp_page_crc buf;
    store_page pg !cur_id buf
  in
  (* Make room for one more slot plus [cell] payload bytes, spilling to a
     fresh chained page when the current one is full. *)
  let ensure cell =
    if not !page_open then begin
      let id = alloc pg in
      first := id;
      open_page id
    end
    else if header_bytes + (2 * (!nslots + 1)) + cell > !cell_top then begin
      let next = alloc pg in
      close_page ~next;
      open_page next
    end
  in
  let put_slot off =
    Bytes.set_uint16_le buf (header_bytes + (2 * !nslots)) off;
    incr nslots
  in
  iter_slots (fun slot ->
      match slot with
      | None ->
        ensure 0;
        put_slot 0
      | Some row ->
        let b = Buffer.create 64 in
        Codec.add_row b row;
        let data = Buffer.contents b in
        let len = String.length data in
        if len > max_inline then begin
          (* the row spills into an overflow chain; the inline cell holds
             only the chain head and total length *)
          let ovfl = write_overflow pg ~lsn data in
          ensure 10;
          cell_top := !cell_top - 10;
          Bytes.set_uint16_le buf !cell_top overflow_marker;
          Bytes.set_int32_le buf (!cell_top + 2) (Int32.of_int ovfl);
          Bytes.set_int32_le buf (!cell_top + 6) (Int32.of_int len);
          put_slot !cell_top
        end
        else begin
          let cell = 2 + len in
          ensure cell;
          cell_top := !cell_top - cell;
          Bytes.set_uint16_le buf !cell_top len;
          Bytes.blit_string data 0 buf (!cell_top + 2) len;
          put_slot !cell_top
        end);
  if !page_open then close_page ~next:0;
  !first

(* ------------------------------------------------------------------ *)
(* Page reading *)

let page_kind page = Bytes.get_uint8 page 0
let page_next page = Int32.to_int (Bytes.get_int32_le page 4) land 0xFFFFFFFF
let page_used page = Int32.to_int (Bytes.get_int32_le page 16) land 0xFFFFFFFF

let read_chain pool ~kind first =
  let b = Buffer.create 4096 in
  let id = ref first in
  while !id <> 0 do
    Buffer_pool.with_page pool !id (fun page ->
        if page_kind page <> kind then
          err "page %d: expected kind %d, found %d" !id kind (page_kind page);
        verify_page_crc !id page;
        Buffer.add_subbytes b page header_bytes (page_used page);
        id := page_next page)
  done;
  Buffer.contents b

let read_overflow pool first ~total =
  let data = read_chain pool ~kind:3 first in
  if String.length data < total then err "overflow chain %d: %d bytes, need %d" first (String.length data) total;
  String.sub data 0 total

let read_heap pool first =
  let slots = ref [] in
  let count = ref 0 in
  let id = ref first in
  while !id <> 0 do
    Buffer_pool.with_page pool !id (fun page ->
        if page_kind page <> 2 then err "page %d: expected a heap page, found kind %d" !id (page_kind page);
        verify_page_crc !id page;
        let nslots = Bytes.get_uint16_le page 2 in
        for i = 0 to nslots - 1 do
          let off = Bytes.get_uint16_le page (header_bytes + (2 * i)) in
          let slot =
            if off = 0 then None
            else begin
              let len = Bytes.get_uint16_le page off in
              let data =
                if len = overflow_marker then begin
                  let ovfl = Int32.to_int (Bytes.get_int32_le page (off + 2)) land 0xFFFFFFFF in
                  let total = Int32.to_int (Bytes.get_int32_le page (off + 6)) land 0xFFFFFFFF in
                  read_overflow pool ovfl ~total
                end
                else Bytes.sub_string page (off + 2) len
              in
              Some (Codec.get_row (Codec.reader data))
            end
          in
          slots := slot :: !slots;
          incr count
        done;
        id := page_next page)
  done;
  let arr = Array.make !count None in
  List.iteri (fun i s -> arr.(!count - 1 - i) <- s) !slots;
  arr

(* ------------------------------------------------------------------ *)
(* Catalog *)

let encode_catalog srcs ~firsts ~nslots ~stats =
  let b = Buffer.create 1024 in
  Codec.add_u32 b (List.length srcs);
  List.iteri
    (fun i src ->
      Wal.add_schema b src.src_schema;
      Codec.add_u16 b (List.length src.src_indexes);
      List.iter
        (fun (name, cols) ->
          Codec.add_string b name;
          Codec.add_u16 b (List.length cols);
          List.iter (Codec.add_string b) cols)
        src.src_indexes;
      Codec.add_u32 b firsts.(i);
      Codec.add_u64 b nslots.(i))
    srcs;
  Codec.add_string b stats;
  Buffer.contents b

let decode_catalog pool blob =
  let r = Codec.reader blob in
  let ntables = Codec.get_u32 r in
  let tables =
    List.init ntables (fun _ ->
        let schema = Wal.get_schema r in
        let nix = Codec.get_u16 r in
        let indexes =
          List.init nix (fun _ ->
              let name = Codec.get_string r in
              let ncols = Codec.get_u16 r in
              (name, List.init ncols (fun _ -> Codec.get_string r)))
        in
        let first = Codec.get_u32 r in
        let expected = Codec.get_u64 r in
        (schema, indexes, first, expected))
  in
  let stats = Codec.get_string r in
  let im_tables =
    List.map
      (fun (schema, indexes, first, expected) ->
        let slots = read_heap pool first in
        if Array.length slots <> expected then
          err "table %s: checkpoint promises %d slots, heap chain has %d"
            schema.Schema.table_name expected (Array.length slots);
        { ti_schema = schema; ti_indexes = indexes; ti_slots = slots })
      tables
  in
  { im_tables; im_stats = stats }

(* ------------------------------------------------------------------ *)
(* Meta page and CURRENT *)

let write_meta pg ~npages ~catalog_first ~ckpt_lsn =
  let ps = Buffer_pool.page_size pg.pg_pool in
  let buf = Bytes.make ps '\000' in
  Bytes.set_int32_le buf 0 (Int32.of_int magic);
  Bytes.set_int32_le buf 4 (Int32.of_int version);
  Bytes.set_int32_le buf 8 (Int32.of_int ps);
  Bytes.set_int32_le buf 12 (Int32.of_int npages);
  Bytes.set_int32_le buf 16 (Int32.of_int catalog_first);
  Bytes.set_int64_le buf 20 (Int64.of_int ckpt_lsn);
  store_page pg 0 buf

let read_meta pool =
  Buffer_pool.with_page pool 0 (fun page ->
      let u32 off = Int32.to_int (Bytes.get_int32_le page off) land 0xFFFFFFFF in
      if u32 0 <> magic then err "not a page file (bad magic)";
      if u32 4 <> version then err "page file version %d is not supported" (u32 4);
      if u32 8 <> Buffer_pool.page_size pool then
        err "page size mismatch: file has %d, pool uses %d" (u32 8) (Buffer_pool.page_size pool);
      let npages = u32 12 in
      let catalog_first = u32 16 in
      let ckpt_lsn = Int64.to_int (Bytes.get_int64_le page 20) in
      (npages, catalog_first, ckpt_lsn))

let read_current dir =
  let path = current_path dir in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match String.trim line with
    | "0" -> Some 0
    | "1" -> Some 1
    | s -> err "CURRENT names generation %S (want 0 or 1)" s
  end

let write_current dir gen =
  let tmp = Filename.concat dir "CURRENT.tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let s = string_of_int gen ^ "\n" in
      ignore (Unix.write_substring fd s 0 (String.length s));
      Unix.fsync fd);
  Sys.rename tmp (current_path dir);
  fsync_dir dir

(* ------------------------------------------------------------------ *)
(* Open and checkpoint *)

let open_dir ?(page_size = 4096) ?(pool_pages = 256) dirname =
  mkdirs dirname;
  let pool = Buffer_pool.create ~page_size ~capacity:pool_pages in
  let gen = read_current dirname in
  let image, ckpt_lsn =
    match gen with
    | None -> (None, 0)
    | Some g ->
      Buffer_pool.attach pool (pages_path dirname g) ~reset:false;
      let _npages, catalog_first, ckpt_lsn = read_meta pool in
      let blob = read_chain pool ~kind:1 catalog_first in
      (Some (decode_catalog pool blob), ckpt_lsn)
  in
  let scan = Wal.scan (wal_path dirname) in
  let wal = Wal.open_log (wal_path dirname) in
  (* a torn tail is dead history: cut it before appending new records *)
  if scan.Wal.sc_valid_bytes < scan.Wal.sc_total_bytes then
    Wal.truncate_to wal scan.Wal.sc_valid_bytes;
  let max_seen =
    List.fold_left (fun acc (lsn, _) -> max acc lsn) ckpt_lsn scan.Wal.sc_records
  in
  Wal.set_next_lsn wal (max_seen + 1);
  ({ dir = dirname; pool; wal; gen; ckpt_lsn }, image, scan)

let checkpoint t ~tables ~stats ~last_lsn =
  let next_gen = match t.gen with Some g -> 1 - g | None -> 0 in
  let pg = { pg_pool = t.pool; pg_next = 1 } in
  let srcs = tables in
  (* Phase 1: write the whole image into the inactive generation and
     fsync it. A crash here leaves the old generation authoritative. *)
  Obskit.Trace.with_span "checkpoint.pages" (fun () ->
      Metrics.timed "db.checkpoint.pages" (fun () ->
          Buffer_pool.attach t.pool (pages_path t.dir next_gen) ~reset:true;
          let firsts = Array.make (List.length srcs) 0 in
          let nslots = Array.make (List.length srcs) 0 in
          List.iteri
            (fun i src ->
              let count = ref 0 in
              firsts.(i) <-
                write_heap pg ~lsn:last_lsn (fun emit ->
                    src.src_iter (fun slot ->
                        incr count;
                        emit slot));
              nslots.(i) <- !count)
            srcs;
          Failpoint.hit "checkpoint.pages";
          let catalog_first =
            write_chain pg ~kind:1 ~lsn:last_lsn (encode_catalog srcs ~firsts ~nslots ~stats)
          in
          write_meta pg ~npages:pg.pg_next ~catalog_first ~ckpt_lsn:last_lsn;
          Buffer_pool.sync t.pool;
          Metrics.incr ~by:pg.pg_next "db.page.checkpoint_pages";
          Obskit.Trace.add_attr "pages" (string_of_int pg.pg_next)));
  (* Phase 2: the commit point — atomically flip CURRENT. *)
  Obskit.Trace.with_span "checkpoint.flip" (fun () ->
      Metrics.timed "db.checkpoint.flip" (fun () ->
          Failpoint.hit "checkpoint.current";
          write_current t.dir next_gen;
          t.gen <- Some next_gen;
          t.ckpt_lsn <- last_lsn));
  (* Phase 3: the WAL's history is now absorbed; drop it. *)
  Obskit.Trace.with_span "checkpoint.truncate" (fun () ->
      Metrics.timed "db.checkpoint.truncate" (fun () ->
          Failpoint.hit "checkpoint.truncate";
          Wal.truncate t.wal));
  Metrics.incr "db.checkpoint"

let close t =
  Wal.close t.wal;
  Buffer_pool.detach t.pool

(* Drop the handles without flushing anything — simulates a crash. *)
let abandon t =
  Wal.abandon t.wal;
  Buffer_pool.detach t.pool
