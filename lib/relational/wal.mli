(** Write-ahead log. Records are framed [[u32 len][u32 crc][payload]];
    the payload carries the log sequence number and the record body.
    {!scan} stops at the first torn or corrupt frame, so after a crash
    the valid prefix is exactly the durable history.

    Row mutations carry the transaction that made them (0 =
    autocommitted); DDL is always transaction 0, redone unconditionally
    and never undone — mirroring the live engine, where a bulk-load abort
    drains appended rows but keeps DDL. A transaction is durable iff its
    [Commit] record survives in the valid prefix. *)

type record =
  | Begin of int  (** transaction id *)
  | Commit of int
  | Abort of int
  | Insert of { tx : int; table : string; rowid : int; row : Value.t array }
  | Delete of { table : string; rowid : int }
  | Update of { table : string; rowid : int; row : Value.t array }
  | Create_table of Schema.t
  | Drop_table of string
  | Create_index of { table : string; index : string; columns : string list }
  | Drop_index of { table : string; index : string }

type t

val open_log : string -> t
(** Open (or create) a log file, positioned for appending. The caller
    seeds {!set_next_lsn} from the checkpoint metadata / a prior scan. *)

val path : t -> string

val append : t -> record -> int
(** Stage one record; returns its LSN. Staged bytes are written out at
    64 KiB, on {!flush}, and on {!sync}. *)

val flush : t -> unit
(** Write staged records to the OS (no fsync). *)

val sync : t -> unit
(** {!flush} then [fsync] — the commit durability point. *)

val truncate : t -> unit
(** Empty the log (after a successful checkpoint). LSNs keep counting. *)

val truncate_to : t -> int -> unit
(** Cut a torn tail back to the valid prefix found by a {!scan}. *)

val set_next_lsn : t -> int -> unit
(** Raise the next LSN (never lowers it). *)

val last_lsn : t -> int

val close : t -> unit

val abandon : t -> unit
(** Close without flushing staged records — simulates the process dying
    with records still in memory (crash tests). *)

type scan = {
  sc_records : (int * record) list;  (** (lsn, record), log order *)
  sc_valid_bytes : int;  (** length of the valid prefix *)
  sc_total_bytes : int;  (** file length *)
}

val scan : string -> scan
(** Parse a log file from disk; never raises on torn or corrupt tails —
    they simply end the valid prefix. *)

(** {1 Schema codec} (shared with the checkpoint catalog) *)

val add_schema : Buffer.t -> Schema.t -> unit
val get_schema : Codec.reader -> Schema.t
