(** Little-endian binary codec shared by the WAL, the page checkpointer,
    and the statistics serializer. Floats travel as their IEEE-754 bit
    pattern, so NaN payloads, negative zero, and subnormals round-trip
    bit-exactly. *)

exception Corrupt of string
(** Raised by every reader on truncated or malformed input. *)

(** {1 Writers} *)

val add_u8 : Buffer.t -> int -> unit
val add_u16 : Buffer.t -> int -> unit
val add_u32 : Buffer.t -> int -> unit
val add_u64 : Buffer.t -> int -> unit
val add_float : Buffer.t -> float -> unit
val add_string : Buffer.t -> string -> unit
(** Length-prefixed (u32). *)

val add_value : Buffer.t -> Value.t -> unit
val add_row : Buffer.t -> Value.t array -> unit
(** Arity-prefixed (u16). *)

(** {1 Readers} *)

type reader

val reader : ?pos:int -> string -> reader
val reader_pos : reader -> int
val at_end : reader -> bool

val get_u8 : reader -> int
val get_u16 : reader -> int
val get_u32 : reader -> int
val get_u64 : reader -> int
val get_float : reader -> float
val get_string : reader -> string
val get_value : reader -> Value.t
val get_row : reader -> Value.t array

(** {1 Integrity} *)

val crc32 : ?pos:int -> ?len:int -> string -> int
(** CRC-32 (IEEE 802.3 polynomial) of a substring; whole string by
    default. *)
