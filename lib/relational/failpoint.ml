(* Crash-point injection for durability testing: the CLI and the test
   suite arm a named point, and the durability layer calls [hit] at the
   matching step, which raises mid-operation exactly where a process
   crash would cut. A point fires at most once per arming. *)

exception Injected_crash of string

let armed = ref None

let arm p = armed := p
let armed_point () = !armed

let hit name =
  match !armed with
  | Some p when String.equal p name ->
    armed := None;
    raise (Injected_crash name)
  | _ -> ()

(* The points the durability layer exposes, for CLI help text. *)
let points =
  [
    ("wal.commit", "after writing a session's commit record, before the log fsync");
    ("checkpoint.pages", "after writing the new generation's heap pages");
    ("checkpoint.current", "after fsyncing the pages, before the CURRENT flip");
    ("checkpoint.truncate", "after the CURRENT flip, before truncating the log");
  ]
