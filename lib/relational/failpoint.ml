(* Crash-point injection for durability testing: the CLI and the test
   suite arm a named point, and the durability layer calls [hit] at the
   matching step, which raises mid-operation exactly where a process
   crash would cut. A point fires at most once per arming. *)

exception Injected_crash of string

let armed = Atomic.make None

let arm p = Atomic.set armed p
let armed_point () = Atomic.get armed

let hit name =
  let cur = Atomic.get armed in
  match cur with
  | Some p when String.equal p name ->
    (* compare_and_set (on the witnessed value — CAS is physical equality)
       so two domains hitting the point fire it at most once per arming *)
    if Atomic.compare_and_set armed cur None then raise (Injected_crash name)
  | _ -> ()

(* The points the durability layer exposes, for CLI help text. *)
let points =
  [
    ("wal.commit", "after writing a session's commit record, before the log fsync");
    ("checkpoint.pages", "after writing the new generation's heap pages");
    ("checkpoint.current", "after fsyncing the pages, before the CURRENT flip");
    ("checkpoint.truncate", "after the CURRENT flip, before truncating the log");
  ]
