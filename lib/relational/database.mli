(** Top-level database: a catalog of tables plus SQL entry points. *)

type t

exception Db_error of string

val create : unit -> t

(** {1 Catalog} *)

val find_table : t -> string -> Table.t option
(** Case-insensitive. *)

val get_table : t -> string -> Table.t
(** @raise Db_error when absent. *)

val table_names : t -> string list
val create_table : t -> Schema.t -> Table.t
val drop_table : t -> string -> bool
val catalog : t -> Planner.catalog

val analyze : t -> string -> Stats.table_stats
(** Per-column statistics of a table (cached; refreshed when the row count
    drifts). The planner consults the same cache for its estimates. *)

val analyze_to_string : t -> string -> string

(** {1 Direct row access (load fast path for the shredders)} *)

val insert_row_array : t -> string -> Value.t array -> unit

(** {1 Bulk-load sessions}

    A session appends rows straight into the table arenas with all index
    maintenance deferred: {!finish_session} builds each touched B+-tree
    bottom-up from one sort of the appended (key, rowid) pairs,
    observationally identical to row-at-a-time inserts but much faster.
    Mid-session reads see appended rows through sequential scans but not
    through index probes. DDL composes (it clears the plan cache as
    always; CREATE INDEX on a touched table covers only the
    already-indexed range, the rest is folded in at finish), and
    {!abort_session} drains every touched table back to its pre-session
    length. DELETE/UPDATE on a touched table are rejected until the
    session closes. *)

type session

val load_session : t -> session
val session_db : session -> t

val insert_rows : session -> string -> Value.t array list -> unit
(** Append a batch of rows to a table, index maintenance deferred. *)

val session_insert : session -> string -> Value.t array -> unit
(** Single-row {!insert_rows}. *)

val finish_session : session -> int
(** Build all deferred index entries (one [index.build] trace span per
    table); returns how many rows the session appended. Idempotent. *)

val abort_session : session -> unit
(** Drop every row the session appended, restoring the touched tables
    exactly (the rows were never indexed). Idempotent; a finished
    session cannot be aborted. *)

val with_session : t -> (session -> 'a) -> 'a
(** Run [f] with a fresh session; finish on return, abort on raise. *)

(** {1 SQL execution} *)

type exec_result =
  | Rows of Executor.result  (** SELECT *)
  | Affected of int  (** INSERT / UPDATE / DELETE *)
  | Done of string  (** DDL *)

val exec : ?params:Value.t array -> t -> string -> exec_result
(** Execute one statement. A plan-cache hit on the statement text skips
    lexing, parsing, and planning. [?N] placeholders in the statement bind
    against [params] (1-based). *)

val exec_script : t -> string -> exec_result list
(** Execute a [;]-separated sequence of statements. *)

val query : ?params:Value.t array -> t -> string -> Executor.result
(** Like {!exec} but requires a SELECT. @raise Db_error otherwise. *)

(** {1 Prepared statements and the plan cache}

    A prepared handle pins the parsed query; each execution fetches the
    compiled plan from an LRU cache keyed by statement text. Entries are
    invalidated by any DDL and by table row counts drifting ~20% from what
    the planner saw, so handles never execute stale plans. *)

type prepared

val prepare : t -> string -> prepared
(** Parse and plan a SELECT once. @raise Db_error for non-SELECT input. *)

val prepare_query : t -> Sql_ast.query -> prepared
(** Prepare a query built directly as AST (see {!Sql_build}). *)

val prepared_text : prepared -> string
(** The statement text (also the plan-cache key). *)

val prepared_plan : t -> prepared -> Plan.t
(** The plan the next execution would run (inspection / join counting). *)

val query_prepared : ?params:Value.t array -> t -> prepared -> Executor.result
(** Execute a prepared SELECT with the given parameter bindings. *)

val query_analyzed :
  ?params:Value.t array -> t -> string -> Executor.result * Plan.annotated
(** Like {!query} but every operator is instrumented: the returned
    {!Plan.annotated} tree carries actual rows, next-calls and inclusive
    wall-clock per operator (EXPLAIN ANALYZE). Uses the same plan cache as
    {!query}. @raise Db_error for non-SELECT input. *)

val query_prepared_analyzed :
  ?params:Value.t array -> t -> prepared -> Executor.result * Plan.annotated
(** {!query_prepared} with per-operator actuals. *)

val cache_stats : t -> int * int * int * int
(** Plan-cache [(hits, misses, invalidations, evictions)] counters. *)

val reset_cache_stats : t -> unit

val set_plan_cache : t -> bool -> unit
(** Disable (and empty) or re-enable the plan cache; results are identical
    either way. *)

val plan_of : t -> string -> Plan.t
(** The plan a SELECT would run (inspection / join counting), bypassing the
    cache. *)

val explain : t -> string -> string
(** Rendered plan tree. *)

val explain_analyze : ?params:Value.t array -> t -> string -> string
(** Execute the SELECT and render the plan tree with per-operator actuals. *)

(** {1 Statistics and rendering} *)

type table_stats = {
  st_table : string;
  st_rows : int;
  st_bytes : int;
  st_indexes : int;
  st_index_entries : int;
}

val stats : t -> table_stats list
val total_rows : t -> int
val total_bytes : t -> int

val render_result : Executor.result -> string
(** Aligned text table (CLI, examples). *)

(** {1 Persistence} *)

val dump : t -> string
(** A SQL script (CREATE TABLE / INSERT / CREATE INDEX) that {!restore}
    replays into an identical database. *)

val restore : string -> t
(** Replay a dump. Plain VALUES inserts stream through a bulk-load
    session (deferred index maintenance), and every table is analyzed
    once loaded, so the restored database plans from the same full-scan
    statistics as the original. *)

val dump_to_file : t -> string -> unit
val restore_from_file : string -> t

(** {1 Durability}

    A durable database lives in a directory: double-buffered page
    checkpoints plus a write-ahead log carrying everything since the
    last one (see {!Durable}, {!Wal}). Every mutation — SQL statements,
    direct inserts, bulk-load sessions — is logged as it happens; a
    bulk-load session is one WAL transaction whose commit is the fsync
    point, and autocommitted statements reach the OS when they return.
    {!open_durable} recovers: redo replays the log past the checkpoint,
    undo truncates the appended tails of transactions whose commit never
    made it — exactly what a live {!abort_session} would have done. *)

type recovery = {
  rc_scanned : int;  (** WAL records in the valid prefix *)
  rc_redone : int;  (** mutation/DDL records replayed past the checkpoint *)
  rc_undone : int;  (** rows truncated undoing loser transactions *)
  rc_losers : int;  (** transactions with work but no Commit/Abort *)
  rc_torn_bytes : int;  (** torn WAL tail cut back on open *)
}

val open_durable : ?page_size:int -> ?pool_pages:int -> string -> t
(** Open (creating if needed) a durable database directory, running
    recovery as required. After any replay the WAL is folded into a
    fresh checkpoint, so a reopened directory is always clean. *)

val is_durable : t -> bool
val durable_dir : t -> string option

val last_recovery : t -> recovery option
(** What recovery did when this database was opened ([None] for
    in-memory databases). *)

val checkpoint : t -> unit
(** Write a full page image and truncate the WAL. No-op in memory.
    @raise Db_error during an open bulk-load session. *)

val close : t -> unit
(** {!checkpoint}, then release the directory. No-op in memory. *)

val abandon : t -> unit
(** Drop the directory handles without flushing — simulates a crash with
    staged WAL records still in memory (tests, the CLI's --crash-at). *)

val wal_sync : t -> unit
(** Force staged WAL records to disk (fsync) without checkpointing. *)
