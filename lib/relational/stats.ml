(* Per-column statistics (ANALYZE): distinct counts, null fractions,
   min/max, and equi-width histograms over numeric columns. The planner's
   cardinality estimates use them when present, replacing fixed guesses
   ("equality keeps 1/20th", "a range keeps 1/4th") with rows/distinct and
   histogram mass.

   Statistics are maintained incrementally: a finished bulk-load session
   folds its appended row range into the existing accumulators
   ([fold_range]) instead of dropping the entry and re-scanning the whole
   table on the next estimate. A full re-scan happens only when the live
   row count drifted through channels the fold never saw (row-at-a-time
   DML). Registered [on_change] listeners fire when a table's statistics
   move materially — the database uses this to invalidate the plan cache,
   whose entries were costed against the old numbers. *)

let hist_buckets = 32

(* Exact distinct counting switches to a linear-counting bitmap past this
   many values: the sketch is O(1) memory, incremental, and good to a few
   percent at the cardinalities the planner cares about. *)
let distinct_cap = 4096

let sketch_bits = 16384 (* must be a power of two *)

type histogram = {
  h_lo : float;
  h_hi : float;
  h_counts : int array;  (* equi-width buckets over [h_lo, h_hi] *)
  h_total : int;  (* finite numeric values counted *)
}

type column_stats = {
  cs_distinct : int;
  cs_nulls : int;
  cs_min : Value.t;  (* Null when the column is all-NULL or empty *)
  cs_max : Value.t;
  cs_hist : histogram option;  (* numeric columns only *)
}

type table_stats = {
  ts_rows : int;
  ts_columns : column_stats array;  (* by column position *)
}

(* ------------------------------------------------------------------ *)
(* Accumulators (internal, mutable) *)

type distinct_acc =
  | Exact of (Value.t, unit) Hashtbl.t
  | Sketch of { bits : Bytes.t; mutable set : int }

type hist_acc = {
  mutable ha_lo : float;
  mutable ha_hi : float;
  mutable ha_counts : int array;
  mutable ha_total : int;
}

type col_acc = {
  mutable ca_nulls : int;
  mutable ca_min : Value.t;
  mutable ca_max : Value.t;
  mutable ca_distinct : distinct_acc;
  mutable ca_hist : hist_acc option;
      (* None once a non-numeric value appeared (or before any value) *)
  mutable ca_numeric : bool;  (* no non-numeric value seen yet *)
}

type acc = {
  mutable a_rows : int;
  a_cols : col_acc array;
  mutable a_snapshot : table_stats option;  (* cache, dropped on any update *)
  mutable a_notified_rows : int;  (* row count at the last change notification *)
}

type t = {
  tbl : (string, acc) Hashtbl.t;
  mutable listeners : (string -> unit) list;
}

let create () = { tbl = Hashtbl.create 8; listeners = [] }

let on_change t f = t.listeners <- f :: t.listeners

let notify t name = List.iter (fun f -> f name) t.listeners

(* ------------------------------------------------------------------ *)
(* Distinct counting *)

let sketch_add s v =
  let h = Hashtbl.hash v land (sketch_bits - 1) in
  let byte = h lsr 3 and mask = 1 lsl (h land 7) in
  let cur = Char.code (Bytes.get s (byte : int)) in
  if cur land mask = 0 then begin
    Bytes.set s byte (Char.chr (cur lor mask));
    true
  end
  else false

let distinct_add ca v =
  match ca.ca_distinct with
  | Exact h ->
    if not (Hashtbl.mem h v) then begin
      Hashtbl.replace h v ();
      if Hashtbl.length h > distinct_cap then begin
        (* convert: re-hash every exact key into the bitmap *)
        let bits = Bytes.make (sketch_bits / 8) '\000' in
        let set = ref 0 in
        Hashtbl.iter (fun k () -> if sketch_add bits k then incr set) h;
        ca.ca_distinct <- Sketch { bits; set = !set }
      end
    end
  | Sketch s -> if sketch_add s.bits v then s.set <- s.set + 1

(* Linear counting: n-hat = m * ln (m / empty). Never below the number of
   set bits; saturates when the bitmap fills up. *)
let distinct_estimate = function
  | Exact h -> Hashtbl.length h
  | Sketch s ->
    if s.set >= sketch_bits then sketch_bits * 64
    else
      let m = float_of_int sketch_bits in
      max s.set (int_of_float ((m *. log (m /. (m -. float_of_int s.set))) +. 0.5))

(* ------------------------------------------------------------------ *)
(* Equi-width histograms *)

let numeric_of = function
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> if Float.is_finite f then Some f else None
  | Value.Bool _ | Value.Text _ | Value.Null -> None

let bucket_of ~lo ~hi v =
  if hi <= lo then 0
  else
    let idx = int_of_float ((v -. lo) /. (hi -. lo) *. float_of_int hist_buckets) in
    min (hist_buckets - 1) (max 0 idx)

(* Widen the histogram's range to cover [v], growing geometrically (the
   new span at least doubles the old) so a monotone value stream causes
   O(log range) rescales, not one per value. Existing mass lands in the
   new bucket containing its old bucket's midpoint — totals are preserved
   exactly, resolution degrades gracefully. *)
let hist_widen ha v =
  let lo = min ha.ha_lo v and hi = max ha.ha_hi v in
  let old_span = ha.ha_hi -. ha.ha_lo in
  let lo, hi =
    if old_span <= 0. then (lo, hi)
    else begin
      let needed = hi -. lo in
      let span = Float.max needed (2. *. old_span) in
      if v < ha.ha_lo then (hi -. span, hi) else (lo, lo +. span)
    end
  in
  let counts = Array.make hist_buckets 0 in
  (if ha.ha_total > 0 then
     let w = (ha.ha_hi -. ha.ha_lo) /. float_of_int hist_buckets in
     Array.iteri
       (fun i c ->
         if c > 0 then begin
           let mid =
             if w <= 0. then ha.ha_lo else ha.ha_lo +. ((float_of_int i +. 0.5) *. w)
           in
           let j = bucket_of ~lo ~hi mid in
           counts.(j) <- counts.(j) + c
         end)
       ha.ha_counts);
  ha.ha_lo <- lo;
  ha.ha_hi <- hi;
  ha.ha_counts <- counts

let hist_add ca v =
  if ca.ca_numeric then begin
    match ca.ca_hist with
    | None ->
      ca.ca_hist <-
        Some { ha_lo = v; ha_hi = v; ha_counts = Array.make hist_buckets 0; ha_total = 0 };
      let ha = match ca.ca_hist with Some h -> h | None -> assert false in
      ha.ha_counts.(0) <- 1;
      ha.ha_total <- 1
    | Some ha ->
      if v < ha.ha_lo || v > ha.ha_hi then hist_widen ha v;
      let i = bucket_of ~lo:ha.ha_lo ~hi:ha.ha_hi v in
      ha.ha_counts.(i) <- ha.ha_counts.(i) + 1;
      ha.ha_total <- ha.ha_total + 1
  end

let drop_hist ca =
  ca.ca_numeric <- false;
  ca.ca_hist <- None

(* ------------------------------------------------------------------ *)
(* Feeding rows *)

let new_col_acc () =
  {
    ca_nulls = 0;
    ca_min = Value.Null;
    ca_max = Value.Null;
    ca_distinct = Exact (Hashtbl.create 64);
    ca_hist = None;
    ca_numeric = true;
  }

let feed_value ca v =
  if Value.is_null v then ca.ca_nulls <- ca.ca_nulls + 1
  else begin
    distinct_add ca v;
    if Value.is_null ca.ca_min || Value.compare v ca.ca_min < 0 then ca.ca_min <- v;
    if Value.is_null ca.ca_max || Value.compare v ca.ca_max > 0 then ca.ca_max <- v;
    match numeric_of v with
    | Some f -> hist_add ca f
    | None -> ( match v with Value.Float _ -> () (* non-finite: skip *) | _ -> drop_hist ca)
  end

let feed_row a row =
  a.a_rows <- a.a_rows + 1;
  Array.iteri (fun i v -> feed_value a.a_cols.(i) v) row

let acc_of_table (table : Table.t) : acc =
  let arity = Schema.arity (Table.schema table) in
  let a =
    { a_rows = 0; a_cols = Array.init arity (fun _ -> new_col_acc ()); a_snapshot = None;
      a_notified_rows = 0 }
  in
  Table.iter (fun _ row -> feed_row a row) table;
  a.a_notified_rows <- a.a_rows;
  a

(* ------------------------------------------------------------------ *)
(* Snapshots *)

let snapshot_col ca =
  {
    cs_distinct = distinct_estimate ca.ca_distinct;
    cs_nulls = ca.ca_nulls;
    cs_min = ca.ca_min;
    cs_max = ca.ca_max;
    cs_hist =
      Option.map
        (fun ha ->
          { h_lo = ha.ha_lo; h_hi = ha.ha_hi; h_counts = Array.copy ha.ha_counts;
            h_total = ha.ha_total })
        ca.ca_hist;
  }

let snapshot a =
  match a.a_snapshot with
  | Some st -> st
  | None ->
    let st = { ts_rows = a.a_rows; ts_columns = Array.map snapshot_col a.a_cols } in
    a.a_snapshot <- Some st;
    st

let analyze_table (table : Table.t) : table_stats = snapshot (acc_of_table table)

(* Drift beyond ~20% of the recorded row count is material. *)
let material ~then_ ~now = abs (now - then_) * 5 > max 1 then_

(* Fetch (and lazily refresh) statistics for a table. A full re-scan runs
   only when the live row count moved more than 20% since the stats were
   last brought current — bulk loads keep them current via [fold_range],
   so the common load-then-query cycle never re-scans. *)
let get t (table : Table.t) : table_stats =
  let name = Table.name table in
  let current_rows = Table.row_count table in
  match Hashtbl.find_opt t.tbl name with
  | Some a when not (material ~then_:a.a_rows ~now:current_rows) -> snapshot a
  | previous ->
    let a = acc_of_table table in
    Hashtbl.replace t.tbl name a;
    if previous <> None then notify t name;
    snapshot a

(* Fold a freshly appended row range [base, base+added) into the table's
   existing accumulators — the bulk-load finish hook. A table that was
   never analyzed has nothing to maintain (stats stay on demand); a table
   with stats absorbs the range in one pass over just those rows. *)
let fold_range t (table : Table.t) ~base ~added =
  if added > 0 then
    let name = Table.name table in
    match Hashtbl.find_opt t.tbl name with
    | None -> ()
    | Some a ->
      for rowid = base to base + added - 1 do
        match Table.get table rowid with
        | Some row -> feed_row a row
        | None -> ()
      done;
      a.a_snapshot <- None;
      if material ~then_:a.a_notified_rows ~now:a.a_rows then begin
        a.a_notified_rows <- a.a_rows;
        notify t name
      end

(* Re-analyze one table unconditionally, replacing whatever the registry
   held — recovery uses this for tables the WAL replay touched, whose
   checkpointed statistics describe a superseded state. No notification:
   recovery runs before any plan could have been cached. *)
let refresh t (table : Table.t) = Hashtbl.replace t.tbl (Table.name table) (acc_of_table table)

(* ------------------------------------------------------------------ *)
(* Serialization: the durable checkpoint persists the raw accumulators,
   because a re-scan cannot reproduce them — histogram widening is
   order-dependent, and the distinct sketch saturates information a scan
   of the surviving rows would not recover. Importing the exact
   accumulator state makes a reopened database plan byte-identically. *)

let export t =
  let b = Buffer.create 1024 in
  let entries = Hashtbl.fold (fun name a acc -> (name, a) :: acc) t.tbl [] in
  let entries = List.sort (fun (n1, _) (n2, _) -> String.compare n1 n2) entries in
  Codec.add_u32 b (List.length entries);
  List.iter
    (fun (name, a) ->
      Codec.add_string b name;
      Codec.add_u64 b a.a_rows;
      Codec.add_u64 b a.a_notified_rows;
      Codec.add_u16 b (Array.length a.a_cols);
      Array.iter
        (fun ca ->
          Codec.add_u64 b ca.ca_nulls;
          Codec.add_value b ca.ca_min;
          Codec.add_value b ca.ca_max;
          Codec.add_u8 b (if ca.ca_numeric then 1 else 0);
          (match ca.ca_distinct with
          | Exact h ->
            Codec.add_u8 b 0;
            let values = Hashtbl.fold (fun v () acc -> v :: acc) h [] in
            let values = List.sort Stdlib.compare values in
            Codec.add_u32 b (List.length values);
            List.iter (Codec.add_value b) values
          | Sketch { bits; set } ->
            Codec.add_u8 b 1;
            Codec.add_u64 b set;
            Codec.add_string b (Bytes.to_string bits));
          match ca.ca_hist with
          | None -> Codec.add_u8 b 0
          | Some ha ->
            Codec.add_u8 b 1;
            Codec.add_float b ha.ha_lo;
            Codec.add_float b ha.ha_hi;
            Codec.add_u16 b (Array.length ha.ha_counts);
            Array.iter (Codec.add_u64 b) ha.ha_counts;
            Codec.add_u64 b ha.ha_total)
        a.a_cols)
    entries;
  Buffer.contents b

let import t blob =
  Hashtbl.reset t.tbl;
  if String.length blob > 0 then begin
    let r = Codec.reader blob in
    let n = Codec.get_u32 r in
    for _ = 1 to n do
      let name = Codec.get_string r in
      let a_rows = Codec.get_u64 r in
      let a_notified_rows = Codec.get_u64 r in
      let ncols = Codec.get_u16 r in
      let a_cols =
        Array.init ncols (fun _ ->
            let ca_nulls = Codec.get_u64 r in
            let ca_min = Codec.get_value r in
            let ca_max = Codec.get_value r in
            let ca_numeric = Codec.get_u8 r = 1 in
            let ca_distinct =
              match Codec.get_u8 r with
              | 0 ->
                let count = Codec.get_u32 r in
                let h = Hashtbl.create (max 64 count) in
                for _ = 1 to count do
                  Hashtbl.replace h (Codec.get_value r) ()
                done;
                Exact h
              | 1 ->
                let set = Codec.get_u64 r in
                let bits = Bytes.of_string (Codec.get_string r) in
                Sketch { bits; set }
              | tag -> raise (Codec.Corrupt (Printf.sprintf "unknown distinct tag %d" tag))
            in
            let ca_hist =
              match Codec.get_u8 r with
              | 0 -> None
              | _ ->
                let ha_lo = Codec.get_float r in
                let ha_hi = Codec.get_float r in
                let nb = Codec.get_u16 r in
                let ha_counts = Array.init nb (fun _ -> Codec.get_u64 r) in
                let ha_total = Codec.get_u64 r in
                Some { ha_lo; ha_hi; ha_counts; ha_total }
            in
            { ca_nulls; ca_min; ca_max; ca_distinct; ca_hist; ca_numeric })
      in
      Hashtbl.replace t.tbl name { a_rows; a_cols; a_snapshot = None; a_notified_rows }
    done
  end

(* ------------------------------------------------------------------ *)
(* Estimates *)

(* Selectivity of an equality predicate on one column: 1/distinct. *)
let eq_selectivity st ~column =
  if column < 0 || column >= Array.length st.ts_columns then 0.05
  else
    let cs = st.ts_columns.(column) in
    if cs.cs_distinct <= 0 then 0.05 else 1.0 /. float_of_int cs.cs_distinct

let null_fraction st ~column =
  if column < 0 || column >= Array.length st.ts_columns || st.ts_rows <= 0 then 0.0
  else float_of_int st.ts_columns.(column).cs_nulls /. float_of_int st.ts_rows

(* Histogram mass inside [lo, hi], with the partial end buckets counted by
   linear interpolation. *)
let hist_fraction h ~lo ~hi =
  if h.h_total <= 0 then 0.0
  else if h.h_hi <= h.h_lo then if lo <= h.h_lo && h.h_lo <= hi then 1.0 else 0.0
  else begin
    let w = (h.h_hi -. h.h_lo) /. float_of_int hist_buckets in
    let mass = ref 0.0 in
    for i = 0 to hist_buckets - 1 do
      let blo = h.h_lo +. (float_of_int i *. w) in
      let bhi = blo +. w in
      let olo = Float.max blo lo and ohi = Float.min bhi hi in
      if ohi > olo then mass := !mass +. (float_of_int h.h_counts.(i) *. (ohi -. olo) /. w)
    done;
    Float.min 1.0 (!mass /. float_of_int h.h_total)
  end

(* Selectivity of a (possibly one-sided) range predicate on one column.
   Histogram-backed when the column is numeric and the bounds are known;
   the pre-statistics fixed guess (1/4, matching the old planner) covers
   everything else. Inclusive vs exclusive is below histogram resolution
   and ignored. *)
let range_selectivity st ~column ~lower ~upper =
  let fallback = 0.25 in
  if column < 0 || column >= Array.length st.ts_columns then fallback
  else
    match st.ts_columns.(column).cs_hist with
    | None -> fallback
    | Some h ->
      let bound side =
        match side with
        | None -> None
        | Some (v, _incl) -> numeric_of v
      in
      let lo = match bound lower with Some f -> f | None -> Float.neg_infinity in
      let hi = match bound upper with Some f -> f | None -> Float.infinity in
      (match (lower, bound lower, upper, bound upper) with
      | Some _, None, _, _ | _, _, Some _, None ->
        (* a bound exists but is not numeric: no histogram help *)
        fallback
      | _ ->
        if lo > hi then 0.0
        else
          (* floor at one row's worth so a miss never estimates zero *)
          Float.max (1.0 /. float_of_int (max 1 h.h_total)) (hist_fraction h ~lo ~hi))

(* ------------------------------------------------------------------ *)

(* Compact ASCII rendering of a histogram: one digit 0-9 per bucket,
   proportional to the bucket's share of the largest. *)
let hist_to_string h =
  let peak = Array.fold_left max 1 h.h_counts in
  let digits =
    String.init hist_buckets (fun i ->
        let c = h.h_counts.(i) in
        if c = 0 then '.' else Char.chr (Char.code '0' + (c * 9 / peak)))
  in
  Printf.sprintf "[%g..%g] %s" h.h_lo h.h_hi digits

let to_string (st : table_stats) schema =
  String.concat "\n"
    (List.mapi
       (fun i (c : Schema.column) ->
         let cs = st.ts_columns.(i) in
         let base =
           Printf.sprintf "  %-16s distinct=%d nulls=%d min=%s max=%s" c.Schema.col_name
             cs.cs_distinct cs.cs_nulls (Value.to_string cs.cs_min)
             (Value.to_string cs.cs_max)
         in
         match cs.cs_hist with
         | None -> base
         | Some h -> base ^ "\n                   hist " ^ hist_to_string h)
       (Array.to_list schema.Schema.columns))
