(** In-process metrics registry: named monotonic counters and latency
    histograms. The engine records parse/plan/execute timings and
    plan-cache hit/miss counts here; the store layer adds per-scheme
    shred, reconstruct, and query timings. Recording is a hash lookup
    plus integer stores, cheap enough to stay on permanently.

    Series are keyed by (label, name): the ambient label — set by [Store]
    around its operations via {!with_label} — keeps two live store
    instances from interleaving their series. The empty label is the
    process-wide default. *)

val now_ns : unit -> int
(** The shared monotonic timestamp source ({!Obskit.Clock.now_ns}):
    integer nanoseconds, exact and non-decreasing. *)

(** {1 Labels} *)

val with_label : string -> (unit -> 'a) -> 'a
(** Run the thunk with the ambient series label set (restored on exit,
    including on raise). Recording and reads default to the ambient
    label. *)

val labels : unit -> string list
(** Every label with at least one series, sorted ("" is the default). *)

(** {1 Recording} *)

val incr : ?by:int -> string -> unit
(** Bump a named counter under the ambient label, creating it at zero on
    first use. *)

val observe_ns : string -> int -> unit
(** Record one duration sample into a named histogram under the ambient
    label. *)

val timed : string -> (unit -> 'a) -> 'a
(** Run the thunk, record its duration under the given name (even when it
    raises), and return its result. *)

val set_gauge : string -> int -> unit
(** Set a named gauge (last write wins) under the ambient label —
    instantaneous values like resident bytes, not monotonic counts. *)

(** {1 Reading} *)

val counter : ?label:string -> string -> int
(** Current value of a counter (0 when never incremented). [label]
    defaults to the ambient label. *)

type histogram_snapshot = {
  hs_count : int;
  hs_total_ns : int;
  hs_min_ns : int;
  hs_max_ns : int;
  hs_mean_ns : float;
  hs_p50_ns : int;  (** log2-bucket upper bound, clamped to the exact max *)
  hs_p95_ns : int;
}

val bucket_of_ns : int -> int
(** Histogram bucket index: samples in [[2^i, 2^(i+1))] ns land in bucket
    [i] (clamped to the top bucket). Exposed for the property tests. *)

val gauge : ?label:string -> string -> int
(** Current value of a gauge (0 when never set). [label] defaults to the
    ambient label. *)

val counter_list : ?label:string -> unit -> (string * int) list
(** Counters sorted by name. Without [label], every series is listed
    under a qualified name ([name{store="label"}] for labelled series);
    with [label], only that label's series under their bare names. *)

val gauge_list : ?label:string -> unit -> (string * int) list
(** Gauges, same label handling as {!counter_list}. *)

val histogram_list : ?label:string -> unit -> (string * histogram_snapshot) list
(** Histograms, same label handling as {!counter_list}. *)

val report : ?label:string -> unit -> string
(** Human-readable dump of counters and histograms (CLI
    [stats --metrics]). *)

val prometheus : ?label:string -> unit -> string
(** Prometheus text exposition: counters as [xmlstore_<name>_total],
    gauges as [xmlstore_<name>], histograms as [xmlstore_<name>_seconds]
    with log2-ns boundaries in seconds; non-empty labels become a
    [store="..."] series label. Without [label], every store's series
    share the exposition. *)

val reset : ?label:string -> unit -> unit
(** Drop counters, gauges, and histograms. Without [label], the whole
    registry (test isolation, benchmarks); with [label], only that
    label's series — a store can clear its own slice without disturbing
    a neighbour's. *)
