(** Process-wide metrics registry: named monotonic counters and latency
    histograms. The engine records parse/plan/execute timings and plan-cache
    hit/miss counts here; the store layer adds per-scheme shred, reconstruct,
    and query timings. Recording is a hash lookup plus integer stores, cheap
    enough to stay on permanently. *)

val now_ns : unit -> int
(** Wall-clock nanoseconds (the timestamp source every instrumented layer
    shares). *)

(** {1 Recording} *)

val incr : ?by:int -> string -> unit
(** Bump a named counter, creating it at zero on first use. *)

val observe_ns : string -> int -> unit
(** Record one duration sample into a named histogram. *)

val timed : string -> (unit -> 'a) -> 'a
(** Run the thunk, record its wall-clock duration under the given name
    (even when it raises), and return its result. *)

(** {1 Reading} *)

val counter : string -> int
(** Current value of a counter (0 when never incremented). *)

type histogram_snapshot = {
  hs_count : int;
  hs_total_ns : int;
  hs_min_ns : int;
  hs_max_ns : int;
  hs_mean_ns : float;
  hs_p50_ns : int;  (** log2-bucket upper bound, clamped to the exact max *)
  hs_p95_ns : int;
}

val counter_list : unit -> (string * int) list
(** All counters, sorted by name. *)

val histogram_list : unit -> (string * histogram_snapshot) list
(** All histograms, sorted by name. *)

val report : unit -> string
(** Human-readable dump of every counter and histogram (CLI
    [stats --metrics]). *)

val reset : unit -> unit
(** Drop every counter and histogram (test isolation, benchmarks). *)
