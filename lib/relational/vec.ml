(* Growable array. OCaml 5.1's stdlib predates [Dynarray]; this is the small
   subset the engine needs. Capacity never shrinks (length can, via
   [truncate]). *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 16 dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- v

let ensure_capacity t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t v =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.len - 1

(* Drop elements from index [n] on (bulk-load abort). Capacity is kept;
   dropped slots are reset to the dummy so their contents can be GC'd. *)
let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate";
  for i = n to t.len - 1 do
    t.data.(i) <- t.dummy
  done;
  t.len <- n

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.rev (fold_left (fun acc v -> v :: acc) [] t)
