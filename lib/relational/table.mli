(** Heap tables: rows addressed by row id, tombstone deletion, and attached
    B+-tree secondary indexes kept in sync by every mutation. *)

type index = {
  index_name : string;
  key_columns : int array;  (** column positions forming the key *)
  tree : Btree.t;
}

type t

(** Mutation notifications for the write-ahead log, fired after the row
    is in the arena; insert/update carry the coerced row as stored. *)
type mutation =
  | M_insert of int * Value.t array
  | M_delete of int
  | M_update of int * Value.t array

exception Index_error of string

val create : Schema.t -> t
val schema : t -> Schema.t
val name : t -> string

val row_count : t -> int
(** Live rows (excludes tombstones). *)

val allocated_rows : t -> int
val byte_size : t -> int
(** Approximate payload bytes of live rows (storage-cost reporting). *)

val get : t -> int -> Value.t array option
(** [None] for out-of-range or deleted row ids. *)

val insert : t -> Value.t array -> int
(** Validate, coerce, store; returns the new row id. Updates indexes
    (deferred to {!end_bulk} while a bulk load is active). *)

val delete : t -> int -> bool
(** Tombstone a row; [false] if it was already gone. Updates indexes.
    @raise Index_error while a bulk load is active. *)

val update : t -> int -> Value.t array -> bool
(** Replace a row in place. Updates indexes whose key changed.
    @raise Index_error while a bulk load is active. *)

(** {1 Bulk loading}

    [begin_bulk] opens an append range at the current arena end: inserts
    from here on skip per-row index maintenance. [end_bulk] closes the
    range, building each B+-tree bottom-up from one sort of the range's
    (key, rowid) pairs — observationally identical to having inserted
    row-at-a-time. [abort_bulk] drains the range instead; the appended
    rows were never indexed, so the table is restored exactly. *)

val begin_bulk : t -> unit
(** @raise Index_error when a bulk load is already active. *)

val bulk_active : t -> bool

val end_bulk : t -> int
(** Build the deferred index entries; returns how many rows the range
    appended. No-op (0) when no bulk load is active. *)

val abort_bulk : t -> int
(** Truncate the appended range away; returns how many rows it dropped.
    No-op (0) when no bulk load is active. *)

val iter : (int -> Value.t array -> unit) -> t -> unit
val fold : ('a -> int -> Value.t array -> 'a) -> 'a -> t -> 'a
val to_list : t -> Value.t array list

val create_index : t -> index_name:string -> columns:string list -> index
(** Build a B+-tree bottom-up over existing rows (rows appended by an
    active bulk load are folded in at {!end_bulk}).
    @raise Index_error on duplicates. *)

val drop_index : t -> string -> bool
val indexes : t -> index list
val find_index : t -> string -> index option

val index_with_prefix : t -> int array -> index option
(** An index whose key starts with exactly the given column positions
    (planner probe selection). *)

(** {1 Durability hooks} *)

val set_logger : t -> (mutation -> unit) option -> unit
(** Durable databases attach their WAL appender here; [None] detaches. *)

val iter_slots : t -> (Value.t array option -> unit) -> unit
(** Every slot in row-id order, tombstones as [None] — the checkpoint
    walk (row ids must survive the round trip). *)

val restore_slots : Schema.t -> Value.t array option array -> t
(** Rebuild a table from a checkpointed slot image (no indexes; recovery
    re-creates them from the catalog). Rows are stored as-is — they were
    coerced when first inserted. *)

val recover_truncate : t -> int -> int
(** Truncate the arena to the given row count — recovery's undo of a
    loser transaction's appended tail. Returns how many live rows were
    dropped. The caller must {!rebuild_indexes}, which may reference the
    tail. @raise Index_error while a bulk load is active. *)

val rebuild_indexes : t -> unit
(** Rebuild every attached B+-tree bottom-up from the live rows.
    @raise Index_error while a bulk load is active. *)
