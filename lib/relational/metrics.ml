(* Lightweight process-wide metrics registry: named monotonic counters and
   latency histograms. Everything is in-memory and single-threaded, like
   the engine itself; recording a sample is a hash lookup plus a few
   integer stores, cheap enough to leave on permanently.

   Histograms bucket by log2(ns), so percentile estimates are upper bounds
   of the matching power-of-two bucket — coarse, but stable and allocation
   free. Exact count/total/min/max are kept alongside. *)

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32

type histogram = {
  mutable h_count : int;
  mutable h_total_ns : int;
  mutable h_min_ns : int;
  mutable h_max_ns : int;
  h_buckets : int array;  (* bucket i counts samples in [2^i, 2^(i+1)) ns *)
}

let bucket_count = 63

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let incr ?(by = 1) name =
  match Hashtbl.find_opt counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add counters name (ref by)

let counter name = match Hashtbl.find_opt counters name with Some r -> !r | None -> 0

let bucket_of_ns ns =
  let rec go i v = if v <= 1 || i >= bucket_count - 1 then i else go (i + 1) (v lsr 1) in
  go 0 (max 1 ns)

let observe_ns name ns =
  let ns = max 0 ns in
  let h =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
      let h =
        { h_count = 0; h_total_ns = 0; h_min_ns = max_int; h_max_ns = 0;
          h_buckets = Array.make bucket_count 0 }
      in
      Hashtbl.add histograms name h;
      h
  in
  h.h_count <- h.h_count + 1;
  h.h_total_ns <- h.h_total_ns + ns;
  if ns < h.h_min_ns then h.h_min_ns <- ns;
  if ns > h.h_max_ns then h.h_max_ns <- ns;
  let b = h.h_buckets in
  let i = bucket_of_ns ns in
  b.(i) <- b.(i) + 1

(* Time [f], record the wall-clock duration under [name], return its result.
   The sample is recorded even when [f] raises. *)
let timed name f =
  let t0 = now_ns () in
  Fun.protect ~finally:(fun () -> observe_ns name (now_ns () - t0)) f

type histogram_snapshot = {
  hs_count : int;
  hs_total_ns : int;
  hs_min_ns : int;
  hs_max_ns : int;
  hs_mean_ns : float;
  hs_p50_ns : int;  (* log2-bucket upper bound, clamped to the exact max *)
  hs_p95_ns : int;
}

let percentile h q =
  (* upper bound of the first bucket whose cumulative count reaches q *)
  let target = int_of_float (ceil (q *. float_of_int h.h_count)) in
  let rec go i acc =
    if i >= bucket_count then h.h_max_ns
    else
      let acc = acc + h.h_buckets.(i) in
      if acc >= target then min h.h_max_ns ((1 lsl (i + 1)) - 1) else go (i + 1) acc
  in
  go 0 0

let snapshot h =
  {
    hs_count = h.h_count;
    hs_total_ns = h.h_total_ns;
    hs_min_ns = (if h.h_count = 0 then 0 else h.h_min_ns);
    hs_max_ns = h.h_max_ns;
    hs_mean_ns =
      (if h.h_count = 0 then 0.0 else float_of_int h.h_total_ns /. float_of_int h.h_count);
    hs_p50_ns = percentile h 0.50;
    hs_p95_ns = percentile h 0.95;
  }

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counter_list () = sorted_bindings counters (fun r -> !r)
let histogram_list () = sorted_bindings histograms snapshot

let reset () =
  Hashtbl.reset counters;
  Hashtbl.reset histograms

let ms ns = float_of_int ns /. 1e6

let report () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "counters:\n";
  let cs = counter_list () in
  if cs = [] then Buffer.add_string buf "  (none)\n";
  List.iter (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-32s %d\n" name v)) cs;
  Buffer.add_string buf "latency histograms (ms):\n";
  let hs = histogram_list () in
  if hs = [] then Buffer.add_string buf "  (none)\n";
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %-32s count=%d total=%.3f mean=%.4f min=%.4f max=%.4f p50<=%.4f p95<=%.4f\n" name
           s.hs_count (ms s.hs_total_ns) (s.hs_mean_ns /. 1e6) (ms s.hs_min_ns) (ms s.hs_max_ns)
           (ms s.hs_p50_ns) (ms s.hs_p95_ns)))
    hs;
  Buffer.contents buf
