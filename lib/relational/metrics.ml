(* Lightweight in-process metrics registry: named monotonic counters and
   latency histograms. Everything is in-memory; recording a sample is a
   hash lookup plus a few integer stores under an uncontended mutex,
   cheap enough to leave on permanently.

   Domain safety: the three registry tables share one mutex
   ([registry_mutex]) held only around table lookups and integer stores —
   never across user code — so reader domains in the store pool record
   concurrently without torn histograms or lost counts. The ambient store
   label is domain-local ([Domain.DLS]): two domains serving different
   stores each see their own label.

   Series are keyed by (label, name). The label distinguishes otherwise
   identical series recorded by different Store instances (two stores
   benchmarked side by side must not interleave their counters); it is
   ambient — Store sets it around its public operations — so the engine
   layers below record into the right store's series without any
   signature change. The empty label is the process-wide default.

   Histograms bucket by log2(ns), so percentile estimates are upper
   bounds of the matching power-of-two bucket — coarse, but stable and
   allocation free. Exact count/total/min/max are kept alongside.

   Timestamps come from the shared monotonic clock (Obskit.Clock): the
   previous Unix.gettimeofday-through-a-float source lost precision
   (~256 ns granularity at the current epoch) and could run backwards
   under clock adjustment, producing negative durations that all landed
   in bucket 0. *)

let now_ns = Obskit.Clock.now_ns

(* Ambient label; [Store] wraps its operations in [with_label]. One value
   per domain: a pool reader's label never leaks into another domain. *)
let current_label = Domain.DLS.new_key (fun () -> "")

let with_label label f =
  let saved = Domain.DLS.get current_label in
  Domain.DLS.set current_label label;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_label saved) f

(* One mutex covers counters/gauges/histograms; every critical section is
   a bounded table-and-integer update (no user code runs under it). *)
let registry_mutex = Mutex.create ()

let locked f = Mutex.protect registry_mutex f

let counters : (string * string, int ref) Hashtbl.t = Hashtbl.create 32

type histogram = {
  mutable h_count : int;
  mutable h_total_ns : int;
  mutable h_min_ns : int;
  mutable h_max_ns : int;
  h_buckets : int array;  (* bucket i counts samples in [2^i, 2^(i+1)) ns *)
}

let bucket_count = 63

let histograms : (string * string, histogram) Hashtbl.t = Hashtbl.create 32

let incr ?(by = 1) name =
  let key = (Domain.DLS.get current_label, name) in
  locked (fun () ->
      match Hashtbl.find_opt counters key with
      | Some r -> r := !r + by
      | None -> Hashtbl.add counters key (ref by))

let counter ?label name =
  let label = match label with Some l -> l | None -> Domain.DLS.get current_label in
  locked (fun () ->
      match Hashtbl.find_opt counters (label, name) with Some r -> !r | None -> 0)

(* Gauges: last-write-wins instantaneous values (resident bytes, pool
   occupancy). Same (label, name) keying as counters. *)
let gauges : (string * string, int ref) Hashtbl.t = Hashtbl.create 16

let set_gauge name v =
  let key = (Domain.DLS.get current_label, name) in
  locked (fun () ->
      match Hashtbl.find_opt gauges key with
      | Some r -> r := v
      | None -> Hashtbl.add gauges key (ref v))

let gauge ?label name =
  let label = match label with Some l -> l | None -> Domain.DLS.get current_label in
  locked (fun () ->
      match Hashtbl.find_opt gauges (label, name) with Some r -> !r | None -> 0)

let bucket_of_ns ns =
  let rec go i v = if v <= 1 || i >= bucket_count - 1 then i else go (i + 1) (v lsr 1) in
  go 0 (max 1 ns)

let observe_ns name ns =
  let ns = max 0 ns in
  let key = (Domain.DLS.get current_label, name) in
  locked (fun () ->
      let h =
        match Hashtbl.find_opt histograms key with
        | Some h -> h
        | None ->
          let h =
            { h_count = 0; h_total_ns = 0; h_min_ns = max_int; h_max_ns = 0;
              h_buckets = Array.make bucket_count 0 }
          in
          Hashtbl.add histograms key h;
          h
      in
      h.h_count <- h.h_count + 1;
      h.h_total_ns <- h.h_total_ns + ns;
      if ns < h.h_min_ns then h.h_min_ns <- ns;
      if ns > h.h_max_ns then h.h_max_ns <- ns;
      let b = h.h_buckets in
      let i = bucket_of_ns ns in
      b.(i) <- b.(i) + 1)

(* Time [f], record the duration under [name], return its result. The
   sample is recorded even when [f] raises. *)
let timed name f =
  let t0 = now_ns () in
  Fun.protect ~finally:(fun () -> observe_ns name (now_ns () - t0)) f

type histogram_snapshot = {
  hs_count : int;
  hs_total_ns : int;
  hs_min_ns : int;
  hs_max_ns : int;
  hs_mean_ns : float;
  hs_p50_ns : int;  (* log2-bucket upper bound, clamped to the exact max *)
  hs_p95_ns : int;
}

let percentile h q =
  (* upper bound of the first bucket whose cumulative count reaches q *)
  let target = int_of_float (ceil (q *. float_of_int h.h_count)) in
  let rec go i acc =
    if i >= bucket_count then h.h_max_ns
    else
      let acc = acc + h.h_buckets.(i) in
      if acc >= target then min h.h_max_ns ((1 lsl (i + 1)) - 1) else go (i + 1) acc
  in
  go 0 0

let snapshot h =
  {
    hs_count = h.h_count;
    hs_total_ns = h.h_total_ns;
    hs_min_ns = (if h.h_count = 0 then 0 else h.h_min_ns);
    hs_max_ns = h.h_max_ns;
    hs_mean_ns =
      (if h.h_count = 0 then 0.0 else float_of_int h.h_total_ns /. float_of_int h.h_count);
    hs_p50_ns = percentile h 0.50;
    hs_p95_ns = percentile h 0.95;
  }

(* Bindings filtered by label. [label = None] lists every series under a
   qualified name ([name] or [name{store="label"}]); [Some l] lists only
   that label's series under their bare names. *)
let qualified label name =
  if label = "" then name else Printf.sprintf "%s{store=%S}" name label

let sorted_bindings ?label tbl f =
  Hashtbl.fold
    (fun (l, name) v acc ->
      match label with
      | None -> ((qualified l name, f v) :: acc)
      | Some want -> if String.equal l want then (name, f v) :: acc else acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counter_list ?label () = locked (fun () -> sorted_bindings ?label counters (fun r -> !r))
let gauge_list ?label () = locked (fun () -> sorted_bindings ?label gauges (fun r -> !r))
let histogram_list ?label () = locked (fun () -> sorted_bindings ?label histograms snapshot)

let labels () =
  let add tbl acc = Hashtbl.fold (fun (l, _) _ acc -> l :: acc) tbl acc in
  locked (fun () ->
      List.sort_uniq String.compare (add counters (add gauges (add histograms []))))

let reset ?label () =
  locked @@ fun () ->
  match label with
  | None ->
    Hashtbl.reset counters;
    Hashtbl.reset gauges;
    Hashtbl.reset histograms
  | Some want ->
    let drop tbl =
      let keys =
        Hashtbl.fold (fun ((l, _) as k) _ acc -> if String.equal l want then k :: acc else acc)
          tbl []
      in
      List.iter (Hashtbl.remove tbl) keys
    in
    drop counters;
    drop gauges;
    drop histograms

let ms ns = float_of_int ns /. 1e6

let report ?label () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "counters:\n";
  let cs = counter_list ?label () in
  if cs = [] then Buffer.add_string buf "  (none)\n";
  List.iter (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-32s %d\n" name v)) cs;
  (let gs = gauge_list ?label () in
   if gs <> [] then begin
     Buffer.add_string buf "gauges:\n";
     List.iter
       (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-32s %d\n" name v))
       gs
   end);
  Buffer.add_string buf "latency histograms (ms):\n";
  let hs = histogram_list ?label () in
  if hs = [] then Buffer.add_string buf "  (none)\n";
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %-32s count=%d total=%.3f mean=%.4f min=%.4f max=%.4f p50<=%.4f p95<=%.4f\n" name
           s.hs_count (ms s.hs_total_ns) (s.hs_mean_ns /. 1e6) (ms s.hs_min_ns) (ms s.hs_max_ns)
           (ms s.hs_p50_ns) (ms s.hs_p95_ns)))
    hs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Prometheus exposition. Counters become <prefix>_<name>_total; latency
   histograms become <prefix>_<name>_seconds with the log2-ns bucket
   boundaries converted to seconds. A non-empty registry label becomes a
   store="..." label on the series, so per-store series stay separate in
   the same exposition. *)

let prom_prefix = "xmlstore"

let store_labels l = if l = "" then [] else [ ("store", l) ]

(* [copy] materializes each value under the registry lock, so the render
   below works from a consistent snapshot instead of live cells another
   domain may be updating. *)
let group_by_name ?label tbl copy =
  (* (name, (label, value) list) assoc, both levels sorted *)
  let m = Hashtbl.create 16 in
  locked (fun () ->
      Hashtbl.iter
        (fun (l, name) v ->
          match label with
          | Some want when not (String.equal l want) -> ()
          | _ ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt m name) in
            Hashtbl.replace m name ((l, copy v) :: cur))
        tbl);
  Hashtbl.fold (fun name vs acc -> (name, List.sort compare vs) :: acc) m []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let prometheus ?label () =
  let module P = Obskit.Prom in
  let counter_metrics =
    List.map
      (fun (name, series) ->
        P.Counter
          {
            m_name = Printf.sprintf "%s_%s_total" prom_prefix (P.sanitize_name name);
            m_help = Printf.sprintf "Monotonic counter %s" name;
            m_series =
              List.map
                (fun (l, v) -> { P.s_labels = store_labels l; s_value = float_of_int v })
                series;
          })
      (group_by_name ?label counters (fun r -> !r))
  in
  let gauge_metrics =
    List.map
      (fun (name, series) ->
        P.Gauge
          {
            m_name = Printf.sprintf "%s_%s" prom_prefix (P.sanitize_name name);
            m_help = Printf.sprintf "Gauge %s" name;
            m_series =
              List.map
                (fun (l, v) -> { P.s_labels = store_labels l; s_value = float_of_int v })
                series;
          })
      (group_by_name ?label gauges (fun r -> !r))
  in
  let histogram_metrics =
    List.map
      (fun (name, series) ->
        P.Histogram
          {
            m_name = Printf.sprintf "%s_%s_seconds" prom_prefix (P.sanitize_name name);
            m_help = Printf.sprintf "Latency histogram %s (log2-ns buckets)" name;
            m_histos =
              List.map
                (fun (l, h) ->
                  (* cumulative counts over buckets up to the last used one *)
                  let top = ref 0 in
                  Array.iteri (fun i c -> if c > 0 then top := i) h.h_buckets;
                  let cum = ref 0 in
                  let buckets =
                    List.init (!top + 1) (fun i ->
                        cum := !cum + h.h_buckets.(i);
                        (ldexp 1.0 (i + 1) /. 1e9, !cum))
                  in
                  {
                    P.h_labels = store_labels l;
                    h_buckets = buckets;
                    h_sum = float_of_int h.h_total_ns /. 1e9;
                    h_count = h.h_count;
                  })
                series;
          })
      (group_by_name ?label histograms (fun h -> { h with h_buckets = Array.copy h.h_buckets }))
  in
  P.render (counter_metrics @ gauge_metrics @ histogram_metrics)
