(* Logical/physical query plan. The planner lowers a parsed SELECT into this
   tree; the executor interprets it with the iterator model. *)

type agg = {
  agg_func : string;  (* count | sum | avg | min | max, lowercased *)
  agg_distinct : bool;
  agg_star : bool;
  agg_arg : Sql_ast.expr option;
}

type t =
  | Seq_scan of { table : string; alias : string }
  | Index_scan of {
      table : string;
      alias : string;
      index_name : string;
      (* Bounds are constant expressions over the leading index column,
         evaluated once when the cursor opens. *)
      lower : (Sql_ast.expr * bool) option;  (* expr, inclusive *)
      upper : (Sql_ast.expr * bool) option;
    }
  | Index_probes of {
      table : string;
      alias : string;
      index_name : string;
      (* constant probe keys for the leading index column (IN-list) *)
      keys : Sql_ast.expr list;
    }
  | Filter of Sql_ast.expr * t
  | Project of (Sql_ast.expr * string) list * t
  | Nl_join of t * t  (* cross product; equi-joins become Hash_join *)
  | Hash_join of {
      build : t;
      probe : t;
      build_keys : Sql_ast.expr list;
      probe_keys : Sql_ast.expr list;
    }
  | Staircase_join of {
      left : t;  (* output rows are left-row ++ right-row, like the other joins *)
      right : t;
      desc_on_left : bool;  (* which side carries the descendant key *)
      desc_key : Sql_ast.expr;  (* e.g. d.pre, over the descendant side *)
      anc_lower : Sql_ast.expr;  (* e.g. a.pre, over the ancestor side *)
      anc_upper : Sql_ast.expr;  (* e.g. a.pre + a.size *)
      lower_strict : bool;  (* key > lower vs key >= lower *)
      upper_strict : bool;  (* key < upper vs key <= upper *)
    }
  | Aggregate of { group_by : Sql_ast.expr list; aggregates : agg list; input : t }
  | Sort of Sql_ast.order_item list * t
  | Distinct of t
  | Limit of int * t
  | Union_all of t list

let agg_to_string a =
  if a.agg_star then Printf.sprintf "%s(*)" a.agg_func
  else
    Printf.sprintf "%s(%s%s)" a.agg_func
      (if a.agg_distinct then "DISTINCT " else "")
      (match a.agg_arg with Some e -> Sql_ast.expr_to_string e | None -> "")

(* One operator's own EXPLAIN line, without its children. *)
let node_line plan =
  match plan with
  | Seq_scan { table; alias } ->
    Printf.sprintf "SeqScan %s%s" table (if alias = table then "" else " AS " ^ alias)
  | Index_scan { table; alias; index_name; lower; upper } ->
    let bound_str = function
      | None -> "-inf/+inf"
      | Some (e, incl) -> Sql_ast.expr_to_string e ^ if incl then " (incl)" else " (excl)"
    in
    Printf.sprintf "IndexScan %s%s USING %s [%s .. %s]" table
      (if alias = table then "" else " AS " ^ alias)
      index_name (bound_str lower) (bound_str upper)
  | Index_probes { table; alias; index_name; keys } ->
    Printf.sprintf "IndexProbes %s%s USING %s IN (%s)" table
      (if alias = table then "" else " AS " ^ alias)
      index_name
      (String.concat ", " (List.map Sql_ast.expr_to_string keys))
  | Filter (e, _) -> Printf.sprintf "Filter (%s)" (Sql_ast.expr_to_string e)
  | Project (cols, _) ->
    Printf.sprintf "Project [%s]"
      (String.concat ", " (List.map (fun (e, n) -> Sql_ast.expr_to_string e ^ " AS " ^ n) cols))
  | Nl_join _ -> "NestedLoopJoin"
  | Staircase_join { desc_key; anc_lower; anc_upper; lower_strict; upper_strict; _ } ->
    Printf.sprintf "StaircaseJoin (%s %s %s AND %s %s %s)"
      (Sql_ast.expr_to_string desc_key)
      (if lower_strict then ">" else ">=")
      (Sql_ast.expr_to_string anc_lower)
      (Sql_ast.expr_to_string desc_key)
      (if upper_strict then "<" else "<=")
      (Sql_ast.expr_to_string anc_upper)
  | Hash_join { build_keys; probe_keys; _ } ->
    Printf.sprintf "HashJoin (%s = %s)"
      (String.concat ", " (List.map Sql_ast.expr_to_string probe_keys))
      (String.concat ", " (List.map Sql_ast.expr_to_string build_keys))
  | Aggregate { group_by; aggregates; _ } ->
    Printf.sprintf "Aggregate [%s]%s"
      (String.concat ", " (List.map agg_to_string aggregates))
      (match group_by with
      | [] -> ""
      | gs -> " GROUP BY " ^ String.concat ", " (List.map Sql_ast.expr_to_string gs))
  | Sort (items, _) ->
    Printf.sprintf "Sort [%s]"
      (String.concat ", "
         (List.map
            (fun { Sql_ast.order_expr; descending } ->
              Sql_ast.expr_to_string order_expr ^ if descending then " DESC" else "")
            items))
  | Distinct _ -> "Distinct"
  | Limit (n, _) -> Printf.sprintf "Limit %d" n
  | Union_all _ -> "UnionAll"

(* Children in EXPLAIN display order (hash join: probe above build). *)
let display_children = function
  | Seq_scan _ | Index_scan _ | Index_probes _ -> []
  | Filter (_, p) | Project (_, p) | Sort (_, p) | Distinct p | Limit (_, p) -> [ p ]
  | Aggregate { input; _ } -> [ input ]
  | Nl_join (l, r) -> [ l; r ]
  | Staircase_join { left; right; _ } -> [ left; right ]
  | Hash_join { build; probe; _ } -> [ probe; build ]
  | Union_all ps -> ps

let rec to_lines indent plan =
  (String.make (indent * 2) ' ' ^ node_line plan)
  :: List.concat_map (to_lines (indent + 1)) (display_children plan)

let to_string plan = String.concat "\n" (to_lines 0 plan)

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE: one mutable node per executed operator, filled in by
   the instrumented executor (Executor.run_analyzed). Counters are
   inclusive: a node's wall-clock covers its open and every next() call,
   children included, so the root's time is the whole execution. Children
   appear in execution order (a hash join opens its build side first). *)

type annotated = {
  an_op : string;  (* the operator's own EXPLAIN line *)
  mutable an_children : annotated list;
  mutable an_rows : int;  (* rows produced *)
  mutable an_nexts : int;  (* next() calls received *)
  mutable an_ns : int;  (* inclusive wall-clock (open + next), ns *)
  an_est : int option;  (* planner's cardinality estimate, when costed *)
}

let annot ?est op =
  { an_op = op; an_children = []; an_rows = 0; an_nexts = 0; an_ns = 0; an_est = est }

(* Misestimation factor: how far off the estimate was, as a >= 1 ratio. *)
let misestimation ~est ~actual =
  let est = float_of_int (max 1 est) and actual = float_of_int (max 1 actual) in
  Float.max est actual /. Float.min est actual

let rec annotated_lines indent a =
  let est_part =
    match a.an_est with
    | None -> ""
    | Some est ->
      Printf.sprintf "est=%d " est
  in
  let misest_part =
    match a.an_est with
    | None -> ""
    | Some est -> Printf.sprintf " misest=%.1fx" (misestimation ~est ~actual:a.an_rows)
  in
  Printf.sprintf "%s%s (%sactual rows=%d nexts=%d time=%.3f ms%s)"
    (String.make (indent * 2) ' ')
    a.an_op est_part a.an_rows a.an_nexts
    (float_of_int a.an_ns /. 1e6)
    misest_part
  :: List.concat_map (annotated_lines (indent + 1)) a.an_children

let annotated_to_string a = String.concat "\n" (annotated_lines 0 a)

let rec fold_annotated f acc a = List.fold_left (fold_annotated f) (f acc a) a.an_children

(* Bridge an executed operator tree into the active trace as synthesized
   child spans of the innermost open span (the execute span). The
   annotated tree records inclusive durations but not start offsets, so
   starts are synthesized: each node starts where its previous sibling
   ended, clamped to its parent's interval — well-nested by construction,
   with durations faithful to the measurement. *)
let record_spans a =
  match Obskit.Trace.current () with
  | None -> ()
  | Some parent ->
    let now = Obskit.Clock.now_ns () in
    let rec emit ~parent ~start_ns ~max_end (n : annotated) =
      let dur = max 0 (min n.an_ns (max_end - start_ns)) in
      let id =
        Obskit.Trace.emit ~parent ~start_ns ~dur_ns:dur
          ~attrs:
            [ ("rows", string_of_int n.an_rows); ("nexts", string_of_int n.an_nexts) ]
          n.an_op
      in
      let off = ref start_ns in
      List.iter
        (fun c ->
          let avail = max 0 (start_ns + dur - !off) in
          let cdur = min c.an_ns avail in
          emit ~parent:id ~start_ns:!off ~max_end:(start_ns + dur) c;
          off := !off + cdur)
        n.an_children
    in
    let root_start = max parent.Obskit.Trace.start_ns (now - a.an_ns) in
    emit ~parent:parent.Obskit.Trace.span_id ~start_ns:root_start ~max_end:now a

let annotated_operator_count a = fold_annotated (fun n _ -> n + 1) 0 a

(* Metrics used by the benchmark harness (query complexity per mapping). *)
let rec count_joins = function
  | Seq_scan _ | Index_scan _ | Index_probes _ -> 0
  | Filter (_, p) | Project (_, p) | Sort (_, p) | Distinct p | Limit (_, p) -> count_joins p
  | Aggregate { input; _ } -> count_joins input
  | Nl_join (l, r) -> 1 + count_joins l + count_joins r
  | Staircase_join { left; right; _ } -> 1 + count_joins left + count_joins right
  | Hash_join { build; probe; _ } -> 1 + count_joins build + count_joins probe
  | Union_all ps -> List.fold_left (fun acc p -> acc + count_joins p) 0 ps

let rec count_index_scans = function
  | Seq_scan _ -> 0
  | Index_scan _ | Index_probes _ -> 1
  | Filter (_, p) | Project (_, p) | Sort (_, p) | Distinct p | Limit (_, p) -> count_index_scans p
  | Aggregate { input; _ } -> count_index_scans input
  | Nl_join (l, r) -> count_index_scans l + count_index_scans r
  | Staircase_join { left; right; _ } -> count_index_scans left + count_index_scans right
  | Hash_join { build; probe; _ } -> count_index_scans build + count_index_scans probe
  | Union_all ps -> List.fold_left (fun acc p -> acc + count_index_scans p) 0 ps
