(** Abstract syntax for the SQL subset.

    Grammar summary:
    {v
    SELECT [DISTINCT] proj, ... FROM t [alias], ... [JOIN t [alias] ON e]*
      [WHERE e] [GROUP BY e, ...] [HAVING e] [ORDER BY e [ASC|DESC], ...]
      [LIMIT n]  { UNION ALL <select> }*
    INSERT INTO t [(cols)] VALUES (v, ...), ...
    UPDATE t SET c = e, ... [WHERE e]
    DELETE FROM t [WHERE e]
    CREATE TABLE [IF NOT EXISTS] t (c TYPE [NOT NULL], ...)
    CREATE INDEX [IF NOT EXISTS] i ON t (c, ...)
    DROP TABLE t / DROP INDEX i ON t
    v} *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Concat
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr =
  | Lit of Value.t
  | Param of int  (** 1-based positional placeholder, rendered as [?N] *)
  | Col of { table : string option; column : string }
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Is_null of { negated : bool; arg : expr }
  | Like of { negated : bool; arg : expr; pattern : expr }
  | In_list of { negated : bool; arg : expr; items : expr list }
  | Between of { arg : expr; low : expr; high : expr }
  | Call of { func : string; star : bool; distinct : bool; args : expr list }

type projection =
  | All  (** [SELECT *] *)
  | Table_all of string  (** [SELECT t.*] *)
  | Proj of expr * string option  (** [expr [AS alias]] *)

type table_ref = { table : string; alias : string option }

type order_item = { order_expr : expr; descending : bool }

type select = {
  distinct : bool;
  projections : projection list;
  from : table_ref list;  (** cross product; [JOIN..ON] folds into [where] *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  limit : int option;
}

type query = select list
(** UNION ALL of the member selects. *)

type column_def = { def_name : string; def_ty : Value.ty; def_not_null : bool }

type statement =
  | Select_stmt of query
  | Insert of { table : string; columns : string list option; rows : expr list list }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of { table : string; defs : column_def list; if_not_exists : bool }
  | Create_index of { index : string; table : string; columns : string list; if_not_exists : bool }
  | Drop_table of { table : string; if_exists : bool }
  | Drop_index of { index : string; table : string }

(** {1 Printing} — stable enough that [parse (print x) = x] round-trips. *)

val binop_to_string : binop -> string
val precedence : binop -> int
val expr_to_string : expr -> string
val projection_to_string : projection -> string
val select_to_string : select -> string
val query_to_string : query -> string
val statement_to_string : statement -> string

(** {1 Structural helpers used by the planner} *)

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a
(** Pre-order fold over an expression and all subexpressions. *)

val aggregate_functions : string list
val is_aggregate_call : expr -> bool
val contains_aggregate : expr -> bool

val referenced_tables : expr -> string list
(** Table qualifiers appearing in column references. *)
