(** Per-column statistics (ANALYZE) consumed by the planner's cardinality
    estimates: distinct counts, null fractions, min/max, and equi-width
    histograms over numeric columns. Maintained incrementally by bulk
    loads ({!fold_range}); re-scanned only when the row count drifts
    through channels the fold never saw. *)

type histogram = {
  h_lo : float;
  h_hi : float;
  h_counts : int array;  (** equi-width buckets over [[h_lo, h_hi]] *)
  h_total : int;  (** finite numeric values counted *)
}

type column_stats = {
  cs_distinct : int;
  cs_nulls : int;
  cs_min : Value.t;  (** [Null] when the column is all-NULL or empty *)
  cs_max : Value.t;
  cs_hist : histogram option;  (** numeric columns only *)
}

type table_stats = { ts_rows : int; ts_columns : column_stats array }

type t
(** Statistics registry keyed by table name. *)

val create : unit -> t

val on_change : t -> (string -> unit) -> unit
(** Register a listener fired with the table name whenever that table's
    statistics change materially (a re-analyze after drift, or an
    incremental fold that moved the row count more than ~20% since the
    last notification). The database invalidates the plan cache here. *)

val analyze_table : Table.t -> table_stats
(** One full scan; does not touch the registry. *)

val get : t -> Table.t -> table_stats
(** Cached; re-analyzed only when the live row count drifted more than 20%
    from what the registry has absorbed (bulk loads keep it current via
    {!fold_range}, so they never trigger the re-scan). *)

val fold_range : t -> Table.t -> base:int -> added:int -> unit
(** Fold the appended row range [[base, base+added)] into the table's
    existing statistics in one pass over just those rows — the bulk-load
    finish hook. No-op for tables never analyzed. *)

val refresh : t -> Table.t -> unit
(** Re-analyze one table unconditionally, replacing whatever the registry
    held — recovery uses this for tables the WAL replay touched. Fires no
    change notification (recovery runs before any plan is cached). *)

val export : t -> string
(** Serialize the raw accumulators (distinct sets/sketches, histograms,
    widening state) for the durable checkpoint. The accumulators cannot
    be reproduced by a re-scan — histogram widening is order-dependent —
    so persisting them is what makes a reopened database plan
    byte-identically. *)

val import : t -> string -> unit
(** Replace the registry's contents with a blob from {!export}. The
    empty string imports as an empty registry.
    @raise Codec.Corrupt on malformed input. *)

val eq_selectivity : table_stats -> column:int -> float
(** Estimated fraction of rows kept by an equality predicate on the
    column: [1 / distinct]. *)

val range_selectivity :
  table_stats ->
  column:int ->
  lower:(Value.t * bool) option ->
  upper:(Value.t * bool) option ->
  float
(** Estimated fraction of rows inside the (possibly one-sided) range,
    from the column's histogram when it has one and the bounds are
    numeric; 1/4 (the pre-statistics fixed guess) otherwise. *)

val null_fraction : table_stats -> column:int -> float

val hist_to_string : histogram -> string
(** One digit per bucket, proportional to the bucket's share of the
    fullest ([.] for empty); prefixed with the covered range. *)

val to_string : table_stats -> Schema.t -> string
