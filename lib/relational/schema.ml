(* Table schemas. *)

type column = { col_name : string; col_ty : Value.ty; nullable : bool }

type t = { table_name : string; columns : column array }

exception Schema_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Schema_error s)) fmt

let make table_name columns =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let key = String.lowercase_ascii c.col_name in
      if Hashtbl.mem seen key then err "duplicate column %s in table %s" c.col_name table_name;
      Hashtbl.add seen key ())
    columns;
  { table_name; columns = Array.of_list columns }

let column name ?(nullable = true) col_ty = { col_name = name; col_ty; nullable }

let arity t = Array.length t.columns
let column_names t = Array.to_list (Array.map (fun c -> c.col_name) t.columns)

let find_column t name =
  let lname = String.lowercase_ascii name in
  let rec go i =
    if i >= Array.length t.columns then None
    else if String.equal (String.lowercase_ascii t.columns.(i).col_name) lname then Some i
    else go (i + 1)
  in
  go 0

let column_index t name =
  match find_column t name with
  | Some i -> i
  | None -> err "table %s has no column %s" t.table_name name

(* Validate and coerce a row against the schema. Rows arriving from the
   shredders and the executor are almost always already well-typed, so a
   tight no-allocation scan decides first; only mistyped rows pay the
   per-cell [Value.coerce] dispatch. *)
let coerce_row t row =
  let n = Array.length row in
  if n <> arity t then err "table %s expects %d values, got %d" t.table_name (arity t) n;
  let rec well_typed i =
    i >= n
    ||
    let c = Array.unsafe_get t.columns i in
    (match (c.col_ty, Array.unsafe_get row i) with
    | _, Value.Null -> c.nullable
    | Value.TInt, Value.Int _
    | Value.TFloat, Value.Float _
    | Value.TBool, Value.Bool _
    | Value.TText, Value.Text _ ->
      true
    | _ -> false)
    && well_typed (i + 1)
  in
  if well_typed 0 then Array.copy row
  else
    Array.mapi
      (fun i v ->
        let c = t.columns.(i) in
        let v = Value.coerce c.col_ty v in
        if Value.is_null v && not c.nullable then
          err "column %s.%s is NOT NULL" t.table_name c.col_name;
        v)
      row

let to_string t =
  Printf.sprintf "%s(%s)" t.table_name
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun c ->
               Printf.sprintf "%s %s%s" c.col_name (Value.ty_to_string c.col_ty)
                 (if c.nullable then "" else " NOT NULL"))
             t.columns)))
