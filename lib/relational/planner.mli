(** Query planner: lowers a parsed SELECT into a {!Plan.t}.

    Pipeline: qualify column references → split the WHERE conjunction →
    choose per-table access paths (B+-tree index for equality / range /
    IN-list / prefix-LIKE predicates, else sequential scan) → greedy join
    ordering (hash joins on equi-predicates, nested loops otherwise) →
    aggregation rewriting → sort / project / distinct / limit. *)

exception Plan_error of string

type catalog = {
  find_table : string -> Table.t option;
  stats : Stats.t;  (** per-column statistics cache driving estimates *)
}

val make_catalog : (string -> Table.t option) -> catalog

val like_prefix_successor : string -> string option
(** Smallest string strictly greater than every string starting with the
    given prefix (the exclusive upper bound of a prefix-LIKE index range):
    trailing ['\xff'] bytes are dropped and the last remaining byte
    incremented. [None] when the prefix is all ['\xff'] — the range has no
    finite upper bound. *)

val plan_select : catalog -> Sql_ast.select -> Plan.t
val plan_query : catalog -> Sql_ast.query -> Plan.t
(** A UNION ALL of selects becomes {!Plan.Union_all}. *)
