(** Query planner: lowers a parsed SELECT into a {!Plan.t}.

    Pipeline: qualify column references → split the WHERE conjunction →
    choose per-table access paths (B+-tree index for equality / range /
    IN-list / prefix-LIKE predicates, else sequential scan) → greedy join
    ordering (hash joins on equi-predicates, nested loops otherwise) →
    aggregation rewriting → sort / project / distinct / limit. *)

exception Plan_error of string

type catalog = {
  find_table : string -> Table.t option;
  stats : Stats.t;  (** per-column statistics cache driving estimates *)
}

val make_catalog : (string -> Table.t option) -> catalog

val estimate_plan : catalog -> Plan.t -> int
(** Output-cardinality estimate for a physical plan node: scans are
    statistics-backed (histograms for literal-bounded index ranges,
    distinct counts for point lookups); operators above them apply coarse
    fixed selectivities. Drives the lint pass's row-explosion check and
    the [est=] column of EXPLAIN ANALYZE. *)

val set_staircase : bool -> unit
(** Globally enable/disable Staircase_join selection (on by default) —
    benchmark/test hook for measuring the structural join against the
    cross-product-plus-filter plan it replaces. *)

val like_prefix_successor : string -> string option
(** Smallest string strictly greater than every string starting with the
    given prefix (the exclusive upper bound of a prefix-LIKE index range):
    trailing ['\xff'] bytes are dropped and the last remaining byte
    incremented. [None] when the prefix is all ['\xff'] — the range has no
    finite upper bound. *)

val plan_select : catalog -> Sql_ast.select -> Plan.t
val plan_query : catalog -> Sql_ast.query -> Plan.t
(** A UNION ALL of selects becomes {!Plan.Union_all}. *)
