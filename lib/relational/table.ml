(* Heap table: rows in a growable array addressed by row id, with tombstone
   deletion and attached B+-tree secondary indexes kept in sync by every
   mutation. *)

type index = {
  index_name : string;
  key_columns : int array;  (* column positions forming the key *)
  tree : Btree.t;
}

(* Mutation notifications for the write-ahead log: fired after the row is
   in the arena (insert/update carry the coerced row as stored). *)
type mutation =
  | M_insert of int * Value.t array
  | M_delete of int
  | M_update of int * Value.t array

type t = {
  schema : Schema.t;
  rows : Value.t array Vec.t;
  mutable deleted : Bytes.t;  (* tombstone bitmap, 1 byte per row *)
  mutable live : int;
  mutable indexes : index list;
  mutable bytes : int;  (* approximate payload bytes, for storage-cost reporting *)
  mutable bulk_base : int option;
      (* first row id of an active bulk load; index maintenance for rows
         from here on is deferred to [end_bulk] *)
  mutable logger : (mutation -> unit) option;
      (* durable databases attach their WAL appender here *)
}

exception Index_error of string

let create schema =
  {
    schema;
    rows = Vec.create ~dummy:[||];
    deleted = Bytes.create 0;
    live = 0;
    indexes = [];
    bytes = 0;
    bulk_base = None;
    logger = None;
  }

let set_logger t f = t.logger <- f

let log t m = match t.logger with Some f -> f m | None -> ()

let schema t = t.schema
let name t = t.schema.Schema.table_name
let row_count t = t.live
let allocated_rows t = Vec.length t.rows

let value_bytes = function
  | Value.Null -> 1
  | Value.Int _ -> 8
  | Value.Float _ -> 8
  | Value.Bool _ -> 1
  | Value.Text s -> String.length s + 4

let row_bytes row = Array.fold_left (fun acc v -> acc + value_bytes v) 0 row

let byte_size t = t.bytes

let is_deleted t rowid = Bytes.get t.deleted rowid = '\001'

let get t rowid =
  if rowid < 0 || rowid >= Vec.length t.rows || is_deleted t rowid then None
  else Some (Vec.get t.rows rowid)

let key_of_row index row = Array.map (fun ci -> row.(ci)) index.key_columns

let grow_deleted t rowid =
  if Bytes.length t.deleted <= rowid then begin
    let grown = Bytes.make (max 64 (2 * (rowid + 1))) '\000' in
    Bytes.blit t.deleted 0 grown 0 (Bytes.length t.deleted);
    t.deleted <- grown
  end

let insert t row =
  let row = Schema.coerce_row t.schema row in
  let rowid = Vec.push t.rows row in
  grow_deleted t rowid;
  t.live <- t.live + 1;
  t.bytes <- t.bytes + row_bytes row;
  (match t.bulk_base with
  | Some _ -> ()  (* deferred: [end_bulk] indexes the whole appended range *)
  | None -> List.iter (fun ix -> Btree.insert ix.tree (key_of_row ix row) rowid) t.indexes);
  log t (M_insert (rowid, row));
  rowid

let delete t rowid =
  if t.bulk_base <> None then
    raise (Index_error (name t ^ ": DELETE during an active bulk load"));
  match get t rowid with
  | None -> false
  | Some row ->
    Bytes.set t.deleted rowid '\001';
    t.live <- t.live - 1;
    t.bytes <- t.bytes - row_bytes row;
    List.iter (fun ix -> Btree.remove ix.tree (key_of_row ix row) rowid) t.indexes;
    log t (M_delete rowid);
    true

let update t rowid new_row =
  if t.bulk_base <> None then
    raise (Index_error (name t ^ ": UPDATE during an active bulk load"));
  match get t rowid with
  | None -> false
  | Some old_row ->
    let new_row = Schema.coerce_row t.schema new_row in
    List.iter
      (fun ix ->
        let old_key = key_of_row ix old_row and new_key = key_of_row ix new_row in
        if Btree.compare_key old_key new_key <> 0 then begin
          Btree.remove ix.tree old_key rowid;
          Btree.insert ix.tree new_key rowid
        end)
      t.indexes;
    t.bytes <- t.bytes - row_bytes old_row + row_bytes new_row;
    Vec.set t.rows rowid new_row;
    log t (M_update (rowid, new_row));
    true

let iter f t =
  Vec.iteri (fun rowid row -> if not (is_deleted t rowid) then f rowid row) t.rows

let fold f init t =
  let acc = ref init in
  iter (fun rowid row -> acc := f !acc rowid row) t;
  !acc

let to_list t = List.rev (fold (fun acc _ row -> row :: acc) [] t)

(* ------------------------------------------------------------------ *)
(* Bulk loading: [begin_bulk] opens an append range at the current arena
   end; inserts in the range skip index maintenance; [end_bulk] closes it
   with one sort of the range's (key, rowid) pairs per index and a
   bottom-up build (merged with the tree's existing entries when it had
   any). [abort_bulk] drains the range instead: the appended rows were
   never indexed, so truncating the arena restores the table exactly.
   DELETE and UPDATE are rejected while a range is open — they would have
   to distinguish indexed from unindexed rows. *)

(* Group row ids by index key — [iter_rows] must yield ascending row ids —
   and return (key, postings) groups with strictly ascending keys and each
   posting list most recent first, as [Btree.bulk_of_groups] expects.
   Hashing costs O(rows); only the distinct keys pay the comparison sort,
   which is the whole game on low-cardinality columns (tag names), where
   sorting every (key, rowid) pair costs more than the per-row inserts the
   bulk path is replacing. *)
let sorted_key_groups iter_rows =
  let tbl : (Value.t array, int list ref) Hashtbl.t = Hashtbl.create 64 in
  iter_rows (fun key rowid ->
      (* prepending ascending row ids leaves each group most recent first *)
      match Hashtbl.find_opt tbl key with
      | Some cell -> cell := rowid :: !cell
      | None -> Hashtbl.add tbl key (ref [ rowid ]));
  let groups =
    Array.of_seq (Seq.map (fun (k, cell) -> (k, !cell)) (Hashtbl.to_seq tbl))
  in
  Array.sort (fun (a, _) (b, _) -> Btree.compare_key a b) groups;
  (* keys the hash told apart but the comparator equates (Int vs Float of
     the same value, NaN) must collapse into one group, postings
     interleaved back into descending-rowid order *)
  let rec merge_desc a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys -> if x >= y then x :: merge_desc xs b else y :: merge_desc a ys
  in
  let out = ref [] in
  let d = ref 0 in
  Array.iter
    (fun (k, posts) ->
      match !out with
      | (k', posts') :: rest when Btree.compare_key k' k = 0 ->
        out := (k', merge_desc posts' posts) :: rest
      | _ ->
        out := (k, posts) :: !out;
        incr d)
    groups;
  let keys = Array.make !d [||] and posts = Array.make !d [] in
  List.iteri
    (fun i (k, p) ->
      keys.(!d - 1 - i) <- k;
      posts.(!d - 1 - i) <- p)
    !out;
  (keys, posts)

(* Fast paths for a single-column text key (tag names, Dewey labels).
   When the column arrives already in key order — Dewey labels are an
   order-preserving encoding of document order, which is exactly the
   order the shredders append rows in — adjacent-run grouping needs no
   hashing and no sort at all. Otherwise hash-group on the raw strings: a
   string-keyed table hashes and compares cheaper than one keyed on Value
   arrays, and the distinct keys sort under a monomorphic
   [String.compare] — which orders text singletons exactly as
   [Btree.compare_key] does. [None] when the key shape does not fit. *)
let text_key_groups t ix ~base ~added =
  if Array.length ix.key_columns <> 1 then None
  else begin
    let ci = ix.key_columns.(0) in
    let strs = Array.make added "" in
    let all_text = ref true in
    (try
       for i = 0 to added - 1 do
         match (Vec.get t.rows (base + i)).(ci) with
         | Value.Text s -> strs.(i) <- s
         | _ ->
           all_text := false;
           raise Exit
       done
     with Exit -> ());
    if not !all_text then None
    else begin
      let sorted = ref true in
      (try
         for i = 1 to added - 1 do
           if String.compare strs.(i - 1) strs.(i) > 0 then begin
             sorted := false;
             raise Exit
           end
         done
       with Exit -> ());
      if !sorted then begin
        let d = ref 1 in
        for i = 1 to added - 1 do
          if not (String.equal strs.(i - 1) strs.(i)) then incr d
        done;
        let keys = Array.make !d [||] and posts = Array.make !d [] in
        let gi = ref (-1) in
        for i = 0 to added - 1 do
          if i = 0 || not (String.equal strs.(i - 1) strs.(i)) then begin
            incr gi;
            keys.(!gi) <- [| Value.Text strs.(i) |]
          end;
          (* prepending ascending row ids leaves each group most recent
             first *)
          posts.(!gi) <- (base + i) :: posts.(!gi)
        done;
        Some (keys, posts)
      end
      else begin
        let tbl : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
        for i = 0 to added - 1 do
          let s = strs.(i) in
          match Hashtbl.find_opt tbl s with
          | Some cell -> cell := (base + i) :: !cell
          | None -> Hashtbl.add tbl s (ref [ base + i ])
        done;
        let groups =
          Array.of_seq (Seq.map (fun (s, cell) -> (s, !cell)) (Hashtbl.to_seq tbl))
        in
        Array.sort (fun (a, _) (b, _) -> String.compare a b) groups;
        let keys = Array.map (fun (s, _) -> [| Value.Text s |]) groups in
        let posts = Array.map snd groups in
        Some (keys, posts)
      end
    end
  end

(* Counting-sort fast path for a single-column integer key whose value
   range is comparable to the row count — node-id columns (edge source and
   target, interval pre and parent) in practice. Groups the appended range
   in O(rows + range) with no key comparisons at all; [None] when the key
   shape or the value range does not fit. *)
let int_key_groups t ix ~base ~added =
  if Array.length ix.key_columns <> 1 then None
  else begin
    let ci = ix.key_columns.(0) in
    let vals = Array.make added 0 in
    let all_int = ref true in
    (try
       for i = 0 to added - 1 do
         match (Vec.get t.rows (base + i)).(ci) with
         | Value.Int v -> vals.(i) <- v
         | _ ->
           all_int := false;
           raise Exit
       done
     with Exit -> ());
    if not !all_int then None
    else begin
      let vmin = ref max_int and vmax = ref min_int in
      Array.iter
        (fun v ->
          if v < !vmin then vmin := v;
          if v > !vmax then vmax := v)
        vals;
      let vmin = !vmin in
      let range = !vmax - vmin + 1 in
      if range <= 0 (* overflow *) || range > max 65536 (4 * added) then None
      else begin
        let counts = Array.make range 0 in
        Array.iter (fun v -> counts.(v - vmin) <- counts.(v - vmin) + 1) vals;
        let gidx = Array.make range (-1) in
        let distinct = ref 0 in
        for v = 0 to range - 1 do
          if counts.(v) > 0 then begin
            gidx.(v) <- !distinct;
            incr distinct
          end
        done;
        let keys = Array.make !distinct [||] in
        let posts = Array.make !distinct [] in
        for v = range - 1 downto 0 do
          if counts.(v) > 0 then keys.(gidx.(v)) <- [| Value.Int (v + vmin) |]
        done;
        (* prepending in ascending rowid order leaves each posting list
           most recent first *)
        for i = 0 to added - 1 do
          let gi = gidx.(vals.(i) - vmin) in
          posts.(gi) <- (base + i) :: posts.(gi)
        done;
        Some (keys, posts)
      end
    end
  end


(* Expand sorted groups back into the flat ascending (key, rowid) pairs
   [Btree.bulk_merge] takes: reversing each most-recent-first group gives
   insertion order within the key. *)
let pairs_of_groups keys posts =
  let n = Array.fold_left (fun acc p -> acc + List.length p) 0 posts in
  let pairs = Array.make n ([||], 0) in
  let i = ref 0 in
  Array.iteri
    (fun gi k ->
      List.iter
        (fun rowid ->
          pairs.(!i) <- (k, rowid);
          incr i)
        (List.rev posts.(gi)))
    keys;
  pairs

let begin_bulk t =
  match t.bulk_base with
  | Some _ -> raise (Index_error (name t ^ ": bulk load already active"))
  | None -> t.bulk_base <- Some (Vec.length t.rows)

let bulk_active t = t.bulk_base <> None

let end_bulk t =
  match t.bulk_base with
  | None -> 0
  | Some base ->
    let added = Vec.length t.rows - base in
    if added > 0 then
      t.indexes <-
        List.map
          (fun ix ->
            let keys, posts =
              match int_key_groups t ix ~base ~added with
              | Some groups ->
                Metrics.incr "db.bulk.group_int";
                groups
              | None -> (
                match text_key_groups t ix ~base ~added with
                | Some groups ->
                  Metrics.incr "db.bulk.group_text";
                  groups
                | None ->
                  Metrics.incr "db.bulk.group_hash";
                  sorted_key_groups (fun f ->
                      for rowid = base to base + added - 1 do
                        f (key_of_row ix (Vec.get t.rows rowid)) rowid
                      done))
            in
            let tree =
              if Btree.entry_count ix.tree = 0 then Btree.bulk_of_arrays ~check:false keys posts
              else Btree.bulk_merge ix.tree (pairs_of_groups keys posts)
            in
            { ix with tree })
          t.indexes;
    t.bulk_base <- None;
    added

let abort_bulk t =
  match t.bulk_base with
  | None -> 0
  | Some base ->
    let hi = Vec.length t.rows in
    for rowid = base to hi - 1 do
      t.bytes <- t.bytes - row_bytes (Vec.get t.rows rowid)
    done;
    t.live <- t.live - (hi - base);
    Vec.truncate t.rows base;
    t.bulk_base <- None;
    hi - base

(* Bottom-up tree build over the live rows below [limit]. *)
let build_tree t key_columns ~limit =
  let keys, posts =
    sorted_key_groups (fun f ->
        for rowid = 0 to limit - 1 do
          if not (is_deleted t rowid) then begin
            let row = Vec.get t.rows rowid in
            f (Array.map (fun ci -> row.(ci)) key_columns) rowid
          end
        done)
  in
  Btree.bulk_of_arrays ~check:false keys posts

let create_index t ~index_name ~columns =
  if List.exists (fun ix -> String.equal ix.index_name index_name) t.indexes then
    raise (Index_error (Printf.sprintf "index %s already exists" index_name));
  let key_columns = Array.of_list (List.map (Schema.column_index t.schema) columns) in
  (* bottom-up build over the already-indexed range; rows appended by an
     active bulk load are excluded here and folded in by [end_bulk] *)
  let limit = match t.bulk_base with Some base -> base | None -> Vec.length t.rows in
  let tree = build_tree t key_columns ~limit in
  let ix = { index_name; key_columns; tree } in
  t.indexes <- t.indexes @ [ ix ];
  ix

let drop_index t index_name =
  let before = List.length t.indexes in
  t.indexes <- List.filter (fun ix -> not (String.equal ix.index_name index_name)) t.indexes;
  List.length t.indexes < before

let indexes t = t.indexes

let find_index t index_name =
  List.find_opt (fun ix -> String.equal ix.index_name index_name) t.indexes

(* ------------------------------------------------------------------ *)
(* Durability hooks: the checkpointer walks every slot (tombstones
   included, so row ids survive the round trip); recovery rebuilds a
   table from a checkpointed slot image, truncates loser transactions'
   appended tails, and rebuilds the trees of tables the undo touched. *)

let iter_slots t f =
  for rowid = 0 to Vec.length t.rows - 1 do
    if is_deleted t rowid then f None else f (Some (Vec.get t.rows rowid))
  done

let restore_slots schema slots =
  let t = create schema in
  Array.iter
    (fun slot ->
      match slot with
      | Some row ->
        let rowid = Vec.push t.rows row in
        grow_deleted t rowid;
        t.live <- t.live + 1;
        t.bytes <- t.bytes + row_bytes row
      | None ->
        (* tombstone: the content was dropped at checkpoint, only the
           slot (and with it the row-id numbering) remains *)
        let rowid = Vec.push t.rows [||] in
        grow_deleted t rowid;
        Bytes.set t.deleted rowid '\001')
    slots;
  t

(* Truncate the arena to [len] rows — recovery's undo of a loser
   transaction's appended tail (the live path does the same thing in
   [abort_bulk]). Returns how many live rows were dropped; the caller
   must rebuild this table's indexes, which may reference the tail. *)
let recover_truncate t len =
  if t.bulk_base <> None then
    raise (Index_error (name t ^ ": recovery truncate during an active bulk load"));
  let hi = Vec.length t.rows in
  let dropped = ref 0 in
  for rowid = len to hi - 1 do
    if not (is_deleted t rowid) then begin
      t.bytes <- t.bytes - row_bytes (Vec.get t.rows rowid);
      t.live <- t.live - 1;
      incr dropped
    end
  done;
  if hi > len then Bytes.fill t.deleted len (hi - len) '\000';
  Vec.truncate t.rows len;
  !dropped

let rebuild_indexes t =
  if t.bulk_base <> None then
    raise (Index_error (name t ^ ": index rebuild during an active bulk load"));
  t.indexes <-
    List.map (fun ix -> { ix with tree = build_tree t ix.key_columns ~limit:(Vec.length t.rows) }) t.indexes

(* An index whose key starts with exactly the given column positions, for
   planner probe selection. *)
let index_with_prefix t cols =
  let matches ix =
    Array.length ix.key_columns >= Array.length cols
    &&
    let rec go i = i >= Array.length cols || (ix.key_columns.(i) = cols.(i) && go (i + 1)) in
    go 0
  in
  List.find_opt matches t.indexes
