(** Durable paged storage for one database directory: two checkpoint
    generations of fixed-size pages behind a buffer pool, an atomically
    renamed [CURRENT] file naming the active one, and a write-ahead log
    carrying everything since. A crash at any point leaves either the
    old generation + full WAL, or the new generation + a WAL whose
    records are all at or below the checkpoint LSN (skipped on replay) —
    open always finds a consistent image. Recovery policy (redo, undo,
    transaction attribution) lives in [Database]; this module only moves
    bytes. *)

type t

exception Durable_error of string

type table_src = {
  src_schema : Schema.t;
  src_indexes : (string * string list) list;  (** index name, column names *)
  src_iter : (Value.t array option -> unit) -> unit;
      (** slots in rowid order; [None] = tombstone (deleted rows keep
          their slot so row ids survive the round trip) *)
}

type table_image = {
  ti_schema : Schema.t;
  ti_indexes : (string * string list) list;
  ti_slots : Value.t array option array;
}

type image = { im_tables : table_image list; im_stats : string }

val open_dir : ?page_size:int -> ?pool_pages:int -> string -> t * image option * Wal.scan
(** Open (creating if needed) a database directory: load the active
    checkpoint image when one exists, scan the WAL, and cut any torn
    tail back to the valid prefix. The caller replays the scanned
    records whose LSN exceeds {!checkpoint_lsn}. *)

val checkpoint : t -> tables:table_src list -> stats:string -> last_lsn:int -> unit
(** Write a full image into the inactive generation, flip [CURRENT],
    then truncate the WAL. [last_lsn] is the highest LSN the image
    absorbs. *)

val wal : t -> Wal.t
val dir : t -> string

val checkpoint_lsn : t -> int
(** Highest LSN absorbed into the active generation (0 before the first
    checkpoint). *)

val page_count : t -> int
(** Pages in the active generation's file (0 before the first
    checkpoint). *)

val close : t -> unit

val abandon : t -> unit
(** Drop the handles without flushing anything — simulates a crash
    (tests, the CLI's --crash-at). *)
