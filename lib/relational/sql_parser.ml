(* Recursive-descent parser for the SQL subset described in [Sql_ast]. *)

open Sql_ast

exception Parse_error of string

let perr fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { tokens : Sql_lexer.token array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let accept_keyword st kw =
  match peek st with
  | Sql_lexer.Keyword k when String.equal k kw ->
    advance st;
    true
  | _ -> false

let expect_keyword st kw =
  if not (accept_keyword st kw) then
    perr "expected %s, found %s" kw (Sql_lexer.token_to_string (peek st))

let accept_symbol st sym =
  match peek st with
  | Sql_lexer.Symbol s when String.equal s sym ->
    advance st;
    true
  | _ -> false

let expect_symbol st sym =
  if not (accept_symbol st sym) then
    perr "expected %S, found %s" sym (Sql_lexer.token_to_string (peek st))

let expect_ident st =
  match next st with
  | Sql_lexer.Ident s -> s
  | t -> perr "expected an identifier, found %s" (Sql_lexer.token_to_string t)

(* expression parsing, precedence climbing:
   or < and < not < comparison/LIKE/IN/BETWEEN/IS < add < mul < unary < atom *)

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if accept_keyword st "OR" then Binop (Or, left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if accept_keyword st "AND" then Binop (And, left, parse_and st) else left

and parse_not st =
  if accept_keyword st "NOT" then Unop (Not, parse_not st) else parse_comparison st

and parse_comparison st =
  let left = parse_additive st in
  match peek st with
  | Sql_lexer.Symbol ("=" | "<>" | "<" | "<=" | ">" | ">=") ->
    let op =
      match next st with
      | Sql_lexer.Symbol "=" -> Eq
      | Sql_lexer.Symbol "<>" -> Neq
      | Sql_lexer.Symbol "<" -> Lt
      | Sql_lexer.Symbol "<=" -> Le
      | Sql_lexer.Symbol ">" -> Gt
      | Sql_lexer.Symbol ">=" -> Ge
      | _ -> assert false
    in
    Binop (op, left, parse_additive st)
  | Sql_lexer.Keyword "IS" ->
    advance st;
    let negated = accept_keyword st "NOT" in
    expect_keyword st "NULL";
    Is_null { negated; arg = left }
  | Sql_lexer.Keyword "LIKE" ->
    advance st;
    Like { negated = false; arg = left; pattern = parse_additive st }
  | Sql_lexer.Keyword "IN" ->
    advance st;
    expect_symbol st "(";
    let items = parse_expr_list st in
    expect_symbol st ")";
    In_list { negated = false; arg = left; items }
  | Sql_lexer.Keyword "BETWEEN" ->
    advance st;
    let low = parse_additive st in
    expect_keyword st "AND";
    let high = parse_additive st in
    Between { arg = left; low; high }
  | Sql_lexer.Keyword "NOT" -> (
    (* x NOT LIKE / NOT IN *)
    advance st;
    match peek st with
    | Sql_lexer.Keyword "LIKE" ->
      advance st;
      Like { negated = true; arg = left; pattern = parse_additive st }
    | Sql_lexer.Keyword "IN" ->
      advance st;
      expect_symbol st "(";
      let items = parse_expr_list st in
      expect_symbol st ")";
      In_list { negated = true; arg = left; items }
    | t -> perr "expected LIKE or IN after NOT, found %s" (Sql_lexer.token_to_string t))
  | _ -> left

and parse_additive st =
  let left = ref (parse_multiplicative st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Sql_lexer.Symbol "+" ->
      advance st;
      left := Binop (Add, !left, parse_multiplicative st)
    | Sql_lexer.Symbol "-" ->
      advance st;
      left := Binop (Sub, !left, parse_multiplicative st)
    | Sql_lexer.Symbol "||" ->
      advance st;
      left := Binop (Concat, !left, parse_multiplicative st)
    | _ -> continue_ := false
  done;
  !left

and parse_multiplicative st =
  let left = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Sql_lexer.Symbol "*" ->
      advance st;
      left := Binop (Mul, !left, parse_unary st)
    | Sql_lexer.Symbol "/" ->
      advance st;
      left := Binop (Div, !left, parse_unary st)
    | Sql_lexer.Symbol "%" ->
      advance st;
      left := Binop (Mod, !left, parse_unary st)
    | _ -> continue_ := false
  done;
  !left

and parse_unary st =
  if accept_symbol st "-" then Unop (Neg, parse_unary st) else parse_atom st

and parse_atom st =
  match next st with
  | Sql_lexer.Int_lit i -> Lit (Value.Int i)
  | Sql_lexer.Float_lit f -> Lit (Value.Float f)
  | Sql_lexer.String_lit s -> Lit (Value.Text s)
  | Sql_lexer.Param_tok p ->
    if p < 1 then perr "parameter placeholders are numbered from ?1";
    Param p
  | Sql_lexer.Keyword "NULL" -> Lit Value.Null
  | Sql_lexer.Keyword "TRUE" -> Lit (Value.Bool true)
  | Sql_lexer.Keyword "FALSE" -> Lit (Value.Bool false)
  | Sql_lexer.Keyword "NAN" -> Lit (Value.Float Float.nan)
  | Sql_lexer.Keyword "INF" -> Lit (Value.Float infinity)  (* -INF via unary minus *)
  | Sql_lexer.Symbol "(" ->
    let e = parse_expr st in
    expect_symbol st ")";
    e
  | Sql_lexer.Ident name -> (
    match peek st with
    | Sql_lexer.Symbol "(" ->
      (* function call *)
      advance st;
      if accept_symbol st "*" then begin
        expect_symbol st ")";
        Call { func = name; star = true; distinct = false; args = [] }
      end
      else begin
        let distinct = accept_keyword st "DISTINCT" in
        if accept_symbol st ")" then Call { func = name; star = false; distinct; args = [] }
        else begin
          let args = parse_expr_list st in
          expect_symbol st ")";
          Call { func = name; star = false; distinct; args }
        end
      end
    | Sql_lexer.Symbol "." ->
      advance st;
      let column = expect_ident st in
      Col { table = Some name; column }
    | _ -> Col { table = None; column = name })
  | t -> perr "unexpected token %s in expression" (Sql_lexer.token_to_string t)

and parse_expr_list st =
  let first = parse_expr st in
  let rec go acc = if accept_symbol st "," then go (parse_expr st :: acc) else List.rev acc in
  go [ first ]

(* SELECT *)

let parse_projection st =
  if accept_symbol st "*" then All
  else begin
    (* t.* needs lookahead: Ident '.' '*' *)
    match (peek st, st.tokens.(min (st.pos + 1) (Array.length st.tokens - 1)),
           st.tokens.(min (st.pos + 2) (Array.length st.tokens - 1))) with
    | Sql_lexer.Ident t, Sql_lexer.Symbol ".", Sql_lexer.Symbol "*" ->
      st.pos <- st.pos + 3;
      Table_all t
    | _ ->
      let e = parse_expr st in
      let alias =
        if accept_keyword st "AS" then Some (expect_ident st)
        else
          match peek st with
          | Sql_lexer.Ident a ->
            advance st;
            Some a
          | _ -> None
      in
      Proj (e, alias)
  end

let parse_table_ref st =
  let table = expect_ident st in
  let alias =
    if accept_keyword st "AS" then Some (expect_ident st)
    else
      match peek st with
      | Sql_lexer.Ident a ->
        advance st;
        Some a
      | _ -> None
  in
  { table; alias }

let parse_select st : select =
  expect_keyword st "SELECT";
  let distinct = accept_keyword st "DISTINCT" in
  let projections =
    let first = parse_projection st in
    let rec go acc =
      if accept_symbol st "," then go (parse_projection st :: acc) else List.rev acc
    in
    go [ first ]
  in
  expect_keyword st "FROM";
  let from = ref [ parse_table_ref st ] in
  let join_conds = ref [] in
  let rec more_tables () =
    if accept_symbol st "," then begin
      from := !from @ [ parse_table_ref st ];
      more_tables ()
    end
    else if
      accept_keyword st "JOIN"
      || (accept_keyword st "INNER" && (expect_keyword st "JOIN"; true))
    then begin
      let tr = parse_table_ref st in
      from := !from @ [ tr ];
      expect_keyword st "ON";
      join_conds := parse_expr st :: !join_conds;
      more_tables ()
    end
  in
  more_tables ();
  let where =
    if accept_keyword st "WHERE" then Some (parse_expr st) else None
  in
  let where =
    (* fold JOIN..ON conditions into WHERE *)
    List.fold_left
      (fun acc cond -> match acc with None -> Some cond | Some w -> Some (Binop (And, w, cond)))
      where (List.rev !join_conds)
  in
  let group_by =
    if accept_keyword st "GROUP" then begin
      expect_keyword st "BY";
      parse_expr_list st
    end
    else []
  in
  let having = if accept_keyword st "HAVING" then Some (parse_expr st) else None in
  let order_by =
    if accept_keyword st "ORDER" then begin
      expect_keyword st "BY";
      let item () =
        let e = parse_expr st in
        let descending =
          if accept_keyword st "DESC" then true
          else begin
            ignore (accept_keyword st "ASC");
            false
          end
        in
        { order_expr = e; descending }
      in
      let first = item () in
      let rec go acc = if accept_symbol st "," then go (item () :: acc) else List.rev acc in
      go [ first ]
    end
    else []
  in
  let limit =
    if accept_keyword st "LIMIT" then
      match next st with
      | Sql_lexer.Int_lit n -> Some n
      | t -> perr "expected an integer after LIMIT, found %s" (Sql_lexer.token_to_string t)
    else None
  in
  { distinct; projections; from = !from; where; group_by; having; order_by; limit }

let parse_query st : query =
  let first = parse_select st in
  let rec go acc =
    if accept_keyword st "UNION" then begin
      expect_keyword st "ALL";
      go (parse_select st :: acc)
    end
    else List.rev acc
  in
  go [ first ]

(* other statements *)

let parse_column_def st =
  let def_name = expect_ident st in
  let ty_name =
    match next st with
    | Sql_lexer.Ident s -> s
    | Sql_lexer.Keyword s -> s
    | t -> perr "expected a type name, found %s" (Sql_lexer.token_to_string t)
  in
  let def_ty =
    match Value.ty_of_string ty_name with
    | Some ty -> ty
    | None -> perr "unknown column type %s" ty_name
  in
  (* optional (n) length, accepted and ignored *)
  if accept_symbol st "(" then begin
    (match next st with Sql_lexer.Int_lit _ -> () | t -> perr "expected a length, found %s" (Sql_lexer.token_to_string t));
    expect_symbol st ")"
  end;
  let def_not_null =
    if accept_keyword st "NOT" then begin
      expect_keyword st "NULL";
      true
    end
    else false
  in
  (* PRIMARY KEY accepted as a no-op marker *)
  if accept_keyword st "PRIMARY" then expect_keyword st "KEY";
  { def_name; def_ty; def_not_null }

let parse_ident_list st =
  let first = expect_ident st in
  let rec go acc = if accept_symbol st "," then go (expect_ident st :: acc) else List.rev acc in
  go [ first ]

let parse_statement_inner st =
  match peek st with
  | Sql_lexer.Keyword "SELECT" -> Select_stmt (parse_query st)
  | Sql_lexer.Keyword "INSERT" ->
    advance st;
    expect_keyword st "INTO";
    let table = expect_ident st in
    let columns =
      if accept_symbol st "(" then begin
        let cs = parse_ident_list st in
        expect_symbol st ")";
        Some cs
      end
      else None
    in
    expect_keyword st "VALUES";
    let row () =
      expect_symbol st "(";
      let vs = parse_expr_list st in
      expect_symbol st ")";
      vs
    in
    let first = row () in
    let rec go acc = if accept_symbol st "," then go (row () :: acc) else List.rev acc in
    Insert { table; columns; rows = go [ first ] }
  | Sql_lexer.Keyword "UPDATE" ->
    advance st;
    let table = expect_ident st in
    expect_keyword st "SET";
    let set () =
      let c = expect_ident st in
      expect_symbol st "=";
      (c, parse_expr st)
    in
    let first = set () in
    let rec go acc = if accept_symbol st "," then go (set () :: acc) else List.rev acc in
    let sets = go [ first ] in
    let where = if accept_keyword st "WHERE" then Some (parse_expr st) else None in
    Update { table; sets; where }
  | Sql_lexer.Keyword "DELETE" ->
    advance st;
    expect_keyword st "FROM";
    let table = expect_ident st in
    let where = if accept_keyword st "WHERE" then Some (parse_expr st) else None in
    Delete { table; where }
  | Sql_lexer.Keyword "CREATE" -> (
    advance st;
    match next st with
    | Sql_lexer.Keyword "TABLE" ->
      let if_not_exists =
        if accept_keyword st "IF" then begin
          expect_keyword st "NOT";
          expect_keyword st "EXISTS";
          true
        end
        else false
      in
      let table = expect_ident st in
      expect_symbol st "(";
      let first = parse_column_def st in
      let rec go acc =
        if accept_symbol st "," then go (parse_column_def st :: acc) else List.rev acc
      in
      let defs = go [ first ] in
      expect_symbol st ")";
      Create_table { table; defs; if_not_exists }
    | Sql_lexer.Keyword ("INDEX" | "UNIQUE") ->
      (* UNIQUE INDEX accepted; uniqueness is not enforced *)
      (match st.tokens.(st.pos - 1) with
      | Sql_lexer.Keyword "UNIQUE" -> expect_keyword st "INDEX"
      | _ -> ());
      let if_not_exists =
        if accept_keyword st "IF" then begin
          expect_keyword st "NOT";
          expect_keyword st "EXISTS";
          true
        end
        else false
      in
      let index = expect_ident st in
      expect_keyword st "ON";
      let table = expect_ident st in
      expect_symbol st "(";
      let columns = parse_ident_list st in
      expect_symbol st ")";
      Create_index { index; table; columns; if_not_exists }
    | t -> perr "expected TABLE or INDEX after CREATE, found %s" (Sql_lexer.token_to_string t))
  | Sql_lexer.Keyword "DROP" -> (
    advance st;
    match next st with
    | Sql_lexer.Keyword "TABLE" ->
      let if_exists =
        if accept_keyword st "IF" then begin
          expect_keyword st "EXISTS";
          true
        end
        else false
      in
      Drop_table { table = expect_ident st; if_exists }
    | Sql_lexer.Keyword "INDEX" ->
      let index = expect_ident st in
      expect_keyword st "ON";
      let table = expect_ident st in
      Drop_index { index; table }
    | t -> perr "expected TABLE or INDEX after DROP, found %s" (Sql_lexer.token_to_string t))
  | t -> perr "unexpected start of statement: %s" (Sql_lexer.token_to_string t)

let parse_statement src =
  let tokens = Array.of_list (Sql_lexer.tokenize src) in
  let st = { tokens; pos = 0 } in
  let stmt = parse_statement_inner st in
  ignore (accept_symbol st ";");
  (match peek st with
  | Sql_lexer.Eof -> ()
  | t -> perr "trailing input after statement: %s" (Sql_lexer.token_to_string t));
  stmt

let parse_script src =
  let tokens = Array.of_list (Sql_lexer.tokenize src) in
  let st = { tokens; pos = 0 } in
  let rec go acc =
    match peek st with
    | Sql_lexer.Eof -> List.rev acc
    | _ ->
      let stmt = parse_statement_inner st in
      ignore (accept_symbol st ";");
      go (stmt :: acc)
  in
  go []
