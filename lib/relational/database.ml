(* Top-level database: catalog of tables plus SQL entry points.

   SELECT plans are cached by statement text (see Plan_cache): repeated
   queries — parameterized or not — skip lexing, parsing, and planning.
   The cache is cleared on any DDL and entries are revalidated against
   table row counts, so stale plans never execute. *)

type t = {
  tables : (string, Table.t) Hashtbl.t;
  col_stats : Stats.t;
  plan_cache : Plan_cache.t;
  mutable ddl_gen : int;
      (* bumped on every CREATE/DROP TABLE; lets bulk-load sessions cache
         name-to-table resolutions until the catalog actually changes *)
}

exception Db_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Db_error s)) fmt

let create () =
  let t =
    {
      tables = Hashtbl.create 16;
      col_stats = Stats.create ();
      plan_cache = Plan_cache.create ();
      ddl_gen = 0;
    }
  in
  (* A material statistics change means cached plans were costed against
     numbers that no longer hold — invalidate, like DDL does. *)
  Stats.on_change t.col_stats (fun _table -> Plan_cache.clear t.plan_cache);
  t

let key name = String.lowercase_ascii name

let find_table t name = Hashtbl.find_opt t.tables (key name)

let get_table t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> err "no such table: %s" name

let table_names t =
  Hashtbl.fold (fun _ tbl acc -> Table.name tbl :: acc) t.tables []
  |> List.sort String.compare

let create_table t schema =
  let k = key schema.Schema.table_name in
  if Hashtbl.mem t.tables k then err "table %s already exists" schema.Schema.table_name;
  let tbl = Table.create schema in
  Hashtbl.add t.tables k tbl;
  t.ddl_gen <- t.ddl_gen + 1;
  tbl

let drop_table t name =
  let k = key name in
  let existed = Hashtbl.mem t.tables k in
  Hashtbl.remove t.tables k;
  if existed then t.ddl_gen <- t.ddl_gen + 1;
  existed

let catalog t : Planner.catalog =
  { Planner.find_table = find_table t; stats = t.col_stats }

(* Per-column statistics, refreshed on demand (see Stats). *)
let analyze t name = Stats.get t.col_stats (get_table t name)

let analyze_to_string t name =
  let tbl = get_table t name in
  Printf.sprintf "%s: %d rows\n%s" name (Table.row_count tbl)
    (Stats.to_string (analyze t name) (Table.schema tbl))

(* Direct (non-SQL) fast path used by the shredders: no per-row list
   allocation — callers build the row array in place. *)
let insert_row_array t name values = ignore (Table.insert (get_table t name) values)

(* ------------------------------------------------------------------ *)
(* Bulk-load sessions: batched appends with deferred index maintenance.

   [insert_rows] / [session_insert] append straight into the table arena;
   no B+-tree is touched until [finish_session], which builds each index
   bottom-up from one sort of the appended (key, rowid) pairs
   (Btree.bulk_of_sorted, merged when the tree already had entries).
   Mid-session reads see appended rows through sequential scans but not
   through index probes — the shredders only query unindexed registry
   tables while loading. DDL composes with the session: CREATE/DROP
   during it clears the plan cache as always, and CREATE INDEX on a
   bulk-active table builds over the already-indexed range only
   (Table.end_bulk folds the rest in). After the session, the ordinary
   row-count drift rules govern plan-cache and stats invalidation.
   [abort_session] drains every touched table back to its pre-session
   length — the appended ranges were never indexed, so the tables are
   restored exactly. *)

type session = {
  s_db : t;
  mutable s_tables : (string * Table.t) list;  (* most recently touched first *)
  mutable s_memo : (string * Table.t) list;
      (* keyed on the physical name argument: shredders emit the same
         string literal for every row of a table, so a few pointer
         compares replace the per-row lowercase + catalog lookup even
         when emits alternate between tables (the binary scheme). Flushed
         whenever [ddl_gen] moves, so a drop/recreate mid-session can
         never serve a detached table. *)
  mutable s_gen : int;
  mutable s_open : bool;
}

let load_session t =
  { s_db = t; s_tables = []; s_memo = []; s_gen = t.ddl_gen; s_open = true }
let session_db s = s.s_db

let session_table_slow s name =
  let k = key name in
  let fresh () =
    let tbl = get_table s.s_db name in
    Table.begin_bulk tbl;
    s.s_tables <- (k, tbl) :: s.s_tables;
    tbl
  in
  match List.assoc_opt k s.s_tables with
  | None -> fresh ()
  | Some tbl -> (
    (* the table may have been dropped and recreated mid-session (the
       universal scheme rebuilds univ to widen it); never write into a
       detached table *)
    match find_table s.s_db name with
    | Some current when current == tbl -> tbl
    | _ ->
      s.s_tables <- List.filter (fun (_, t') -> t' != tbl) s.s_tables;
      fresh ())

let session_table s name =
  if not s.s_open then err "bulk-load session is already closed";
  if s.s_gen <> s.s_db.ddl_gen then begin
    (* any DDL since the last resolution: drop the memo and let the slow
       path revalidate each name against the live catalog *)
    s.s_memo <- [];
    s.s_gen <- s.s_db.ddl_gen
  end;
  let rec scan = function
    | (n, tbl) :: rest -> if n == name then tbl else scan rest
    | [] ->
      let tbl = session_table_slow s name in
      s.s_memo <- (name, tbl) :: s.s_memo;
      tbl
  in
  scan s.s_memo

let session_insert s name row = ignore (Table.insert (session_table s name) row)
let insert_rows s name rows = List.iter (fun row -> session_insert s name row) rows

let finish_session s =
  if not s.s_open then 0
  else begin
    s.s_open <- false;
    let total = ref 0 in
    List.iter
      (fun (name, tbl) ->
        let attached =
          match find_table s.s_db name with Some cur -> cur == tbl | None -> false
        in
        if attached then begin
          let added =
            Obskit.Trace.with_span ~attrs:[ ("table", name) ] "index.build" (fun () ->
                let n = Metrics.timed "db.bulk.index_build" (fun () -> Table.end_bulk tbl) in
                Obskit.Trace.add_attr "rows" (string_of_int n);
                n)
          in
          (* fold the appended range into the column statistics in one
             pass, instead of invalidating and re-scanning the whole
             table on the next planner question *)
          Stats.fold_range s.s_db.col_stats tbl
            ~base:(Table.allocated_rows tbl - added)
            ~added;
          total := !total + added
        end
        else
          (* dropped mid-session: drain quietly so any lingering reference
             sees a consistent (empty-range) table *)
          ignore (Table.abort_bulk tbl))
      (List.rev s.s_tables);
    Metrics.incr ~by:!total "db.bulk.rows";
    !total
  end

let abort_session s =
  if s.s_open then begin
    s.s_open <- false;
    let total = ref 0 in
    List.iter (fun (_, tbl) -> total := !total + Table.abort_bulk tbl) s.s_tables;
    Metrics.incr ~by:!total "db.bulk.aborted_rows"
  end

let with_session t f =
  let s = load_session t in
  match f s with
  | v ->
    ignore (finish_session s);
    v
  | exception e ->
    abort_session s;
    raise e

(* ------------------------------------------------------------------ *)
(* SQL execution *)

type exec_result =
  | Rows of Executor.result
  | Affected of int
  | Done of string

let const_value params e =
  let f = Expr_eval.compile ~params [||] e in
  f [||]

(* ------------------------------------------------------------------ *)
(* Plan cache plumbing *)

let row_count_of t name = Option.map Table.row_count (find_table t name)

let cached_plan t text =
  let r = Plan_cache.find t.plan_cache ~row_count:(row_count_of t) text in
  Metrics.incr (match r with Some _ -> "db.cache.hit" | None -> "db.cache.miss");
  r

let referenced_from_tables (q : Sql_ast.query) =
  List.sort_uniq String.compare
    (List.concat_map
       (fun (s : Sql_ast.select) ->
         List.map (fun (tr : Sql_ast.table_ref) -> tr.Sql_ast.table) s.Sql_ast.from)
       q)

(* Plan [q] and remember the plan under [text], fingerprinted with the row
   counts the planner saw. *)
let plan_and_cache t ~text (q : Sql_ast.query) =
  let plan =
    Obskit.Trace.with_span "sql.plan" @@ fun () ->
    Metrics.timed "db.plan" (fun () -> Planner.plan_query (catalog t) q)
  in
  let tables =
    List.filter_map
      (fun name -> Option.map (fun c -> (name, c)) (row_count_of t name))
      (referenced_from_tables q)
  in
  Plan_cache.add t.plan_cache text ~tables plan;
  plan

let plan_for t ~text (q : Sql_ast.query) =
  match cached_plan t text with Some plan -> plan | None -> plan_and_cache t ~text q

let cache_stats t = Plan_cache.stats t.plan_cache
let reset_cache_stats t = Plan_cache.reset_stats t.plan_cache
let set_plan_cache t on = Plan_cache.set_enabled t.plan_cache on

(* Every executor invocation flows through here: inside a recorded trace
   the instrumented executor runs instead, and its operator tree is
   bridged into the trace as child spans of the sql.execute span. *)
let traced_run ?(params = [||]) t plan =
  Metrics.timed "db.execute" @@ fun () ->
  if Obskit.Trace.recording () then
    Obskit.Trace.with_span "sql.execute" (fun () ->
        let r, annot = Executor.run_analyzed ~params (catalog t) plan in
        Plan.record_spans annot;
        r)
  else Executor.run ~params (catalog t) plan

(* ------------------------------------------------------------------ *)

let exec_statement ?(params = [||]) ?cache_text t (stmt : Sql_ast.statement) =
  match stmt with
  | Sql_ast.Select_stmt q ->
    let text = match cache_text with Some s -> s | None -> Sql_ast.query_to_string q in
    let plan = plan_and_cache t ~text q in
    Rows (traced_run ~params t plan)
  | Sql_ast.Insert { table; columns; rows } ->
    let tbl = get_table t table in
    let schema = Table.schema tbl in
    let arity = Schema.arity schema in
    let positions =
      match columns with
      | None -> Array.init arity (fun i -> i)
      | Some cols -> Array.of_list (List.map (Schema.column_index schema) cols)
    in
    List.iter
      (fun row_exprs ->
        if List.length row_exprs <> Array.length positions then
          err "INSERT into %s: %d columns but %d values" table (Array.length positions)
            (List.length row_exprs);
        let row = Array.make arity Value.Null in
        List.iteri (fun i e -> row.(positions.(i)) <- const_value params e) row_exprs;
        ignore (Table.insert tbl row))
      rows;
    Affected (List.length rows)
  | Sql_ast.Update { table; sets; where } ->
    let tbl = get_table t table in
    let schema = Table.schema tbl in
    let layout = Expr_eval.layout_of_schema ~alias:(Table.name tbl) schema in
    let pred =
      match where with
      | None -> fun _ -> true
      | Some w -> Expr_eval.compile_predicate ~params layout w
    in
    let setters =
      List.map
        (fun (c, e) -> (Schema.column_index schema c, Expr_eval.compile ~params layout e))
        sets
    in
    let victims = Table.fold (fun acc rowid row -> if pred row then (rowid, row) :: acc else acc) [] tbl in
    List.iter
      (fun (rowid, row) ->
        let row' = Array.copy row in
        List.iter (fun (ci, f) -> row'.(ci) <- f row) setters;
        ignore (Table.update tbl rowid row'))
      victims;
    Affected (List.length victims)
  | Sql_ast.Delete { table; where } ->
    let tbl = get_table t table in
    let layout = Expr_eval.layout_of_schema ~alias:(Table.name tbl) (Table.schema tbl) in
    let pred =
      match where with
      | None -> fun _ -> true
      | Some w -> Expr_eval.compile_predicate ~params layout w
    in
    let victims = Table.fold (fun acc rowid row -> if pred row then rowid :: acc else acc) [] tbl in
    List.iter (fun rowid -> ignore (Table.delete tbl rowid)) victims;
    Affected (List.length victims)
  | Sql_ast.Create_table { table; defs; if_not_exists } ->
    if if_not_exists && Option.is_some (find_table t table) then Done "table exists"
    else begin
      let columns =
        List.map
          (fun d -> Schema.column d.Sql_ast.def_name ~nullable:(not d.Sql_ast.def_not_null) d.Sql_ast.def_ty)
          defs
      in
      ignore (create_table t (Schema.make table columns));
      Plan_cache.clear t.plan_cache;
      Done (Printf.sprintf "created table %s" table)
    end
  | Sql_ast.Create_index { index; table; columns; if_not_exists } ->
    let tbl = get_table t table in
    if if_not_exists && Option.is_some (Table.find_index tbl index) then Done "index exists"
    else begin
      ignore (Table.create_index tbl ~index_name:index ~columns);
      Plan_cache.clear t.plan_cache;
      Done (Printf.sprintf "created index %s" index)
    end
  | Sql_ast.Drop_table { table; if_exists } ->
    if drop_table t table then begin
      Plan_cache.clear t.plan_cache;
      Done (Printf.sprintf "dropped table %s" table)
    end
    else if if_exists then Done "no such table"
    else err "no such table: %s" table
  | Sql_ast.Drop_index { index; table } ->
    let tbl = get_table t table in
    if Table.drop_index tbl index then begin
      Plan_cache.clear t.plan_cache;
      Done (Printf.sprintf "dropped index %s" index)
    end
    else err "no such index: %s on %s" index table

(* Text entry point: a plan-cache hit on the raw statement text skips the
   lexer, parser, and planner entirely. *)
let parse_timed sql =
  Obskit.Trace.with_span "sql.parse" @@ fun () ->
  Metrics.timed "db.parse" (fun () -> Sql_parser.parse_statement sql)

let exec ?(params = [||]) t sql =
  match cached_plan t sql with
  | Some plan -> Rows (traced_run ~params t plan)
  | None -> exec_statement ~params ~cache_text:sql t (parse_timed sql)

let exec_script t sql = List.map (exec_statement t) (Sql_parser.parse_script sql)

(* SELECT or fail; convenience for callers that expect rows back. *)
let query ?params t sql =
  match exec ?params t sql with
  | Rows r -> r
  | Affected _ | Done _ -> err "not a SELECT statement: %s" sql

(* ------------------------------------------------------------------ *)
(* Prepared statements. A prepared handle pins the parsed query, not the
   plan: each execution fetches the plan from the cache (replanning only
   when DDL or stats drift invalidated it), so handles never go stale. *)

type prepared = { p_text : string; p_query : Sql_ast.query }

(* Planning is deferred to the first execution (or [prepared_plan]), so
   constructing a handle touches the cache at most once per run. *)
let prepare_query t (q : Sql_ast.query) =
  ignore t;
  { p_text = Sql_ast.query_to_string q; p_query = q }

let prepare t sql =
  match parse_timed sql with
  | Sql_ast.Select_stmt q ->
    let p = { p_text = sql; p_query = q } in
    ignore (plan_for t ~text:sql q);
    p
  | _ -> err "prepare supports only SELECT statements"

let prepared_text p = p.p_text
let prepared_plan t p = plan_for t ~text:p.p_text p.p_query

let query_prepared ?(params = [||]) t p =
  let plan = prepared_plan t p in
  traced_run ~params t plan

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE: same planning pipeline (including the plan cache), but
   the executor wraps every operator in a counting cursor and returns the
   executed plan with actual row counts and timings. *)

let query_prepared_analyzed ?(params = [||]) t p =
  let plan = prepared_plan t p in
  Metrics.timed "db.execute" (fun () -> Executor.run_analyzed ~params (catalog t) plan)

let query_analyzed ?(params = [||]) t sql =
  let run plan =
    Metrics.timed "db.execute" (fun () -> Executor.run_analyzed ~params (catalog t) plan)
  in
  match cached_plan t sql with
  | Some plan -> run plan
  | None -> (
    match parse_timed sql with
    | Sql_ast.Select_stmt q -> run (plan_and_cache t ~text:sql q)
    | _ -> err "not a SELECT statement: %s" sql)

let plan_of t sql =
  match Sql_parser.parse_statement sql with
  | Sql_ast.Select_stmt q -> Planner.plan_query (catalog t) q
  | _ -> err "EXPLAIN supports only SELECT statements"

let explain t sql = Plan.to_string (plan_of t sql)

let explain_analyze ?params t sql =
  let r, annot = query_analyzed ?params t sql in
  ignore r;
  Plan.annotated_to_string annot

(* ------------------------------------------------------------------ *)
(* Storage statistics (benchmark experiment T1) *)

type table_stats = {
  st_table : string;
  st_rows : int;
  st_bytes : int;
  st_indexes : int;
  st_index_entries : int;
}

let stats t =
  List.map
    (fun name ->
      let tbl = get_table t name in
      let ixs = Table.indexes tbl in
      {
        st_table = name;
        st_rows = Table.row_count tbl;
        st_bytes = Table.byte_size tbl;
        st_indexes = List.length ixs;
        st_index_entries =
          List.fold_left (fun acc ix -> acc + Btree.entry_count ix.Table.tree) 0 ixs;
      })
    (table_names t)

let total_rows t = List.fold_left (fun acc s -> acc + s.st_rows) 0 (stats t)
let total_bytes t = List.fold_left (fun acc s -> acc + s.st_bytes) 0 (stats t)

(* ------------------------------------------------------------------ *)
(* Persistence: a SQL-script dump that [restore] replays. Tables are
   emitted in name order; inserts preserve live-row order; indexes are
   rebuilt after the data so restore cost matches a bulk load. *)

let dump t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun name ->
      let tbl = get_table t name in
      let schema = Table.schema tbl in
      Buffer.add_string buf
        (Printf.sprintf "CREATE TABLE %s (%s);\n" (Table.name tbl)
           (String.concat ", "
              (Array.to_list
                 (Array.map
                    (fun c ->
                      Printf.sprintf "%s %s%s" c.Schema.col_name
                        (Value.ty_to_string c.Schema.col_ty)
                        (if c.Schema.nullable then "" else " NOT NULL"))
                    schema.Schema.columns))));
      Table.iter
        (fun _ row ->
          Buffer.add_string buf
            (Printf.sprintf "INSERT INTO %s VALUES (%s);\n" (Table.name tbl)
               (String.concat ", " (Array.to_list (Array.map Value.to_sql_literal row)))))
        tbl;
      List.iter
        (fun ix ->
          let cols =
            Array.to_list
              (Array.map (fun ci -> schema.Schema.columns.(ci).Schema.col_name) ix.Table.key_columns)
          in
          Buffer.add_string buf
            (Printf.sprintf "CREATE INDEX %s ON %s (%s);\n" ix.Table.index_name (Table.name tbl)
               (String.concat ", " cols)))
        (Table.indexes tbl))
    (table_names t);
  Buffer.contents buf

let restore script =
  let db = create () in
  ignore (exec_script db script);
  db

let dump_to_file t path =
  let oc = open_out_bin path in
  output_string oc (dump t);
  close_out oc

let restore_from_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  restore s

(* Render a result set as an aligned text table (CLI / examples). *)
let render_result (r : Executor.result) =
  let cells = r.Executor.columns :: List.map (fun row -> Array.to_list (Array.map Value.to_string row)) r.Executor.rows in
  let ncols = List.length r.Executor.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell))
    cells;
  let line cells =
    String.concat " | "
      (List.mapi (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ') cells)
  in
  let sep = String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  String.concat "\n" (line r.Executor.columns :: sep :: List.map line (List.tl cells))
