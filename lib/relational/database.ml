(* Top-level database: catalog of tables plus SQL entry points.

   SELECT plans are cached by statement text (see Plan_cache): repeated
   queries — parameterized or not — skip lexing, parsing, and planning.
   The cache is cleared on any DDL and entries are revalidated against
   table row counts, so stale plans never execute. *)

(* What recovery did when a durable directory was opened. *)
type recovery = {
  rc_scanned : int;  (* WAL records in the valid prefix *)
  rc_redone : int;  (* mutation/DDL records replayed past the checkpoint *)
  rc_undone : int;  (* rows truncated undoing loser transactions *)
  rc_losers : int;  (* transactions begun but never committed or aborted *)
  rc_torn_bytes : int;  (* torn WAL tail cut back on open *)
}

type t = {
  tables : (string, Table.t) Hashtbl.t;
  col_stats : Stats.t;
  plan_cache : Plan_cache.t;
  mutable ddl_gen : int;
      (* bumped on every CREATE/DROP TABLE; lets bulk-load sessions cache
         name-to-table resolutions until the catalog actually changes *)
  mutable durable : Durable.t option;
  mutable cur_tx : int;  (* the open durable bulk-load session, 0 = none *)
  mutable next_tx : int;
  mutable recovering : bool;  (* replaying the WAL: nothing is re-logged *)
  mutable last_recovery : recovery option;
}

exception Db_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Db_error s)) fmt

let create () =
  let t =
    {
      tables = Hashtbl.create 16;
      col_stats = Stats.create ();
      plan_cache = Plan_cache.create ();
      ddl_gen = 0;
      durable = None;
      cur_tx = 0;
      next_tx = 1;
      recovering = false;
      last_recovery = None;
    }
  in
  (* A material statistics change means cached plans were costed against
     numbers that no longer hold — invalidate, like DDL does. *)
  Stats.on_change t.col_stats (fun _table -> Plan_cache.clear t.plan_cache);
  t

let is_durable t = t.durable <> None
let durable_dir t = Option.map Durable.dir t.durable
let last_recovery t = t.last_recovery

(* ------------------------------------------------------------------ *)
(* WAL appenders. Everything is a no-op on in-memory databases and while
   recovery itself is replaying the log (nothing may be re-logged).

   Transaction attribution: a mutation belongs to the open durable
   session iff its table is bulk-active — exactly the rows a live
   [abort_session] would drain — and to transaction 0 (autocommit)
   otherwise. DDL is always transaction 0: the live engine keeps DDL
   across a session abort, so recovery must too. *)

let log_wal t record =
  match t.durable with
  | Some d when not t.recovering -> ignore (Wal.append (Durable.wal d) record)
  | _ -> ()

let log_mutation t tbl (m : Table.mutation) =
  match t.durable with
  | Some d when not t.recovering ->
    let table = Table.name tbl in
    let record =
      match m with
      | Table.M_insert (rowid, row) ->
        let tx = if Table.bulk_active tbl && t.cur_tx <> 0 then t.cur_tx else 0 in
        Wal.Insert { tx; table; rowid; row }
      | Table.M_delete rowid -> Wal.Delete { table; rowid }
      | Table.M_update (rowid, row) -> Wal.Update { table; rowid; row }
    in
    ignore (Wal.append (Durable.wal d) record)
  | _ -> ()

let attach_logger t tbl = Table.set_logger tbl (Some (log_mutation t tbl))

(* Autocommitted statements reach the OS as soon as they complete; only a
   session commit pays for the fsync. *)
let wal_flush t =
  match t.durable with
  | Some d when not t.recovering -> Wal.flush (Durable.wal d)
  | _ -> ()

let wal_sync t =
  match t.durable with Some d -> Wal.sync (Durable.wal d) | None -> ()

let key name = String.lowercase_ascii name

let find_table t name = Hashtbl.find_opt t.tables (key name)

let get_table t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> err "no such table: %s" name

let table_names t =
  Hashtbl.fold (fun _ tbl acc -> Table.name tbl :: acc) t.tables []
  |> List.sort String.compare

let create_table t schema =
  let k = key schema.Schema.table_name in
  if Hashtbl.mem t.tables k then err "table %s already exists" schema.Schema.table_name;
  let tbl = Table.create schema in
  Hashtbl.add t.tables k tbl;
  t.ddl_gen <- t.ddl_gen + 1;
  if t.durable <> None then begin
    log_wal t (Wal.Create_table schema);
    attach_logger t tbl
  end;
  tbl

let drop_table t name =
  let k = key name in
  let existed = Hashtbl.mem t.tables k in
  Hashtbl.remove t.tables k;
  if existed then begin
    t.ddl_gen <- t.ddl_gen + 1;
    log_wal t (Wal.Drop_table k)
  end;
  existed

let catalog t : Planner.catalog =
  { Planner.find_table = find_table t; stats = t.col_stats }

(* Per-column statistics, refreshed on demand (see Stats). *)
let analyze t name = Stats.get t.col_stats (get_table t name)

let analyze_to_string t name =
  let tbl = get_table t name in
  Printf.sprintf "%s: %d rows\n%s" name (Table.row_count tbl)
    (Stats.to_string (analyze t name) (Table.schema tbl))

(* Direct (non-SQL) fast path used by the shredders: no per-row list
   allocation — callers build the row array in place. *)
let insert_row_array t name values = ignore (Table.insert (get_table t name) values)

(* ------------------------------------------------------------------ *)
(* Bulk-load sessions: batched appends with deferred index maintenance.

   [insert_rows] / [session_insert] append straight into the table arena;
   no B+-tree is touched until [finish_session], which builds each index
   bottom-up from one sort of the appended (key, rowid) pairs
   (Btree.bulk_of_sorted, merged when the tree already had entries).
   Mid-session reads see appended rows through sequential scans but not
   through index probes — the shredders only query unindexed registry
   tables while loading. DDL composes with the session: CREATE/DROP
   during it clears the plan cache as always, and CREATE INDEX on a
   bulk-active table builds over the already-indexed range only
   (Table.end_bulk folds the rest in). After the session, the ordinary
   row-count drift rules govern plan-cache and stats invalidation.
   [abort_session] drains every touched table back to its pre-session
   length — the appended ranges were never indexed, so the tables are
   restored exactly. *)

type session = {
  s_db : t;
  mutable s_tables : (string * Table.t) list;  (* most recently touched first *)
  mutable s_memo : (string * Table.t) list;
      (* keyed on the physical name argument: shredders emit the same
         string literal for every row of a table, so a few pointer
         compares replace the per-row lowercase + catalog lookup even
         when emits alternate between tables (the binary scheme). Flushed
         whenever [ddl_gen] moves, so a drop/recreate mid-session can
         never serve a detached table. *)
  mutable s_gen : int;
  mutable s_open : bool;
  s_tx : int;  (* WAL transaction id; 0 on in-memory databases *)
}

let load_session t =
  let s_tx =
    if t.durable = None || t.recovering then 0
    else begin
      if t.cur_tx <> 0 then err "a durable bulk-load session is already open";
      let tx = t.next_tx in
      t.next_tx <- t.next_tx + 1;
      t.cur_tx <- tx;
      log_wal t (Wal.Begin tx);
      tx
    end
  in
  { s_db = t; s_tables = []; s_memo = []; s_gen = t.ddl_gen; s_open = true; s_tx }
let session_db s = s.s_db

let session_table_slow s name =
  let k = key name in
  let fresh () =
    let tbl = get_table s.s_db name in
    Table.begin_bulk tbl;
    s.s_tables <- (k, tbl) :: s.s_tables;
    tbl
  in
  match List.assoc_opt k s.s_tables with
  | None -> fresh ()
  | Some tbl -> (
    (* the table may have been dropped and recreated mid-session (the
       universal scheme rebuilds univ to widen it); never write into a
       detached table *)
    match find_table s.s_db name with
    | Some current when current == tbl -> tbl
    | _ ->
      s.s_tables <- List.filter (fun (_, t') -> t' != tbl) s.s_tables;
      fresh ())

let session_table s name =
  if not s.s_open then err "bulk-load session is already closed";
  if s.s_gen <> s.s_db.ddl_gen then begin
    (* any DDL since the last resolution: drop the memo and let the slow
       path revalidate each name against the live catalog *)
    s.s_memo <- [];
    s.s_gen <- s.s_db.ddl_gen
  end;
  let rec scan = function
    | (n, tbl) :: rest -> if n == name then tbl else scan rest
    | [] ->
      let tbl = session_table_slow s name in
      s.s_memo <- (name, tbl) :: s.s_memo;
      tbl
  in
  scan s.s_memo

let session_insert s name row = ignore (Table.insert (session_table s name) row)
let insert_rows s name rows = List.iter (fun row -> session_insert s name row) rows

let finish_session s =
  if not s.s_open then 0
  else begin
    s.s_open <- false;
    let total = ref 0 in
    List.iter
      (fun (name, tbl) ->
        let attached =
          match find_table s.s_db name with Some cur -> cur == tbl | None -> false
        in
        if attached then begin
          let added =
            Obskit.Trace.with_span ~attrs:[ ("table", name) ] "index.build" (fun () ->
                let n = Metrics.timed "db.bulk.index_build" (fun () -> Table.end_bulk tbl) in
                Obskit.Trace.add_attr "rows" (string_of_int n);
                n)
          in
          (* fold the appended range into the column statistics in one
             pass, instead of invalidating and re-scanning the whole
             table on the next planner question *)
          Stats.fold_range s.s_db.col_stats tbl
            ~base:(Table.allocated_rows tbl - added)
            ~added;
          total := !total + added
        end
        else
          (* dropped mid-session: drain quietly so any lingering reference
             sees a consistent (empty-range) table *)
          ignore (Table.abort_bulk tbl))
      (List.rev s.s_tables);
    Metrics.incr ~by:!total "db.bulk.rows";
    if s.s_tx <> 0 then begin
      let t = s.s_db in
      t.cur_tx <- 0;
      log_wal t (Wal.Commit s.s_tx);
      Failpoint.hit "wal.commit";
      wal_sync t;
      Metrics.incr "db.wal.commit"
    end;
    !total
  end

let abort_session s =
  if s.s_open then begin
    s.s_open <- false;
    let total = ref 0 in
    List.iter (fun (_, tbl) -> total := !total + Table.abort_bulk tbl) s.s_tables;
    Metrics.incr ~by:!total "db.bulk.aborted_rows";
    if s.s_tx <> 0 then begin
      let t = s.s_db in
      t.cur_tx <- 0;
      log_wal t (Wal.Abort s.s_tx);
      wal_flush t
    end
  end

let with_session t f =
  let s = load_session t in
  match f s with
  | v ->
    ignore (finish_session s);
    v
  | exception e ->
    abort_session s;
    raise e

(* ------------------------------------------------------------------ *)
(* SQL execution *)

type exec_result =
  | Rows of Executor.result
  | Affected of int
  | Done of string

let const_value params e =
  let f = Expr_eval.compile ~params [||] e in
  f [||]

(* ------------------------------------------------------------------ *)
(* Plan cache plumbing *)

let row_count_of t name = Option.map Table.row_count (find_table t name)

let cached_plan t text =
  let r = Plan_cache.find t.plan_cache ~row_count:(row_count_of t) text in
  Metrics.incr (match r with Some _ -> "db.cache.hit" | None -> "db.cache.miss");
  r

let referenced_from_tables (q : Sql_ast.query) =
  List.sort_uniq String.compare
    (List.concat_map
       (fun (s : Sql_ast.select) ->
         List.map (fun (tr : Sql_ast.table_ref) -> tr.Sql_ast.table) s.Sql_ast.from)
       q)

(* Plan [q] and remember the plan under [text], fingerprinted with the row
   counts the planner saw. *)
let plan_and_cache t ~text (q : Sql_ast.query) =
  let plan =
    Obskit.Trace.with_span "sql.plan" @@ fun () ->
    Metrics.timed "db.plan" (fun () -> Planner.plan_query (catalog t) q)
  in
  let tables =
    List.filter_map
      (fun name -> Option.map (fun c -> (name, c)) (row_count_of t name))
      (referenced_from_tables q)
  in
  Plan_cache.add t.plan_cache text ~tables plan;
  plan

let plan_for t ~text (q : Sql_ast.query) =
  match cached_plan t text with Some plan -> plan | None -> plan_and_cache t ~text q

let cache_stats t = Plan_cache.stats t.plan_cache
let reset_cache_stats t = Plan_cache.reset_stats t.plan_cache
let set_plan_cache t on = Plan_cache.set_enabled t.plan_cache on

(* Every executor invocation flows through here: inside a recorded trace
   the instrumented executor runs instead, and its operator tree is
   bridged into the trace as child spans of the sql.execute span. *)
let traced_run ?(params = [||]) t plan =
  Metrics.timed "db.execute" @@ fun () ->
  if Obskit.Trace.recording () then
    Obskit.Trace.with_span "sql.execute" (fun () ->
        let r, annot = Executor.run_analyzed ~params (catalog t) plan in
        Plan.record_spans annot;
        r)
  else Executor.run ~params (catalog t) plan

(* ------------------------------------------------------------------ *)

let exec_statement ?(params = [||]) ?cache_text t (stmt : Sql_ast.statement) =
  match stmt with
  | Sql_ast.Select_stmt q ->
    let text = match cache_text with Some s -> s | None -> Sql_ast.query_to_string q in
    let plan = plan_and_cache t ~text q in
    Rows (traced_run ~params t plan)
  | Sql_ast.Insert { table; columns; rows } ->
    let tbl = get_table t table in
    let schema = Table.schema tbl in
    let arity = Schema.arity schema in
    let positions =
      match columns with
      | None -> Array.init arity (fun i -> i)
      | Some cols -> Array.of_list (List.map (Schema.column_index schema) cols)
    in
    List.iter
      (fun row_exprs ->
        if List.length row_exprs <> Array.length positions then
          err "INSERT into %s: %d columns but %d values" table (Array.length positions)
            (List.length row_exprs);
        let row = Array.make arity Value.Null in
        List.iteri (fun i e -> row.(positions.(i)) <- const_value params e) row_exprs;
        ignore (Table.insert tbl row))
      rows;
    Affected (List.length rows)
  | Sql_ast.Update { table; sets; where } ->
    let tbl = get_table t table in
    let schema = Table.schema tbl in
    let layout = Expr_eval.layout_of_schema ~alias:(Table.name tbl) schema in
    let pred =
      match where with
      | None -> fun _ -> true
      | Some w -> Expr_eval.compile_predicate ~params layout w
    in
    let setters =
      List.map
        (fun (c, e) -> (Schema.column_index schema c, Expr_eval.compile ~params layout e))
        sets
    in
    let victims = Table.fold (fun acc rowid row -> if pred row then (rowid, row) :: acc else acc) [] tbl in
    List.iter
      (fun (rowid, row) ->
        let row' = Array.copy row in
        List.iter (fun (ci, f) -> row'.(ci) <- f row) setters;
        ignore (Table.update tbl rowid row'))
      victims;
    Affected (List.length victims)
  | Sql_ast.Delete { table; where } ->
    let tbl = get_table t table in
    let layout = Expr_eval.layout_of_schema ~alias:(Table.name tbl) (Table.schema tbl) in
    let pred =
      match where with
      | None -> fun _ -> true
      | Some w -> Expr_eval.compile_predicate ~params layout w
    in
    let victims = Table.fold (fun acc rowid row -> if pred row then rowid :: acc else acc) [] tbl in
    List.iter (fun rowid -> ignore (Table.delete tbl rowid)) victims;
    Affected (List.length victims)
  | Sql_ast.Create_table { table; defs; if_not_exists } ->
    if if_not_exists && Option.is_some (find_table t table) then Done "table exists"
    else begin
      let columns =
        List.map
          (fun d -> Schema.column d.Sql_ast.def_name ~nullable:(not d.Sql_ast.def_not_null) d.Sql_ast.def_ty)
          defs
      in
      ignore (create_table t (Schema.make table columns));
      Plan_cache.clear t.plan_cache;
      Done (Printf.sprintf "created table %s" table)
    end
  | Sql_ast.Create_index { index; table; columns; if_not_exists } ->
    let tbl = get_table t table in
    if if_not_exists && Option.is_some (Table.find_index tbl index) then Done "index exists"
    else begin
      ignore (Table.create_index tbl ~index_name:index ~columns);
      log_wal t (Wal.Create_index { table = Table.name tbl; index; columns });
      Plan_cache.clear t.plan_cache;
      Done (Printf.sprintf "created index %s" index)
    end
  | Sql_ast.Drop_table { table; if_exists } ->
    if drop_table t table then begin
      Plan_cache.clear t.plan_cache;
      Done (Printf.sprintf "dropped table %s" table)
    end
    else if if_exists then Done "no such table"
    else err "no such table: %s" table
  | Sql_ast.Drop_index { index; table } ->
    let tbl = get_table t table in
    if Table.drop_index tbl index then begin
      log_wal t (Wal.Drop_index { table = Table.name tbl; index });
      Plan_cache.clear t.plan_cache;
      Done (Printf.sprintf "dropped index %s" index)
    end
    else err "no such index: %s on %s" index table

(* Autocommit durability: any statement that changed something leaves its
   WAL records with the OS before control returns (fsync waits for an
   explicit checkpoint or a session commit). *)
let exec_statement ?params ?cache_text t stmt =
  let r = exec_statement ?params ?cache_text t stmt in
  (match r with Rows _ -> () | Affected _ | Done _ -> wal_flush t);
  r

(* Text entry point: a plan-cache hit on the raw statement text skips the
   lexer, parser, and planner entirely. *)
let parse_timed sql =
  Obskit.Trace.with_span "sql.parse" @@ fun () ->
  Metrics.timed "db.parse" (fun () -> Sql_parser.parse_statement sql)

let exec ?(params = [||]) t sql =
  match cached_plan t sql with
  | Some plan -> Rows (traced_run ~params t plan)
  | None -> exec_statement ~params ~cache_text:sql t (parse_timed sql)

let exec_script t sql = List.map (exec_statement t) (Sql_parser.parse_script sql)

(* SELECT or fail; convenience for callers that expect rows back. *)
let query ?params t sql =
  match exec ?params t sql with
  | Rows r -> r
  | Affected _ | Done _ -> err "not a SELECT statement: %s" sql

(* ------------------------------------------------------------------ *)
(* Prepared statements. A prepared handle pins the parsed query, not the
   plan: each execution fetches the plan from the cache (replanning only
   when DDL or stats drift invalidated it), so handles never go stale. *)

type prepared = { p_text : string; p_query : Sql_ast.query }

(* Planning is deferred to the first execution (or [prepared_plan]), so
   constructing a handle touches the cache at most once per run. *)
let prepare_query t (q : Sql_ast.query) =
  ignore t;
  { p_text = Sql_ast.query_to_string q; p_query = q }

let prepare t sql =
  match parse_timed sql with
  | Sql_ast.Select_stmt q ->
    let p = { p_text = sql; p_query = q } in
    ignore (plan_for t ~text:sql q);
    p
  | _ -> err "prepare supports only SELECT statements"

let prepared_text p = p.p_text
let prepared_plan t p = plan_for t ~text:p.p_text p.p_query

let query_prepared ?(params = [||]) t p =
  let plan = prepared_plan t p in
  traced_run ~params t plan

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE: same planning pipeline (including the plan cache), but
   the executor wraps every operator in a counting cursor and returns the
   executed plan with actual row counts and timings. *)

let query_prepared_analyzed ?(params = [||]) t p =
  let plan = prepared_plan t p in
  Metrics.timed "db.execute" (fun () -> Executor.run_analyzed ~params (catalog t) plan)

let query_analyzed ?(params = [||]) t sql =
  let run plan =
    Metrics.timed "db.execute" (fun () -> Executor.run_analyzed ~params (catalog t) plan)
  in
  match cached_plan t sql with
  | Some plan -> run plan
  | None -> (
    match parse_timed sql with
    | Sql_ast.Select_stmt q -> run (plan_and_cache t ~text:sql q)
    | _ -> err "not a SELECT statement: %s" sql)

let plan_of t sql =
  match Sql_parser.parse_statement sql with
  | Sql_ast.Select_stmt q -> Planner.plan_query (catalog t) q
  | _ -> err "EXPLAIN supports only SELECT statements"

let explain t sql = Plan.to_string (plan_of t sql)

let explain_analyze ?params t sql =
  let r, annot = query_analyzed ?params t sql in
  ignore r;
  Plan.annotated_to_string annot

(* ------------------------------------------------------------------ *)
(* Storage statistics (benchmark experiment T1) *)

type table_stats = {
  st_table : string;
  st_rows : int;
  st_bytes : int;
  st_indexes : int;
  st_index_entries : int;
}

let stats t =
  List.map
    (fun name ->
      let tbl = get_table t name in
      let ixs = Table.indexes tbl in
      {
        st_table = name;
        st_rows = Table.row_count tbl;
        st_bytes = Table.byte_size tbl;
        st_indexes = List.length ixs;
        st_index_entries =
          List.fold_left (fun acc ix -> acc + Btree.entry_count ix.Table.tree) 0 ixs;
      })
    (table_names t)

let total_rows t = List.fold_left (fun acc s -> acc + s.st_rows) 0 (stats t)
let total_bytes t = List.fold_left (fun acc s -> acc + s.st_bytes) 0 (stats t)

(* ------------------------------------------------------------------ *)
(* Persistence: a SQL-script dump that [restore] replays. Tables are
   emitted in name order; inserts preserve live-row order; indexes are
   rebuilt after the data so restore cost matches a bulk load. *)

let dump t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun name ->
      let tbl = get_table t name in
      let schema = Table.schema tbl in
      Buffer.add_string buf
        (Printf.sprintf "CREATE TABLE %s (%s);\n" (Table.name tbl)
           (String.concat ", "
              (Array.to_list
                 (Array.map
                    (fun c ->
                      Printf.sprintf "%s %s%s" c.Schema.col_name
                        (Value.ty_to_string c.Schema.col_ty)
                        (if c.Schema.nullable then "" else " NOT NULL"))
                    schema.Schema.columns))));
      Table.iter
        (fun _ row ->
          Buffer.add_string buf
            (Printf.sprintf "INSERT INTO %s VALUES (%s);\n" (Table.name tbl)
               (String.concat ", " (Array.to_list (Array.map Value.to_sql_literal row)))))
        tbl;
      List.iter
        (fun ix ->
          let cols =
            Array.to_list
              (Array.map (fun ci -> schema.Schema.columns.(ci).Schema.col_name) ix.Table.key_columns)
          in
          Buffer.add_string buf
            (Printf.sprintf "CREATE INDEX %s ON %s (%s);\n" ix.Table.index_name (Table.name tbl)
               (String.concat ", " cols)))
        (Table.indexes tbl))
    (table_names t);
  Buffer.contents buf

(* Replaying a dump is a bulk load, not a row-at-a-time INSERT storm: the
   plain VALUES inserts stream through a load session (deferred index
   maintenance, bottom-up rebuilds at the end), and every table is
   analyzed once the data is in — so a restored database both loads at
   bulk speed and plans from the same full-scan statistics the original
   had, instead of planning blind until the first drift re-scan. *)
let restore script =
  let db = create () in
  let stmts = Sql_parser.parse_script script in
  let s = load_session db in
  (try
     List.iter
       (fun stmt ->
         match stmt with
         | Sql_ast.Insert { table; columns = None; rows } ->
           List.iter
             (fun row_exprs ->
               session_insert s table
                 (Array.of_list (List.map (const_value [||]) row_exprs)))
             rows
         | _ -> ignore (exec_statement db stmt))
       stmts
   with e ->
     abort_session s;
     raise e);
  ignore (finish_session s);
  List.iter (fun name -> ignore (analyze db name)) (table_names db);
  db

let dump_to_file t path =
  let oc = open_out_bin path in
  output_string oc (dump t);
  close_out oc

let restore_from_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  restore s

(* ------------------------------------------------------------------ *)
(* Durable databases: page checkpoints + WAL (see Durable, Wal). *)

let checkpoint t =
  match t.durable with
  | None -> ()
  | Some d ->
    if t.cur_tx <> 0 then err "cannot checkpoint during a bulk-load session";
    Obskit.Trace.with_span "db.checkpoint" @@ fun () ->
    let wal = Durable.wal d in
    (* Everything the image will absorb must be durable first: if the
       generation flip fails partway, the WAL still carries it. *)
    Wal.sync wal;
    let tables =
      List.map
        (fun name ->
          let tbl = get_table t name in
          let schema = Table.schema tbl in
          {
            Durable.src_schema = schema;
            src_indexes =
              List.map
                (fun ix ->
                  ( ix.Table.index_name,
                    Array.to_list
                      (Array.map
                         (fun ci -> schema.Schema.columns.(ci).Schema.col_name)
                         ix.Table.key_columns) ))
                (Table.indexes tbl);
            src_iter = (fun f -> Table.iter_slots tbl f);
          })
        (table_names t)
    in
    Durable.checkpoint d ~tables
      ~stats:(Stats.export t.col_stats)
      ~last_lsn:(Wal.last_lsn wal)

let close t =
  match t.durable with
  | None -> ()
  | Some d ->
    checkpoint t;
    Durable.close d;
    t.durable <- None

let abandon t =
  match t.durable with
  | None -> ()
  | Some d ->
    Durable.abandon d;
    t.durable <- None;
    t.cur_tx <- 0

(* WAL replay. Redo repeats history exactly — including the appends of
   transactions that never committed and the truncations of live aborts —
   so row ids always line up with what the log recorded. Undo then
   truncates each loser's appended tail per table, which is precisely
   what a live [abort_session] would have done ([Table.abort_bulk] is a
   truncation of the never-indexed range). DDL is transaction 0: redone
   unconditionally, never undone. *)
let replay t records =
  let touched = Hashtbl.create 16 in (* table key -> unit; stats refresh *)
  let tx_tails = Hashtbl.create 8 in (* tx -> (table key, first rowid) list *)
  let ended = Hashtbl.create 8 in (* committed or aborted *)
  let redone = ref 0 in
  let undone = ref 0 in
  let max_tx = ref 0 in
  let see_tx tx = if tx > !max_tx then max_tx := tx in
  let note_tail tx name rowid =
    if tx <> 0 then begin
      see_tx tx;
      let tails = try Hashtbl.find tx_tails tx with Not_found -> [] in
      if not (List.mem_assoc (key name) tails) then
        Hashtbl.replace tx_tails tx ((key name, rowid) :: tails)
    end
  in
  let truncate_tails tx =
    match Hashtbl.find_opt tx_tails tx with
    | None -> ()
    | Some tails ->
      List.iter
        (fun (k, first) ->
          match Hashtbl.find_opt t.tables k with
          | None -> () (* dropped later in the log; nothing left to undo *)
          | Some tbl ->
            undone := !undone + Table.recover_truncate tbl first;
            Table.rebuild_indexes tbl)
        tails;
      Hashtbl.remove tx_tails tx
  in
  let corrupt fmt = Printf.ksprintf (fun s -> err "WAL replay: %s" s) fmt in
  let find name =
    match find_table t name with
    | Some tbl -> tbl
    | None -> corrupt "no such table %s" name
  in
  let redo_one (_lsn, record) =
      match record with
      | Wal.Begin tx -> see_tx tx
      | Wal.Commit tx ->
        see_tx tx;
        Hashtbl.replace ended tx ();
        Hashtbl.remove tx_tails tx
      | Wal.Abort tx ->
        see_tx tx;
        Hashtbl.replace ended tx ();
        truncate_tails tx;
        incr redone
      | Wal.Insert { tx; table; rowid; row } ->
        let tbl = find table in
        if Table.allocated_rows tbl <> rowid then
          corrupt "%s: insert at row %d but arena holds %d rows" table rowid
            (Table.allocated_rows tbl);
        note_tail tx table rowid;
        ignore (Table.insert tbl row);
        Hashtbl.replace touched (key table) ();
        incr redone
      | Wal.Delete { table; rowid } ->
        ignore (Table.delete (find table) rowid);
        Hashtbl.replace touched (key table) ();
        incr redone
      | Wal.Update { table; rowid; row } ->
        ignore (Table.update (find table) rowid row);
        Hashtbl.replace touched (key table) ();
        incr redone
      | Wal.Create_table schema ->
        ignore (create_table t schema);
        incr redone
      | Wal.Drop_table name ->
        ignore (drop_table t name);
        Hashtbl.remove touched (key name);
        incr redone
      | Wal.Create_index { table; index; columns } ->
        let tbl = find table in
        if Table.find_index tbl index = None then begin
          ignore (Table.create_index tbl ~index_name:index ~columns);
          incr redone
        end
      | Wal.Drop_index { table; index } ->
        if Table.drop_index (find table) index then incr redone
  in
  Obskit.Trace.with_span ~attrs:[ ("records", string_of_int (List.length records)) ]
    "recovery.redo" (fun () ->
      Metrics.timed "db.recovery.redo" (fun () -> List.iter redo_one records));
  (* Losers: begun, some work logged, neither Commit nor Abort survived. *)
  let losers =
    Hashtbl.fold (fun tx _ acc -> if Hashtbl.mem ended tx then acc else tx :: acc) tx_tails []
  in
  Obskit.Trace.with_span ~attrs:[ ("losers", string_of_int (List.length losers)) ]
    "recovery.undo" (fun () ->
      Metrics.timed "db.recovery.undo" (fun () -> List.iter truncate_tails losers));
  Hashtbl.iter
    (fun k () ->
      match Hashtbl.find_opt t.tables k with
      | Some tbl -> Stats.refresh t.col_stats tbl
      | None -> ())
    touched;
  t.next_tx <- !max_tx + 1;
  (!redone, !undone, List.length losers)

let open_durable ?page_size ?pool_pages dir =
  Obskit.Trace.with_span ~attrs:[ ("dir", dir) ] "db.open_durable" @@ fun () ->
  let d, image, scan = Durable.open_dir ?page_size ?pool_pages dir in
  let t = create () in
  t.recovering <- true;
  (match image with
  | None -> ()
  | Some img ->
    Obskit.Trace.with_span
      ~attrs:[ ("tables", string_of_int (List.length img.Durable.im_tables)) ]
      "recovery.image"
      (fun () ->
        Metrics.timed "db.recovery.image" @@ fun () ->
        List.iter
          (fun (ti : Durable.table_image) ->
            let tbl = Table.restore_slots ti.Durable.ti_schema ti.Durable.ti_slots in
            Hashtbl.add t.tables (key ti.Durable.ti_schema.Schema.table_name) tbl;
            List.iter
              (fun (index_name, columns) -> ignore (Table.create_index tbl ~index_name ~columns))
              ti.Durable.ti_indexes)
          img.Durable.im_tables;
        t.ddl_gen <- t.ddl_gen + 1;
        Stats.import t.col_stats img.Durable.im_stats));
  let ckpt = Durable.checkpoint_lsn d in
  let records = List.filter (fun (lsn, _) -> lsn > ckpt) scan.Wal.sc_records in
  let redone, undone, losers =
    match records with
    | [] -> (0, 0, 0)
    | _ ->
      Obskit.Trace.with_span "db.recovery" (fun () ->
          Metrics.timed "db.recovery" (fun () -> replay t records))
  in
  let torn = scan.Wal.sc_total_bytes - scan.Wal.sc_valid_bytes in
  (* The recovery counters exist (at zero) after every durable open, so a
     clean open still exposes the series; a crash recovery adds to them. *)
  Metrics.incr ~by:redone "db.recovery.redo_records";
  Metrics.incr ~by:undone "db.recovery.undone_rows";
  Metrics.incr ~by:losers "db.recovery.losers";
  Metrics.incr ~by:torn "db.recovery.torn_bytes";
  t.recovering <- false;
  t.durable <- Some d;
  Hashtbl.iter (fun _ tbl -> attach_logger t tbl) t.tables;
  t.last_recovery <-
    Some
      {
        rc_scanned = List.length scan.Wal.sc_records;
        rc_redone = redone;
        rc_undone = undone;
        rc_losers = losers;
        rc_torn_bytes = torn;
      };
  (* Anything replayed (or any torn tail cut) is folded into a fresh
     checkpoint immediately: reopening after a crash leaves a clean
     directory, and a second crash replays nothing twice. *)
  if records <> [] || torn > 0 then checkpoint t;
  t

(* Render a result set as an aligned text table (CLI / examples). *)
let render_result (r : Executor.result) =
  let cells = r.Executor.columns :: List.map (fun row -> Array.to_list (Array.map Value.to_string row)) r.Executor.rows in
  let ncols = List.length r.Executor.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell))
    cells;
  let line cells =
    String.concat " | "
      (List.mapi (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ') cells)
  in
  let sep = String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  String.concat "\n" (line r.Executor.columns :: sep :: List.map line (List.tl cells))
