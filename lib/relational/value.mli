(** SQL values and column types.

    The engine is dynamically typed at the row level but statically typed
    at the schema level; {!coerce} enforces column types on insert. *)

type ty = TInt | TFloat | TBool | TText

type t = Null | Int of int | Float of float | Bool of bool | Text of string

exception Type_error of string

val ty_to_string : ty -> string
val ty_of_string : string -> ty option
(** Accepts the usual SQL spellings ([INT]/[INTEGER]/[BIGINT], [VARCHAR],
    ...); [None] for unknown names. *)

val type_of : t -> ty option
(** [None] for [Null]. *)

val is_null : t -> bool

val to_string : t -> string
(** Display form ([NULL], [TRUE], integral floats as [2.0], ...). *)

val to_sql_literal : t -> string
(** Render as a SQL literal that parses back to exactly this value:
    strings quoted with [''] doubling, floats as the shortest decimal
    that round-trips bit-for-bit (always with a [.0] so they lex as
    floats, preserving [-0.0]), non-finite floats as the [NAN] / [INF] /
    [-INF] keywords. *)

val compare : t -> t -> int
(** Total order used by ORDER BY, B+-trees and grouping: NULL first, then
    booleans, numbers (ints and floats compared numerically), text. *)

val equal : t -> t -> bool

val sql_compare : t -> t -> int option
(** SQL comparison semantics: [None] (unknown) if either side is NULL. *)

val coerce : ty -> t -> t
(** Coerce a value into a column type (NULL passes through); used on
    INSERT. @raise Type_error when the value cannot be represented. *)

val as_float : t -> float option
(** Numeric view used by arithmetic and numeric aggregates. *)

val hash : t -> int
