(** Crash-point injection for durability testing: arm a named point and
    the durability layer raises {!Injected_crash} at the matching step —
    exactly where a process crash would cut. A point fires at most once
    per arming. *)

exception Injected_crash of string

val arm : string option -> unit
(** [arm (Some point)] schedules the next {!hit} on [point] to raise;
    [arm None] disarms. *)

val armed_point : unit -> string option

val hit : string -> unit
(** Called by the durability layer at each named step.
    @raise Injected_crash when that point is armed. *)

val points : (string * string) list
(** Known point names with descriptions (CLI help). *)
