(** B+-tree secondary index: composite keys (compared lexicographically) to
    postings lists of row ids. Non-unique. Leaves are chained for range
    scans; deletion is lazy (no rebalancing). *)

type key = Value.t array

val compare_key : key -> key -> int
val key_has_prefix : key -> key -> bool

type t

val create : unit -> t
val insert : t -> key -> int -> unit

val bulk_of_groups : (key * int list) array -> t
(** Bottom-up build from pre-grouped postings: keys strictly ascending,
    each posting list most recent first (head = largest row id). Lets
    callers hash-group row ids in O(rows) and sort only the distinct keys
    — the win on low-cardinality columns where sorting every (key, rowid)
    pair would dwarf the per-row insert cost it replaces.
    @raise Invalid_argument on unsorted keys or an empty posting list. *)

val bulk_of_arrays : ?check:bool -> key array -> int list array -> t
(** {!bulk_of_groups} on parallel key/postings arrays — the
    allocation-free shape [Table]'s bulk loader produces. [~check:false]
    skips the sortedness validation for callers whose construction
    guarantees it.
    @raise Invalid_argument on a length mismatch, or (when checking) on
    unsorted keys or an empty posting list. *)

val bulk_of_sorted : (key * int) array -> t
(** Bottom-up build from pairs sorted by key, duplicates adjacent with the
    row ids of equal keys in insertion order. Observationally equal to
    repeated {!insert} over the same sequence — same postings, same
    ascending iteration — while packing leaves fuller than incremental
    splits would. @raise Invalid_argument when the keys are not sorted. *)

val bulk_merge : t -> (key * int) array -> t
(** A new tree holding this tree's entries plus the given sorted pairs.
    The pairs must be new entries (bulk appends only ever add fresh,
    larger row ids): on equal keys they land after the existing postings,
    preserving insertion order. *)

val remove : t -> key -> int -> unit
(** Remove one (key, rowid) posting if present. *)

val lookup : t -> key -> int list
(** Row ids for an exact key, in insertion order. *)

type bound = Unbounded | Inclusive of key | Exclusive of key

val iter_range : t -> lower:bound -> upper:bound -> (key -> int -> unit) -> unit
(** Visit (key, rowid) pairs with the key within the bounds, ascending. *)

val range : t -> lower:bound -> upper:bound -> (key * int) list
val iter : t -> (key -> int -> unit) -> unit
val iter_prefix : t -> key -> (key -> int -> unit) -> unit
(** Visit entries whose key starts with the given prefix (for composite
    indexes probed on a prefix of their columns). *)

val entry_count : t -> int
val distinct_keys : t -> int
val height : t -> int

val check_invariants : t -> bool
(** Structural invariants (key order, separator bounds, non-empty
    postings); used by tests. *)
