(** Runtime expression evaluation.

    Expressions compile once against a row layout into closures, so per-row
    evaluation never resolves names. Semantics follow SQL: three-valued
    logic (NULL propagates; AND/OR are Kleene), integer division truncates,
    LIKE supports [%] and [_]. *)

type slot = { slot_alias : string; slot_name : string }

type layout = slot array

exception Eval_error of string

val layout_concat : layout -> layout -> layout
val layout_of_schema : alias:string -> Schema.t -> layout

val resolve : layout -> table:string option -> column:string -> int
(** Slot position of a column reference; unqualified names must be
    unambiguous. @raise Eval_error otherwise. *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE: [%] matches any sequence, [_] any single character. *)

val scalar_call : string -> Value.t list -> Value.t
(** The scalar function library: [length], [lower], [upper], [abs],
    [substr], [coalesce], [nullif], [instr], [to_number] (NULL on
    non-numeric text), [cast_int]/[cast_float]/[cast_text].
    @raise Eval_error for unknown functions. *)

val compile : ?params:Value.t array -> layout -> Sql_ast.expr -> Value.t array -> Value.t
(** Aggregate calls must have been rewritten away by the planner.
    [?N] placeholders resolve against [params] (1-based) at compile time;
    @raise Eval_error when a placeholder is unbound. *)

val is_true : Value.t -> bool
(** WHERE-clause truth: NULL and FALSE both reject. *)

val compile_predicate : ?params:Value.t array -> layout -> Sql_ast.expr -> Value.t array -> bool
