(* Runtime expression evaluation. Expressions are compiled once against a
   row layout into closures, so per-row evaluation never resolves names.

   Semantics follow SQL: three-valued logic (NULL propagates through
   comparisons and arithmetic; AND/OR are Kleene), integer division
   truncates, LIKE supports % and _. *)

open Sql_ast

type slot = { slot_alias : string; slot_name : string }

type layout = slot array

exception Eval_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let layout_concat (a : layout) (b : layout) : layout = Array.append a b

let layout_of_schema ~alias (schema : Schema.t) : layout =
  Array.map (fun c -> { slot_alias = alias; slot_name = c.Schema.col_name }) schema.Schema.columns

(* Resolve a column reference to a slot position. Unqualified names must be
   unambiguous across the layout. *)
let resolve (layout : layout) ~table ~column =
  let lcol = String.lowercase_ascii column in
  let matches i s =
    String.equal (String.lowercase_ascii s.slot_name) lcol
    && (match table with
       | None -> true
       | Some t -> String.equal (String.lowercase_ascii s.slot_alias) (String.lowercase_ascii t))
    && i >= 0
  in
  let found = ref [] in
  Array.iteri (fun i s -> if matches i s then found := i :: !found) layout;
  match !found with
  | [ i ] -> i
  | [] ->
    err "unknown column %s%s"
      (match table with Some t -> t ^ "." | None -> "")
      column
  | _ ->
    err "ambiguous column %s%s"
      (match table with Some t -> t ^ "." | None -> "")
      column

(* SQL LIKE: % matches any sequence, _ any single character. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized recursion over (pi, si) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi >= np then si >= ns
        else
          match pattern.[pi] with
          | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.add memo (pi, si) r;
      r
  in
  go 0 0

let bool3_and a b =
  match (a, b) with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | (Value.Bool true | Value.Null), (Value.Bool true | Value.Null) -> Value.Null
  | _ -> err "AND applied to non-boolean values"

let bool3_or a b =
  match (a, b) with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | (Value.Bool false | Value.Null), (Value.Bool false | Value.Null) -> Value.Null
  | _ -> err "OR applied to non-boolean values"

let bool3_not = function
  | Value.Bool b -> Value.Bool (not b)
  | Value.Null -> Value.Null
  | v -> err "NOT applied to %s" (Value.to_string v)

let arith op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
    match op with
    | Add -> Value.Int (x + y)
    | Sub -> Value.Int (x - y)
    | Mul -> Value.Int (x * y)
    | Div -> if y = 0 then err "division by zero" else Value.Int (x / y)
    | Mod -> if y = 0 then err "modulo by zero" else Value.Int (x mod y)
    | _ -> assert false)
  | _ -> (
    match (Value.as_float a, Value.as_float b) with
    | Some x, Some y -> (
      match op with
      | Add -> Value.Float (x +. y)
      | Sub -> Value.Float (x -. y)
      | Mul -> Value.Float (x *. y)
      | Div -> if y = 0.0 then err "division by zero" else Value.Float (x /. y)
      | Mod -> err "modulo requires integers"
      | _ -> assert false)
    | _ ->
      err "arithmetic on non-numeric values %s and %s" (Value.to_string a) (Value.to_string b))

let compare_op op a b =
  match Value.sql_compare a b with
  | None -> Value.Null
  | Some c ->
    Value.Bool
      (match op with
      | Eq -> c = 0
      | Neq -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
      | _ -> assert false)

let as_text = function
  | Value.Null -> None
  | v -> Some (Value.to_string v)

(* Scalar function library. *)
let scalar_call func (args : Value.t list) =
  match (String.lowercase_ascii func, args) with
  | "length", [ v ] -> (
    match as_text v with None -> Value.Null | Some s -> Value.Int (String.length s))
  | "lower", [ v ] -> (
    match as_text v with None -> Value.Null | Some s -> Value.Text (String.lowercase_ascii s))
  | "upper", [ v ] -> (
    match as_text v with None -> Value.Null | Some s -> Value.Text (String.uppercase_ascii s))
  | "abs", [ Value.Int i ] -> Value.Int (abs i)
  | "abs", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "abs", [ Value.Null ] -> Value.Null
  | "substr", [ v; Value.Int start ] -> (
    match as_text v with
    | None -> Value.Null
    | Some s ->
      let start = max 1 start in
      if start > String.length s then Value.Text ""
      else Value.Text (String.sub s (start - 1) (String.length s - start + 1)))
  | "substr", [ v; Value.Int start; Value.Int len ] -> (
    match as_text v with
    | None -> Value.Null
    | Some s ->
      let start = max 1 start in
      if start > String.length s || len <= 0 then Value.Text ""
      else Value.Text (String.sub s (start - 1) (min len (String.length s - start + 1))))
  | "coalesce", args -> (
    match List.find_opt (fun v -> not (Value.is_null v)) args with
    | Some v -> v
    | None -> Value.Null)
  | "nullif", [ a; b ] -> if Value.equal a b then Value.Null else a
  | "instr", [ v; w ] -> (
    match (as_text v, as_text w) with
    | Some s, Some sub ->
      let n = String.length s and m = String.length sub in
      let rec find i =
        if i + m > n then 0 else if String.sub s i m = sub then i + 1 else find (i + 1)
      in
      Value.Int (find 0)
    | _ -> Value.Null)
  | "to_number", [ v ] -> (
    (* XPath-style numeric cast: NULL (not an error) on non-numeric text,
       so comparisons on it are simply unknown *)
    match v with
    | Value.Int _ | Value.Float _ -> v
    | Value.Null | Value.Bool _ -> Value.Null
    | Value.Text s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> Value.Float f
      | None -> (
        match int_of_string_opt (String.trim s) with
        | Some i -> Value.Int i
        | None -> Value.Null)))
  | "cast_int", [ v ] -> Value.coerce Value.TInt v
  | "cast_float", [ v ] -> Value.coerce Value.TFloat v
  | "cast_text", [ v ] -> Value.coerce Value.TText v
  | f, args -> err "unknown function %s/%d" f (List.length args)

(* Compile an expression against a layout. Aggregate calls must have been
   rewritten away by the planner before compilation. Parameter placeholders
   resolve against [params] at compile time, so a cached plan can be
   re-compiled cheaply with fresh bindings on every execution. *)
let rec compile_with (params : Value.t array) (layout : layout) (e : expr) :
    Value.t array -> Value.t =
  match e with
  | Lit v -> fun _ -> v
  | Param n ->
    if n < 1 || n > Array.length params then err "unbound parameter ?%d" n
    else
      let v = params.(n - 1) in
      fun _ -> v
  | Col { table; column } ->
    let i = resolve layout ~table ~column in
    fun row -> row.(i)
  | Binop (And, a, b) ->
    let fa = compile_with params layout a and fb = compile_with params layout b in
    fun row -> bool3_and (fa row) (fb row)
  | Binop (Or, a, b) ->
    let fa = compile_with params layout a and fb = compile_with params layout b in
    fun row -> bool3_or (fa row) (fb row)
  | Binop (Concat, a, b) ->
    let fa = compile_with params layout a and fb = compile_with params layout b in
    fun row -> (
      match (fa row, fb row) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | x, y -> Value.Text (Value.to_string x ^ Value.to_string y))
  | Binop (((Add | Sub | Mul | Div | Mod) as op), a, b) ->
    let fa = compile_with params layout a and fb = compile_with params layout b in
    fun row -> arith op (fa row) (fb row)
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
    let fa = compile_with params layout a and fb = compile_with params layout b in
    fun row -> compare_op op (fa row) (fb row)
  | Unop (Neg, a) ->
    let fa = compile_with params layout a in
    fun row -> (
      match fa row with
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | Value.Null -> Value.Null
      | v -> err "cannot negate %s" (Value.to_string v))
  | Unop (Not, a) ->
    let fa = compile_with params layout a in
    fun row -> bool3_not (fa row)
  | Is_null { negated; arg } ->
    let fa = compile_with params layout arg in
    fun row ->
      let isnull = Value.is_null (fa row) in
      Value.Bool (if negated then not isnull else isnull)
  | Like { negated; arg; pattern } ->
    let fa = compile_with params layout arg and fp = compile_with params layout pattern in
    fun row -> (
      match (fa row, fp row) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | v, p ->
        let m = like_match ~pattern:(Value.to_string p) (Value.to_string v) in
        Value.Bool (if negated then not m else m))
  | In_list { negated; arg; items } ->
    let fa = compile_with params layout arg in
    let fitems = List.map (compile_with params layout) items in
    fun row ->
      let v = fa row in
      if Value.is_null v then Value.Null
      else
        let hit = List.exists (fun f -> Value.equal (f row) v) fitems in
        Value.Bool (if negated then not hit else hit)
  | Between { arg; low; high } ->
    let fa = compile_with params layout arg and fl = compile_with params layout low and fh = compile_with params layout high in
    fun row ->
      bool3_and (compare_op Ge (fa row) (fl row)) (compare_op Le (fa row) (fh row))
  | Call { func; star; distinct = _; args } ->
    if star || List.mem (String.lowercase_ascii func) aggregate_functions then
      err "aggregate %s used outside of an aggregation context" func
    else
      let fargs = List.map (compile_with params layout) args in
      fun row -> scalar_call func (List.map (fun f -> f row) fargs)

let compile ?(params = [||]) layout e = compile_with params layout e

(* WHERE-clause truth: NULL and FALSE both reject the row. *)
let is_true = function Value.Bool true -> true | _ -> false

let compile_predicate ?(params = [||]) layout e =
  let f = compile_with params layout e in
  fun row -> is_true (f row)
