(* Write-ahead log: every record is framed [u32 len][u32 crc][payload]
   where the payload starts with the record's log sequence number and
   kind. Appends stage into a buffer flushed to the file descriptor at
   64 KiB, at every commit, and at every sync point; [scan] replays a log
   file from disk and stops at the first frame whose length or CRC does
   not check out — after a torn write, the valid prefix is exactly the
   durable history.

   Recovery semantics live one layer up (Database): row mutations carry
   the transaction that made them (0 = autocommitted), DDL is always
   transaction 0 and redone unconditionally, and a transaction is durable
   iff its Commit record survives in the valid prefix. *)

type record =
  | Begin of int
  | Commit of int
  | Abort of int
  | Insert of { tx : int; table : string; rowid : int; row : Value.t array }
  | Delete of { table : string; rowid : int }
  | Update of { table : string; rowid : int; row : Value.t array }
  | Create_table of Schema.t
  | Drop_table of string
  | Create_index of { table : string; index : string; columns : string list }
  | Drop_index of { table : string; index : string }

let flush_threshold = 64 * 1024
let max_frame = 1 lsl 28  (* sanity bound during scans *)

type t = {
  path : string;
  fd : Unix.file_descr;
  staged : Buffer.t;
  mutable next_lsn : int;
}

(* ------------------------------------------------------------------ *)
(* Record payloads *)

let ty_tag = function
  | Value.TInt -> 0
  | Value.TFloat -> 1
  | Value.TBool -> 2
  | Value.TText -> 3

let ty_of_tag = function
  | 0 -> Value.TInt
  | 1 -> Value.TFloat
  | 2 -> Value.TBool
  | 3 -> Value.TText
  | n -> raise (Codec.Corrupt (Printf.sprintf "unknown column type tag %d" n))

let add_schema b (s : Schema.t) =
  Codec.add_string b s.Schema.table_name;
  Codec.add_u16 b (Array.length s.Schema.columns);
  Array.iter
    (fun (c : Schema.column) ->
      Codec.add_string b c.Schema.col_name;
      Codec.add_u8 b (ty_tag c.Schema.col_ty);
      Codec.add_u8 b (if c.Schema.nullable then 1 else 0))
    s.Schema.columns

let get_schema r =
  let name = Codec.get_string r in
  let n = Codec.get_u16 r in
  let cols =
    List.init n (fun _ ->
        let col_name = Codec.get_string r in
        let ty = ty_of_tag (Codec.get_u8 r) in
        let nullable = Codec.get_u8 r = 1 in
        Schema.column col_name ~nullable ty)
  in
  Schema.make name cols

let add_record b = function
  | Begin tx ->
    Codec.add_u8 b 1;
    Codec.add_u32 b tx
  | Commit tx ->
    Codec.add_u8 b 2;
    Codec.add_u32 b tx
  | Abort tx ->
    Codec.add_u8 b 3;
    Codec.add_u32 b tx
  | Insert { tx; table; rowid; row } ->
    Codec.add_u8 b 4;
    Codec.add_u32 b tx;
    Codec.add_string b table;
    Codec.add_u64 b rowid;
    Codec.add_row b row
  | Delete { table; rowid } ->
    Codec.add_u8 b 5;
    Codec.add_string b table;
    Codec.add_u64 b rowid
  | Update { table; rowid; row } ->
    Codec.add_u8 b 6;
    Codec.add_string b table;
    Codec.add_u64 b rowid;
    Codec.add_row b row
  | Create_table schema ->
    Codec.add_u8 b 7;
    add_schema b schema
  | Drop_table name ->
    Codec.add_u8 b 8;
    Codec.add_string b name
  | Create_index { table; index; columns } ->
    Codec.add_u8 b 9;
    Codec.add_string b table;
    Codec.add_string b index;
    Codec.add_u16 b (List.length columns);
    List.iter (Codec.add_string b) columns
  | Drop_index { table; index } ->
    Codec.add_u8 b 10;
    Codec.add_string b table;
    Codec.add_string b index

let get_record r =
  match Codec.get_u8 r with
  | 1 -> Begin (Codec.get_u32 r)
  | 2 -> Commit (Codec.get_u32 r)
  | 3 -> Abort (Codec.get_u32 r)
  | 4 ->
    let tx = Codec.get_u32 r in
    let table = Codec.get_string r in
    let rowid = Codec.get_u64 r in
    let row = Codec.get_row r in
    Insert { tx; table; rowid; row }
  | 5 ->
    let table = Codec.get_string r in
    let rowid = Codec.get_u64 r in
    Delete { table; rowid }
  | 6 ->
    let table = Codec.get_string r in
    let rowid = Codec.get_u64 r in
    let row = Codec.get_row r in
    Update { table; rowid; row }
  | 7 -> Create_table (get_schema r)
  | 8 -> Drop_table (Codec.get_string r)
  | 9 ->
    let table = Codec.get_string r in
    let index = Codec.get_string r in
    let n = Codec.get_u16 r in
    let columns = List.init n (fun _ -> Codec.get_string r) in
    Create_index { table; index; columns }
  | 10 ->
    let table = Codec.get_string r in
    let index = Codec.get_string r in
    Drop_index { table; index }
  | k -> raise (Codec.Corrupt (Printf.sprintf "unknown WAL record kind %d" k))

(* ------------------------------------------------------------------ *)
(* Appending *)

let open_log path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  (try ignore (Unix.lseek fd 0 Unix.SEEK_END)
   with e ->
     Unix.close fd;
     raise e);
  { path; fd; staged = Buffer.create 4096; next_lsn = 1 }

let path t = t.path
let set_next_lsn t lsn = t.next_lsn <- max t.next_lsn lsn
let last_lsn t = t.next_lsn - 1

(* A signal mid-write makes write_substring return EINTR; retry rather
   than failing the append with a spurious error. *)
let rec write_retry fd s off len =
  try Unix.write_substring fd s off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd s off len

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + write_retry fd s !off (n - !off)
  done

let flush t =
  if Buffer.length t.staged > 0 then begin
    write_all t.fd (Buffer.contents t.staged);
    Buffer.clear t.staged
  end

let sync t =
  flush t;
  (* fsync latency is the dominant durability cost; its histogram shares
     the counter's name (distinct Prometheus suffixes keep them apart). *)
  Metrics.timed "db.wal.fsync" (fun () -> Unix.fsync t.fd);
  Metrics.incr "db.wal.fsync"

let record_kind = function
  | Begin _ -> "begin"
  | Commit _ -> "commit"
  | Abort _ -> "abort"
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Update _ -> "update"
  | Create_table _ | Drop_table _ | Create_index _ | Drop_index _ -> "ddl"

let append t record =
  Metrics.timed "db.wal.append" @@ fun () ->
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  let payload = Buffer.create 64 in
  Codec.add_u64 payload lsn;
  add_record payload record;
  let payload = Buffer.contents payload in
  Codec.add_u32 t.staged (String.length payload);
  Codec.add_u32 t.staged (Codec.crc32 payload);
  Buffer.add_string t.staged payload;
  Metrics.incr "db.wal.append";
  Metrics.incr ("db.wal.records." ^ record_kind record);
  Metrics.incr ~by:(String.length payload + 8) "db.wal.bytes";
  if Buffer.length t.staged >= flush_threshold then flush t;
  lsn

let truncate t =
  Buffer.clear t.staged;
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  Unix.fsync t.fd;
  Metrics.incr "db.wal.truncate"

(* Cut a torn tail back to the valid prefix found by a scan. *)
let truncate_to t bytes =
  Unix.ftruncate t.fd bytes;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_END)

let close t =
  (try flush t with Unix.Unix_error _ -> ());
  Unix.close t.fd

(* Close without flushing: simulates the process dying with records still
   staged in memory (crash tests). *)
let abandon t =
  Buffer.clear t.staged;
  Unix.close t.fd

(* ------------------------------------------------------------------ *)
(* Scanning *)

type scan = {
  sc_records : (int * record) list;  (* (lsn, record), log order *)
  sc_valid_bytes : int;  (* length of the valid prefix *)
  sc_total_bytes : int;  (* file length *)
}

let scan path =
  if not (Sys.file_exists path) then { sc_records = []; sc_valid_bytes = 0; sc_total_bytes = 0 }
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let pos = ref 0 in
    let records = ref [] in
    let stop = ref false in
    while not !stop do
      if !pos + 8 > n then stop := true
      else begin
        let hdr = Codec.reader ~pos:!pos src in
        let len = Codec.get_u32 hdr in
        let crc = Codec.get_u32 hdr in
        if len <= 0 || len > max_frame || !pos + 8 + len > n then stop := true
        else if Codec.crc32 ~pos:(!pos + 8) ~len src <> crc then stop := true
        else begin
          match
            let r = Codec.reader ~pos:(!pos + 8) src in
            let lsn = Codec.get_u64 r in
            let record = get_record r in
            if Codec.reader_pos r <> !pos + 8 + len then
              raise (Codec.Corrupt "frame length does not match its payload");
            (lsn, record)
          with
          | entry ->
            records := entry :: !records;
            pos := !pos + 8 + len
          | exception Codec.Corrupt _ -> stop := true
        end
      end
    done;
    if !pos < n then begin
      (* a torn or corrupt tail: bytes past the valid prefix are lost *)
      Metrics.incr "db.wal.torn_tail";
      Metrics.incr ~by:(n - !pos) "db.wal.torn_bytes"
    end;
    { sc_records = List.rev !records; sc_valid_bytes = !pos; sc_total_bytes = n }
  end
