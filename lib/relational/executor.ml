(* Plan interpreter: the classic iterator (open/next/close) model, with
   cursors represented as closures. Pipelining operators (scan, filter,
   project, limit) stream; blocking operators (sort, hash-join build,
   aggregate, distinct-set) materialize their input when opened. *)

exception Exec_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

type cursor = unit -> Value.t array option

let of_list rows : cursor =
  let remaining = ref rows in
  fun () ->
    match !remaining with
    | [] -> None
    | r :: rest ->
      remaining := rest;
      Some r

let to_list (c : cursor) =
  let rec go acc = match c () with None -> List.rev acc | Some r -> go (r :: acc) in
  go []

let of_array (arr : Value.t array array) : cursor =
  let i = ref 0 in
  fun () ->
    if !i >= Array.length arr then None
    else begin
      let r = arr.(!i) in
      incr i;
      Some r
    end

(* ------------------------------------------------------------------ *)
(* Batch protocol: operators exchange vectors of ~1024 rows instead of one
   row per virtual call. Ownership of a batch transfers to the consumer,
   so Filter compacts in place and Project overwrites slots. *)

let batch_size = 1024

type batch = {
  mutable b_rows : Value.t array array;  (* only [0, b_len) is valid *)
  mutable b_len : int;
}

type batched = unit -> batch option

let batches_of_array (arr : Value.t array array) : batched =
  (* Callers always pass a freshly materialized array (the scan helpers,
     aggregate and staircase outputs), so it is served as one aliased
     batch: zero copies, and downstream operators are free to compact or
     overwrite it in place. *)
  let served = ref false in
  fun () ->
    if !served || Array.length arr = 0 then None
    else begin
      served := true;
      Some { b_rows = arr; b_len = Array.length arr }
    end

let rows_of_batches (b : batched) : cursor =
  let cur = ref { b_rows = [||]; b_len = 0 } in
  let idx = ref 0 in
  let rec next () =
    if !idx < !cur.b_len then begin
      let r = !cur.b_rows.(!idx) in
      incr idx;
      Some r
    end
    else
      match b () with
      | None -> None
      | Some bt ->
        cur := bt;
        idx := 0;
        next ()
  in
  next

let batches_of_rows (c : cursor) : batched =
 fun () ->
  match c () with
  | None -> None
  | Some first ->
    let buf = Array.make batch_size first in
    let n = ref 1 in
    (try
       while !n < batch_size do
         match c () with
         | None -> raise Exit
         | Some r ->
           buf.(!n) <- r;
           incr n
       done
     with Exit -> ());
    Some { b_rows = buf; b_len = !n }

let drain_batched (b : batched) : Value.t array array =
  let chunks = ref [] and total = ref 0 in
  let rec pull () =
    match b () with
    | None -> ()
    | Some bt ->
      chunks := bt :: !chunks;
      total := !total + bt.b_len;
      pull ()
  in
  pull ();
  if !total = 0 then [||]
  else begin
    let out = Array.make !total [||] in
    let pos = ref !total in
    List.iter
      (fun bt ->
        pos := !pos - bt.b_len;
        Array.blit bt.b_rows 0 out !pos bt.b_len)
      !chunks;
    out
  end

(* ------------------------------------------------------------------ *)
(* Layout computation *)

let rec layout_of cat (plan : Plan.t) : Expr_eval.layout =
  match plan with
  | Plan.Seq_scan { table; alias }
  | Plan.Index_scan { table; alias; _ }
  | Plan.Index_probes { table; alias; _ } ->
    let t =
      match cat.Planner.find_table table with
      | Some t -> t
      | None -> err "no such table: %s" table
    in
    Expr_eval.layout_of_schema ~alias (Table.schema t)
  | Plan.Filter (_, p) | Plan.Sort (_, p) | Plan.Distinct p | Plan.Limit (_, p) ->
    layout_of cat p
  | Plan.Project (cols, _) ->
    Array.of_list
      (List.map (fun (_, name) -> { Expr_eval.slot_alias = ""; slot_name = name }) cols)
  | Plan.Nl_join (l, r) | Plan.Staircase_join { left = l; right = r; _ } ->
    Expr_eval.layout_concat (layout_of cat l) (layout_of cat r)
  | Plan.Hash_join { build; probe; _ } ->
    Expr_eval.layout_concat (layout_of cat probe) (layout_of cat build)
  | Plan.Aggregate { group_by; aggregates; _ } ->
    Array.of_list
      (List.mapi (fun i _ -> { Expr_eval.slot_alias = ""; slot_name = Printf.sprintf "#g%d" i }) group_by
      @ List.mapi
          (fun i _ -> { Expr_eval.slot_alias = ""; slot_name = Printf.sprintf "#a%d" i })
          aggregates)
  | Plan.Union_all [] -> err "empty UNION"
  | Plan.Union_all (p :: _) -> layout_of cat p

(* ------------------------------------------------------------------ *)
(* Aggregation accumulators *)

type agg_state = {
  mutable a_rows : int;  (* rows seen, for count star *)
  mutable a_count : int;  (* non-null args *)
  mutable a_int_sum : int;
  mutable a_float_sum : float;
  mutable a_saw_float : bool;
  mutable a_min : Value.t;
  mutable a_max : Value.t;
  a_seen : (Value.t, unit) Hashtbl.t option;  (* for DISTINCT *)
}

let new_agg_state (a : Plan.agg) =
  {
    a_rows = 0;
    a_count = 0;
    a_int_sum = 0;
    a_float_sum = 0.0;
    a_saw_float = false;
    a_min = Value.Null;
    a_max = Value.Null;
    a_seen = (if a.agg_distinct then Some (Hashtbl.create 16) else None);
  }

let agg_feed (a : Plan.agg) st (v : Value.t) =
  st.a_rows <- st.a_rows + 1;
  if a.Plan.agg_star then ()
  else if Value.is_null v then ()
  else begin
    let counted =
      match st.a_seen with
      | None -> true
      | Some seen ->
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.add seen v ();
          true
        end
    in
    if counted then begin
      st.a_count <- st.a_count + 1;
      (match v with
      | Value.Int i -> st.a_int_sum <- st.a_int_sum + i
      | Value.Float f ->
        st.a_saw_float <- true;
        st.a_float_sum <- st.a_float_sum +. f
      | Value.Bool _ | Value.Text _ | Value.Null -> ());
      if Value.is_null st.a_min || Value.compare v st.a_min < 0 then st.a_min <- v;
      if Value.is_null st.a_max || Value.compare v st.a_max > 0 then st.a_max <- v
    end
  end

let agg_result (a : Plan.agg) st =
  match a.Plan.agg_func with
  | "count" -> Value.Int (if a.Plan.agg_star then st.a_rows else st.a_count)
  | "sum" ->
    if st.a_count = 0 then Value.Null
    else if st.a_saw_float then Value.Float (st.a_float_sum +. float_of_int st.a_int_sum)
    else Value.Int st.a_int_sum
  | "avg" ->
    if st.a_count = 0 then Value.Null
    else Value.Float ((st.a_float_sum +. float_of_int st.a_int_sum) /. float_of_int st.a_count)
  | "min" -> st.a_min
  | "max" -> st.a_max
  | f -> err "unknown aggregate %s" f

(* ------------------------------------------------------------------ *)
(* Operator compilation *)

let const_value params e =
  (* Bounds in index scans are constant expressions (possibly parameters). *)
  let f = Expr_eval.compile ~params [||] e in
  f [||]

(* ------------------------------------------------------------------ *)
(* Scan row gathering, shared between the iterator and batched
   interpreters (scans are leaves, so both produce the same array). *)

let find_table cat table =
  match cat.Planner.find_table table with
  | Some t -> t
  | None -> err "no such table: %s" table

let find_index t index_name table =
  match Table.find_index t index_name with
  | Some ix -> ix
  | None -> err "no such index: %s on %s" index_name table

let seq_scan_rows cat table : Value.t array array =
  let t = find_table cat table in
  (* Materialize at open time so the cursor is stable under concurrent
     mutation of the table; [row_count] sizes the snapshot exactly, so
     this is one allocation and one pass. *)
  let out = Array.make (Table.row_count t) [||] in
  let i = ref 0 in
  Table.iter
    (fun _ row ->
      out.(!i) <- row;
      incr i)
    t;
  out

let index_scan_rows params cat ~table ~index_name ~lower ~upper : Value.t array array =
  let t = find_table cat table in
  let ix = find_index t index_name table in
  let lower_v = Option.map (fun (e, incl) -> (const_value params e, incl)) lower in
  let upper_v = Option.map (fun (e, incl) -> (const_value params e, incl)) upper in
  let tree_lower =
    match lower_v with
    | Some (v, _) -> Btree.Inclusive [| v |]
    | None -> Btree.Unbounded
  in
  let rowids = ref [] in
  let exception Stop in
  (try
     Btree.iter_range ix.Table.tree ~lower:tree_lower ~upper:Btree.Unbounded (fun key rowid ->
         let first = key.(0) in
         (match upper_v with
         | Some (v, incl) ->
           let c = Value.compare first v in
           if (incl && c > 0) || ((not incl) && c >= 0) then raise Stop
         | None -> ());
         let passes_lower =
           match lower_v with
           | Some (v, incl) ->
             let c = Value.compare first v in
             if incl then c >= 0 else c > 0
           | None -> true
         in
         if passes_lower then rowids := rowid :: !rowids)
   with Stop -> ());
  Array.of_list (List.filter_map (fun rowid -> Table.get t rowid) (List.rev !rowids))

let index_probe_rows params cat ~table ~index_name ~keys : Value.t array array =
  let t = find_table cat table in
  let ix = find_index t index_name table in
  let rowids =
    List.concat_map
      (fun e ->
        (* prefix probe so composite indexes answer single-column keys *)
        let acc = ref [] in
        Btree.iter_prefix ix.Table.tree [| const_value params e |] (fun _ r -> acc := r :: !acc);
        List.rev !acc)
      keys
  in
  (* dedup in case probe keys repeat *)
  let rowids = List.sort_uniq compare rowids in
  Array.of_list (List.filter_map (fun rowid -> Table.get t rowid) rowids)

(* ------------------------------------------------------------------ *)
(* Staircase merge: the structural-join core, shared by both interpreters.

   Both sides materialize. Descendant rows sort by key ascending; ancestor
   rows sort by lower bound ascending. One sweep over the descendants
   maintains the set of "active" ancestors — those whose lower bound the
   current key has passed — admitting ancestors as the key ascends and
   compacting out the ones whose upper bound has expired (monotone: an
   interval dead at key k stays dead for every larger key). Each surviving
   active ancestor pairs with the current descendant, so the cost is one
   sort of each side plus work proportional to the output. Rows whose key
   or bounds are NULL never match (SQL comparison semantics) and are
   dropped up front. *)

let staircase_merge ~desc_on_left ~key_of ~lo_of ~hi_of ~lower_strict ~upper_strict
    (descs : Value.t array array) (ancs : Value.t array array) : Value.t array list =
  let keyed f rows =
    Array.to_list rows
    |> List.filter_map (fun r ->
           let v = f r in
           if Value.is_null v then None else Some (v, r))
    |> Array.of_list
  in
  let ds = keyed key_of descs in
  let asr_ =
    Array.to_list ancs
    |> List.filter_map (fun r ->
           let lo = lo_of r and hi = hi_of r in
           if Value.is_null lo || Value.is_null hi then None else Some (lo, hi, r))
    |> Array.of_list
  in
  (* stable sorts keep input order deterministic within equal keys *)
  let ds = Array.copy ds in
  Array.stable_sort (fun (a, _) (b, _) -> Value.compare a b) ds;
  Array.stable_sort (fun (a, _, _) (b, _, _) -> Value.compare a b) asr_;
  let started lo k = if lower_strict then Value.compare lo k < 0 else Value.compare lo k <= 0 in
  let expired hi k = if upper_strict then Value.compare hi k <= 0 else Value.compare hi k < 0 in
  let n_anc = Array.length asr_ in
  let active = Array.make (max 1 n_anc) (Value.Null, Value.Null, [||]) in
  let active_n = ref 0 in
  let ai = ref 0 in
  let out = ref [] in
  Array.iter
    (fun (k, drow) ->
      (* admit ancestors whose lower bound the key has now passed *)
      while
        !ai < n_anc
        &&
        let lo, _, _ = asr_.(!ai) in
        started lo k
      do
        active.(!active_n) <- asr_.(!ai);
        incr active_n;
        incr ai
      done;
      (* pair with live ancestors, compacting out expired ones *)
      let j = ref 0 in
      for i = 0 to !active_n - 1 do
        let (_, hi, arow) as entry = active.(i) in
        if not (expired hi k) then begin
          active.(!j) <- entry;
          incr j;
          let row =
            if desc_on_left then Array.append drow arow else Array.append arow drow
          in
          out := row :: !out
        end
      done;
      active_n := !j)
    ds;
  List.rev !out

(* ------------------------------------------------------------------ *)

(* The worker is parameterized over how children are opened ([recur]), so
   the plain interpreter and the instrumented EXPLAIN ANALYZE interpreter
   share one implementation. *)
let open_with (recur : Plan.t -> cursor) params cat (plan : Plan.t) : cursor =
  match plan with
  | Plan.Seq_scan { table; _ } -> of_array (seq_scan_rows cat table)
  | Plan.Index_scan { table; index_name; lower; upper; _ } ->
    of_array (index_scan_rows params cat ~table ~index_name ~lower ~upper)
  | Plan.Index_probes { table; index_name; keys; _ } ->
    of_array (index_probe_rows params cat ~table ~index_name ~keys)
  | Plan.Staircase_join
      { left; right; desc_on_left; desc_key; anc_lower; anc_upper; lower_strict; upper_strict }
    ->
    let left_layout = layout_of cat left and right_layout = layout_of cat right in
    let dlay, alay =
      if desc_on_left then (left_layout, right_layout) else (right_layout, left_layout)
    in
    let key_of = Expr_eval.compile ~params dlay desc_key in
    let lo_of = Expr_eval.compile ~params alay anc_lower in
    let hi_of = Expr_eval.compile ~params alay anc_upper in
    let lrows = Array.of_list (to_list (recur left)) in
    let rrows = Array.of_list (to_list (recur right)) in
    let descs, ancs = if desc_on_left then (lrows, rrows) else (rrows, lrows) in
    of_list
      (staircase_merge ~desc_on_left ~key_of ~lo_of ~hi_of ~lower_strict ~upper_strict descs
         ancs)
  | Plan.Filter (e, input) ->
    let layout = layout_of cat input in
    let pred = Expr_eval.compile_predicate ~params layout e in
    let child = recur input in
    let rec next () =
      match child () with
      | None -> None
      | Some row -> if pred row then Some row else next ()
    in
    next
  | Plan.Project (cols, input) ->
    let layout = layout_of cat input in
    let fs = List.map (fun (e, _) -> Expr_eval.compile ~params layout e) cols in
    let child = recur input in
    fun () ->
      Option.map (fun row -> Array.of_list (List.map (fun f -> f row) fs)) (child ())
  | Plan.Nl_join (l, r) ->
    let left = recur l in
    (* Materialize the inner side once. *)
    let right_rows = to_list (recur r) in
    let current_left = ref None in
    let pending = ref [] in
    let rec next () =
      match !pending with
      | rr :: rest ->
        pending := rest;
        let lr = match !current_left with Some lr -> lr | None -> assert false in
        Some (Array.append lr rr)
      | [] -> (
        match left () with
        | None -> None
        | Some lr ->
          current_left := Some lr;
          pending := right_rows;
          next ())
    in
    next
  | Plan.Hash_join { build; probe; build_keys; probe_keys } ->
    let build_layout = layout_of cat build in
    let probe_layout = layout_of cat probe in
    let bks = List.map (Expr_eval.compile ~params build_layout) build_keys in
    let pks = List.map (Expr_eval.compile ~params probe_layout) probe_keys in
    let table = Hashtbl.create 256 in
    let build_cursor = recur build in
    let rec fill () =
      match build_cursor () with
      | None -> ()
      | Some row ->
        let key = List.map (fun f -> f row) bks in
        if not (List.exists Value.is_null key) then Hashtbl.add table key row;
        fill ()
    in
    fill ();
    let probe_cursor = recur probe in
    let current_probe = ref None in
    let pending = ref [] in
    let rec next () =
      match !pending with
      | br :: rest ->
        pending := rest;
        let pr = match !current_probe with Some pr -> pr | None -> assert false in
        Some (Array.append pr br)
      | [] -> (
        match probe_cursor () with
        | None -> None
        | Some pr ->
          let key = List.map (fun f -> f pr) pks in
          if List.exists Value.is_null key then next ()
          else begin
            current_probe := Some pr;
            (* find_all returns most-recent first; order within a key does
               not matter for join semantics *)
            pending := Hashtbl.find_all table key;
            next ()
          end)
    in
    next
  | Plan.Aggregate { group_by; aggregates; input } ->
    let layout = layout_of cat input in
    let gfs = List.map (Expr_eval.compile ~params layout) group_by in
    let afs =
      List.map
        (fun (a : Plan.agg) ->
          match a.Plan.agg_arg with
          | Some e -> (a, Some (Expr_eval.compile ~params layout e))
          | None -> (a, None))
        aggregates
    in
    let groups : (Value.t list, agg_state list) Hashtbl.t = Hashtbl.create 64 in
    let group_order = ref [] in
    let child = recur input in
    let rec consume () =
      match child () with
      | None -> ()
      | Some row ->
        let key = List.map (fun f -> f row) gfs in
        let states =
          match Hashtbl.find_opt groups key with
          | Some s -> s
          | None ->
            let s = List.map (fun (a, _) -> new_agg_state a) afs in
            Hashtbl.add groups key s;
            group_order := key :: !group_order;
            s
        in
        List.iter2
          (fun (a, f) st ->
            let v = match f with Some f -> f row | None -> Value.Null in
            agg_feed a st v)
          afs states;
        consume ()
    in
    consume ();
    let emit key =
      let states = Hashtbl.find groups key in
      Array.of_list (key @ List.map2 (fun (a, _) st -> agg_result a st) afs states)
    in
    let keys = List.rev !group_order in
    let rows =
      if keys = [] && group_by = [] then
        (* aggregate over an empty input still yields one row *)
        [ Array.of_list (List.map (fun (a, _) -> agg_result a (new_agg_state a)) afs) ]
      else List.map emit keys
    in
    of_list rows
  | Plan.Sort (items, input) ->
    let layout = layout_of cat input in
    let keys =
      List.map
        (fun { Sql_ast.order_expr; descending } -> (Expr_eval.compile ~params layout order_expr, descending))
        items
    in
    let rows = to_list (recur input) in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (f, desc) :: rest ->
          let c = Value.compare (f a) (f b) in
          if c <> 0 then if desc then -c else c else go rest
      in
      go keys
    in
    of_list (List.stable_sort cmp rows)
  | Plan.Distinct input ->
    let child = recur input in
    let seen = Hashtbl.create 256 in
    let rec next () =
      match child () with
      | None -> None
      | Some row ->
        let key = Array.to_list row in
        if Hashtbl.mem seen key then next ()
        else begin
          Hashtbl.add seen key ();
          Some row
        end
    in
    next
  | Plan.Limit (n, input) ->
    let child = recur input in
    let remaining = ref n in
    fun () ->
      if !remaining <= 0 then None
      else begin
        match child () with
        | None -> None
        | Some row ->
          decr remaining;
          Some row
      end
  | Plan.Union_all plans ->
    let pending = ref plans in
    let current = ref (fun () -> None) in
    let rec next () =
      match !current () with
      | Some row -> Some row
      | None -> (
        match !pending with
        | [] -> None
        | p :: rest ->
          pending := rest;
          current := recur p;
          next ())
    in
    next

(* ------------------------------------------------------------------ *)

let rec open_plan params cat plan = open_with (open_plan params cat) params cat plan

(* ------------------------------------------------------------------ *)
(* Batched interpreter. Hot operators — scans, filter, project, hash join,
   aggregate, staircase join, limit — move whole batches per virtual call;
   the remaining operators (sort, distinct, union, nested loop) fall back
   to the iterator implementation with their children still opened
   batched, so a hot subtree keeps its batching under a cold root. *)

let rec open_batched params cat (plan : Plan.t) : batched =
  let recur child = open_batched params cat child in
  match plan with
  | Plan.Seq_scan { table; _ } -> batches_of_array (seq_scan_rows cat table)
  | Plan.Index_scan { table; index_name; lower; upper; _ } ->
    batches_of_array (index_scan_rows params cat ~table ~index_name ~lower ~upper)
  | Plan.Index_probes { table; index_name; keys; _ } ->
    batches_of_array (index_probe_rows params cat ~table ~index_name ~keys)
  | Plan.Filter (e, input) ->
    let layout = layout_of cat input in
    let pred = Expr_eval.compile_predicate ~params layout e in
    let child = recur input in
    let rec next () =
      match child () with
      | None -> None
      | Some b ->
        (* in-place compaction: the batch is ours *)
        let j = ref 0 in
        for i = 0 to b.b_len - 1 do
          let r = b.b_rows.(i) in
          if pred r then begin
            b.b_rows.(!j) <- r;
            incr j
          end
        done;
        b.b_len <- !j;
        if !j = 0 then next () else Some b
    in
    next
  | Plan.Project (cols, input) ->
    let layout = layout_of cat input in
    let fs = Array.of_list (List.map (fun (e, _) -> Expr_eval.compile ~params layout e) cols) in
    let child = recur input in
    fun () ->
      Option.map
        (fun b ->
          for i = 0 to b.b_len - 1 do
            let r = b.b_rows.(i) in
            b.b_rows.(i) <- Array.map (fun f -> f r) fs
          done;
          b)
        (child ())
  | Plan.Hash_join { build; probe; build_keys; probe_keys } ->
    let build_layout = layout_of cat build in
    let probe_layout = layout_of cat probe in
    let bks = List.map (Expr_eval.compile ~params build_layout) build_keys in
    let pks = List.map (Expr_eval.compile ~params probe_layout) probe_keys in
    let table = Hashtbl.create 256 in
    let build_rows = drain_batched (recur build) in
    Array.iter
      (fun row ->
        let key = List.map (fun f -> f row) bks in
        if not (List.exists Value.is_null key) then Hashtbl.add table key row)
      build_rows;
    let probe_cursor = recur probe in
    let rec next () =
      match probe_cursor () with
      | None -> None
      | Some b ->
        let out = ref [] and n = ref 0 in
        for i = 0 to b.b_len - 1 do
          let pr = b.b_rows.(i) in
          let key = List.map (fun f -> f pr) pks in
          if not (List.exists Value.is_null key) then
            (* find_all returns most-recent first, matching the iterator *)
            List.iter
              (fun br ->
                out := Array.append pr br :: !out;
                incr n)
              (Hashtbl.find_all table key)
        done;
        if !n = 0 then next ()
        else begin
          (* one output batch per probe batch; size tracks the join fanout *)
          let rows = Array.make !n [||] in
          let pos = ref !n in
          List.iter
            (fun r ->
              decr pos;
              rows.(!pos) <- r)
            !out;
          Some { b_rows = rows; b_len = !n }
        end
    in
    next
  | Plan.Staircase_join
      { left; right; desc_on_left; desc_key; anc_lower; anc_upper; lower_strict; upper_strict }
    ->
    let left_layout = layout_of cat left and right_layout = layout_of cat right in
    let dlay, alay =
      if desc_on_left then (left_layout, right_layout) else (right_layout, left_layout)
    in
    let key_of = Expr_eval.compile ~params dlay desc_key in
    let lo_of = Expr_eval.compile ~params alay anc_lower in
    let hi_of = Expr_eval.compile ~params alay anc_upper in
    let lrows = drain_batched (recur left) in
    let rrows = drain_batched (recur right) in
    let descs, ancs = if desc_on_left then (lrows, rrows) else (rrows, lrows) in
    batches_of_array
      (Array.of_list
         (staircase_merge ~desc_on_left ~key_of ~lo_of ~hi_of ~lower_strict ~upper_strict descs
            ancs))
  | Plan.Aggregate { group_by = []; aggregates; input } ->
    (* Ungrouped aggregation is the showcase batched kernel: one state
       per aggregate, no per-row key building or hash lookups, and a
       count over an argument-less aggregate advances by the whole batch
       length in one store. *)
    let layout = layout_of cat input in
    let afs =
      List.map
        (fun (a : Plan.agg) ->
          match a.Plan.agg_arg with
          | Some e -> (a, Some (Expr_eval.compile ~params layout e))
          | None -> (a, None))
        aggregates
    in
    let states = List.map (fun (a, _) -> new_agg_state a) afs in
    let child = recur input in
    let rec consume () =
      match child () with
      | None -> ()
      | Some b ->
        List.iter2
          (fun (a, f) st ->
            match f with
            | None ->
              (* count star: only [a_rows] moves, so the batch feeds at once *)
              st.a_rows <- st.a_rows + b.b_len
            | Some f ->
              for i = 0 to b.b_len - 1 do
                agg_feed a st (f b.b_rows.(i))
              done)
          afs states;
        consume ()
    in
    consume ();
    batches_of_array
      [| Array.of_list (List.map2 (fun (a, _) st -> agg_result a st) afs states) |]
  | Plan.Aggregate { group_by; aggregates; input } ->
    let layout = layout_of cat input in
    let gfs = List.map (Expr_eval.compile ~params layout) group_by in
    let afs =
      List.map
        (fun (a : Plan.agg) ->
          match a.Plan.agg_arg with
          | Some e -> (a, Some (Expr_eval.compile ~params layout e))
          | None -> (a, None))
        aggregates
    in
    let groups : (Value.t list, agg_state list) Hashtbl.t = Hashtbl.create 64 in
    let group_order = ref [] in
    let child = recur input in
    let rec consume () =
      match child () with
      | None -> ()
      | Some b ->
        for i = 0 to b.b_len - 1 do
          let row = b.b_rows.(i) in
          let key = List.map (fun f -> f row) gfs in
          let states =
            match Hashtbl.find_opt groups key with
            | Some s -> s
            | None ->
              let s = List.map (fun (a, _) -> new_agg_state a) afs in
              Hashtbl.add groups key s;
              group_order := key :: !group_order;
              s
          in
          List.iter2
            (fun (a, f) st ->
              let v = match f with Some f -> f row | None -> Value.Null in
              agg_feed a st v)
            afs states
        done;
        consume ()
    in
    consume ();
    let emit key =
      let states = Hashtbl.find groups key in
      Array.of_list (key @ List.map2 (fun (a, _) st -> agg_result a st) afs states)
    in
    let keys = List.rev !group_order in
    let rows =
      if keys = [] && group_by = [] then
        [| Array.of_list (List.map (fun (a, _) -> agg_result a (new_agg_state a)) afs) |]
      else Array.of_list (List.map emit keys)
    in
    batches_of_array rows
  | Plan.Limit (n, input) ->
    let child = recur input in
    let remaining = ref n in
    let rec next () =
      if !remaining <= 0 then None
      else
        match child () with
        | None -> None
        | Some b ->
          let take = min b.b_len !remaining in
          remaining := !remaining - take;
          b.b_len <- take;
          if take = 0 then next () else Some b
    in
    next
  | (Plan.Nl_join _ | Plan.Sort _ | Plan.Distinct _ | Plan.Union_all _) as plan ->
    (* iterator implementation, children still batched underneath *)
    batches_of_rows
      (open_with (fun child -> rows_of_batches (recur child)) params cat plan)

(* Instrumented variant: every operator is wrapped in a counting cursor
   feeding a Plan.annotated node — rows produced, next() calls, and
   inclusive wall-clock (open + next, children included). Blocking
   operators therefore show their materialization cost in the open share
   of their time, exactly where it is paid. *)
let open_annotated params cat plan : cursor * Plan.annotated =
  let rec go plan =
    let est = try Some (Planner.estimate_plan cat plan) with Planner.Plan_error _ | Not_found -> None in
    let a = Plan.annot ?est (Plan.node_line plan) in
    let recur child =
      (* children are appended in execution order; Union_all opens its
         inputs lazily, so late children still land in the tree *)
      let c, ca = go child in
      a.Plan.an_children <- a.Plan.an_children @ [ ca ];
      c
    in
    let t0 = Metrics.now_ns () in
    let cur = open_with recur params cat plan in
    a.Plan.an_ns <- a.Plan.an_ns + (Metrics.now_ns () - t0);
    let instrumented () =
      let t0 = Metrics.now_ns () in
      let r = cur () in
      a.Plan.an_ns <- a.Plan.an_ns + (Metrics.now_ns () - t0);
      a.Plan.an_nexts <- a.Plan.an_nexts + 1;
      (match r with Some _ -> a.Plan.an_rows <- a.Plan.an_rows + 1 | None -> ());
      r
    in
    (instrumented, a)
  in
  go plan

type result = { columns : string list; rows : Value.t array list }

let columns_of cat plan =
  Array.to_list (Array.map (fun s -> s.Expr_eval.slot_name) (layout_of cat plan))

(* Batched execution is the default; the iterator path remains for
   EXPLAIN ANALYZE instrumentation and as the benchmark baseline. *)
let batched_enabled = Atomic.make true
let set_batched b = Atomic.set batched_enabled b
let batched_on () = Atomic.get batched_enabled

let run ?(params = [||]) cat plan =
  let columns = columns_of cat plan in
  let rows =
    if Atomic.get batched_enabled then begin
      (* A root Project is fused into the drain: projected rows are
         consed straight onto the (young) result list instead of being
         written back into the old batch array, which would hit the
         write barrier's remembered-set path on every row. *)
      let inner, project =
        match plan with
        | Plan.Project (cols, input) ->
          let layout = layout_of cat input in
          ( input,
            Some
              (Array.of_list (List.map (fun (e, _) -> Expr_eval.compile ~params layout e) cols))
          )
        | _ -> (plan, None)
      in
      let b = open_batched params cat inner in
      let acc = ref [] in
      let rec pull () =
        match b () with
        | None -> List.rev !acc
        | Some bt ->
          (match project with
          | None ->
            for i = 0 to bt.b_len - 1 do
              acc := bt.b_rows.(i) :: !acc
            done
          | Some fs ->
            for i = 0 to bt.b_len - 1 do
              let r = bt.b_rows.(i) in
              acc := Array.map (fun f -> f r) fs :: !acc
            done);
          pull ()
      in
      pull ()
    end
    else to_list (open_plan params cat plan)
  in
  { columns; rows }

let run_analyzed ?(params = [||]) cat plan =
  let columns = columns_of cat plan in
  let cursor, annot = open_annotated params cat plan in
  let rows = to_list cursor in
  ({ columns; rows }, annot)
