(* Plan interpreter: the classic iterator (open/next/close) model, with
   cursors represented as closures. Pipelining operators (scan, filter,
   project, limit) stream; blocking operators (sort, hash-join build,
   aggregate, distinct-set) materialize their input when opened. *)

exception Exec_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

type cursor = unit -> Value.t array option

let of_list rows : cursor =
  let remaining = ref rows in
  fun () ->
    match !remaining with
    | [] -> None
    | r :: rest ->
      remaining := rest;
      Some r

let to_list (c : cursor) =
  let rec go acc = match c () with None -> List.rev acc | Some r -> go (r :: acc) in
  go []

(* ------------------------------------------------------------------ *)
(* Layout computation *)

let rec layout_of cat (plan : Plan.t) : Expr_eval.layout =
  match plan with
  | Plan.Seq_scan { table; alias }
  | Plan.Index_scan { table; alias; _ }
  | Plan.Index_probes { table; alias; _ } ->
    let t =
      match cat.Planner.find_table table with
      | Some t -> t
      | None -> err "no such table: %s" table
    in
    Expr_eval.layout_of_schema ~alias (Table.schema t)
  | Plan.Filter (_, p) | Plan.Sort (_, p) | Plan.Distinct p | Plan.Limit (_, p) ->
    layout_of cat p
  | Plan.Project (cols, _) ->
    Array.of_list
      (List.map (fun (_, name) -> { Expr_eval.slot_alias = ""; slot_name = name }) cols)
  | Plan.Nl_join (l, r) -> Expr_eval.layout_concat (layout_of cat l) (layout_of cat r)
  | Plan.Hash_join { build; probe; _ } ->
    Expr_eval.layout_concat (layout_of cat probe) (layout_of cat build)
  | Plan.Aggregate { group_by; aggregates; _ } ->
    Array.of_list
      (List.mapi (fun i _ -> { Expr_eval.slot_alias = ""; slot_name = Printf.sprintf "#g%d" i }) group_by
      @ List.mapi
          (fun i _ -> { Expr_eval.slot_alias = ""; slot_name = Printf.sprintf "#a%d" i })
          aggregates)
  | Plan.Union_all [] -> err "empty UNION"
  | Plan.Union_all (p :: _) -> layout_of cat p

(* ------------------------------------------------------------------ *)
(* Aggregation accumulators *)

type agg_state = {
  mutable a_rows : int;  (* rows seen, for count star *)
  mutable a_count : int;  (* non-null args *)
  mutable a_int_sum : int;
  mutable a_float_sum : float;
  mutable a_saw_float : bool;
  mutable a_min : Value.t;
  mutable a_max : Value.t;
  a_seen : (Value.t, unit) Hashtbl.t option;  (* for DISTINCT *)
}

let new_agg_state (a : Plan.agg) =
  {
    a_rows = 0;
    a_count = 0;
    a_int_sum = 0;
    a_float_sum = 0.0;
    a_saw_float = false;
    a_min = Value.Null;
    a_max = Value.Null;
    a_seen = (if a.agg_distinct then Some (Hashtbl.create 16) else None);
  }

let agg_feed (a : Plan.agg) st (v : Value.t) =
  st.a_rows <- st.a_rows + 1;
  if a.Plan.agg_star then ()
  else if Value.is_null v then ()
  else begin
    let counted =
      match st.a_seen with
      | None -> true
      | Some seen ->
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.add seen v ();
          true
        end
    in
    if counted then begin
      st.a_count <- st.a_count + 1;
      (match v with
      | Value.Int i -> st.a_int_sum <- st.a_int_sum + i
      | Value.Float f ->
        st.a_saw_float <- true;
        st.a_float_sum <- st.a_float_sum +. f
      | Value.Bool _ | Value.Text _ | Value.Null -> ());
      if Value.is_null st.a_min || Value.compare v st.a_min < 0 then st.a_min <- v;
      if Value.is_null st.a_max || Value.compare v st.a_max > 0 then st.a_max <- v
    end
  end

let agg_result (a : Plan.agg) st =
  match a.Plan.agg_func with
  | "count" -> Value.Int (if a.Plan.agg_star then st.a_rows else st.a_count)
  | "sum" ->
    if st.a_count = 0 then Value.Null
    else if st.a_saw_float then Value.Float (st.a_float_sum +. float_of_int st.a_int_sum)
    else Value.Int st.a_int_sum
  | "avg" ->
    if st.a_count = 0 then Value.Null
    else Value.Float ((st.a_float_sum +. float_of_int st.a_int_sum) /. float_of_int st.a_count)
  | "min" -> st.a_min
  | "max" -> st.a_max
  | f -> err "unknown aggregate %s" f

(* ------------------------------------------------------------------ *)
(* Operator compilation *)

let const_value params e =
  (* Bounds in index scans are constant expressions (possibly parameters). *)
  let f = Expr_eval.compile ~params [||] e in
  f [||]

(* The worker is parameterized over how children are opened ([recur]), so
   the plain interpreter and the instrumented EXPLAIN ANALYZE interpreter
   share one implementation. *)
let open_with (recur : Plan.t -> cursor) params cat (plan : Plan.t) : cursor =
  match plan with
  | Plan.Seq_scan { table; _ } ->
    let t =
      match cat.Planner.find_table table with
      | Some t -> t
      | None -> err "no such table: %s" table
    in
    (* Materialize row ids at open time so the cursor is stable under
       concurrent mutation of the table. *)
    let rows = ref [] in
    Table.iter (fun _ row -> rows := row :: !rows) t;
    of_list (List.rev !rows)
  | Plan.Index_scan { table; index_name; lower; upper; _ } ->
    let t =
      match cat.Planner.find_table table with
      | Some t -> t
      | None -> err "no such table: %s" table
    in
    let ix =
      match Table.find_index t index_name with
      | Some ix -> ix
      | None -> err "no such index: %s on %s" index_name table
    in
    let lower_v = Option.map (fun (e, incl) -> (const_value params e, incl)) lower in
    let upper_v = Option.map (fun (e, incl) -> (const_value params e, incl)) upper in
    let tree_lower =
      match lower_v with
      | Some (v, _) -> Btree.Inclusive [| v |]
      | None -> Btree.Unbounded
    in
    let rowids = ref [] in
    let exception Stop in
    (try
       Btree.iter_range ix.Table.tree ~lower:tree_lower ~upper:Btree.Unbounded (fun key rowid ->
           let first = key.(0) in
           (match upper_v with
           | Some (v, incl) ->
             let c = Value.compare first v in
             if (incl && c > 0) || ((not incl) && c >= 0) then raise Stop
           | None -> ());
           let passes_lower =
             match lower_v with
             | Some (v, incl) ->
               let c = Value.compare first v in
               if incl then c >= 0 else c > 0
             | None -> true
           in
           if passes_lower then rowids := rowid :: !rowids)
     with Stop -> ());
    let rows = List.filter_map (fun rowid -> Table.get t rowid) (List.rev !rowids) in
    of_list rows
  | Plan.Index_probes { table; index_name; keys; _ } ->
    let t =
      match cat.Planner.find_table table with
      | Some t -> t
      | None -> err "no such table: %s" table
    in
    let ix =
      match Table.find_index t index_name with
      | Some ix -> ix
      | None -> err "no such index: %s on %s" index_name table
    in
    let rowids =
      List.concat_map
        (fun e ->
          (* prefix probe so composite indexes answer single-column keys *)
          let acc = ref [] in
          Btree.iter_prefix ix.Table.tree [| const_value params e |] (fun _ r -> acc := r :: !acc);
          List.rev !acc)
        keys
    in
    (* dedup in case probe keys repeat *)
    let rowids = List.sort_uniq compare rowids in
    of_list (List.filter_map (fun rowid -> Table.get t rowid) rowids)
  | Plan.Filter (e, input) ->
    let layout = layout_of cat input in
    let pred = Expr_eval.compile_predicate ~params layout e in
    let child = recur input in
    let rec next () =
      match child () with
      | None -> None
      | Some row -> if pred row then Some row else next ()
    in
    next
  | Plan.Project (cols, input) ->
    let layout = layout_of cat input in
    let fs = List.map (fun (e, _) -> Expr_eval.compile ~params layout e) cols in
    let child = recur input in
    fun () ->
      Option.map (fun row -> Array.of_list (List.map (fun f -> f row) fs)) (child ())
  | Plan.Nl_join (l, r) ->
    let left = recur l in
    (* Materialize the inner side once. *)
    let right_rows = to_list (recur r) in
    let current_left = ref None in
    let pending = ref [] in
    let rec next () =
      match !pending with
      | rr :: rest ->
        pending := rest;
        let lr = match !current_left with Some lr -> lr | None -> assert false in
        Some (Array.append lr rr)
      | [] -> (
        match left () with
        | None -> None
        | Some lr ->
          current_left := Some lr;
          pending := right_rows;
          next ())
    in
    next
  | Plan.Hash_join { build; probe; build_keys; probe_keys } ->
    let build_layout = layout_of cat build in
    let probe_layout = layout_of cat probe in
    let bks = List.map (Expr_eval.compile ~params build_layout) build_keys in
    let pks = List.map (Expr_eval.compile ~params probe_layout) probe_keys in
    let table = Hashtbl.create 256 in
    let build_cursor = recur build in
    let rec fill () =
      match build_cursor () with
      | None -> ()
      | Some row ->
        let key = List.map (fun f -> f row) bks in
        if not (List.exists Value.is_null key) then Hashtbl.add table key row;
        fill ()
    in
    fill ();
    let probe_cursor = recur probe in
    let current_probe = ref None in
    let pending = ref [] in
    let rec next () =
      match !pending with
      | br :: rest ->
        pending := rest;
        let pr = match !current_probe with Some pr -> pr | None -> assert false in
        Some (Array.append pr br)
      | [] -> (
        match probe_cursor () with
        | None -> None
        | Some pr ->
          let key = List.map (fun f -> f pr) pks in
          if List.exists Value.is_null key then next ()
          else begin
            current_probe := Some pr;
            (* find_all returns most-recent first; order within a key does
               not matter for join semantics *)
            pending := Hashtbl.find_all table key;
            next ()
          end)
    in
    next
  | Plan.Aggregate { group_by; aggregates; input } ->
    let layout = layout_of cat input in
    let gfs = List.map (Expr_eval.compile ~params layout) group_by in
    let afs =
      List.map
        (fun (a : Plan.agg) ->
          match a.Plan.agg_arg with
          | Some e -> (a, Some (Expr_eval.compile ~params layout e))
          | None -> (a, None))
        aggregates
    in
    let groups : (Value.t list, agg_state list) Hashtbl.t = Hashtbl.create 64 in
    let group_order = ref [] in
    let child = recur input in
    let rec consume () =
      match child () with
      | None -> ()
      | Some row ->
        let key = List.map (fun f -> f row) gfs in
        let states =
          match Hashtbl.find_opt groups key with
          | Some s -> s
          | None ->
            let s = List.map (fun (a, _) -> new_agg_state a) afs in
            Hashtbl.add groups key s;
            group_order := key :: !group_order;
            s
        in
        List.iter2
          (fun (a, f) st ->
            let v = match f with Some f -> f row | None -> Value.Null in
            agg_feed a st v)
          afs states;
        consume ()
    in
    consume ();
    let emit key =
      let states = Hashtbl.find groups key in
      Array.of_list (key @ List.map2 (fun (a, _) st -> agg_result a st) afs states)
    in
    let keys = List.rev !group_order in
    let rows =
      if keys = [] && group_by = [] then
        (* aggregate over an empty input still yields one row *)
        [ Array.of_list (List.map (fun (a, _) -> agg_result a (new_agg_state a)) afs) ]
      else List.map emit keys
    in
    of_list rows
  | Plan.Sort (items, input) ->
    let layout = layout_of cat input in
    let keys =
      List.map
        (fun { Sql_ast.order_expr; descending } -> (Expr_eval.compile ~params layout order_expr, descending))
        items
    in
    let rows = to_list (recur input) in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (f, desc) :: rest ->
          let c = Value.compare (f a) (f b) in
          if c <> 0 then if desc then -c else c else go rest
      in
      go keys
    in
    of_list (List.stable_sort cmp rows)
  | Plan.Distinct input ->
    let child = recur input in
    let seen = Hashtbl.create 256 in
    let rec next () =
      match child () with
      | None -> None
      | Some row ->
        let key = Array.to_list row in
        if Hashtbl.mem seen key then next ()
        else begin
          Hashtbl.add seen key ();
          Some row
        end
    in
    next
  | Plan.Limit (n, input) ->
    let child = recur input in
    let remaining = ref n in
    fun () ->
      if !remaining <= 0 then None
      else begin
        match child () with
        | None -> None
        | Some row ->
          decr remaining;
          Some row
      end
  | Plan.Union_all plans ->
    let pending = ref plans in
    let current = ref (fun () -> None) in
    let rec next () =
      match !current () with
      | Some row -> Some row
      | None -> (
        match !pending with
        | [] -> None
        | p :: rest ->
          pending := rest;
          current := recur p;
          next ())
    in
    next

(* ------------------------------------------------------------------ *)

let rec open_plan params cat plan = open_with (open_plan params cat) params cat plan

(* Instrumented variant: every operator is wrapped in a counting cursor
   feeding a Plan.annotated node — rows produced, next() calls, and
   inclusive wall-clock (open + next, children included). Blocking
   operators therefore show their materialization cost in the open share
   of their time, exactly where it is paid. *)
let open_annotated params cat plan : cursor * Plan.annotated =
  let rec go plan =
    let a = Plan.annot (Plan.node_line plan) in
    let recur child =
      (* children are appended in execution order; Union_all opens its
         inputs lazily, so late children still land in the tree *)
      let c, ca = go child in
      a.Plan.an_children <- a.Plan.an_children @ [ ca ];
      c
    in
    let t0 = Metrics.now_ns () in
    let cur = open_with recur params cat plan in
    a.Plan.an_ns <- a.Plan.an_ns + (Metrics.now_ns () - t0);
    let instrumented () =
      let t0 = Metrics.now_ns () in
      let r = cur () in
      a.Plan.an_ns <- a.Plan.an_ns + (Metrics.now_ns () - t0);
      a.Plan.an_nexts <- a.Plan.an_nexts + 1;
      (match r with Some _ -> a.Plan.an_rows <- a.Plan.an_rows + 1 | None -> ());
      r
    in
    (instrumented, a)
  in
  go plan

type result = { columns : string list; rows : Value.t array list }

let columns_of cat plan =
  Array.to_list (Array.map (fun s -> s.Expr_eval.slot_name) (layout_of cat plan))

let run ?(params = [||]) cat plan =
  let columns = columns_of cat plan in
  let rows = to_list (open_plan params cat plan) in
  { columns; rows }

let run_analyzed ?(params = [||]) cat plan =
  let columns = columns_of cat plan in
  let cursor, annot = open_annotated params cat plan in
  let rows = to_list cursor in
  ({ columns; rows }, annot)
