(* B+-tree mapping composite keys (Value.t arrays, compared
   lexicographically) to postings lists of row ids. Non-unique by design:
   secondary indexes over heap tables.

   Classic algorithm: sorted keys in every node, splits on overflow, leaves
   chained for range scans. Deletion removes row ids from postings and drops
   empty keys from leaves without rebalancing (underfull leaves are
   tolerated); the tree never hands back freed nodes, which is the standard
   lazy-deletion tradeoff for an in-memory index. *)

let order = 32
(* max keys per node; min after split is order/2 *)

type key = Value.t array

let compare_key (a : key) (b : key) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then Int.compare (Array.length a) (Array.length b)
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* A prefix comparison: does [k] start with [prefix]? Used to scan an index
   on (a, b) with only a bound on a. *)
let key_has_prefix (k : key) (prefix : key) =
  Array.length prefix <= Array.length k
  &&
  let rec go i =
    i >= Array.length prefix || (Value.compare k.(i) prefix.(i) = 0 && go (i + 1))
  in
  go 0

type node =
  | Leaf of leaf
  | Internal of internal

and leaf = {
  mutable keys : key array;
  mutable postings : int list array;  (* row ids per key, most recent first *)
  mutable next : leaf option;
}

and internal = {
  mutable seps : key array;  (* seps.(i) = smallest key reachable under children.(i+1) *)
  mutable children : node array;
}

type t = { mutable root : node; mutable entries : int; mutable distinct : int }

let create () =
  { root = Leaf { keys = [||]; postings = [||]; next = None }; entries = 0; distinct = 0 }

let entry_count t = t.entries
let distinct_keys t = t.distinct

(* Index of the first key >= k, by binary search. *)
let lower_bound keys k =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Which child of an internal node covers key k. *)
let child_index (n : internal) k =
  let lo = ref 0 and hi = ref (Array.length n.seps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key n.seps.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert a i v =
  let n = Array.length a in
  let b = Array.make (n + 1) v in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let array_remove a i =
  let n = Array.length a in
  let b = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) b i (n - 1 - i);
  b

(* Result of inserting into a subtree: possibly a split (separator + new
   right sibling). *)
type split = No_split | Split of key * node

let rec insert_node node k rowid t =
  match node with
  | Leaf leaf ->
    let i = lower_bound leaf.keys k in
    if i < Array.length leaf.keys && compare_key leaf.keys.(i) k = 0 then begin
      leaf.postings.(i) <- rowid :: leaf.postings.(i);
      t.entries <- t.entries + 1;
      No_split
    end
    else begin
      leaf.keys <- array_insert leaf.keys i k;
      leaf.postings <- array_insert leaf.postings i [ rowid ];
      t.entries <- t.entries + 1;
      t.distinct <- t.distinct + 1;
      if Array.length leaf.keys <= order then No_split
      else begin
        Metrics.incr "db.btree.leaf_split";
        let mid = Array.length leaf.keys / 2 in
        let right =
          {
            keys = Array.sub leaf.keys mid (Array.length leaf.keys - mid);
            postings = Array.sub leaf.postings mid (Array.length leaf.postings - mid);
            next = leaf.next;
          }
        in
        leaf.keys <- Array.sub leaf.keys 0 mid;
        leaf.postings <- Array.sub leaf.postings 0 mid;
        leaf.next <- Some right;
        Split (right.keys.(0), Leaf right)
      end
    end
  | Internal n -> (
    let ci = child_index n k in
    match insert_node n.children.(ci) k rowid t with
    | No_split -> No_split
    | Split (sep, new_child) ->
      n.seps <- array_insert n.seps ci sep;
      n.children <- array_insert n.children (ci + 1) new_child;
      if Array.length n.children <= order then No_split
      else begin
        Metrics.incr "db.btree.internal_split";
        let mid = Array.length n.seps / 2 in
        let up = n.seps.(mid) in
        let right =
          {
            seps = Array.sub n.seps (mid + 1) (Array.length n.seps - mid - 1);
            children = Array.sub n.children (mid + 1) (Array.length n.children - mid - 1);
          }
        in
        n.seps <- Array.sub n.seps 0 mid;
        n.children <- Array.sub n.children 0 (mid + 1);
        Split (up, Internal right)
      end)

let insert t k rowid =
  match insert_node t.root k rowid t with
  | No_split -> ()
  | Split (sep, right) -> t.root <- Internal { seps = [| sep |]; children = [| t.root; right |] }

let rec find_leaf node k =
  match node with
  | Leaf leaf -> leaf
  | Internal n -> find_leaf n.children.(child_index n k) k

let rec leftmost_leaf = function
  | Leaf leaf -> leaf
  | Internal n -> leftmost_leaf n.children.(0)

let lookup t k =
  let leaf = find_leaf t.root k in
  let i = lower_bound leaf.keys k in
  if i < Array.length leaf.keys && compare_key leaf.keys.(i) k = 0 then List.rev leaf.postings.(i)
  else []

let remove t k rowid =
  let leaf = find_leaf t.root k in
  let i = lower_bound leaf.keys k in
  if i < Array.length leaf.keys && compare_key leaf.keys.(i) k = 0 then begin
    let before = leaf.postings.(i) in
    let after = List.filter (fun r -> r <> rowid) before in
    if List.length after < List.length before then begin
      t.entries <- t.entries - (List.length before - List.length after);
      if after = [] then begin
        leaf.keys <- array_remove leaf.keys i;
        leaf.postings <- array_remove leaf.postings i;
        t.distinct <- t.distinct - 1
      end
      else leaf.postings.(i) <- after
    end
  end

type bound = Unbounded | Inclusive of key | Exclusive of key

let below_upper upper k =
  match upper with
  | Unbounded -> true
  | Inclusive u -> compare_key k u <= 0
  | Exclusive u -> compare_key k u < 0

let above_lower lower k =
  match lower with
  | Unbounded -> true
  | Inclusive l -> compare_key k l >= 0
  | Exclusive l -> compare_key k l > 0

(* Iterate (key, rowid) pairs with keys in [lower, upper], ascending. *)
let iter_range t ~lower ~upper f =
  let start_leaf =
    match lower with
    | Unbounded -> leftmost_leaf t.root
    | Inclusive k | Exclusive k -> find_leaf t.root k
  in
  let rec walk (leaf : leaf) =
    let continue_ = ref true in
    let n = Array.length leaf.keys in
    let i = ref 0 in
    while !continue_ && !i < n do
      let k = leaf.keys.(!i) in
      if not (below_upper upper k) then continue_ := false
      else begin
        if above_lower lower k then List.iter (fun rowid -> f k rowid) (List.rev leaf.postings.(!i));
        incr i
      end
    done;
    if !continue_ then match leaf.next with Some nxt -> walk nxt | None -> ()
  in
  walk start_leaf

let range t ~lower ~upper =
  let acc = ref [] in
  iter_range t ~lower ~upper (fun k rowid -> acc := (k, rowid) :: !acc);
  List.rev !acc

let iter t f = iter_range t ~lower:Unbounded ~upper:Unbounded f

(* Scan all entries whose key starts with [prefix]. *)
let iter_prefix t prefix f =
  let start_leaf = find_leaf t.root prefix in
  let rec walk (leaf : leaf) =
    let continue_ = ref true in
    let n = Array.length leaf.keys in
    let i = ref 0 in
    while !continue_ && !i < n do
      let k = leaf.keys.(!i) in
      if compare_key k prefix >= 0 && not (key_has_prefix k prefix) then continue_ := false
      else begin
        if key_has_prefix k prefix then List.iter (fun rowid -> f k rowid) (List.rev leaf.postings.(!i));
        incr i
      end
    done;
    if !continue_ then match leaf.next with Some nxt -> walk nxt | None -> ()
  in
  walk start_leaf

(* ------------------------------------------------------------------ *)
(* Bottom-up bulk build: pack the distinct keys into leaves level by
   level — parents over the subtree minima — until one root remains.
   Observationally equal to repeated [insert] — same postings order (most
   recent first per key, reversed again on read) and same ascending
   iteration — though leaves pack fuller, so the shape and [height] may
   differ from an incrementally grown tree. [bulk_of_groups] takes the
   postings pre-grouped (strictly ascending keys, each group most recent
   first), so callers with low-cardinality keys can hash-group in O(rows)
   and sort only the distinct keys; [bulk_of_sorted] takes flat (key,
   rowid) pairs sorted by key with duplicates adjacent in insertion
   order. *)

let bulk_of_arrays ?(check = true) (dkeys : key array) (dposts : int list array) =
  let d = Array.length dkeys in
  if d <> Array.length dposts then invalid_arg "Btree.bulk_of_arrays: length mismatch";
  Metrics.incr "db.btree.bulk_build";
  if d = 0 then create ()
  else begin
    if check then
      for i = 0 to d - 1 do
        if i > 0 && compare_key dkeys.(i - 1) dkeys.(i) >= 0 then
          invalid_arg "Btree.bulk_of_arrays: keys not strictly ascending";
        if dposts.(i) = [] then invalid_arg "Btree.bulk_of_arrays: empty postings"
      done;
    let n = ref 0 in
    Array.iter (fun posts -> n := !n + List.length posts) dposts;
    let n = !n in
    (* spread the d distinct keys evenly over ceil(d/order) leaves, so no
       leaf ends up pathologically small *)
    let nleaves = (d + order - 1) / order in
    let base = d / nleaves and extra = d mod nleaves in
    let leaves =
      Array.init nleaves (fun li ->
          let off = (li * base) + min li extra in
          let len = base + if li < extra then 1 else 0 in
          { keys = Array.sub dkeys off len; postings = Array.sub dposts off len; next = None })
    in
    for li = 0 to nleaves - 2 do
      leaves.(li).next <- Some leaves.(li + 1)
    done;
    (* each level entry is (smallest key in subtree, subtree root) *)
    let rec up (nodes : (key * node) array) =
      let m = Array.length nodes in
      if m = 1 then snd nodes.(0)
      else begin
        let groups = (m + order - 1) / order in
        let gbase = m / groups and gextra = m mod groups in
        up
          (Array.init groups (fun gi ->
               let off = (gi * gbase) + min gi gextra in
               let len = gbase + if gi < gextra then 1 else 0 in
               let children = Array.init len (fun i -> snd nodes.(off + i)) in
               let seps = Array.init (len - 1) (fun i -> fst nodes.(off + i + 1)) in
               (fst nodes.(off), Internal { seps; children })))
      end
    in
    let root = up (Array.map (fun leaf -> (leaf.keys.(0), Leaf leaf)) leaves) in
    { root; entries = n; distinct = d }
  end

let bulk_of_groups (groups : (key * int list) array) =
  bulk_of_arrays (Array.map fst groups) (Array.map snd groups)

let bulk_of_sorted (pairs : (key * int) array) =
  let n = Array.length pairs in
  if n = 0 then create ()
  else begin
    let distinct = ref 1 in
    for i = 1 to n - 1 do
      let c = compare_key (fst pairs.(i - 1)) (fst pairs.(i)) in
      if c > 0 then invalid_arg "Btree.bulk_of_sorted: keys not sorted";
      if c <> 0 then incr distinct
    done;
    let groups = Array.make !distinct ([||], []) in
    let j = ref (-1) in
    Array.iter
      (fun (k, rowid) ->
        if !j >= 0 && compare_key (fst groups.(!j)) k = 0 then begin
          let gk, posts = groups.(!j) in
          groups.(!j) <- (gk, rowid :: posts)
        end
        else begin
          incr j;
          groups.(!j) <- (k, [ rowid ])
        end)
      pairs;
    bulk_of_groups groups
  end

(* Rebuild with extra sorted pairs folded in. The appended pairs must be
   new (bulk appends only ever add fresh, larger row ids); on equal keys
   they land after the existing postings, preserving insertion order. *)
let bulk_merge t (pairs : (key * int) array) =
  let n_new = Array.length pairs in
  Metrics.incr "db.btree.bulk_merge";
  if n_new = 0 then t
  else begin
    let n_old = t.entries in
    let old = Array.make n_old ([||], 0) in
    let i = ref 0 in
    iter t (fun k rowid ->
        old.(!i) <- (k, rowid);
        incr i);
    let merged = Array.make (n_old + n_new) ([||], 0) in
    let a = ref 0 and b = ref 0 in
    for m = 0 to n_old + n_new - 1 do
      let take_old =
        !b >= n_new || (!a < n_old && compare_key (fst old.(!a)) (fst pairs.(!b)) <= 0)
      in
      if take_old then begin
        merged.(m) <- old.(!a);
        incr a
      end
      else begin
        merged.(m) <- pairs.(!b);
        incr b
      end
    done;
    bulk_of_sorted merged
  end

let rec node_height = function
  | Leaf _ -> 1
  | Internal n -> 1 + node_height n.children.(0)

let height t = node_height t.root

(* Structural invariants, used by tests: key order within and across leaves,
   separator correctness, postings non-empty. *)
let check_invariants t =
  let ok = ref true in
  let prev = ref None in
  iter t (fun k _ ->
      (match !prev with
      | Some p when compare_key p k > 0 -> ok := false
      | Some _ | None -> ());
      prev := Some k);
  let rec check_node lo hi = function
    | Leaf leaf ->
      Array.iter
        (fun k ->
          (match lo with Some l when compare_key k l < 0 -> ok := false | Some _ | None -> ());
          match hi with Some h when compare_key k h >= 0 -> ok := false | Some _ | None -> ())
        leaf.keys;
      Array.iter (fun p -> if p = [] then ok := false) leaf.postings
    | Internal n ->
      if Array.length n.children <> Array.length n.seps + 1 then ok := false;
      Array.iteri
        (fun i child ->
          let lo' = if i = 0 then lo else Some n.seps.(i - 1) in
          let hi' = if i = Array.length n.seps then hi else Some n.seps.(i) in
          check_node lo' hi' child)
        n.children
  in
  check_node None None t.root;
  !ok
