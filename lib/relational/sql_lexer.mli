(** SQL tokenizer. Keywords are case-insensitive; identifiers keep their
    case and may be double-quoted to escape reserved words; [--] starts a
    line comment. *)

type token =
  | Ident of string
  | Keyword of string  (** uppercased *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Param_tok of int  (** [?N] positional placeholder, 1-based *)
  | Symbol of string
  | Eof

exception Lex_error of string

val is_keyword : string -> bool
val tokenize : string -> token list
(** Ends with [Eof]. @raise Lex_error on unterminated literals or stray
    characters. *)

val token_to_string : token -> string
