(* Query planner: lowers a parsed SELECT into a [Plan.t].

   Pipeline: qualify column references -> split the WHERE conjunction ->
   choose per-table access paths (B+-tree index vs sequential scan) ->
   greedy join ordering (hash joins on equi-predicates, nested loops
   otherwise) -> aggregation rewriting -> sort/project/distinct/limit. *)

open Sql_ast

exception Plan_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Plan_error s)) fmt

type catalog = { find_table : string -> Table.t option; stats : Stats.t }

let make_catalog find_table = { find_table; stats = Stats.create () }

let get_table cat name =
  match cat.find_table name with
  | Some t -> t
  | None -> err "no such table: %s" name

(* ------------------------------------------------------------------ *)
(* Expression utilities *)

let rec map_expr f e =
  match f e with
  | Some replaced -> replaced
  | None -> (
    match e with
    | Lit _ | Param _ | Col _ -> e
    | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
    | Unop (op, a) -> Unop (op, map_expr f a)
    | Is_null r -> Is_null { r with arg = map_expr f r.arg }
    | Like r -> Like { r with arg = map_expr f r.arg; pattern = map_expr f r.pattern }
    | In_list r -> In_list { r with arg = map_expr f r.arg; items = List.map (map_expr f) r.items }
    | Between r ->
      Between { arg = map_expr f r.arg; low = map_expr f r.low; high = map_expr f r.high }
    | Call r -> Call { r with args = List.map (map_expr f) r.args })

let rec split_and = function
  | Binop (And, a, b) -> split_and a @ split_and b
  | e -> [ e ]

let conjoin = function
  | [] -> None
  | first :: rest -> Some (List.fold_left (fun acc e -> Binop (And, acc, e)) first rest)

let is_constant e =
  Sql_ast.fold_expr
    (fun acc sub -> acc && match sub with Col _ -> false | _ -> true)
    true e

(* ------------------------------------------------------------------ *)
(* Name qualification *)

type from_binding = { b_alias : string; b_table : Table.t }

let bind_from cat (from : table_ref list) =
  if from = [] then err "FROM clause is empty";
  let bindings =
    List.map
      (fun { table; alias } ->
        { b_alias = Option.value ~default:table alias; b_table = get_table cat table })
      from
  in
  let seen = Hashtbl.create 4 in
  List.iter
    (fun b ->
      let key = String.lowercase_ascii b.b_alias in
      if Hashtbl.mem seen key then err "duplicate table alias %s" b.b_alias;
      Hashtbl.add seen key ())
    bindings;
  bindings

(* Rewrite every unqualified column to alias.column; fail on ambiguity. *)
let qualify bindings e =
  map_expr
    (function
      | Col { table = None; column } -> (
        let owners =
          List.filter
            (fun b -> Option.is_some (Schema.find_column (Table.schema b.b_table) column))
            bindings
        in
        match owners with
        | [ b ] -> Some (Col { table = Some b.b_alias; column })
        | [] -> err "unknown column %s" column
        | _ -> err "ambiguous column %s" column)
      | Col { table = Some t; column } ->
        let known =
          List.exists (fun b -> String.equal (String.lowercase_ascii b.b_alias) (String.lowercase_ascii t)) bindings
        in
        if not known then err "unknown table or alias %s" t
        else if
          not
            (List.exists
               (fun b ->
                 String.equal (String.lowercase_ascii b.b_alias) (String.lowercase_ascii t)
                 && Option.is_some (Schema.find_column (Table.schema b.b_table) column))
               bindings)
        then err "unknown column %s.%s" t column
        else None
      | _ -> None)
    e

(* Aliases referenced by an already-qualified expression. *)
let aliases_of e = Sql_ast.referenced_tables e

(* ------------------------------------------------------------------ *)
(* Access-path selection *)

(* Recognize a bound on a single column from one conjunct. Returns
   (column, lower, upper, is_exact) where is_exact says the conjunct is
   fully captured by the bounds (no residual filter needed). *)
type col_bound = {
  cb_column : string;
  cb_lower : (expr * bool) option;
  cb_upper : (expr * bool) option;
  cb_exact : bool;
}

let like_prefix pattern =
  (* Literal prefix of a LIKE pattern before the first wildcard. *)
  let n = String.length pattern in
  let rec go i = if i >= n || pattern.[i] = '%' || pattern.[i] = '_' then i else go (i + 1) in
  let k = go 0 in
  if k = 0 then None else Some (String.sub pattern 0 k)

(* Smallest string strictly greater than every string that starts with
   [prefix]: drop trailing '\xff' bytes (nothing sorts between "a\xff…"
   and the successor of "a") and increment the last remaining byte.
   [None] when the prefix is all '\xff' — no finite upper bound exists and
   the scan must stay open-ended. Appending "\xff" instead, as a naive
   bound, wrongly excludes stored values like "ab\xff…" from LIKE 'ab%'. *)
let like_prefix_successor prefix =
  let rec last_incrementable i =
    if i < 0 then None
    else if prefix.[i] = '\xff' then last_incrementable (i - 1)
    else Some i
  in
  match last_incrementable (String.length prefix - 1) with
  | None -> None
  | Some i -> Some (String.sub prefix 0 i ^ String.make 1 (Char.chr (Char.code prefix.[i] + 1)))

let conjunct_bound ~alias conjunct =
  let col_of = function
    | Col { table = Some t; column } when String.equal t alias -> Some column
    | _ -> None
  in
  match conjunct with
  | Binop (Eq, a, b) -> (
    match (col_of a, col_of b) with
    | Some c, None when is_constant b ->
      Some { cb_column = c; cb_lower = Some (b, true); cb_upper = Some (b, true); cb_exact = true }
    | None, Some c when is_constant a ->
      Some { cb_column = c; cb_lower = Some (a, true); cb_upper = Some (a, true); cb_exact = true }
    | _ -> None)
  | Binop (((Lt | Le | Gt | Ge) as op), a, b) -> (
    let bound col value op =
      match op with
      | Lt -> Some { cb_column = col; cb_lower = None; cb_upper = Some (value, false); cb_exact = true }
      | Le -> Some { cb_column = col; cb_lower = None; cb_upper = Some (value, true); cb_exact = true }
      | Gt -> Some { cb_column = col; cb_lower = Some (value, false); cb_upper = None; cb_exact = true }
      | Ge -> Some { cb_column = col; cb_lower = Some (value, true); cb_upper = None; cb_exact = true }
      | _ -> None
    in
    let flip = function Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le | op -> op in
    match (col_of a, col_of b) with
    | Some c, None when is_constant b -> bound c b op
    | None, Some c when is_constant a -> bound c a (flip op)
    | _ -> None)
  | Between { arg; low; high } -> (
    match col_of arg with
    | Some c when is_constant low && is_constant high ->
      Some { cb_column = c; cb_lower = Some (low, true); cb_upper = Some (high, true); cb_exact = true }
    | _ -> None)
  | Like { negated = false; arg; pattern = Lit (Value.Text p) } -> (
    match (col_of arg, like_prefix p) with
    | Some c, Some prefix ->
      (* prefix range ["p", successor(p)); the LIKE itself remains as
         residual. An all-'\xff' prefix has no successor: scan upward
         unbounded. *)
      let upper =
        Option.map
          (fun s -> (Lit (Value.Text s), false))
          (like_prefix_successor prefix)
      in
      Some
        {
          cb_column = c;
          cb_lower = Some (Lit (Value.Text prefix), true);
          cb_upper = upper;
          cb_exact = false;
        }
    | _ -> None)
  | _ -> None

(* IN-list over an indexed column becomes a set of index probes. *)
let conjunct_in_list ~alias conjunct =
  match conjunct with
  | In_list { negated = false; arg = Col { table = Some t; column }; items }
    when String.equal t alias && items <> [] && List.for_all is_constant items ->
    Some (column, items)
  | _ -> None

(* Pick an access path for one table given its pushed-down conjuncts.
   Returns the plan and the conjuncts that remain as a residual filter. *)
let access_path cat table ~alias conjuncts =
  let tbl_name = Table.name table in
  let candidates =
    List.filter_map
      (fun c -> match conjunct_bound ~alias c with Some b -> Some (c, b) | None -> None)
      conjuncts
  in
  (* Prefer an index whose leading column has an equality bound, then any
     bounded column with an index. *)
  let indexed (c, b) =
    match Schema.find_column (Table.schema table) b.cb_column with
    | None -> None
    | Some ci -> (
      match Table.index_with_prefix table [| ci |] with
      | Some ix -> Some (c, b, ix)
      | None -> None)
  in
  let with_index = List.filter_map indexed candidates in
  let is_eq (_, b, _) = match (b.cb_lower, b.cb_upper) with
    | Some (l, true), Some (u, true) -> l = u
    | _ -> false
  in
  (* among several indexed equality candidates, probe the most selective
     column (smallest 1/distinct) per the column statistics *)
  let selectivity (_, b, _) =
    match Schema.find_column (Table.schema table) b.cb_column with
    | Some ci -> Stats.eq_selectivity (Stats.get cat.stats table) ~column:ci
    | None -> 1.0
  in
  let choice =
    match List.filter is_eq with_index with
    | [] -> ( match with_index with c :: _ -> Some c | [] -> None)
    | [ c ] -> Some c
    | eqs ->
      Some
        (List.fold_left
           (fun best c -> if selectivity c < selectivity best then c else best)
           (List.hd eqs) (List.tl eqs))
  in
  let in_list_choice =
    List.find_map
      (fun c ->
        match conjunct_in_list ~alias c with
        | Some (column, items) -> (
          match Schema.find_column (Table.schema table) column with
          | None -> None
          | Some ci -> (
            match Table.index_with_prefix table [| ci |] with
            | Some ix -> Some (c, items, ix)
            | None -> None))
        | None -> None)
      conjuncts
  in
  match (choice, in_list_choice) with
  | None, Some (used, items, ix) ->
    let residual = List.filter (fun c -> c != used) conjuncts in
    ( Plan.Index_probes
        { table = tbl_name; alias; index_name = ix.Table.index_name; keys = items },
      residual )
  | None, None -> (Plan.Seq_scan { table = tbl_name; alias }, conjuncts)
  | Some (used_conjunct, b, ix), _ ->
    (* a one-sided range pairs up with a complementary one-sided range on
       the same column (e.g. pre > x AND pre <= y becomes one scan) *)
    let complement =
      if Option.is_none b.cb_lower || Option.is_none b.cb_upper then
        List.find_opt
          (fun (c2, b2, ix2) ->
            c2 != used_conjunct && ix2 == ix
            && String.equal b2.cb_column b.cb_column
            && b2.cb_exact
            &&
            match b.cb_lower with
            | None -> Option.is_some b2.cb_lower && Option.is_none b2.cb_upper
            | Some _ -> Option.is_some b2.cb_upper && Option.is_none b2.cb_lower)
          with_index
      else None
    in
    let lower, upper, used =
      match complement with
      | Some (c2, b2, _) ->
        ( (match b.cb_lower with Some l -> Some l | None -> b2.cb_lower),
          (match b.cb_upper with Some u -> Some u | None -> b2.cb_upper),
          [ used_conjunct; c2 ] )
      | None -> (b.cb_lower, b.cb_upper, [ used_conjunct ])
    in
    let residual =
      List.filter (fun c -> not (List.memq c used)) conjuncts
      @ (if b.cb_exact then [] else [ used_conjunct ])
    in
    ( Plan.Index_scan
        { table = tbl_name; alias; index_name = ix.Table.index_name; lower; upper },
      residual )

(* Cardinality estimate driving the greedy join order. Equality predicates
   on a known column use rows/distinct from the column statistics; range
   predicates with literal bounds use the column's equi-width histogram;
   other predicate shapes keep fixed selectivities. *)
let estimate cat ~alias table conjuncts =
  let base = float_of_int (max 1 (Table.row_count table)) in
  let stats = lazy (Stats.get cat.stats table) in
  let eq_col c =
    let col_of = function
      | Col { table = Some t; column } when String.equal t alias ->
        Schema.find_column (Table.schema table) column
      | _ -> None
    in
    match c with
    | Binop (Eq, a, b) -> (
      match (col_of a, col_of b) with
      | Some i, None when is_constant b -> Some i
      | None, Some i when is_constant a -> Some i
      | _ -> None)
    | _ -> None
  in
  let lit_bound = function Some (Lit v, incl) -> Some (v, incl) | _ -> None in
  let range_sel c =
    (* Histogram fraction when the conjunct is a recognizable bound with at
       least one literal endpoint; the fixed 1/4 guess otherwise. *)
    match conjunct_bound ~alias c with
    | Some b -> (
      match Schema.find_column (Table.schema table) b.cb_column with
      | Some i ->
        let lo = lit_bound b.cb_lower and hi = lit_bound b.cb_upper in
        if lo = None && hi = None then 0.25
        else Stats.range_selectivity (Lazy.force stats) ~column:i ~lower:lo ~upper:hi
      | None -> 0.25)
    | None -> 0.25
  in
  List.fold_left
    (fun est c ->
      match c with
      | Binop (Eq, _, _) -> (
        match eq_col c with
        | Some i -> est *. Stats.eq_selectivity (Lazy.force stats) ~column:i
        | None -> est /. 20.0)
      | Binop ((Lt | Le | Gt | Ge), _, _) | Between _ -> est *. range_sel c
      | Like _ -> est /. 10.0
      | _ -> est /. 2.0)
    base conjuncts

(* ------------------------------------------------------------------ *)
(* Plan-level cardinality estimation *)

(* Output-cardinality estimate for a physical plan node, driving the lint
   pass's row-explosion check and the est= column of EXPLAIN ANALYZE.
   Scans are statistics-backed (histograms for literal-bounded index
   ranges, distinct counts for point lookups); the operators above them
   apply coarse fixed selectivities. *)
let rec estimate_plan (cat : catalog) (plan : Plan.t) : int =
  let table_rows name =
    match cat.find_table name with
    | None -> 1
    | Some t -> (Stats.get cat.stats t).Stats.ts_rows
  in
  match plan with
  | Plan.Seq_scan { table; _ } -> max 1 (table_rows table)
  | Plan.Index_scan { table; index_name; lower; upper; _ } -> (
    let rows = max 1 (table_rows table) in
    let lit_bound = function Some (Lit v, incl) -> Some (Some (v, incl)) | Some _ -> None | None -> Some None in
    let stats_sel =
      match cat.find_table table with
      | None -> None
      | Some t -> (
        match Table.find_index t index_name with
        | Some ix when Array.length ix.Table.key_columns > 0 -> (
          match (lit_bound lower, lit_bound upper) with
          | Some lo, Some hi when not (lo = None && hi = None) ->
            let st = Stats.get cat.stats t in
            let column = ix.Table.key_columns.(0) in
            let point =
              match (lo, hi) with Some (l, true), Some (u, true) -> l = u | _ -> false
            in
            if point then Some (Stats.eq_selectivity st ~column)
            else Some (Stats.range_selectivity st ~column ~lower:lo ~upper:hi)
          | _ -> None)
        | _ -> None)
    in
    match stats_sel with
    | Some sel -> max 1 (int_of_float (Float.round (sel *. float_of_int rows)))
    | None ->
      let exact_point =
        match (lower, upper) with Some (l, true), Some (u, true) -> l = u | _ -> false
      in
      if exact_point then max 1 (rows / 100) else max 1 (rows / 4))
  | Plan.Index_probes { table; keys; _ } ->
    let rows = max 1 (table_rows table) in
    max 1 (min rows (List.length keys * max 1 (rows / 100)))
  | Plan.Filter (_, p) -> max 1 (estimate_plan cat p / 2)
  | Plan.Project (_, p) | Plan.Sort (_, p) -> estimate_plan cat p
  | Plan.Distinct p -> max 1 (estimate_plan cat p / 2)
  | Plan.Limit (n, p) -> min n (estimate_plan cat p)
  | Plan.Nl_join (a, b) -> estimate_plan cat a * estimate_plan cat b
  | Plan.Hash_join { build; probe; _ } -> max (estimate_plan cat build) (estimate_plan cat probe)
  | Plan.Staircase_join { left; right; _ } ->
    (* one match per descendant on average: bounded by the larger side *)
    max (estimate_plan cat left) (estimate_plan cat right)
  | Plan.Aggregate { group_by = []; _ } -> 1
  | Plan.Aggregate { input; _ } -> max 1 (estimate_plan cat input / 2)
  | Plan.Union_all ps -> List.fold_left (fun acc p -> acc + estimate_plan cat p) 0 ps

(* ------------------------------------------------------------------ *)
(* Join ordering *)

type join_input = { ji_alias : string; ji_plan : Plan.t; ji_est : float }

(* A conjunct [ea = eb] with ea over exactly one alias and eb over exactly
   one other alias is an equi-join predicate. *)
let as_equi_join conjunct =
  match conjunct with
  | Binop (Eq, a, b) -> (
    match (aliases_of a, aliases_of b) with
    | [ ta ], [ tb ] when not (String.equal ta tb) -> Some (ta, a, tb, b)
    | _ -> None)
  | _ -> None

(* Structural-join detection. A pair of pending theta conjuncts of the
   shape [k > lo AND k <= hi] (any strictness), with [k] over exactly one
   alias on one side and both bounds over alias(es) of the other side, is
   an interval containment predicate — the interval scheme's
   ancestor/descendant test — and plans as a Staircase_join instead of a
   cross product plus filter. *)

let staircase_enabled = Atomic.make true
let set_staircase b = Atomic.set staircase_enabled b

(* Each conjunct read both ways round: (key, bound, is_upper, strict)
   meaning [key > / >= bound] (lower) or [key < / <= bound] (upper). *)
let range_readings c =
  match c with
  | Binop (Gt, a, b) -> [ (a, b, false, true); (b, a, true, true) ]
  | Binop (Ge, a, b) -> [ (a, b, false, false); (b, a, true, false) ]
  | Binop (Lt, a, b) -> [ (a, b, true, true); (b, a, false, true) ]
  | Binop (Le, a, b) -> [ (a, b, true, false); (b, a, false, false) ]
  | _ -> []

(* Find a lower/upper pair over the same key expression among [pending],
   with the key over an alias satisfying [desc_ok] and the bounds over
   aliases satisfying [anc_ok]. Returns the two consumed conjuncts plus
   the staircase fields. *)
let containment_pair pending ~desc_ok ~anc_ok =
  let readings c =
    List.filter
      (fun (k, b, _, _) ->
        (match aliases_of k with [ a ] -> desc_ok a | _ -> false)
        &&
        let bs = aliases_of b in
        bs <> [] && List.for_all anc_ok bs)
      (range_readings c)
    |> List.map (fun r -> (c, r))
  in
  let all = List.concat_map readings pending in
  let lowers = List.filter (fun (_, (_, _, up, _)) -> not up) all in
  let uppers = List.filter (fun (_, (_, _, up, _)) -> up) all in
  List.find_map
    (fun (lc, (k, lo, _, lstrict)) ->
      List.find_map
        (fun (uc, (k', hi, _, ustrict)) ->
          if lc != uc && k = k' then Some (lc, uc, k, lo, hi, lstrict, ustrict) else None)
        uppers)
    lowers

let order_joins inputs join_preds extra_filters =
  match inputs with
  | [] -> err "nothing to join"
  | _ ->
    let remaining = ref (List.sort (fun a b -> Float.compare a.ji_est b.ji_est) inputs) in
    let first = List.hd !remaining in
    remaining := List.tl !remaining;
    let joined = ref [ first.ji_alias ] in
    let plan = ref first.ji_plan in
    let unused_preds = ref join_preds in
    (* Non-equi conjuncts spanning several tables (theta joins, e.g. the
       interval scheme's containment ranges) apply as soon as every alias
       they mention is in the joined prefix — not above the whole join
       tree, where rows from unrelated tables would be multiplied first. *)
    let pending = ref extra_filters in
    let apply_pending () =
      let ready, rest =
        List.partition
          (fun c -> List.for_all (fun a -> List.mem a !joined) (aliases_of c))
          !pending
      in
      pending := rest;
      match conjoin ready with None -> () | Some f -> plan := Plan.Filter (f, !plan)
    in
    apply_pending ();
    while !remaining <> [] do
      (* predicates connecting the joined set to each candidate *)
      let connecting cand =
        List.filter
          (fun (ta, _, tb, _) ->
            (List.mem ta !joined && String.equal tb cand.ji_alias)
            || (List.mem tb !joined && String.equal ta cand.ji_alias))
          !unused_preds
      in
      let connected = List.filter (fun c -> connecting c <> []) !remaining in
      (* No equi link: before falling back to a cross product, look for a
         containment pair linking the joined prefix to a candidate — either
         direction (candidate as descendant or as ancestor). *)
      let staircase_with cand =
        if not (Atomic.get staircase_enabled) then None
        else
          let is_cand a = String.equal a cand.ji_alias in
          let in_joined a = List.mem a !joined in
          match containment_pair !pending ~desc_ok:is_cand ~anc_ok:in_joined with
          | Some (lc, uc, k, lo, hi, ls, us) -> Some (lc, uc, k, lo, hi, ls, us, false)
          | None -> (
            match containment_pair !pending ~desc_ok:in_joined ~anc_ok:is_cand with
            | Some (lc, uc, k, lo, hi, ls, us) -> Some (lc, uc, k, lo, hi, ls, us, true)
            | None -> None)
      in
      let pick, staircase =
        match connected with
        | c :: _ -> (c, None)
        | [] -> (
          match
            List.find_map
              (fun c -> Option.map (fun s -> (c, s)) (staircase_with c))
              !remaining
          with
          | Some (c, s) -> (c, Some s)
          | None -> (List.hd !remaining, None) (* forced cross product *))
      in
      let preds = connecting pick in
      (match (staircase, preds) with
      | Some (lc, uc, k, lo, hi, lower_strict, upper_strict, desc_on_left), _ ->
        plan :=
          Plan.Staircase_join
            {
              left = !plan;
              right = pick.ji_plan;
              desc_on_left;
              desc_key = k;
              anc_lower = lo;
              anc_upper = hi;
              lower_strict;
              upper_strict;
            };
        (* consumed: must not re-apply as a filter once the pair's aliases
           are all in the joined prefix *)
        pending := List.filter (fun c -> c != lc && c != uc) !pending
      | None, [] -> plan := Plan.Nl_join (!plan, pick.ji_plan)
      | None, preds ->
        let probe_keys, build_keys =
          List.split
            (List.map
               (fun (ta, ea, _tb, eb) ->
                 if List.mem ta !joined then (ea, eb) else (eb, ea))
               preds)
        in
        plan :=
          Plan.Hash_join { build = pick.ji_plan; probe = !plan; build_keys; probe_keys };
        unused_preds := List.filter (fun p -> not (List.memq p preds)) !unused_preds);
      joined := pick.ji_alias :: !joined;
      remaining := List.filter (fun c -> c != pick) !remaining;
      apply_pending ()
    done;
    (!plan, !unused_preds, !pending)

(* ------------------------------------------------------------------ *)
(* Aggregation rewriting *)

let find_aggregates exprs =
  let add acc e = if List.exists (fun x -> x = e) acc then acc else acc @ [ e ] in
  List.fold_left
    (fun acc e ->
      Sql_ast.fold_expr (fun acc sub -> if is_aggregate_call sub then add acc sub else acc) acc e)
    [] exprs

let agg_of_call = function
  | Call { func; star; distinct; args } ->
    {
      Plan.agg_func = String.lowercase_ascii func;
      agg_distinct = distinct;
      agg_star = star;
      agg_arg = (match args with [ a ] -> Some a | [] -> None | _ -> err "aggregates take one argument");
    }
  | _ -> assert false

(* Replace group-by expressions with #gI and aggregate calls with #aI. *)
let rewrite_post_agg ~group_by ~agg_calls e =
  let find_index p l =
    let rec go i = function [] -> None | x :: r -> if p x then Some i else go (i + 1) r in
    go 0 l
  in
  map_expr
    (fun sub ->
      match find_index (fun g -> g = sub) group_by with
      | Some i -> Some (Col { table = None; column = Printf.sprintf "#g%d" i })
      | None -> (
        match find_index (fun a -> a = sub) agg_calls with
        | Some i -> Some (Col { table = None; column = Printf.sprintf "#a%d" i })
        | None -> None))
    e

(* ------------------------------------------------------------------ *)
(* SELECT planning *)

let expand_projections bindings projections =
  List.concat_map
    (function
      | All ->
        List.concat_map
          (fun b ->
            List.map
              (fun c -> (Col { table = Some b.b_alias; column = c }, c))
              (Schema.column_names (Table.schema b.b_table)))
          bindings
      | Table_all t -> (
        match
          List.find_opt
            (fun b -> String.equal (String.lowercase_ascii b.b_alias) (String.lowercase_ascii t))
            bindings
        with
        | None -> err "unknown table or alias %s in %s.*" t t
        | Some b ->
          List.map
            (fun c -> (Col { table = Some b.b_alias; column = c }, c))
            (Schema.column_names (Table.schema b.b_table)))
      | Proj (e, alias) ->
        let name =
          match alias with
          | Some a -> a
          | None -> (
            match e with
            | Col { column; _ } -> column
            | e -> Sql_ast.expr_to_string e)
        in
        [ (e, name) ])
    projections

let plan_select cat (s : select) : Plan.t =
  let bindings = bind_from cat s.from in
  let projections = expand_projections bindings s.projections in
  (* Substitute projection aliases appearing in ORDER BY / HAVING. *)
  let alias_subst e =
    map_expr
      (function
        | Col { table = None; column } -> (
          match
            List.find_opt
              (fun (pe, name) ->
                String.equal (String.lowercase_ascii name) (String.lowercase_ascii column)
                && (match pe with Col { column = c; _ } -> not (String.equal c column) | _ -> true))
              projections
          with
          | Some (pe, _) -> Some pe
          | None -> None)
        | _ -> None)
      e
  in
  let order_by =
    List.map (fun o -> { o with order_expr = alias_subst o.order_expr }) s.order_by
  in
  let having = Option.map alias_subst s.having in
  (* Qualify everything. *)
  let projections = List.map (fun (e, n) -> (qualify bindings e, n)) projections in
  let where = Option.map (qualify bindings) s.where in
  let group_by = List.map (qualify bindings) s.group_by in
  let having = Option.map (qualify bindings) having in
  let order_by = List.map (fun o -> { o with order_expr = qualify bindings o.order_expr }) order_by in
  (* Split and classify conjuncts. *)
  let conjuncts = match where with None -> [] | Some w -> split_and w in
  let join_preds = List.filter_map as_equi_join conjuncts in
  let join_pred_exprs = List.filter (fun c -> as_equi_join c <> None) conjuncts in
  let single_table_of c =
    match aliases_of c with [ a ] -> Some a | _ -> None
  in
  let pushed, leftover =
    List.partition
      (fun c -> (not (List.memq c join_pred_exprs)) && single_table_of c <> None)
      (List.filter (fun c -> not (List.memq c join_pred_exprs)) conjuncts)
    |> fun (p, l) -> (p, l)
  in
  (* Per-table access paths. *)
  let inputs =
    List.map
      (fun b ->
        let mine =
          List.filter
            (fun c -> match single_table_of c with
              | Some a -> String.equal a b.b_alias
              | None -> false)
            pushed
        in
        let path, residual = access_path cat b.b_table ~alias:b.b_alias mine in
        let plan = match conjoin residual with None -> path | Some f -> Plan.Filter (f, path) in
        { ji_alias = b.b_alias; ji_plan = plan; ji_est = estimate cat ~alias:b.b_alias b.b_table mine })
      bindings
  in
  let joined, unused_join_preds, unplaced = order_joins inputs join_preds leftover in
  let leftover_exprs =
    unplaced @ List.map (fun (_, a, _, b) -> Binop (Eq, a, b)) unused_join_preds
  in
  let plan = match conjoin leftover_exprs with None -> joined | Some f -> Plan.Filter (f, joined) in
  (* Aggregation. *)
  let proj_exprs = List.map fst projections in
  let scanned_exprs =
    proj_exprs @ Option.to_list having @ List.map (fun o -> o.order_expr) order_by
  in
  let agg_calls = find_aggregates scanned_exprs in
  let needs_agg = agg_calls <> [] || group_by <> [] in
  let plan, projections, having, order_by =
    if not needs_agg then (plan, projections, having, order_by)
    else begin
      let aggregates = List.map agg_of_call agg_calls in
      let plan = Plan.Aggregate { group_by; aggregates; input = plan } in
      let rw = rewrite_post_agg ~group_by ~agg_calls in
      ( plan,
        List.map (fun (e, n) -> (rw e, n)) projections,
        Option.map rw having,
        List.map (fun o -> { o with order_expr = rw o.order_expr }) order_by )
    end
  in
  let plan = match having with None -> plan | Some h -> Plan.Filter (h, plan) in
  let plan = match order_by with [] -> plan | items -> Plan.Sort (items, plan) in
  let plan = Plan.Project (projections, plan) in
  let plan = if s.distinct then Plan.Distinct plan else plan in
  match s.limit with None -> plan | Some n -> Plan.Limit (n, plan)

let plan_query cat (q : query) : Plan.t =
  match List.map (plan_select cat) q with
  | [ p ] -> p
  | ps -> Plan.Union_all ps
