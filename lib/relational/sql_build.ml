(* Typed SQL query builder.

   Producers construct [Sql_ast] values with these combinators instead of
   concatenating strings, which removes the per-module quoting/escaping
   copies and lets literals become bound parameters: a [binder] allocates
   ?1, ?2, ... placeholders and accumulates the values to bind, so the
   rendered statement text is stable across parameter values and the plan
   cache can reuse one compiled plan for the whole family of queries. *)

open Sql_ast

(* ------------------------------------------------------------------ *)
(* Expressions *)

let col ?table column : expr = Col { table; column }
let lit v : expr = Lit v
let int i : expr = Lit (Value.Int i)
let float f : expr = Lit (Value.Float f)
let text s : expr = Lit (Value.Text s)
let null : expr = Lit Value.Null
let param n : expr = Param n

let cmp op a b : expr = Binop (op, a, b)
let eq a b : expr = Binop (Eq, a, b)
let neq a b : expr = Binop (Neq, a, b)
let lt a b : expr = Binop (Lt, a, b)
let le a b : expr = Binop (Le, a, b)
let gt a b : expr = Binop (Gt, a, b)
let ge a b : expr = Binop (Ge, a, b)
let add a b : expr = Binop (Add, a, b)
let concat a b : expr = Binop (Concat, a, b)
let like ?(negated = false) arg pattern : expr = Like { negated; arg; pattern }
let is_null arg : expr = Is_null { negated = false; arg }
let is_not_null arg : expr = Is_null { negated = true; arg }
let in_list ?(negated = false) arg items : expr = In_list { negated; arg; items }
let between arg ~low ~high : expr = Between { arg; low; high }
let call func args : expr = Call { func; star = false; distinct = false; args }
let to_number e : expr = call "to_number" [ e ]

let conj = function
  | [] -> None
  | first :: rest -> Some (List.fold_left (fun acc e -> Binop (And, acc, e)) first rest)

(* ------------------------------------------------------------------ *)
(* Parameter binding *)

type binder = { mutable next : int; mutable bound : Value.t list (* reverse *) }

let binder () = { next = 0; bound = [] }

(* Allocate the next placeholder for [v]; returns the ?N expression. *)
let bind b v : expr =
  b.next <- b.next + 1;
  b.bound <- v :: b.bound;
  Param b.next

let pint b i = bind b (Value.Int i)
let pfloat b f = bind b (Value.Float f)
let ptext b s = bind b (Value.Text s)

let params b = Array.of_list (List.rev b.bound)

(* ------------------------------------------------------------------ *)
(* Statements *)

let from ?alias table : table_ref = { table; alias }
let proj ?as_ e : projection = Proj (e, as_)
let star : projection = All
let asc e : order_item = { order_expr = e; descending = false }
let desc e : order_item = { order_expr = e; descending = true }

let select ?(distinct = false) ?(where = []) ?(group_by = []) ?having ?(order_by = []) ?limit
    ~from:tables projections : select =
  { distinct; projections; from = tables; where = conj where; group_by; having; order_by; limit }

let query selects : query = selects
let statement q : statement = Select_stmt q

(* Render a query to SQL text (the plan-cache key and the text recorded in
   query results). *)
let to_sql (q : query) = query_to_string q

(* ------------------------------------------------------------------ *)
(* Quoting

   The single home for SQL string escaping. Use only where a literal must
   be embedded in statement text (DDL, display); data values in queries
   should be bound with [bind] instead. *)

let quote s = Value.to_sql_literal (Value.Text s)
