(* LRU cache of compiled SELECT plans, keyed by statement text.

   A hit skips lexing, parsing, and planning entirely. Entries remember the
   row count of every referenced table at plan time and are dropped when
   any of them drifts by more than ~20% (the same freshness rule Stats
   uses), since the planner's join order and access-path choices depend on
   those counts. Any DDL clears the whole cache: index changes alter which
   plans are even executable. *)

type entry = {
  plan : Plan.t;
  tables : (string * int) list;  (* table name, row count when planned *)
  mutable last_used : int;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;  (* capacity-driven LRU removals *)
}

type t = {
  entries : (string, entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable enabled : bool;
  stats : stats;
  (* Every public operation takes this lock: the cache is the one piece
     of Database state the pool's observability handlers may poke (clear,
     stats) while a reader domain executes against its replica, and the
     Hashtbl plus stats cells would tear without it. Critical sections
     are bounded table ops — no planning runs under the lock. *)
  lock : Mutex.t;
}

let create ?(capacity = 128) () =
  {
    entries = Hashtbl.create (2 * capacity);
    capacity;
    tick = 0;
    enabled = true;
    stats = { hits = 0; misses = 0; invalidations = 0; evictions = 0 };
    lock = Mutex.create ();
  }

let set_enabled t on =
  Mutex.protect t.lock (fun () ->
      t.enabled <- on;
      if not on && Hashtbl.length t.entries > 0 then begin
        t.stats.invalidations <- t.stats.invalidations + 1;
        Hashtbl.reset t.entries
      end)

let clear t =
  Mutex.protect t.lock (fun () ->
      if Hashtbl.length t.entries > 0 then t.stats.invalidations <- t.stats.invalidations + 1;
      Hashtbl.reset t.entries)

let stats t =
  Mutex.protect t.lock (fun () ->
      (t.stats.hits, t.stats.misses, t.stats.invalidations, t.stats.evictions))

let reset_stats t =
  Mutex.protect t.lock (fun () ->
      t.stats.hits <- 0;
      t.stats.misses <- 0;
      t.stats.invalidations <- 0;
      t.stats.evictions <- 0)

(* Row count within ~20% of the count recorded at plan time? *)
let fresh_count ~then_ ~now =
  let drift = abs (now - then_) in
  drift * 5 <= max 1 then_

(* [row_count name] should return None when the table no longer exists. *)
let find t ~row_count key =
  Mutex.protect t.lock @@ fun () ->
  if not t.enabled then None
  else
    match Hashtbl.find_opt t.entries key with
    | None ->
      t.stats.misses <- t.stats.misses + 1;
      None
    | Some e ->
      let valid =
        List.for_all
          (fun (name, then_) ->
            match row_count name with
            | Some now -> fresh_count ~then_ ~now
            | None -> false)
          e.tables
      in
      if valid then begin
        t.tick <- t.tick + 1;
        e.last_used <- t.tick;
        t.stats.hits <- t.stats.hits + 1;
        Some e.plan
      end
      else begin
        (* counted as an invalidation only — hits/misses/invalidations/
           evictions partition the outcomes, so the four counters can be
           summed and ratioed without double counting *)
        Hashtbl.remove t.entries key;
        t.stats.invalidations <- t.stats.invalidations + 1;
        None
      end

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, lu) when lu <= e.last_used -> ()
      | _ -> victim := Some (key, e.last_used))
    t.entries;
  match !victim with
  | Some (key, _) ->
    Hashtbl.remove t.entries key;
    t.stats.evictions <- t.stats.evictions + 1
  | None -> ()

let add t key ~tables plan =
  Mutex.protect t.lock @@ fun () ->
  if t.enabled then begin
    if (not (Hashtbl.mem t.entries key)) && Hashtbl.length t.entries >= t.capacity then
      evict_lru t;
    t.tick <- t.tick + 1;
    Hashtbl.replace t.entries key { plan; tables; last_used = t.tick }
  end

let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.entries)
