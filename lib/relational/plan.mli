(** Query plans. The planner lowers a parsed SELECT into this tree; the
    executor interprets it with the iterator model. *)

type agg = {
  agg_func : string;  (** count | sum | avg | min | max, lowercased *)
  agg_distinct : bool;
  agg_star : bool;
  agg_arg : Sql_ast.expr option;
}

type t =
  | Seq_scan of { table : string; alias : string }
  | Index_scan of {
      table : string;
      alias : string;
      index_name : string;
      lower : (Sql_ast.expr * bool) option;
          (** constant bound over the leading index column; bool = inclusive *)
      upper : (Sql_ast.expr * bool) option;
    }
  | Index_probes of {
      table : string;
      alias : string;
      index_name : string;
      keys : Sql_ast.expr list;  (** IN-list probe keys *)
    }
  | Filter of Sql_ast.expr * t
  | Project of (Sql_ast.expr * string) list * t
  | Nl_join of t * t  (** cross product; equi-joins become {!Hash_join} *)
  | Hash_join of {
      build : t;
      probe : t;
      build_keys : Sql_ast.expr list;
      probe_keys : Sql_ast.expr list;
    }
  | Staircase_join of {
      left : t;  (** output rows are left-row ++ right-row, like the other joins *)
      right : t;
      desc_on_left : bool;  (** which side carries the descendant key *)
      desc_key : Sql_ast.expr;  (** e.g. [d.pre], over the descendant side *)
      anc_lower : Sql_ast.expr;  (** e.g. [a.pre], over the ancestor side *)
      anc_upper : Sql_ast.expr;  (** e.g. [a.pre + a.size] *)
      lower_strict : bool;  (** [key > lower] vs [key >= lower] *)
      upper_strict : bool;  (** [key < upper] vs [key <= upper] *)
    }
      (** Structural (interval containment) join: one ordered merge over the
          descendant keys and ancestor [lower .. upper] ranges, replacing the
          cross product + range filter the containment predicate would
          otherwise plan as. *)
  | Aggregate of { group_by : Sql_ast.expr list; aggregates : agg list; input : t }
  | Sort of Sql_ast.order_item list * t
  | Distinct of t
  | Limit of int * t
  | Union_all of t list

val agg_to_string : agg -> string

val node_line : t -> string
(** One operator's own EXPLAIN line, without its children. *)

val to_string : t -> string
(** Rendered plan tree (EXPLAIN output). *)

(** {1 EXPLAIN ANALYZE}

    One mutable node per executed operator, filled in by the instrumented
    executor ({!Executor.run_analyzed}). Counters are inclusive: a node's
    wall-clock covers its open and every [next ()] call, children included,
    so the root's time is the whole execution. Children appear in execution
    order (a hash join opens its build side first). *)

type annotated = {
  an_op : string;  (** the operator's own EXPLAIN line *)
  mutable an_children : annotated list;
  mutable an_rows : int;  (** rows produced *)
  mutable an_nexts : int;  (** [next ()] calls received *)
  mutable an_ns : int;  (** inclusive wall-clock (open + next), ns *)
  an_est : int option;  (** planner's cardinality estimate, when costed *)
}

val annot : ?est:int -> string -> annotated
(** Fresh zeroed node (used by the executor); [est] is the planner's
    cardinality estimate, printed next to the actuals. *)

val misestimation : est:int -> actual:int -> float
(** How far off an estimate was, as a ratio >= 1 (both sides floored at
    one row). *)

val annotated_to_string : annotated -> string
(** Rendered operator tree with actual row counts and timings. *)

val fold_annotated : ('a -> annotated -> 'a) -> 'a -> annotated -> 'a
(** Pre-order fold over the operator tree. *)

val record_spans : annotated -> unit
(** Bridge an executed operator tree into the active trace as synthesized
    finished spans under the innermost open span (no-op outside a
    recorded trace). Start offsets are synthesized — siblings laid out
    sequentially, clamped inside the parent interval — since the
    annotated tree only records inclusive durations. *)

val annotated_operator_count : annotated -> int

val count_joins : t -> int
(** Join operators in the plan (benchmark T4's complexity measure). *)

val count_index_scans : t -> int
