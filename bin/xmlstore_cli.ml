(* Command-line interface to the XML store.

     xmlstore schemes
     xmlstore query -s interval doc.xml "/site//item/name" [--show-sql]
     xmlstore shred -s edge doc.xml [--dump]
     xmlstore roundtrip -s dewey doc.xml
     xmlstore validate doc.xml            (DTD from the internal subset)
     xmlstore generate auction --scale 0.5 > doc.xml *)

open Cmdliner
module Store = Xmlstore.Store
module Db = Relstore.Database

let read_store ?dtd_file scheme path =
  let parsed =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Xmlkit.Parser.parse_full s
  in
  let dtd =
    match dtd_file with
    | Some f ->
      let ic = open_in_bin f in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some (Xmlkit.Dtd.parse s)
    | None -> Option.map (fun s -> Xmlkit.Dtd.parse s) parsed.Xmlkit.Parser.internal_subset
  in
  let store =
    match dtd with
    | Some d -> Store.create ~dtd:d scheme
    | None -> Store.create scheme
  in
  let doc = Store.add_document ~name:path store parsed.Xmlkit.Parser.document in
  (store, doc, parsed.Xmlkit.Parser.document)

(* common options *)
let scheme_arg =
  let doc = "Mapping scheme: " ^ String.concat ", " (Store.schemes ()) ^ "." in
  Arg.(value & opt string "edge" & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"XML document.")

let dtd_arg =
  Arg.(value & opt (some file) None & info [ "dtd" ] ~docv:"DTD" ~doc:"External DTD file (needed by the inline scheme if the document has no internal subset).")

(* schemes *)
let schemes_cmd =
  let run () =
    List.iter
      (fun id ->
        let descr =
          match Xmlshred.Registry.find id with
          | Some m ->
            let module M = (val m : Xmlshred.Mapping.MAPPING) in
            M.description
          | None -> "DTD-driven shared inlining (Shanmugasundaram et al.)"
        in
        Printf.printf "%-10s %s\n" id descr)
      (Store.schemes ())
  in
  Cmd.v (Cmd.info "schemes" ~doc:"List available mapping schemes.") Term.(const run $ const ())

(* query *)
let query_cmd =
  let xpath_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH" ~doc:"Absolute XPath.")
  in
  let show_sql = Arg.(value & flag & info [ "show-sql" ] ~doc:"Print the SQL executed.") in
  let analyze =
    Arg.(value & flag
         & info [ "analyze" ]
             ~doc:"Instrument the execution and print each statement's operator tree with actual \
                   rows and timings (EXPLAIN ANALYZE).")
  in
  let as_xml = Arg.(value & flag & info [ "xml" ] ~doc:"Print result subtrees as XML.") in
  let repeat_arg =
    Arg.(value & opt int 1
         & info [ "repeat" ] ~docv:"N"
             ~doc:"Run the query N times; repeats reuse cached plans (see --show-sql).")
  in
  let trace_flag =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Record a full trace of the run (parse, shred, translate, plan, execute) and \
                   print the span tree on stderr.")
  in
  let run scheme dtd_file path xpath show_sql analyze as_xml repeat trace =
    if trace then Obskit.Trace.set_sampling Obskit.Trace.Always;
    let store, doc, _ = read_store ?dtd_file scheme path in
    Store.reset_cache_stats store;
    let r = ref (Store.query ~analyze store doc xpath) in
    for _ = 2 to repeat do
      r := Store.query ~analyze store doc xpath
    done;
    if trace then prerr_string (Obskit.Export.pretty (Obskit.Trace.spans ()));
    let r = !r in
    if show_sql then begin
      Printf.eprintf "-- %d SQL statement(s), %d join(s)%s\n" (List.length r.Store.sql)
        r.Store.joins
        (if r.Store.fallback then " [fallback: evaluated natively]" else "");
      List.iter (Printf.eprintf "-- %s\n") r.Store.sql;
      let hits, misses, invalidations, evictions = Store.cache_stats store in
      Printf.eprintf "-- plan cache: %d hit(s), %d miss(es), %d invalidation(s), %d eviction(s)\n"
        hits misses invalidations evictions
    end;
    if analyze then begin
      if r.Store.analyzed = [] then
        Printf.eprintf
          "-- analyze: no translated SQL executed%s\n"
          (if r.Store.fallback then " (fallback: evaluated natively)" else "");
      List.iter
        (fun (sql, annot) ->
          Printf.eprintf "-- %s\n%s\n" sql (Relstore.Plan.annotated_to_string annot))
        r.Store.analyzed;
      Printf.eprintf "-- gc: %d minor byte(s) allocated, %d major byte(s) promoted/allocated\n"
        r.Store.gc_minor_bytes r.Store.gc_major_bytes
    end;
    if as_xml then
      List.iter
        (fun n -> print_endline (Xmlkit.Serializer.node_to_string n))
        (Lazy.force r.Store.nodes)
    else List.iter print_endline r.Store.values
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Shred a document and run an XPath query against the relational form.")
    Term.(const run $ scheme_arg $ dtd_arg $ file_arg $ xpath_arg $ show_sql $ analyze $ as_xml
          $ repeat_arg $ trace_flag)

(* shred *)
let shred_cmd =
  let dump = Arg.(value & flag & info [ "dump" ] ~doc:"Dump every table's contents.") in
  let run scheme dtd_file path dump =
    let store, _, _ = read_store ?dtd_file scheme path in
    let stats = Store.stats store in
    Printf.printf "scheme:  %s\ntables:  %d\ntuples:  %d\nbytes:   %d\nindexes: %d entries\n"
      stats.Store.scheme_id
      (List.length stats.Store.tables)
      stats.Store.total_rows stats.Store.total_bytes stats.Store.total_index_entries;
    List.iter
      (fun t ->
        Printf.printf "  %-24s %6d rows %8d bytes\n" t.Db.st_table t.Db.st_rows t.Db.st_bytes)
      stats.Store.tables;
    if dump then
      List.iter
        (fun t ->
          if not (String.equal t.Db.st_table "documents") then begin
            Printf.printf "\n-- %s\n" t.Db.st_table;
            print_endline
              (Db.render_result
                 (Db.query (Store.database store)
                    (Printf.sprintf "SELECT * FROM %s" t.Db.st_table)))
          end)
        stats.Store.tables
  in
  Cmd.v
    (Cmd.info "shred" ~doc:"Shred a document and report (or dump) the relational storage.")
    Term.(const run $ scheme_arg $ dtd_arg $ file_arg $ dump)

(* load: timed document loading, bulk (default) or row-at-a-time *)
let durable_arg =
  Arg.(value & opt (some string) None
       & info [ "durable" ] ~docv:"DIR"
           ~doc:"Root the store in a durable directory (paged checkpoints + write-ahead log) \
                 instead of memory.")

let crash_arg =
  let points = String.concat ", " (List.map fst Relstore.Failpoint.points) in
  Arg.(value & opt (some string) None
       & info [ "crash-at" ] ~docv:"POINT"
           ~doc:(Printf.sprintf
                   "Inject a crash at a failpoint (%s) and exit, leaving the directory exactly \
                    as a real crash would; reopen it with recover."
                   points))

let load_cmd =
  let bulk_arg =
    Arg.(value
         & vflag true
             [
               (true, info [ "bulk" ] ~doc:"Load through a bulk session with deferred bottom-up \
                                            index builds (default).");
               (false, info [ "no-bulk" ] ~doc:"Load row-at-a-time, maintaining every index per \
                                                inserted row.");
             ])
  in
  let run scheme dtd_file path bulk durable crash_at =
    let parsed =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Xmlkit.Parser.parse_full s
    in
    let dtd =
      match dtd_file with
      | Some f ->
        let ic = open_in_bin f in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Some (Xmlkit.Dtd.parse s)
      | None -> Option.map (fun s -> Xmlkit.Dtd.parse s) parsed.Xmlkit.Parser.internal_subset
    in
    let store =
      match dtd with
      | Some d -> Store.create ~dtd:d ~bulk ?durable scheme
      | None -> Store.create ~bulk ?durable scheme
    in
    Relstore.Failpoint.arm crash_at;
    (try
       let t0 = Obskit.Clock.now_ns () in
       ignore (Store.add_document ~name:path store parsed.Xmlkit.Parser.document);
       Store.close store;
       let ms = float_of_int (Obskit.Clock.now_ns () - t0) /. 1e6 in
       let stats = Store.stats store in
       Printf.printf "scheme:        %s\nmode:          %s\nrows:          %d\nindex entries: %d\n"
         stats.Store.scheme_id
         (if bulk then "bulk" else "row-at-a-time")
         stats.Store.total_rows stats.Store.total_index_entries;
       (match durable with Some dir -> Printf.printf "directory:     %s\n" dir | None -> ());
       Printf.printf "load time:     %.2f ms\nrows/sec:      %.0f\n" ms
         (float_of_int stats.Store.total_rows /. (ms /. 1000.))
     with Relstore.Failpoint.Injected_crash point ->
       (* drop the handles without flushing anything, as a real crash would *)
       Db.abandon (Store.database store);
       Printf.printf "injected crash at %s\n" point)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Shred a document into a store and report load throughput. --bulk (the default) \
             appends all rows first and builds each B+-tree bottom-up from one sort; --no-bulk \
             maintains every index per inserted row. Stored contents are identical either way. \
             With --durable DIR the store lives on disk and the load commits through the \
             write-ahead log; --crash-at simulates a crash part-way for recovery testing.")
    Term.(const run $ scheme_arg $ dtd_arg $ file_arg $ bulk_arg $ durable_arg $ crash_arg)

(* checkpoint / recover: operate on a durable store directory *)
let dir_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"DIR" ~doc:"Durable store directory.")

let recovery_report store =
  match Store.last_recovery store with
  | None -> ()
  | Some (r : Db.recovery) ->
    Printf.printf
      "recovery: %d record(s) scanned, %d redone, %d row(s) undone, %d loser transaction(s), \
       %d torn byte(s) cut\n"
      r.Db.rc_scanned r.Db.rc_redone r.Db.rc_undone r.Db.rc_losers r.Db.rc_torn_bytes

let checkpoint_cmd =
  let run dir =
    let store = Store.open_durable dir in
    recovery_report store;
    Store.checkpoint store;
    Printf.printf "checkpointed %s: %d document(s), %d row(s)\n" dir
      (List.length (Store.documents store))
      (Store.stats store).Store.total_rows;
    Store.close store
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Open a durable store (recovering if needed), write a fresh page checkpoint, and \
             truncate its write-ahead log.")
    Term.(const run $ dir_arg)

let recover_cmd =
  let run dir =
    let store = Store.open_durable dir in
    recovery_report store;
    Printf.printf "%s: scheme %s, %d document(s)\n" dir (Store.scheme store)
      (List.length (Store.documents store));
    List.iter
      (fun (d : Store.doc_info) ->
        Printf.printf "  doc %d: <%s>, %d node(s), depth %d%s\n" d.Store.doc d.Store.root_tag
          d.Store.nodes d.Store.depth
          (match d.Store.doc_name with Some n -> " — " ^ n | None -> ""))
      (Store.documents store);
    Store.close store
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Open a durable store directory, run crash recovery, report what the replay did, \
             and leave a clean checkpoint behind.")
    Term.(const run $ dir_arg)

(* stats: storage statistics plus the metrics registry *)
let stats_cmd =
  let metrics_flag =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Dump the metrics registry (parse/plan/execute latencies, cache hit-miss, \
                   shred and query timings per scheme).")
  in
  let xpath_opt =
    Arg.(value & opt (some string) None
         & info [ "query" ] ~docv:"XPATH" ~doc:"Run this XPath first so query metrics are populated.")
  in
  let prometheus_flag =
    Arg.(value & flag
         & info [ "prometheus" ]
             ~doc:"Print the metrics registry as Prometheus text exposition instead of the \
                   storage report. The output is linted before printing.")
  in
  let tables_flag =
    Arg.(value & flag
         & info [ "tables" ]
             ~doc:"Dump per-table column statistics (row counts, distincts, null counts, \
                   min/max, equi-width histograms) — the numbers behind the planner's \
                   cardinality estimates.")
  in
  let run scheme dtd_file path metrics prometheus tables xpath =
    Relstore.Metrics.reset ();
    let store, doc, _ = read_store ?dtd_file scheme path in
    (match xpath with Some x -> ignore (Store.query store doc x) | None -> ());
    if prometheus then begin
      let exposition = Relstore.Metrics.prometheus () in
      (match Obskit.Prom.lint exposition with
      | Ok () -> ()
      | Error problems ->
        List.iter (Printf.eprintf "prometheus lint: %s\n") problems;
        exit 1);
      print_string exposition
    end
    else begin
      let stats = Store.stats store in
      Printf.printf "scheme:  %s\ntables:  %d\ntuples:  %d\nbytes:   %d\nindexes: %d entries\n"
        stats.Store.scheme_id
        (List.length stats.Store.tables)
        stats.Store.total_rows stats.Store.total_bytes stats.Store.total_index_entries;
      let hits, misses, invalidations, evictions = Store.cache_stats store in
      Printf.printf "plan cache: %d hit(s), %d miss(es), %d invalidation(s), %d eviction(s)\n" hits
        misses invalidations evictions;
      if tables then begin
        let db = Store.database store in
        List.iter
          (fun (ts : Relstore.Database.table_stats) ->
            print_newline ();
            print_string (Relstore.Database.analyze_to_string db ts.Relstore.Database.st_table))
          stats.Store.tables
      end;
      if metrics then begin
        print_newline ();
        (* only this store's series, under their bare names *)
        print_string (Relstore.Metrics.report ~label:(Store.metrics_label store) ())
      end
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Shred a document and report storage statistics; --metrics dumps the metrics \
             registry, --prometheus prints it as text exposition, --tables dumps per-table \
             column statistics and histograms.")
    Term.(const run $ scheme_arg $ dtd_arg $ file_arg $ metrics_flag $ prometheus_flag
          $ tables_flag $ xpath_opt)

(* roundtrip *)
let roundtrip_cmd =
  let run scheme dtd_file path =
    let store, doc, original = read_store ?dtd_file scheme path in
    let back = Store.get_document store doc in
    if Xmlkit.Dom.equal original back then begin
      print_endline "round-trip: identical";
      exit 0
    end
    else begin
      print_endline "round-trip: DIFFERENT";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "roundtrip" ~doc:"Shred, reconstruct, and compare with the original.")
    Term.(const run $ scheme_arg $ dtd_arg $ file_arg)

(* validate *)
let validate_cmd =
  let run dtd_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    let parsed = Xmlkit.Parser.parse_full s in
    let dtd =
      match dtd_file with
      | Some f ->
        let ic = open_in_bin f in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Some (Xmlkit.Dtd.parse s)
      | None -> Option.map (fun s -> Xmlkit.Dtd.parse s) parsed.Xmlkit.Parser.internal_subset
    in
    match dtd with
    | None ->
      prerr_endline "no DTD: document has no internal subset and --dtd was not given";
      exit 2
    | Some dtd -> (
      match Xmlkit.Dtd.validate dtd parsed.Xmlkit.Parser.document with
      | [] ->
        print_endline "valid";
        exit 0
      | violations ->
        List.iter (fun v -> print_endline (Xmlkit.Dtd.violation_to_string v)) violations;
        exit 1)
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate a document against its DTD.")
    Term.(const run $ dtd_arg $ file_arg)

(* generate *)
let generate_cmd =
  let kind_arg =
    Arg.(required & pos 0 (some (enum [ ("auction", `Auction); ("bibliography", `Bib); ("parts", `Parts) ])) None
         & info [] ~docv:"KIND" ~doc:"Workload: auction, bibliography, or parts.")
  in
  let scale = Arg.(value & opt float 0.1 & info [ "scale" ] ~doc:"Auction scale factor.") in
  let entries = Arg.(value & opt int 100 & info [ "entries" ] ~doc:"Bibliography entry count.") in
  let depth = Arg.(value & opt int 6 & info [ "depth" ] ~doc:"Parts hierarchy depth.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let dtd_only =
    Arg.(value & flag
         & info [ "dtd" ]
             ~doc:"Print the workload's DTD instead of a document (auction only).")
  in
  let run kind scale entries depth seed dtd_only =
    if dtd_only then begin
      match kind with
      | `Auction -> print_string Xmlwork.Auction.dtd_source
      | `Bib | `Parts ->
        prerr_endline "only the auction workload has a DTD";
        exit 2
    end
    else
      let dom =
        match kind with
        | `Auction -> Xmlwork.Auction.generate ~params:{ Xmlwork.Auction.default with scale; seed } ()
        | `Bib -> Xmlwork.Bibliography.generate ~params:{ Xmlwork.Bibliography.seed; entries } ()
        | `Parts -> Xmlwork.Deep.generate ~params:{ Xmlwork.Deep.default with seed; depth } ()
      in
      print_string (Xmlkit.Serializer.pretty dom)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic workload document (or its DTD) on stdout.")
    Term.(const run $ kind_arg $ scale $ entries $ depth $ seed $ dtd_only)

(* sql: open a store and run raw SQL against it *)
let sql_cmd =
  let stmt_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SQL" ~doc:"SQL statement.")
  in
  let run scheme dtd_file path stmt =
    let store, _, _ = read_store ?dtd_file scheme path in
    match Store.sql store stmt with
    | Db.Rows r -> print_endline (Db.render_result r)
    | Db.Affected n -> Printf.printf "%d row(s) affected\n" n
    | Db.Done msg -> print_endline msg
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Shred a document and run raw SQL against its relational form.")
    Term.(const run $ scheme_arg $ dtd_arg $ file_arg $ stmt_arg)

(* save: shred to a persistent SQL dump *)
let save_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Dump file.")
  in
  let run scheme dtd_file path out =
    let store, _, _ = read_store ?dtd_file scheme path in
    Store.save store out;
    Printf.printf "saved %s under scheme %s to %s\n" path scheme out
  in
  Cmd.v
    (Cmd.info "save" ~doc:"Shred a document and persist the store as a SQL dump.")
    Term.(const run $ scheme_arg $ dtd_arg $ file_arg $ out_arg)

(* query-saved: reopen a dump and query it *)
let query_saved_cmd =
  let dump_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DUMP" ~doc:"Store dump produced by save.")
  in
  let xpath_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH" ~doc:"Absolute XPath.")
  in
  let doc_arg =
    Arg.(value & opt int 0 & info [ "doc" ] ~docv:"ID" ~doc:"Document id inside the store.")
  in
  let durable_flag =
    Arg.(value & flag
         & info [ "durable" ]
             ~doc:"DUMP is a durable store directory (recovered as needed), not a SQL dump; \
                   the scheme is read from the directory.")
  in
  let run scheme dtd_file dump xpath doc_id durable =
    let dtd =
      Option.map
        (fun f ->
          let ic = open_in_bin f in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          Xmlkit.Dtd.parse s)
        dtd_file
    in
    let store =
      if durable then Store.open_durable ?dtd dump else Store.load ?dtd ~scheme dump
    in
    List.iter print_endline (Store.query_values store doc_id xpath);
    Store.close store
  in
  Cmd.v
    (Cmd.info "query-saved"
       ~doc:"Reopen a persisted store (SQL dump, or durable directory with --durable) and run \
             an XPath query.")
    Term.(const run $ scheme_arg $ dtd_arg $ dump_arg $ xpath_arg $ doc_arg $ durable_flag)

(* trace: record a full instrumented run and export / validate traces *)
let trace_export_cmd =
  let xpath_arg =
    Arg.(value & opt string "/*" & info [ "query" ] ~docv:"XPATH" ~doc:"XPath to run traced.")
  in
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "o"; "out" ] ~docv:"OUT" ~doc:"Output file (Chrome trace_event JSON).")
  in
  let durable_trace_arg =
    Arg.(value & opt (some string) None
         & info [ "durable" ] ~docv:"DIR"
             ~doc:"Trace opening this durable store directory instead of shredding FILE: the \
                   export shows the recovery span tree (image load, redo, undo) and the \
                   checkpoint phases, then the traced query. FILE is ignored.")
  in
  let run scheme dtd_file path xpath out durable_dir =
    Obskit.Trace.set_sampling Obskit.Trace.Always;
    let store, doc =
      match durable_dir with
      | Some dir ->
        let store = Store.open_durable dir in
        (store, 0)
      | None ->
        let store, doc, _ = read_store ?dtd_file scheme path in
        (store, doc)
    in
    ignore (Store.query store doc xpath);
    ignore (Store.get_document store doc);
    let spans = Obskit.Trace.spans () in
    (match Obskit.Export.check_well_nested spans with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "trace is not well nested: %s\n" e;
      exit 1);
    let json = Obskit.Export.to_chrome_json spans in
    let oc = open_out_bin out in
    output_string oc json;
    close_out oc;
    Printf.printf "wrote %d span(s) across %d trace(s) to %s\n" (List.length spans)
      (List.length (List.sort_uniq compare (List.map (fun s -> s.Obskit.Trace.trace_id) spans)))
      out
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Shred, query, and reconstruct a document fully traced (or, with --durable, open a \
             durable store traced through recovery); write the spans as Chrome trace_event \
             JSON (chrome://tracing, Perfetto).")
    Term.(const run $ scheme_arg $ dtd_arg $ file_arg $ xpath_arg $ out_arg $ durable_trace_arg)

let trace_validate_cmd =
  let trace_file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE" ~doc:"Trace file produced by trace export.")
  in
  let run path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Obskit.Export.validate_chrome_json s with
    | Ok n ->
      Printf.printf "%s: %d event(s), well nested\n" path n;
      exit 0
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Parse an exported trace and check per-thread event nesting.")
    Term.(const run $ trace_file_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"Record, export, and validate execution traces.")
    [ trace_export_cmd; trace_validate_cmd ]

(* slowlog: arm the slow-query log, run a query, report what it caught *)
let slowlog_cmd =
  let xpath_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH" ~doc:"Absolute XPath.")
  in
  let threshold_arg =
    Arg.(value & opt float 0.0
         & info [ "threshold-ms" ] ~docv:"MS"
             ~doc:"Retain queries taking at least this many milliseconds (default 0: every \
                   query).")
  in
  let repeat_arg =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N" ~doc:"Run the query N times.")
  in
  let limit_arg =
    Arg.(value & opt (some int) None
         & info [ "limit" ] ~docv:"N"
             ~doc:"Retain at most N entries (default 32), evicting the oldest.")
  in
  let params_to_string ps =
    if Array.length ps = 0 then "(none)"
    else String.concat ", " (Array.to_list (Array.map Relstore.Value.to_string ps))
  in
  let run scheme dtd_file path xpath threshold repeat limit =
    let store, doc, _ = read_store ?dtd_file scheme path in
    Store.set_slow_threshold store (Some threshold);
    (match limit with Some n -> Store.set_slow_log_capacity store n | None -> ());
    for _ = 1 to repeat do
      ignore (Store.query store doc xpath)
    done;
    let entries = Store.slow_log store in
    Printf.printf "%d slow quer%s (threshold %.3f ms, %d run%s, capacity %d)\n"
      (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      threshold repeat
      (if repeat = 1 then "" else "s")
      (Store.slow_log_capacity store);
    List.iter
      (fun (e : Store.slow_entry) ->
        Printf.printf "\n%.3f ms  doc=%d scheme=%s%s  %s\n"
          (float_of_int e.Store.se_total_ns /. 1e6)
          e.Store.se_doc e.Store.se_scheme
          (if e.Store.se_fallback then " [fallback]" else "")
          e.Store.se_xpath;
        Printf.printf "  gc:     %d minor byte(s), %d major byte(s)\n" e.Store.se_minor_bytes
          e.Store.se_major_bytes;
        List.iter
          (fun (s : Store.slow_statement) ->
            Printf.printf "  sql:    %s\n  params: %s\n  plan:\n%s\n  analyze:\n%s\n"
              s.Store.ss_sql
              (params_to_string s.Store.ss_params)
              (String.concat "\n"
                 (List.map (fun l -> "    " ^ l) (String.split_on_char '\n' s.Store.ss_plan)))
              (String.concat "\n"
                 (List.map
                    (fun l -> "    " ^ l)
                    (String.split_on_char '\n'
                       (Relstore.Plan.annotated_to_string s.Store.ss_annot)))))
          e.Store.se_statements)
      entries
  in
  Cmd.v
    (Cmd.info "slowlog"
       ~doc:"Run a query with the slow-query log armed and print every retained entry \
             (statement text, bound parameters, plan, executed operator tree, GC bytes).")
    Term.(const run $ scheme_arg $ dtd_arg $ file_arg $ xpath_arg $ threshold_arg $ repeat_arg
          $ limit_arg)

(* lint: static analysis over the SQL, plans, and XPath a query produces *)
let lint_cmd =
  let xpaths_arg =
    Arg.(value & pos_right 0 string []
         & info [] ~docv:"XPATH" ~doc:"Absolute XPath(s) to lint (omit with --workload).")
  in
  let workload_flag =
    Arg.(value & flag
         & info [ "workload" ]
             ~doc:"Lint the built-in auction benchmark workload Q1-Q12 (in addition to any \
                   XPATH arguments).")
  in
  let all_schemes_flag =
    Arg.(value & flag
         & info [ "all-schemes" ]
             ~doc:"Lint under every available scheme instead of just --scheme (schemes that \
                   cannot open the document, e.g. inline without a DTD, are skipped with a \
                   note).")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the reports as one JSON document.")
  in
  let strict_flag =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit nonzero when any query produced a warning-or-worse diagnostic.")
  in
  let no_schema_flag =
    Arg.(value & flag
         & info [ "no-schema-check" ]
             ~doc:"Skip the XPath-vs-DataGuide pass (SQL and plan lints only).")
  in
  let run scheme dtd_file path xpaths workload all_schemes json strict no_schema =
    let xpaths =
      (if workload then
         List.map (fun q -> q.Xmlwork.Queries.xpath) Xmlwork.Queries.auction_queries
       else [])
      @ xpaths
    in
    if xpaths = [] then begin
      prerr_endline "nothing to lint: give XPATH arguments or --workload";
      exit 2
    end;
    let schemes = if all_schemes then Store.schemes () else [ scheme ] in
    let reports =
      List.concat_map
        (fun sch ->
          match read_store ?dtd_file sch path with
          | store, doc, _ ->
            Store.lint_workload ~schema_check:(not no_schema) store doc xpaths
          | exception Store.Store_error msg ->
            Printf.eprintf "-- skipping scheme %s: %s\n" sch msg;
            [])
        schemes
    in
    let failing = Lintkit.Lint.reports_failing reports in
    if json then begin
      let text = Obskit.Json.to_string (Lintkit.Lint.reports_to_json reports) in
      (* the printed document must survive a parse round-trip *)
      match Obskit.Json.parse text with
      | Ok _ -> print_endline text
      | Error e ->
        Printf.eprintf "internal error: emitted JSON does not parse: %s\n" e;
        exit 3
    end
    else begin
      if reports <> [] then print_endline (Lintkit.Lint.reports_to_string reports);
      Printf.printf "%d quer%s linted across %d scheme%s, %d failing\n" (List.length reports)
        (if List.length reports = 1 then "y" else "ies")
        (List.length schemes)
        (if List.length schemes = 1 then "" else "s")
        (List.length failing)
    end;
    if strict && failing <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Shred a document, run each query through the scheme, and statically analyze the \
             generated SQL, the physical plans, and the XPath against the document's \
             DataGuide.")
    Term.(const run $ scheme_arg $ dtd_arg $ file_arg $ xpaths_arg $ workload_flag
          $ all_schemes_flag $ json_flag $ strict_flag $ no_schema_flag)

(* transform: FLWOR over a document *)
let transform_cmd =
  let flwor_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FLWOR"
         ~doc:"for \\$v in PATH [where COND] [order by KEY [descending]] return TEMPLATE")
  in
  let run path flwor =
    let dom = Xmlkit.Parser.parse_file path in
    let ix = Xmlkit.Index.of_document dom in
    print_endline (Xpathkit.Flwor.run_to_string ix flwor)
  in
  Cmd.v
    (Cmd.info "transform" ~doc:"Run a FLWOR transformation over a document.")
    Term.(const run $ file_arg $ flwor_arg)

(* serve: the embedded observability HTTP endpoint *)
let serve_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PATH"
             ~doc:"XML document to shred and serve (or, with --durable, a durable store \
                   directory to reopen).")
  in
  let port_arg =
    Arg.(value & opt int 0
         & info [ "port" ] ~docv:"PORT" ~doc:"Port to listen on (default 0: ephemeral).")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")
  in
  let durable_flag =
    Arg.(value & flag
         & info [ "durable" ]
             ~doc:"PATH is a durable store directory (recovered as needed), not an XML file.")
  in
  let warm_arg =
    Arg.(value & opt (some string) None
         & info [ "query" ] ~docv:"XPATH"
             ~doc:"Run this XPath once before serving, so /metrics and /traces show a real \
                   query.")
  in
  let readers_arg =
    Arg.(value & opt int 4
         & info [ "readers" ] ~docv:"N"
             ~doc:"Serve the data plane (POST /query, POST /load) from a store pool with N \
                   reader permits, on N serving domains. 0 disables the pool: the classic \
                   single-threaded observability-only endpoint.")
  in
  let run scheme dtd_file path port host durable warm readers =
    if readers < 0 then failwith "--readers must be >= 0";
    (* keep the ring buffer populated for /traces without paying for
       always-on tracing: sample every trace while serving *)
    Obskit.Trace.set_sampling Obskit.Trace.Always;
    let store, doc =
      if durable then (Store.open_durable path, 0)
      else
        let store, doc, _ = read_store ?dtd_file scheme path in
        (store, doc)
    in
    Store.set_slow_threshold store (Some 0.0);
    (match warm with Some x -> ignore (Store.query store doc x) | None -> ());
    if readers = 0 then begin
      let server = Store.serve ~host ~port store in
      Printf.printf "serving %s on http://%s:%d (endpoints: /metrics /healthz /slowlog /traces \
                     /stats)\n%!"
        path host (Servekit.Server.port server);
      Servekit.Server.run server
    end
    else begin
      let pool = Storepool.Pool.create ~readers store in
      let server = Storepool.Service.serve ~host ~port pool in
      Printf.printf "serving %s on http://%s:%d with %d reader domain(s) (endpoints: POST \
                     /query /load; GET /pool /metrics /healthz /slowlog /traces /stats)\n%!"
        path host (Servekit.Server.port server) readers;
      Servekit.Server.run_parallel ~domains:readers server
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the store's HTTP endpoints — the pooled data plane (POST /query, POST \
             /load; see --readers) plus observability (/metrics, /healthz, /slowlog, /traces, \
             /stats) — until interrupted.")
    Term.(const run $ scheme_arg $ dtd_arg $ path_arg $ port_arg $ host_arg $ durable_flag
          $ warm_arg $ readers_arg)

let main =
  Cmd.group
    (Cmd.info "xmlstore" ~version:"1.0.0"
       ~doc:"Store and retrieve XML documents using a relational database.")
    [
      schemes_cmd; query_cmd; shred_cmd; load_cmd; stats_cmd; roundtrip_cmd; validate_cmd;
      generate_cmd;
      sql_cmd; save_cmd; query_saved_cmd; checkpoint_cmd; recover_cmd; transform_cmd;
      trace_cmd; slowlog_cmd; lint_cmd; serve_cmd;
    ]

let () = exit (Cmd.eval main)
