(* srclint — the repo's source-level analyzer.

     srclint [--json] [--strict] [--codes]
             [--allowlist FILE] [--design FILE] [--root DIR] [DIR...]

   Directories default to `lib bin`, relative to --root (default `.`).
   Exit 1 on any Error finding; --strict also fails on Warnings. Info
   findings (the DS001 shared-state worklist) never fail the run. *)

module Diag = Lintkit.Diag
module J = Obskit.Json

let usage () =
  prerr_endline
    "usage: srclint [--json] [--strict] [--codes] [--allowlist FILE] [--design FILE] [--root DIR] \
     [DIR...]";
  exit 2

let print_codes () =
  List.iter
    (fun (code, sev, desc) ->
      Printf.printf "%-6s %-7s %s\n" code (Diag.severity_to_string sev) desc)
    (List.filter (fun (c, _, _) -> String.length c >= 2
                                   && (match String.sub c 0 2 with
                                       | "SL" | "DS" | "RD" | "TM" -> true
                                       | _ -> false))
       Diag.registry)

let () =
  let json = ref false and strict = ref false in
  let root = ref "." and allowlist = ref "srclint_allow.sexp" in
  let design = ref (Some "DESIGN.md") in
  let dirs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: rest -> json := true; parse_args rest
    | "--strict" :: rest -> strict := true; parse_args rest
    | "--codes" :: _ -> print_codes (); exit 0
    | "--allowlist" :: f :: rest -> allowlist := f; parse_args rest
    | "--design" :: f :: rest -> design := (if f = "none" then None else Some f); parse_args rest
    | "--root" :: d :: rest -> root := d; parse_args rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "srclint: unknown option %s\n" arg;
      usage ()
    | dir :: rest -> dirs := dir :: !dirs; parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let opts =
    {
      Srclint.Engine.opt_root = !root;
      opt_dirs = (if !dirs = [] then [ "lib"; "bin" ] else List.rev !dirs);
      opt_allowlist = !allowlist;
      opt_design = !design;
    }
  in
  let { Srclint.Engine.run_diags = diags; run_files = files } = Srclint.Engine.run opts in
  if !json then begin
    (* Round-trip the report through the JSON parser before printing so
       the emitted document is guaranteed machine-readable. *)
    let doc =
      J.Obj
        [
          ("files_analyzed", J.Num (float_of_int (List.length files)));
          ("strict", if !strict then J.Bool true else J.Bool false);
          ("findings", Diag.list_to_json diags);
          ("errors", J.Num (float_of_int (Srclint.Engine.errors diags)));
          ("strict_failures", J.Num (float_of_int (Srclint.Engine.strict_failures diags)));
        ]
    in
    match J.parse (J.to_string doc) with
    | Ok reparsed -> print_endline (J.to_string reparsed)
    | Error msg ->
      Printf.eprintf "srclint: internal error: JSON report does not round-trip: %s\n" msg;
      exit 2
  end
  else begin
    List.iter (fun d -> print_endline (Diag.to_string d)) diags;
    let info = List.length (List.filter (fun d -> d.Diag.severity = Diag.Info) diags) in
    Printf.printf "srclint: %d file(s), %d finding(s): %d error(s), %d warning(s), %d info\n"
      (List.length files) (List.length diags)
      (Srclint.Engine.errors diags)
      (Srclint.Engine.strict_failures diags - Srclint.Engine.errors diags)
      info
  end;
  let failures =
    if !strict then Srclint.Engine.strict_failures diags else Srclint.Engine.errors diags
  in
  exit (if failures > 0 then 1 else 0)
