; srclint domain-safety allowlist: every module-level mutable binding in
; the tree, annotated with its multicore migration plan. DS002 fails the
; build for state missing from this file or missing its domain: field.
; domains: confined | lock-planned | atomic-planned (plans) and
; locked | atomic | domain-local (landed mechanisms)

((file lib/core/store.ml) (name instance_counter) (kind Atomic.make) (domain atomic)
 (note "store-id allocator: Atomic.fetch_and_add, stores open from any domain"))

((file lib/obs/trace.ml) (name sampling_mode) (kind Atomic.make) (domain atomic)
 (note "tracer config toggle, read on every with_span"))
((file lib/obs/trace.ml) (name ring_mutex) (kind Mutex.create) (domain locked)
 (note "the tracer ring's mutex: guards ring/ring_pos/ring_count"))
((file lib/obs/trace.ml) (name capacity) (kind Atomic.make) (domain atomic)
 (note "tracer ring sizing; resizes swap the ring under ring_mutex"))
((file lib/obs/trace.ml) (name ring) (kind ref) (domain locked)
 (note "completed-span ring buffer, guarded by ring_mutex"))
((file lib/obs/trace.ml) (name ring_pos) (kind ref) (domain locked)
 (note "ring write cursor, guarded by ring_mutex"))
((file lib/obs/trace.ml) (name ring_count) (kind ref) (domain locked)
 (note "ring occupancy, guarded by ring_mutex"))
((file lib/obs/trace.ml) (name dropped) (kind Atomic.make) (domain atomic)
 (note "drop counter, incremented outside the ring lock"))
((file lib/obs/trace.ml) (name tls) (kind Domain.DLS.new_key) (domain domain-local)
 (note "per-domain trace state: open-span stack, in-flight buffer, depth, sampling RNG"))
((file lib/obs/trace.ml) (name next_trace) (kind Atomic.make) (domain atomic)
 (note "trace-id allocator: fetch_and_add keeps ids unique across domains"))
((file lib/obs/trace.ml) (name next_span) (kind Atomic.make) (domain atomic)
 (note "span-id allocator: fetch_and_add keeps ids unique across domains"))

((file lib/relational/codec.ml) (name crc_table) (kind Array.make) (domain confined)
 (note "CRC32 lookup table: written once during module initialization, read-only after"))

((file lib/relational/executor.ml) (name batched_enabled) (kind Atomic.make) (domain atomic)
 (note "executor feature toggle, read per query"))

((file lib/relational/failpoint.ml) (name armed) (kind Atomic.make) (domain atomic)
 (note "crash-injection switch: compare_and_set fires each arming at most once"))

((file lib/relational/metrics.ml) (name current_label) (kind Domain.DLS.new_key) (domain domain-local)
 (note "ambient store label, one value per domain"))
((file lib/relational/metrics.ml) (name registry_mutex) (kind Mutex.create) (domain locked)
 (note "the metrics registry's mutex: guards counters/gauges/histograms"))
((file lib/relational/metrics.ml) (name counters) (kind Hashtbl.create) (domain locked)
 (note "metrics registry, guarded by registry_mutex"))
((file lib/relational/metrics.ml) (name histograms) (kind Hashtbl.create) (domain locked)
 (note "metrics registry, guarded by registry_mutex"))
((file lib/relational/metrics.ml) (name gauges) (kind Hashtbl.create) (domain locked)
 (note "metrics registry, guarded by registry_mutex"))

((file lib/relational/planner.ml) (name staircase_enabled) (kind Atomic.make) (domain atomic)
 (note "planner feature toggle, read per plan"))

((file lib/shred/mapping.ml) (name capture_sink) (kind Domain.DLS.new_key) (domain domain-local)
 (note "statement-capture hook, dynamically scoped per domain"))

((file lib/workload/auction.ml) (name regions) (kind "array literal") (domain confined)
 (note "generator vocabulary: never written, array only for O(1) pick"))
((file lib/workload/auction.ml) (name categories) (kind "array literal") (domain confined)
 (note "generator vocabulary: never written, array only for O(1) pick"))
((file lib/workload/bibliography.ml) (name journals) (kind "array literal") (domain confined)
 (note "generator vocabulary: never written, array only for O(1) pick"))
((file lib/workload/rng.ml) (name lexicon) (kind "array literal") (domain confined)
 (note "generator vocabulary: never written, array only for O(1) pick"))
