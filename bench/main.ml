(* Benchmark harness: regenerates every table and figure of the evaluation
   (see DESIGN.md experiment index and EXPERIMENTS.md for paper-expected vs
   measured). Run all experiments with `dune exec bench/main.exe`, or a
   subset with e.g. `dune exec bench/main.exe -- T1 F1`. *)

module Store = Xmlstore.Store
module Dom = Xmlkit.Dom
module Index = Xmlkit.Index

let schemes = [ "textblob"; "tokens"; "edge"; "binary"; "interval"; "dewey"; "universal"; "inline" ]

let auction ~scale ~seed =
  Xmlwork.Auction.generate ~params:{ Xmlwork.Auction.default with scale; seed } ()

let make_store scheme =
  if String.equal scheme "inline" then
    Store.create ~dtd:(Lazy.force Xmlwork.Auction.dtd) scheme
  else Store.create scheme

let loaded_store scheme dom =
  let store = make_store scheme in
  ignore (Store.add_document store dom);
  store

(* ------------------------------------------------------------------ *)
(* T1: storage cost per scheme *)

let t1 () =
  let scales = [ 0.25; 0.5; 1.0 ] in
  let rows =
    List.concat_map
      (fun scale ->
        let dom = auction ~scale ~seed:42 in
        let nodes = Dom.count_nodes dom in
        List.map
          (fun scheme ->
            let store = loaded_store scheme dom in
            let s = Store.stats store in
            [
              Printf.sprintf "%.2f" scale;
              string_of_int nodes;
              scheme;
              string_of_int (List.length s.Store.tables);
              string_of_int s.Store.total_rows;
              Tables.kb s.Store.total_bytes;
              string_of_int s.Store.total_index_entries;
            ])
          schemes)
      scales
  in
  Tables.print ~title:"T1: storage cost (tuples and bytes per scheme)"
    ~header:[ "scale"; "nodes"; "scheme"; "tables"; "tuples"; "KiB"; "index entries" ]
    rows

(* ------------------------------------------------------------------ *)
(* T2: load (shred) time per scheme *)

let t2 () =
  let scales = [ 0.25; 0.5; 1.0 ] in
  let rows =
    List.concat_map
      (fun scale ->
        let dom = auction ~scale ~seed:42 in
        let nodes = Dom.count_nodes dom in
        List.map
          (fun scheme ->
            let _, parse_t = Tables.time (fun () -> Index.of_document dom) in
            let _, t =
              Tables.time (fun () ->
                  let store = make_store scheme in
                  ignore (Store.add_document store dom))
            in
            [
              Printf.sprintf "%.2f" scale;
              string_of_int nodes;
              scheme;
              Tables.ms t;
              Tables.ms parse_t;
              Printf.sprintf "%.1f" (float_of_int nodes /. t /. 1000.0);
            ])
          schemes)
      scales
  in
  Tables.print ~title:"T2: document load (shred) time"
    ~header:[ "scale"; "nodes"; "scheme"; "shred ms"; "index ms"; "knodes/s" ] rows

(* ------------------------------------------------------------------ *)
(* F1: query response time across the workload *)

let f1 () =
  let dom = auction ~scale:0.5 ~seed:42 in
  let ix = Index.of_document dom in
  let stores = List.map (fun s -> (s, loaded_store s dom)) schemes in
  let rows =
    List.concat_map
      (fun (q : Xmlwork.Queries.query) ->
        let native_result, native_t =
          Tables.time (fun () -> Xpathkit.Eval.select_strings ix q.Xmlwork.Queries.xpath)
        in
        let native_row =
          [
            q.Xmlwork.Queries.qid; "native"; Tables.ms native_t;
            string_of_int (List.length native_result); "-"; "-";
          ]
        in
        native_row
        :: List.map
             (fun (scheme, store) ->
               let r, t = Tables.time (fun () -> Store.query store 0 q.Xmlwork.Queries.xpath) in
               if r.Store.values <> native_result then
                 Printf.eprintf "F1 MISMATCH: %s on %s\n" q.Xmlwork.Queries.qid scheme;
               [
                 q.Xmlwork.Queries.qid;
                 scheme;
                 Tables.ms t;
                 string_of_int (List.length r.Store.values);
                 string_of_int (List.length r.Store.sql);
                 (if r.Store.fallback then "fallback" else string_of_int r.Store.joins);
               ])
             stores)
      Xmlwork.Queries.auction_queries
  in
  Tables.print ~title:"F1: query response time, auction workload (scale 0.5)"
    ~header:[ "query"; "scheme"; "ms"; "results"; "stmts"; "joins" ] rows

(* ------------------------------------------------------------------ *)
(* F2: scalability of Q1 (child chain) and Q5 (descendant) *)

let f2 () =
  let scales = [ 0.25; 0.5; 1.0; 2.0 ] in
  let queries = [ "Q1"; "Q5" ] in
  let rows =
    List.concat_map
      (fun scale ->
        let dom = auction ~scale ~seed:42 in
        let nodes = Dom.count_nodes dom in
        let stores = List.map (fun s -> (s, loaded_store s dom)) schemes in
        List.concat_map
          (fun qid ->
            let q = Option.get (Xmlwork.Queries.find qid) in
            List.map
              (fun (scheme, store) ->
                let r, t = Tables.time (fun () -> Store.query store 0 q.Xmlwork.Queries.xpath) in
                [
                  qid;
                  Printf.sprintf "%.2f" scale;
                  string_of_int nodes;
                  scheme;
                  Tables.ms t;
                  string_of_int (List.length r.Store.values);
                ])
              stores)
          queries)
      scales
  in
  Tables.print ~title:"F2: query time vs document size (Q1 child chain, Q5 descendant)"
    ~header:[ "query"; "scale"; "nodes"; "scheme"; "ms"; "results" ] rows

(* ------------------------------------------------------------------ *)
(* T3: full-document reconstruction *)

let t3 () =
  let docs =
    [
      ("auction", auction ~scale:0.5 ~seed:42, None);
      ( "bibliography",
        Xmlwork.Bibliography.generate ~params:{ Xmlwork.Bibliography.default with entries = 300 } (),
        Some (Lazy.force Xmlwork.Bibliography.dtd) );
    ]
  in
  let rows =
    List.concat_map
      (fun (doc_name, dom, dtd) ->
        List.filter_map
          (fun scheme ->
            let store =
              match (scheme, dtd) with
              | "inline", Some d -> Some (Store.create ~dtd:d scheme)
              | "inline", None -> Some (Store.create ~dtd:(Lazy.force Xmlwork.Auction.dtd) scheme)
              | _ -> Some (Store.create scheme)
            in
            Option.map
              (fun store ->
                ignore (Store.add_document store dom);
                let back, t = Tables.time (fun () -> Store.get_document store 0) in
                [
                  doc_name;
                  string_of_int (Dom.count_nodes dom);
                  scheme;
                  Tables.ms t;
                  (if Dom.equal dom back then "yes" else "NO!");
                ])
              store)
          schemes)
      docs
  in
  Tables.print ~title:"T3: full-document reconstruction time (round-trip verified)"
    ~header:[ "document"; "nodes"; "scheme"; "ms"; "identical" ] rows

(* ------------------------------------------------------------------ *)
(* F3: effect of secondary indexes *)

let f3 () =
  let dom = auction ~scale:1.0 ~seed:42 in
  let queries = [ "Q1"; "Q5"; "Q9" ] in
  let rows =
    List.concat_map
      (fun scheme ->
        List.concat_map
          (fun indexed ->
            let store =
              if String.equal scheme "inline" then
                Store.create ~indexes:indexed ~dtd:(Lazy.force Xmlwork.Auction.dtd) scheme
              else Store.create ~indexes:indexed scheme
            in
            ignore (Store.add_document store dom);
            List.map
              (fun qid ->
                let q = Option.get (Xmlwork.Queries.find qid) in
                let _, t = Tables.time (fun () -> Store.query store 0 q.Xmlwork.Queries.xpath) in
                [ scheme; (if indexed then "yes" else "no"); qid; Tables.ms t ])
              queries)
          [ false; true ])
      [ "edge"; "interval"; "dewey" ]
  in
  Tables.print ~title:"F3: effect of B+-tree indexes (scale 1.0)"
    ~header:[ "scheme"; "indexed"; "query"; "ms" ] rows

(* ------------------------------------------------------------------ *)
(* T4: SQL complexity of translated queries *)

let t4 () =
  let dom = auction ~scale:0.05 ~seed:42 in
  let stores = List.map (fun s -> (s, loaded_store s dom)) schemes in
  let rows =
    List.concat_map
      (fun (q : Xmlwork.Queries.query) ->
        List.map
          (fun (scheme, store) ->
            let r = Store.query store 0 q.Xmlwork.Queries.xpath in
            [
              q.Xmlwork.Queries.qid;
              scheme;
              (if r.Store.fallback then "fallback" else "sql");
              string_of_int (List.length r.Store.sql);
              string_of_int r.Store.joins;
            ])
          stores)
      Xmlwork.Queries.auction_queries
  in
  Tables.print
    ~title:"T4: SQL complexity per translated query (statements and joins)"
    ~header:[ "query"; "scheme"; "mode"; "statements"; "joins" ]
    rows

(* ------------------------------------------------------------------ *)
(* T5: DTD inlining statistics *)

let t5 () =
  let dtds =
    [
      ("auction", Lazy.force Xmlwork.Auction.dtd);
      ("bibliography", Lazy.force Xmlwork.Bibliography.dtd);
      ("recursive parts", Lazy.force Xmlwork.Deep.dtd);
    ]
  in
  let rows =
    List.map
      (fun (doc_name, dtd) ->
        let layout = Xmlshred.Inline.derive_layout dtd in
        let tables = layout.Xmlshred.Inline.tables in
        let columns =
          List.fold_left
            (fun acc t -> acc + List.length (Xmlshred.Inline.table_columns t))
            0 tables
        in
        [
          doc_name;
          string_of_int (List.length (Xmlkit.Dtd.element_names dtd));
          string_of_int (List.length tables);
          string_of_int columns;
          String.concat " "
            (List.map (fun t -> t.Xmlshred.Inline.t_type) tables);
        ])
      dtds
  in
  Tables.print ~title:"T5: DTD inlining statistics (element types vs. generated tables)"
    ~header:[ "DTD"; "element types"; "tables"; "columns"; "tabled types" ]
    rows

(* ------------------------------------------------------------------ *)
(* T6: XMill-style compression (structure/data separation) *)

let t6 () =
  let docs =
    [
      ("auction 0.5", auction ~scale:0.5 ~seed:42);
      ("auction 1.0", auction ~scale:1.0 ~seed:42);
      ( "bibliography",
        Xmlwork.Bibliography.generate
          ~params:{ Xmlwork.Bibliography.default with entries = 400 }
          () );
      ("parts", Xmlwork.Deep.generate ~params:{ Xmlwork.Deep.default with depth = 10 } ());
    ]
  in
  let rows =
    List.map
      (fun (doc_name, dom) ->
        let s = Xmlkit.Compress.measure dom in
        let packed, t_enc = Tables.time (fun () -> Xmlkit.Compress.encode dom) in
        let back, t_dec = Tables.time (fun () -> Xmlkit.Compress.decode packed) in
        let ratio a b = Printf.sprintf "%.2f" (float_of_int a /. float_of_int b) in
        [
          doc_name;
          Tables.kb s.Xmlkit.Compress.plain_bytes;
          Tables.kb s.Xmlkit.Compress.flat_bytes;
          Tables.kb s.Xmlkit.Compress.xmill_bytes;
          ratio s.Xmlkit.Compress.plain_bytes s.Xmlkit.Compress.flat_bytes;
          ratio s.Xmlkit.Compress.plain_bytes s.Xmlkit.Compress.xmill_bytes;
          Tables.ms t_enc;
          Tables.ms t_dec;
          (if Dom.equal dom back then "yes" else "NO!");
        ])
      docs
  in
  Tables.print
    ~title:
      "T6: compression (plain vs flat-Huffman vs XMill-style separation, KiB and ratios)"
    ~header:
      [ "document"; "plain"; "flat"; "xmill"; "flat x"; "xmill x"; "enc ms"; "dec ms"; "identical" ]
    rows

(* ------------------------------------------------------------------ *)
(* T7: DataGuide structural summaries *)

let t7 () =
  let docs =
    [
      ("auction 0.5", auction ~scale:0.5 ~seed:42);
      ("auction 2.0", auction ~scale:2.0 ~seed:42);
      ( "bibliography",
        Xmlwork.Bibliography.generate
          ~params:{ Xmlwork.Bibliography.default with entries = 400 }
          () );
      ("parts depth 10", Xmlwork.Deep.generate ~params:{ Xmlwork.Deep.default with depth = 10 } ());
    ]
  in
  let rows =
    List.map
      (fun (doc_name, dom) ->
        let ix = Index.of_document dom in
        let dg, t_build = Tables.time (fun () -> Xmlkit.Dataguide.of_index ix) in
        let nodes = Dom.count_nodes dom in
        (* estimator exactness on the Q1 child chain (auction docs only) *)
        let exactness =
          if String.length doc_name >= 7 && String.sub doc_name 0 7 = "auction" then begin
            let est =
              Xmlkit.Dataguide.estimate dg
                [ `Child "site"; `Child "regions"; `Child "europe"; `Child "item"; `Child "name" ]
            in
            let actual =
              List.length (Xpathkit.Eval.select_nodes ix "/site/regions/europe/item/name")
            in
            Printf.sprintf "%d=%d" est actual
          end
          else "-"
        in
        [
          doc_name;
          string_of_int nodes;
          string_of_int (Xmlkit.Dataguide.size dg);
          Printf.sprintf "%.1f"
            (float_of_int nodes /. float_of_int (max 1 (Xmlkit.Dataguide.size dg)));
          Tables.ms t_build;
          exactness;
        ])
      docs
  in
  Tables.print
    ~title:"T7: strong DataGuide summary (distinct paths vs document nodes)"
    ~header:[ "document"; "nodes"; "guide size"; "compression x"; "build ms"; "Q1 est=actual" ]
    rows

(* ------------------------------------------------------------------ *)
(* F5: in-place update cost (the Dewey-vs-Interval asymmetry) *)

let f5 () =
  let scales = [ 0.25; 0.5; 1.0 ] in
  let new_item =
    Dom.element "item"
      ~attrs:[ Dom.attr "id" "itemX" ]
      [
        Dom.element "name" [ Dom.text "new thing" ];
        Dom.element "category" [ Dom.text "tools" ];
        Dom.element "location" [ Dom.text "Japan" ];
        Dom.element "quantity" [ Dom.text "1" ];
        Dom.element "payment" [ Dom.text "Cash" ];
        Dom.element "keyword" [ Dom.text "fresh" ];
        Dom.element "description" [ Dom.text "a freshly appended item" ];
      ]
  in
  let rows =
    List.concat_map
      (fun scale ->
        let dom = auction ~scale ~seed:42 in
        let nodes = Dom.count_nodes dom in
        List.concat_map
          (fun scheme ->
            (* append early in document order: the worst case for interval *)
            let store = Store.create scheme in
            let doc = Store.add_document store dom in
            let cost_append, t_append =
              Tables.time ~repeat:1 (fun () ->
                  Store.append_child store doc ~parent:"/site/regions/africa" new_item)
            in
            let cost_delete, t_delete =
              Tables.time ~repeat:1 (fun () ->
                  Store.delete_matching store doc "/site/regions/africa/item[@id='itemX']")
            in
            [
              [
                Printf.sprintf "%.2f" scale; string_of_int nodes; scheme; "append";
                Tables.ms t_append;
                string_of_int cost_append.Store.rows_inserted;
                string_of_int cost_append.Store.rows_updated;
                string_of_int cost_append.Store.rows_deleted;
              ];
              [
                Printf.sprintf "%.2f" scale; string_of_int nodes; scheme; "delete";
                Tables.ms t_delete;
                string_of_int cost_delete.Store.rows_inserted;
                string_of_int cost_delete.Store.rows_updated;
                string_of_int cost_delete.Store.rows_deleted;
              ];
            ])
          [ "edge"; "dewey"; "interval" ])
      scales
  in
  Tables.print
    ~title:"F5: in-place update cost (append/delete one item early in document order)"
    ~header:[ "scale"; "nodes"; "scheme"; "op"; "ms"; "ins"; "upd"; "del" ]
    rows

(* ------------------------------------------------------------------ *)
(* F6: ablation — Edge chain translation (one join-chain statement) vs
   stepwise frontier evaluation for the same child-path queries *)

let f6 () =
  let queries = [ "Q1"; "Q4"; "Q8" ] in
  let scales = [ 0.5; 1.0; 2.0 ] in
  let rows =
    List.concat_map
      (fun scale ->
        let dom = auction ~scale ~seed:42 in
        let nodes = Dom.count_nodes dom in
        let db = Relstore.Database.create () in
        Xmlshred.Edge.create_schema db;
        Xmlshred.Edge.create_indexes db;
        Xmlshred.Edge.shred db ~doc:0 (Index.of_document dom);
        List.concat_map
          (fun qid ->
            let q = Option.get (Xmlwork.Queries.find qid) in
            let simple =
              Option.get (Xmlshred.Pathquery.analyze (Xpathkit.Parser.parse_path q.Xmlwork.Queries.xpath))
            in
            let chain_targets, t_chain =
              Tables.time (fun () ->
                  let q, params = Xmlshred.Edge.chain_query ~doc:0 simple in
                  let prepared = Relstore.Database.prepare_query db q in
                  Xmlshred.Mapping.int_column
                    (Relstore.Database.query_prepared ~params db prepared))
            in
            let (step_targets, step_sqls), t_step =
              Tables.time (fun () -> Xmlshred.Edge.stepwise db ~doc:0 simple)
            in
            if chain_targets <> step_targets then Printf.eprintf "F6 MISMATCH on %s\n" qid;
            [
              [
                Printf.sprintf "%.2f" scale; string_of_int nodes; qid; "chain"; Tables.ms t_chain;
                "1"; string_of_int (List.length chain_targets);
              ];
              [
                Printf.sprintf "%.2f" scale; string_of_int nodes; qid; "stepwise";
                Tables.ms t_step;
                string_of_int (List.length step_sqls);
                string_of_int (List.length step_targets);
              ];
            ])
          queries)
      scales
  in
  Tables.print
    ~title:"F6: ablation — Edge join-chain SQL vs stepwise frontier evaluation"
    ~header:[ "scale"; "nodes"; "query"; "mode"; "ms"; "stmts"; "results" ]
    rows

(* ------------------------------------------------------------------ *)
(* F7: prepared-statement plan cache — cold-plan vs cached-plan latency.
   Results are also written to BENCH_plancache.json for machine
   consumption. *)

let f7 () =
  let dom = auction ~scale:0.5 ~seed:42 in
  let queries = [ "Q1"; "Q4"; "Q5"; "Q8" ] in
  let repeat = 25 in
  (* planning overhead is deterministic, so the minimum over repeats is the
     stable estimator — medians flip under GC noise on execution-dominated
     queries *)
  let best times = List.fold_left min infinity times in
  let entries = ref [] in
  let rows =
    List.concat_map
      (fun scheme ->
        let store = loaded_store scheme dom in
        List.filter_map
          (fun qid ->
            let q = Option.get (Xmlwork.Queries.find qid) in
            let xpath = q.Xmlwork.Queries.xpath in
            let probe = Store.query store 0 xpath in
            if probe.Store.fallback then None
            else begin
              (* cold: cache disabled, so every statement execution pays
                 lexing, parsing, and planning *)
              let cold_values = ref probe.Store.values in
              let cold_times =
                List.init repeat (fun _ ->
                    Store.set_plan_cache store false;
                    let r, t = Tables.time ~repeat:1 (fun () -> Store.query store 0 xpath) in
                    Store.set_plan_cache store true;
                    cold_values := r.Store.values;
                    t)
              in
              let cold = best cold_times in
              (* cached: seed once, then every run hits the cache *)
              Store.reset_cache_stats store;
              ignore (Store.query store 0 xpath);
              let cached_values = ref [] in
              let cached_times =
                List.init repeat (fun _ ->
                    let r, t = Tables.time ~repeat:1 (fun () -> Store.query store 0 xpath) in
                    cached_values := r.Store.values;
                    t)
              in
              let cached = best cached_times in
              let hits, misses, _, _ = Store.cache_stats store in
              (* the cache must not change answers *)
              Store.set_plan_cache store false;
              let off = Store.query store 0 xpath in
              Store.set_plan_cache store true;
              let identical =
                !cold_values = !cached_values && off.Store.values = !cached_values
              in
              if not identical then Printf.eprintf "F7 MISMATCH: %s on %s\n" qid scheme;
              let speedup = if cached > 0. then cold /. cached else 0. in
              entries :=
                Printf.sprintf
                  "    {\"scheme\": %S, \"query\": %S, \"cold_ms\": %.4f, \"cached_ms\": %.4f, \
                   \"speedup\": %.2f, \"cache_hits\": %d, \"cache_misses\": %d, \"identical\": \
                   %b}"
                  scheme qid (cold *. 1000.) (cached *. 1000.) speedup hits misses identical
                :: !entries;
              Some
                [
                  scheme; qid; Tables.ms cold; Tables.ms cached;
                  Printf.sprintf "%.2f" speedup; string_of_int hits; string_of_int misses;
                  (if identical then "yes" else "NO!");
                ]
            end)
          queries)
      [ "edge"; "binary"; "interval"; "dewey"; "universal"; "inline" ]
  in
  let oc = open_out "BENCH_plancache.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"plancache\",\n  \"scale\": 0.5,\n  \"repeat\": %d,\n  \"entries\": \
     [\n%s\n  ]\n}\n"
    repeat
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  Tables.print
    ~title:"F7: plan cache — cold vs cached plan latency (also BENCH_plancache.json)"
    ~header:[ "scheme"; "query"; "cold ms"; "cached ms"; "speedup"; "hits"; "misses"; "identical" ]
    rows

(* ------------------------------------------------------------------ *)
(* F8: EXPLAIN ANALYZE — per-operator time breakdown of the executed plans
   for Q1 (child chain) and Q5 (descendant) under edge, interval, and
   dewey. Written to BENCH_analyze.json for machine consumption. The scale
   is overridable (BENCH_F8_SCALE) so CI can smoke-run it in milliseconds. *)

let f8 () =
  let scale =
    match Sys.getenv_opt "BENCH_F8_SCALE" with
    | Some s -> (try float_of_string s with _ -> 0.5)
    | None -> 0.5
  in
  let dom = auction ~scale ~seed:42 in
  let queries = [ "Q1"; "Q5" ] in
  let module P = Relstore.Plan in
  (* one row per operator, pre-order with depth for indentation *)
  let rec flatten depth (a : P.annotated) =
    (depth, a) :: List.concat_map (flatten (depth + 1)) a.P.an_children
  in
  let rows = ref [] and entries = ref [] in
  List.iter
    (fun scheme ->
      let store = loaded_store scheme dom in
      List.iter
        (fun qid ->
          let q = Option.get (Xmlwork.Queries.find qid) in
          let xpath = q.Xmlwork.Queries.xpath in
          (* warm the plan cache so F8 measures execution, not planning *)
          ignore (Store.query store 0 xpath);
          let r = Store.query ~analyze:true store 0 xpath in
          List.iteri
            (fun si (sql, annot) ->
              List.iter
                (fun (depth, (a : P.annotated)) ->
                  let ms = float_of_int a.P.an_ns /. 1e6 in
                  rows :=
                    [
                      scheme; qid; string_of_int si;
                      String.make (2 * depth) ' ' ^ a.P.an_op;
                      string_of_int a.P.an_rows; string_of_int a.P.an_nexts;
                      Printf.sprintf "%.3f" ms;
                    ]
                    :: !rows;
                  entries :=
                    Printf.sprintf
                      "    {\"scheme\": %S, \"query\": %S, \"stmt\": %d, \"depth\": %d, \"op\": \
                       %S, \"rows\": %d, \"nexts\": %d, \"ms\": %.4f}"
                      scheme qid si depth a.P.an_op a.P.an_rows a.P.an_nexts ms
                    :: !entries;
                  ignore sql)
                (flatten 0 annot))
            r.Store.analyzed)
        queries)
    [ "edge"; "interval"; "dewey" ];
  let oc = open_out "BENCH_analyze.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"analyze\",\n  \"scale\": %g,\n  \"entries\": [\n%s\n  ]\n}\n" scale
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  Tables.print
    ~title:
      (Printf.sprintf
         "F8: EXPLAIN ANALYZE — per-operator actuals, scale %g (also BENCH_analyze.json)" scale)
    ~header:[ "scheme"; "query"; "stmt"; "operator"; "rows"; "nexts"; "ms" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* F9: tracing overhead — the F6 query workload under the edge scheme with
   tracing off, sampled at 1%, and always-on. Planning is warmed first so
   the comparison isolates the instrumentation cost. Written to
   BENCH_trace.json; scale and repeat overridable (BENCH_F9_SCALE,
   BENCH_F9_REPEAT) so CI can smoke-run it. *)

let f9 () =
  let scale =
    match Sys.getenv_opt "BENCH_F9_SCALE" with
    | Some s -> (try float_of_string s with _ -> 0.5)
    | None -> 0.5
  in
  let repeat =
    match Sys.getenv_opt "BENCH_F9_REPEAT" with
    | Some s -> (try int_of_string s with _ -> 25)
    | None -> 25
  in
  let dom = auction ~scale ~seed:42 in
  let queries = [ "Q1"; "Q4"; "Q8" ] in
  let best times = List.fold_left min infinity times in
  let store = loaded_store "edge" dom in
  let modes =
    [
      ("off", Obskit.Trace.Off);
      ("ratio-0.01", Obskit.Trace.Ratio 0.01);
      ("always", Obskit.Trace.Always);
    ]
  in
  let entries = ref [] in
  let rows =
    List.concat_map
      (fun qid ->
        let q = Option.get (Xmlwork.Queries.find qid) in
        let xpath = q.Xmlwork.Queries.xpath in
        (* warm the plan cache and the allocator before the baseline run *)
        for _ = 1 to 3 do
          ignore (Store.query store 0 xpath)
        done;
        (* off first: its best time is the baseline the other modes are
           compared against *)
        let baseline = ref 0. in
        List.map
          (fun (mode_name, sampling) ->
            Obskit.Trace.set_sampling sampling;
            Obskit.Trace.clear ();
            let times =
              List.init repeat (fun _ ->
                  snd (Tables.time ~repeat:1 (fun () -> Store.query store 0 xpath)))
            in
            Obskit.Trace.set_sampling Obskit.Trace.Off;
            let t = best times in
            if String.equal mode_name "off" then baseline := t;
            let overhead_pct =
              if !baseline > 0. then (t -. !baseline) /. !baseline *. 100. else 0.
            in
            let spans = List.length (Obskit.Trace.spans ()) in
            entries :=
              Printf.sprintf
                "    {\"query\": %S, \"mode\": %S, \"best_ms\": %.4f, \"overhead_pct\": %.1f, \
                 \"spans_retained\": %d}"
                qid mode_name (t *. 1000.) overhead_pct spans
              :: !entries;
            [
              qid; mode_name; Tables.ms t;
              Printf.sprintf "%.1f" overhead_pct; string_of_int spans;
            ])
          modes)
      queries
  in
  Obskit.Trace.clear ();
  let oc = open_out "BENCH_trace.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"trace_overhead\",\n  \"scheme\": \"edge\",\n  \"scale\": %g,\n  \
     \"repeat\": %d,\n  \"entries\": [\n%s\n  ]\n}\n"
    scale repeat
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  Tables.print
    ~title:
      (Printf.sprintf
         "F9: tracing overhead — off vs 1%%-sampled vs always-on, scale %g (also \
          BENCH_trace.json)"
         scale)
    ~header:[ "query"; "mode"; "best ms"; "overhead %"; "spans" ]
    rows

(* ------------------------------------------------------------------ *)
(* F10: statically-empty fast path — queries the document's DataGuide
   proves empty, answered with and without the short-circuit. The guide
   check costs a hash lookup plus a walk over a structure the size of the
   schema, versus translating, planning, and executing SQL that scans real
   tables to return nothing. A non-empty control query shows the guide
   probe is free when it proves nothing. Written to BENCH_lint.json; scale
   and repeat overridable (BENCH_F10_SCALE, BENCH_F10_REPEAT). *)

let f10 () =
  let scale =
    match Sys.getenv_opt "BENCH_F10_SCALE" with
    | Some s -> (try float_of_string s with _ -> 0.5)
    | None -> 0.5
  in
  let repeat =
    match Sys.getenv_opt "BENCH_F10_REPEAT" with
    | Some s -> (try int_of_string s with _ -> 25)
    | None -> 25
  in
  let dom = auction ~scale ~seed:42 in
  let queries =
    [
      ("empty-shallow", "/site/nowhere");
      ("empty-deep", "/site/people/person/profile/nowhere");
      ("empty-descendant", "//item/bogus");
      ("control-nonempty", "/site//item/name");
    ]
  in
  let best times = List.fold_left min infinity times in
  let entries = ref [] in
  let rows =
    List.concat_map
      (fun scheme ->
        let store = loaded_store scheme dom in
        List.map
          (fun (qname, xpath) ->
            (* warm plans and the allocator with the fast path off *)
            Store.set_empty_fastpath store false;
            for _ = 1 to 3 do
              ignore (Store.query store 0 xpath)
            done;
            let measure () =
              best
                (List.init repeat (fun _ ->
                     snd (Tables.time ~repeat:1 (fun () -> Store.query store 0 xpath))))
            in
            let t_off = measure () in
            Store.set_empty_fastpath store true;
            let hits_before =
              Relstore.Metrics.counter ~label:(Store.metrics_label store)
                "store.query.fastpath_empty"
            in
            let t_on = measure () in
            let hits =
              Relstore.Metrics.counter ~label:(Store.metrics_label store)
                "store.query.fastpath_empty"
              - hits_before
            in
            let speedup = if t_on > 0. then t_off /. t_on else 0. in
            entries :=
              Printf.sprintf
                "    {\"scheme\": %S, \"query\": %S, \"xpath\": %S, \"off_ms\": %.4f, \
                 \"on_ms\": %.4f, \"speedup\": %.1f, \"fastpath_hits\": %d}"
                scheme qname xpath (t_off *. 1000.) (t_on *. 1000.) speedup hits
              :: !entries;
            [
              scheme; qname; Tables.ms t_off; Tables.ms t_on;
              Printf.sprintf "%.1fx" speedup; string_of_int hits;
            ])
          queries)
      [ "edge"; "interval"; "dewey" ]
  in
  let oc = open_out "BENCH_lint.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"lint_empty_fastpath\",\n  \"scale\": %g,\n  \"repeat\": %d,\n  \
     \"entries\": [\n%s\n  ]\n}\n"
    scale repeat
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  Tables.print
    ~title:
      (Printf.sprintf
         "F10: statically-empty fast path — DataGuide short-circuit off vs on, scale %g (also \
          BENCH_lint.json)"
         scale)
    ~header:[ "scheme"; "query"; "off ms"; "on ms"; "speedup"; "hits" ]
    rows

(* ------------------------------------------------------------------ *)
(* F11: bulk loading — row-at-a-time inserts that maintain every index per
   row versus a bulk session that appends all rows first and builds each
   B+-tree bottom-up from one sort of (key, rowid) pairs. Measured per
   indexed scheme across document scales; at scales up to 1.0 the two
   stores' Q1-Q12 answers are additionally compared for byte equality.
   Written to BENCH_load.json; scale(s) and repeat overridable
   (BENCH_F11_SCALE pins a single scale, BENCH_F11_REPEAT). *)

let f11 () =
  let scales =
    match Sys.getenv_opt "BENCH_F11_SCALE" with
    | Some s -> (try [ float_of_string s ] with _ -> [ 1.0 ])
    | None -> [ 0.25; 0.5; 1.0; 2.0 ]
  in
  let repeat =
    match Sys.getenv_opt "BENCH_F11_REPEAT" with
    | Some s -> (try int_of_string s with _ -> 3)
    | None -> 3
  in
  let indexed_schemes = [ "edge"; "binary"; "interval"; "dewey"; "universal"; "inline" ] in
  let median xs =
    let a = Array.of_list (List.sort compare xs) in
    let n = Array.length a in
    if n = 0 then 0.
    else if n mod 2 = 1 then a.(n / 2)
    else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.
  in
  let entries = ref [] in
  let rows =
    List.concat_map
      (fun scale ->
        let dom = auction ~scale ~seed:42 in
        List.map
          (fun scheme ->
            let make ~bulk =
              if String.equal scheme "inline" then
                Store.create ~dtd:(Lazy.force Xmlwork.Auction.dtd) ~bulk scheme
              else Store.create ~bulk scheme
            in
            (* Paired repeats over fresh stores: each run pays the full
               shred-and-index cost from an empty database, a major GC
               before each run keeps the collection debt of earlier
               (discarded) stores from being charged to this one, and
               every repeat times a row run immediately followed by a
               bulk run. The reported speedup is the MEDIAN of the
               per-pair ratios: host-speed drift hits both halves of a
               pair alike and cancels in the ratio, where min-of-row /
               min-of-bulk would compare timings taken minutes apart. *)
            let timed ~bulk =
              let store = make ~bulk in
              Gc.full_major ();
              let t0 = Unix.gettimeofday () in
              ignore (Store.add_document store dom);
              (store, Unix.gettimeofday () -. t0)
            in
            let runs = List.init repeat (fun _ -> (timed ~bulk:false, timed ~bulk:true)) in
            let row_store = fst (fst (List.hd runs)) in
            let bulk_store = fst (snd (List.hd runs)) in
            let t_row = median (List.map (fun ((_, t), _) -> t) runs) in
            let t_bulk = median (List.map (fun (_, (_, t)) -> t) runs) in
            let nrows = (Store.stats bulk_store).Store.total_rows in
            let speedup =
              median
                (List.filter_map
                   (fun ((_, r), (_, b)) -> if b > 0. then Some (r /. b) else None)
                   runs)
            in
            let rows_per_sec = if t_bulk > 0. then float_of_int nrows /. t_bulk else 0. in
            let checked = scale <= 1.0 in
            let equal =
              (not checked)
              || List.for_all
                   (fun q ->
                     Store.query_values row_store 0 q.Xmlwork.Queries.xpath
                     = Store.query_values bulk_store 0 q.Xmlwork.Queries.xpath)
                   Xmlwork.Queries.auction_queries
            in
            if checked && not equal then
              Printf.eprintf "F11: %s scale %g: bulk and row-at-a-time answers DIFFER\n" scheme
                scale;
            entries :=
              Printf.sprintf
                "    {\"scheme\": %S, \"scale\": %g, \"rows\": %d, \"row_ms\": %.2f, \
                 \"bulk_ms\": %.2f, \"speedup\": %.2f, \"bulk_rows_per_sec\": %.0f, \
                 \"queries_equal\": %s}"
                scheme scale nrows (t_row *. 1000.) (t_bulk *. 1000.) speedup rows_per_sec
                (if checked then string_of_bool equal else "\"unchecked\"")
              :: !entries;
            [
              Printf.sprintf "%.2f" scale; scheme; string_of_int nrows; Tables.ms t_row;
              Tables.ms t_bulk; Printf.sprintf "%.2fx" speedup;
              Printf.sprintf "%.0f" rows_per_sec;
              (if checked then if equal then "ok" else "DIFFER" else "-");
            ])
          indexed_schemes)
      scales
  in
  let oc = open_out "BENCH_load.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"bulk_load\",\n  \"repeat\": %d,\n  \"entries\": [\n%s\n  ]\n}\n"
    repeat
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  Tables.print
    ~title:
      "F11: bulk loading — row-at-a-time vs deferred bottom-up index builds (also \
       BENCH_load.json)"
    ~header:[ "scale"; "scheme"; "rows"; "row ms"; "bulk ms"; "speedup"; "rows/s"; "Q1-12" ]
    rows

(* ------------------------------------------------------------------ *)
(* F12: vectorized execution and the staircase join — (a) throughput of
   the hot relational operators under the row-at-a-time iterator versus
   the batched interpreter, on a synthetic table big enough to keep each
   operator hot; (b) descendant-axis workload queries on the interval
   scheme with the staircase structural join toggled off and on (the
   plan cache is disabled so every run replans and the toggle takes
   effect). Answers are compared across both toggles. Written to
   BENCH_F12.json; BENCH_F12_SCALE scales the synthetic row count and
   the document, BENCH_F12_REPEAT the repeats. *)

let f12 () =
  let scale =
    match Sys.getenv_opt "BENCH_F12_SCALE" with
    | Some s -> (try float_of_string s with _ -> 1.0)
    | None -> 1.0
  in
  let repeat =
    match Sys.getenv_opt "BENCH_F12_REPEAT" with
    | Some s -> (try int_of_string s with _ -> 3)
    | None -> 3
  in
  let median xs =
    let a = Array.of_list (List.sort compare xs) in
    let n = Array.length a in
    if n = 0 then 0.
    else if n mod 2 = 1 then a.(n / 2)
    else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.
  in
  let time f =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let saved_batched = Relstore.Executor.batched_on () in
  let entries = ref [] in
  (* (a) operator throughput, iterator vs batched *)
  let n = max 1_000 (int_of_float (200_000. *. scale)) in
  let db = Relstore.Database.create () in
  ignore (Relstore.Database.exec db "CREATE TABLE t (id INTEGER NOT NULL, k INTEGER, v INTEGER)");
  Relstore.Database.with_session db (fun s ->
      for i = 0 to n - 1 do
        Relstore.Database.session_insert s "t"
          [| Relstore.Value.Int i; Relstore.Value.Int (i mod 1000); Relstore.Value.Int (i * 7 mod 97) |]
      done);
  let op_queries =
    [
      ("filter", "SELECT id, v FROM t WHERE v < 48");
      ("project", "SELECT id + v, k FROM t");
      ("count", "SELECT count(*) FROM t");
      ("aggregate", "SELECT k, count(*), sum(v) FROM t GROUP BY k");
      ("hash-join", "SELECT count(*) FROM t a, t b WHERE a.id = b.id");
    ]
  in
  let exec_rows =
    List.map
      (fun (op, sql) ->
        let run batched =
          Relstore.Executor.set_batched batched;
          time (fun () -> Relstore.Database.query db sql)
        in
        ignore (run false);
        (* one warm-up fills the plan cache: both modes time pure execution *)
        let runs = List.init repeat (fun _ -> (snd (run false), snd (run true))) in
        let t_iter = median (List.map fst runs) in
        let t_bat = median (List.map snd runs) in
        let speedup =
          median (List.filter_map (fun (i, b) -> if b > 0. then Some (i /. b) else None) runs)
        in
        let rps = if t_bat > 0. then float_of_int n /. t_bat else 0. in
        entries :=
          Printf.sprintf
            "    {\"kind\": \"executor\", \"op\": %S, \"rows\": %d, \"iter_ms\": %.2f, \
             \"batched_ms\": %.2f, \"speedup\": %.2f, \"batched_rows_per_sec\": %.0f}"
            op n (t_iter *. 1000.) (t_bat *. 1000.) speedup rps
          :: !entries;
        [
          op; string_of_int n; Tables.ms t_iter; Tables.ms t_bat;
          Printf.sprintf "%.2fx" speedup; Printf.sprintf "%.0f" rps;
        ])
      op_queries
  in
  Relstore.Executor.set_batched saved_batched;
  Tables.print
    ~title:
      (Printf.sprintf
         "F12a: executor throughput — row iterator vs batched interpreter, %d rows (also \
          BENCH_F12.json)"
         n)
    ~header:[ "operator"; "rows"; "iter ms"; "batched ms"; "speedup"; "batched rows/s" ]
    exec_rows;
  (* (b) staircase join on descendant-axis workload queries *)
  let dom = auction ~scale ~seed:42 in
  let store = loaded_store "interval" dom in
  Relstore.Database.set_plan_cache (Store.database store) false;
  let stair_rows =
    List.map
      (fun (qid, xpath) ->
          let run stair =
            Relstore.Planner.set_staircase stair;
            time (fun () -> Store.query_values store 0 xpath)
          in
          let answers_nl, _ = run false in
          let answers_st, _ = run true in
          let equal = answers_nl = answers_st in
          if not equal then Printf.eprintf "F12: %s staircase answers DIFFER\n" qid;
          let runs = List.init repeat (fun _ -> (snd (run false), snd (run true))) in
          Relstore.Planner.set_staircase true;
          let t_nl = median (List.map fst runs) in
          let t_st = median (List.map snd runs) in
          let speedup =
            median (List.filter_map (fun (a, b) -> if b > 0. then Some (a /. b) else None) runs)
          in
          entries :=
            Printf.sprintf
              "    {\"kind\": \"staircase\", \"query\": %S, \"matches\": %d, \"nl_ms\": %.2f, \
               \"staircase_ms\": %.2f, \"speedup\": %.2f, \"answers_equal\": %b}"
              qid (List.length answers_st) (t_nl *. 1000.) (t_st *. 1000.) speedup equal
            :: !entries;
          [
            qid; string_of_int (List.length answers_st); Tables.ms t_nl; Tables.ms t_st;
            Printf.sprintf "%.2fx" speedup; (if equal then "ok" else "DIFFER");
          ])
      [
        (* Q6 from the workload, then descendant steps whose ancestor sets
           are large — the shapes where the nested loop goes quadratic *)
        ("Q6", "/site//item/name");
        ("item-keyword", "//item//keyword");
        ("auction-increase", "//open_auction//increase");
        ("person-age", "//person//age");
      ]
  in
  let oc = open_out "BENCH_F12.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"vectorized_staircase\",\n  \"scale\": %g,\n  \"repeat\": %d,\n  \
     \"entries\": [\n%s\n  ]\n}\n"
    scale repeat
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  Tables.print
    ~title:
      (Printf.sprintf
         "F12b: staircase structural join off vs on, interval scheme, scale %g (also \
          BENCH_F12.json)"
         scale)
    ~header:[ "query"; "matches"; "nested-loop ms"; "staircase ms"; "speedup"; "answers" ]
    stair_rows

(* ------------------------------------------------------------------ *)
(* F13: durability — what the write-ahead log costs at load time and what
   recovery costs at open time. Per scale: an in-memory load vs a durable
   load (every document commit is a WAL append + fsync), the checkpoint
   that folds the log into a page image, recovery by full WAL replay
   (crash before any checkpoint), and reopening from a checkpoint image
   with an empty log. Q1-Q12 answers of the recovered store are compared
   byte-for-byte against the in-memory store. Written to BENCH_F13.json;
   BENCH_F13_SCALE pins a single scale, BENCH_F13_REPEAT the repeats. *)

let f13 () =
  let scales =
    match Sys.getenv_opt "BENCH_F13_SCALE" with
    | Some s -> (try [ float_of_string s ] with _ -> [ 0.5 ])
    | None -> [ 0.25; 0.5; 1.0 ]
  in
  let repeat =
    match Sys.getenv_opt "BENCH_F13_REPEAT" with
    | Some s -> (try int_of_string s with _ -> 3)
    | None -> 3
  in
  let median xs =
    let a = Array.of_list (List.sort compare xs) in
    let n = Array.length a in
    if n = 0 then 0.
    else if n mod 2 = 1 then a.(n / 2)
    else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.
  in
  let dir_counter = ref 0 in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  let fresh_dir () =
    incr dir_counter;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "xmlstore_bench_f13_%d_%d" (Unix.getpid ()) !dir_counter)
    in
    rm_rf d;
    d
  in
  let entries = ref [] in
  let rows =
    List.map
      (fun scale ->
        let dom = auction ~scale ~seed:42 in
        let reference = Store.create "interval" in
        ignore (Store.add_document reference dom);
        let timed f =
          Gc.full_major ();
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (r, Unix.gettimeofday () -. t0)
        in
        let runs =
          List.init repeat (fun _ ->
              let _, t_mem =
                timed (fun () ->
                    let s = Store.create "interval" in
                    ignore (Store.add_document s dom))
              in
              (* durable load: shred + per-document WAL commit (fsync) *)
              let dir = fresh_dir () in
              let store, t_wal =
                timed (fun () ->
                    let s = Store.create ~durable:dir "interval" in
                    ignore (Store.add_document s dom);
                    s)
              in
              (* crash before the checkpoint: recovery replays the log *)
              Relstore.Database.abandon (Store.database store);
              let replayed, t_replay = timed (fun () -> Store.open_durable dir) in
              let _, t_ckpt = timed (fun () -> Store.checkpoint replayed) in
              Store.close replayed;
              (* clean reopen: page image only, empty log *)
              let reopened, t_image = timed (fun () -> Store.open_durable dir) in
              let equal =
                List.for_all
                  (fun q ->
                    Store.query_values reference 0 q.Xmlwork.Queries.xpath
                    = Store.query_values reopened 0 q.Xmlwork.Queries.xpath)
                  Xmlwork.Queries.auction_queries
              in
              let nrows = (Store.stats reopened).Store.total_rows in
              Store.close reopened;
              rm_rf dir;
              (t_mem, t_wal, t_replay, t_ckpt, t_image, equal, nrows))
        in
        let med f = median (List.map f runs) in
        let t_mem = med (fun (t, _, _, _, _, _, _) -> t) in
        let t_wal = med (fun (_, t, _, _, _, _, _) -> t) in
        let t_replay = med (fun (_, _, t, _, _, _, _) -> t) in
        let t_ckpt = med (fun (_, _, _, t, _, _, _) -> t) in
        let t_image = med (fun (_, _, _, _, t, _, _) -> t) in
        let equal = List.for_all (fun (_, _, _, _, _, e, _) -> e) runs in
        let nrows = match runs with (_, _, _, _, _, _, n) :: _ -> n | [] -> 0 in
        let overhead = if t_mem > 0. then t_wal /. t_mem else 0. in
        if not equal then
          Printf.eprintf "F13: scale %g: recovered answers DIFFER from in-memory\n" scale;
        entries :=
          Printf.sprintf
            "    {\"scale\": %g, \"rows\": %d, \"mem_ms\": %.2f, \"wal_ms\": %.2f, \
             \"overhead\": %.2f, \"replay_ms\": %.2f, \"checkpoint_ms\": %.2f, \
             \"image_open_ms\": %.2f, \"queries_equal\": %b}"
            scale nrows (t_mem *. 1000.) (t_wal *. 1000.) overhead (t_replay *. 1000.)
            (t_ckpt *. 1000.) (t_image *. 1000.) equal
          :: !entries;
        [
          Printf.sprintf "%.2f" scale; string_of_int nrows; Tables.ms t_mem; Tables.ms t_wal;
          Printf.sprintf "%.2fx" overhead; Tables.ms t_replay; Tables.ms t_ckpt;
          Tables.ms t_image; (if equal then "ok" else "DIFFER");
        ])
      scales
  in
  let oc = open_out "BENCH_F13.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"durability\",\n  \"scheme\": \"interval\",\n  \"repeat\": %d,\n\
    \  \"entries\": [\n%s\n  ]\n}\n"
    repeat
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  Tables.print
    ~title:
      "F13: durability — WAL overhead at load, recovery by replay vs checkpoint image \
       (interval scheme, also BENCH_F13.json)"
    ~header:
      [ "scale"; "rows"; "mem ms"; "wal ms"; "overhead"; "replay ms"; "ckpt ms"; "image ms";
        "Q1-12" ]
    rows

(* F14: telemetry overhead — the F13 durable-load + query workload run
   with tracing fully off against the production posture (metrics always
   on, 1% trace sampling). Arming the slow log is excluded: it
   deliberately switches every query into EXPLAIN ANALYZE capture mode,
   a diagnostic cost, not the always-on telemetry this experiment
   budgets. Each repeat runs the two variants back to back and the
   reported overhead is the median of the per-pair ratios, which cancels
   machine drift. Written to BENCH_F14.json; the target is under 3%
   overhead. BENCH_F14_SCALE and BENCH_F14_REPEAT pin the workload. *)

let f14 () =
  let scale =
    match Sys.getenv_opt "BENCH_F14_SCALE" with
    | Some s -> (try float_of_string s with _ -> 0.5)
    | None -> 0.5
  in
  let repeat =
    match Sys.getenv_opt "BENCH_F14_REPEAT" with
    | Some s -> (try int_of_string s with _ -> 5)
    | None -> 5
  in
  let dir_counter = ref 0 in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  let fresh_dir () =
    incr dir_counter;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "xmlstore_bench_f14_%d_%d" (Unix.getpid ()) !dir_counter)
    in
    rm_rf d;
    d
  in
  let dom = auction ~scale ~seed:42 in
  let workload () =
    let dir = fresh_dir () in
    let s = Store.create ~durable:dir "interval" in
    ignore (Store.add_document s dom);
    (* Q1-12 several times over: the query path is where the span and
       metric instrumentation sits, and repeating it keeps the measured
       region from being dominated by fsync scheduling noise *)
    for _ = 1 to 10 do
      List.iter
        (fun q -> ignore (Store.query_values s 0 q.Xmlwork.Queries.xpath))
        Xmlwork.Queries.auction_queries
    done;
    Store.close s;
    rm_rf dir
  in
  let timed f =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  Obskit.Trace.set_sampling Obskit.Trace.Off;
  ignore (timed workload);
  (* warm caches *)
  let run_base () =
    Obskit.Trace.set_sampling Obskit.Trace.Off;
    timed workload
  in
  let run_inst () =
    Obskit.Trace.set_sampling (Obskit.Trace.Ratio 0.01);
    let t = timed workload in
    Obskit.Trace.set_sampling Obskit.Trace.Off;
    Obskit.Trace.clear ();
    t
  in
  (* alternate the order across pairs so a slow stretch of the machine
     penalizes both variants equally *)
  let pairs =
    List.init repeat (fun i ->
        if i mod 2 = 0 then
          let b = run_base () in
          (b, run_inst ())
        else
          let t = run_inst () in
          (run_base (), t))
  in
  (* compare best observed runs: scheduling noise and fsync hiccups only
     ever add time, so the minimum is the robust per-variant cost (the
     median of per-pair ratios swings wildly when one run is disturbed) *)
  let best xs = List.fold_left min infinity xs in
  let base_ms = best (List.map fst pairs) *. 1000. in
  let inst_ms = best (List.map snd pairs) *. 1000. in
  let overhead_pct = if base_ms > 0. then ((inst_ms /. base_ms) -. 1.) *. 100. else 0. in
  let pass = overhead_pct < 3.0 in
  let oc = open_out "BENCH_F14.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"telemetry_overhead\",\n  \"scheme\": \"interval\",\n\
    \  \"scale\": %g,\n  \"repeat\": %d,\n  \"sampling\": 0.01,\n\
    \  \"base_ms\": %.2f,\n  \"instrumented_ms\": %.2f,\n\
    \  \"overhead_pct\": %.2f,\n  \"target_pct\": 3.0,\n  \"pass\": %b\n}\n"
    scale repeat base_ms inst_ms overhead_pct pass;
  close_out oc;
  if not pass then
    Printf.eprintf "F14: telemetry overhead %.2f%% exceeds the 3%% target\n" overhead_pct;
  Tables.print
    ~title:
      "F14: telemetry overhead — durable load + Q1-12, tracing off vs metrics + 1% \
       sampling (also BENCH_F14.json)"
    ~header:[ "scale"; "base ms"; "instrumented ms"; "overhead"; "target"; "verdict" ]
    [
      [
        Printf.sprintf "%.2f" scale; Printf.sprintf "%.2f" base_ms;
        Printf.sprintf "%.2f" inst_ms; Printf.sprintf "%.2f%%" overhead_pct; "<3%";
        (if pass then "ok" else "OVER");
      ];
    ]

(* F15: domain-parallel query throughput — Q1-12 through the snapshot
   pool on 1/2/4/8 reader domains while a writer keeps committing loads,
   against the single-domain pool as baseline. Per-domain work is fixed,
   so perfect scaling keeps the wall clock flat and multiplies
   queries/sec by the domain count. Readers verify every answer
   byte-for-byte against the direct store as they go: a load landing
   mid-run must never perturb a committed document's answers. The
   speedup target is honest about hardware — 2.5x when the host grants
   >= 4 cores, 1.0x (parallel overhead must not lose throughput) on 2-3
   cores, correctness-only on a single core where every stop-the-world
   minor collection pays a scheduler round-trip per extra domain — and
   BENCH_F15.json records host_cores so a reader can tell the regimes
   apart. BENCH_F15_SCALE, BENCH_F15_REPEAT, BENCH_F15_SWEEPS,
   BENCH_F15_DOMAINS ("1 2 4 8"), BENCH_F15_WRITES and BENCH_F15_TARGET
   override the defaults. *)

let f15 () =
  let scale =
    match Sys.getenv_opt "BENCH_F15_SCALE" with
    | Some s -> (try float_of_string s with _ -> 0.1)
    | None -> 0.1
  in
  let repeat =
    match Sys.getenv_opt "BENCH_F15_REPEAT" with
    | Some s -> (try int_of_string s with _ -> 3)
    | None -> 3
  in
  let writes =
    match Sys.getenv_opt "BENCH_F15_WRITES" with
    | Some s -> (try int_of_string s with _ -> 3)
    | None -> 3
  in
  let domain_counts =
    let src = Option.value (Sys.getenv_opt "BENCH_F15_DOMAINS") ~default:"1 2 4 8" in
    let parsed = List.filter_map int_of_string_opt (String.split_on_char ' ' src) in
    let parsed = List.filter (fun d -> d >= 1) parsed in
    if List.mem 1 parsed && List.length parsed > 1 then parsed else 1 :: parsed
  in
  let host_cores = Domain.recommended_domain_count () in
  (* stepped by hardware: >= 4 cores must deliver the 2.5x tentpole
     target; 2-3 cores must at least not lose throughput; a single core
     offers no parallelism at all and even pays a scheduler round-trip
     per stop-the-world minor collection, so there the experiment
     degenerates to a correctness gate (answers_equal) and the measured
     speedup is informational *)
  let target =
    match Sys.getenv_opt "BENCH_F15_TARGET" with
    | Some s -> (try float_of_string s with _ -> 1.0)
    | None -> if host_cores >= 4 then 2.5 else if host_cores >= 2 then 1.0 else 0.0
  in
  let sweeps =
    match Sys.getenv_opt "BENCH_F15_SWEEPS" with
    | Some s -> (try int_of_string s with _ -> 20)
    | None -> 20
  in
  let dom = auction ~scale ~seed:42 in
  let tiny =
    Xmlkit.Parser.parse
      "<site><people><person id=\"pw\"><name>Mid Run Load</name></person></people></site>"
  in
  let queries = Xmlwork.Queries.auction_queries in
  let direct = loaded_store "edge" dom in
  let reference =
    List.map (fun q -> (q.Xmlwork.Queries.qid, Store.query_values direct 0 q.Xmlwork.Queries.xpath)) queries
  in
  (* one measured run: d reader domains sweep Q1-12 [sweeps] times each
     against pool replicas while the main domain commits [writes] loads;
     returns (elapsed seconds, every answer matched the direct store) *)
  let run d =
    let primary = loaded_store "edge" dom in
    let pool = Storepool.Pool.create ~readers:d primary in
    (* pre-warm the replica cache: the d initial builds are setup cost,
       not steady-state query throughput (rebuilds triggered by the
       mid-run writes stay inside the measured window) *)
    let warm = List.init d (fun _ -> Storepool.Pool.acquire pool) in
    List.iter (Storepool.Pool.release pool) warm;
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let readers =
      List.init d (fun _ ->
          Domain.spawn (fun () ->
              let ok = ref true in
              for _ = 1 to sweeps do
                List.iter
                  (fun (qid, expect) ->
                    let xpath =
                      (List.find (fun q -> q.Xmlwork.Queries.qid = qid) queries).Xmlwork.Queries.xpath
                    in
                    let got = (Storepool.Pool.query pool 0 xpath).Store.values in
                    if got <> expect then ok := false)
                  reference
              done;
              !ok))
    in
    for _ = 1 to writes do
      ignore (Storepool.Pool.apply pool (fun s -> Store.add_document s tiny));
      Unix.sleepf 0.002
    done;
    let oks = List.map Domain.join readers in
    let elapsed = Unix.gettimeofday () -. t0 in
    (elapsed, List.for_all Fun.id oks)
  in
  ignore (run 1);
  (* warm caches *)
  let entries = ref [] in
  let base_qps = ref 0. in
  let rows =
    List.map
      (fun d ->
        let runs = List.init repeat (fun _ -> run d) in
        (* noise only adds time: the fastest repeat is the honest cost *)
        let elapsed = List.fold_left (fun acc (t, _) -> min acc t) infinity runs in
        let equal = List.for_all snd runs in
        let nqueries = d * sweeps * List.length queries in
        let qps = float_of_int nqueries /. elapsed in
        if d = 1 then base_qps := qps;
        let speedup = if !base_qps > 0. then qps /. !base_qps else 0. in
        entries :=
          Printf.sprintf
            "    {\"domains\": %d, \"queries\": %d, \"elapsed_ms\": %.2f, \"qps\": %.0f, \
             \"speedup\": %.2f, \"answers_equal\": %b}"
            d nqueries (elapsed *. 1000.) qps speedup equal
          :: !entries;
        ( d, speedup, equal,
          [
            string_of_int d; string_of_int nqueries; Tables.ms elapsed;
            Printf.sprintf "%.0f" qps; Printf.sprintf "%.2fx" speedup;
            (if equal then "ok" else "DIFFER");
          ] ))
      domain_counts
  in
  let best_parallel =
    List.fold_left (fun acc (d, s, _, _) -> if d > 1 then max acc s else acc) 0. rows
  in
  let best_parallel = if List.length rows = 1 then 1.0 else best_parallel in
  let all_equal = List.for_all (fun (_, _, e, _) -> e) rows in
  let pass = best_parallel >= target && all_equal in
  let oc = open_out "BENCH_F15.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"parallel_query\",\n  \"scheme\": \"edge\",\n  \"scale\": %g,\n\
    \  \"repeat\": %d,\n  \"sweeps\": %d,\n  \"writes\": %d,\n  \"host_cores\": %d,\n\
    \  \"target_speedup\": %.2f,\n  \"best_parallel_speedup\": %.2f,\n\
    \  \"answers_equal\": %b,\n  \"pass\": %b,\n  \"entries\": [\n%s\n  ]\n}\n"
    scale repeat sweeps writes host_cores target best_parallel all_equal pass
    (String.concat ",\n" (List.rev !entries));
  close_out oc;
  if not all_equal then
    Printf.eprintf "F15: parallel answers DIFFER from the direct store\n";
  if not pass then
    Printf.eprintf
      "F15: best parallel speedup %.2fx under the %.2fx target (host grants %d cores)\n"
      best_parallel target host_cores;
  Tables.print
    ~title:
      (Printf.sprintf
         "F15: domain-parallel Q1-12 under a live writer — queries/sec vs reader domains \
          (edge scheme, host_cores=%d, target %.1fx, also BENCH_F15.json)"
         host_cores target)
    ~header:[ "domains"; "queries"; "elapsed"; "qps"; "speedup"; "Q1-12" ]
    (List.map (fun (_, _, _, r) -> r) rows)

(* ------------------------------------------------------------------ *)
(* F4: micro-benchmarks via Bechamel — one Test.make per component *)

let f4 () =
  let open Bechamel in
  let open Toolkit in
  let doc_src = Xmlkit.Serializer.to_string (auction ~scale:0.05 ~seed:42) in
  let dom = Xmlkit.Parser.parse doc_src in
  let ix = Index.of_document dom in
  let store = loaded_store "interval" dom in
  let tests =
    [
      Test.make ~name:"xml-parse" (Staged.stage (fun () -> Xmlkit.Parser.parse doc_src));
      Test.make ~name:"xml-serialize" (Staged.stage (fun () -> Xmlkit.Serializer.to_string dom));
      Test.make ~name:"index-build" (Staged.stage (fun () -> Index.of_document dom));
      Test.make ~name:"xpath-parse"
        (Staged.stage (fun () -> Xpathkit.Parser.parse "/site/people/person[@id='p1']/name"));
      Test.make ~name:"xpath-native-q5" (Staged.stage (fun () -> Xpathkit.Eval.select_strings ix "//keyword"));
      Test.make ~name:"sql-parse"
        (Staged.stage (fun () ->
             Relstore.Sql_parser.parse_statement
               "SELECT a.x, count(*) FROM t a, u b WHERE a.k = b.k GROUP BY a.x ORDER BY a.x"));
      Test.make ~name:"interval-q1"
        (Staged.stage (fun () -> Store.query store 0 "/site/regions/europe/item/name"));
      Test.make ~name:"btree-insert-1k"
        (Staged.stage (fun () ->
             let t = Relstore.Btree.create () in
             for i = 0 to 999 do
               Relstore.Btree.insert t [| Relstore.Value.Int (i * 37 mod 1000) |] i
             done));
    ]
  in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s/%s" tests in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.1f" (e /. 1000.0)
        | _ -> "n/a"
      in
      rows := [ name; estimate ] :: !rows)
    results;
  Tables.print ~title:"F4: micro-benchmarks (Bechamel, OLS estimate)"
    ~header:[ "benchmark"; "us/op" ]
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("T1", t1); ("T2", t2); ("F1", f1); ("F2", f2); ("T3", t3); ("F3", f3);
    ("T4", t4); ("T5", t5); ("T6", t6); ("T7", t7); ("F5", f5); ("F6", f6); ("F7", f7);
    ("F8", f8); ("F9", f9); ("F10", f10); ("F11", f11); ("F12", f12); ("F13", f13); ("F14", f14); ("F15", f15); ("F4", f4);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  print_endline "XML storage & retrieval benchmark suite";
  print_endline "(see DESIGN.md for the experiment index, EXPERIMENTS.md for analysis)";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        let t0 = Unix.gettimeofday () in
        f ();
        Printf.printf "[%s completed in %.1fs]\n" name (Unix.gettimeofday () -. t0)
      | None ->
        Printf.eprintf "unknown experiment %s (available: %s)\n" name
          (String.concat ", " (List.map fst experiments)))
    requested
