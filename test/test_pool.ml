(* Concurrency suite for the store pool: answer equality against the
   direct single-threaded path, snapshot isolation under an in-flight
   bulk load, metrics scrapes racing query load, and replica-permit
   accounting when readers fail. The races run real [Domain.spawn]
   parallelism; on a single-core host they still interleave at GC safe
   points, which is exactly the torn-state exposure the pool must
   mask. *)

module Store = Xmlstore.Store
module Pool = Storepool.Pool
module Metrics = Relstore.Metrics
module Prom = Obskit.Prom

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let strings = Alcotest.(list string)
let check_strings = Alcotest.(check strings)

let gen_doc seed =
  Xmlwork.Auction.generate ~params:{ Xmlwork.Auction.default with seed; scale = 0.05 } ()

let fresh_store ?(scheme = "edge") () =
  let store = Store.create ~metrics_label:"pool-test" scheme in
  let doc = Store.add_document store (gen_doc 7) in
  (store, doc)

(* ------------------------------------------------------------------ *)
(* Answer equality: every Q1-Q12 through the pool must answer byte-for-
   byte what the direct store answers, across reuse/refresh/rebuild. *)

let test_pool_equals_direct () =
  List.iter
    (fun scheme ->
      let direct, doc = fresh_store ~scheme () in
      let snap_twin = Store.of_snapshot (Store.snapshot direct) in
      let pool = Pool.create ~readers:2 snap_twin in
      List.iter
        (fun (q : Xmlwork.Queries.query) ->
          check_strings
            (scheme ^ " " ^ q.Xmlwork.Queries.qid)
            (Store.query_values direct doc q.Xmlwork.Queries.xpath)
            (Pool.query pool doc q.Xmlwork.Queries.xpath).Store.values)
        Xmlwork.Queries.auction_queries)
    [ "edge"; "interval"; "dewey" ]

(* qcheck: random query subsets in random order, interleaved with
   releases, still answer equal to the direct path. *)
let prop_random_workload =
  let direct, doc = fresh_store () in
  let pool = Pool.create ~readers:3 (Store.of_snapshot (Store.snapshot direct)) in
  let queries = Array.of_list Xmlwork.Queries.auction_queries in
  QCheck.Test.make ~count:30 ~name:"random pool workloads answer like the direct store"
    QCheck.(list_of_size Gen.(int_range 1 8) (int_range 0 (Array.length queries - 1)))
    (fun picks ->
      List.for_all
        (fun i ->
          let x = queries.(i).Xmlwork.Queries.xpath in
          (Pool.query pool doc x).Store.values = Store.query_values direct doc x)
        picks)

(* ------------------------------------------------------------------ *)
(* Snapshot isolation: readers racing an in-flight bulk load must see
   either the pre-load image (the new document does not exist) or the
   post-load image (the new document complete), never a torn state. *)

let test_snapshot_isolation () =
  let store, doc0 = fresh_store () in
  let pool = Pool.create ~readers:3 store in
  let new_doc = gen_doc 11 in
  let expected_new = ref [] in
  (* the full answer the new document must give once visible *)
  let probe = "/site/people/person/name" in
  let baseline = Pool.query pool doc0 probe in
  (let scratch = Store.create "edge" in
   let d = Store.add_document scratch new_doc in
   expected_new := Store.query_values scratch d probe);
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let observed_post = Atomic.make 0 in
  let readers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              (* doc0 must answer its pre-load values forever *)
              let r0 = Pool.query pool doc0 probe in
              if r0.Store.values <> baseline.Store.values then Atomic.incr torn;
              (* doc1 must be absent or complete *)
              (match Pool.query pool (doc0 + 1) probe with
              | r1 ->
                Atomic.incr observed_post;
                if r1.Store.values <> !expected_new then Atomic.incr torn
              | exception Store.Store_error _ -> ())
            done))
  in
  let loaded = Pool.apply pool (fun s -> Store.add_document s new_doc) in
  (* give readers a beat to observe the post-load epoch *)
  let r1 = Pool.query pool loaded probe in
  Atomic.set stop true;
  List.iter Domain.join readers;
  check_int "no torn observation" 0 (Atomic.get torn);
  check_strings "post-load answer complete" !expected_new r1.Store.values;
  check_int "epoch advanced" 1 (Pool.epoch pool)

(* ------------------------------------------------------------------ *)
(* Metrics under fire: concurrent scrapes while reader domains hammer
   queries must always render a Prom.lint-clean exposition. *)

let test_metrics_scrape_race () =
  let store, doc = fresh_store () in
  let pool = Pool.create ~readers:2 store in
  Pool.declare_series ();
  let stop = Atomic.make false in
  let workers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              ignore (Pool.query pool doc "//item/name")
            done))
  in
  let failures = ref [] in
  for _ = 1 to 25 do
    let body = Metrics.prometheus () in
    match Prom.lint body with
    | Ok () -> ()
    | Error problems -> failures := problems @ !failures
  done;
  Atomic.set stop true;
  List.iter Domain.join workers;
  check_strings "every concurrent scrape lints clean" [] !failures

(* ------------------------------------------------------------------ *)
(* Permit accounting: a failing reader must never leak its slot. *)

let test_no_leak_on_reader_failure () =
  let store, doc = fresh_store () in
  let pool = Pool.create ~readers:2 store in
  for _ = 1 to 10 do
    (try Pool.with_reader pool (fun _ -> failwith "reader blew up")
     with Failure _ -> ());
    (* a bad xpath raises inside query as well *)
    try ignore (Pool.query pool doc "///") with Xpathkit.Parser.Parse_error _ -> ()
  done;
  check_int "no outstanding permits" 0 (Pool.outstanding pool);
  (* both permits still usable: hold one while using the other *)
  let r = Pool.acquire pool in
  check_int "one outstanding" 1 (Pool.outstanding pool);
  let v = Pool.with_reader pool (fun s -> List.length (Store.query_values s doc "//keyword")) in
  check_bool "pool still answers" true (v >= 0);
  Pool.release pool r;
  check_int "drained" 0 (Pool.outstanding pool)

let prop_permits_conserved =
  QCheck.Test.make ~count:30 ~name:"random acquire/fail/release sequences conserve permits"
    QCheck.(list_of_size Gen.(int_range 1 20) bool)
    (fun plan ->
      let store, doc = fresh_store () in
      let pool = Pool.create ~readers:2 store in
      List.iter
        (fun ok ->
          if ok then ignore (Pool.query pool doc "/site/people/person/name")
          else
            try Pool.with_reader pool (fun _ -> failwith "boom") with Failure _ -> ())
        plan;
      Pool.outstanding pool = 0)

(* ------------------------------------------------------------------ *)
(* Epoch refresh: a replica cached before a commit is rebuilt, not
   reused, on the acquire that follows. *)

let test_epoch_refresh () =
  let store, doc = fresh_store () in
  let pool = Pool.create ~readers:1 store in
  ignore (Pool.query pool doc "//keyword");
  check_int "fresh pool epoch" 0 (Pool.epoch pool);
  let doc2 = Pool.load_string pool "<site><people><person id=\"px\"><name>Late Arrival</name></person></people></site>" in
  check_int "epoch bumped" 1 (Pool.epoch pool);
  check_strings "new document visible through the pool" [ "Late Arrival" ]
    (Pool.query pool doc2 "/site/people/person/name").Store.values;
  check_strings "old document still answers"
    (Store.query_values store doc "/site/people/person/name")
    (Pool.query pool doc "/site/people/person/name").Store.values

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "pool"
    [
      ( "equality",
        [
          Alcotest.test_case "Q1-Q12 equal the direct store" `Quick test_pool_equals_direct;
          qc prop_random_workload;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "readers never see a torn load" `Quick test_snapshot_isolation;
          Alcotest.test_case "epoch refresh after commit" `Quick test_epoch_refresh;
        ] );
      ( "observability",
        [ Alcotest.test_case "concurrent scrapes lint clean" `Quick test_metrics_scrape_race ] );
      ( "lifecycle",
        [
          Alcotest.test_case "reader failure leaks no permit" `Quick
            test_no_leak_on_reader_failure;
          qc prop_permits_conserved;
        ] );
    ]
