(* Tests for the embedded observability server: HTTP parser unit and
   fuzz coverage (malformed input must map onto typed 4xx errors, never
   an exception), plus an end-to-end fork test that serves a live store
   on an ephemeral port and scrapes every endpoint over a real socket. *)

module Http = Servekit.Http
module Server = Servekit.Server
module Store = Xmlstore.Store
module Metrics = Relstore.Metrics
module Prom = Obskit.Prom
module Json = Obskit.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let doc_src =
  "<site><people><person id=\"p1\"><name>Ada</name></person><person id=\"p2\">\
   <name>Grace</name></person></people><regions><africa><item id=\"i1\">\
   <name>Lamp</name></item></africa></regions></site>"

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Parser: well-formed requests *)

let test_parse_ok () =
  match Http.parse_string "GET /slowlog?limit=5&x=a%20b HTTP/1.1\r\nHost: h\r\nX-Y: z\r\n\r\n" with
  | Error _ -> Alcotest.fail "well-formed request rejected"
  | Ok r ->
    check_string "method" "GET" r.Http.meth;
    check_string "path" "/slowlog" r.Http.path;
    check_string "version" "HTTP/1.1" r.Http.version;
    check_bool "limit param" true (Http.query_param r "limit" = Some "5");
    check_bool "pct-decoded param" true (Http.query_param r "x" = Some "a b");
    check_bool "absent param" true (Http.query_param r "nope" = None);
    check_bool "headers lowercased" true
      (List.assoc_opt "host" r.Http.headers = Some "h"
      && List.assoc_opt "x-y" r.Http.headers = Some "z")

let test_parse_bare_lf () =
  (* bare-LF line endings are tolerated *)
  match Http.parse_string "GET / HTTP/1.0\nHost: h\n\n" with
  | Ok r ->
    check_string "path" "/" r.Http.path;
    check_string "version" "HTTP/1.0" r.Http.version
  | Error _ -> Alcotest.fail "bare-LF request rejected"

let test_parse_errors () =
  let bad s =
    match Http.parse_string s with
    | Ok _ -> Alcotest.failf "accepted malformed request %S" s
    | Error e -> (
      match Http.response_of_error e with
      | Some r when r.Http.status >= 400 && r.Http.status < 500 -> ()
      | Some r -> Alcotest.failf "non-4xx response %d for %S" r.Http.status s
      | None -> () (* Closed: no response, also clean *))
  in
  bad "";
  bad "GET";
  bad "GET /";
  bad "GET / HTTP/2.0\r\n\r\n";
  bad "GET / JUNK\r\n\r\n";
  bad " / HTTP/1.1\r\n\r\n";
  bad "GE T / HTTP/1.1\r\n\r\n";
  bad "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n";
  bad "GET / HTTP/1.1\r\n: empty-name\r\n\r\n";
  bad ("GET /" ^ String.make Http.max_request_line 'a' ^ " HTTP/1.1\r\n\r\n")

let test_parse_limits () =
  (* header count limit *)
  let b = Buffer.create 4096 in
  Buffer.add_string b "GET / HTTP/1.1\r\n";
  for i = 1 to Http.max_header_count + 1 do
    Buffer.add_string b (Printf.sprintf "h%d: v\r\n" i)
  done;
  Buffer.add_string b "\r\n";
  (match Http.parse_string (Buffer.contents b) with
  | Error (Http.Too_large _) -> ()
  | Ok _ -> Alcotest.fail "header-count limit not enforced"
  | Error _ -> Alcotest.fail "wrong error for header flood");
  (* header byte budget *)
  let big = "GET / HTTP/1.1\r\nbig: " ^ String.make Http.max_header_bytes 'x' ^ "\r\n\r\n" in
  match Http.parse_string big with
  | Error (Http.Too_large _) -> ()
  | Ok _ -> Alcotest.fail "header-byte limit not enforced"
  | Error _ -> Alcotest.fail "wrong error for oversized header"

let test_render () =
  let r = Http.render { Http.status = 404; content_type = "text/plain"; body = "gone" } in
  check_bool "status line" true (contains r "HTTP/1.1 404 Not Found\r\n");
  check_bool "length" true (contains r "Content-Length: 4\r\n");
  check_bool "close" true (contains r "Connection: close\r\n");
  check_bool "body last" true
    (String.length r >= 4 && String.sub r (String.length r - 4) 4 = "gone");
  let ka = Http.render ~keep_alive:true { Http.status = 200; content_type = "text/plain"; body = "" } in
  check_bool "keep-alive advertised" true (contains ka "Connection: keep-alive\r\n");
  check_bool "keep-alive never closes" true (not (contains ka "Connection: close"))

let test_parse_body () =
  (match Http.parse_string "POST /load HTTP/1.1\r\nContent-Length: 11\r\n\r\n<doc>x</doc>" with
  | Ok r ->
    check_string "body honours content-length" "<doc>x</do" (String.sub r.Http.body 0 10);
    check_int "body length" 11 (String.length r.Http.body)
  | Error _ -> Alcotest.fail "POST with body rejected");
  (match Http.parse_string "GET /metrics HTTP/1.1\r\nHost: h\r\n\r\n" with
  | Ok r -> check_string "no content-length means empty body" "" r.Http.body
  | Error _ -> Alcotest.fail "bodyless request rejected");
  (* over-budget bodies are refused before being read *)
  (match
     Http.parse_string
       (Printf.sprintf "POST /load HTTP/1.1\r\nContent-Length: %d\r\n\r\n" (Http.max_body_bytes + 1))
   with
  | Error (Http.Body_too_large _ as e) -> (
    match Http.response_of_error e with
    | Some r -> check_int "renders as 413" 413 r.Http.status
    | None -> Alcotest.fail "Body_too_large has no response")
  | Ok _ -> Alcotest.fail "body budget not enforced"
  | Error _ -> Alcotest.fail "wrong error for oversized body");
  (* chunked encoding is not implemented: typed 4xx, never a hang *)
  match Http.parse_string "POST /load HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n" with
  | Error (Http.Bad_request _) -> ()
  | Ok _ -> Alcotest.fail "chunked transfer-encoding accepted"
  | Error _ -> Alcotest.fail "wrong error for transfer-encoding"

let test_keep_alive_intent () =
  let req s =
    match Http.parse_string s with Ok r -> r | Error _ -> Alcotest.fail "request rejected"
  in
  check_bool "1.1 default keeps alive" true
    (Http.keep_alive (req "GET / HTTP/1.1\r\nHost: h\r\n\r\n"));
  check_bool "1.1 close honored" false
    (Http.keep_alive (req "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
  check_bool "1.0 default closes" false
    (Http.keep_alive (req "GET / HTTP/1.0\r\nHost: h\r\n\r\n"));
  check_bool "1.0 opt-in keeps alive" true
    (Http.keep_alive (req "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"))

(* ------------------------------------------------------------------ *)
(* Parser fuzz: arbitrary byte soup must yield Ok or a typed error,
   never an exception, and every error must render as a 4xx (or
   nothing, for Closed). *)

let request_fragment =
  QCheck.Gen.oneof
    [
      QCheck.Gen.oneofl
        [
          "GET"; "POST"; "/"; "/metrics"; "/slowlog?limit=3"; "HTTP/1.1"; "HTTP/1.0";
          "HTTP/9.9"; " "; "\r\n"; "\n"; "\r"; ":"; "Host: x"; "a:b"; "%"; "%2"; "%zz";
          "?"; "="; "&"; "+"; "\x00"; "\xff"; "";
        ];
      QCheck.Gen.map (fun n -> String.make n 'A') (QCheck.Gen.int_range 0 300);
      QCheck.Gen.string_size ~gen:(QCheck.Gen.char_range '\x00' '\xff')
        (QCheck.Gen.int_range 0 40);
    ]

let request_soup =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(map (String.concat "") (list_size (int_range 0 30) request_fragment))

let parser_total_prop =
  QCheck.Test.make ~name:"parser is total: Ok or typed 4xx, no exception" ~count:500
    request_soup
    (fun soup ->
      match Http.parse_string soup with
      | Ok r -> String.length r.Http.meth > 0 && String.length r.Http.path > 0
      | Error e -> (
        match Http.response_of_error e with
        | Some r -> r.Http.status >= 400 && r.Http.status < 500
        | None -> e = Http.Closed)
      | exception ex ->
        QCheck.Test.fail_reportf "parser raised %s on %S" (Printexc.to_string ex) soup)

(* a valid prefix followed by junk still parses: pipelined garbage after
   the blank line is someone else's problem *)
let pipelined_junk_prop =
  QCheck.Test.make ~name:"valid request survives pipelined junk" ~count:200
    request_soup
    (fun junk ->
      match Http.parse_string ("GET /metrics HTTP/1.1\r\nHost: h\r\n\r\n" ^ junk) with
      | Ok r -> r.Http.path = "/metrics"
      | Error _ -> QCheck.Test.fail_report "junk after blank line broke the parse")

(* truncating a valid request at any byte never raises *)
let truncation_prop =
  QCheck.Test.make ~name:"truncated requests fail cleanly" ~count:200
    QCheck.(int_range 0 43)
    (fun n ->
      let full = "GET /stats?limit=2 HTTP/1.1\r\nHost: hh\r\n\r\n" in
      let cut = String.sub full 0 (min n (String.length full)) in
      match Http.parse_string cut with
      | Ok _ -> n >= String.length full - 1
      | Error _ -> true
      | exception ex ->
        QCheck.Test.fail_reportf "raised %s at cut %d" (Printexc.to_string ex) n)

(* ------------------------------------------------------------------ *)
(* End-to-end: serve a live store in a forked child, scrape it *)

let expect_json body =
  match Json.parse body with
  | Ok j -> j
  | Error e -> Alcotest.failf "invalid JSON body: %s (%s)" e body

let test_serve_end_to_end () =
  Metrics.reset ();
  let store = Store.create ~metrics_label:"srv" "edge" in
  let doc = Store.add_string store doc_src in
  Store.set_slow_threshold store (Some 0.0);
  ignore (Store.query store doc "/site/people/person/name");
  ignore (Store.query store doc "/site/regions/africa/item/name");
  let server = Store.serve store in
  let port = Server.port server in
  check_bool "ephemeral port bound" true (port > 0);
  match Unix.fork () with
  | 0 ->
    (* child: serve until killed; _exit avoids flushing shared buffers *)
    (try Server.run server with _ -> ());
    Unix._exit 0
  | pid ->
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        Server.stop server)
    @@ fun () ->
    (* /metrics: lint-clean exposition containing the storage catalog *)
    let status, body = Server.get ~port "/metrics" in
    check_int "metrics 200" 200 status;
    (match Prom.lint body with
    | Ok () -> ()
    | Error problems -> Alcotest.fail (String.concat "; " problems));
    List.iter
      (fun series ->
        if not (contains body series) then
          Alcotest.failf "/metrics missing %s" series)
      [
        "xmlstore_db_wal_append_total"; "xmlstore_db_checkpoint_total";
        "xmlstore_db_recovery_redo_records_total"; "xmlstore_buffer_pool_read_total";
        "xmlstore_db_btree_leaf_split_total"; "xmlstore_store_query_edge_seconds";
      ];
    (* /healthz: ok for a live in-memory store *)
    let status, body = Server.get ~port "/healthz" in
    check_int "healthz 200" 200 status;
    (match expect_json body with
    | Json.Obj fields ->
      check_bool "ok flag" true (List.assoc_opt "ok" fields = Some (Json.Bool true))
    | _ -> Alcotest.fail "healthz not an object");
    (* /slowlog honours ?limit *)
    let status, body = Server.get ~port "/slowlog?limit=1" in
    check_int "slowlog 200" 200 status;
    (match expect_json body with
    | Json.List entries ->
      check_int "limit applied" 1 (List.length entries);
      (match entries with
      | Json.Obj fields :: _ ->
        check_bool "entry has xpath" true (List.mem_assoc "xpath" fields);
        check_bool "entry has gc bytes" true (List.mem_assoc "minor_bytes" fields)
      | _ -> Alcotest.fail "slowlog entry not an object")
    | _ -> Alcotest.fail "slowlog not a list");
    (* /stats reflects the store *)
    let status, body = Server.get ~port "/stats" in
    check_int "stats 200" 200 status;
    (match expect_json body with
    | Json.Obj fields ->
      check_bool "scheme" true (List.assoc_opt "scheme" fields = Some (Json.Str "edge"));
      check_bool "documents" true
        (List.assoc_opt "documents" fields = Some (Json.Num 1.0))
    | _ -> Alcotest.fail "stats not an object");
    (* /traces is valid chrome JSON *)
    let status, body = Server.get ~port "/traces" in
    check_int "traces 200" 200 status;
    (match Obskit.Export.validate_chrome_json body with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "traces: %s" e);
    (* unknown path and wrong verb *)
    let status, _ = Server.get ~port "/nope" in
    check_int "404" 404 status;
    Metrics.reset ()

(* Abortive peers — reset mid-request, or gone before the response is
   written — must surface as catchable errors (not SIGPIPE, not an
   escaped ECONNRESET) and leave the accept loop serving. *)
let test_abortive_clients_survived () =
  let server =
    Server.create (fun _ -> { Http.status = 200; content_type = "text/plain"; body = "pong\n" })
  in
  let port = Server.port server in
  match Unix.fork () with
  | 0 ->
    (try Server.run server with _ -> ());
    Unix._exit 0
  | pid ->
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        Server.stop server)
    @@ fun () ->
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port) in
    let abort_after send_req =
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect sock addr;
      if send_req then begin
        let req = "GET / HTTP/1.1\r\nHost: x\r\n\r\n" in
        ignore (Unix.write_substring sock req 0 (String.length req))
      end
      else ignore (Unix.write_substring sock "GET /" 0 5);
      (* linger 0 + close = RST: the server sees ECONNRESET on read or
         EPIPE/ECONNRESET on the response write *)
      Unix.setsockopt_optint sock Unix.SO_LINGER (Some 0);
      Unix.close sock
    in
    for _ = 1 to 3 do
      abort_after false;
      abort_after true
    done;
    (* the loop is still alive and answers a well-behaved client *)
    let status, body = Server.get ~port "/ping" in
    check_int "still serving" 200 status;
    check_bool "body intact" true (body = "pong\n")

(* One TCP connection, several requests: HTTP/1.1 keep-alive must hold
   the connection across requests and drop it when the client says
   Connection: close. *)
let test_keep_alive_end_to_end () =
  let hits = Atomic.make 0 in
  let server =
    Server.create (fun req ->
        let n = Atomic.fetch_and_add hits 1 + 1 in
        { Http.status = 200;
          content_type = "text/plain";
          body = Printf.sprintf "hit %d on %s\n" n req.Http.path })
  in
  let port = Server.port server in
  match Unix.fork () with
  | 0 ->
    (try Server.run server with _ -> ());
    Unix._exit 0
  | pid ->
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        Server.stop server)
    @@ fun () ->
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port) in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    @@ fun () ->
    Unix.connect sock addr;
    let send s = ignore (Unix.write_substring sock s 0 (String.length s)) in
    (* read one full response: headers + Content-Length body *)
    let read_response () =
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 1024 in
      let rec headers_done () =
        if not (contains (Buffer.contents buf) "\r\n\r\n") then begin
          let n = Unix.read sock chunk 0 (Bytes.length chunk) in
          if n = 0 then Alcotest.fail "peer closed mid-headers";
          Buffer.add_subbytes buf chunk 0 n;
          headers_done ()
        end
      in
      headers_done ();
      let s = Buffer.contents buf in
      let hdr_end =
        let rec find i =
          if i + 4 > String.length s then Alcotest.fail "no header terminator"
          else if String.sub s i 4 = "\r\n\r\n" then i + 4
          else find (i + 1)
        in
        find 0
      in
      let want =
        (* minimal Content-Length scrape over the raw header block *)
        let lower = String.lowercase_ascii (String.sub s 0 hdr_end) in
        let key = "content-length:" in
        let rec find i =
          if i + String.length key > String.length lower then 0
          else if String.sub lower i (String.length key) = key then
            let rest = String.sub lower (i + String.length key) (String.length lower - i - String.length key) in
            let line = List.hd (String.split_on_char '\r' rest) in
            int_of_string (String.trim line)
          else find (i + 1)
        in
        find 0
      in
      let rec fill () =
        if Buffer.length buf < hdr_end + want then begin
          let n = Unix.read sock chunk 0 (Bytes.length chunk) in
          if n = 0 then Alcotest.fail "peer closed mid-body";
          Buffer.add_subbytes buf chunk 0 n;
          fill ()
        end
      in
      fill ();
      let s = Buffer.contents buf in
      (String.sub s 0 hdr_end, String.sub s hdr_end want)
    in
    send "GET /a HTTP/1.1\r\nHost: h\r\n\r\n";
    let hdrs1, body1 = read_response () in
    check_bool "first response keeps alive" true
      (contains (String.lowercase_ascii hdrs1) "connection: keep-alive");
    check_string "first body" "hit 1 on /a\n" body1;
    send "GET /b HTTP/1.1\r\nHost: h\r\n\r\n";
    let hdrs2, body2 = read_response () in
    check_bool "second response on same socket" true
      (contains (String.lowercase_ascii hdrs2) "connection: keep-alive");
    check_string "second body" "hit 2 on /b\n" body2;
    send "GET /c HTTP/1.1\r\nConnection: close\r\n\r\n";
    let hdrs3, body3 = read_response () in
    check_bool "close honored in response" true
      (contains (String.lowercase_ascii hdrs3) "connection: close");
    check_string "third body" "hit 3 on /c\n" body3;
    (* server must now close its end: next read sees EOF *)
    let chunk = Bytes.create 16 in
    check_int "connection closed after close" 0 (Unix.read sock chunk 0 16)

let test_server_stop_idempotent () =
  let server = Server.create (fun _ -> { Http.status = 200; content_type = "text/plain"; body = "" }) in
  check_bool "port bound" true (Server.port server > 0);
  Server.stop server;
  Server.stop server;
  check_bool "handle_one after stop" true (not (Server.handle_one server))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "http",
        [
          Alcotest.test_case "well-formed request" `Quick test_parse_ok;
          Alcotest.test_case "bare-LF request" `Quick test_parse_bare_lf;
          Alcotest.test_case "malformed requests" `Quick test_parse_errors;
          Alcotest.test_case "limits enforced" `Quick test_parse_limits;
          Alcotest.test_case "request bodies" `Quick test_parse_body;
          Alcotest.test_case "keep-alive intent" `Quick test_keep_alive_intent;
          Alcotest.test_case "response rendering" `Quick test_render;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest parser_total_prop;
          QCheck_alcotest.to_alcotest pipelined_junk_prop;
          QCheck_alcotest.to_alcotest truncation_prop;
        ] );
      ( "server",
        [
          Alcotest.test_case "end-to-end scrape" `Quick test_serve_end_to_end;
          Alcotest.test_case "abortive clients survived" `Quick test_abortive_clients_survived;
          Alcotest.test_case "keep-alive end to end" `Quick test_keep_alive_end_to_end;
          Alcotest.test_case "stop idempotent" `Quick test_server_stop_idempotent;
        ] );
    ]
