(* srclint: the sexp/allowlist round trip, one planted fixture per
   diagnostic code (positive and clean negative), and the whole-repo
   strict gate — the tree this test ships in must analyze clean, and
   deleting an allowlist domain: annotation must flip the exit. *)

module Diag = Lintkit.Diag
module Sexp = Srclint.Sexp
module Allowlist = Srclint.Allowlist
module Source = Srclint.Source
module Checks = Srclint.Checks
module Telemetry = Srclint.Telemetry
module Engine = Srclint.Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let codes diags = List.map (fun (d : Diag.t) -> d.Diag.code) diags
let has_code c diags = List.mem c (codes diags)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let parse_fixture text =
  match Source.parse ~path:"fixture.ml" text with
  | Ok src -> src
  | Error msg -> Alcotest.failf "fixture does not parse: %s" msg

(* ------------------------------------------------------------------ *)
(* Sexp *)

let test_sexp_parse () =
  match Sexp.parse "(a (b \"c d\") e) ; trailing comment\nf" with
  | Ok [ Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c d" ]; Sexp.Atom "e" ];
         Sexp.Atom "f" ] -> ()
  | Ok _ -> Alcotest.fail "unexpected sexp shape"
  | Error e -> Alcotest.failf "sexp parse failed: %s" e

let test_sexp_roundtrip () =
  let texts = [ "(a b c)"; "(quoted \"two words\")"; "(escape \"a\\\"b\\\\c\\nd\")"; "()" ] in
  List.iter
    (fun text ->
      match Sexp.parse text with
      | Error e -> Alcotest.failf "parse %s: %s" text e
      | Ok sexps ->
        let rendered = String.concat " " (List.map Sexp.to_string sexps) in
        check_bool ("round trip " ^ text) true (Sexp.parse rendered = Ok sexps))
    texts

let test_sexp_errors () =
  check_bool "unbalanced" true (Result.is_error (Sexp.parse "(a (b)"));
  check_bool "stray close" true (Result.is_error (Sexp.parse "a)"));
  check_bool "unterminated string" true (Result.is_error (Sexp.parse "(\"abc)"))

(* ------------------------------------------------------------------ *)
(* Allowlist *)

let sample_entries =
  [
    {
      Allowlist.al_file = "lib/x/a.ml";
      al_name = "cache";
      al_kind = Some "Hashtbl.create";
      al_domain = Some Allowlist.Lock_planned;
      al_note = Some "guarded by the registry mutex";
    };
    {
      Allowlist.al_file = "lib/x/b.ml";
      al_name = "Sub.toggle";
      al_kind = Some "ref";
      al_domain = Some Allowlist.Atomic_planned;
      al_note = None;
    };
  ]

let test_allowlist_roundtrip () =
  match Allowlist.parse (Allowlist.render sample_entries) with
  | Ok reparsed -> check_bool "render/parse identity" true (reparsed = sample_entries)
  | Error e -> Alcotest.failf "allowlist round trip: %s" e

let test_allowlist_missing_domain () =
  match Allowlist.parse "((file lib/x/a.ml) (name cache) (domain not-a-domain))" with
  | Ok [ e ] -> check_bool "unknown domain maps to None" true (e.Allowlist.al_domain = None)
  | Ok _ -> Alcotest.fail "expected one entry"
  | Error e -> Alcotest.failf "parse: %s" e

let test_allowlist_rejects_incomplete () =
  check_bool "entry needs file+name" true
    (Result.is_error (Allowlist.parse "((name cache) (domain confined))"))

(* ------------------------------------------------------------------ *)
(* DS: module-level mutable state *)

let test_ds_finds_state () =
  let src =
    parse_fixture
      "let cache = Hashtbl.create 16\n\
       let toggle = ref false\n\
       let buf = Buffer.create 80\n\
       let table = [| 1; 2 |]\n\
       module Sub = struct\n\
      \  let inner = ref 0\n\
       end\n"
  in
  let names = List.map (fun (s : Checks.state_site) -> s.Checks.st_name) (Checks.module_state src) in
  check_bool "hashtbl" true (List.mem "cache" names);
  check_bool "ref" true (List.mem "toggle" names);
  check_bool "buffer" true (List.mem "buf" names);
  check_bool "array literal" true (List.mem "table" names);
  check_bool "submodule, qualified" true (List.mem "Sub.inner" names)

let test_ds_ignores_local_state () =
  let src =
    parse_fixture
      "let pure = 42\n\
       let f () =\n\
      \  let local = ref 0 in\n\
      \  incr local;\n\
      \  !local\n\
       let g = fun () -> Hashtbl.create 8\n"
  in
  check_int "no module state" 0 (List.length (Checks.module_state src))

(* ------------------------------------------------------------------ *)
(* RD001: fd leaks *)

let test_rd001_leak () =
  let src =
    parse_fixture
      "let bad path =\n\
      \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
      \  let n = Unix.read fd (Bytes.create 1) 0 1 in\n\
      \  Unix.close fd;\n\
      \  n\n"
  in
  check_bool "read before guard leaks" true (has_code "RD001" (Checks.fd_leaks src))

let test_rd001_protect_clean () =
  let src =
    parse_fixture
      "let good path =\n\
      \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
      \  Fun.protect\n\
      \    ~finally:(fun () -> Unix.close fd)\n\
      \    (fun () -> Unix.read fd (Bytes.create 1) 0 1)\n"
  in
  check_int "Fun.protect discharges" 0 (List.length (Checks.fd_leaks src))

let test_rd001_try_close_clean () =
  let src =
    parse_fixture
      "let good path =\n\
      \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
      \  (try ignore (Unix.lseek fd 0 Unix.SEEK_END)\n\
      \   with e ->\n\
      \     Unix.close fd;\n\
      \     raise e);\n\
      \  fd\n"
  in
  check_int "closing handler discharges" 0 (List.length (Checks.fd_leaks src))

let test_rd001_ownership_escape () =
  let src =
    parse_fixture
      "type t = { fd : Unix.file_descr }\n\
       let good path =\n\
      \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
      \  { fd }\n"
  in
  check_int "record escape transfers ownership" 0 (List.length (Checks.fd_leaks src))

(* ------------------------------------------------------------------ *)
(* RD002: catch-all handlers *)

let test_rd002_catchall () =
  let src = parse_fixture "let f g = try g () with _ -> None\n" in
  check_bool "wildcard handler" true (has_code "RD002" (Checks.catchalls src));
  let src = parse_fixture "let f g = match g () with x -> x | exception _ -> 0\n" in
  check_bool "exception case" true (has_code "RD002" (Checks.catchalls src))

let test_rd002_clean () =
  let src = parse_fixture "let f g = try g () with Not_found | Failure _ -> None\n" in
  check_int "explicit set" 0 (List.length (Checks.catchalls src));
  let src = parse_fixture "let f g = try g () with e -> cleanup (); raise e\n" in
  check_int "re-raising handler" 0 (List.length (Checks.catchalls src))

let test_rd002_waiver () =
  let text =
    "let f g =\n\
    \  (* boundary — srclint: allow-catchall *)\n\
    \  try g () with _ -> None\n"
  in
  let src = parse_fixture text in
  let diags = Checks.catchalls src in
  check_bool "still reported by the pass" true (has_code "RD002" diags);
  List.iter
    (fun (d : Diag.t) ->
      match d.Diag.location.Diag.loc_line with
      | Some line -> check_bool "waived by the comment" true (Source.waived src ~code:"RD002" ~line)
      | None -> Alcotest.fail "RD002 finding has no line")
    diags

(* ------------------------------------------------------------------ *)
(* RD003: EINTR *)

let test_rd003_unguarded_loop () =
  let src =
    parse_fixture
      "let drain fd buf =\n\
      \  while Unix.read fd buf 0 (Bytes.length buf) > 0 do\n\
      \    ()\n\
      \  done\n"
  in
  check_bool "read in loop" true (has_code "RD003" (Checks.eintr_in_loops src))

let test_rd003_retry_clean () =
  let src =
    parse_fixture
      "let rec read_retry fd buf off len =\n\
      \  try Unix.read fd buf off len\n\
      \  with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf off len\n\
       let drain fd buf =\n\
      \  while read_retry fd buf 0 (Bytes.length buf) > 0 do\n\
      \    ()\n\
      \  done\n"
  in
  check_int "retry helper is clean" 0 (List.length (Checks.eintr_in_loops src))

(* ------------------------------------------------------------------ *)
(* TM: telemetry drift *)

let tm_fixture =
  "let declare_storage_series () =\n\
  \  List.iter (fun n -> Metrics.incr ~by:0 n) [ \"db.a\"; \"db.b\"; \"db.unused\" ]\n\
   let work kind flag =\n\
  \  Metrics.incr \"db.a\";\n\
  \  Metrics.incr (\"db.kinds.\" ^ kind);\n\
  \  Metrics.incr (if flag then \"db.b\" else \"db.a\");\n\
  \  Metrics.incr \"db.undeclared\"\n"

let test_tm_emissions () =
  let src = parse_fixture tm_fixture in
  let ems = Telemetry.emissions_of_source src in
  let names = List.map (fun (e : Telemetry.emission) -> e.Telemetry.em_name) ems in
  check_bool "literal" true (List.mem "db.a" names);
  check_bool "match/if arms both collected" true (List.mem "db.b" names);
  check_bool "concat prefix" true
    (List.exists
       (fun (e : Telemetry.emission) -> e.Telemetry.em_wildcard && e.Telemetry.em_name = "db.kinds.")
       ems);
  check_string "catalog collected" "db.a db.b db.unused"
    (String.concat " " (Telemetry.catalog_of_source src))

let test_tm_drift () =
  let src = parse_fixture tm_fixture in
  let catalog = Telemetry.catalog_of_source src in
  let doc = Telemetry.doc_names "table: `db.a`, `db.b`, `db.unused`, `db.undeclared`, `db.kinds.<kind>`" in
  let diags =
    Telemetry.check ~catalog ~doc ~emissions:(Telemetry.emissions_of_source src)
  in
  check_bool "undeclared emission is TM001" true (has_code "TM001" diags);
  check_bool "never-emitted catalog entry is TM002" true (has_code "TM002" diags);
  check_bool "TM001 names the series" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.code = "TM001" && contains_sub d.Diag.message "db.undeclared")
       diags)

let test_tm_sync_clean () =
  let text =
    "let declare_storage_series () =\n\
    \  List.iter (fun n -> Metrics.incr ~by:0 n) [ \"db.a\"; \"db.b\" ]\n\
     let work kind =\n\
    \  Metrics.incr \"db.a\";\n\
    \  Metrics.incr \"db.b\";\n\
    \  Metrics.incr (\"db.kinds.\" ^ kind)\n"
  in
  let src = parse_fixture text in
  let doc = Telemetry.doc_names "`db.a` `db.b` `db.kinds.<kind>` and the file `store.ml`" in
  let diags =
    Telemetry.check ~catalog:(Telemetry.catalog_of_source src) ~doc
      ~emissions:(Telemetry.emissions_of_source src)
  in
  check_int "exact sync is clean" 0 (List.length diags)

let test_tm_doc_names () =
  let exact, prefixes =
    Telemetry.doc_names "`db.wal.append` text `buffer_pool.ml` more `db.wal.records.<kind>`"
  in
  check_string "exact" "db.wal.append" (String.concat " " exact);
  check_string "filename excluded, wildcard prefix kept" "db.wal.records."
    (String.concat " " prefixes)

(* ------------------------------------------------------------------ *)
(* The whole-repo gate. Deps copy ../lib, ../bin, ../srclint_allow.sexp
   and ../DESIGN.md next to the test, so the repo root is "..". *)

let repo_root =
  (* dune runtest runs us in _build/default/test with the deps one level
     up; dune exec runs from the repo root itself *)
  List.find
    (fun root -> Sys.file_exists (Filename.concat root "srclint_allow.sexp"))
    [ "."; ".."; "../.." ]

let repo_opts () =
  { (Engine.default_options ~root:repo_root ()) with Engine.opt_dirs = [ "lib"; "bin" ] }

let test_repo_strict_clean () =
  let { Engine.run_diags = diags; run_files = files } = Engine.run (repo_opts ()) in
  check_bool "analyzed a real tree" true (List.length files > 50);
  let non_info =
    List.filter (fun (d : Diag.t) -> d.Diag.severity <> Diag.Info) diags
  in
  if non_info <> [] then
    Alcotest.failf "repo is not srclint-clean:\n%s" (Diag.render_text non_info);
  check_int "strict failures" 0 (Engine.strict_failures diags);
  (* the DS001 inventory is exactly the allowlist *)
  let allow =
    match Allowlist.parse (Source.read_file (Filename.concat repo_root "srclint_allow.sexp")) with
    | Ok entries -> entries
    | Error e -> Alcotest.failf "allowlist: %s" e
  in
  check_int "one DS001 per allowlist entry" (List.length allow)
    (List.length (List.filter (fun (d : Diag.t) -> d.Diag.code = "DS001") diags))

let test_repo_annotation_deletion_flips () =
  let allow =
    match Allowlist.parse (Source.read_file (Filename.concat repo_root "srclint_allow.sexp")) with
    | Ok entries -> entries
    | Error e -> Alcotest.failf "allowlist: %s" e
  in
  check_bool "allowlist is non-empty" true (allow <> []);
  (* every entry carries domain: *)
  List.iter
    (fun (e : Allowlist.entry) ->
      check_bool (e.Allowlist.al_file ^ "." ^ e.Allowlist.al_name ^ " has domain:") true
        (e.Allowlist.al_domain <> None))
    allow;
  (* delete one annotation: the strict run must now fail with DS002 *)
  let crippled =
    match allow with
    | first :: rest -> { first with Allowlist.al_domain = None } :: rest
    | [] -> assert false
  in
  let tmp = Filename.concat repo_root "srclint_allow_test_tmp.sexp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Allowlist.render crippled));
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let opts = { (repo_opts ()) with Engine.opt_allowlist = "srclint_allow_test_tmp.sexp" } in
      let { Engine.run_diags = diags; _ } = Engine.run opts in
      check_bool "DS002 appears" true (has_code "DS002" diags);
      check_bool "errors flip the exit" true (Engine.errors diags > 0))

let test_repo_planted_anti_pattern_flips () =
  let dir = Filename.concat repo_root "srclint_fixture_tmp" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let file = Filename.concat dir "planted.ml" in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "let hidden_state = Hashtbl.create 3\nlet f g = try g () with _ -> 0\n");
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove file with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let opts = { (repo_opts ()) with Engine.opt_dirs = [ "lib"; "bin"; "srclint_fixture_tmp" ] } in
      let { Engine.run_diags = diags; _ } = Engine.run opts in
      check_bool "planted DS002" true (has_code "DS002" diags);
      check_bool "planted RD002" true (has_code "RD002" diags);
      check_bool "errors flip the exit" true (Engine.errors diags > 0))

let test_repo_json_roundtrip () =
  let { Engine.run_diags = diags; _ } = Engine.run (repo_opts ()) in
  let json = Obskit.Json.to_string (Diag.list_to_json diags) in
  match Obskit.Json.parse json with
  | Error e -> Alcotest.failf "report does not re-parse: %s" e
  | Ok parsed -> (
    match Diag.list_of_json parsed with
    | Ok reparsed -> check_bool "diags survive the round trip" true (reparsed = diags)
    | Error e -> Alcotest.failf "diag decode: %s" e)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "srclint"
    [
      ( "sexp",
        [
          Alcotest.test_case "parse" `Quick test_sexp_parse;
          Alcotest.test_case "round trip" `Quick test_sexp_roundtrip;
          Alcotest.test_case "errors" `Quick test_sexp_errors;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "round trip" `Quick test_allowlist_roundtrip;
          Alcotest.test_case "missing domain" `Quick test_allowlist_missing_domain;
          Alcotest.test_case "incomplete entry" `Quick test_allowlist_rejects_incomplete;
        ] );
      ( "ds",
        [
          Alcotest.test_case "finds module state" `Quick test_ds_finds_state;
          Alcotest.test_case "ignores local state" `Quick test_ds_ignores_local_state;
        ] );
      ( "rd001",
        [
          Alcotest.test_case "leak" `Quick test_rd001_leak;
          Alcotest.test_case "Fun.protect clean" `Quick test_rd001_protect_clean;
          Alcotest.test_case "closing handler clean" `Quick test_rd001_try_close_clean;
          Alcotest.test_case "ownership escape" `Quick test_rd001_ownership_escape;
        ] );
      ( "rd002",
        [
          Alcotest.test_case "catch-all" `Quick test_rd002_catchall;
          Alcotest.test_case "clean handlers" `Quick test_rd002_clean;
          Alcotest.test_case "waiver" `Quick test_rd002_waiver;
        ] );
      ( "rd003",
        [
          Alcotest.test_case "unguarded loop" `Quick test_rd003_unguarded_loop;
          Alcotest.test_case "retry helper" `Quick test_rd003_retry_clean;
        ] );
      ( "tm",
        [
          Alcotest.test_case "emissions" `Quick test_tm_emissions;
          Alcotest.test_case "drift" `Quick test_tm_drift;
          Alcotest.test_case "exact sync clean" `Quick test_tm_sync_clean;
          Alcotest.test_case "doc names" `Quick test_tm_doc_names;
        ] );
      ( "repo",
        [
          Alcotest.test_case "strict clean" `Quick test_repo_strict_clean;
          Alcotest.test_case "annotation deletion flips" `Quick test_repo_annotation_deletion_flips;
          Alcotest.test_case "planted anti-pattern flips" `Quick test_repo_planted_anti_pattern_flips;
          Alcotest.test_case "json round trip" `Quick test_repo_json_roundtrip;
        ] );
    ]
