(* Unit and property tests for the observability layer: clock, metrics
   histograms, spans, exporters, slow-query log, and per-store metrics
   labels. *)

module Metrics = Relstore.Metrics
module Trace = Obskit.Trace
module Export = Obskit.Export
module Json = Obskit.Json
module Prom = Obskit.Prom
module Store = Xmlstore.Store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_sampling s f =
  Trace.set_sampling s;
  Trace.clear ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_sampling Trace.Off;
      Trace.clear ())
    f

let doc_src =
  "<site><people><person id=\"p1\"><name>Ada</name></person><person id=\"p2\">\
   <name>Grace</name></person></people><regions><africa><item id=\"i1\">\
   <name>Lamp</name></item></africa></regions></site>"

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock_monotonic () =
  let prev = ref (Obskit.Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Obskit.Clock.now_ns () in
    if t < !prev then Alcotest.failf "clock went backwards: %d after %d" t !prev;
    prev := t
  done;
  check_bool "same source as Metrics.now_ns" true (Metrics.now_ns () >= 0)

(* ------------------------------------------------------------------ *)
(* Histogram buckets and percentiles *)

(* bucket i covers [2^i, 2^(i+1)): both endpoints of every power-of-two
   interval land in the right bucket *)
let bucket_boundaries_prop =
  QCheck.Test.make ~name:"bucket_of_ns boundary exactness" ~count:200
    QCheck.(int_range 0 61)
    (fun i ->
      Metrics.bucket_of_ns (1 lsl i) = max i 0
      && (i >= 61 || Metrics.bucket_of_ns ((1 lsl (i + 1)) - 1) = max i 0))

let percentile_monotone_prop =
  QCheck.Test.make ~name:"p50 <= p95 <= max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 0 10_000_000))
    (fun samples ->
      Metrics.reset ();
      List.iter (fun ns -> Metrics.observe_ns "prop.latency" ns) samples;
      match Metrics.histogram_list ~label:"" () with
      | [ (_, s) ] ->
        s.Metrics.hs_p50_ns <= s.Metrics.hs_p95_ns
        && s.Metrics.hs_p95_ns <= s.Metrics.hs_max_ns
        && s.Metrics.hs_min_ns <= s.Metrics.hs_p50_ns
      | l -> QCheck.Test.fail_reportf "expected one histogram, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Metrics labels *)

let test_metrics_labels () =
  Metrics.reset ();
  Metrics.incr "shared.count";
  Metrics.with_label "a" (fun () -> Metrics.incr ~by:3 "shared.count");
  Metrics.with_label "b" (fun () -> Metrics.incr ~by:5 "shared.count");
  check_int "default label" 1 (Metrics.counter ~label:"" "shared.count");
  check_int "label a" 3 (Metrics.counter ~label:"a" "shared.count");
  check_int "label b" 5 (Metrics.counter ~label:"b" "shared.count");
  check_bool "labels listed" true (Metrics.labels () = [ ""; "a"; "b" ]);
  (match Metrics.counter_list ~label:"a" () with
  | [ ("shared.count", 3) ] -> ()
  | l -> Alcotest.failf "unexpected label-a listing (%d entries)" (List.length l));
  (* unfiltered listing qualifies the labelled series *)
  let all = List.map fst (Metrics.counter_list ()) in
  check_bool "qualified names" true
    (List.mem "shared.count" all && List.mem "shared.count{store=\"a\"}" all);
  Metrics.reset ()

let test_gauges () =
  Metrics.reset ();
  check_int "unset gauge reads 0" 0 (Metrics.gauge "pool.resident");
  Metrics.set_gauge "pool.resident" 4096;
  Metrics.set_gauge "pool.resident" 8192;
  check_int "last write wins" 8192 (Metrics.gauge "pool.resident");
  Metrics.with_label "g" (fun () -> Metrics.set_gauge "pool.resident" 17);
  check_int "labelled gauge separate" 17 (Metrics.gauge ~label:"g" "pool.resident");
  (match Metrics.gauge_list ~label:"" () with
  | [ ("pool.resident", 8192) ] -> ()
  | l -> Alcotest.failf "unexpected gauge listing (%d entries)" (List.length l));
  let all = List.map fst (Metrics.gauge_list ()) in
  check_bool "qualified gauge names" true
    (List.mem "pool.resident" all && List.mem "pool.resident{store=\"g\"}" all);
  (* gauges render as TYPE gauge and the exposition still lints *)
  let exposition = Metrics.prometheus () in
  check_bool "gauge typed" true
    (let needle = "# TYPE xmlstore_pool_resident gauge" in
     let n = String.length needle in
     let rec find i =
       i + n <= String.length exposition
       && (String.sub exposition i n = needle || find (i + 1))
     in
     find 0);
  (match Prom.lint exposition with
  | Ok () -> ()
  | Error problems -> Alcotest.fail (String.concat "; " problems));
  Metrics.reset ()

let test_scoped_reset () =
  Metrics.reset ();
  Metrics.incr "kept.count";
  Metrics.set_gauge "kept.gauge" 5;
  Metrics.observe_ns "kept.latency" 100;
  Metrics.with_label "victim" (fun () ->
      Metrics.incr "gone.count";
      Metrics.set_gauge "gone.gauge" 9;
      Metrics.observe_ns "gone.latency" 100);
  Metrics.reset ~label:"victim" ();
  check_int "victim counter dropped" 0 (Metrics.counter ~label:"victim" "gone.count");
  check_int "victim gauge dropped" 0 (Metrics.gauge ~label:"victim" "gone.gauge");
  check_int "victim histograms dropped" 0
    (List.length (Metrics.histogram_list ~label:"victim" ()));
  check_bool "victim label gone" true (not (List.mem "victim" (Metrics.labels ())));
  check_int "default counter survives" 1 (Metrics.counter ~label:"" "kept.count");
  check_int "default gauge survives" 5 (Metrics.gauge ~label:"" "kept.gauge");
  check_int "default histogram survives" 1
    (List.length (Metrics.histogram_list ~label:"" ()));
  Metrics.reset ();
  check_bool "full reset empties registry" true (Metrics.labels () = [])

let test_store_label_separation () =
  Metrics.reset ();
  let s1 = Store.create ~metrics_label:"one" "edge" in
  let s2 = Store.create ~metrics_label:"two" "edge" in
  let dom = Xmlkit.Parser.parse doc_src in
  let d1 = Store.add_document s1 dom in
  let d2 = Store.add_document s2 dom in
  ignore (Store.query s1 d1 "/site/people/person/name");
  ignore (Store.query s1 d1 "/site/people/person/name");
  ignore (Store.query s2 d2 "/site/people/person/name");
  let count label =
    match List.assoc_opt "store.query.edge" (Metrics.histogram_list ~label ()) with
    | Some s -> s.Metrics.hs_count
    | None -> 0
  in
  check_int "store one queries" 2 (count "one");
  check_int "store two queries" 1 (count "two");
  check_string "accessor" "one" (Store.metrics_label s1);
  (* auto labels are distinct *)
  let s3 = Store.create "edge" and s4 = Store.create "edge" in
  check_bool "auto labels differ" true
    (not (String.equal (Store.metrics_label s3) (Store.metrics_label s4)));
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_nesting () =
  with_sampling Trace.Always @@ fun () ->
  let r =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "inner" (fun () -> Trace.with_span "leaf" (fun () -> 7)))
  in
  check_int "result threaded" 7 r;
  let spans = Trace.spans () in
  check_int "three spans" 3 (List.length spans);
  (match Export.check_well_nested spans with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let outer = List.find (fun s -> s.Trace.name = "outer") spans in
  let inner = List.find (fun s -> s.Trace.name = "inner") spans in
  let leaf = List.find (fun s -> s.Trace.name = "leaf") spans in
  check_bool "root has no parent" true (outer.Trace.parent_id = None);
  check_bool "inner under outer" true (inner.Trace.parent_id = Some outer.Trace.span_id);
  check_bool "leaf under inner" true (leaf.Trace.parent_id = Some inner.Trace.span_id);
  check_bool "one trace" true
    (outer.Trace.trace_id = inner.Trace.trace_id && inner.Trace.trace_id = leaf.Trace.trace_id)

let test_span_finishes_on_raise () =
  with_sampling Trace.Always @@ fun () ->
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  match Trace.spans () with
  | [ s ] ->
    check_string "span kept" "boom" s.Trace.name;
    check_bool "finished" true (s.Trace.dur_ns >= 0)
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

let test_sampling_off_records_nothing () =
  with_sampling Trace.Off @@ fun () ->
  ignore (Trace.with_span "invisible" (fun () -> 1));
  check_int "no spans" 0 (List.length (Trace.spans ()));
  check_bool "not recording" true (not (Trace.recording ()))

let test_slow_only_sampling () =
  with_sampling (Trace.Slow_only 5_000_000) @@ fun () ->
  ignore (Trace.with_span "fast" (fun () -> ()));
  check_int "fast trace dropped" 0 (List.length (Trace.spans ()));
  ignore (Trace.with_span "slow" (fun () -> Unix.sleepf 0.01));
  check_int "slow trace kept" 1 (List.length (Trace.spans ()))

(* Random well-formed span trees: with_span recursion driven by a seed
   list; the collected spans must be well nested and the Chrome export
   must parse as JSON with one event per span. *)
let span_tree_prop =
  QCheck.Test.make ~name:"random span trees export well-nested valid JSON" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 30) (int_range 0 2))
    (fun shape ->
      Trace.set_sampling Trace.Always;
      Trace.clear ();
      let rest = ref shape in
      let rec build depth =
        match !rest with
        | [] -> ()
        | width :: tl ->
          rest := tl;
          for _ = 1 to width do
            if depth < 6 then Trace.with_span "n" (fun () -> build (depth + 1))
          done
      in
      Trace.with_span "root" (fun () -> build 0);
      let spans = Trace.spans () in
      let nested = Export.check_well_nested spans = Ok () in
      let json = Export.to_chrome_json spans in
      let parses =
        match Json.parse json with
        | Ok (Json.Obj fields) -> (
          match List.assoc_opt "traceEvents" fields with
          | Some (Json.List evs) -> List.length evs = List.length spans
          | _ -> false)
        | _ -> false
      in
      let validates =
        match Export.validate_chrome_json json with
        | Ok n -> n = List.length spans
        | Error _ -> false
      in
      Trace.set_sampling Trace.Off;
      Trace.clear ();
      nested && parses && validates)

(* ------------------------------------------------------------------ *)
(* End-to-end traces through the store *)

let test_store_trace_phases () =
  List.iter
    (fun scheme ->
      with_sampling Trace.Always @@ fun () ->
      let store = Store.create scheme in
      let doc = Store.add_string store doc_src in
      ignore (Store.query store doc "/site/people/person/name");
      ignore (Store.get_document store doc);
      let spans = Trace.spans () in
      (match Export.check_well_nested spans with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" scheme e);
      let has name = List.exists (fun s -> s.Trace.name = name) spans in
      List.iter
        (fun name ->
          if not (has name) then Alcotest.failf "%s: missing %s span" scheme name)
        [
          "store.add_document"; "xml.parse"; "shred"; "store.query"; "xpath.parse";
          "translate"; "sql.plan"; "sql.execute"; "store.get_document"; "reconstruct";
        ];
      (* the execute span has operator children bridged from ANALYZE *)
      let execute =
        List.find (fun s -> s.Trace.name = "sql.execute" && s.Trace.attrs <> []) spans
      in
      check_bool
        (scheme ^ " operators under execute")
        true
        (List.exists (fun s -> s.Trace.parent_id = Some execute.Trace.span_id) spans);
      match Export.validate_chrome_json (Export.to_chrome_json spans) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: chrome export: %s" scheme e)
    [ "edge"; "interval"; "dewey" ]

(* ------------------------------------------------------------------ *)
(* Prometheus exposition *)

let test_prometheus_lints () =
  Metrics.reset ();
  let store = Store.create ~metrics_label:"prom" "interval" in
  let doc = Store.add_string store doc_src in
  ignore (Store.query store doc "/site/people/person/name");
  ignore (Store.get_document store doc);
  let exposition = Metrics.prometheus () in
  (match Prom.lint exposition with
  | Ok () -> ()
  | Error problems -> Alcotest.fail (String.concat "; " problems));
  check_bool "has HELP" true
    (String.length exposition > 0
    && String.sub exposition 0 6 = "# HELP");
  (* per-label filtering produces a lintable exposition too *)
  (match Prom.lint (Metrics.prometheus ~label:"prom" ()) with
  | Ok () -> ()
  | Error problems -> Alcotest.fail (String.concat "; " problems));
  Metrics.reset ()

let test_prom_lint_catches_garbage () =
  check_bool "untyped sample" true
    (Result.is_error (Prom.lint "orphan_metric 1\n"));
  check_bool "duplicate series" true
    (Result.is_error
       (Prom.lint
          "# HELP m_total h\n# TYPE m_total counter\nm_total 1\nm_total 2\n"))

(* ------------------------------------------------------------------ *)
(* Slow-query log *)

let test_slow_log () =
  let store = Store.create "edge" in
  let doc = Store.add_string store doc_src in
  check_bool "disarmed by default" true (Store.slow_threshold_ms store = None);
  ignore (Store.query store doc "/site/people/person/name");
  check_int "nothing retained while disarmed" 0 (List.length (Store.slow_log store));
  Store.set_slow_threshold store (Some 0.0);
  ignore (Store.query store doc "/site/people/person/name");
  (match Store.slow_log store with
  | [ e ] ->
    check_string "xpath" "/site/people/person/name" e.Store.se_xpath;
    check_string "scheme" "edge" e.Store.se_scheme;
    check_bool "not a fallback" true (not e.Store.se_fallback);
    check_bool "took time" true (e.Store.se_total_ns > 0);
    check_bool "statements captured" true (e.Store.se_statements <> []);
    let s = List.hd e.Store.se_statements in
    check_bool "sql text" true (String.length s.Store.ss_sql > 0);
    check_bool "params bound" true (Array.length s.Store.ss_params > 0);
    check_bool "plan rendered" true (String.length s.Store.ss_plan > 0);
    check_bool "analyze rows" true
      (Relstore.Plan.fold_annotated (fun acc a -> acc + a.Relstore.Plan.an_nexts) 0
         s.Store.ss_annot
      > 0)
  | l -> Alcotest.failf "expected one entry, got %d" (List.length l));
  (* a sky-high threshold retains nothing new *)
  Store.set_slow_threshold store (Some 1e9);
  ignore (Store.query store doc "/site/people/person/name");
  check_int "fast query not retained" 1 (List.length (Store.slow_log store));
  (* the log is bounded *)
  Store.set_slow_threshold store (Some 0.0);
  for _ = 1 to 40 do
    ignore (Store.query store doc "/site/people/person/name")
  done;
  check_int "bounded at 32" 32 (List.length (Store.slow_log store));
  Store.clear_slow_log store;
  check_int "cleared" 0 (List.length (Store.slow_log store))

let test_slow_log_capacity () =
  let store = Store.create "edge" in
  let doc = Store.add_string store doc_src in
  check_int "default capacity" 32 (Store.slow_log_capacity store);
  Store.set_slow_threshold store (Some 0.0);
  for _ = 1 to 6 do
    ignore (Store.query store doc "/site/people/person/name")
  done;
  check_int "six retained" 6 (List.length (Store.slow_log store));
  (* shrinking evicts the oldest immediately *)
  Store.set_slow_log_capacity store 2;
  check_int "shrink evicts" 2 (List.length (Store.slow_log store));
  check_int "capacity accessor" 2 (Store.slow_log_capacity store);
  (* the bound holds for new entries *)
  for _ = 1 to 5 do
    ignore (Store.query store doc "/site/people/person/name")
  done;
  check_int "bound honoured" 2 (List.length (Store.slow_log store));
  (* zero retains nothing, even with the threshold armed *)
  Store.set_slow_log_capacity store 0;
  check_int "zero empties" 0 (List.length (Store.slow_log store));
  ignore (Store.query store doc "/site/people/person/name");
  check_int "zero retains nothing" 0 (List.length (Store.slow_log store));
  (* negative is refused *)
  (match Store.set_slow_log_capacity store (-1) with
  | () -> Alcotest.fail "negative capacity accepted"
  | exception Store.Store_error _ -> ());
  (* growing again resumes retention *)
  Store.set_slow_log_capacity store 4;
  for _ = 1 to 6 do
    ignore (Store.query store doc "/site/people/person/name")
  done;
  check_int "regrown bound" 4 (List.length (Store.slow_log store))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotonic non-decreasing" `Quick test_clock_monotonic ] );
      ( "metrics",
        [
          QCheck_alcotest.to_alcotest bucket_boundaries_prop;
          QCheck_alcotest.to_alcotest percentile_monotone_prop;
          Alcotest.test_case "ambient labels" `Quick test_metrics_labels;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "scoped reset" `Quick test_scoped_reset;
          Alcotest.test_case "per-store separation" `Quick test_store_label_separation;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and parents" `Quick test_span_nesting;
          Alcotest.test_case "finishes on raise" `Quick test_span_finishes_on_raise;
          Alcotest.test_case "off records nothing" `Quick test_sampling_off_records_nothing;
          Alcotest.test_case "slow-only sampling" `Quick test_slow_only_sampling;
          QCheck_alcotest.to_alcotest span_tree_prop;
          Alcotest.test_case "store phases traced" `Quick test_store_trace_phases;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "exposition lints" `Quick test_prometheus_lints;
          Alcotest.test_case "lint catches garbage" `Quick test_prom_lint_catches_garbage;
        ] );
      ( "slowlog",
        [
          Alcotest.test_case "capture and bounds" `Quick test_slow_log;
          Alcotest.test_case "capacity control" `Quick test_slow_log_capacity;
        ] );
    ]
