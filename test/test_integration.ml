(* Integration tests: multi-component flows across the whole stack —
   generator -> store -> updates -> queries -> reconstruction ->
   compression, plus cross-scheme consistency on a realistic document. *)

module Store = Xmlstore.Store
module Dom = Xmlkit.Dom

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_strings = Alcotest.(check (list string))

let auction_doc =
  lazy
    (Xmlwork.Auction.generate
       ~params:{ Xmlwork.Auction.default with scale = 0.3; seed = 7 }
       ())

let all_stores () =
  List.map
    (fun scheme ->
      let store =
        if String.equal scheme "inline" then
          Store.create ~dtd:(Lazy.force Xmlwork.Auction.dtd) scheme
        else Store.create scheme
      in
      ignore (Store.add_document store (Lazy.force auction_doc));
      (scheme, store))
    (Store.schemes ())

(* Every scheme gives the same answer to every workload query. *)
let test_cross_scheme_consistency () =
  let stores = all_stores () in
  List.iter
    (fun (q : Xmlwork.Queries.query) ->
      let answers =
        List.map (fun (s, store) -> (s, Store.query_values store 0 q.Xmlwork.Queries.xpath)) stores
      in
      match answers with
      | (_, reference) :: rest ->
        List.iter
          (fun (scheme, got) ->
            check_strings (q.Xmlwork.Queries.qid ^ " agrees on " ^ scheme) reference got)
          rest
      | [] -> Alcotest.fail "no schemes")
    Xmlwork.Queries.auction_queries

let with_batched on f =
  let prev = Relstore.Executor.batched_on () in
  Relstore.Executor.set_batched on;
  Fun.protect ~finally:(fun () -> Relstore.Executor.set_batched prev) f

(* Tentpole invariant: the vectorized interpreter answers every workload
   query byte-for-byte like the row iterator, on every scheme. *)
let test_batched_iterator_consistency () =
  let stores = all_stores () in
  List.iter
    (fun (q : Xmlwork.Queries.query) ->
      List.iter
        (fun (scheme, store) ->
          let run on = with_batched on (fun () -> Store.query_values store 0 q.Xmlwork.Queries.xpath) in
          check_strings
            (q.Xmlwork.Queries.qid ^ " batched equals iterator on " ^ scheme)
            (run false) (run true))
        stores)
    Xmlwork.Queries.auction_queries

let with_staircase on f =
  Relstore.Planner.set_staircase on;
  Fun.protect ~finally:(fun () -> Relstore.Planner.set_staircase true) f

let deep_doc depth =
  let rec go n =
    if n = 0 then Dom.element "leaf" [ Dom.text "bottom" ] else Dom.element "d" [ go (n - 1) ]
  in
  Dom.document (Dom.elem "root" [ go depth ])

let fanout_doc width =
  Dom.document
    (Dom.elem "root"
       (List.init width (fun i ->
            Dom.element "c" [ Dom.element "g" [ Dom.text (string_of_int (i mod 7)) ] ])))

let random_doc st =
  let rec gen depth =
    let tag = [| "x"; "y"; "z" |].(Random.State.int st 3) in
    let kids =
      if depth = 0 then [ Dom.text (string_of_int (Random.State.int st 5)) ]
      else
        List.init
          (1 + Random.State.int st 3)
          (fun _ -> if Random.State.int st 4 = 0 then Dom.text "t" else gen (depth - 1))
    in
    Dom.element tag kids
  in
  Dom.document (Dom.elem "r" [ gen (2 + Random.State.int st 4) ])

(* The staircase structural join answers descendant-axis queries exactly
   like the nested-loop plan it replaces — on a degenerate 200-deep
   recursion chain, a 2000-way fanout, and randomized trees. *)
let test_staircase_matches_nested_loop () =
  let docs =
    (deep_doc 200, [ "//d//leaf"; "//d//d" ])
    :: (fanout_doc 2000, [ "//c//g"; "/root//g" ])
    :: List.init 8 (fun i ->
           let st = Random.State.make [| (31 * i) + 5 |] in
           (random_doc st, [ "//x//y"; "//y//z"; "/r//x" ]))
  in
  List.iter
    (fun (dom, paths) ->
      let store = Store.create "interval" in
      let doc = Store.add_document store dom in
      (* replan on every query so the toggle really changes the join *)
      Relstore.Database.set_plan_cache (Store.database store) false;
      List.iter
        (fun path ->
          let stair = with_staircase true (fun () -> Store.query_values store doc path) in
          let nl = with_staircase false (fun () -> Store.query_values store doc path) in
          check_strings (path ^ " staircase equals nested loop") nl stair)
        paths)
    docs

(* All schemes round-trip the same realistic document. *)
let test_cross_scheme_roundtrip () =
  let dom = Lazy.force auction_doc in
  List.iter
    (fun (scheme, store) ->
      check_bool (scheme ^ " round trip") true (Dom.equal dom (Store.get_document store 0)))
    (all_stores ())

(* A bulk-loaded store answers every workload query exactly as a
   row-at-a-time store does, for every scheme: deferring the index
   builds must be invisible to readers. *)
let test_bulk_row_equivalence () =
  let dom = Lazy.force auction_doc in
  List.iter
    (fun scheme ->
      let make ~bulk =
        let store =
          if String.equal scheme "inline" then
            Store.create ~dtd:(Lazy.force Xmlwork.Auction.dtd) ~bulk scheme
          else Store.create ~bulk scheme
        in
        ignore (Store.add_document store dom);
        store
      in
      let row = make ~bulk:false and bulk = make ~bulk:true in
      List.iter
        (fun (q : Xmlwork.Queries.query) ->
          check_strings
            (q.Xmlwork.Queries.qid ^ " bulk equals row on " ^ scheme)
            (Store.query_values row 0 q.Xmlwork.Queries.xpath)
            (Store.query_values bulk 0 q.Xmlwork.Queries.xpath))
        Xmlwork.Queries.auction_queries)
    (Store.schemes ())

(* Full pipeline: generate -> validate -> store -> update -> query ->
   reconstruct -> compress -> decompress -> re-store -> query. *)
let test_full_pipeline () =
  let dtd = Lazy.force Xmlwork.Auction.dtd in
  let dom = Lazy.force auction_doc in
  check_bool "generator output is DTD-valid" true (Xmlkit.Dtd.is_valid dtd dom);
  let store = Store.create ~dtd ~validate:true "interval" in
  let doc = Store.add_document store dom in
  let before = Store.query_count store doc "//keyword" in
  ignore
    (Store.append_child store doc ~parent:"/site/regions/asia"
       (Dom.element "item"
          ~attrs:[ Dom.attr "id" "itemZZ" ]
          [
            Dom.element "name" [ Dom.text "integration special" ];
            Dom.element "category" [ Dom.text "tools" ];
            Dom.element "location" [ Dom.text "Japan" ];
            Dom.element "quantity" [ Dom.text "1" ];
            Dom.element "payment" [ Dom.text "Cash" ];
            Dom.element "keyword" [ Dom.text "integrationkw" ];
            Dom.element "description" [ Dom.text "pipeline test" ];
          ]));
  check_int "keyword count grew" (before + 1) (Store.query_count store doc "//keyword");
  check_strings "new item findable" [ "integration special" ]
    (Store.query_values store doc "//item[@id='itemZZ']/name");
  (* reconstruct, compress, decompress, and the result still matches *)
  let updated = Store.get_document store doc in
  check_bool "updated doc still DTD-valid" true (Xmlkit.Dtd.is_valid dtd updated);
  let packed = Xmlkit.Compress.encode updated in
  let unpacked = Xmlkit.Compress.decode packed in
  check_bool "compression survives the update" true (Dom.equal updated unpacked);
  (* re-store the decompressed document in a different scheme *)
  let store2 = Store.create "edge" in
  let doc2 = Store.add_document store2 unpacked in
  check_strings "re-stored doc answers the same" [ "integration special" ]
    (Store.query_values store2 doc2 "//item[@id='itemZZ']/name")

(* Serialization formats interoperate: file -> parse -> store -> pretty ->
   reparse -> equal. *)
let test_file_roundtrip () =
  let dom = Lazy.force auction_doc in
  let path = Filename.temp_file "xmlstore" ".xml" in
  Xmlkit.Serializer.to_file ~mode:(Xmlkit.Serializer.Pretty 2) path dom;
  let store = Store.create "dewey" in
  let doc = Store.add_file store path in
  Sys.remove path;
  check_bool "file round trip" true (Dom.equal dom (Store.get_document store doc))

(* The documents registry tracks per-document metadata through mixed
   workloads. *)
let test_registry_metadata () =
  let store = Store.create "edge" in
  let d0 = Store.add_string ~name:"tiny" store "<a><b>x</b></a>" in
  let d1 = Store.add_document ~name:"big" store (Lazy.force auction_doc) in
  let infos = Store.documents store in
  check_int "two docs" 2 (List.length infos);
  let info0 = List.find (fun i -> i.Store.doc = d0) infos in
  let info1 = List.find (fun i -> i.Store.doc = d1) infos in
  check_bool "names" true (info0.Store.doc_name = Some "tiny" && info1.Store.doc_name = Some "big");
  check_int "tiny node count" 3 info0.Store.nodes;
  check_bool "big is bigger" true (info1.Store.nodes > 1000);
  Alcotest.(check string) "root tags" "a site" (info0.Store.root_tag ^ " " ^ info1.Store.root_tag)

(* SQL-level cross-checks: aggregates over the shredded form agree with the
   document structure. *)
let test_sql_against_structure () =
  let dom = Lazy.force auction_doc in
  let ix = Xmlkit.Index.of_document dom in
  let stats = Xmlkit.Index.stats ix in
  let store = Store.create "interval" in
  ignore (Store.add_document store dom);
  (match Store.sql store "SELECT count(*) FROM accel WHERE kind = 'e'" with
  | Relstore.Database.Rows { rows = [ [| Relstore.Value.Int n |] ]; _ } ->
    check_int "element count via SQL" stats.Xmlkit.Index.elements n
  | _ -> Alcotest.fail "count query failed");
  (match Store.sql store "SELECT max(level) FROM accel WHERE kind = 'e'" with
  | Relstore.Database.Rows { rows = [ [| Relstore.Value.Int d |] ]; _ } ->
    check_int "depth via SQL" stats.Xmlkit.Index.max_depth d
  | _ -> Alcotest.fail "depth query failed");
  match
    Store.sql store
      "SELECT name, count(*) FROM accel WHERE kind = 'e' GROUP BY name ORDER BY count(*) DESC, \
       name LIMIT 1"
  with
  | Relstore.Database.Rows { rows = [ [| name; _ |] ]; _ } ->
    (* items dominate the auction skeleton's repeated structure *)
    check_bool "most frequent tag is plausible" true
      (List.mem (Relstore.Value.to_string name) [ "item"; "name"; "keyword"; "text" ])
  | _ -> Alcotest.fail "group query failed"

(* Persist a store to disk and reopen it: documents, queries, and updates
   all keep working. *)
let test_save_load () =
  let store = Store.create "edge" in
  let d0 = Store.add_string ~name:"one" store "<a><b>x</b><b>y</b></a>" in
  ignore (Store.add_string ~name:"two" store "<c><d>z</d></c>");
  let path = Filename.temp_file "xmlstore" ".sql" in
  Store.save store path;
  let reopened = Store.load ~scheme:"edge" path in
  Sys.remove path;
  check_int "documents survive" 2 (List.length (Store.documents reopened));
  check_strings "query works" [ "x"; "y" ] (Store.query_values reopened d0 "/a/b");
  check_bool "round trip" true
    (Dom.equal (Xmlkit.Parser.parse "<a><b>x</b><b>y</b></a>") (Store.get_document reopened d0));
  (* new documents get fresh ids after reload *)
  let d2 = Store.add_string reopened "<e/>" in
  check_int "next id continues" 2 d2;
  (* updates still work on the reopened store *)
  ignore (Store.append_child reopened d0 ~parent:"/a" (Dom.element "b" [ Dom.text "w" ]));
  check_strings "update after reload" [ "x"; "y"; "w" ] (Store.query_values reopened d0 "/a/b")

(* Analysis tools compose: reconstruct from the store, summarize with a
   DataGuide, cross-check counts against both the SQL form and a FLWOR
   report. *)
let test_summaries_agree () =
  let dom = Lazy.force auction_doc in
  let store = Store.create "edge" in
  let doc = Store.add_document store dom in
  let back = Store.get_document store doc in
  let ix = Xmlkit.Index.of_document back in
  let dg = Xmlkit.Dataguide.of_index ix in
  (* DataGuide count = store query count = SQL count for a child chain *)
  let via_guide = Xmlkit.Dataguide.count_path dg [ "site"; "people"; "person" ] in
  let via_store = Store.query_count store doc "/site/people/person" in
  (match Store.sql store "SELECT count(*) FROM edge WHERE kind = 'e' AND name = 'person'" with
  | Relstore.Database.Rows { rows = [ [| Relstore.Value.Int via_sql |] ]; _ } ->
    check_int "guide = store" via_store via_guide;
    check_int "guide = sql" via_sql via_guide
  | _ -> Alcotest.fail "sql count failed");
  (* a FLWOR report over the same store produces one row per person *)
  let report =
    Xpathkit.Flwor.run ix "for $p in /site/people/person return <row>{$p/name}</row>"
  in
  check_int "flwor rows" via_guide (List.length report);
  (* column statistics on the edge table see every node *)
  let st = Relstore.Database.analyze (Store.database store) "edge" in
  check_int "stats row count" st.Relstore.Stats.ts_rows (Xmlkit.Dom.count_nodes back)

(* Error propagation end to end. *)
let test_error_paths () =
  let store = Store.create "edge" in
  (match Store.add_string store "<broken" with
  | exception Xmlkit.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "malformed XML accepted");
  let doc = Store.add_string store "<a/>" in
  (match Store.query store doc "not a path ((" with
  | exception _ -> ()
  | _ -> Alcotest.fail "bad xpath accepted");
  (match Store.sql store "SELEKT" with
  | exception _ -> ()
  | _ -> Alcotest.fail "bad sql accepted");
  match Store.get_document store 99 with
  | exception Store.Store_error _ -> ()
  | _ -> Alcotest.fail "missing doc accepted"

(* Explain output names the expected operators. *)
let test_explain_shapes () =
  let store = Store.create "edge" in
  ignore (Store.add_string store "<a><b>x</b></a>");
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let plan1 = Store.explain store "SELECT target FROM edge WHERE name = 'b'" in
  check_bool "index scan in plan" true (contains plan1 "IndexScan");
  let plan2 =
    Store.explain store
      "SELECT e1.target FROM edge e1, edge e2 WHERE e1.source = e2.target AND e2.name = 'a'"
  in
  check_bool "hash join in plan" true (contains plan2 "HashJoin");
  let plan3 = Store.explain store "SELECT name, count(*) FROM edge GROUP BY name" in
  check_bool "aggregate in plan" true (contains plan3 "Aggregate")

let () =
  Alcotest.run "integration"
    [
      ( "cross-scheme",
        [
          Alcotest.test_case "query consistency" `Slow test_cross_scheme_consistency;
          Alcotest.test_case "round trips" `Slow test_cross_scheme_roundtrip;
          Alcotest.test_case "bulk equals row-at-a-time" `Slow test_bulk_row_equivalence;
          Alcotest.test_case "batched equals iterator" `Slow test_batched_iterator_consistency;
        ] );
      ( "staircase join",
        [
          Alcotest.test_case "deep, wide and random documents" `Slow
            test_staircase_matches_nested_loop;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "full pipeline" `Slow test_full_pipeline;
          Alcotest.test_case "file round trip" `Quick test_file_roundtrip;
          Alcotest.test_case "registry metadata" `Quick test_registry_metadata;
          Alcotest.test_case "sql vs structure" `Quick test_sql_against_structure;
          Alcotest.test_case "save/load" `Quick test_save_load;
          Alcotest.test_case "summaries agree" `Quick test_summaries_agree;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "error paths" `Quick test_error_paths;
          Alcotest.test_case "explain shapes" `Quick test_explain_shapes;
        ] );
    ]
